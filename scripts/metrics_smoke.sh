#!/bin/sh
# End-to-end /metrics smoke test (make metrics-smoke; non-gating in CI):
# synthesize a tiny workload, train with -metrics-out, start rrc-server
# with a 4-shard online layer, drive recommend + consume traffic, and
# validate both the training metrics file and a live /metrics scrape
# with rrc-inspect -expfmt — including the per-shard rrc_shard_*
# families and a sharded-root rrc-inspect -wal pass over the event log.
set -eu

ADDR=${METRICS_SMOKE_ADDR:-127.0.0.1:18395}
tmp=$(mktemp -d)
server_pid=
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/bin/" ./cmd/rrc-datagen ./cmd/rrc-train ./cmd/rrc-server ./cmd/rrc-inspect

"$tmp/bin/rrc-datagen" -preset gowalla -users 40 -out "$tmp/data.tsv"
"$tmp/bin/rrc-train" -data "$tmp/data.tsv" -out "$tmp/model.tsppr" \
	-window 20 -omega 3 -steps 5000 -metrics-out "$tmp/train.prom"
"$tmp/bin/rrc-inspect" -expfmt "$tmp/train.prom"
grep -q '^rrc_train_checkpoints_total' "$tmp/train.prom" || {
	echo "train.prom lacks rrc_train_checkpoints_total" >&2
	exit 1
}

"$tmp/bin/rrc-server" -model "$tmp/model.tsppr" -addr "$ADDR" -window 20 -omega 3 \
	-events-dir "$tmp/events" -shards 4 &
server_pid=$!
ok=
for _ in $(seq 1 50); do
	if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.2
done
[ -n "$ok" ] || { echo "server never became healthy" >&2; exit 1; }

# History with repeats beyond the Ω=3 gap so the candidate set is
# non-empty and the engine families appear in the exposition.
curl -sf -X POST "http://$ADDR/recommend" \
	-d '{"user":0,"history":[0,1,2,3,4,5,6,7,8,9,0,1,2,3,4,5,6,7,8,9,0,1,2,3,4,5,6,7,8,9],"n":5}' \
	>/dev/null

# Online traffic across several users so more than one shard owns state.
for u in 0 1 2 3 4 5 6 7; do
	curl -sf -X POST "http://$ADDR/consume" -d "{\"user\":$u,\"item\":3}" >/dev/null
done

# Repeated /recommend/user reads for an unchanged user: the first fills
# the response cache, the second must be served from it, and a consume
# in between invalidates — so hits, misses, and invalidations all move.
curl -sf -X POST "http://$ADDR/recommend/user" -d '{"user":0,"n":5}' >/dev/null
curl -sf -X POST "http://$ADDR/recommend/user" -d '{"user":0,"n":5}' >/dev/null
curl -sf -X POST "http://$ADDR/consume" -d '{"user":0,"item":3}' >/dev/null
curl -sf -X POST "http://$ADDR/recommend/user" -d '{"user":0,"n":5}' >/dev/null

curl -sf "http://$ADDR/metrics" >"$tmp/scrape.prom"
"$tmp/bin/rrc-inspect" -expfmt - <"$tmp/scrape.prom"
for fam in rrc_http_requests_total rrc_http_request_seconds_count \
	rrc_engine_recommend_seconds_count rrc_items_recommended_total; do
	grep -q "^$fam" "$tmp/scrape.prom" || {
		echo "/metrics lacks $fam" >&2
		exit 1
	}
done

# Every shard exports its lifecycle families; all four must be serving
# (state 2) with zero restarts and breaker trips after clean traffic.
for i in 0 1 2 3; do
	grep -q "^rrc_shard_state{shard=\"$i\"} 2$" "$tmp/scrape.prom" || {
		echo "/metrics lacks rrc_shard_state{shard=\"$i\"} 2" >&2
		exit 1
	}
	grep -q "^rrc_shard_restarts_total{shard=\"$i\"} 0$" "$tmp/scrape.prom" || {
		echo "/metrics lacks rrc_shard_restarts_total{shard=\"$i\"} 0" >&2
		exit 1
	}
	grep -q "^rrc_shard_breaker_trips_total{shard=\"$i\"} 0$" "$tmp/scrape.prom" || {
		echo "/metrics lacks rrc_shard_breaker_trips_total{shard=\"$i\"} 0" >&2
		exit 1
	}
done
grep -q '^rrc_online_sessions 8$' "$tmp/scrape.prom" || {
	echo "/metrics lacks rrc_online_sessions 8" >&2
	exit 1
}

# Response-cache families: the repeat read above must have hit, the
# first read missed, and the interleaved consume invalidated.
grep -q '^rrc_rescache_hits_total 1$' "$tmp/scrape.prom" || {
	echo "/metrics lacks rrc_rescache_hits_total 1" >&2
	exit 1
}
grep -q '^rrc_rescache_misses_total 2$' "$tmp/scrape.prom" || {
	echo "/metrics lacks rrc_rescache_misses_total 2" >&2
	exit 1
}
grep -q '^rrc_rescache_invalidations_total 1$' "$tmp/scrape.prom" || {
	echo "/metrics lacks rrc_rescache_invalidations_total 1" >&2
	exit 1
}
grep -q '^rrc_rescache_entries ' "$tmp/scrape.prom" || {
	echo "/metrics lacks rrc_rescache_entries" >&2
	exit 1
}

# Shut the server down cleanly and verify the sharded WAL root.
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=
"$tmp/bin/rrc-inspect" -wal "$tmp/events" | grep -q 'sharded root: shards=4 unhealthy=0' || {
	echo "rrc-inspect -wal did not report a healthy 4-shard root" >&2
	exit 1
}
echo "metrics smoke: OK"
