#!/bin/sh
# End-to-end routed-replication smoke test (make replica-smoke;
# non-gating in CI): three processes over real sockets — a primary, a
# warm standby tailing its WAL stream, and rrc-router in front of both.
# All traffic flows through the router. Half-way through the soak the
# primary is SIGKILLed; the router must notice, promote the standby
# itself (-auto-promote), and keep serving — the client-visible error
# rate across the WHOLE soak, kill included, must stay under budget
# (< 1 error per 5 requests). Before the kill, replication lag is
# asserted back to 0 so the takeover provably loses nothing. After the
# soak the router's own rrc_router_* families are scraped and
# validated, and rrc-inspect -epoch / -diverge audit the two event
# roots offline.
set -eu

PRIMARY=${REPLICA_SMOKE_PRIMARY:-127.0.0.1:18397}
STANDBY=${REPLICA_SMOKE_STANDBY:-127.0.0.1:18398}
ROUTER=${REPLICA_SMOKE_ROUTER:-127.0.0.1:18399}
SOAK_SECS=${REPLICA_SMOKE_SOAK:-30}
tmp=$(mktemp -d)
primary_pid=
standby_pid=
router_pid=
cleanup() {
	[ -n "$primary_pid" ] && kill "$primary_pid" 2>/dev/null || true
	[ -n "$standby_pid" ] && kill "$standby_pid" 2>/dev/null || true
	[ -n "$router_pid" ] && kill "$router_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/bin/" ./cmd/rrc-datagen ./cmd/rrc-train ./cmd/rrc-server \
	./cmd/rrc-router ./cmd/rrc-inspect

"$tmp/bin/rrc-datagen" -preset gowalla -users 40 -out "$tmp/data.tsv"
"$tmp/bin/rrc-train" -data "$tmp/data.tsv" -out "$tmp/model.tsppr" \
	-window 20 -omega 3 -steps 5000

"$tmp/bin/rrc-server" -model "$tmp/model.tsppr" -addr "$PRIMARY" -window 20 -omega 3 \
	-events-dir "$tmp/primary" -shards 2 &
primary_pid=$!
wait_healthy() {
	for _ in $(seq 1 50); do
		if curl -sf "http://$1/healthz" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.2
	done
	echo "$1 never became healthy" >&2
	return 1
}
wait_healthy "$PRIMARY"

"$tmp/bin/rrc-server" -model "$tmp/model.tsppr" -addr "$STANDBY" -window 20 -omega 3 \
	-events-dir "$tmp/standby" -shards 2 -follow "http://$PRIMARY" &
standby_pid=$!
wait_healthy "$STANDBY"

# The router owns failover: fast probes so the takeover fits the soak,
# -retry-budget 1 so every client request can fund one failover retry.
"$tmp/bin/rrc-router" -addr "$ROUTER" -nodes "http://$PRIMARY,http://$STANDBY" \
	-auto-promote -probe-interval 100ms -probe-fails 2 \
	-retry-budget 1 -max-attempts 4 -retry-backoff 50ms &
router_pid=$!
wait_healthy "$ROUTER"

# soak_for SECS: mixed /consume + /recommend/user traffic through the
# router, appending one line per request outcome to $tmp/outcomes.
soak_for() {
	end=$(( $(date +%s) + $1 ))
	while [ "$(date +%s)" -lt "$end" ]; do
		u=$(( n % 20 ))
		i=$(( n % 13 ))
		if [ $(( n % 5 )) -eq 4 ]; then
			code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
				"http://$ROUTER/recommend/user" -d "{\"user\":$u,\"n\":3}")
			case $code in 200|404) echo ok ;; *) echo "err read $code" ;; esac >>"$tmp/outcomes"
		else
			code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
				"http://$ROUTER/consume" -d "{\"user\":$u,\"item\":$i}")
			case $code in 200) echo ok ;; *) echo "err write $code" ;; esac >>"$tmp/outcomes"
		fi
		n=$(( n + 1 ))
		sleep 0.05
	done
}

: >"$tmp/outcomes"
n=0
half=$(( SOAK_SECS / 2 ))
[ "$half" -ge 1 ] || half=1

echo "soaking ${half}s against the healthy fleet"
soak_for "$half"

# Quiesce and require lag 0 on every shard: everything acknowledged so
# far is on the standby, so the kill below can lose nothing.
lag_zero() {
	curl -sf "http://$STANDBY/metrics" | awk '
		/^rrc_replica_lag_records/ { if ($NF != 0) bad = 1 }
		END { exit bad }'
}
ok=
for _ in $(seq 1 50); do
	if lag_zero; then
		ok=1
		break
	fi
	sleep 0.2
done
[ -n "$ok" ] || { echo "replication lag never drained to 0" >&2; exit 1; }
echo "lag drained to 0; killing the primary (SIGKILL)"

kill -9 "$primary_pid" 2>/dev/null || true
wait "$primary_pid" 2>/dev/null || true
primary_pid=

echo "soaking ${half}s through the failover"
soak_for "$half"

total=$(wc -l <"$tmp/outcomes")
errs=$(grep -c '^err' "$tmp/outcomes" || true)
echo "soaked $total requests through the router, $errs client-visible errors"
[ "$total" -gt 0 ] || { echo "no requests made it through the router" >&2; exit 1; }
# Error budget: the only tolerated failures are the handful of probe
# rounds between the kill and the router's promotion.
if [ $(( errs * 5 )) -ge "$total" ]; then
	echo "client-visible error rate over budget ($errs/$total):" >&2
	grep '^err' "$tmp/outcomes" | sort | uniq -c >&2
	exit 1
fi

# The router must have converged on the promoted standby: writes land.
curl -sf -X POST "http://$ROUTER/consume" -d '{"user":0,"item":1}' >/dev/null || {
	echo "write through router failed after failover" >&2
	exit 1
}

# Expositions: standby still exports the replication families, and the
# router exports its own rrc_router_* families — including at least one
# recorded failover.
curl -sf "http://$STANDBY/metrics" >"$tmp/standby.prom"
curl -sf "http://$ROUTER/metrics" >"$tmp/router.prom"
"$tmp/bin/rrc-inspect" -expfmt - <"$tmp/standby.prom"
"$tmp/bin/rrc-inspect" -expfmt - <"$tmp/router.prom"
for fam in rrc_replica_lag_records rrc_replica_lag_seconds \
	rrc_replica_applied_total rrc_replica_epoch; do
	grep -q "^$fam" "$tmp/standby.prom" || {
		echo "standby /metrics lacks $fam" >&2
		exit 1
	}
done
for fam in rrc_router_requests_total rrc_router_node_state \
	rrc_router_node_epoch rrc_router_failovers_total; do
	grep -q "^$fam" "$tmp/router.prom" || {
		echo "router /metrics lacks $fam" >&2
		exit 1
	}
done
awk '/^rrc_router_failovers_total/ { if ($NF + 0 >= 1) found = 1 }
	END { exit !found }' "$tmp/router.prom" || {
	echo "router never recorded the failover it drove" >&2
	exit 1
}

# Clean shutdowns, then offline forensics over the two roots: the
# promoted node records epoch 1, and the timelines must not have forked
# (the primary died with everything acknowledged already shipped).
kill "$standby_pid" 2>/dev/null || true
wait "$standby_pid" 2>/dev/null || true
standby_pid=
kill "$router_pid" 2>/dev/null || true
wait "$router_pid" 2>/dev/null || true
router_pid=
"$tmp/bin/rrc-inspect" -epoch "$tmp/standby" | grep -q 'epoch=1' || {
	echo "rrc-inspect -epoch did not report epoch 1 on the promoted root" >&2
	exit 1
}
"$tmp/bin/rrc-inspect" -diverge "$tmp/primary" "$tmp/standby" || {
	echo "rrc-inspect -diverge reported a fork between primary and standby" >&2
	exit 1
}
echo "replica smoke (routed, kill-primary): OK"
