#!/bin/sh
# End-to-end partitioned-fleet smoke test (make replica-smoke;
# non-gating in CI): five processes over real sockets — two replicated
# pairs each owning one partition of the user-key space (-partition 0/2
# and 1/2), and rrc-router in front with a partitioned topology file.
# All traffic flows through the router, bucketed per partition with
# rrc-inspect -owner. Half-way through the soak partition 0's primary
# is SIGKILLed; the router must promote THAT pair's standby itself
# (-auto-promote) and keep serving, and each partition is held to its
# own client error budget: the victim partition tolerates the probe
# rounds between kill and promotion (< 1 error per 5 requests), while
# the untouched partition must stay near-error-free (< 1 per 20) — one
# pair's outage is not allowed to shed the other pair's keys. Before
# the kill, replication lag is asserted back to 0 on both standbys so
# the takeover provably loses nothing. After the soak the router's
# rrc_router_* families are scraped (zero misdirects — the topology and
# every node's -partition agree) and rrc-inspect audits the victim
# pair's roots offline (-epoch, -diverge), plus the topology file
# itself (-topology).
set -eu

PRIMARY0=${REPLICA_SMOKE_PRIMARY:-127.0.0.1:18397}
STANDBY0=${REPLICA_SMOKE_STANDBY:-127.0.0.1:18398}
ROUTER=${REPLICA_SMOKE_ROUTER:-127.0.0.1:18399}
PRIMARY1=${REPLICA_SMOKE_PRIMARY1:-127.0.0.1:18400}
STANDBY1=${REPLICA_SMOKE_STANDBY1:-127.0.0.1:18401}
SOAK_SECS=${REPLICA_SMOKE_SOAK:-30}
tmp=$(mktemp -d)
primary0_pid=
standby0_pid=
primary1_pid=
standby1_pid=
router_pid=
cleanup() {
	for pid in "$primary0_pid" "$standby0_pid" "$primary1_pid" "$standby1_pid" "$router_pid"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/bin/" ./cmd/rrc-datagen ./cmd/rrc-train ./cmd/rrc-server \
	./cmd/rrc-router ./cmd/rrc-inspect

"$tmp/bin/rrc-datagen" -preset gowalla -users 40 -out "$tmp/data.tsv"
"$tmp/bin/rrc-train" -data "$tmp/data.tsv" -out "$tmp/model.tsppr" \
	-window 20 -omega 3 -steps 5000

# The partitioned topology file, validated offline before any process
# sees it — a bad file must die here, not at the router's next reload.
cat >"$tmp/topology" <<EOF
partitions 2
partition 0 http://$PRIMARY0 http://$STANDBY0
partition 1 http://$PRIMARY1 http://$STANDBY1
EOF
"$tmp/bin/rrc-inspect" -topology "$tmp/topology"

# Bucket the soak's users by owning partition with the same hash the
# router and the servers use.
U0=""
U1=""
for u in $(seq 0 19); do
	if [ "$("$tmp/bin/rrc-inspect" -owner "$u" -partitions 2)" = 0 ]; then
		U0="$U0 $u"
	else
		U1="$U1 $u"
	fi
done
[ -n "$U0" ] && [ -n "$U1" ] || { echo "user bucketing left a partition empty" >&2; exit 1; }

# nth INDEX WORD... prints WORD[INDEX mod count] (POSIX sh, no arrays).
nth() {
	i=$1
	shift
	eval printf '%s\\n' "\"\${$((i % $# + 1))}\""
}

wait_healthy() {
	for _ in $(seq 1 50); do
		if curl -sf "http://$1/healthz" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.2
	done
	echo "$1 never became healthy" >&2
	return 1
}

"$tmp/bin/rrc-server" -model "$tmp/model.tsppr" -addr "$PRIMARY0" -window 20 -omega 3 \
	-events-dir "$tmp/p0" -shards 2 -partition 0/2 &
primary0_pid=$!
"$tmp/bin/rrc-server" -model "$tmp/model.tsppr" -addr "$PRIMARY1" -window 20 -omega 3 \
	-events-dir "$tmp/p1" -shards 2 -partition 1/2 &
primary1_pid=$!
wait_healthy "$PRIMARY0"
wait_healthy "$PRIMARY1"

"$tmp/bin/rrc-server" -model "$tmp/model.tsppr" -addr "$STANDBY0" -window 20 -omega 3 \
	-events-dir "$tmp/s0" -shards 2 -partition 0/2 -follow "http://$PRIMARY0" &
standby0_pid=$!
"$tmp/bin/rrc-server" -model "$tmp/model.tsppr" -addr "$STANDBY1" -window 20 -omega 3 \
	-events-dir "$tmp/s1" -shards 2 -partition 1/2 -follow "http://$PRIMARY1" &
standby1_pid=$!
wait_healthy "$STANDBY0"
wait_healthy "$STANDBY1"

# The router owns failover: fast probes so the takeover fits the soak,
# -retry-budget 1 so every client request can fund one failover retry.
"$tmp/bin/rrc-router" -addr "$ROUTER" -topology "$tmp/topology" \
	-auto-promote -probe-interval 100ms -probe-fails 2 \
	-retry-budget 1 -max-attempts 4 -retry-backoff 50ms &
router_pid=$!
wait_healthy "$ROUTER"

# soak_for SECS: mixed /consume + /recommend/user traffic through the
# router, alternating partitions, one outcome line per request appended
# to the issuing partition's file.
soak_for() {
	end=$(( $(date +%s) + $1 ))
	while [ "$(date +%s)" -lt "$end" ]; do
		p=$(( n % 2 ))
		if [ "$p" = 0 ]; then
			u=$(nth $(( n / 2 )) $U0)
		else
			u=$(nth $(( n / 2 )) $U1)
		fi
		i=$(( n % 13 ))
		if [ $(( n % 5 )) -eq 4 ]; then
			code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
				"http://$ROUTER/recommend/user" -d "{\"user\":$u,\"n\":3}")
			case $code in 200|404) echo ok ;; *) echo "err read $code" ;; esac >>"$tmp/outcomes.$p"
		else
			code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
				"http://$ROUTER/consume" -d "{\"user\":$u,\"item\":$i}")
			case $code in 200) echo ok ;; *) echo "err write $code" ;; esac >>"$tmp/outcomes.$p"
		fi
		n=$(( n + 1 ))
		sleep 0.05
	done
}

: >"$tmp/outcomes.0"
: >"$tmp/outcomes.1"
n=0
half=$(( SOAK_SECS / 2 ))
[ "$half" -ge 1 ] || half=1

echo "soaking ${half}s against the healthy 2-partition fleet"
soak_for "$half"

# Quiesce and require lag 0 on both standbys: everything acknowledged
# so far is replicated, so the kill below can lose nothing.
lag_zero() {
	curl -sf "http://$1/metrics" | awk '
		/^rrc_replica_lag_records/ { if ($NF != 0) bad = 1 }
		END { exit bad }'
}
for standby in "$STANDBY0" "$STANDBY1"; do
	ok=
	for _ in $(seq 1 50); do
		if lag_zero "$standby"; then
			ok=1
			break
		fi
		sleep 0.2
	done
	[ -n "$ok" ] || { echo "replication lag on $standby never drained to 0" >&2; exit 1; }
done
echo "lag drained to 0 on both standbys; killing partition 0's primary (SIGKILL)"

kill -9 "$primary0_pid" 2>/dev/null || true
wait "$primary0_pid" 2>/dev/null || true
primary0_pid=

echo "soaking ${half}s through partition 0's failover"
soak_for "$half"

# Per-partition error budgets: the victim partition may only fail for
# the probe rounds between the kill and the promotion; the untouched
# partition's pair never changed and is held to a far tighter budget.
check_budget() { # check_budget PARTITION DIVISOR
	total=$(wc -l <"$tmp/outcomes.$1")
	errs=$(grep -c '^err' "$tmp/outcomes.$1" || true)
	echo "partition $1: $total requests, $errs client-visible errors (budget < total/$2)"
	[ "$total" -gt 0 ] || { echo "no partition-$1 requests made it through" >&2; exit 1; }
	if [ $(( errs * $2 )) -ge "$total" ]; then
		echo "partition $1 error rate over budget ($errs/$total):" >&2
		grep '^err' "$tmp/outcomes.$1" | sort | uniq -c >&2
		exit 1
	fi
}
check_budget 0 5
check_budget 1 20

# The router must have converged per partition: a write for each key
# range lands (partition 0's now on its promoted standby).
for u in "$(nth 0 $U0)" "$(nth 0 $U1)"; do
	curl -sf -X POST "http://$ROUTER/consume" -d "{\"user\":$u,\"item\":1}" >/dev/null || {
		echo "write for user $u through router failed after failover" >&2
		exit 1
	}
done

# Expositions: the promoted standby still exports the replication
# families; the router exports its rrc_router_* families including the
# failover it drove, the retry-budget ledger, and ZERO misdirects (the
# topology file and every node's -partition agreed all soak).
curl -sf "http://$STANDBY0/metrics" >"$tmp/standby.prom"
curl -sf "http://$ROUTER/metrics" >"$tmp/router.prom"
"$tmp/bin/rrc-inspect" -expfmt - <"$tmp/standby.prom"
"$tmp/bin/rrc-inspect" -expfmt - <"$tmp/router.prom"
for fam in rrc_replica_lag_records rrc_replica_lag_seconds \
	rrc_replica_applied_total rrc_replica_epoch; do
	grep -q "^$fam" "$tmp/standby.prom" || {
		echo "standby /metrics lacks $fam" >&2
		exit 1
	}
done
for fam in rrc_router_requests_total rrc_router_node_state \
	rrc_router_node_epoch rrc_router_failovers_total \
	rrc_router_misdirects_total rrc_router_budget_clients \
	rrc_router_budget_evictions_total; do
	grep -q "^$fam" "$tmp/router.prom" || {
		echo "router /metrics lacks $fam" >&2
		exit 1
	}
done
awk '/^rrc_router_failovers_total/ { if ($NF + 0 >= 1) found = 1 }
	END { exit !found }' "$tmp/router.prom" || {
	echo "router never recorded the failover it drove" >&2
	exit 1
}
awk '/^rrc_router_misdirects_total/ { if ($NF + 0 != 0) bad = 1 }
	END { exit bad }' "$tmp/router.prom" || {
	echo "router recorded misdirects in a correctly partitioned fleet" >&2
	exit 1
}

# Clean shutdowns (router first, so it cannot mistake the teardown for
# another outage and promote), then offline forensics: the promoted
# standby records epoch 1, the untouched partition 1 pair never left
# epoch 0, and the victim pair's timelines must not have forked (lag
# was 0 at the kill).
for pid in "$router_pid" "$standby0_pid" "$primary1_pid" "$standby1_pid"; do
	kill "$pid" 2>/dev/null || true
	wait "$pid" 2>/dev/null || true
done
standby0_pid=
primary1_pid=
standby1_pid=
router_pid=
"$tmp/bin/rrc-inspect" -epoch "$tmp/s0" | grep -q 'epoch=1' || {
	echo "rrc-inspect -epoch did not report epoch 1 on the promoted root" >&2
	exit 1
}
"$tmp/bin/rrc-inspect" -epoch "$tmp/p1" | grep -q 'epoch=0' || {
	echo "partition 1's primary left epoch 0 — the failover leaked across partitions" >&2
	exit 1
}
"$tmp/bin/rrc-inspect" -diverge "$tmp/p0" "$tmp/s0" || {
	echo "rrc-inspect -diverge reported a fork in the victim pair" >&2
	exit 1
}
echo "replica smoke (2 partitions, routed, kill-partition-0-primary): OK"
