#!/bin/sh
# End-to-end replication smoke test (make replica-smoke; non-gating in
# CI): start a primary and a warm standby over real sockets, soak the
# primary with /consume traffic while the standby tails the WAL stream,
# scrape both /metrics, assert the standby's replication lag drains
# back to 0, then promote the standby and verify it owns writes under
# the bumped epoch while the deposed primary refuses them. Finally
# rrc-inspect -epoch and -diverge audit the two events roots offline.
set -eu

PRIMARY=${REPLICA_SMOKE_PRIMARY:-127.0.0.1:18397}
STANDBY=${REPLICA_SMOKE_STANDBY:-127.0.0.1:18398}
SOAK_SECS=${REPLICA_SMOKE_SOAK:-30}
tmp=$(mktemp -d)
primary_pid=
standby_pid=
cleanup() {
	[ -n "$primary_pid" ] && kill "$primary_pid" 2>/dev/null || true
	[ -n "$standby_pid" ] && kill "$standby_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/bin/" ./cmd/rrc-datagen ./cmd/rrc-train ./cmd/rrc-server ./cmd/rrc-inspect

"$tmp/bin/rrc-datagen" -preset gowalla -users 40 -out "$tmp/data.tsv"
"$tmp/bin/rrc-train" -data "$tmp/data.tsv" -out "$tmp/model.tsppr" \
	-window 20 -omega 3 -steps 5000

"$tmp/bin/rrc-server" -model "$tmp/model.tsppr" -addr "$PRIMARY" -window 20 -omega 3 \
	-events-dir "$tmp/primary" -shards 2 &
primary_pid=$!
wait_healthy() {
	for _ in $(seq 1 50); do
		if curl -sf "http://$1/healthz" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.2
	done
	echo "$1 never became healthy" >&2
	return 1
}
wait_healthy "$PRIMARY"

"$tmp/bin/rrc-server" -model "$tmp/model.tsppr" -addr "$STANDBY" -window 20 -omega 3 \
	-events-dir "$tmp/standby" -shards 2 -follow "http://$PRIMARY" &
standby_pid=$!
wait_healthy "$STANDBY"

# Soak: steady /consume traffic against the primary while the standby
# tails. Item ids stay inside the trained model's catalog.
echo "soaking for ${SOAK_SECS}s"
end=$(( $(date +%s) + SOAK_SECS ))
n=0
while [ "$(date +%s)" -lt "$end" ]; do
	u=$(( n % 20 ))
	i=$(( n % 13 ))
	curl -sf -X POST "http://$PRIMARY/consume" -d "{\"user\":$u,\"item\":$i}" >/dev/null
	n=$(( n + 1 ))
	sleep 0.05
done
echo "soaked $n events"
[ "$n" -gt 0 ] || { echo "no events ingested" >&2; exit 1; }

# Both nodes must expose a clean exposition; the standby must export
# the replication families.
curl -sf "http://$PRIMARY/metrics" >"$tmp/primary.prom"
curl -sf "http://$STANDBY/metrics" >"$tmp/standby.prom"
"$tmp/bin/rrc-inspect" -expfmt - <"$tmp/primary.prom"
"$tmp/bin/rrc-inspect" -expfmt - <"$tmp/standby.prom"
for fam in rrc_replica_lag_records rrc_replica_lag_seconds \
	rrc_replica_applied_total rrc_replica_epoch; do
	grep -q "^$fam" "$tmp/standby.prom" || {
		echo "standby /metrics lacks $fam" >&2
		exit 1
	}
done

# Replication lag must drain back to 0 on every shard once traffic
# stops (the stream long-poll ships the tail within a couple seconds).
lag_zero() {
	curl -sf "http://$STANDBY/metrics" | awk '
		/^rrc_replica_lag_records/ { if ($NF != 0) bad = 1 }
		END { exit bad }'
}
ok=
for _ in $(seq 1 50); do
	if lag_zero; then
		ok=1
		break
	fi
	sleep 0.2
done
[ -n "$ok" ] || { echo "replication lag never drained to 0" >&2; exit 1; }
echo "lag drained to 0"

# The standby is read-only until promoted.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$STANDBY/consume" -d '{"user":0,"item":1}')
[ "$code" = "503" ] || { echo "standby accepted a write before promotion (HTTP $code)" >&2; exit 1; }

# Promote: the standby takes over under epoch 1 and owns writes.
curl -sf -X POST "http://$STANDBY/admin/promote" | grep -q '"epoch":1' || {
	echo "promotion did not report epoch 1" >&2
	exit 1
}
curl -sf -X POST "http://$STANDBY/consume" -d '{"user":0,"item":1}' >/dev/null || {
	echo "promoted standby refused a write" >&2
	exit 1
}

# Clean shutdowns, then offline forensics over the two roots: the
# promoted node records epoch 1, and the timelines must not have forked
# (the primary was never written past the shipped horizon).
kill "$primary_pid" 2>/dev/null || true
wait "$primary_pid" 2>/dev/null || true
primary_pid=
kill "$standby_pid" 2>/dev/null || true
wait "$standby_pid" 2>/dev/null || true
standby_pid=
"$tmp/bin/rrc-inspect" -epoch "$tmp/standby" | grep -q 'epoch=1' || {
	echo "rrc-inspect -epoch did not report epoch 1 on the promoted root" >&2
	exit 1
}
"$tmp/bin/rrc-inspect" -diverge "$tmp/primary" "$tmp/standby" || {
	echo "rrc-inspect -diverge reported a fork between primary and standby" >&2
	exit 1
}
echo "replica smoke: OK"
