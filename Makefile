GO ?= go

.PHONY: check build fmt vet test race fuzz fuzz-smoke bench

## check: everything CI should gate on — formatting, vet, race-enabled tests,
## and the fuzz targets over their seed corpora
check: fmt vet race fuzz-smoke

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

## fuzz-smoke: run every fuzz target over its checked-in seed corpus only
## (no mutation) — fast enough to gate on
fuzz-smoke:
	$(GO) test ./internal/core ./internal/dataset -run '^Fuzz' -count=1

## bench: regenerate BENCH_PR4.json — fixed-seed scoring throughput of the
## engine vs the pre-refactor per-call path (ns/op, allocs/op, items/sec)
bench:
	$(GO) run ./cmd/rrc-bench -out BENCH_PR4.json

## fuzz: short bounded fuzzing with mutation — model loader and TSV readers
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzReadModel -fuzztime 20s
	$(GO) test ./internal/dataset -run '^$$' -fuzz FuzzReadWith -fuzztime 20s
	$(GO) test ./internal/dataset -run '^$$' -fuzz FuzzValidateReader -fuzztime 10s
