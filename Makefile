GO ?= go

.PHONY: check build fmt vet test race fuzz fuzz-smoke bench obs-race metrics-smoke shard-chaos replica-chaos replica-smoke router-chaos partition-chaos

## check: everything CI should gate on — formatting, vet, race-enabled tests
## (obs-race first: the metric hot paths are the newest concurrency surface,
## shard-chaos next: panic/fault injection into live sharded traffic,
## replica-chaos after: failover/fencing/rejoin over a live pair,
## router-chaos then the routed fleet end to end — kill the primary under
## live traffic through rrc-router and lose nothing,
## partition-chaos last: P replicated pairs behind key routing — one
## pair's primary killed must not cost the other partitions a single
## error), and the fuzz targets over their seed corpora
check: fmt vet obs-race shard-chaos replica-chaos router-chaos partition-chaos race fuzz-smoke

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

## obs-race: the observability layer's concurrency tests, unconditionally
## re-run (-count=1) — lock-free Record paths racing the exporter
obs-race:
	$(GO) test -race -count=1 ./internal/obs

## shard-chaos: the shard-kill chaos suite, unconditionally re-run under
## the race detector — panics and sticky WAL failures injected into live
## mixed traffic must stay contained to their shard
shard-chaos:
	$(GO) test -race -count=1 -run Shard ./cmd/rrc-server ./internal/shard

## replica-chaos: the replication chaos suite, unconditionally re-run
## under the race detector — primary kill + auto-promote must preserve
## every acked shipped write, a deposed primary must start fenced, and a
## rejoining node must truncate its divergent tail and drain lag to 0
replica-chaos:
	$(GO) test -race -count=1 -run Replica ./cmd/rrc-server ./internal/replica

## router-chaos: the routing chaos suite, unconditionally re-run under
## the race detector — with live traffic flowing through rrc-router,
## killing the primary must lose zero acked writes, reads must keep
## serving throughout, the router must converge on the promoted node
## unaided, and a rejoining deposed primary must be fenced on contact;
## plus the router's own retry-budget/hedging/topology unit suites
router-chaos:
	$(GO) test -race -count=1 -run Router ./cmd/rrc-server ./internal/router

## partition-chaos: the partitioned-fleet chaos suite, unconditionally
## re-run under the race detector — P=3 replicated pairs behind
## key-routed rrc-router, one pair's primary SIGKILLed under live mixed
## traffic: the other partitions must serve error-free, the victim must
## converge unaided with zero acked-write loss, and no epoch may leak
## across partitions; plus the partition identity/ownership unit suites
partition-chaos:
	$(GO) test -race -count=1 -run Partition ./cmd/rrc-server ./internal/shard ./internal/router ./internal/replica

## replica-smoke: end-to-end primary+standby+router soak over real
## sockets — traffic flows through rrc-router, the primary is SIGKILLed
## at half-time, the router auto-promotes the standby, and the client-
## visible error rate across the whole soak must stay under budget;
## all three /metrics scraped and validated, replication lag asserted
## back to 0 before the kill, offline forensics on both roots after
replica-smoke:
	sh scripts/replica_smoke.sh

## metrics-smoke: end-to-end /metrics check — train with -metrics-out,
## serve sharded (-shards=4), scrape, and validate the exposition with
## rrc-inspect -expfmt, including the per-shard rrc_shard_* families
metrics-smoke:
	sh scripts/metrics_smoke.sh

## fuzz-smoke: run every fuzz target over its checked-in seed corpus only
## (no mutation) — fast enough to gate on
fuzz-smoke:
	$(GO) test ./internal/core ./internal/dataset ./internal/wal -run '^Fuzz' -count=1

## bench: regenerate BENCH_PR10.json — fixed-seed scoring throughput of
## the engine (plain, float32-quantized, response-cached) vs the
## pre-refactor per-call path (ns/op, allocs/op, items/sec); the label
## is derived from -out, never hard-coded
bench:
	$(GO) run ./cmd/rrc-bench -out BENCH_PR10.json

## fuzz: short bounded fuzzing with mutation — model loader and TSV readers
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzReadModel -fuzztime 20s
	$(GO) test ./internal/dataset -run '^$$' -fuzz FuzzReadWith -fuzztime 20s
	$(GO) test ./internal/dataset -run '^$$' -fuzz FuzzValidateReader -fuzztime 10s
