GO ?= go

.PHONY: check build fmt vet test race fuzz

## check: everything CI should gate on — formatting, vet, race-enabled tests
check: fmt vet race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: a short bounded fuzz of the model loader (seed corpus always runs in `test`)
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzReadModel -fuzztime 20s
