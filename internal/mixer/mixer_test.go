package mixer

import (
	"testing"

	"tsppr/internal/core"
	"tsppr/internal/datagen"
	"tsppr/internal/features"
	"tsppr/internal/rec"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
	"tsppr/internal/strec"
)

func fixture(t testing.TB) (train []seq.Sequence, model *core.Model, classifier *strec.Model, numItems int) {
	t.Helper()
	cfg := datagen.GowallaLike(10, 21)
	cfg.MinLen, cfg.MaxLen = 80, 150
	cfg.WindowCap = 20
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numItems = ds.NumItems()
	train = ds.Seqs
	b := features.NewBuilder(numItems, 20, 3)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	set, err := sampling.Build(train, ex, sampling.Config{WindowCap: 20, Omega: 3, S: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	model, _, err = core.Train(set, len(train), numItems, ex, core.Config{K: 8, MaxSteps: 15_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	classifier, err = strec.Train(train, numItems, strec.Config{WindowCap: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return train, model, classifier, numItems
}

func userContext(train []seq.Sequence, u int) *rec.Context {
	w := seq.NewWindow(20)
	for _, v := range train[u] {
		w.Push(v)
	}
	return &rec.Context{User: u, Window: w, History: train[u], Omega: 3}
}

func TestNovelRecommenderExcludesHistory(t *testing.T) {
	train, model, _, _ := fixture(t)
	nr, err := NewNovelRecommender(model, train, 200)
	if err != nil {
		t.Fatal(err)
	}
	ctx := userContext(train, 0)
	got := nr.Recommend(ctx, 10, nil)
	if len(got) == 0 {
		t.Fatal("no novel recommendations")
	}
	consumed := map[seq.Item]struct{}{}
	for _, v := range train[0] {
		consumed[v] = struct{}{}
	}
	for _, s := range got {
		if _, ok := consumed[s.Item]; ok {
			t.Fatalf("recommended already-consumed item %d", s.Item)
		}
	}
	// Uniqueness.
	seen := map[seq.Item]struct{}{}
	for _, s := range got {
		if _, dup := seen[s.Item]; dup {
			t.Fatalf("duplicate %d", s.Item)
		}
		seen[s.Item] = struct{}{}
	}
}

func TestNovelRecommenderPoolTruncation(t *testing.T) {
	train, model, _, _ := fixture(t)
	nr, err := NewNovelRecommender(model, train, 7)
	if err != nil {
		t.Fatal(err)
	}
	if nr.PoolSize() != 7 {
		t.Fatalf("pool size %d", nr.PoolSize())
	}
	nrDefault, err := NewNovelRecommender(model, train, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nrDefault.PoolSize() > 500 {
		t.Fatalf("default pool size %d", nrDefault.PoolSize())
	}
}

func TestNovelRecommenderValidation(t *testing.T) {
	train, model, _, _ := fixture(t)
	if _, err := NewNovelRecommender(nil, train, 10); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewNovelRecommender(model, train, -1); err == nil {
		t.Error("negative pool accepted")
	}
}

// slate wraps bare items as a zero-scored slate for Interleave tests,
// which only exercise ordering and deduplication.
func slate(items ...seq.Item) []rec.Scored {
	s := make([]rec.Scored, len(items))
	for i, v := range items {
		s[i] = rec.Scored{Item: v}
	}
	return s
}

func TestInterleaveExtremes(t *testing.T) {
	repeat := slate(1, 2, 3)
	novel := slate(10, 20, 30)
	// p=1: repeat items dominate the head.
	got := Interleave(1, repeat, novel, 3)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("p=1 interleave = %v", got)
	}
	// p=0: novel items dominate.
	got = Interleave(0, repeat, novel, 3)
	if got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("p=0 interleave = %v", got)
	}
	// Out-of-range p clamps rather than panics.
	if got := Interleave(7, repeat, novel, 2); got[0] != 1 {
		t.Fatalf("clamped p=7 = %v", got)
	}
	if got := Interleave(-3, repeat, novel, 2); got[0] != 10 {
		t.Fatalf("clamped p=-3 = %v", got)
	}
}

func TestInterleaveMixes(t *testing.T) {
	repeat := slate(1, 2, 3, 4)
	novel := slate(10, 20, 30, 40)
	got := Interleave(0.5, repeat, novel, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	// With equal weight both heads must appear in the first two slots.
	hasRepeat, hasNovel := false, false
	for _, v := range got[:2] {
		if v == 1 {
			hasRepeat = true
		}
		if v == 10 {
			hasNovel = true
		}
	}
	if !hasRepeat || !hasNovel {
		t.Fatalf("p=0.5 head not mixed: %v", got)
	}
}

func TestInterleaveDeduplicates(t *testing.T) {
	got := Interleave(0.5, slate(1, 2), slate(1, 3), 4)
	seen := map[seq.Item]int{}
	for _, v := range got {
		seen[v]++
		if seen[v] > 1 {
			t.Fatalf("duplicate in %v", got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("got %v, want 3 distinct items", got)
	}
}

func TestInterleaveShortInputs(t *testing.T) {
	if got := Interleave(0.9, nil, slate(5), 3); len(got) != 1 || got[0] != 5 {
		t.Fatalf("empty repeat slate: %v", got)
	}
	if got := Interleave(0.1, slate(5), nil, 3); len(got) != 1 || got[0] != 5 {
		t.Fatalf("empty novel slate: %v", got)
	}
	if got := Interleave(0.5, nil, nil, 3); len(got) != 0 {
		t.Fatalf("both empty: %v", got)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	train, model, classifier, _ := fixture(t)
	nr, err := NewNovelRecommender(model, train, 200)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(classifier, model, nr, train, 20)
	if err != nil {
		t.Fatal(err)
	}
	ctx := userContext(train, 0)
	d := p.Recommend(ctx, 5)
	if d.PRepeat < 0 || d.PRepeat > 1 {
		t.Fatalf("PRepeat = %v", d.PRepeat)
	}
	if len(d.Mixed) == 0 || len(d.Mixed) > 5 {
		t.Fatalf("mixed slate %v", d.Mixed)
	}
	// Mixed must be drawn from the two slates.
	source := map[seq.Item]bool{}
	for _, s := range d.Repeat {
		source[s.Item] = true
	}
	for _, s := range d.Novel {
		source[s.Item] = true
	}
	for _, v := range d.Mixed {
		if !source[v] {
			t.Fatalf("mixed item %d from nowhere", v)
		}
	}

	// Observe keeps running stats consistent.
	before := p.events[0]
	p.Observe(0, ctx.Window, d.Mixed[0])
	if p.events[0] != before+1 {
		t.Fatal("Observe did not bump the event count")
	}
}

func TestPipelineValidation(t *testing.T) {
	train, model, classifier, _ := fixture(t)
	nr, _ := NewNovelRecommender(model, train, 10)
	if _, err := NewPipeline(nil, model, nr, train, 20); err == nil {
		t.Error("nil classifier accepted")
	}
	if _, err := NewPipeline(classifier, nil, nr, train, 20); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewPipeline(classifier, model, nil, train, 20); err == nil {
		t.Error("nil novel recommender accepted")
	}
}
