// Package mixer implements the paper's §4.3 extension and stated future
// work: using TS-PPR for *novel* item recommendation alongside RRC, and
// mixing the two lists into a single recommendation slate driven by the
// STREC repeat-probability estimate.
//
// Novel-item mode reuses the TS-PPR preference function unchanged: for an
// item the user has never consumed, the dynamic features RE and DF are
// zero by definition, so the score reduces to uᵀv + uᵀA_u[IP, IR, 0, 0] —
// static taste plus the item's global quality/reconsumption profile.
// Candidates are drawn from the globally popular items the user has not
// consumed (scoring the whole universe per request would be both slow and
// pointless: implicit-feedback recommenders conventionally restrict to a
// popularity-truncated candidate pool).
//
// The mixer interleaves the repeat and novel slates by expected utility:
// list positions are filled greedily from whichever slate has the larger
// probability-weighted rank mass remaining, where the repeat slate is
// weighted by STREC's P(repeat) and the novel slate by 1 − P(repeat).
package mixer

import (
	"fmt"
	"sort"

	"tsppr/internal/core"
	"tsppr/internal/engine"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
	"tsppr/internal/strec"
	"tsppr/internal/topk"
)

// NovelRecommender ranks items the user has not consumed yet with the
// TS-PPR preference function, evaluated through the shared scoring engine.
// It is safe for concurrent use: the engine pools its own scratch.
type NovelRecommender struct {
	eng *engine.Engine
	// pool is the popularity-ordered candidate pool (most popular first).
	pool []seq.Item
}

// NewNovelRecommender builds a novel-item recommender over the trained
// model. train supplies the popularity ordering; poolSize truncates the
// candidate pool (0 means 500).
func NewNovelRecommender(model *core.Model, train []seq.Sequence, poolSize int) (*NovelRecommender, error) {
	if model == nil {
		return nil, fmt.Errorf("mixer: nil model")
	}
	if poolSize == 0 {
		poolSize = 500
	}
	if poolSize < 0 {
		return nil, fmt.Errorf("mixer: poolSize %d < 0", poolSize)
	}
	freq := make(map[seq.Item]int)
	for _, s := range train {
		for _, v := range s {
			freq[v]++
		}
	}
	pool := make([]seq.Item, 0, len(freq))
	for v := range freq {
		pool = append(pool, v)
	}
	sort.Slice(pool, func(i, j int) bool {
		if freq[pool[i]] != freq[pool[j]] {
			return freq[pool[i]] > freq[pool[j]]
		}
		return pool[i] < pool[j]
	})
	if len(pool) > poolSize {
		pool = pool[:poolSize]
	}
	return &NovelRecommender{eng: engine.New(model), pool: pool}, nil
}

// PoolSize returns the number of candidate items considered.
func (nr *NovelRecommender) PoolSize() int { return len(nr.pool) }

// Recommend appends up to n scored items the user has never consumed
// (w.r.t. ctx.History), ranked by the TS-PPR preference, and returns the
// extended slice. It implements rec.Recommender.
func (nr *NovelRecommender) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	if n <= 0 {
		return dst
	}
	consumed := make(map[seq.Item]struct{}, len(ctx.History))
	for _, v := range ctx.History {
		consumed[v] = struct{}{}
	}
	sel := topk.New(n)
	for _, v := range nr.pool {
		if _, ok := consumed[v]; ok {
			continue
		}
		sel.Push(v, nr.eng.Score(ctx.User, v, ctx.Window))
	}
	return sel.AppendSorted(dst)
}

// Factory returns a rec.Factory for the novel-item mode.
func (nr *NovelRecommender) Factory() rec.Factory {
	return rec.Factory{Name: "TS-PPR-novel", New: func(uint64) rec.Recommender { return nr }}
}

// Interleave merges a scored repeat slate and a scored novel slate into
// one list of at most n items. pRepeat ∈ [0,1] weighs the repeat slate;
// items are drawn greedily from whichever slate has the higher remaining
// probability-weighted rank score (1/rank weighting), preserving
// within-slate order and dropping duplicates. Within-slate scores are not
// comparable across methods, so mixing uses rank positions, not raw
// scores.
func Interleave(pRepeat float64, repeat, novel []rec.Scored, n int) []seq.Item {
	if pRepeat < 0 {
		pRepeat = 0
	}
	if pRepeat > 1 {
		pRepeat = 1
	}
	out := make([]seq.Item, 0, n)
	seen := make(map[seq.Item]struct{}, n)
	ri, ni := 0, 0
	for len(out) < n && (ri < len(repeat) || ni < len(novel)) {
		// Remaining head weights.
		rw, nw := -1.0, -1.0
		if ri < len(repeat) {
			rw = pRepeat / float64(ri+1)
		}
		if ni < len(novel) {
			nw = (1 - pRepeat) / float64(ni+1)
		}
		var pick seq.Item
		if rw >= nw {
			pick = repeat[ri].Item
			ri++
		} else {
			pick = novel[ni].Item
			ni++
		}
		if _, dup := seen[pick]; dup {
			continue
		}
		seen[pick] = struct{}{}
		out = append(out, pick)
	}
	return out
}

// Pipeline is the full §5.7-style serving stack: STREC estimates the
// repeat probability, TS-PPR ranks the reconsumable candidates, the novel
// recommender ranks unseen items, and the two slates are interleaved.
type Pipeline struct {
	Classifier *strec.Model
	Repeat     *engine.Engine
	Novel      *NovelRecommender

	// repeat-statistics state per user, needed by STREC's running features.
	repeats, events map[int]int
}

// NewPipeline assembles a pipeline. The per-user repeat statistics start
// from the supplied training sequences.
func NewPipeline(classifier *strec.Model, model *core.Model, novel *NovelRecommender, train []seq.Sequence, windowCap int) (*Pipeline, error) {
	if classifier == nil || model == nil || novel == nil {
		return nil, fmt.Errorf("mixer: nil pipeline component")
	}
	p := &Pipeline{
		Classifier: classifier,
		Repeat:     engine.New(model),
		Novel:      novel,
		repeats:    make(map[int]int, len(train)),
		events:     make(map[int]int, len(train)),
	}
	for u, s := range train {
		reps, evs := 0, 0
		seq.Scan(s, windowCap, func(ev seq.Event, _ *seq.Window) bool {
			evs++
			if ev.Repeat {
				reps++
			}
			return true
		})
		p.repeats[u], p.events[u] = reps, evs
	}
	return p, nil
}

// Decision is one pipeline recommendation with its routing diagnostics.
// Repeat and Novel carry the scored slates as the recommenders returned
// them; Mixed is the interleaved final list.
type Decision struct {
	PRepeat float64
	Repeat  []rec.Scored
	Novel   []rec.Scored
	Mixed   []seq.Item
}

// Recommend produces a mixed slate of n items for the context.
func (p *Pipeline) Recommend(ctx *rec.Context, n int) Decision {
	d := Decision{
		PRepeat: p.Classifier.Predict(ctx.Window, p.repeats[ctx.User], p.events[ctx.User]),
	}
	d.Repeat = p.Repeat.Recommend(ctx, n, nil)
	d.Novel = p.Novel.Recommend(ctx, n, nil)
	d.Mixed = Interleave(d.PRepeat, d.Repeat, d.Novel, n)
	return d
}

// Observe updates the per-user repeat statistics after the user's actual
// next consumption is revealed.
func (p *Pipeline) Observe(user int, w *seq.Window, next seq.Item) {
	p.events[user]++
	if w.Contains(next) {
		p.repeats[user]++
	}
}
