package sessions

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tsppr/internal/faultinject"
	"tsppr/internal/seq"
	"tsppr/internal/wal"
)

func mustStore(cfg Config) *Store {
	if cfg.WindowCap == 0 {
		cfg.WindowCap = 5
	}
	return NewStore(cfg)
}

// fingerprint canonicalizes a store's state for equality checks.
func fingerprint(t *testing.T, s *Store) string {
	t.Helper()
	b, err := json.Marshal(s.Dump())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestApplyAdvancesWindows(t *testing.T) {
	s := mustStore(Config{WindowCap: 3})
	events := []struct {
		user int
		item seq.Item
	}{{0, 1}, {0, 2}, {1, 7}, {0, 3}, {0, 4}}
	for i, ev := range events {
		if !s.Apply(uint64(i+1), ev.user, ev.item) {
			t.Fatalf("event %d not applied", i)
		}
	}
	win, ok := s.WindowClone(0)
	if !ok {
		t.Fatal("no window for user 0")
	}
	items, pushed := win.Snapshot()
	if pushed != 4 || !reflect.DeepEqual(items, []seq.Item{2, 3, 4}) {
		t.Fatalf("user 0 window = %v (pushed %d)", items, pushed)
	}
	if s.WindowLen(1) != 1 || s.WindowLen(99) != 0 {
		t.Fatalf("window lengths wrong: u1=%d u99=%d", s.WindowLen(1), s.WindowLen(99))
	}
	if s.AppliedLSN() != 5 || s.Len() != 2 {
		t.Fatalf("lsn=%d sessions=%d", s.AppliedLSN(), s.Len())
	}
}

func TestApplyIsIdempotentOverLSNs(t *testing.T) {
	s := mustStore(Config{WindowCap: 3})
	s.Apply(1, 0, 5)
	s.Apply(2, 0, 6)
	// Over-replay: the same LSNs again must not double-push.
	if s.Apply(1, 0, 5) || s.Apply(2, 0, 6) {
		t.Fatal("duplicate LSNs were applied")
	}
	if s.WindowLen(0) != 2 {
		t.Fatalf("window len %d after over-replay, want 2", s.WindowLen(0))
	}
}

func TestApplyDropsOutOfBoundsEvents(t *testing.T) {
	s := mustStore(Config{WindowCap: 3, NumUsers: 2, NumItems: 10})
	if s.Apply(1, 5, 1) || s.Apply(2, 0, 99) || s.Apply(3, -1, 1) || s.Apply(4, 0, -2) {
		t.Fatal("out-of-bounds event applied")
	}
	if s.Dropped() != 4 || s.Len() != 0 {
		t.Fatalf("dropped=%d sessions=%d", s.Dropped(), s.Len())
	}
	// The LSN still advances: a dropped event is observed, not lost.
	if s.AppliedLSN() != 4 {
		t.Fatalf("applied lsn %d, want 4", s.AppliedLSN())
	}
}

func TestLRUEviction(t *testing.T) {
	s := mustStore(Config{WindowCap: 3, MaxUsers: 2})
	s.Apply(1, 0, 1)
	s.Apply(2, 1, 1)
	s.Apply(3, 0, 2) // touch 0: user 1 is now LRU
	s.Apply(4, 2, 1) // over the bound: evict user 1
	if _, ok := s.WindowClone(1); ok {
		t.Fatal("LRU user 1 survived eviction")
	}
	if _, ok := s.WindowClone(0); !ok {
		t.Fatal("recently-used user 0 was evicted")
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d", s.Evictions())
	}
	// A re-consuming evicted user gets a fresh window.
	s.Apply(5, 1, 9)
	items, pushed := mustWin(t, s, 1)
	if pushed != 1 || len(items) != 1 {
		t.Fatalf("re-created session window = %v (pushed %d)", items, pushed)
	}
}

func mustWin(t *testing.T, s *Store, user int) ([]seq.Item, int) {
	t.Helper()
	win, ok := s.WindowClone(user)
	if !ok {
		t.Fatalf("no window for user %d", user)
	}
	items, pushed := win.Snapshot()
	return items, pushed
}

func TestEventCodecRoundtrip(t *testing.T) {
	b := EncodeEvent(123, 456)
	user, item, err := DecodeEvent(b)
	if err != nil || user != 123 || item != 456 {
		t.Fatalf("roundtrip = (%d, %d, %v)", user, item, err)
	}
	if _, _, err := DecodeEvent(b[:5]); err == nil {
		t.Fatal("short payload decoded")
	}
}

func TestSnapshotRoundtripPreservesStateAndLRU(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(Config{WindowCap: 4, MaxUsers: 8})
	lsn := uint64(0)
	for i, ev := range []struct {
		user int
		item seq.Item
	}{{2, 1}, {0, 3}, {1, 4}, {0, 5}, {2, 6}, {1, 7}, {1, 8}} {
		lsn = uint64(i + 1)
		s.Apply(lsn, ev.user, ev.item)
	}
	path, savedLSN, err := s.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	if savedLSN != lsn {
		t.Fatalf("snapshot lsn %d, want %d", savedLSN, lsn)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	restored, stats, err := LoadLatest(dir, Config{WindowCap: 4, MaxUsers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotLSN != lsn || stats.SnapshotUsers != 3 {
		t.Fatalf("load stats = %+v", stats)
	}
	if fingerprint(t, restored) != fingerprint(t, s) {
		t.Fatalf("restored state differs:\n%s\n%s", fingerprint(t, restored), fingerprint(t, s))
	}
	if restored.AppliedLSN() != lsn {
		t.Fatalf("restored lsn %d", restored.AppliedLSN())
	}
	// LRU order survived the roundtrip: the least-recently-used session
	// (user 0, last touched at lsn 4) is the first eviction victim.
	restored.Apply(lsn+1, 5, 1)
	restored.Apply(lsn+2, 6, 1)
	s.Apply(lsn+1, 5, 1)
	s.Apply(lsn+2, 6, 1)
	// Shrink both over a tighter store to compare eviction order.
	if fingerprint(t, restored) != fingerprint(t, s) {
		t.Fatal("post-restore applies diverged from the live store")
	}
}

func TestLoadLatestSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(Config{WindowCap: 4})
	s.Apply(1, 0, 1)
	if _, _, err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	s.Apply(2, 0, 2)
	path2, _, err := s.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a body byte of the newest snapshot: its CRC check must fail
	// and recovery must fall back to the older generation.
	raw, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 1
	if err := os.WriteFile(path2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	restored, stats, err := LoadLatest(dir, Config{WindowCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotsSkipped != 1 || stats.SnapshotLSN != 1 {
		t.Fatalf("fallback stats = %+v", stats)
	}
	if restored.AppliedLSN() != 1 {
		t.Fatalf("restored from lsn %d, want the older snapshot", restored.AppliedLSN())
	}
}

func TestLoadLatestRefusesCapacityMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(Config{WindowCap: 4})
	s.Apply(1, 0, 1)
	if _, _, err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(dir, Config{WindowCap: 9}); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
}

func TestPruneSnapshotsKeepsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(Config{WindowCap: 4})
	for i := 1; i <= 4; i++ {
		s.Apply(uint64(i), 0, seq.Item(i))
		if _, _, err := s.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	horizon, err := PruneSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if horizon != 3 {
		t.Fatalf("prune horizon %d, want the older kept snapshot's lsn 3", horizon)
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != KeepSnapshots {
		t.Fatalf("%d snapshots kept, want %d", len(snaps), KeepSnapshots)
	}
}

func TestSnapshotWriteFailureLeavesOldGeneration(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	dir := t.TempDir()
	s := mustStore(Config{WindowCap: 4})
	s.Apply(1, 0, 1)
	if _, _, err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	s.Apply(2, 0, 2)
	faultinject.Arm("sessions.snapshot", faultinject.Plan{Mode: faultinject.ShortWrite})
	if _, _, err := s.Save(dir); err == nil {
		t.Fatal("short-written snapshot reported success")
	}
	faultinject.Reset()
	restored, stats, err := LoadLatest(dir, Config{WindowCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotLSN != 1 || restored.AppliedLSN() != 1 {
		t.Fatalf("old generation lost: %+v", stats)
	}
}

func TestRecoverFromSnapshotPlusWALTail(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{WindowCap: 4}
	live := NewStore(cfg)
	apply := func(user int, item seq.Item) {
		lsn, err := l.Append(EncodeEvent(user, item))
		if err != nil {
			t.Fatal(err)
		}
		live.Apply(lsn, user, item)
	}
	apply(0, 1)
	apply(1, 2)
	apply(0, 3)
	if _, _, err := live.Save(dir); err != nil {
		t.Fatal(err)
	}
	apply(2, 4) // after the snapshot: only in the WAL
	apply(0, 5)

	recovered, stats, err := Recover(dir, l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotLSN != 3 || stats.Replayed != 2 {
		t.Fatalf("recover stats = %+v", stats)
	}
	if fingerprint(t, recovered) != fingerprint(t, live) {
		t.Fatalf("recovered != live:\n%s\n%s", fingerprint(t, recovered), fingerprint(t, live))
	}
	l.Close()
}

func TestRecoverWithoutSnapshotReplaysEverything(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cfg := Config{WindowCap: 4}
	live := NewStore(cfg)
	for i := 0; i < 9; i++ {
		lsn, err := l.Append(EncodeEvent(i%3, seq.Item(i)))
		if err != nil {
			t.Fatal(err)
		}
		live.Apply(lsn, i%3, seq.Item(i))
	}
	recovered, stats, err := Recover(dir, l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotPath != "" || stats.Replayed != 9 {
		t.Fatalf("recover stats = %+v", stats)
	}
	if fingerprint(t, recovered) != fingerprint(t, live) {
		t.Fatal("full-replay recovery diverged")
	}
	_ = filepath.Join // keep import balanced if helpers change
}

// TestUserLSN covers the response cache's version probe: Apply stamps
// each session with the LSN of its latest event, UserLSN reads it
// without touching LRU recency, and unknown users report absence.
func TestUserLSN(t *testing.T) {
	s := mustStore(Config{WindowCap: 3})
	if _, ok := s.UserLSN(0); ok {
		t.Fatal("unknown user reported an LSN")
	}
	s.Apply(1, 0, 5)
	s.Apply(2, 1, 6)
	s.Apply(3, 0, 7)
	if lsn, ok := s.UserLSN(0); !ok || lsn != 3 {
		t.Fatalf("user 0 lsn = %d,%v, want 3", lsn, ok)
	}
	if lsn, ok := s.UserLSN(1); !ok || lsn != 2 {
		t.Fatalf("user 1 lsn = %d,%v, want 2", lsn, ok)
	}
	// A duplicate LSN is not applied and must not re-stamp the session.
	if s.Apply(3, 0, 7) {
		t.Fatal("duplicate applied")
	}
	if lsn, _ := s.UserLSN(0); lsn != 3 {
		t.Fatalf("over-replay moved user 0 lsn to %d", lsn)
	}
}

// UserLSN is a read-side probe: it must not refresh LRU recency, or
// heavy cache probing would shield hot readers from eviction and evict
// writers instead.
func TestUserLSNDoesNotTouchLRU(t *testing.T) {
	s := mustStore(Config{WindowCap: 3, MaxUsers: 2})
	s.Apply(1, 0, 1)
	s.Apply(2, 1, 1)
	// Probe user 0 repeatedly; it must stay the LRU victim.
	for i := 0; i < 4; i++ {
		if _, ok := s.UserLSN(0); !ok {
			t.Fatal("user 0 missing")
		}
	}
	s.Apply(3, 2, 1) // over the bound
	if _, ok := s.WindowClone(0); ok {
		t.Fatal("probed-only user 0 survived; UserLSN refreshed recency")
	}
	if _, ok := s.WindowClone(1); !ok {
		t.Fatal("user 1 evicted")
	}
}

// WindowCloneLSN must return the window and the LSN from one critical
// section: the pair is what makes a response-cache fill attributable to
// an exact store version.
func TestWindowCloneLSN(t *testing.T) {
	s := mustStore(Config{WindowCap: 3})
	if _, _, ok := s.WindowCloneLSN(0); ok {
		t.Fatal("unknown user cloned")
	}
	s.Apply(1, 0, 5)
	s.Apply(2, 0, 6)
	win, lsn, ok := s.WindowCloneLSN(0)
	if !ok || lsn != 2 {
		t.Fatalf("clone lsn = %d,%v, want 2", lsn, ok)
	}
	items, pushed := win.Snapshot()
	if pushed != 2 || !reflect.DeepEqual(items, []seq.Item{5, 6}) {
		t.Fatalf("cloned window = %v (pushed %d)", items, pushed)
	}
	// The clone is a copy: later applies must not leak into it.
	s.Apply(3, 0, 7)
	if items2, _ := win.Snapshot(); !reflect.DeepEqual(items2, items) {
		t.Fatal("clone shares storage with the live window")
	}
	if _, lsn, _ := s.WindowCloneLSN(0); lsn != 3 {
		t.Fatalf("post-apply clone lsn = %d, want 3", lsn)
	}
}

// A restored snapshot has no per-event attribution, so every session is
// conservatively stamped with the snapshot's applied LSN: probes after
// restart never hit with an LSN older than any state they could see.
func TestSnapshotRestoreStampsSessionLSNs(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(Config{WindowCap: 4})
	s.Apply(1, 0, 1)
	s.Apply(2, 1, 2)
	s.Apply(3, 1, 3)
	if _, _, err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	restored, _, err := LoadLatest(dir, Config{WindowCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, user := range []int{0, 1} {
		if lsn, ok := restored.UserLSN(user); !ok || lsn != 3 {
			t.Fatalf("restored user %d lsn = %d,%v, want snapshot lsn 3", user, lsn, ok)
		}
	}
	// Live applies after restore stamp precisely again.
	restored.Apply(4, 0, 9)
	if lsn, _ := restored.UserLSN(0); lsn != 4 {
		t.Fatalf("post-restore apply lsn = %d, want 4", lsn)
	}
	if lsn, _ := restored.UserLSN(1); lsn != 3 {
		t.Fatalf("untouched user moved to lsn %d", lsn)
	}
}
