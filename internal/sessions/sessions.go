// Package sessions holds rrc-server's online per-user consumption
// state: a bounded map of user → time window W_ut, fed by WAL-appended
// consumption events and recoverable after a crash from the latest
// snapshot plus a WAL tail replay.
//
// The store is deliberately dumb about durability: callers append to
// the WAL first and Apply second, so the on-disk log is always ahead of
// (or equal to) memory and recovery can only over-replay, never invent.
// Apply is idempotent over LSNs, which makes the over-replay harmless.
package sessions

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sync"

	"tsppr/internal/seq"
	"tsppr/internal/wal"
)

// Config bounds a Store.
type Config struct {
	WindowCap int // |W| per user; required > 0
	MaxUsers  int // LRU session bound; 0 → DefaultMaxUsers
	NumUsers  int // user-id validity bound; 0 → unbounded
	NumItems  int // item-id validity bound; 0 → unbounded
}

// DefaultMaxUsers is the LRU session bound when Config.MaxUsers is 0.
const DefaultMaxUsers = 1 << 16

// Store is the in-memory session state. All methods are safe for
// concurrent use.
type Store struct {
	mu         sync.Mutex
	cfg        Config
	users      map[int]*entry
	lru        *list.List // Front = most recently used
	appliedLSN uint64
	evictions  int64
	dropped    int64 // replayed events outside the configured id bounds
}

type entry struct {
	user int
	win  *seq.Window
	lsn  uint64 // LSN of the last event applied to this window
	elem *list.Element
}

// NewStore returns an empty store. It panics on a non-positive window
// capacity, mirroring seq.NewWindow.
func NewStore(cfg Config) *Store {
	if cfg.WindowCap <= 0 {
		panic(fmt.Sprintf("sessions: window capacity %d <= 0", cfg.WindowCap))
	}
	if cfg.MaxUsers <= 0 {
		cfg.MaxUsers = DefaultMaxUsers
	}
	return &Store{cfg: cfg, users: make(map[int]*entry), lru: list.New()}
}

// Apply advances user's window with item as the event at the given LSN.
// Events at or below the store's applied LSN are duplicates from a WAL
// over-replay and are ignored; events outside the configured user/item
// bounds are dropped and counted, never applied. It reports whether the
// event advanced state.
func (s *Store) Apply(lsn uint64, user int, item seq.Item) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lsn <= s.appliedLSN {
		return false
	}
	s.appliedLSN = lsn
	if user < 0 || (s.cfg.NumUsers > 0 && user >= s.cfg.NumUsers) ||
		item < 0 || (s.cfg.NumItems > 0 && int(item) >= s.cfg.NumItems) {
		s.dropped++
		return false
	}
	e := s.touchLocked(user)
	e.win.Push(item)
	e.lsn = lsn
	return true
}

// touchLocked returns user's entry, creating it (and evicting the least
// recently used session when over MaxUsers) as needed, and marks it
// most recently used.
func (s *Store) touchLocked(user int) *entry {
	e, ok := s.users[user]
	if !ok {
		e = &entry{user: user, win: seq.NewWindow(s.cfg.WindowCap)}
		e.elem = s.lru.PushFront(e)
		s.users[user] = e
		for len(s.users) > s.cfg.MaxUsers {
			oldest := s.lru.Back()
			victim := oldest.Value.(*entry)
			s.lru.Remove(oldest)
			delete(s.users, victim.user)
			s.evictions++
		}
		return e
	}
	s.lru.MoveToFront(e.elem)
	return e
}

// WindowClone returns an independent copy of user's current window (a
// read also counts as LRU use). The clone is safe to score against
// without holding any lock.
func (s *Store) WindowClone(user int) (*seq.Window, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.users[user]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	return e.win.Clone(), true
}

// UserLSN returns the LSN of the last event applied to user's window.
// It is the response cache's version probe: an entry cached under this
// LSN is current. Deliberately does not touch LRU order — a probe that
// hits the cache never materializes a read of the window, so it should
// not count as one.
func (s *Store) UserLSN(user int) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.users[user]
	if !ok {
		return 0, false
	}
	return e.lsn, true
}

// WindowCloneLSN is WindowClone plus the window's applied LSN, captured
// under the same lock hold. Callers that cache the scored result keyed
// by LSN need the pair to be atomic: cloning and then asking for the
// LSN separately could tag a pre-consume window with a post-consume
// LSN, making a stale cache entry look current forever.
func (s *Store) WindowCloneLSN(user int) (*seq.Window, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.users[user]
	if !ok {
		return nil, 0, false
	}
	s.lru.MoveToFront(e.elem)
	return e.win.Clone(), e.lsn, true
}

// WindowLen returns the current length of user's window (0 when the
// user has no session). Unlike WindowClone it does not touch LRU order.
func (s *Store) WindowLen(user int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.users[user]; ok {
		return e.win.Len()
	}
	return 0
}

// Len returns the number of live sessions.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.users)
}

// AppliedLSN returns the LSN of the last event observed (applied or
// dropped).
func (s *Store) AppliedLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appliedLSN
}

// Evictions returns how many sessions the LRU bound has evicted.
func (s *Store) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Dropped returns how many events were outside the id bounds.
func (s *Store) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// UserWindow is one session in serializable form (see seq.Snapshot).
type UserWindow struct {
	User   int        `json:"u"`
	Pushed int        `json:"t"`
	Items  []seq.Item `json:"w"`
}

// Dump returns every session in ascending user order — the canonical
// fingerprint of the store's state, used by tests to prove recovery
// equivalence.
func (s *Store) Dump() []UserWindow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.lruDumpLocked()
	// lruDumpLocked is least-recent-first; re-sort by user id.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].User > out[j].User; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// lruDumpLocked serializes sessions least-recently-used first, so that
// re-applying them in file order reconstructs both the windows and the
// LRU recency order exactly.
func (s *Store) lruDumpLocked() []UserWindow {
	out := make([]UserWindow, 0, len(s.users))
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		items, pushed := e.win.Snapshot()
		out = append(out, UserWindow{User: e.user, Pushed: pushed, Items: items})
	}
	return out
}

// eventSize is the wire size of one encoded consumption event.
const eventSize = 8

// EncodeEvent serializes one consumption event as the WAL payload:
// little-endian uint32 user, uint32 item.
func EncodeEvent(user int, item seq.Item) []byte {
	b := make([]byte, eventSize)
	binary.LittleEndian.PutUint32(b[0:4], uint32(user))
	binary.LittleEndian.PutUint32(b[4:8], uint32(item))
	return b
}

// DecodeEvent is the inverse of EncodeEvent.
func DecodeEvent(b []byte) (user int, item seq.Item, err error) {
	if len(b) != eventSize {
		return 0, 0, fmt.Errorf("sessions: event payload %d bytes, want %d", len(b), eventSize)
	}
	return int(binary.LittleEndian.Uint32(b[0:4])), seq.Item(binary.LittleEndian.Uint32(b[4:8])), nil
}

// RecoverStats describes what Recover rebuilt state from.
type RecoverStats struct {
	SnapshotPath     string // "" when no usable snapshot existed
	SnapshotLSN      uint64
	SnapshotUsers    int
	SnapshotsSkipped int // unreadable/corrupt snapshots passed over
	Replayed         int // WAL records applied after the snapshot
}

// Recover rebuilds a store from dir: the newest loadable snapshot, then
// a replay of every WAL record past the snapshot's LSN. A corrupt or
// incompatible snapshot falls back to the next older one (and
// ultimately to a full-log replay), so a crash mid-snapshot can slow
// recovery down but never lose acknowledged events.
func Recover(dir string, log *wal.Log, cfg Config) (*Store, RecoverStats, error) {
	store, stats, err := LoadLatest(dir, cfg)
	if err != nil {
		return nil, stats, err
	}
	err = log.Replay(store.AppliedLSN()+1, func(lsn uint64, payload []byte) error {
		user, item, err := DecodeEvent(payload)
		if err != nil {
			// A CRC-intact record that does not decode is a version or
			// programming error, not media damage: halt loudly.
			return fmt.Errorf("lsn %d: %w", lsn, err)
		}
		store.Apply(lsn, user, item)
		stats.Replayed++
		return nil
	})
	if err != nil {
		return nil, stats, fmt.Errorf("sessions: recover: %w", err)
	}
	return store, stats, nil
}
