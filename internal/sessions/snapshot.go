// Snapshot persistence: periodic whole-store dumps that bound recovery
// time and let the WAL be pruned. A snapshot is a JSON-lines file named
// sessions-<appliedLSN as %016x>.snap written atomically via
// internal/atomicio: line 1 is a header binding the file to its format,
// window capacity, applied LSN, and a CRC32-C of the body; then one
// line per session, least-recently-used first, so restoring in file
// order reconstructs both the windows and the LRU recency order.
package sessions

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"tsppr/internal/atomicio"
	"tsppr/internal/seq"
)

const (
	snapFormat = "tsppr-sessnap-v1"
	snapPrefix = "sessions-"
	snapSuffix = ".snap"

	// KeepSnapshots is how many generations Prune retains: the newest
	// for fast recovery, plus one older fallback in case a crash or bit
	// rot claims the newest. The WAL must therefore only be pruned up to
	// the *oldest kept* snapshot's LSN.
	KeepSnapshots = 2
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

type snapHeader struct {
	Format     string `json:"format"`
	WindowCap  int    `json:"window_cap"`
	AppliedLSN uint64 `json:"applied_lsn"`
	Users      int    `json:"users"`
	BodyCRC    uint32 `json:"body_crc"`
}

// Save atomically writes the store's current state to dir and returns
// the snapshot path and its applied LSN. The write streams through the
// "sessions.snapshot" fault-injection point; on any failure the
// previous snapshot generation is untouched.
func (s *Store) Save(dir string) (string, uint64, error) {
	s.mu.Lock()
	dump := s.lruDumpLocked()
	lsn := s.appliedLSN
	cap := s.cfg.WindowCap
	s.mu.Unlock()

	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, uw := range dump {
		if err := enc.Encode(uw); err != nil {
			return "", 0, fmt.Errorf("sessions: snapshot encode: %w", err)
		}
	}
	hdr := snapHeader{
		Format:     snapFormat,
		WindowCap:  cap,
		AppliedLSN: lsn,
		Users:      len(dump),
		BodyCRC:    crc32.Checksum(body.Bytes(), snapCRC),
	}
	path := filepath.Join(dir, snapName(lsn))
	err := atomicio.WriteFile(path, "sessions.snapshot", func(w io.Writer) error {
		henc := json.NewEncoder(w)
		if err := henc.Encode(hdr); err != nil {
			return err
		}
		_, err := w.Write(body.Bytes())
		return err
	})
	if err != nil {
		return "", 0, fmt.Errorf("sessions: snapshot: %w", err)
	}
	return path, lsn, nil
}

// LoadLatest builds a store from the newest loadable snapshot in dir.
// Corrupt or torn snapshots are skipped (counted in SnapshotsSkipped)
// in favor of older generations; with no usable snapshot the store
// starts empty and recovery falls back to a full WAL replay. A window-
// capacity mismatch is a loud error, not a skip: silently rebuilding
// windows at a different |W| would corrupt every session.
func LoadLatest(dir string, cfg Config) (*Store, RecoverStats, error) {
	var stats RecoverStats
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, stats, err
	}
	for i := len(snaps) - 1; i >= 0; i-- { // newest first
		path := filepath.Join(dir, snaps[i].name)
		store, hdr, err := loadSnapshot(path, cfg)
		if err != nil {
			var mismatch *capMismatchError
			if errors.As(err, &mismatch) {
				return nil, stats, err
			}
			stats.SnapshotsSkipped++
			continue
		}
		stats.SnapshotPath = path
		stats.SnapshotLSN = hdr.AppliedLSN
		stats.SnapshotUsers = hdr.Users
		return store, stats, nil
	}
	return NewStore(cfg), stats, nil
}

type capMismatchError struct {
	path      string
	got, want int
}

func (e *capMismatchError) Error() string {
	return fmt.Sprintf("sessions: %s was taken at window capacity %d, store configured for %d — refusing to restore resized windows", e.path, e.got, e.want)
}

func loadSnapshot(path string, cfg Config) (*Store, snapHeader, error) {
	var hdr snapHeader
	f, err := os.Open(path)
	if err != nil {
		return nil, hdr, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	hdrLine, err := br.ReadBytes('\n')
	if err != nil {
		return nil, hdr, fmt.Errorf("sessions: %s: truncated header: %w", path, err)
	}
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return nil, hdr, fmt.Errorf("sessions: %s: %w", path, err)
	}
	if hdr.Format != snapFormat {
		return nil, hdr, fmt.Errorf("sessions: %s: format %q, want %q", path, hdr.Format, snapFormat)
	}
	if hdr.WindowCap != cfg.WindowCap {
		return nil, hdr, &capMismatchError{path: path, got: hdr.WindowCap, want: cfg.WindowCap}
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, hdr, fmt.Errorf("sessions: %s: %w", path, err)
	}
	if got := crc32.Checksum(body, snapCRC); got != hdr.BodyCRC {
		return nil, hdr, fmt.Errorf("sessions: %s: body CRC %08x, header says %08x", path, got, hdr.BodyCRC)
	}
	s := NewStore(cfg)
	s.appliedLSN = hdr.AppliedLSN
	dec := json.NewDecoder(bytes.NewReader(body))
	n := 0
	for {
		var uw UserWindow
		if err := dec.Decode(&uw); err == io.EOF {
			break
		} else if err != nil {
			return nil, hdr, fmt.Errorf("sessions: %s: session %d: %w", path, n, err)
		}
		win, err := seq.RestoreWindow(cfg.WindowCap, uw.Pushed, uw.Items)
		if err != nil {
			return nil, hdr, fmt.Errorf("sessions: %s: user %d: %w", path, uw.User, err)
		}
		// Sessions are stored least-recent-first; pushing each to the
		// LRU front replays the recency order exactly. The snapshot does
		// not record per-user LSNs, so restored entries inherit the
		// snapshot's applied LSN: a conservative over-stamp (the user's
		// last event is ≤ it) that only matters to cache versioning,
		// where WAL replay past the snapshot re-stamps exactly and a
		// fresh store has no cache to be stale against.
		e := &entry{user: uw.User, win: win, lsn: hdr.AppliedLSN}
		e.elem = s.lru.PushFront(e)
		s.users[uw.User] = e
		n++
	}
	if n != hdr.Users {
		return nil, hdr, fmt.Errorf("sessions: %s: %d sessions, header says %d", path, n, hdr.Users)
	}
	// If the configured bound shrank since the snapshot, evict down.
	for len(s.users) > s.cfg.MaxUsers {
		oldest := s.lru.Back()
		victim := oldest.Value.(*entry)
		s.lru.Remove(oldest)
		delete(s.users, victim.user)
		s.evictions++
	}
	return s, hdr, nil
}

// PruneSnapshots removes all but the newest KeepSnapshots generations
// and returns the applied LSN of the oldest kept snapshot (0 when none
// exist) — the safe WAL prune horizon.
func PruneSnapshots(dir string) (uint64, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return 0, err
	}
	for len(snaps) > KeepSnapshots {
		if err := os.Remove(filepath.Join(dir, snaps[0].name)); err != nil {
			return 0, fmt.Errorf("sessions: prune snapshot: %w", err)
		}
		snaps = snaps[1:]
	}
	if len(snaps) == 0 {
		return 0, nil
	}
	return snaps[0].lsn, nil
}

// SnapshotPath returns the canonical snapshot file path for an applied
// LSN in dir — where a replica writes a snapshot downloaded from its
// primary so LoadLatest and the generation pruner see it natively.
func SnapshotPath(dir string, lsn uint64) string {
	return filepath.Join(dir, snapName(lsn))
}

// SnapshotLSNs returns the applied LSNs of every snapshot in dir in
// ascending order.
func SnapshotLSNs(dir string) ([]uint64, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	lsns := make([]uint64, len(snaps))
	for i, sn := range snaps {
		lsns[i] = sn.lsn
	}
	return lsns, nil
}

// NewestSnapshot reports the newest snapshot file in dir and its
// applied LSN; ok is false when dir holds no snapshots. It does not
// open the file — callers that need the contents go through LoadLatest,
// which also falls back across corrupt generations.
func NewestSnapshot(dir string) (path string, lsn uint64, ok bool, err error) {
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) == 0 {
		return "", 0, false, err
	}
	newest := snaps[len(snaps)-1]
	return filepath.Join(dir, newest.name), newest.lsn, true, nil
}

// DropSnapshotsFrom removes every snapshot in dir whose applied LSN is
// ≥ lsn and returns how many were deleted. A demoted replica truncating
// its divergent WAL tail from lsn must also discard snapshots taken at
// or past that point: they bake in records the new timeline never had.
func DropSnapshotsFrom(dir string, lsn uint64) (int, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return 0, err
	}
	dropped := 0
	for _, sn := range snaps {
		if sn.lsn < lsn {
			continue
		}
		if err := os.Remove(filepath.Join(dir, sn.name)); err != nil {
			return dropped, fmt.Errorf("sessions: drop snapshot: %w", err)
		}
		dropped++
	}
	return dropped, nil
}

type snapInfo struct {
	name string
	lsn  uint64
}

func snapName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix)
}

// listSnapshots returns the snapshots in dir in ascending LSN order.
func listSnapshots(dir string) ([]snapInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("sessions: %w", err)
	}
	var snaps []snapInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) != len(snapPrefix)+16+len(snapSuffix) ||
			name[:len(snapPrefix)] != snapPrefix || name[len(name)-len(snapSuffix):] != snapSuffix {
			continue
		}
		var lsn uint64
		if _, err := fmt.Sscanf(name[len(snapPrefix):len(snapPrefix)+16], "%016x", &lsn); err != nil {
			continue
		}
		snaps = append(snaps, snapInfo{name: name, lsn: lsn})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lsn < snaps[j].lsn })
	return snaps, nil
}
