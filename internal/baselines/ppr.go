package baselines

import (
	"fmt"

	"tsppr/internal/linalg"
	"tsppr/internal/mathx"
	"tsppr/internal/rec"
	"tsppr/internal/rngutil"
	"tsppr/internal/seq"
)

// PPR is the plain Bayesian personalized pairwise ranking model the paper
// introduces in §4.1 (Rendle et al.'s BPR-MF) and then argues *cannot*
// address RRC: it learns one fixed preference order uᵀv per user, with no
// notion of time, so whichever candidate it ranks highest it ranks highest
// at every step. It is included as a reference model (not one of the
// paper's evaluated baselines) so the claim is checkable: evaluate it next
// to TS-PPR and watch the time-sensitive term earn its keep.
type PPR struct {
	K int
	U *linalg.Matrix // numUsers × K
	V *linalg.Matrix // numItems × K
}

// PPRConfig parameterizes training.
type PPRConfig struct {
	K            int     // factor dimension (default 16)
	Epochs       int     // passes over all consumption events (default 5)
	LearningRate float64 // default 0.05
	Reg          float64 // L2 regularization (default 0.01)
	Seed         uint64
}

func (c PPRConfig) withDefaults() PPRConfig {
	if c.K == 0 {
		c.K = 16
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Reg == 0 {
		c.Reg = 0.01
	}
	return c
}

// TrainPPR fits BPR-MF on the training sequences: every consumption is a
// positive, negatives are uniform over the item universe.
func TrainPPR(train []seq.Sequence, numItems int, cfg PPRConfig) (*PPR, error) {
	cfg = cfg.withDefaults()
	if numItems <= 0 {
		return nil, fmt.Errorf("baselines: PPR numItems %d <= 0", numItems)
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("baselines: PPR empty training set")
	}
	rng := rngutil.New(cfg.Seed + 0xbb9)
	m := &PPR{
		K: cfg.K,
		U: linalg.NewMatrix(len(train), cfg.K),
		V: linalg.NewMatrix(numItems, cfg.K),
	}
	const initStd = 0.1
	m.U.FillGaussian(rng, initStd)
	m.V.FillGaussian(rng, initStd)

	uOld := linalg.NewVector(cfg.K)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.5*float64(epoch))
		for u, su := range train {
			userRNG := rng.Split()
			uvec := m.U.Row(u)
			for _, pos := range su {
				if int(pos) >= numItems {
					continue
				}
				neg := seq.Item(userRNG.Intn(numItems))
				for neg == pos {
					neg = seq.Item(userRNG.Intn(numItems))
				}
				vi, vj := m.V.Row(int(pos)), m.V.Row(int(neg))
				margin := linalg.Dot(uvec, vi) - linalg.Dot(uvec, vj)
				g := lr * (1 - mathx.Sigmoid(margin))

				linalg.Copy(uOld, uvec)
				linalg.Scale(1-lr*cfg.Reg, uvec)
				for k := 0; k < cfg.K; k++ {
					uvec[k] += g * (vi[k] - vj[k])
				}
				linalg.Scale(1-lr*cfg.Reg, vi)
				linalg.Axpy(g, uOld, vi)
				linalg.Scale(1-lr*cfg.Reg, vj)
				linalg.Axpy(-g, uOld, vj)
			}
		}
	}
	return m, nil
}

// Score returns the static preference uᵀv.
func (m *PPR) Score(u int, v seq.Item) float64 {
	if u < 0 || u >= m.U.Rows || v < 0 || int(v) >= m.V.Rows {
		return 0
	}
	return linalg.Dot(m.U.Row(u), m.V.Row(int(v)))
}

type pprRec struct {
	m     *PPR
	cands []seq.Item
}

func (r *pprRec) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	r.cands = ctx.Candidates(r.cands[:0])
	return rankTopN(r.cands, func(v seq.Item) float64 {
		return r.m.Score(ctx.User, v)
	}, n, dst)
}

// Factory returns the PPR factory over the trained factors.
func (m *PPR) Factory() rec.Factory {
	return rec.Factory{Name: "PPR", New: func(uint64) rec.Recommender {
		return &pprRec{m: m}
	}}
}
