package baselines

import (
	"fmt"
	"math"
	"sort"

	"tsppr/internal/features"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// Survival is the hazard-based return-time baseline of Kapoor et al.
// (KDD 2014), transplanted to the discrete consumption-step domain the way
// the paper's §5.2 does. It is a Cox proportional-hazards model of the
// inter-consumption gap of each (user, item) pair:
//
//	h(g | z) = h0(g) · exp(βᵀz)
//
// with the baseline hazard h0 estimated by the Breslow method over the
// observed gaps and β fit by maximizing the partial likelihood. Following
// Kapoor et al.'s covariate choice (activity/popularity features only —
// their model predates the reconsumption-ratio feature this paper
// introduces), the covariates are item quality and the time-weighted
// average return time (TWART) of the pair; TWART must be recomputed online
// over the user's entire history, which is exactly why the paper measures
// Survival as by far the slowest method (Fig. 13) and why its
// discrete-time accuracy is poor.
type Survival struct {
	Beta    [2]float64
	ex      *features.Extractor
	h0      []float64 // smoothed baseline hazard indexed by gap (clamped)
	meanGap float64
	maxGap  int

	// NumEvents and NumCensored report the fitted data size.
	NumEvents   int
	NumCensored int
}

// SurvivalConfig parameterizes fitting.
type SurvivalConfig struct {
	WindowCap    int
	Omega        int
	Iters        int     // partial-likelihood gradient iterations (default 30)
	LearningRate float64 // default 0.5
	MaxGap       int     // hazard table size (default 4·WindowCap)
}

func (c SurvivalConfig) withDefaults() SurvivalConfig {
	if c.Iters == 0 {
		c.Iters = 30
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.5
	}
	if c.MaxGap == 0 {
		c.MaxGap = 4 * c.WindowCap
	}
	return c
}

// observation is one (user, item) spell: the gap to the next consumption,
// or the censored gap to the end of the training sequence.
type observation struct {
	gap      int
	censored bool
	z        [2]float64
}

// twartState tracks the running time-weighted average return time of one
// (user, item) pair: later gaps get linearly increasing weight.
type twartState struct {
	lastPos int
	sumW    float64
	sumWG   float64
	n       int
}

func (s *twartState) value(fallback float64) float64 {
	if s.sumW == 0 {
		return fallback
	}
	return s.sumWG / s.sumW
}

func (s *twartState) observe(gap int) {
	s.n++
	w := float64(s.n)
	s.sumW += w
	s.sumWG += w * float64(gap)
}

// TrainSurvival fits the Cox model on the training sequences.
func TrainSurvival(train []seq.Sequence, numItems int, cfg SurvivalConfig) (*Survival, error) {
	if cfg.WindowCap <= 0 {
		return nil, fmt.Errorf("baselines: Survival WindowCap %d <= 0", cfg.WindowCap)
	}
	cfg = cfg.withDefaults()

	b := features.NewBuilder(numItems, cfg.WindowCap, cfg.Omega)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)

	sv := &Survival{ex: ex, maxGap: cfg.MaxGap}

	// Pass 1: collect spells with covariates frozen at spell start.
	var obs []observation
	gapSum, gapN := 0.0, 0
	priorGap := float64(cfg.WindowCap) // fallback TWART before any gap is seen
	for _, su := range train {
		states := make(map[seq.Item]*twartState)
		for t, v := range su {
			st, ok := states[v]
			if ok {
				gap := t - st.lastPos
				obs = append(obs, observation{gap: gap, z: sv.covariates(v, st.value(priorGap))})
				st.observe(gap)
				st.lastPos = t
				gapSum += float64(gap)
				gapN++
			} else {
				states[v] = &twartState{lastPos: t}
			}
		}
		for v, st := range states {
			gap := len(su) - st.lastPos
			if gap > 0 {
				obs = append(obs, observation{gap: gap, censored: true, z: sv.covariates(v, st.value(priorGap))})
			}
		}
	}
	if gapN > 0 {
		sv.meanGap = gapSum / float64(gapN)
	} else {
		sv.meanGap = priorGap
	}
	for _, o := range obs {
		if o.censored {
			sv.NumCensored++
		} else {
			sv.NumEvents++
		}
	}
	if sv.NumEvents == 0 {
		// Degenerate training data: keep β = 0 and a flat hazard.
		sv.h0 = make([]float64, cfg.MaxGap+1)
		for i := range sv.h0 {
			sv.h0[i] = 1
		}
		return sv, nil
	}

	// Sort by gap descending once; each gradient iteration is then a
	// single sweep maintaining the risk-set sums S0 = Σ exp(βᵀz) and
	// S1 = Σ z·exp(βᵀz).
	sort.Slice(obs, func(i, j int) bool { return obs[i].gap > obs[j].gap })
	for iter := 0; iter < cfg.Iters; iter++ {
		var grad [2]float64
		s0 := 0.0
		var s1 [2]float64
		i := 0
		for i < len(obs) {
			g := obs[i].gap
			// Admit everything with gap ≥ g into the risk set.
			for i < len(obs) && obs[i].gap == g {
				e := math.Exp(dot2(sv.Beta, obs[i].z))
				s0 += e
				for k := 0; k < 2; k++ {
					s1[k] += e * obs[i].z[k]
				}
				i++
			}
			// Events at exactly this gap contribute to the gradient.
			for j := i - 1; j >= 0 && obs[j].gap == g; j-- {
				if obs[j].censored {
					continue
				}
				for k := 0; k < 2; k++ {
					grad[k] += obs[j].z[k] - s1[k]/s0
				}
			}
		}
		lr := cfg.LearningRate / float64(sv.NumEvents)
		for k := 0; k < 2; k++ {
			sv.Beta[k] += lr * grad[k]
		}
	}

	// Breslow baseline hazard with Laplace smoothing, clamped at MaxGap.
	deaths := make([]float64, cfg.MaxGap+1)
	risk := make([]float64, cfg.MaxGap+1) // S0 at each gap
	s0 := 0.0
	i := 0
	for g := cfg.MaxGap; g >= 1; g-- {
		for i < len(obs) && obs[i].gap >= g {
			// First admission clamps gaps beyond MaxGap into the top bin.
			s0 += math.Exp(dot2(sv.Beta, obs[i].z))
			if !obs[i].censored {
				eg := obs[i].gap
				if eg > cfg.MaxGap {
					eg = cfg.MaxGap
				}
				deaths[eg]++
			}
			i++
		}
		risk[g] = s0
	}
	sv.h0 = make([]float64, cfg.MaxGap+1)
	for g := 1; g <= cfg.MaxGap; g++ {
		sv.h0[g] = (deaths[g] + 0.5) / (risk[g] + 1)
	}
	return sv, nil
}

func dot2(a, b [2]float64) float64 { return a[0]*b[0] + a[1]*b[1] }

// covariates assembles z for item v with the given raw TWART value.
func (sv *Survival) covariates(v seq.Item, twart float64) [2]float64 {
	return [2]float64{
		sv.ex.Quality(v),
		math.Log1p(twart) / math.Log1p(float64(sv.maxGap)),
	}
}

// hazard returns h(gap | z) = h0(gap)·exp(βᵀz).
func (sv *Survival) hazard(gap int, z [2]float64) float64 {
	if gap < 1 {
		gap = 1
	}
	if gap > sv.maxGap {
		gap = sv.maxGap
	}
	return sv.h0[gap] * math.Exp(dot2(sv.Beta, z))
}

type survivalRec struct {
	sv    *Survival
	cands []seq.Item
}

func (r *survivalRec) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	r.cands = ctx.Candidates(r.cands[:0])
	if n <= 0 || len(r.cands) == 0 {
		return dst
	}
	// The TWART covariate is recomputed from the FULL history on every
	// call — this linear-in-history cost is intrinsic to the method (the
	// paper reports it as 2–4 orders of magnitude slower than the cheap
	// baselines) and must not be cached away if Fig. 13 is to reproduce.
	wanted := make(map[seq.Item]*twartState, len(r.cands))
	for _, v := range r.cands {
		wanted[v] = nil
	}
	for t, v := range ctx.History {
		st, ok := wanted[v]
		if !ok {
			continue
		}
		if st == nil {
			wanted[v] = &twartState{lastPos: t}
			continue
		}
		st.observe(t - st.lastPos)
		st.lastPos = t
	}
	now := len(ctx.History)
	return rankTopN(r.cands, func(v seq.Item) float64 {
		st := wanted[v]
		if st == nil {
			return 0
		}
		z := r.sv.covariates(v, st.value(r.sv.meanGap))
		return r.sv.hazard(now-st.lastPos, z)
	}, n, dst)
}

// Factory returns the Survival factory over the fitted model.
func (sv *Survival) Factory() rec.Factory {
	return rec.Factory{Name: "Survival", New: func(uint64) rec.Recommender {
		return &survivalRec{sv: sv}
	}}
}
