package baselines

import (
	"testing"

	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

func TestFallbackContract(t *testing.T) {
	_, _, ctx := corpus(t)
	got := (&Fallback{}).Recommend(ctx, 10, nil)
	checkRecommendations(t, "Fallback", got, ctx, 10)
	if FallbackFactory().Name != "Fallback" {
		t.Error("factory name wrong")
	}
}

func TestFallbackRecencyDominates(t *testing.T) {
	// Window: item 1 appears many times but long ago; item 2 appears once,
	// recently. Recency must win among the recently seen.
	w := seq.NewWindow(20)
	for i := 0; i < 6; i++ {
		w.Push(1)
	}
	w.Push(2)
	for i := 0; i < 3; i++ {
		w.Push(9) // padding so both 1 and 2 clear Ω
	}
	ctx := &rec.Context{User: 0, Window: w, Omega: 2}
	got := (&Fallback{}).Recommend(ctx, 2, nil)
	if len(got) != 2 || got[0].Item != 2 || got[1].Item != 1 {
		t.Fatalf("ranking = %v, want [2 1]", got)
	}
}

func TestFallbackPopularityBreaksTies(t *testing.T) {
	// Items 3 and 4 both sit deep in the past where e^{−Δt} has decayed
	// to noise; 3 occurs three times to 4's once, and even though 4 is one
	// step more recent, frequency must dominate out here.
	w := seq.NewWindow(40)
	w.Push(3)
	w.Push(3)
	w.Push(3)
	w.Push(4)
	for i := 0; i < 20; i++ {
		w.Push(seq.Item(100 + i%2))
	}
	f := &Fallback{}
	if s3, s4 := f.Score(3, w), f.Score(4, w); s3 <= s4 {
		t.Fatalf("score(3)=%v <= score(4)=%v despite higher frequency", s3, s4)
	}
}

func TestFallbackAbsentItemScoresZeroish(t *testing.T) {
	w := seq.NewWindow(10)
	w.Push(1)
	f := &Fallback{}
	if s := f.Score(99, w); s != 0 {
		t.Fatalf("absent item score = %v", s)
	}
}
