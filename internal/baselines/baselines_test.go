package baselines

import (
	"math"
	"testing"

	"tsppr/internal/datagen"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// corpus returns a small training corpus plus a warm window/history for
// recommendation-time tests.
func corpus(t testing.TB) (train []seq.Sequence, numItems int, ctx *rec.Context) {
	t.Helper()
	cfg := datagen.GowallaLike(12, 9)
	cfg.MinLen, cfg.MaxLen = 80, 160
	cfg.WindowCap = 20
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numItems = ds.NumItems()
	train = ds.Seqs
	w := seq.NewWindow(20)
	for _, v := range train[0] {
		w.Push(v)
	}
	ctx = &rec.Context{User: 0, Window: w, History: train[0], Omega: 3}
	return train, numItems, ctx
}

// checkRecommendations asserts the universal recommender contract:
// unique candidates only, at most n of them.
func checkRecommendations(t *testing.T, name string, got []rec.Scored, ctx *rec.Context, n int) {
	t.Helper()
	cands := ctx.Candidates(nil)
	want := n
	if len(cands) < want {
		want = len(cands)
	}
	if len(got) > n {
		t.Fatalf("%s returned %d items for n=%d", name, len(got), n)
	}
	if len(got) != want {
		t.Fatalf("%s returned %d items, want %d", name, len(got), want)
	}
	inCands := map[seq.Item]bool{}
	for _, c := range cands {
		inCands[c] = true
	}
	seen := map[seq.Item]bool{}
	for _, s := range got {
		if seen[s.Item] {
			t.Fatalf("%s returned duplicate %d", name, s.Item)
		}
		seen[s.Item] = true
		if !inCands[s.Item] {
			t.Fatalf("%s recommended non-candidate %d", name, s.Item)
		}
	}
}

func TestRandomContract(t *testing.T) {
	_, _, ctx := corpus(t)
	r := NewRandom(4)
	got := r.Recommend(ctx, 5, nil)
	checkRecommendations(t, "Random", got, ctx, 5)
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	_, _, ctx := corpus(t)
	a := NewRandom(4).Recommend(ctx, 5, nil)
	b := NewRandom(4).Recommend(ctx, 5, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed Random diverged")
		}
	}
}

func TestRandomFactory(t *testing.T) {
	f := RandomFactory()
	if f.Name != "Random" {
		t.Errorf("name %q", f.Name)
	}
	_, _, ctx := corpus(t)
	got := f.New(1).Recommend(ctx, 3, nil)
	checkRecommendations(t, "Random", got, ctx, 3)
}

func TestPopRanksByFrequency(t *testing.T) {
	train := []seq.Sequence{{0, 0, 0, 1, 1, 2}}
	p := NewPop(train, 3)
	if p.Score(0) <= p.Score(1) || p.Score(1) <= p.Score(2) {
		t.Fatal("Pop scores not ordered by frequency")
	}
	if p.Score(7) != 0 || p.Score(-1) != 0 {
		t.Fatal("out-of-range items should score 0")
	}
	if p.Score(0) != math.Log1p(3) {
		t.Fatalf("Score(0) = %v", p.Score(0))
	}
}

func TestPopRecommend(t *testing.T) {
	train, numItems, ctx := corpus(t)
	p := NewPop(train, numItems)
	got := p.Factory().New(0).Recommend(ctx, 10, nil)
	checkRecommendations(t, "Pop", got, ctx, 10)
	// Verify descending popularity, and that reported scores match.
	for i, s := range got {
		if p.Score(s.Item) != s.Score {
			t.Fatalf("Pop reported score %v for item %d, want %v", s.Score, s.Item, p.Score(s.Item))
		}
		if i > 0 && s.Score > got[i-1].Score {
			t.Fatal("Pop ranking not descending")
		}
	}
}

func TestRecencyPrefersSmallGap(t *testing.T) {
	_, _, ctx := corpus(t)
	got := (&Recency{}).Recommend(ctx, 10, nil)
	checkRecommendations(t, "Recency", got, ctx, 10)
	prev := -1
	for _, s := range got {
		gap, ok := ctx.Window.Gap(s.Item)
		if !ok {
			t.Fatalf("recommended absent item %d", s.Item)
		}
		if gap < prev {
			t.Fatalf("Recency ranking not by ascending gap: %d after %d", gap, prev)
		}
		prev = gap
	}
	if RecencyFactory().Name != "Recency" {
		t.Error("factory name wrong")
	}
}

func TestDYRCTrainsAndRecommends(t *testing.T) {
	train, numItems, ctx := corpus(t)
	d, err := TrainDYRC(train, numItems, DYRCConfig{WindowCap: 20, Omega: 3})
	if err != nil {
		t.Fatal(err)
	}
	// On a quality+recency-driven corpus both weights should move off zero.
	if d.ThetaQ == 0 && d.ThetaC == 0 {
		t.Fatal("DYRC learned nothing")
	}
	if math.IsNaN(d.ThetaQ) || math.IsNaN(d.ThetaC) {
		t.Fatal("NaN weights")
	}
	if d.LogLikelihood > 0 {
		t.Fatalf("mean log-likelihood %v > 0", d.LogLikelihood)
	}
	got := d.Factory().New(0).Recommend(ctx, 5, nil)
	checkRecommendations(t, "DYRC", got, ctx, 5)
}

func TestDYRCConfigValidation(t *testing.T) {
	if _, err := TrainDYRC(nil, 0, DYRCConfig{WindowCap: 0}); err == nil {
		t.Error("WindowCap 0 accepted")
	}
	if _, err := TrainDYRC(nil, 0, DYRCConfig{WindowCap: 5, Omega: 5}); err == nil {
		t.Error("Omega == WindowCap accepted")
	}
}

func TestDYRCLearnsAntiRecencyOnCyclicCorpus(t *testing.T) {
	// In a strict cycle the reconsumed item is always the *oldest*
	// candidate (largest gap), so the fitted recency weight must be
	// negative — the model correctly learns the anti-recency structure.
	var s seq.Sequence
	for i := 0; i < 200; i++ {
		s = append(s, seq.Item(i%7))
	}
	d, err := TrainDYRC([]seq.Sequence{s}, 7, DYRCConfig{WindowCap: 14, Omega: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.ThetaC >= 0 {
		t.Fatalf("ThetaC = %v, want < 0 on cyclic corpus", d.ThetaC)
	}
	// And its Top-1 must actually pick the oldest candidate.
	w := seq.NewWindow(14)
	for _, v := range s[:100] {
		w.Push(v)
	}
	ctx := &rec.Context{User: 0, Window: w, History: s[:100], Omega: 2}
	got := d.Factory().New(0).Recommend(ctx, 1, nil)
	if len(got) != 1 || got[0].Item != s[100] {
		t.Fatalf("Top-1 = %v, want %d", got, s[100])
	}
}

func TestFPMCTrainsAndRecommends(t *testing.T) {
	train, numItems, ctx := corpus(t)
	m, err := TrainFPMC(train, numItems, FPMCConfig{WindowCap: 20, Omega: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 16 {
		t.Fatalf("default K = %d", m.K)
	}
	got := m.Factory().New(0).Recommend(ctx, 5, nil)
	checkRecommendations(t, "FPMC", got, ctx, 5)
	for _, x := range m.IL.Data {
		if math.IsNaN(x) {
			t.Fatal("NaN in FPMC factors")
		}
	}
}

func TestFPMCDeterminism(t *testing.T) {
	train, numItems, _ := corpus(t)
	cfg := FPMCConfig{WindowCap: 20, Omega: 3, Seed: 5, Epochs: 2}
	a, _ := TrainFPMC(train, numItems, cfg)
	b, _ := TrainFPMC(train, numItems, cfg)
	for i := range a.IL.Data {
		if a.IL.Data[i] != b.IL.Data[i] {
			t.Fatal("FPMC training not deterministic")
		}
	}
}

func TestFPMCConfigValidation(t *testing.T) {
	if _, err := TrainFPMC(nil, 0, FPMCConfig{}); err == nil {
		t.Error("WindowCap 0 accepted")
	}
	if _, err := TrainFPMC(nil, 0, FPMCConfig{WindowCap: 5, Omega: 7}); err == nil {
		t.Error("Omega > WindowCap accepted")
	}
}

func TestSurvivalTrainsAndRecommends(t *testing.T) {
	train, numItems, ctx := corpus(t)
	sv, err := TrainSurvival(train, numItems, SurvivalConfig{WindowCap: 20, Omega: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sv.NumEvents == 0 {
		t.Fatal("no spells observed")
	}
	if sv.NumCensored == 0 {
		t.Fatal("no censored spells — every item returned before end?")
	}
	for _, b := range sv.Beta {
		if math.IsNaN(b) {
			t.Fatal("NaN beta")
		}
	}
	got := sv.Factory().New(0).Recommend(ctx, 5, nil)
	checkRecommendations(t, "Survival", got, ctx, 5)
}

func TestSurvivalHazardPositive(t *testing.T) {
	train, numItems, _ := corpus(t)
	sv, err := TrainSurvival(train, numItems, SurvivalConfig{WindowCap: 20, Omega: 3})
	if err != nil {
		t.Fatal(err)
	}
	for gap := 1; gap <= 80; gap += 7 {
		h := sv.hazard(gap, sv.covariates(0, 10))
		if h <= 0 || math.IsNaN(h) {
			t.Fatalf("hazard(%d) = %v", gap, h)
		}
	}
	// Clamping below 1 and above maxGap.
	if sv.hazard(0, sv.covariates(0, 10)) != sv.hazard(1, sv.covariates(0, 10)) {
		t.Error("gap 0 should clamp to 1")
	}
	if sv.hazard(1<<20, sv.covariates(0, 10)) != sv.hazard(sv.maxGap, sv.covariates(0, 10)) {
		t.Error("huge gap should clamp to maxGap")
	}
}

func TestSurvivalDegenerateCorpus(t *testing.T) {
	// No item ever repeats → zero events, flat hazard, no crash.
	sv, err := TrainSurvival([]seq.Sequence{{0, 1, 2, 3}}, 4, SurvivalConfig{WindowCap: 3, Omega: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sv.NumEvents != 0 {
		t.Fatalf("events = %d", sv.NumEvents)
	}
	w := seq.NewWindow(3)
	w.Push(0)
	w.Push(1)
	w.Push(2)
	ctx := &rec.Context{User: 0, Window: w, History: seq.Sequence{0, 1, 2}, Omega: 1}
	got := sv.Factory().New(0).Recommend(ctx, 2, nil)
	checkRecommendations(t, "Survival", got, ctx, 2)
}

func TestSurvivalValidation(t *testing.T) {
	if _, err := TrainSurvival(nil, 0, SurvivalConfig{}); err == nil {
		t.Error("WindowCap 0 accepted")
	}
}

func TestTwartState(t *testing.T) {
	st := &twartState{lastPos: 5}
	if got := st.value(42); got != 42 {
		t.Fatalf("fallback = %v", got)
	}
	st.observe(10)
	st.observe(20)
	// Weighted mean: (1·10 + 2·20)/3 = 50/3.
	if got := st.value(0); math.Abs(got-50.0/3) > 1e-12 {
		t.Fatalf("TWART = %v", got)
	}
}

func TestRankTopNEmpty(t *testing.T) {
	if got := rankTopN(nil, func(seq.Item) float64 { return 0 }, 5, nil); len(got) != 0 {
		t.Fatal("empty candidates should produce nothing")
	}
	if got := rankTopN([]seq.Item{1}, func(seq.Item) float64 { return 0 }, 0, nil); len(got) != 0 {
		t.Fatal("n=0 should produce nothing")
	}
}

func TestPPRTrainsAndRecommends(t *testing.T) {
	train, numItems, ctx := corpus(t)
	m, err := TrainPPR(train, numItems, PPRConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 16 {
		t.Fatalf("default K = %d", m.K)
	}
	got := m.Factory().New(0).Recommend(ctx, 5, nil)
	checkRecommendations(t, "PPR", got, ctx, 5)
	for _, x := range m.V.Data {
		if math.IsNaN(x) {
			t.Fatal("NaN in PPR factors")
		}
	}
}

func TestPPRIsTimeInsensitive(t *testing.T) {
	// The paper's §4.1 argument: PPR's ranking over a fixed candidate set
	// cannot change with time. Push more events (changing all gaps and
	// counts) while keeping the candidate set identical — PPR's order must
	// be bitwise identical.
	train, numItems, _ := corpus(t)
	m, err := TrainPPR(train, numItems, PPRConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	w := seq.NewWindow(40)
	base := []seq.Item{1, 2, 3, 4, 5, 6, 7, 8}
	for _, v := range base {
		w.Push(v)
	}
	// Snapshot ranking now.
	r := m.Factory().New(0)
	ctx := &rec.Context{User: 0, Window: w, Omega: 0}
	before := append([]rec.Scored(nil), r.Recommend(ctx, 8, nil)...)
	// Re-push the same items in a different order (gaps/counts change,
	// candidate set does not).
	for _, v := range []seq.Item{8, 7, 6, 5, 4, 3, 2, 1} {
		w.Push(v)
	}
	after := r.Recommend(ctx, 8, nil)
	if len(before) != len(after) {
		t.Fatalf("lengths differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("PPR ranking changed with time: %v vs %v", before, after)
		}
	}
}

func TestPPRValidation(t *testing.T) {
	if _, err := TrainPPR(nil, 10, PPRConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := TrainPPR([]seq.Sequence{{1}}, 0, PPRConfig{}); err == nil {
		t.Error("zero items accepted")
	}
}
