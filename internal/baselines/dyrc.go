package baselines

import (
	"fmt"
	"math"

	"tsppr/internal/mathx"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// DYRC is the mixed weighted reconsumption model of Anderson et al. ("The
// dynamics of repeat consumption", WWW 2014) as the paper describes it: a
// choice model over the window candidates whose score mixes item quality
// (popularity) and recency, with the two mixture weights learned by
// maximizing the log-likelihood of the observed reconsumptions.
//
// We parameterize the choice as a conditional softmax over the candidate
// set: P(v | W, t) ∝ exp(θ_q·q̄_v + θ_c·c_vt), and fit (θ_q, θ_c) by
// stochastic gradient ascent over the training repeat events.
type DYRC struct {
	ThetaQ, ThetaC float64
	quality        []float64 // normalized ln(1+n_v)
	LogLikelihood  float64   // mean per-event log-likelihood after fitting
}

// DYRCConfig parameterizes fitting.
type DYRCConfig struct {
	WindowCap    int
	Omega        int
	Epochs       int     // passes over the training events (default 5)
	LearningRate float64 // default 0.05
}

func (c DYRCConfig) withDefaults() DYRCConfig {
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	return c
}

// TrainDYRC fits the mixture weights on the training sequences.
func TrainDYRC(train []seq.Sequence, numItems int, cfg DYRCConfig) (*DYRC, error) {
	cfg = cfg.withDefaults()
	if cfg.WindowCap <= 0 {
		return nil, fmt.Errorf("baselines: DYRC WindowCap %d <= 0", cfg.WindowCap)
	}
	if cfg.Omega < 0 || cfg.Omega >= cfg.WindowCap {
		return nil, fmt.Errorf("baselines: DYRC Omega %d out of [0,%d)", cfg.Omega, cfg.WindowCap)
	}
	d := &DYRC{quality: qualityTable(train, numItems)}

	var cands []seq.Item
	var scores []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.5*float64(epoch))
		total, events := 0.0, 0
		for _, su := range train {
			seq.Scan(su, cfg.WindowCap, func(ev seq.Event, w *seq.Window) bool {
				if !ev.Eligible(cfg.Omega) {
					return true
				}
				cands = w.Candidates(cfg.Omega, cands[:0])
				if len(cands) < 2 {
					return true
				}
				// Softmax over candidates; gradient of the log-likelihood
				// w.r.t. θ is feat(positive) − E_softmax[feat].
				scores = scores[:0]
				maxS := math.Inf(-1)
				for _, c := range cands {
					s := d.rawScore(c, w)
					scores = append(scores, s)
					if s > maxS {
						maxS = s
					}
				}
				z := 0.0
				for _, s := range scores {
					z += math.Exp(s - maxS)
				}
				var eq, ec float64 // expectations under the model
				for i, c := range cands {
					p := math.Exp(scores[i]-maxS) / z
					q, r := d.feats(c, w)
					eq += p * q
					ec += p * r
				}
				pq, pc := d.feats(ev.Next, w)
				d.ThetaQ += lr * (pq - eq)
				d.ThetaC += lr * (pc - ec)
				// Track the (pre-update) log-likelihood of this event.
				posScore, _ := find(cands, scores, ev.Next)
				total += posScore - maxS - math.Log(z)
				events++
				return true
			})
		}
		if events > 0 {
			d.LogLikelihood = total / float64(events)
		}
	}
	return d, nil
}

func find(cands []seq.Item, scores []float64, v seq.Item) (float64, bool) {
	for i, c := range cands {
		if c == v {
			return scores[i], true
		}
	}
	return 0, false
}

// feats returns (quality, recency) of v against w.
func (d *DYRC) feats(v seq.Item, w *seq.Window) (q, c float64) {
	if int(v) < len(d.quality) && v >= 0 {
		q = d.quality[v]
	}
	if gap, ok := w.Gap(v); ok {
		c = 1 / float64(gap)
	}
	return q, c
}

func (d *DYRC) rawScore(v seq.Item, w *seq.Window) float64 {
	q, c := d.feats(v, w)
	return d.ThetaQ*q + d.ThetaC*c
}

type dyrcRec struct {
	d     *DYRC
	cands []seq.Item
}

func (r *dyrcRec) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	r.cands = ctx.Candidates(r.cands[:0])
	return rankTopN(r.cands, func(v seq.Item) float64 {
		return r.d.rawScore(v, ctx.Window)
	}, n, dst)
}

// Factory returns the DYRC factory over the fitted weights.
func (d *DYRC) Factory() rec.Factory {
	return rec.Factory{Name: "DYRC", New: func(uint64) rec.Recommender {
		return &dyrcRec{d: d}
	}}
}

// qualityTable computes the min-max normalized ln(1+n_v) table shared by
// DYRC and Survival.
func qualityTable(train []seq.Sequence, numItems int) []float64 {
	freq := make([]int, numItems)
	for _, s := range train {
		for _, v := range s {
			if int(v) < len(freq) {
				freq[v]++
			}
		}
	}
	q := make([]float64, numItems)
	lo, hi := math.Inf(1), math.Inf(-1)
	for v, f := range freq {
		if f == 0 {
			continue
		}
		x := math.Log1p(float64(f))
		q[v] = x
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo > hi {
		return q
	}
	for v, f := range freq {
		if f == 0 {
			continue
		}
		q[v] = mathx.Scale01(q[v], lo, hi)
	}
	return q
}
