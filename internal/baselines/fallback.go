package baselines

import (
	"math"

	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// Fallback is the degraded-mode scorer used by serving layers when the
// primary TS-PPR model is unavailable (panicking, past its deadline, or
// failing to load). It needs no trained tables — every signal comes from
// the request's own window — so it cannot itself fail on model state.
//
// The score blends the two signals repeat consumption is most skewed
// toward: recency e^{−Δt} dominates among recently seen items, and
// within-window frequency breaks ties in the long tail where the recency
// term has decayed to noise. Degrading to exactly this kind of temporal
// heuristic is principled, not just defensive: the paper's own Recency
// and Pop baselines retain most of the achievable precision (Tables 5–6).
type Fallback struct {
	cands []seq.Item
}

// popWeight keeps the frequency term below the recency term for gaps up
// to ≈ −ln(popWeight) ≈ 7 steps, past which recency is numerically noise.
const popWeight = 1e-3

// Score returns the fallback preference of v against the window.
func (f *Fallback) Score(v seq.Item, w *seq.Window) float64 {
	s := 0.0
	if gap, ok := w.Gap(v); ok {
		s = math.Exp(-float64(gap))
	}
	if n := w.Len(); n > 0 {
		s += popWeight * float64(w.Count(v)) / float64(n)
	}
	return s
}

// Recommend implements rec.Recommender.
func (f *Fallback) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	f.cands = ctx.Candidates(f.cands[:0])
	return rankTopN(f.cands, func(v seq.Item) float64 {
		return f.Score(v, ctx.Window)
	}, n, dst)
}

// FallbackFactory returns the degraded-mode recommender factory.
func FallbackFactory() rec.Factory {
	return rec.Factory{Name: "Fallback", New: func(uint64) rec.Recommender {
		return &Fallback{}
	}}
}
