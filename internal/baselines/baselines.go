// Package baselines implements the six comparison methods of the paper's
// evaluation (§5.2), adapted — exactly as the paper does — to the RRC
// setting: every method ranks only the reconsumable candidates, i.e. the
// distinct items of the current time window not consumed in the last Ω
// steps.
//
//   - Random: uniform choice among candidates.
//   - Pop: rank by item popularity ln(1+n_v) from the training set.
//   - Recency: rank by exponential decay e^{−Δt} of the consumption gap.
//   - DYRC: learned mixture of item quality and recency (Anderson et al.).
//   - FPMC: factorized personalized Markov chain (Rendle et al.), scoring
//     the window-set→item transition.
//   - Survival: discrete-time Cox proportional-hazards return-time model
//     (Kapoor et al.), with the deliberately expensive online
//     time-weighted average return-time feature.
package baselines

import (
	"math"

	"tsppr/internal/rec"
	"tsppr/internal/rngutil"
	"tsppr/internal/seq"
	"tsppr/internal/topk"
)

// rankTopN pushes every candidate with its score into a top-n selector and
// appends the ranked (item, score) pairs to dst. It is the shared tail of
// all deterministic baselines.
func rankTopN(cands []seq.Item, score func(seq.Item) float64, n int, dst []rec.Scored) []rec.Scored {
	if n <= 0 || len(cands) == 0 {
		return dst
	}
	sel := topk.New(n)
	for _, v := range cands {
		sel.Push(v, score(v))
	}
	return sel.AppendSorted(dst)
}

// Random recommends a uniform random sample of the candidate set, the
// weakest baseline.
type Random struct {
	rng   *rngutil.RNG
	cands []seq.Item
}

// NewRandom returns a Random recommender with its own deterministic
// stream.
func NewRandom(seed uint64) *Random {
	return &Random{rng: rngutil.New(seed)}
}

// Recommend implements rec.Recommender. Random's ranking carries no
// magnitude, so every returned score is zero.
func (r *Random) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	r.cands = ctx.Candidates(r.cands[:0])
	if n <= 0 || len(r.cands) == 0 {
		return dst
	}
	if n > len(r.cands) {
		n = len(r.cands)
	}
	// Partial Fisher-Yates: the first n slots become a uniform sample.
	for i := 0; i < n; i++ {
		j := i + r.rng.Intn(len(r.cands)-i)
		r.cands[i], r.cands[j] = r.cands[j], r.cands[i]
		dst = rec.AppendItems(dst, r.cands[i])
	}
	return dst
}

// RandomFactory returns the Random baseline factory.
func RandomFactory() rec.Factory {
	return rec.Factory{Name: "Random", New: func(seed uint64) rec.Recommender {
		return NewRandom(seed)
	}}
}

// Pop ranks candidates by global item popularity ln(1+n_v) measured on
// the training set.
type Pop struct {
	score []float64 // indexed by item
}

// NewPop counts item frequencies over the training sequences. numItems
// sizes the table; larger IDs score zero.
func NewPop(train []seq.Sequence, numItems int) *Pop {
	freq := make([]int, numItems)
	for _, s := range train {
		for _, v := range s {
			if int(v) < len(freq) {
				freq[v]++
			}
		}
	}
	p := &Pop{score: make([]float64, numItems)}
	for v, f := range freq {
		p.score[v] = math.Log1p(float64(f))
	}
	return p
}

// Score returns the popularity score of v.
func (p *Pop) Score(v seq.Item) float64 {
	if v < 0 || int(v) >= len(p.score) {
		return 0
	}
	return p.score[v]
}

type popRec struct {
	p     *Pop
	cands []seq.Item
}

func (r *popRec) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	r.cands = ctx.Candidates(r.cands[:0])
	return rankTopN(r.cands, r.p.Score, n, dst)
}

// Factory returns the Pop baseline factory over the shared table.
func (p *Pop) Factory() rec.Factory {
	return rec.Factory{Name: "Pop", New: func(uint64) rec.Recommender {
		return &popRec{p: p}
	}}
}

// Recency ranks candidates by e^{−Δt} where Δt is the gap since the
// user's last consumption of the item (paper §5.2). Because e^{−x} is
// strictly decreasing, this is equivalent to preferring the smallest gap,
// but we keep the exponential form — including its cost — to mirror the
// paper's efficiency discussion.
type Recency struct {
	cands []seq.Item
}

// Recommend implements rec.Recommender.
func (r *Recency) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	r.cands = ctx.Candidates(r.cands[:0])
	return rankTopN(r.cands, func(v seq.Item) float64 {
		gap, ok := ctx.Window.Gap(v)
		if !ok {
			return 0
		}
		return math.Exp(-float64(gap))
	}, n, dst)
}

// RecencyFactory returns the Recency baseline factory.
func RecencyFactory() rec.Factory {
	return rec.Factory{Name: "Recency", New: func(uint64) rec.Recommender {
		return &Recency{}
	}}
}
