package baselines

import (
	"fmt"

	"tsppr/internal/linalg"
	"tsppr/internal/mathx"
	"tsppr/internal/rec"
	"tsppr/internal/rngutil"
	"tsppr/internal/seq"
)

// FPMC is the factorized personalized Markov chain of Rendle et al.
// (WWW 2010), adapted to RRC exactly as the paper's §5.2 describes: "we
// adapt this method to estimate the probability of transition from a set
// of items (in time window) to the incoming item". Following that
// adaptation (and the paper's observation that FPMC "only considers the
// transition probability between items ... without using any behavioral
// features"), the ranking score is the factorized set→item transition
//
//	x(i | W) = (1/|W|)·Σ_{l∈W} ⟨IL_i, LI_l⟩
//
// Parameters are learned exactly as Rendle et al. publish it: S-BPR with
// negatives drawn uniformly from the whole item universe. (Only the
// scoring is RRC-adapted; re-deriving the training scheme around the RRC
// candidate set would be a new method, not the baseline.)
type FPMC struct {
	K  int
	IL *linalg.Matrix // numItems × K: next-item side of the transition
	LI *linalg.Matrix // numItems × K: window-item side of the transition
}

// FPMCConfig parameterizes training.
type FPMCConfig struct {
	K            int     // factor dimension (default 16)
	WindowCap    int     // |W|
	Omega        int     // Ω
	Epochs       int     // passes over events (default 5)
	LearningRate float64 // default 0.05
	Reg          float64 // L2 regularization (default 0.01)
	Seed         uint64
}

func (c FPMCConfig) withDefaults() FPMCConfig {
	if c.K == 0 {
		c.K = 16
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Reg == 0 {
		c.Reg = 0.01
	}
	return c
}

// TrainFPMC fits the factor matrices on the training sequences.
func TrainFPMC(train []seq.Sequence, numItems int, cfg FPMCConfig) (*FPMC, error) {
	cfg = cfg.withDefaults()
	if cfg.WindowCap <= 0 {
		return nil, fmt.Errorf("baselines: FPMC WindowCap %d <= 0", cfg.WindowCap)
	}
	if cfg.Omega < 0 || cfg.Omega >= cfg.WindowCap {
		return nil, fmt.Errorf("baselines: FPMC Omega %d out of [0,%d)", cfg.Omega, cfg.WindowCap)
	}
	rng := rngutil.New(cfg.Seed + 0xf93c)
	m := &FPMC{
		K:  cfg.K,
		IL: linalg.NewMatrix(numItems, cfg.K),
		LI: linalg.NewMatrix(numItems, cfg.K),
	}
	const initStd = 0.1
	m.IL.FillGaussian(rng, initStd)
	m.LI.FillGaussian(rng, initStd)

	avgLI := linalg.NewVector(cfg.K)
	grad := linalg.NewVector(cfg.K)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.5*float64(epoch))
		for _, su := range train {
			userRNG := rng.Split()
			seq.Scan(su, cfg.WindowCap, func(ev seq.Event, w *seq.Window) bool {
				if !ev.Eligible(cfg.Omega) {
					return true
				}
				// S-BPR negative: uniform over the item universe,
				// excluding the positive (Rendle et al. §5.2).
				neg := seq.Item(userRNG.Intn(numItems))
				for neg == ev.Next {
					neg = seq.Item(userRNG.Intn(numItems))
				}
				m.windowMean(avgLI, w)
				m.bprStep(int(ev.Next), int(neg), avgLI, w, lr, cfg.Reg, grad)
				return true
			})
		}
	}
	return m, nil
}

// windowMean fills dst with (1/|W|)·Σ_{l∈W} LI_l over the window's events
// (multiset semantics — repeated items count repeatedly, matching the
// basket-of-events adaptation).
func (m *FPMC) windowMean(dst linalg.Vector, w *seq.Window) {
	for k := range dst {
		dst[k] = 0
	}
	n := w.Len()
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		l := int(w.At(i))
		if l < m.LI.Rows {
			linalg.Axpy(1, m.LI.Row(l), dst)
		}
	}
	linalg.Scale(1/float64(n), dst)
}

// bprStep performs one BPR update for (i ≻ j | window mean avgLI).
func (m *FPMC) bprStep(i, j int, avgLI linalg.Vector, w *seq.Window, lr, reg float64, grad linalg.Vector) {
	iil, jil := m.IL.Row(i), m.IL.Row(j)

	margin := linalg.Dot(iil, avgLI) - linalg.Dot(jil, avgLI)
	g := lr * (1 - mathx.Sigmoid(margin))

	// IL_i / IL_j: gradients ±avgLI.
	linalg.Scale(1-lr*reg, iil)
	linalg.Axpy(g, avgLI, iil)
	linalg.Scale(1-lr*reg, jil)
	linalg.Axpy(-g, avgLI, jil)
	// LI_l for every window event: gradient (IL_i − IL_j)/|W|. We apply it
	// to the distinct items weighted by their multiplicity.
	linalg.Sub(grad, iil, jil) // note: post-update IL values; acceptable SGD approximation
	scale := g / float64(w.Len())
	seen := map[int]int{}
	for idx := 0; idx < w.Len(); idx++ {
		seen[int(w.At(idx))]++
	}
	for l, cnt := range seen {
		if l >= m.LI.Rows {
			continue
		}
		row := m.LI.Row(l)
		linalg.Scale(1-lr*reg, row)
		linalg.Axpy(scale*float64(cnt), grad, row)
	}
}

// score returns x(v | W) given the precomputed window mean.
func (m *FPMC) score(v seq.Item, avgLI linalg.Vector) float64 {
	if int(v) >= m.IL.Rows || v < 0 {
		return 0
	}
	return linalg.Dot(m.IL.Row(int(v)), avgLI)
}

type fpmcRec struct {
	m     *FPMC
	cands []seq.Item
	avgLI linalg.Vector
}

func (r *fpmcRec) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	r.cands = ctx.Candidates(r.cands[:0])
	if len(r.cands) == 0 {
		return dst
	}
	r.m.windowMean(r.avgLI, ctx.Window)
	return rankTopN(r.cands, func(v seq.Item) float64 {
		return r.m.score(v, r.avgLI)
	}, n, dst)
}

// Factory returns the FPMC factory over the trained factors.
func (m *FPMC) Factory() rec.Factory {
	return rec.Factory{Name: "FPMC", New: func(uint64) rec.Recommender {
		return &fpmcRec{m: m, avgLI: linalg.NewVector(m.K)}
	}}
}
