package tuning

import (
	"testing"

	"tsppr/internal/datagen"
	"tsppr/internal/eval"
	"tsppr/internal/features"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
)

func task(t *testing.T) Task {
	t.Helper()
	cfg := datagen.GowallaLike(10, 17)
	cfg.MinLen, cfg.MaxLen = 80, 160
	cfg.WindowCap = 20
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numItems := ds.NumItems()
	train := make([]seq.Sequence, len(ds.Seqs))
	test := make([]seq.Sequence, len(ds.Seqs))
	for u, s := range ds.Seqs {
		train[u], test[u] = s.Split(0.7)
	}
	b := features.NewBuilder(numItems, 20, 3)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	set, err := sampling.Build(train, ex, sampling.Config{WindowCap: 20, Omega: 3, S: 5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return Task{
		Train: train, Test: test, NumItems: numItems,
		Extractor: ex, Set: set,
		Eval: eval.Options{WindowCap: 20, Omega: 3, Seed: 17},
		Seed: 17,
	}
}

func TestGridPoints(t *testing.T) {
	g := Grid{
		Lambdas: []float64{0.01, 0.1},
		Ks:      []int{8, 16, 32},
	}
	pts := g.Points()
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	// Unset dimensions default to the zero value exactly once.
	if pts[0].Gamma != 0 || pts[0].MaxSteps != 0 {
		t.Fatal("defaults not zero")
	}
	// Deterministic order: lambda-major.
	if pts[0].Lambda != 0.01 || pts[3].Lambda != 0.1 {
		t.Fatalf("order wrong: %+v", pts)
	}
	// Empty grid = a single default point.
	if n := len((Grid{}).Points()); n != 1 {
		t.Fatalf("empty grid points = %d", n)
	}
}

func TestSearchFindsBest(t *testing.T) {
	tk := task(t)
	grid := Grid{
		Ks:       []int{4, 8},
		MaxSteps: []int{10_000},
	}
	outcomes, err := Search(tk, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	for i, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("trial %d failed: %v", i, o.Err)
		}
		if o.Stats == nil || o.Stats.Steps == 0 {
			t.Fatalf("trial %d has no training stats", i)
		}
		if o.Result.Events == 0 {
			t.Fatalf("trial %d evaluated nothing", i)
		}
	}
	best, ok := Best(outcomes, 1)
	if !ok {
		t.Fatal("no best outcome")
	}
	bm, _, _ := best.Result.At(1)
	for _, o := range outcomes {
		om, _, _ := o.Result.At(1)
		if om > bm {
			t.Fatal("Best did not return the maximum")
		}
	}
}

func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	tk := task(t)
	grid := Grid{Ks: []int{4, 8, 12}, MaxSteps: []int{5_000}}
	tk.Parallelism = 1
	seqOut, err := Search(tk, grid)
	if err != nil {
		t.Fatal(err)
	}
	tk.Parallelism = 4
	parOut, err := Search(tk, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqOut {
		a, _, _ := seqOut[i].Result.At(1)
		b, _, _ := parOut[i].Result.At(1)
		if a != b {
			t.Fatalf("trial %d differs across parallelism: %v vs %v", i, a, b)
		}
	}
}

func TestSearchRecordsFailures(t *testing.T) {
	tk := task(t)
	grid := Grid{Ks: []int{-5, 8}, MaxSteps: []int{2_000}}
	outcomes, err := Search(tk, grid)
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].Err == nil {
		t.Fatal("invalid K accepted")
	}
	if outcomes[1].Err != nil {
		t.Fatalf("valid trial failed: %v", outcomes[1].Err)
	}
	// Best skips the failed trial.
	best, ok := Best(outcomes, 1)
	if !ok || best.Point.K != 8 {
		t.Fatalf("Best = %+v ok=%v", best.Point, ok)
	}
	// Rank puts the failure last.
	Rank(outcomes, 1)
	if outcomes[len(outcomes)-1].Err == nil {
		t.Fatal("failed trial not ranked last")
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(Task{}, Grid{}); err == nil {
		t.Fatal("empty task accepted")
	}
	tk := task(t)
	tk.Test = tk.Test[:1]
	if _, err := Search(tk, Grid{}); err == nil {
		t.Fatal("mismatched train/test accepted")
	}
}

func TestBestAllFailed(t *testing.T) {
	outcomes := []Outcome{{Err: errTest}, {Err: errTest}}
	if _, ok := Best(outcomes, 1); ok {
		t.Fatal("Best returned ok with all failures")
	}
}

var errTest = errFor("boom")

type errFor string

func (e errFor) Error() string { return string(e) }
