// Package tuning provides deterministic grid search over TS-PPR training
// hyper-parameters. Points run in parallel (training is single-threaded,
// so concurrent trials scale nearly linearly with cores) and results come
// back in grid order regardless of scheduling.
//
// The search holds the sampled training set fixed — λ, γ, K, the learning
// rate, the step budget and the map kind do not affect sampling — so one
// expensive sampling pass serves the whole grid (see sampling.Set's
// persistence for reusing it across processes too).
package tuning

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tsppr/internal/core"
	"tsppr/internal/engine"
	"tsppr/internal/eval"
	"tsppr/internal/features"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
)

// ErrInterrupted marks grid cells that were not run (or not finished)
// because the search's context was cancelled. Their outcomes carry it as
// Err; a resumed search re-runs exactly those cells.
var ErrInterrupted = errors.New("tuning: interrupted")

// Grid enumerates candidate values per hyper-parameter. Empty slices mean
// "use the trainer's default" (a single nil-signalling zero value).
type Grid struct {
	Lambdas       []float64
	Gammas        []float64
	LearningRates []float64
	Ks            []int
	MaxSteps      []int
	TwoPhase      []bool
}

func orFloat(xs []float64) []float64 {
	if len(xs) == 0 {
		return []float64{0}
	}
	return xs
}

func orInt(xs []int) []int {
	if len(xs) == 0 {
		return []int{0}
	}
	return xs
}

func orBool(xs []bool) []bool {
	if len(xs) == 0 {
		return []bool{false}
	}
	return xs
}

// Point is one hyper-parameter assignment. Zero values defer to the
// trainer's defaults.
type Point struct {
	Lambda, Gamma, LearningRate float64
	K, MaxSteps                 int
	TwoPhase                    bool
}

// String renders the point compactly for logs.
func (p Point) String() string {
	return fmt.Sprintf("λ=%g γ=%g α=%g K=%d steps=%d twoPhase=%v",
		p.Lambda, p.Gamma, p.LearningRate, p.K, p.MaxSteps, p.TwoPhase)
}

// Points expands the grid into its cartesian product, in deterministic
// order.
func (g Grid) Points() []Point {
	var out []Point
	for _, lam := range orFloat(g.Lambdas) {
		for _, gam := range orFloat(g.Gammas) {
			for _, lr := range orFloat(g.LearningRates) {
				for _, k := range orInt(g.Ks) {
					for _, steps := range orInt(g.MaxSteps) {
						for _, tp := range orBool(g.TwoPhase) {
							out = append(out, Point{
								Lambda: lam, Gamma: gam, LearningRate: lr,
								K: k, MaxSteps: steps, TwoPhase: tp,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// Task bundles the data a search runs against.
type Task struct {
	Train, Test []seq.Sequence
	NumItems    int
	Extractor   *features.Extractor
	Set         *sampling.Set

	// Eval configures the held-out evaluation (WindowCap/Omega required).
	Eval eval.Options
	// ObjectiveTopN selects which TopN drives Best (default 1).
	ObjectiveTopN int
	// Seed feeds every trainer (each point trains from the same seed, so
	// differences are attributable to the hyper-parameters alone).
	Seed uint64
	// Parallelism bounds concurrent trials (default GOMAXPROCS).
	Parallelism int

	// CheckpointPath, when non-empty, makes the search resumable: every
	// finished cell (success or deterministic failure) is flushed there
	// atomically, and a later run with the same task and grid skips cells
	// already on disk. The file is removed when the search completes.
	CheckpointPath string
	// CheckpointEvery is how many newly finished cells trigger a flush
	// (default 1: grid cells are expensive, flush each).
	CheckpointEvery int
}

// Outcome is one evaluated grid point.
type Outcome struct {
	Point  Point
	Result eval.Result
	Stats  *core.TrainStats
	Err    error
}

// Objective returns the outcome's MaAP at the task's objective TopN
// (−1 when the trial failed or the TopN was not evaluated).
func (o Outcome) objective(topN int) float64 {
	if o.Err != nil {
		return -1
	}
	ma, _, ok := o.Result.At(topN)
	if !ok {
		return -1
	}
	return ma
}

// Search trains and evaluates every grid point. The returned slice is in
// grid order; individual failures are recorded on the outcome rather than
// aborting the sweep.
func Search(task Task, grid Grid) ([]Outcome, error) {
	return SearchContext(context.Background(), task, grid)
}

// SearchContext is Search with cancellation and (optionally, via
// Task.CheckpointPath) resumption. On cancellation no new cells start;
// cells already running finish (a mid-cell cancel marks that cell
// ErrInterrupted instead), finished work is flushed to the checkpoint,
// and the partial outcome slice returns with a nil error — unfinished
// cells carry ErrInterrupted.
func SearchContext(ctx context.Context, task Task, grid Grid) ([]Outcome, error) {
	if task.Set == nil || task.Extractor == nil {
		return nil, fmt.Errorf("tuning: Task requires Set and Extractor")
	}
	if len(task.Train) == 0 || len(task.Train) != len(task.Test) {
		return nil, fmt.Errorf("tuning: bad train/test (%d/%d users)", len(task.Train), len(task.Test))
	}
	if task.ObjectiveTopN == 0 {
		task.ObjectiveTopN = 1
	}
	if task.CheckpointEvery <= 0 {
		task.CheckpointEvery = 1
	}
	par := task.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	points := grid.Points()
	out := make([]Outcome, len(points))
	ranCell := make([]bool, len(points))

	var ck *cells
	if task.CheckpointPath != "" {
		var err error
		ck, err = openCells(task.CheckpointPath, cellsKey(task, len(points)))
		if err != nil {
			return nil, err
		}
	}
	var pending []int
	for i, pt := range points {
		if ck != nil {
			if o, ok := ck.lookup(pt); ok {
				out[i] = o
				ranCell[i] = true
				continue
			}
		}
		out[i] = Outcome{Point: pt, Err: ErrInterrupted} // overwritten when the cell runs
		pending = append(pending, i)
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		sinceSave int
		saveErr   error
	)
	jobs := make(chan int)
	if par > len(pending) {
		par = len(pending)
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain without starting new cells
				}
				o := runPoint(ctx, task, points[i])
				mu.Lock()
				out[i] = o
				if !errors.Is(o.Err, ErrInterrupted) {
					ranCell[i] = true
					sinceSave++
					if ck != nil && sinceSave >= task.CheckpointEvery {
						if err := ck.save(out, ranCell); err != nil && saveErr == nil {
							saveErr = err
						}
						sinceSave = 0
					}
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if saveErr != nil {
		return nil, fmt.Errorf("tuning: checkpoint: %w", saveErr)
	}
	if ck != nil {
		allDone := true
		for _, r := range ranCell {
			if !r {
				allDone = false
				break
			}
		}
		if allDone {
			ck.remove()
		} else if sinceSave > 0 {
			if err := ck.save(out, ranCell); err != nil {
				return nil, fmt.Errorf("tuning: checkpoint: %w", err)
			}
		}
	}
	return out, nil
}

func runPoint(ctx context.Context, task Task, pt Point) Outcome {
	model, stats, err := core.TrainContext(ctx, task.Set, len(task.Train), task.NumItems, task.Extractor, core.Config{
		K:            pt.K,
		Lambda:       pt.Lambda,
		Gamma:        pt.Gamma,
		LearningRate: pt.LearningRate,
		MaxSteps:     pt.MaxSteps,
		TwoPhase:     pt.TwoPhase,
		Seed:         task.Seed,
	})
	if err != nil {
		return Outcome{Point: pt, Err: err}
	}
	if stats.Interrupted {
		return Outcome{Point: pt, Err: ErrInterrupted}
	}
	res, err := eval.EvaluateContext(ctx, task.Train, task.Test, engine.New(model).Factory(), task.Eval)
	if err != nil {
		return Outcome{Point: pt, Err: err}
	}
	if res.Interrupted {
		return Outcome{Point: pt, Err: ErrInterrupted}
	}
	return Outcome{Point: pt, Result: res, Stats: stats}
}

// Best returns the outcome with the highest objective MaAP, or false when
// every trial failed.
func Best(outcomes []Outcome, topN int) (Outcome, bool) {
	if topN == 0 {
		topN = 1
	}
	bestIdx, bestVal := -1, -1.0
	for i, o := range outcomes {
		if v := o.objective(topN); v > bestVal {
			bestVal, bestIdx = v, i
		}
	}
	if bestIdx < 0 || outcomes[bestIdx].Err != nil {
		return Outcome{}, false
	}
	return outcomes[bestIdx], true
}

// Rank orders outcomes descending by objective MaAP (failed trials last),
// stably.
func Rank(outcomes []Outcome, topN int) {
	if topN == 0 {
		topN = 1
	}
	sort.SliceStable(outcomes, func(i, j int) bool {
		return outcomes[i].objective(topN) > outcomes[j].objective(topN)
	})
}
