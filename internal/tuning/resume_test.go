package tuning

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tsppr/internal/faultinject"
)

func metricsString(o Outcome) string {
	if o.Err != nil {
		return "err:" + o.Err.Error()
	}
	s := fmt.Sprintf("%v %v %v %d", o.Result.MaAP, o.Result.MiAP, o.Result.TopNs, o.Result.Events)
	if o.Stats != nil {
		s += fmt.Sprintf(" steps=%d conv=%v rbar=%v", o.Stats.Steps, o.Stats.Converged, o.Stats.FinalRBar)
	}
	return s
}

// TestSearchInterruptAndResume interrupts the middle cell of a serial
// three-cell sweep via the eval.user fault point, then resumes from the
// checkpoint: only the interrupted cell re-runs and the combined outcomes
// must match an uninterrupted sweep cell for cell.
func TestSearchInterruptAndResume(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tk := task(t)
	grid := Grid{Ks: []int{4, 8, 12}, MaxSteps: []int{5_000}}

	ref, err := Search(tk, grid)
	if err != nil {
		t.Fatal(err)
	}

	tk.CheckpointPath = filepath.Join(t.TempDir(), "tune.ckpt")
	tk.Parallelism = 1

	// Each cell evaluates 10 users in order, one eval.user probe per user;
	// firing once after 12 probes lands mid-evaluation of cell 1.
	faultinject.Arm("eval.user", faultinject.Plan{Mode: faultinject.Error, After: 12, Count: 1})
	partial, err := SearchContext(context.Background(), tk, grid)
	faultinject.Reset()
	if err != nil {
		t.Fatal(err)
	}
	finished := 0
	for i, o := range partial {
		if o.Err == nil {
			finished++
		} else if !errors.Is(o.Err, ErrInterrupted) {
			t.Fatalf("cell %d: unexpected error: %v", i, o.Err)
		}
	}
	if finished == 0 || finished >= len(ref) {
		t.Fatalf("finished %d of %d cells, want a strict partial", finished, len(ref))
	}
	if _, err := os.Stat(tk.CheckpointPath); err != nil {
		t.Fatalf("finished cells but no checkpoint: %v", err)
	}

	resumed, err := SearchContext(context.Background(), tk, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got, want := metricsString(resumed[i]), metricsString(ref[i]); got != want {
			t.Fatalf("cell %d differs after resume:\n got %s\nwant %s", i, got, want)
		}
	}
	if _, err := os.Stat(tk.CheckpointPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived a completed sweep (err=%v)", err)
	}
}

// TestSearchCheckpointSkipsFinishedCells proves resumption actually skips
// work: after a full checkpointed pass is forced to keep its file, a
// second pass with an always-cancelled context still returns every cell —
// all answered from disk.
func TestSearchCheckpointSkipsFinishedCells(t *testing.T) {
	tk := task(t)
	grid := Grid{Ks: []int{4, 8}, MaxSteps: []int{5_000}}
	tk.CheckpointPath = filepath.Join(t.TempDir(), "tune.ckpt")

	ref, err := Search(tk, grid)
	if err != nil {
		t.Fatal(err)
	}
	// The completed sweep removed its checkpoint; rebuild one by saving
	// every cell through the real writer.
	ck, err := openCells(tk.CheckpointPath, cellsKey(tk, len(ref)))
	if err != nil {
		t.Fatal(err)
	}
	ran := make([]bool, len(ref))
	for i := range ran {
		ran[i] = true
	}
	if err := ck.save(ref, ran); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := SearchContext(ctx, tk, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if out[i].Err != nil {
			t.Fatalf("cell %d not served from checkpoint: %v", i, out[i].Err)
		}
		if got, want := metricsString(out[i]), metricsString(ref[i]); got != want {
			t.Fatalf("cell %d differs from checkpoint:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestSearchCheckpointKeyMismatch(t *testing.T) {
	tk := task(t)
	grid := Grid{Ks: []int{4}, MaxSteps: []int{2_000}}
	tk.CheckpointPath = filepath.Join(t.TempDir(), "tune.ckpt")

	out, err := Search(tk, grid)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := openCells(tk.CheckpointPath, cellsKey(tk, len(out)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.save(out, []bool{true}); err != nil {
		t.Fatal(err)
	}

	tk.Seed++ // a different search must refuse the stale file loudly
	if _, err := Search(tk, grid); err == nil {
		t.Fatal("checkpoint from a different search accepted")
	}
}
