package tuning

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"tsppr/internal/atomicio"
	"tsppr/internal/core"
	"tsppr/internal/eval"
)

// The tuning checkpoint is JSON lines: a key line binding the file to one
// exact search (seed, data shape, eval protocol, grid size), then one
// record per finished cell keyed by its hyper-parameter point. Whole-file
// atomic replacement means a kill mid-search leaves a consistent snapshot;
// a resumed search skips every cell already on disk and re-runs only the
// rest. Interrupted cells are never written — only completed successes and
// deterministic failures.

// cellsFormat versions the checkpoint layout.
const cellsFormat = "tsppr-tunckpt-v1"

// tuneKey binds a checkpoint to one search configuration.
type tuneKey struct {
	Format    string `json:"format"`
	Seed      uint64 `json:"seed"`
	NumUsers  int    `json:"numUsers"`
	NumItems  int    `json:"numItems"`
	WindowCap int    `json:"windowCap"`
	Omega     int    `json:"omega"`
	TopNs     []int  `json:"topNs"`
	Points    int    `json:"points"`
}

func cellsKey(task Task, points int) tuneKey {
	return tuneKey{
		Format:    cellsFormat,
		Seed:      task.Seed,
		NumUsers:  len(task.Train),
		NumItems:  task.NumItems,
		WindowCap: task.Eval.WindowCap,
		Omega:     task.Eval.Omega,
		TopNs:     task.Eval.TopNs,
		Points:    points,
	}
}

// cellStats is the durable subset of core.TrainStats. Per-step checkpoint
// snapshots (which embed whole models) are deliberately dropped: a resumed
// sweep needs the outcome of a cell, not its training trajectory.
type cellStats struct {
	Steps     int     `json:"steps"`
	Converged bool    `json:"converged"`
	FinalRBar float64 `json:"finalRBar"`
	Backoffs  int     `json:"backoffs,omitempty"`
	Diverged  bool    `json:"diverged,omitempty"`
}

// cellRecord is one finished grid cell on disk.
type cellRecord struct {
	Point  Point       `json:"point"`
	Result eval.Result `json:"result"`
	Stats  *cellStats  `json:"stats,omitempty"`
	Err    string      `json:"err,omitempty"`
}

// cells is the live handle on a tuning checkpoint file.
type cells struct {
	path   string
	key    tuneKey
	loaded map[Point]Outcome
}

// openCells loads the checkpoint at path if it exists, verifying that it
// belongs to the same search. A missing file is a fresh start.
func openCells(path string, k tuneKey) (*cells, error) {
	c := &cells{path: path, key: k, loaded: map[Point]Outcome{}}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tuning: checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("tuning: checkpoint %s: empty or unreadable", path)
	}
	var have tuneKey
	if err := json.Unmarshal(sc.Bytes(), &have); err != nil {
		return nil, fmt.Errorf("tuning: checkpoint %s: bad key line: %w", path, err)
	}
	wantJSON, _ := json.Marshal(k)
	haveJSON, _ := json.Marshal(have)
	if string(wantJSON) != string(haveJSON) {
		return nil, fmt.Errorf("tuning: checkpoint %s belongs to a different search (have %s, want %s); delete it to start over",
			path, haveJSON, wantJSON)
	}
	line := 1
	for sc.Scan() {
		line++
		var rec cellRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("tuning: checkpoint %s: line %d: %w", path, line, err)
		}
		o := Outcome{Point: rec.Point, Result: rec.Result}
		if rec.Stats != nil {
			o.Stats = &core.TrainStats{
				Steps:     rec.Stats.Steps,
				Converged: rec.Stats.Converged,
				FinalRBar: rec.Stats.FinalRBar,
				Backoffs:  rec.Stats.Backoffs,
				Diverged:  rec.Stats.Diverged,
			}
		}
		if rec.Err != "" {
			o.Err = errors.New(rec.Err)
		}
		c.loaded[rec.Point] = o
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tuning: checkpoint %s: %w", path, err)
	}
	return c, nil
}

// lookup returns the stored outcome for a point, if any.
func (c *cells) lookup(pt Point) (Outcome, bool) {
	o, ok := c.loaded[pt]
	return o, ok
}

// save atomically replaces the checkpoint with every finished cell. The
// write passes through the "tuning.checkpoint.write" fault-injection
// point.
func (c *cells) save(out []Outcome, ran []bool) error {
	return atomicio.WriteFile(c.path, "tuning.checkpoint.write", func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		if err := enc.Encode(c.key); err != nil {
			return err
		}
		for i, o := range out {
			if !ran[i] {
				continue
			}
			rec := cellRecord{Point: o.Point, Result: o.Result}
			rec.Result.PerUser = nil // per-user detail is not part of the sweep's durable state
			if o.Stats != nil {
				rec.Stats = &cellStats{
					Steps:     o.Stats.Steps,
					Converged: o.Stats.Converged,
					FinalRBar: o.Stats.FinalRBar,
					Backoffs:  o.Stats.Backoffs,
					Diverged:  o.Stats.Diverged,
				}
			}
			if o.Err != nil {
				rec.Err = o.Err.Error()
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
}

// remove deletes a completed search's checkpoint (best effort).
func (c *cells) remove() {
	_ = os.Remove(c.path)
}
