// Health probing and failover. Each probe round asks every node two
// questions in parallel:
//
//	GET /readyz          — serving state, shard states, replication
//	                       role/epoch/fence/lag (the replStatus block)
//	GET /replica/epoch   — the replication meta, carrying the highest
//	                       epoch the router has seen in X-RRC-Epoch
//
// The second probe is also the fencing mechanism: rrc-server's epoch
// check self-fences when it sees a higher epoch than its own, so a
// deposed primary stops accepting writes the moment the router —
// which has talked to the promoted node — probes it. No new protocol;
// the router is just another replication-aware peer.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Node roles as reported by /readyz. A node that reports no
// replication block at all (replication plane off) is treated as a
// primary at epoch 0 — the single-node degenerate topology.
const (
	rolePrimary  = "primary"
	roleFollower = "follower"
)

// nodeView is one probed snapshot of a backend's state.
type nodeView struct {
	Reachable  bool
	Ready      bool
	Status     string
	Role       string
	Epoch      uint64
	Fenced     bool
	LagRecords uint64
	CaughtUp   bool
	LastErr    string
	LastProbe  time.Time
}

// node pairs a backend URL with its latest probed view.
type node struct {
	url string

	mu   sync.Mutex
	v    nodeView
	seen bool // at least one probe completed
}

func (n *node) view() nodeView {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.v
}

func (n *node) setView(v nodeView) {
	n.mu.Lock()
	n.v, n.seen = v, true
	n.mu.Unlock()
}

// NodeStatus is the per-node block in the router's own /readyz body.
type NodeStatus struct {
	URL        string `json:"url"`
	Reachable  bool   `json:"reachable"`
	Ready      bool   `json:"ready"`
	Status     string `json:"status,omitempty"`
	Role       string `json:"role,omitempty"`
	Epoch      uint64 `json:"epoch"`
	Fenced     bool   `json:"fenced,omitempty"`
	LagRecords uint64 `json:"lag_records,omitempty"`
	Error      string `json:"error,omitempty"`
}

func (n *node) status() NodeStatus {
	v := n.view()
	return NodeStatus{
		URL: n.url, Reachable: v.Reachable, Ready: v.Ready,
		Status: v.Status, Role: v.Role, Epoch: v.Epoch,
		Fenced: v.Fenced, LagRecords: v.LagRecords, Error: v.LastErr,
	}
}

// readyBody mirrors rrc-server's readyResponse — only the fields the
// router routes on.
type readyBody struct {
	Status      string `json:"status"`
	Replication *struct {
		Role       string `json:"role"`
		Epoch      uint64 `json:"epoch"`
		Fenced     bool   `json:"fenced"`
		LagRecords uint64 `json:"lag_records"`
		CaughtUp   bool   `json:"caught_up"`
	} `json:"replication"`
}

// epochBody covers both shapes /replica/epoch answers with: the meta on
// 200 and replica.ErrorBody on 412 — each carries an "epoch" field.
type epochBody struct {
	Epoch uint64 `json:"epoch"`
}

// probeRound probes every node in parallel, updates views, then runs
// the failover policy on the refreshed picture.
func (rt *Router) probeRound() {
	nodes := rt.snapshotNodes()
	if len(nodes) == 0 {
		return
	}
	epoch := rt.maxEpoch()
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			rt.probeNode(n, epoch)
		}(n)
	}
	wg.Wait()
	rt.maybeFailover()
}

// probeNode refreshes one node's view. The node counts reachable when
// either endpoint answered with parseable JSON — /replica/epoch can
// legitimately 412 (stale router epoch on one side or the other) and
// the body still tells us the node's true epoch.
func (rt *Router) probeNode(n *node, epoch uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	v := nodeView{LastProbe: time.Now()}

	code, body, err := rt.probeGet(ctx, n.url+"/readyz", 0)
	if err == nil {
		var rb readyBody
		if jerr := json.Unmarshal(body, &rb); jerr == nil {
			v.Reachable = true
			v.Ready = code == http.StatusOK
			v.Status = rb.Status
			if rep := rb.Replication; rep != nil {
				v.Role = rep.Role
				v.Epoch = rep.Epoch
				v.Fenced = rep.Fenced
				v.LagRecords = rep.LagRecords
				v.CaughtUp = rep.CaughtUp
			} else {
				v.Role, v.CaughtUp = rolePrimary, true
			}
		} else {
			err = fmt.Errorf("readyz: %w", jerr)
		}
	}
	if err != nil {
		v.LastErr = err.Error()
	}

	// The epoch probe both refreshes the epoch (412 bodies included)
	// and fences deposed nodes via the X-RRC-Epoch contract.
	code, body, eerr := rt.probeGet(ctx, n.url+"/replica/epoch", epoch)
	if eerr == nil {
		var eb epochBody
		if json.Unmarshal(body, &eb) == nil {
			v.Reachable = true
			if eb.Epoch > v.Epoch {
				v.Epoch = eb.Epoch
			}
			if code == http.StatusPreconditionFailed && eb.Epoch < epoch {
				// The node answered from a lower epoch than the fleet's:
				// our probe just deposed it (its SawHigherEpoch fired).
				v.Fenced = true
			}
		}
	}
	n.setView(v)
}

// probeGet issues one probe request, stamping the router's epoch when
// nonzero, and returns the status code and a bounded body.
func (rt *Router) probeGet(ctx context.Context, url string, epoch uint64) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	if epoch > 0 {
		req.Header.Set("X-RRC-Epoch", strconv.FormatUint(epoch, 10))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// foldFence folds a 412 (epoch fence) response body into the node's
// view immediately, instead of retrying against a view that only the
// next probe round would refresh. Both directions matter: a body epoch
// above the fleet's raises the node's epoch (the fleet moved on without
// us — the next attempt stamps the fresher epoch and can succeed on
// this same node), while a body epoch at or below the fleet's marks the
// node fenced (it refused a write on the current timeline, so it cannot
// be the write target until a probe says otherwise).
func (rt *Router) foldFence(n *node, body []byte) {
	var eb epochBody
	if json.Unmarshal(body, &eb) != nil {
		return
	}
	fleet := rt.maxEpoch()
	n.mu.Lock()
	if eb.Epoch > n.v.Epoch {
		n.v.Epoch = eb.Epoch
	}
	if eb.Epoch <= fleet {
		n.v.Fenced = true
	}
	n.mu.Unlock()
}

// maybeFailover runs the consecutive-probe-failure promotion policy:
// when no write target has existed for ProbeFails straight rounds and
// AutoPromote is on, promote the best eligible standby. The streak
// gate makes a single flapped probe harmless; the "best standby"
// choice prefers caught-up followers on the highest epoch with the
// least lag, minimizing the acked-but-unshipped window the deposed
// primary will truncate on rejoin.
func (rt *Router) maybeFailover() {
	rt.mu.Lock()
	if rt.writeTargetLocked() != nil {
		rt.noTargetStreak = 0
		rt.mu.Unlock()
		return
	}
	rt.noTargetStreak++
	streak := rt.noTargetStreak
	rt.mu.Unlock()

	if !rt.cfg.AutoPromote || streak < rt.cfg.ProbeFails {
		return
	}
	cand := rt.promoteCandidate()
	if cand == nil {
		return
	}
	if err := rt.promoteNode(cand); err != nil {
		log.Printf("rrc-router: promote %s failed: %v", cand.url, err)
		return
	}
	rt.failovers.Inc()
	rt.mu.Lock()
	rt.noTargetStreak = 0
	rt.mu.Unlock()
	log.Printf("rrc-router: no write target for %d probe rounds: promoted %s", streak, cand.url)
}

// writeTargetLocked is writeTarget for callers already holding rt.mu.
func (rt *Router) writeTargetLocked() *node {
	var best *node
	var bestEpoch uint64
	for _, n := range rt.nodes {
		v := n.view()
		if !v.Reachable || v.Fenced || v.Role != rolePrimary {
			continue
		}
		if best == nil || v.Epoch > bestEpoch {
			best, bestEpoch = n, v.Epoch
		}
	}
	return best
}

// promoteCandidate picks the standby to promote: reachable, unfenced
// followers only, caught-up ones first, then highest epoch, then least
// record lag.
func (rt *Router) promoteCandidate() *node {
	var best *node
	var bestV nodeView
	for _, n := range rt.snapshotNodes() {
		v := n.view()
		if !v.Reachable || v.Fenced || v.Role != roleFollower {
			continue
		}
		if best == nil {
			best, bestV = n, v
			continue
		}
		switch {
		case v.CaughtUp != bestV.CaughtUp:
			if v.CaughtUp {
				best, bestV = n, v
			}
		case v.Epoch != bestV.Epoch:
			if v.Epoch > bestV.Epoch {
				best, bestV = n, v
			}
		case v.LagRecords < bestV.LagRecords:
			best, bestV = n, v
		}
	}
	return best
}

// promoteNode POSTs /admin/promote and folds the reply into the node's
// view so the very next request can route to it — no probe-round gap.
func (rt *Router) promoteNode(n *node) error {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.url+"/admin/promote", bytes.NewReader(nil))
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var pr struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		return err
	}
	n.mu.Lock()
	n.v.Role = rolePrimary
	n.v.Epoch = pr.Epoch
	n.v.Fenced = false
	n.v.LagRecords = 0
	n.mu.Unlock()
	return nil
}
