// Health probing and failover. Each probe round asks every node two
// questions in parallel:
//
//	GET /readyz          — serving state, shard states, replication
//	                       role/epoch/fence/lag (the replStatus block),
//	                       and the node's partition identity
//	GET /replica/epoch   — the replication meta, carrying the highest
//	                       epoch the router has seen in that node's
//	                       PARTITION in X-RRC-Epoch
//
// The second probe is also the fencing mechanism: rrc-server's epoch
// check self-fences when it sees a higher epoch than its own, so a
// deposed primary stops accepting writes the moment the router —
// which has talked to the promoted node — probes it. No new protocol;
// the router is just another replication-aware peer. Epochs are
// per-partition timelines: stamping partition 1's epoch on partition
// 0's primary could depose a perfectly healthy node, so each probe
// carries only its own partition's epoch.
//
// The /readyz partition block cross-checks ownership: a node whose
// persisted -partition identity disagrees with every slot the topology
// assigns it is marked misplaced and excluded from all routing — a
// misconfigured topology file serves loud errors, never another
// partition's keys.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Node roles as reported by /readyz. A node that reports no
// replication block at all (replication plane off) is treated as a
// primary at epoch 0 — the single-node degenerate topology.
const (
	rolePrimary  = "primary"
	roleFollower = "follower"
)

// nodeView is one probed snapshot of a backend's state.
type nodeView struct {
	Reachable  bool
	Ready      bool
	Status     string
	Role       string
	Epoch      uint64
	Fenced     bool
	LagRecords uint64
	CaughtUp   bool
	// Partition identity the node itself reported (via /readyz or a
	// 421 body); PartKnown false when the node never said.
	PartKnown bool
	PartIndex int
	PartCount int
	// Misplaced: the node's reported identity matches no slot the
	// topology assigns it. Misplaced nodes take no traffic at all.
	Misplaced bool
	LastErr   string
	LastProbe time.Time
}

// node pairs a backend URL with its latest probed view.
type node struct {
	url string

	mu   sync.Mutex
	v    nodeView
	seen bool // at least one probe completed
}

func (n *node) view() nodeView {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.v
}

func (n *node) setView(v nodeView) {
	n.mu.Lock()
	n.v, n.seen = v, true
	n.mu.Unlock()
}

// NodeStatus is the per-node block in the router's own /readyz body.
type NodeStatus struct {
	URL        string `json:"url"`
	Reachable  bool   `json:"reachable"`
	Ready      bool   `json:"ready"`
	Status     string `json:"status,omitempty"`
	Role       string `json:"role,omitempty"`
	Epoch      uint64 `json:"epoch"`
	Fenced     bool   `json:"fenced,omitempty"`
	LagRecords uint64 `json:"lag_records,omitempty"`
	Partition  string `json:"partition,omitempty"`
	Misplaced  bool   `json:"misplaced,omitempty"`
	Error      string `json:"error,omitempty"`
}

func (n *node) status() NodeStatus {
	v := n.view()
	ns := NodeStatus{
		URL: n.url, Reachable: v.Reachable, Ready: v.Ready,
		Status: v.Status, Role: v.Role, Epoch: v.Epoch,
		Fenced: v.Fenced, LagRecords: v.LagRecords,
		Misplaced: v.Misplaced, Error: v.LastErr,
	}
	if v.PartKnown {
		ns.Partition = fmt.Sprintf("%d/%d", v.PartIndex, v.PartCount)
	}
	return ns
}

// readyBody mirrors rrc-server's readyResponse — only the fields the
// router routes on.
type readyBody struct {
	Status      string `json:"status"`
	Replication *struct {
		Role       string `json:"role"`
		Epoch      uint64 `json:"epoch"`
		Fenced     bool   `json:"fenced"`
		LagRecords uint64 `json:"lag_records"`
		CaughtUp   bool   `json:"caught_up"`
	} `json:"replication"`
	Partition *struct {
		Index int `json:"partition"`
		Count int `json:"partitions"`
	} `json:"partition"`
}

// epochBody covers both shapes /replica/epoch answers with: the meta on
// 200 and replica.ErrorBody on 412 — each carries an "epoch" field.
type epochBody struct {
	Epoch uint64 `json:"epoch"`
}

// partSlot is one (index, count) assignment the topology gives a node.
// A node legitimately holds up to two during a resize: its current
// slot and its re-identified next slot.
type partSlot struct{ index, count int }

// probeJob is one node's probe work for a round: the partition epoch
// to stamp and the topology slots the node may legitimately claim.
type probeJob struct {
	n     *node
	epoch uint64
	slots []partSlot
}

// probeRound probes every node in parallel, updates views, then runs
// the per-partition failover policy on the refreshed picture.
func (rt *Router) probeRound() {
	jobs := rt.probeJobs()
	if len(jobs) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j probeJob) {
			defer wg.Done()
			rt.probeNode(j)
		}(j)
	}
	wg.Wait()
	rt.maybeFailover()
}

// probeJobs assembles the round's work under the topology lock: one
// job per distinct node, stamped with its own partition's epoch
// (current layout wins for nodes present in both layouts).
func (rt *Router) probeJobs() []probeJob {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	byNode := map[*node]*probeJob{}
	var order []*node
	for li, layout := range [2][]*partition{rt.parts, rt.nextParts} {
		count := len(layout)
		for _, p := range layout {
			epoch := epochIn(p.nodes)
			for _, n := range p.nodes {
				j, ok := byNode[n]
				if !ok {
					j = &probeJob{n: n, epoch: epoch}
					byNode[n] = j
					order = append(order, n)
				} else if li == 0 && j.epoch < epoch {
					j.epoch = epoch
				}
				j.slots = append(j.slots, partSlot{index: p.index, count: count})
			}
		}
	}
	jobs := make([]probeJob, 0, len(order))
	for _, n := range order {
		jobs = append(jobs, *byNode[n])
	}
	return jobs
}

// probeNode refreshes one node's view. The node counts reachable when
// either endpoint answered with parseable JSON — /replica/epoch can
// legitimately 412 (stale router epoch on one side or the other) and
// the body still tells us the node's true epoch.
func (rt *Router) probeNode(j probeJob) {
	n, epoch := j.n, j.epoch
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	v := nodeView{LastProbe: time.Now()}

	code, body, err := rt.probeGet(ctx, n.url+"/readyz", 0)
	if err == nil {
		var rb readyBody
		if jerr := json.Unmarshal(body, &rb); jerr == nil {
			v.Reachable = true
			v.Ready = code == http.StatusOK
			v.Status = rb.Status
			if rep := rb.Replication; rep != nil {
				v.Role = rep.Role
				v.Epoch = rep.Epoch
				v.Fenced = rep.Fenced
				v.LagRecords = rep.LagRecords
				v.CaughtUp = rep.CaughtUp
			} else {
				v.Role, v.CaughtUp = rolePrimary, true
			}
			if pb := rb.Partition; pb != nil {
				v.PartKnown = true
				v.PartIndex, v.PartCount = pb.Index, pb.Count
				if misplacedIn(j.slots, pb.Index, pb.Count) {
					v.Misplaced = true
					v.LastErr = fmt.Sprintf(
						"node owns partition %d/%d but the topology assigns %v — misconfiguration, node excluded from routing",
						pb.Index, pb.Count, j.slots)
				}
			}
		} else {
			err = fmt.Errorf("readyz: %w", jerr)
		}
	}
	if err != nil {
		v.LastErr = err.Error()
	}

	// The epoch probe both refreshes the epoch (412 bodies included)
	// and fences deposed nodes via the X-RRC-Epoch contract.
	code, body, eerr := rt.probeGet(ctx, n.url+"/replica/epoch", epoch)
	if eerr == nil {
		var eb epochBody
		if json.Unmarshal(body, &eb) == nil {
			v.Reachable = true
			if eb.Epoch > v.Epoch {
				v.Epoch = eb.Epoch
			}
			if code == http.StatusPreconditionFailed && eb.Epoch < epoch {
				// The node answered from a lower epoch than its partition's:
				// our probe just deposed it (its SawHigherEpoch fired).
				v.Fenced = true
			}
		}
	}
	n.setView(v)
}

// misplacedIn reports whether a node's self-reported identity matches
// none of the slots the topology assigns it. A degenerate 0/1 identity
// (the node was never started with -partition) is never misplaced — it
// predates partitioning and the topology file is the only authority.
func misplacedIn(slots []partSlot, index, count int) bool {
	if count <= 1 && index == 0 {
		return false
	}
	for _, s := range slots {
		if s.index == index && s.count == count {
			return false
		}
	}
	return true
}

// probeGet issues one probe request, stamping the partition epoch when
// nonzero, and returns the status code and a bounded body.
func (rt *Router) probeGet(ctx context.Context, url string, epoch uint64) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	if epoch > 0 {
		req.Header.Set("X-RRC-Epoch", strconv.FormatUint(epoch, 10))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// foldFence folds a 412 (epoch fence) response body into the node's
// view immediately, instead of retrying against a view that only the
// next probe round would refresh. Both directions matter: a body epoch
// above the partition's raises the node's epoch (the partition moved on
// without us — the next attempt stamps the fresher epoch and can
// succeed on this same node), while a body epoch at or below the
// partition's marks the node fenced (it refused a write on the current
// timeline, so it cannot be the write target until a probe says
// otherwise).
func (rt *Router) foldFence(n *node, body []byte) {
	var eb epochBody
	if json.Unmarshal(body, &eb) != nil {
		return
	}
	fleet := rt.epochForNode(n)
	n.mu.Lock()
	if eb.Epoch > n.v.Epoch {
		n.v.Epoch = eb.Epoch
	}
	if eb.Epoch <= fleet {
		n.v.Fenced = true
	}
	n.mu.Unlock()
}

// misdirectBody is the online-plane 421 shape: the owning partition
// hint rrc-server attaches when asked for a key it does not own.
type misdirectBody struct {
	Partition  *int `json:"partition"`
	Partitions int  `json:"partitions"`
}

// foldMisdirect folds a 421 (cross-partition request) into the node's
// view like a fence: the node told us it owns a different key range
// than we routed, so it leaves rotation immediately and loudly. The
// next probe round re-checks; if the topology was fixed (or the node
// re-identified during a resize cutover) the node returns on its own.
func (rt *Router) foldMisdirect(n *node, body []byte) {
	rt.misdirects.Inc()
	var mb misdirectBody
	hint := "an unknown partition"
	if json.Unmarshal(body, &mb) == nil && mb.Partition != nil {
		hint = fmt.Sprintf("partition %d/%d", *mb.Partition, mb.Partitions)
	}
	n.mu.Lock()
	n.v.Misplaced = true
	if mb.Partition != nil {
		n.v.PartKnown = true
		n.v.PartIndex, n.v.PartCount = *mb.Partition, mb.Partitions
	}
	n.v.LastErr = fmt.Sprintf("421: node owns %s, not the partition the topology routed — node excluded from routing", hint)
	n.mu.Unlock()
	log.Printf("rrc-router: MISROUTE: %s refused a request for a key it does not own (it owns %s) — topology file and the node's -partition disagree", n.url, hint)
}

// maybeFailover runs the consecutive-probe-failure promotion policy
// independently for every partition: when a partition has had no write
// target for ProbeFails straight rounds and AutoPromote is on, promote
// its best eligible standby. The streak gate makes a single flapped
// probe harmless; the "best standby" choice prefers caught-up
// followers on the highest epoch with the least lag, minimizing the
// acked-but-unshipped window the deposed primary will truncate on
// rejoin. Partitions fail over without reference to each other — one
// pair's outage never touches another pair's timeline.
func (rt *Router) maybeFailover() {
	type pending struct {
		index  int
		key    string
		streak int
		nodes  []*node
	}
	var due []pending
	rt.mu.Lock()
	for _, p := range rt.parts {
		if writeTargetIn(p.nodes) != nil {
			p.noTargetStreak = 0
			continue
		}
		p.noTargetStreak++
		if rt.cfg.AutoPromote && p.noTargetStreak >= rt.cfg.ProbeFails {
			due = append(due, pending{
				index: p.index, key: p.key, streak: p.noTargetStreak,
				nodes: append([]*node(nil), p.nodes...),
			})
		}
	}
	rt.mu.Unlock()

	for _, d := range due {
		cand := promoteCandidate(d.nodes)
		if cand == nil {
			continue
		}
		if err := rt.promoteNode(cand); err != nil {
			log.Printf("rrc-router: partition %d: promote %s failed: %v", d.index, cand.url, err)
			continue
		}
		rt.failovers.Inc()
		rt.mu.Lock()
		for _, p := range rt.parts {
			if p.key == d.key {
				p.noTargetStreak = 0
			}
		}
		rt.mu.Unlock()
		log.Printf("rrc-router: partition %d: no write target for %d probe rounds: promoted %s", d.index, d.streak, cand.url)
	}
}

// promoteCandidate picks the standby to promote within one partition:
// reachable, unfenced, correctly-placed followers only, caught-up ones
// first, then highest epoch, then least record lag.
func promoteCandidate(nodes []*node) *node {
	var best *node
	var bestV nodeView
	for _, n := range nodes {
		v := n.view()
		if !v.Reachable || v.Fenced || v.Misplaced || v.Role != roleFollower {
			continue
		}
		if best == nil {
			best, bestV = n, v
			continue
		}
		switch {
		case v.CaughtUp != bestV.CaughtUp:
			if v.CaughtUp {
				best, bestV = n, v
			}
		case v.Epoch != bestV.Epoch:
			if v.Epoch > bestV.Epoch {
				best, bestV = n, v
			}
		case v.LagRecords < bestV.LagRecords:
			best, bestV = n, v
		}
	}
	return best
}

// promoteNode POSTs /admin/promote and folds the reply into the node's
// view so the very next request can route to it — no probe-round gap.
func (rt *Router) promoteNode(n *node) error {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.url+"/admin/promote", bytes.NewReader(nil))
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var pr struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		return err
	}
	n.mu.Lock()
	n.v.Role = rolePrimary
	n.v.Epoch = pr.Epoch
	n.v.Fenced = false
	n.v.LagRecords = 0
	n.mu.Unlock()
	return nil
}
