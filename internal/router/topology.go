// Topology files: one backend base URL per line, blank lines and
// #-comments ignored. The router polls the file's mtime each probe
// round, so editing the file is the whole "add a node" procedure.
package router

import (
	"bufio"
	"fmt"
	"net/url"
	"os"
	"strings"
	"time"
)

// FileStamp is the topology watch key. Mtime alone misses a second
// rewrite landing within the same second on filesystems with coarse
// (1s) timestamp granularity, so the file size is compared too — a
// same-size same-second rewrite is the only edit still missed, and the
// next touch of the file picks it up.
type FileStamp struct {
	Mod  time.Time
	Size int64
}

// LoadTopology reads and validates a topology file, returning the node
// URLs and the file's stamp (the watch key).
func LoadTopology(path string) ([]string, FileStamp, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, FileStamp{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, FileStamp{}, err
	}
	stamp := FileStamp{Mod: st.ModTime(), Size: st.Size()}
	var nodes []string
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, FileStamp{}, fmt.Errorf("%s:%d: %q is not a base URL (want http://host:port)", path, line, raw)
		}
		nodes = append(nodes, strings.TrimRight(raw, "/"))
	}
	if err := sc.Err(); err != nil {
		return nil, FileStamp{}, err
	}
	if len(nodes) == 0 {
		return nil, FileStamp{}, fmt.Errorf("%s: no nodes", path)
	}
	return nodes, stamp, nil
}

// reloadTopology re-reads the topology file when its stamp (mtime or
// size) moved. A transiently unreadable or invalid file keeps the last
// good topology — a half-written edit must not empty the fleet.
func (rt *Router) reloadTopology() {
	if rt.cfg.TopologyPath == "" {
		return
	}
	st, err := os.Stat(rt.cfg.TopologyPath)
	if err != nil {
		return
	}
	now := FileStamp{Mod: st.ModTime(), Size: st.Size()}
	rt.mu.Lock()
	unchanged := now.Mod.Equal(rt.topoStamp.Mod) && now.Size == rt.topoStamp.Size
	rt.mu.Unlock()
	if unchanged {
		return
	}
	nodes, stamp, err := LoadTopology(rt.cfg.TopologyPath)
	if err != nil {
		return
	}
	rt.SetNodes(nodes)
	rt.mu.Lock()
	rt.topoStamp = stamp
	rt.mu.Unlock()
}
