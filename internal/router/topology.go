// Topology files. Two formats share one loader:
//
// Flat (the original format): one backend base URL per line, blank
// lines and #-comments ignored. A flat file is the degenerate
// single-partition fleet — every node is a replica of the same pair.
//
// Partitioned: a `partitions N` header, then `partition <i> <url>...`
// lines assigning nodes to partitions (repeatable; later lines append).
// Partition i owns exactly the users with UserShard(user, N) == i, so
// ownership must cover [0,N) and never overlap. A resize window adds
// `next-partitions M` and `next <i> <url>...` lines describing the
// layout being cut over to; while both layouts are present the router
// drains writes for moving users and dual-routes their reads.
//
//	partitions 2
//	partition 0 http://a:8395 http://b:8396
//	partition 1 http://c:8395 http://d:8396
//	# resize in progress: splitting into 3
//	next-partitions 3
//	next 0 http://a:8395 http://b:8396
//	next 1 http://c:8395 http://d:8396
//	next 2 http://e:8395 http://f:8396
//
// The router polls the file's stamp each probe round, so editing the
// file is the whole "add a node" / "start a resize" / "cut over"
// procedure.
package router

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"
)

// FileStamp is the topology watch key. Mtime alone misses a second
// rewrite landing within the same second on filesystems with coarse
// (1s) timestamp granularity, so the file size is compared too — a
// same-size same-second rewrite is the only edit still missed, and the
// next touch of the file picks it up.
type FileStamp struct {
	Mod  time.Time
	Size int64
}

// Topology is a parsed topology: the current partition layout and,
// during a resize window, the layout being cut over to.
type Topology struct {
	// Partitions[i] lists partition i's nodes (a replicated pair, or
	// more). A flat topology parses as a single partition owning the
	// whole key space.
	Partitions [][]string
	// Next, when non-nil, is the resize target layout. Nodes may appear
	// in both layouts (partitions that do not move during the resize).
	Next [][]string
}

// Validate checks the ownership invariants: every partition has at
// least one node and no node is assigned to two partitions within a
// layout. Cross-layout reuse is legal — that is what an in-place
// resize looks like.
func (t Topology) Validate() error {
	if len(t.Partitions) == 0 {
		return errors.New("router: topology has no partitions")
	}
	if err := validateLayout(t.Partitions, "partition"); err != nil {
		return err
	}
	if t.Next != nil {
		if err := validateLayout(t.Next, "next partition"); err != nil {
			return err
		}
	}
	return nil
}

func validateLayout(layout [][]string, what string) error {
	seen := map[string]int{}
	for i, urls := range layout {
		if len(urls) == 0 {
			return fmt.Errorf("router: %s %d has no nodes — every partition's key range needs an owner", what, i)
		}
		for _, u := range urls {
			j, dup := seen[u]
			switch {
			case dup && j == i:
				return fmt.Errorf("router: node %s listed twice in %s %d", u, what, i)
			case dup:
				return fmt.Errorf("router: node %s assigned to %ss %d and %d — key ownership must not overlap", u, what, j, i)
			}
			seen[u] = i
		}
	}
	return nil
}

// ParseTopology parses either topology format from r. name is used in
// error messages (the file path).
func ParseTopology(r io.Reader, name string) (Topology, error) {
	var (
		t           Topology
		partitioned bool
		sawAny      bool
	)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		fields := strings.Fields(raw)
		if !sawAny {
			sawAny = true
			partitioned = fields[0] == "partitions"
		}
		if !partitioned {
			u, err := normalizeURL(raw)
			if err != nil {
				return t, fmt.Errorf("%s:%d: %w", name, line, err)
			}
			if len(t.Partitions) == 0 {
				t.Partitions = [][]string{nil}
			}
			t.Partitions[0] = append(t.Partitions[0], u)
			continue
		}
		if err := parseDirective(&t, fields); err != nil {
			return t, fmt.Errorf("%s:%d: %w", name, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return t, err
	}
	if !sawAny || (len(t.Partitions) == 1 && len(t.Partitions[0]) == 0) {
		return t, fmt.Errorf("%s: no nodes", name)
	}
	return t, nil
}

// parseDirective applies one partitioned-format line.
func parseDirective(t *Topology, fields []string) error {
	switch fields[0] {
	case "partitions":
		if t.Partitions != nil {
			return errors.New("duplicate partitions header")
		}
		n, err := strconv.Atoi(fields[len(fields)-1])
		if len(fields) != 2 || err != nil || n < 1 {
			return errors.New("want: partitions <count >= 1>")
		}
		t.Partitions = make([][]string, n)
	case "next-partitions":
		if t.Partitions == nil {
			return errors.New("next-partitions before partitions header")
		}
		if t.Next != nil {
			return errors.New("duplicate next-partitions header")
		}
		n, err := strconv.Atoi(fields[len(fields)-1])
		if len(fields) != 2 || err != nil || n < 1 {
			return errors.New("want: next-partitions <count >= 1>")
		}
		t.Next = make([][]string, n)
	case "partition", "next":
		layout := t.Partitions
		if fields[0] == "next" {
			layout = t.Next
		}
		if layout == nil {
			return fmt.Errorf("%s line before its partition-count header", fields[0])
		}
		if len(fields) < 3 {
			return fmt.Errorf("want: %s <index> <url> [<url>...]", fields[0])
		}
		i, err := strconv.Atoi(fields[1])
		if err != nil || i < 0 || i >= len(layout) {
			return fmt.Errorf("%s index %q out of [0,%d)", fields[0], fields[1], len(layout))
		}
		for _, raw := range fields[2:] {
			u, err := normalizeURL(raw)
			if err != nil {
				return err
			}
			layout[i] = append(layout[i], u)
		}
	default:
		return fmt.Errorf("unknown directive %q (want partitions/partition/next-partitions/next)", fields[0])
	}
	return nil
}

func normalizeURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("%q is not a base URL (want http://host:port)", raw)
	}
	return strings.TrimRight(raw, "/"), nil
}

// LoadTopologyFile reads, parses, and validates a topology file in
// either format, returning the topology and the file's stamp (the
// watch key).
func LoadTopologyFile(path string) (Topology, FileStamp, error) {
	f, err := os.Open(path)
	if err != nil {
		return Topology{}, FileStamp{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Topology{}, FileStamp{}, err
	}
	stamp := FileStamp{Mod: st.ModTime(), Size: st.Size()}
	t, err := ParseTopology(f, path)
	if err != nil {
		return Topology{}, FileStamp{}, err
	}
	if err := t.Validate(); err != nil {
		return Topology{}, FileStamp{}, fmt.Errorf("%s: %w", path, err)
	}
	return t, stamp, nil
}

// LoadTopology reads a flat topology file, returning the node URLs and
// the file's stamp. It refuses partitioned files — callers that can
// route per partition use LoadTopologyFile.
func LoadTopology(path string) ([]string, FileStamp, error) {
	t, stamp, err := LoadTopologyFile(path)
	if err != nil {
		return nil, FileStamp{}, err
	}
	if len(t.Partitions) != 1 || t.Next != nil {
		return nil, FileStamp{}, fmt.Errorf("%s: partitioned topology; a flat node list was expected", path)
	}
	return t.Partitions[0], stamp, nil
}

// reloadTopology re-reads the topology file when its stamp (mtime or
// size) moved. A transiently unreadable or invalid file keeps the last
// good topology — a half-written edit must not empty the fleet.
func (rt *Router) reloadTopology() {
	if rt.cfg.TopologyPath == "" {
		return
	}
	st, err := os.Stat(rt.cfg.TopologyPath)
	if err != nil {
		return
	}
	now := FileStamp{Mod: st.ModTime(), Size: st.Size()}
	rt.mu.Lock()
	unchanged := now.Mod.Equal(rt.topoStamp.Mod) && now.Size == rt.topoStamp.Size
	rt.mu.Unlock()
	if unchanged {
		return
	}
	topo, stamp, err := LoadTopologyFile(rt.cfg.TopologyPath)
	if err != nil {
		return
	}
	rt.SetTopology(topo)
	rt.mu.Lock()
	rt.topoStamp = stamp
	rt.mu.Unlock()
}
