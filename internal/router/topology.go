// Topology files: one backend base URL per line, blank lines and
// #-comments ignored. The router polls the file's mtime each probe
// round, so editing the file is the whole "add a node" procedure.
package router

import (
	"bufio"
	"fmt"
	"net/url"
	"os"
	"strings"
	"time"
)

// LoadTopology reads and validates a topology file, returning the node
// URLs and the file's mtime (the watch key).
func LoadTopology(path string) ([]string, time.Time, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, time.Time{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, time.Time{}, err
	}
	var nodes []string
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, time.Time{}, fmt.Errorf("%s:%d: %q is not a base URL (want http://host:port)", path, line, raw)
		}
		nodes = append(nodes, strings.TrimRight(raw, "/"))
	}
	if err := sc.Err(); err != nil {
		return nil, time.Time{}, err
	}
	if len(nodes) == 0 {
		return nil, time.Time{}, fmt.Errorf("%s: no nodes", path)
	}
	return nodes, st.ModTime(), nil
}

// reloadTopology re-reads the topology file when its mtime moved. A
// transiently unreadable or invalid file keeps the last good topology —
// a half-written edit must not empty the fleet.
func (rt *Router) reloadTopology() {
	if rt.cfg.TopologyPath == "" {
		return
	}
	st, err := os.Stat(rt.cfg.TopologyPath)
	if err != nil {
		return
	}
	rt.mu.Lock()
	unchanged := st.ModTime().Equal(rt.topoMod)
	rt.mu.Unlock()
	if unchanged {
		return
	}
	nodes, mod, err := LoadTopology(rt.cfg.TopologyPath)
	if err != nil {
		return
	}
	rt.SetNodes(nodes)
	rt.mu.Lock()
	rt.topoMod = mod
	rt.mu.Unlock()
}
