// Per-client retry budget: the gRPC-style token bucket that makes
// retry storms structurally impossible. Every incoming request earns
// its client `ratio` tokens (banked up to `burst`); every retry or
// hedge spends one whole token. Under a fully down backend a client
// issuing R requests therefore drives at most R×(1+ratio)+burst
// upstream attempts — amplification is bounded by configuration, not
// by luck. Clients are keyed by X-RRC-Client (or remote IP), so one
// misbehaving caller exhausting its budget cannot spend anyone else's.
package router

import "sync"

type retryBudget struct {
	ratio float64
	burst float64

	mu      sync.Mutex
	clients map[string]float64
}

func newRetryBudget(ratio, burst float64) *retryBudget {
	return &retryBudget{ratio: ratio, burst: burst, clients: map[string]float64{}}
}

// arrive credits a client for one incoming request.
func (b *retryBudget) arrive(client string) {
	b.mu.Lock()
	t := b.clients[client] + b.ratio
	if t > b.burst {
		t = b.burst
	}
	b.clients[client] = t
	b.mu.Unlock()
}

// spend tries to consume one retry token; false means the budget is
// exhausted and the caller must give up rather than re-attempt.
func (b *retryBudget) spend(client string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.clients[client]
	if t < 1 {
		return false
	}
	b.clients[client] = t - 1
	return true
}

// tokens reports a client's current balance (tests, /stats).
func (b *retryBudget) tokens(client string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.clients[client]
}
