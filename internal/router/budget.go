// Per-client retry budget: the gRPC-style token bucket that makes
// retry storms structurally impossible. Every incoming request earns
// its client `ratio` tokens (banked up to `burst`); every retry or
// hedge spends one whole token. Under a fully down backend a client
// issuing R requests therefore drives at most R×(1+ratio)+burst
// upstream attempts — amplification is bounded by configuration, not
// by luck. Clients are keyed by X-RRC-Client (or remote IP), so one
// misbehaving caller exhausting its budget cannot spend anyone else's.
//
// The ledger itself is bounded: the key is client-controlled, so a
// caller minting a fresh identity per request would otherwise grow the
// map without limit. Entries live in an LRU capped at maxClients; the
// least-recently-seen client is evicted at the cap. Eviction only ever
// discards banked tokens (an evicted client that returns restarts from
// an empty balance), so the amplification bound above still holds — a
// recycled identity earns strictly no more than a persistent one.
package router

import (
	"container/list"
	"sync"

	"tsppr/internal/obs"
)

// defaultMaxBudgetClients bounds distinct clients tracked at once. At
// two floats plus a key per entry this is a few hundred KiB worst case,
// while staying far above any realistic concurrent-caller count — an
// honest client is effectively never evicted.
const defaultMaxBudgetClients = 4096

type retryBudget struct {
	ratio      float64
	burst      float64
	maxClients int
	// evictions, when non-nil, counts LRU evictions at the client cap
	// (rrc_router_budget_evictions_total) — sustained growth here means
	// a caller is minting fresh identities per request.
	evictions *obs.Counter

	mu      sync.Mutex
	clients map[string]*list.Element // value: *budgetEntry
	lru     *list.List               // front = most recently seen
}

type budgetEntry struct {
	key    string
	tokens float64
}

func newRetryBudget(ratio, burst float64) *retryBudget {
	return &retryBudget{
		ratio:      ratio,
		burst:      burst,
		maxClients: defaultMaxBudgetClients,
		clients:    map[string]*list.Element{},
		lru:        list.New(),
	}
}

// touch finds or creates the client's entry, marking it most recently
// seen and evicting the coldest client past the cap. Caller holds b.mu.
func (b *retryBudget) touch(client string) *budgetEntry {
	if el, ok := b.clients[client]; ok {
		b.lru.MoveToFront(el)
		return el.Value.(*budgetEntry)
	}
	e := &budgetEntry{key: client}
	b.clients[client] = b.lru.PushFront(e)
	for len(b.clients) > b.maxClients {
		cold := b.lru.Back()
		b.lru.Remove(cold)
		delete(b.clients, cold.Value.(*budgetEntry).key)
		if b.evictions != nil {
			b.evictions.Inc()
		}
	}
	return e
}

// arrive credits a client for one incoming request.
func (b *retryBudget) arrive(client string) {
	b.mu.Lock()
	e := b.touch(client)
	e.tokens += b.ratio
	if e.tokens > b.burst {
		e.tokens = b.burst
	}
	b.mu.Unlock()
}

// spend tries to consume one retry token; false means the budget is
// exhausted and the caller must give up rather than re-attempt.
func (b *retryBudget) spend(client string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.clients[client]
	if !ok {
		return false
	}
	b.lru.MoveToFront(el)
	e := el.Value.(*budgetEntry)
	if e.tokens < 1 {
		return false
	}
	e.tokens--
	return true
}

// tokens reports a client's current balance (tests, /stats).
func (b *retryBudget) tokens(client string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.clients[client]; ok {
		return el.Value.(*budgetEntry).tokens
	}
	return 0
}

// size reports the tracked-client count (tests).
func (b *retryBudget) size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}
