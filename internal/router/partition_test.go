package router

// Partitioned-routing suite: key routing across replicated pairs,
// per-partition failover isolation, 421 ownership folding, resize
// drain/dual-route, the partitioned topology file format, probe
// jitter, and the retry-budget ledger metrics.

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"tsppr/internal/obs"
	"tsppr/internal/shard"
)

// userOwnedBy finds a small user id routed to partition p of count.
func userOwnedBy(t *testing.T, p, count int) int {
	t.Helper()
	for u := 0; u < 1_000_000; u++ {
		if shard.UserShard(u, count) == p {
			return u
		}
	}
	t.Fatalf("no user for partition %d/%d", p, count)
	return -1
}

// startPartitionedFakes boots pairs[i] as partition i (stamping each
// fake's partition identity) and a router over the partitioned layout.
func startPartitionedFakes(t *testing.T, pairs [][]*fakeNode, mutate func(*Config)) *Router {
	t.Helper()
	layout := make([][]string, len(pairs))
	for i, pair := range pairs {
		for _, f := range pair {
			f.partIdx, f.partCount = i, len(pairs)
			f.ts = httptest.NewServer(f.handler())
			t.Cleanup(f.ts.Close)
			layout[i] = append(layout[i], f.ts.URL)
		}
	}
	cfg := Config{
		Partitions:    layout,
		ProbeInterval: 10 * time.Millisecond,
		ProbeFails:    2,
		RetryBackoff:  time.Millisecond,
		Metrics:       obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt
}

func consumeBody(user int) string {
	return `{"user":` + strconv.Itoa(user) + `,"item":1}`
}

func TestRouterPartitionedWritesRouteByKey(t *testing.T) {
	p0 := &fakeNode{epoch: 1, caughtUp: true}
	p0s := &fakeNode{role: roleFollower, epoch: 1, caughtUp: true}
	p1 := &fakeNode{epoch: 4, caughtUp: true}
	p1s := &fakeNode{role: roleFollower, epoch: 4, caughtUp: true}
	rt := startPartitionedFakes(t, [][]*fakeNode{{p0, p0s}, {p1, p1s}}, nil)
	h := rt.Routes()

	u0 := userOwnedBy(t, 0, 2)
	u1 := userOwnedBy(t, 1, 2)
	for i := 0; i < 4; i++ {
		if rr := post(h, "/consume", consumeBody(u0), nil); rr.Code != http.StatusOK {
			t.Fatalf("partition-0 write %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
		if rr := post(h, "/consume", consumeBody(u1), nil); rr.Code != http.StatusOK {
			t.Fatalf("partition-1 write %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	if p0.consumes.Load() != 4 || p1.consumes.Load() != 4 {
		t.Fatalf("writes landed p0=%d p1=%d, want 4/4", p0.consumes.Load(), p1.consumes.Load())
	}
	if p0s.consumes.Load() != 0 || p1s.consumes.Load() != 0 {
		t.Fatal("writes reached standbys")
	}
	// The fakes 421 any non-owned key: zero misdirects proves the
	// router and the nodes agree on the hash for every routed key.
	if rt.misdirects.Value() != 0 {
		t.Fatalf("%d misdirects in a correctly configured fleet", rt.misdirects.Value())
	}

	// Keyed reads stay inside the owning partition too.
	for i := 0; i < 6; i++ {
		if rr := post(h, "/recommend/user", `{"user":`+strconv.Itoa(u1)+`,"n":3}`, nil); rr.Code != http.StatusOK {
			t.Fatalf("read %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	if got := p1.recommends.Load() + p1s.recommends.Load(); got != 6 {
		t.Fatalf("partition 1 served %d of 6 keyed reads", got)
	}
	if got := p0.recommends.Load() + p0s.recommends.Load(); got != 0 {
		t.Fatalf("partition 0 served %d reads for partition-1 keys", got)
	}

	// A partitioned fleet cannot place a keyless request: loud 400,
	// never a guess.
	if rr := post(h, "/consume", `{"item":1}`, nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("keyless write on P=2: status %d, want 400", rr.Code)
	}
}

func TestRouterPartitionFailureIsolatedAndFailsOver(t *testing.T) {
	p0 := &fakeNode{epoch: 7, caughtUp: true}
	p0s := &fakeNode{role: roleFollower, epoch: 7, caughtUp: true}
	p1 := &fakeNode{epoch: 1, caughtUp: true}
	p1s := &fakeNode{role: roleFollower, epoch: 1, caughtUp: true}
	rt := startPartitionedFakes(t, [][]*fakeNode{{p0, p0s}, {p1, p1s}}, func(c *Config) {
		c.AutoPromote = true
	})
	h := rt.Routes()
	u0 := userOwnedBy(t, 0, 2)
	u1 := userOwnedBy(t, 1, 2)

	// Kill partition 0's primary. Partition 1 must never notice.
	p0.ts.Close()
	for i := 0; i < 10; i++ {
		if rr := post(h, "/consume", consumeBody(u1), nil); rr.Code != http.StatusOK {
			t.Fatalf("partition-1 write %d failed during partition-0 outage: %d: %s", i, rr.Code, rr.Body.String())
		}
	}

	// The router promotes partition 0's standby on its own...
	waitFor(t, "partition-0 standby promoted", func() bool { return p0s.promotes.Load() > 0 })
	waitFor(t, "partition-0 writes recover", func() bool {
		return post(h, "/consume", consumeBody(u0), nil).Code == http.StatusOK && p0s.consumes.Load() > 0
	})
	if rt.failovers.Value() == 0 {
		t.Fatal("rrc_router_failovers_total not incremented")
	}

	// ...and partition 1's timeline was never touched: partition 0 ran
	// at epoch 7 (now 8), but partition 1's primary must not have been
	// fenced by a cross-partition epoch stamp.
	p1.mu.Lock()
	fenced := p1.fenced
	p1.mu.Unlock()
	if fenced {
		t.Fatal("partition 1's primary was fenced by partition 0's epoch — epochs leaked across partitions")
	}
}

func TestRouterMisdirectFoldsNodeOut(t *testing.T) {
	// Topology says this node is partition 0 of 2, but the node itself
	// was started as partition 1 of 2 (hidden from /readyz so only the
	// 421 path can reveal it). The write must fail loudly — 421 or a
	// shed — with the misconfiguration folded into the router's view
	// and counted, never silently misrouted.
	wrong := &fakeNode{caughtUp: true, hidePartition: true}
	p1 := &fakeNode{caughtUp: true}
	rt := startPartitionedFakes(t, [][]*fakeNode{{wrong}, {p1}}, nil)
	wrong.set(func(f *fakeNode) { f.partIdx = 1 }) // actually owns partition 1

	h := rt.Routes()
	u0 := userOwnedBy(t, 0, 2)
	rr := post(h, "/consume", consumeBody(u0), nil)
	if rr.Code == http.StatusOK {
		t.Fatalf("cross-partition write succeeded: %s", rr.Body.String())
	}
	if rt.misdirects.Value() == 0 {
		t.Fatal("rrc_router_misdirects_total not incremented")
	}
	waitFor(t, "misplaced node folded out of routing", func() bool {
		st, _ := rt.statusSnapshot()
		for _, ns := range st.Nodes {
			if ns.URL == wrong.ts.URL && ns.Misplaced {
				return true
			}
		}
		return false
	})
}

func TestRouterProbeDetectsMisplacedNode(t *testing.T) {
	// Same misconfiguration, but the node reports its identity in
	// /readyz: the probe alone must fold it out before any traffic is
	// misrouted.
	wrong := &fakeNode{caughtUp: true}
	p1 := &fakeNode{caughtUp: true}
	rt := startPartitionedFakes(t, [][]*fakeNode{{wrong}, {p1}}, nil)
	wrong.set(func(f *fakeNode) { f.partIdx = 1 })

	waitFor(t, "probe marks node misplaced", func() bool {
		st, _ := rt.statusSnapshot()
		for _, ns := range st.Nodes {
			if ns.URL == wrong.ts.URL && ns.Misplaced {
				return true
			}
		}
		return false
	})
	// With its only node misplaced, partition 0 sheds writes locally —
	// they are provably never misapplied.
	before := wrong.consumes.Load()
	rr := post(rt.Routes(), "/consume", consumeBody(userOwnedBy(t, 0, 2)), nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("write to a partition with only a misplaced node: status %d, want 503", rr.Code)
	}
	if wrong.consumes.Load() != before {
		t.Fatal("write reached a node the probe had already marked misplaced")
	}
}

func TestRouterResizeDrainsMovingWritesAndDualRoutesReads(t *testing.T) {
	a := &fakeNode{caughtUp: true}
	b := &fakeNode{caughtUp: true, partIdx: 1, partCount: 2}
	rt := startFakes(t, []*fakeNode{a}, func(c *Config) { c.RetryBudget = 1 })
	b.ts = httptest.NewServer(b.handler())
	t.Cleanup(b.ts.Close)

	// Open a resize window: 1 partition [a] splitting into 2, with
	// partition 1 moving to b.
	rt.SetTopology(Topology{
		Partitions: [][]string{{a.ts.URL}},
		Next:       [][]string{{a.ts.URL}, {b.ts.URL}},
	})
	h := rt.Routes()
	stay := userOwnedBy(t, 0, 2)
	move := userOwnedBy(t, 1, 2)

	// Users whose replica set is unchanged by the split are untouched.
	if rr := post(h, "/consume", consumeBody(stay), nil); rr.Code != http.StatusOK {
		t.Fatalf("staying user's write: status %d: %s", rr.Code, rr.Body.String())
	}

	// A moving user's writes drain with a schedulable 503.
	rr := post(h, "/consume", consumeBody(move), nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("moving user's write: status %d, want 503 drain", rr.Code)
	}
	if rr.Result().Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 without Retry-After")
	}
	if !strings.Contains(rr.Body.String(), "resize") {
		t.Fatalf("drain error does not name the resize: %s", rr.Body.String())
	}

	// A moving user's reads go to the next owner first...
	waitFor(t, "next owner probed", func() bool {
		for _, ns := range mustStatus(rt).Nodes {
			if ns.URL == b.ts.URL && ns.Reachable {
				return true
			}
		}
		return false
	})
	if rr := post(h, "/recommend/user", `{"user":`+strconv.Itoa(move)+`,"n":3}`, nil); rr.Code != http.StatusOK {
		t.Fatalf("moving user's read: status %d: %s", rr.Code, rr.Body.String())
	}
	if b.recommends.Load() == 0 {
		t.Fatal("moving user's read skipped the next owner")
	}

	// ...and fall back to the current owner while the next one cannot
	// answer yet.
	b.set(func(f *fakeNode) { f.recommendStatus = http.StatusServiceUnavailable })
	if rr := post(h, "/recommend/user", `{"user":`+strconv.Itoa(move)+`,"n":3}`, nil); rr.Code != http.StatusOK {
		t.Fatalf("dual-route fallback read: status %d: %s", rr.Code, rr.Body.String())
	}
	if a.recommends.Load() == 0 {
		t.Fatal("dual-route never fell back to the current owner")
	}
}

func TestRouterPartitionedTopologyFileAndCutover(t *testing.T) {
	a := &fakeNode{caughtUp: true}
	b := &fakeNode{caughtUp: true, partIdx: 1, partCount: 2}
	a.ts = httptest.NewServer(a.handler())
	b.ts = httptest.NewServer(b.handler())
	t.Cleanup(a.ts.Close)
	t.Cleanup(b.ts.Close)

	// Boot mid-resize: current layout is the single pair, the next
	// layout splits partition 1 out to b.
	path := filepath.Join(t.TempDir(), "topology")
	resize := "partitions 1\npartition 0 " + a.ts.URL + "\n" +
		"next-partitions 2\nnext 0 " + a.ts.URL + "\nnext 1 " + b.ts.URL + "\n"
	if err := os.WriteFile(path, []byte(resize), 0o644); err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		TopologyPath:  path,
		ProbeInterval: 10 * time.Millisecond,
		RetryBackoff:  time.Millisecond,
		Metrics:       obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	h := rt.Routes()
	move := userOwnedBy(t, 1, 2)

	if rr := post(h, "/consume", consumeBody(move), nil); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-cutover moving write: status %d, want 503 drain", rr.Code)
	}

	// Cut over: the operator promotes the next layout to current.
	final := "partitions 2\npartition 0 " + a.ts.URL + "\npartition 1 " + b.ts.URL + "\n"
	if err := os.WriteFile(path, []byte(final), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cutover: moving user's writes land on the new owner", func() bool {
		return post(h, "/consume", consumeBody(move), nil).Code == http.StatusOK && b.consumes.Load() > 0
	})
	if got := rt.P(); got != 2 {
		t.Fatalf("post-cutover partition count %d, want 2", got)
	}
}

func TestParseTopologyPartitionedFormat(t *testing.T) {
	good := `# split fleet
partitions 2
partition 0 http://a:1 http://b:2
partition 1 http://c:3
partition 1 http://d:4/
next-partitions 3
next 0 http://a:1 http://b:2
next 1 http://c:3 http://d:4
next 2 http://e:5 http://f:6
`
	topo, err := ParseTopology(strings.NewReader(good), "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Partitions) != 2 || len(topo.Next) != 3 {
		t.Fatalf("parsed %d/%d partitions", len(topo.Partitions), len(topo.Next))
	}
	// `partition 1` lines append, and trailing slashes normalize away.
	if got := topo.Partitions[1]; len(got) != 2 || got[1] != "http://d:4" {
		t.Fatalf("partition 1 = %v", got)
	}

	for name, bad := range map[string]string{
		"missing partition":   "partitions 2\npartition 0 http://a:1\n",
		"duplicate node":      "partitions 2\npartition 0 http://a:1\npartition 1 http://a:1\n",
		"node listed twice":   "partitions 1\npartition 0 http://a:1 http://a:1\n",
		"index out of range":  "partitions 2\npartition 2 http://a:1\n",
		"body before header":  "partition 0 http://a:1\npartitions 1\n",
		"unknown directive":   "partitions 1\nshard 0 http://a:1\n",
		"zero partitions":     "partitions 0\n",
		"next before header":  "next-partitions 2\n",
		"missing next member": "partitions 1\npartition 0 http://a:1\nnext-partitions 2\nnext 0 http://a:1\n",
	} {
		topo, err := ParseTopology(strings.NewReader(bad), "t")
		if err == nil {
			err = topo.Validate()
		}
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Flat files stay the degenerate single partition — the locked
	// backward-compat contract.
	flat, err := ParseTopology(strings.NewReader("# fleet\nhttp://a:1\nhttp://b:2\n"), "t")
	if err != nil || flat.Validate() != nil {
		t.Fatalf("flat parse: %v", err)
	}
	if len(flat.Partitions) != 1 || len(flat.Partitions[0]) != 2 || flat.Next != nil {
		t.Fatalf("flat topology parsed as %+v", flat)
	}
}

func TestProbeDelayJitter(t *testing.T) {
	// Satellite contract: inter-round spacing is ProbeInterval ±20%,
	// and actually varies — a fleet of routers must not phase-lock
	// their probe bursts.
	const interval = time.Second
	rng := rand.New(rand.NewSource(1))
	distinct := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		d := probeDelay(interval, rng)
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("draw %d: %s outside [0.8s,1.2s]", i, d)
		}
		distinct[d] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("only %d distinct delays in 1000 draws — not jittered", len(distinct))
	}
}

func TestRouterBudgetLedgerMetrics(t *testing.T) {
	n := &fakeNode{caughtUp: true}
	reg := obs.NewRegistry()
	rt := startFakes(t, []*fakeNode{n}, func(c *Config) { c.Metrics = reg })
	rt.budget.maxClients = 3
	h := rt.Routes()

	for i := 0; i < 10; i++ {
		post(h, "/consume", `{"user":0,"item":1}`, map[string]string{"X-RRC-Client": "drive-by-" + strconv.Itoa(i)})
	}
	if got := reg.SumCounters("rrc_router_budget_evictions_total"); got < 7 {
		t.Fatalf("rrc_router_budget_evictions_total = %d, want >= 7 (10 clients, cap 3)", got)
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "rrc_router_budget_clients 3") {
		t.Fatalf("/metrics missing rrc_router_budget_clients gauge at the cap:\n%s", body)
	}
	if !strings.Contains(body, "rrc_router_budget_evictions_total") {
		t.Fatal("/metrics missing rrc_router_budget_evictions_total")
	}
}
