// The proxy path. One incoming request becomes a bounded sequence of
// upstream attempts:
//
//   - The body is buffered once (capped), so an attempt can be replayed
//     without trusting the client to resend — and so user-keyed
//     endpoints can parse the routing key before picking a backend.
//   - User-keyed requests (/consume, /recommend/user) route to the
//     partition owning shard.UserShard(user, P). A flat P=1 fleet
//     skips the key parse entirely — the pre-partitioning fast path.
//   - The request runs under min(router default, X-RRC-Deadline-Ms);
//     every attempt is additionally bounded by TryTimeout and carries
//     the remaining budget downstream in the same header.
//   - Reads retry across distinct nodes of the owning partition (or
//     the whole fleet for stateless endpoints) on 429/503/412/421/5xx
//     or any transport error; writes re-pick the partition's write
//     target after a short backoff, and retry ONLY outcomes that
//     provably never applied: dial-level transport errors (the request
//     never left) and 429/503/412/421 (the contract says "not
//     durable"). Anything ambiguous — an error after the request was
//     sent — is answered 502 without a retry, because replaying it
//     could double-apply.
//   - During a resize, users whose replica set moves get writes
//     drained (503 + Retry-After until cutover) and reads dual-routed:
//     the next owner's nodes first, the current owner as fallback.
//   - Every retry and hedge spends the client's retry budget; when the
//     budget or MaxAttempts runs out the router forwards the last
//     definitive backend response, else sheds 503 + Retry-After.
package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"tsppr/internal/shard"
)

// maxProxyBody caps buffered request and response bodies (16 MiB —
// far above any real /recommend/batch, small enough to bound memory
// per in-flight request).
const maxProxyBody = 1 << 24

// upstreamResult is one fully buffered backend response, decoupled
// from the backend connection so it can lose a hedge race, be held as
// "last definitive answer", or be forwarded — all after the upstream
// round trip finished.
type upstreamResult struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// routePlan is one request's placement decision, taken once before the
// attempt loop: which partition owns the key, and whether a resize
// window changes how it routes.
type routePlan struct {
	keyed   bool // a user key was parsed (P>1 or resizing)
	user    int
	partIdx int  // owning partition in the current layout (0 when !keyed)
	moving  bool // resize moves this user's replica set
	nextIdx int  // owning partition in the next layout (when moving)
}

// routePlan places one request. Flat fleets (P=1, no resize) never
// parse the body — the pre-partitioning behavior, byte for byte. The
// error return is a client error: a partitioned fleet cannot place a
// request whose user key it cannot read.
func (rt *Router) routePlan(keyed bool, body []byte) (routePlan, error) {
	var plan routePlan
	if !keyed {
		return plan, nil
	}
	rt.mu.Lock()
	p, np := len(rt.parts), len(rt.nextParts)
	rt.mu.Unlock()
	if p <= 1 && np == 0 {
		return plan, nil
	}
	user, err := userKey(body)
	if err != nil {
		return plan, err
	}
	plan.keyed, plan.user = true, user
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.parts) == 0 {
		return plan, nil
	}
	plan.partIdx = shard.UserShard(user, len(rt.parts))
	if len(rt.nextParts) > 0 {
		plan.nextIdx = shard.UserShard(user, len(rt.nextParts))
		plan.moving = rt.parts[plan.partIdx].key != rt.nextParts[plan.nextIdx].key
	}
	return plan, nil
}

// writeNodes snapshots the owning partition's node list for a write.
func (rt *Router) writeNodes(plan routePlan) []*node {
	nodes, _ := rt.partNodes(plan.partIdx)
	return nodes
}

// nextPartNodes snapshots one resize-target partition's node list.
func (rt *Router) nextPartNodes(i int) []*node {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if i < 0 || i >= len(rt.nextParts) {
		return nil
	}
	return append([]*node(nil), rt.nextParts[i].nodes...)
}

// readNodesFor lists read candidates for a plan, in priority order.
// Moving users dual-route: the next owner's candidates first (it is
// accumulating their future state), the current owner as fallback.
func (rt *Router) readNodesFor(plan routePlan, tried map[*node]bool) []*node {
	if plan.moving {
		out := rt.readCandidatesIn(rt.nextPartNodes(plan.nextIdx), tried)
		seen := map[*node]bool{}
		for _, n := range out {
			seen[n] = true
		}
		cur, _ := rt.partNodes(plan.partIdx)
		for _, n := range rt.readCandidatesIn(cur, tried) {
			if !seen[n] {
				out = append(out, n)
			}
		}
		return out
	}
	if plan.keyed {
		nodes, _ := rt.partNodes(plan.partIdx)
		return rt.readCandidatesIn(nodes, tried)
	}
	return rt.readCandidatesIn(rt.snapshotNodes(), tried)
}

// proxy builds the handler for one proxied endpoint. keyed endpoints
// route by the request's user field when the fleet is partitioned.
func (rt *Router) proxy(endpoint string, isWrite, keyed bool) http.Handler {
	em := rt.endpointMetrics(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := rt.serveProxy(w, r, endpoint, isWrite, keyed)
		em.observe(code, start)
	})
}

// serveProxy runs the attempt loop and returns the status it wrote.
func (rt *Router) serveProxy(w http.ResponseWriter, r *http.Request, endpoint string, isWrite, keyed bool) int {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("reading request body: %w", err))
		return code
	}

	plan, err := rt.routePlan(keyed, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return http.StatusBadRequest
	}

	deadline := rt.cfg.Deadline
	if hd, ok := parseDeadlineMs(r.Header.Get(DeadlineHeader)); ok && hd < deadline {
		deadline = hd
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	client := clientKey(r)
	rt.budget.arrive(client)

	if isWrite {
		if plan.moving {
			// Resize drain: the user's replica set is changing hands.
			// Accepting the write on the old owner would strand it; on
			// the new owner it would race the state it has not finished
			// inheriting. Shed with a hint — the window ends at cutover.
			rt.shed.Inc()
			w.Header().Set("Retry-After", rt.retryAfterHint())
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("user %d is moving partitions (resize in progress): writes drain until cutover", plan.user))
			return http.StatusServiceUnavailable
		}
		return rt.proxyWrite(ctx, w, endpoint, body, client, plan)
	}
	return rt.proxyRead(ctx, w, endpoint, body, client, plan)
}

// proxyWrite is the /consume attempt loop, scoped to the owning
// partition: only its nodes are ever write targets, and only its
// epoch is stamped.
func (rt *Router) proxyWrite(ctx context.Context, w http.ResponseWriter, endpoint string, body []byte, client string, plan routePlan) int {
	var last *upstreamResult
	attempts := 0
	for ctx.Err() == nil {
		n := writeTargetIn(rt.writeNodes(plan))
		if n == nil {
			break // shed below; the prober (or a promotion) must restore a target
		}
		res, err := rt.attempt(ctx, n, endpoint, body)
		attempts++
		if err != nil {
			if !dialError(err) {
				// The request may have reached the backend: the write's
				// outcome is unknown and a replay could double-apply.
				// Surface the ambiguity; idempotency belongs to the caller.
				werr := fmt.Errorf("write outcome unknown (%s): %v", n.url, err)
				writeError(w, http.StatusBadGateway, werr)
				return http.StatusBadGateway
			}
			// Dial-level failure: the request never left this process, so
			// a retry cannot double-apply.
		} else {
			last = res
			if !retryableStatus(res.status, false) {
				return rt.forward(w, res)
			}
			switch res.status {
			case http.StatusPreconditionFailed:
				// The fence body carries the node's true epoch. Fold it in
				// now: re-attempting with the same stale view would just
				// re-fail every retry until the next probe round.
				rt.foldFence(n, res.body)
			case http.StatusMisdirectedRequest:
				// The node refused ownership of this key — the write
				// provably did not apply. Fold the misconfiguration in so
				// the re-pick skips the node (and the operator hears about
				// it), rather than hammering the same wrong door.
				rt.foldMisdirect(n, res.body)
			}
		}
		if attempts >= rt.cfg.MaxAttempts || !rt.budget.spend(client) {
			break
		}
		rt.retries.Inc()
		select {
		case <-ctx.Done():
		case <-time.After(rt.cfg.RetryBackoff):
		}
	}
	if last != nil {
		return rt.forward(w, last)
	}
	return rt.shedRequest(w, fmt.Sprintf("no write target for partition %d", plan.partIdx))
}

// proxyRead is the read attempt loop: distinct nodes per attempt (the
// tried set), optional hedging inside each attempt.
func (rt *Router) proxyRead(ctx context.Context, w http.ResponseWriter, endpoint string, body []byte, client string, plan routePlan) int {
	tried := map[*node]bool{}
	var last *upstreamResult
	attempts := 0
	for ctx.Err() == nil {
		cands := rt.readNodesFor(plan, tried)
		if len(cands) == 0 {
			break
		}
		n := cands[0]
		tried[n] = true
		res, err := rt.attemptHedged(ctx, n, endpoint, body, client, plan, tried)
		attempts++
		if err == nil {
			last = res
			if !retryableStatus(res.status, true) {
				return rt.forward(w, res)
			}
			if res.status == http.StatusMisdirectedRequest {
				// Reads dual-route during a resize, so a 421 from the next
				// owner before its re-identity lands is expected — fold and
				// fall through to the other candidates.
				rt.foldMisdirect(n, res.body)
			}
		}
		if attempts >= rt.cfg.MaxAttempts || !rt.budget.spend(client) {
			break
		}
		rt.retries.Inc()
	}
	if last != nil {
		return rt.forward(w, last)
	}
	return rt.shedRequest(w, "no backend answered")
}

// attemptHedged wraps attempt with tail-latency hedging: if the first
// attempt has not resolved within HedgeDelay, a budget-gated second
// attempt fires at another untried eligible node and the first good
// response wins. The loser is cancelled on return via the shared
// context.
func (rt *Router) attemptHedged(ctx context.Context, n *node, endpoint string, body []byte, client string, plan routePlan, tried map[*node]bool) (*upstreamResult, error) {
	if rt.cfg.HedgeDelay <= 0 {
		return rt.attempt(ctx, n, endpoint, body)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res *upstreamResult
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(target *node) {
		go func() {
			res, err := rt.attempt(actx, target, endpoint, body)
			ch <- outcome{res, err}
		}()
	}
	launch(n)
	inFlight := 1
	hedgeTimer := time.NewTimer(rt.cfg.HedgeDelay)
	defer hedgeTimer.Stop()
	var fallback *outcome // best non-winning outcome: a response beats an error
	for {
		select {
		case o := <-ch:
			inFlight--
			if o.err == nil && !retryableStatus(o.res.status, true) {
				return o.res, nil
			}
			if fallback == nil || (o.err == nil && fallback.err != nil) {
				fallback = &o
			}
			if inFlight == 0 {
				return fallback.res, fallback.err
			}
		case <-hedgeTimer.C:
			if inFlight != 1 {
				continue
			}
			cands := rt.readNodesFor(plan, tried)
			if len(cands) == 0 || !rt.budget.spend(client) {
				continue
			}
			h := cands[0]
			tried[h] = true
			rt.hedges.Inc()
			launch(h)
			inFlight++
		case <-ctx.Done():
			if fallback != nil {
				return fallback.res, fallback.err
			}
			return nil, ctx.Err()
		}
	}
}

// attempt makes one upstream round trip, bounded by TryTimeout within
// the request deadline, and buffers the whole response. The outbound
// request carries the epoch of the node's own partition (fencing any
// deposed node before it can ack a write — and never cross-fencing
// another partition's timeline) and the attempt's remaining deadline.
func (rt *Router) attempt(ctx context.Context, n *node, endpoint string, body []byte) (*upstreamResult, error) {
	tctx, cancel := context.WithTimeout(ctx, rt.cfg.TryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, n.url+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if e := rt.epochForNode(n); e > 0 {
		req.Header.Set("X-RRC-Epoch", strconv.FormatUint(e, 10))
	}
	if dl, ok := tctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, fmt.Errorf("reading %s response: %w", n.url, err)
	}
	return &upstreamResult{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        buf,
	}, nil
}

// retryableStatus classifies a backend status. 429/503 mean "not done,
// come back" by contract (shed, breaker, draining, recovering); 412 is
// an epoch fence and 421 an ownership refusal (both prove the request
// did not apply — re-pick and retry). Reads may additionally retry any
// 5xx: they are idempotent, so a different node is always worth one
// more try.
func retryableStatus(status int, isRead bool) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusPreconditionFailed, http.StatusMisdirectedRequest:
		return true
	}
	return isRead && status >= http.StatusInternalServerError
}

// dialError reports whether err happened at connection establishment —
// the one transport failure mode that proves the request was never
// sent, making a write retry safe.
func dialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// forward replays a buffered backend response to the client,
// preserving its Retry-After (or deriving one for backoff statuses
// that lack it, so every 429/503 through the router is schedulable).
func (rt *Router) forward(w http.ResponseWriter, res *upstreamResult) int {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	ra := res.retryAfter
	if ra == "" && (res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable) {
		ra = rt.retryAfterHint()
	}
	if ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
	return res.status
}

// shedRequest answers 503 locally: no backend produced even a
// definitive error within the deadline, attempts, and budget.
func (rt *Router) shedRequest(w http.ResponseWriter, why string) int {
	rt.shed.Inc()
	w.Header().Set("Retry-After", rt.retryAfterHint())
	writeError(w, http.StatusServiceUnavailable, errors.New(why))
	return http.StatusServiceUnavailable
}
