// The proxy path. One incoming request becomes a bounded sequence of
// upstream attempts:
//
//   - The body is buffered once (capped), so an attempt can be replayed
//     without trusting the client to resend.
//   - The request runs under min(router default, X-RRC-Deadline-Ms);
//     every attempt is additionally bounded by TryTimeout and carries
//     the remaining budget downstream in the same header.
//   - Reads retry across distinct nodes on 429/503/412/5xx or any
//     transport error; writes re-pick the write target after a short
//     backoff, and retry ONLY outcomes that provably never applied:
//     dial-level transport errors (the request never left) and
//     429/503/412 (the contract says "not durable"). Anything
//     ambiguous — an error after the request was sent — is answered
//     502 without a retry, because replaying it could double-apply.
//   - Every retry and hedge spends the client's retry budget; when the
//     budget or MaxAttempts runs out the router forwards the last
//     definitive backend response, else sheds 503 + Retry-After.
package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// maxProxyBody caps buffered request and response bodies (16 MiB —
// far above any real /recommend/batch, small enough to bound memory
// per in-flight request).
const maxProxyBody = 1 << 24

// upstreamResult is one fully buffered backend response, decoupled
// from the backend connection so it can lose a hedge race, be held as
// "last definitive answer", or be forwarded — all after the upstream
// round trip finished.
type upstreamResult struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// proxy builds the handler for one proxied endpoint.
func (rt *Router) proxy(endpoint string, isWrite bool) http.Handler {
	em := rt.endpointMetrics(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := rt.serveProxy(w, r, endpoint, isWrite)
		em.observe(code, start)
	})
}

// serveProxy runs the attempt loop and returns the status it wrote.
func (rt *Router) serveProxy(w http.ResponseWriter, r *http.Request, endpoint string, isWrite bool) int {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("reading request body: %w", err))
		return code
	}

	deadline := rt.cfg.Deadline
	if hd, ok := parseDeadlineMs(r.Header.Get(DeadlineHeader)); ok && hd < deadline {
		deadline = hd
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	client := clientKey(r)
	rt.budget.arrive(client)

	if isWrite {
		return rt.proxyWrite(ctx, w, endpoint, body, client)
	}
	return rt.proxyRead(ctx, w, endpoint, body, client)
}

// proxyWrite is the /consume attempt loop.
func (rt *Router) proxyWrite(ctx context.Context, w http.ResponseWriter, endpoint string, body []byte, client string) int {
	var last *upstreamResult
	attempts := 0
	for ctx.Err() == nil {
		n := rt.writeTarget()
		if n == nil {
			break // shed below; the prober (or a promotion) must restore a target
		}
		res, err := rt.attempt(ctx, n, endpoint, body)
		attempts++
		if err != nil {
			if !dialError(err) {
				// The request may have reached the backend: the write's
				// outcome is unknown and a replay could double-apply.
				// Surface the ambiguity; idempotency belongs to the caller.
				werr := fmt.Errorf("write outcome unknown (%s): %v", n.url, err)
				writeError(w, http.StatusBadGateway, werr)
				return http.StatusBadGateway
			}
			// Dial-level failure: the request never left this process, so
			// a retry cannot double-apply.
		} else {
			last = res
			if !retryableStatus(res.status, false) {
				return rt.forward(w, res)
			}
			if res.status == http.StatusPreconditionFailed {
				// The fence body carries the node's true epoch. Fold it in
				// now: re-attempting with the same stale view would just
				// re-fail every retry until the next probe round.
				rt.foldFence(n, res.body)
			}
		}
		if attempts >= rt.cfg.MaxAttempts || !rt.budget.spend(client) {
			break
		}
		rt.retries.Inc()
		select {
		case <-ctx.Done():
		case <-time.After(rt.cfg.RetryBackoff):
		}
	}
	if last != nil {
		return rt.forward(w, last)
	}
	return rt.shedRequest(w, "no write target")
}

// proxyRead is the read attempt loop: distinct nodes per attempt (the
// tried set), optional hedging inside each attempt.
func (rt *Router) proxyRead(ctx context.Context, w http.ResponseWriter, endpoint string, body []byte, client string) int {
	tried := map[*node]bool{}
	var last *upstreamResult
	attempts := 0
	for ctx.Err() == nil {
		cands := rt.readCandidates(tried)
		if len(cands) == 0 {
			break
		}
		n := cands[0]
		tried[n] = true
		res, err := rt.attemptHedged(ctx, n, endpoint, body, client, tried)
		attempts++
		if err == nil {
			last = res
			if !retryableStatus(res.status, true) {
				return rt.forward(w, res)
			}
		}
		if attempts >= rt.cfg.MaxAttempts || !rt.budget.spend(client) {
			break
		}
		rt.retries.Inc()
	}
	if last != nil {
		return rt.forward(w, last)
	}
	return rt.shedRequest(w, "no backend answered")
}

// attemptHedged wraps attempt with tail-latency hedging: if the first
// attempt has not resolved within HedgeDelay, a budget-gated second
// attempt fires at another untried node and the first good response
// wins. The loser is cancelled on return via the shared context.
func (rt *Router) attemptHedged(ctx context.Context, n *node, endpoint string, body []byte, client string, tried map[*node]bool) (*upstreamResult, error) {
	if rt.cfg.HedgeDelay <= 0 {
		return rt.attempt(ctx, n, endpoint, body)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res *upstreamResult
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(target *node) {
		go func() {
			res, err := rt.attempt(actx, target, endpoint, body)
			ch <- outcome{res, err}
		}()
	}
	launch(n)
	inFlight := 1
	hedgeTimer := time.NewTimer(rt.cfg.HedgeDelay)
	defer hedgeTimer.Stop()
	var fallback *outcome // best non-winning outcome: a response beats an error
	for {
		select {
		case o := <-ch:
			inFlight--
			if o.err == nil && !retryableStatus(o.res.status, true) {
				return o.res, nil
			}
			if fallback == nil || (o.err == nil && fallback.err != nil) {
				fallback = &o
			}
			if inFlight == 0 {
				return fallback.res, fallback.err
			}
		case <-hedgeTimer.C:
			if inFlight != 1 {
				continue
			}
			cands := rt.readCandidates(tried)
			if len(cands) == 0 || !rt.budget.spend(client) {
				continue
			}
			h := cands[0]
			tried[h] = true
			rt.hedges.Inc()
			launch(h)
			inFlight++
		case <-ctx.Done():
			if fallback != nil {
				return fallback.res, fallback.err
			}
			return nil, ctx.Err()
		}
	}
}

// attempt makes one upstream round trip, bounded by TryTimeout within
// the request deadline, and buffers the whole response. The outbound
// request carries the fleet's max epoch (fencing any deposed node
// before it can ack a write) and the attempt's remaining deadline.
func (rt *Router) attempt(ctx context.Context, n *node, endpoint string, body []byte) (*upstreamResult, error) {
	tctx, cancel := context.WithTimeout(ctx, rt.cfg.TryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, n.url+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if e := rt.maxEpoch(); e > 0 {
		req.Header.Set("X-RRC-Epoch", strconv.FormatUint(e, 10))
	}
	if dl, ok := tctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, fmt.Errorf("reading %s response: %w", n.url, err)
	}
	return &upstreamResult{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        buf,
	}, nil
}

// retryableStatus classifies a backend status. 429/503 mean "not done,
// come back" by contract (shed, breaker, draining, recovering); 412 is
// an epoch fence (the write provably did not apply — re-pick and
// retry). Reads may additionally retry any 5xx: they are idempotent,
// so a different node is always worth one more try.
func retryableStatus(status int, isRead bool) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusPreconditionFailed:
		return true
	}
	return isRead && status >= http.StatusInternalServerError
}

// dialError reports whether err happened at connection establishment —
// the one transport failure mode that proves the request was never
// sent, making a write retry safe.
func dialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// forward replays a buffered backend response to the client,
// preserving its Retry-After (or deriving one for backoff statuses
// that lack it, so every 429/503 through the router is schedulable).
func (rt *Router) forward(w http.ResponseWriter, res *upstreamResult) int {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	ra := res.retryAfter
	if ra == "" && (res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable) {
		ra = rt.retryAfterHint()
	}
	if ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
	return res.status
}

// shedRequest answers 503 locally: no backend produced even a
// definitive error within the deadline, attempts, and budget.
func (rt *Router) shedRequest(w http.ResponseWriter, why string) int {
	rt.shed.Inc()
	w.Header().Set("Retry-After", rt.retryAfterHint())
	writeError(w, http.StatusServiceUnavailable, errors.New(why))
	return http.StatusServiceUnavailable
}
