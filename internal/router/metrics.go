// Router observability: the rrc_router_* families. Per-node series
// are GaugeFuncs that look the node up by URL at scrape time, so a
// node removed from the topology scrapes as 0 instead of freezing at
// its last value (the obs registry has no unregister).
//
//	rrc_router_node_state{node="..."}   0 unreachable · 1 reachable
//	                                    · 2 ready · 3 fenced
//	rrc_router_node_epoch{node="..."}   last probed replication epoch
//	rrc_router_node_lag_records{node=}  last probed follower lag
//	rrc_router_failovers_total          promotions this router drove
//	rrc_router_retries_total            upstream re-attempts
//	rrc_router_hedges_total             hedged read attempts
//	rrc_router_shed_total               requests answered 503 locally
//	rrc_router_misdirects_total         421 ownership refusals folded
//	rrc_router_budget_evictions_total   retry-budget LRU evictions
//	rrc_router_budget_clients           retry-budget ledger size
//	rrc_router_requests_total{endpoint=} / errors_total / request_seconds
package router

import (
	"fmt"
	"net/http"
	"time"

	"tsppr/internal/obs"
)

// Node-state gauge values, least to most healthy (fenced sorts last
// because a fenced node is categorically out of rotation).
const (
	nodeStateUnreachable = 0
	nodeStateReachable   = 1
	nodeStateReady       = 2
	nodeStateFenced      = 3
)

func (rt *Router) initMetrics() {
	rt.failovers = rt.counterHelp("rrc_router_failovers_total",
		"Promotions this router has driven via POST /admin/promote.")
	rt.retries = rt.counterHelp("rrc_router_retries_total",
		"Upstream re-attempts (beyond each request's first try).")
	rt.hedges = rt.counterHelp("rrc_router_hedges_total",
		"Hedged read attempts fired after HedgeDelay.")
	rt.shed = rt.counterHelp("rrc_router_shed_total",
		"Requests the router answered 503 locally (no backend, budget, deadline, or resize drain).")
	rt.misdirects = rt.counterHelp("rrc_router_misdirects_total",
		"421 responses folded: a node refused a key the topology routed to it (cross-partition misconfiguration or resize transient).")
	rt.budget.evictions = rt.counterHelp("rrc_router_budget_evictions_total",
		"Retry-budget ledger entries evicted at the LRU client cap.")
	if rt.reg != nil {
		rt.reg.Help("rrc_router_budget_clients",
			"Distinct clients currently tracked in the retry-budget ledger.")
		rt.reg.GaugeFunc("rrc_router_budget_clients", func() float64 {
			return float64(rt.budget.size())
		})
	}
	if rt.reg != nil {
		rt.reg.Help("rrc_router_node_state",
			"Probed node state: 0 unreachable, 1 reachable, 2 ready, 3 fenced.")
		rt.reg.Help("rrc_router_node_epoch", "Last probed replication epoch per node.")
		rt.reg.Help("rrc_router_node_lag_records", "Last probed follower record lag per node.")
		rt.reg.Help("rrc_router_requests_total", "Requests through the router per endpoint.")
		rt.reg.Help("rrc_router_errors_total", "Router responses with status >= 400 per endpoint.")
		rt.reg.Help("rrc_router_request_seconds", "Router end-to-end request latency per endpoint.")
	}
}

func (rt *Router) counterHelp(name, help string) *obs.Counter {
	if rt.reg == nil {
		return obs.NewRegistry().Counter(name) // detached no-op-ish handle
	}
	rt.reg.Help(name, help)
	return rt.reg.Counter(name)
}

// registerNodeGauges installs the per-node GaugeFuncs for a URL newly
// added to the topology. Must be called WITHOUT rt.mu held: it takes
// the registry lock, and the closures take rt.mu under the registry
// lock at scrape time — holding rt.mu here would invert that order and
// deadlock against a concurrent /metrics scrape. The closures re-lookup
// the node at scrape time, so they survive the node being dropped and
// re-added.
func (rt *Router) registerNodeGauges(url string) {
	if rt.reg == nil {
		return
	}
	lookup := func() (nodeView, bool) {
		rt.mu.Lock()
		n, ok := rt.byURL[url]
		rt.mu.Unlock()
		if !ok {
			return nodeView{}, false
		}
		return n.view(), true
	}
	rt.reg.GaugeFunc(fmt.Sprintf("rrc_router_node_state{node=%q}", url), func() float64 {
		v, ok := lookup()
		switch {
		case !ok || !v.Reachable:
			return nodeStateUnreachable
		case v.Fenced:
			return nodeStateFenced
		case v.Ready:
			return nodeStateReady
		default:
			return nodeStateReachable
		}
	})
	rt.reg.GaugeFunc(fmt.Sprintf("rrc_router_node_epoch{node=%q}", url), func() float64 {
		v, _ := lookup()
		return float64(v.Epoch)
	})
	rt.reg.GaugeFunc(fmt.Sprintf("rrc_router_node_lag_records{node=%q}", url), func() float64 {
		v, _ := lookup()
		return float64(v.LagRecords)
	})
}

// endpointMetrics is the per-endpoint instrument set, minted once per
// proxied endpoint at Routes() time (handle mint takes a registry
// lock; the request path must not).
type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

func (rt *Router) endpointMetrics(endpoint string) endpointMetrics {
	reg := rt.reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return endpointMetrics{
		requests: reg.Counter(fmt.Sprintf("rrc_router_requests_total{endpoint=%q}", endpoint)),
		errors:   reg.Counter(fmt.Sprintf("rrc_router_errors_total{endpoint=%q}", endpoint)),
		latency:  reg.Histogram(fmt.Sprintf("rrc_router_request_seconds{endpoint=%q}", endpoint), obs.LatencyBuckets),
	}
}

func (m endpointMetrics) observe(code int, start time.Time) {
	m.requests.Inc()
	if code >= http.StatusBadRequest {
		m.errors.Inc()
	}
	m.latency.Observe(time.Since(start).Seconds())
}
