package router

import (
	"fmt"
	"testing"
)

func TestRetryBudgetArithmetic(t *testing.T) {
	b := newRetryBudget(0.5, 2)

	// No credit yet: nothing to spend.
	if b.spend("a") {
		t.Fatal("spend succeeded on an empty budget")
	}

	// Two arrivals bank 1.0 token — exactly one retry.
	b.arrive("a")
	b.arrive("a")
	if !b.spend("a") {
		t.Fatal("spend failed with a full token banked")
	}
	if b.spend("a") {
		t.Fatal("second spend succeeded after the balance was drained")
	}

	// The bank is capped at burst: 100 arrivals ≠ 50 retries.
	for i := 0; i < 100; i++ {
		b.arrive("a")
	}
	if got := b.tokens("a"); got != 2 {
		t.Fatalf("banked %v tokens, burst cap is 2", got)
	}

	// Budgets are per client: client b starts empty regardless of a.
	if b.spend("b") {
		t.Fatal("client b spent client a's tokens")
	}
}

func TestRetryBudgetBoundsClientCount(t *testing.T) {
	// The ledger key is client-controlled (X-RRC-Client / source IP): a
	// caller minting a fresh identity per request must not grow the map
	// without bound, and the eviction must be LRU — a busy client's
	// balance survives a churn of drive-by identities.
	b := newRetryBudget(0.5, 2)
	b.maxClients = 8

	for i := 0; i < 100; i++ {
		b.arrive(fmt.Sprintf("drive-by-%d", i))
		b.arrive("keeper") // stays hot throughout
	}
	if got := b.size(); got > 8 {
		t.Fatalf("tracking %d clients, cap is 8", got)
	}
	if !b.spend("keeper") {
		t.Fatal("hot client lost its banked tokens to drive-by churn")
	}
	if b.spend("drive-by-0") {
		t.Fatal("evicted client retained tokens")
	}
}

func TestRetryBudgetAmplificationBound(t *testing.T) {
	// The closed-form bound the router's docs promise: R requests from
	// one client can fund at most R*ratio + burst retries.
	const requests, ratio, burst = 1000, 0.1, 10.0
	b := newRetryBudget(ratio, burst)
	retries := 0
	for i := 0; i < requests; i++ {
		b.arrive("c")
		for b.spend("c") { // adversarial: drain everything available
			retries++
		}
	}
	if bound := int(requests*ratio + burst); retries > bound {
		t.Fatalf("%d retries funded by %d requests, bound is %d", retries, requests, bound)
	}
}
