package router

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestLoadTopology(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nodes")
	content := "# fleet\nhttp://a:8395\n\n  http://b:8396/  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	nodes, _, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0] != "http://a:8395" || nodes[1] != "http://b:8396" {
		t.Fatalf("parsed %v", nodes)
	}

	for name, bad := range map[string]string{
		"not-a-url": "around:the:bend\n",
		"empty":     "# nothing here\n",
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadTopology(path); err == nil {
			t.Fatalf("%s topology loaded without error", name)
		}
	}
}

func TestRouterWatchesTopologyFile(t *testing.T) {
	a := &fakeNode{caughtUp: true}
	b := &fakeNode{role: roleFollower, caughtUp: true}
	a.ts = httptest.NewServer(a.handler())
	b.ts = httptest.NewServer(b.handler())
	t.Cleanup(a.ts.Close)
	t.Cleanup(b.ts.Close)

	path := filepath.Join(t.TempDir(), "nodes")
	if err := os.WriteFile(path, []byte(a.ts.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		TopologyPath:  path,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	if got := rt.Nodes(); len(got) != 1 || got[0] != a.ts.URL {
		t.Fatalf("initial topology %v", got)
	}

	// Add node b; backdate-proof the mtime change by rewriting with a
	// bumped modification time.
	if err := os.WriteFile(path, []byte(a.ts.URL+"\n"+b.ts.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "topology reload", func() bool { return len(rt.Nodes()) == 2 })
	waitFor(t, "new node probed", func() bool {
		for _, ns := range mustStatus(rt).Nodes {
			if ns.URL == b.ts.URL && ns.Reachable {
				return true
			}
		}
		return false
	})

	// A broken rewrite must keep the last good topology.
	if err := os.WriteFile(path, []byte("::::\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	later := future.Add(2 * time.Second)
	if err := os.Chtimes(path, later, later); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := rt.Nodes(); len(got) != 2 {
		t.Fatalf("broken topology file emptied the fleet: %v", got)
	}
}

func TestTopologyReloadDetectsSameMtimeRewrite(t *testing.T) {
	// On filesystems with 1s mtime granularity two edits can land on
	// the same timestamp; the watch key must include the size so the
	// second edit is not silently skipped.
	path := filepath.Join(t.TempDir(), "nodes")
	if err := os.WriteFile(path, []byte("http://a:8395\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mtime := time.Now().Truncate(time.Second)
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{TopologyPath: path})
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite with the mtime pinned: only the size moves.
	if err := os.WriteFile(path, []byte("http://a:8395\nhttp://b:8396\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	rt.reloadTopology()
	if got := rt.Nodes(); len(got) != 2 {
		t.Fatalf("same-mtime rewrite not applied: %v", got)
	}
	rt.Stop() // never Started: must return without blocking
}

func mustStatus(rt *Router) Status {
	st, _ := rt.statusSnapshot()
	return st
}
