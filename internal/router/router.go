// Package router implements the stateless epoch-aware front end that
// sits between clients and a fleet of rrc-server replicated pairs. The
// serving layer is stateful (each node owns per-user repeat-consumption
// windows), so which node answers matters: writes must reach the one
// node that can make them durable on the current timeline, and reads
// must come from a node whose window state is fresh enough to rank
// from. The router turns that placement problem into configuration:
//
//   - Topology comes from a static node list, a static partition
//     layout, or a watched topology file; nodes are added, removed, and
//     repartitioned without restarting the router.
//   - The fleet is P partitions, each a replicated primary/standby
//     pair. Partition i owns exactly the users with
//     shard.UserShard(user, P) == i — the same hash the nodes
//     themselves shard by, so router and storage agree on ownership
//     for every key. A flat topology is the degenerate P=1 fleet and
//     behaves exactly as before partitioning existed.
//   - Every node is health-probed (GET /readyz + GET /replica/epoch) on
//     a jittered interval. The probe carries the highest epoch the
//     router has seen for that node's partition (X-RRC-Epoch), so a
//     deposed primary fences itself the moment the router looks at it —
//     the existing replication contract, no new protocol. Epochs are
//     per-partition timelines and are never stamped across partitions.
//   - User-keyed requests (/consume, /recommend/user) parse the user id
//     and route to its owning partition: writes to that partition's
//     highest-epoch unfenced primary, reads to any of its healthy nodes
//     within the staleness bound. Stateless reads (/recommend,
//     /recommend/batch) route across all partitions' nodes.
//   - Failover runs per partition: when a partition has no write target
//     for ProbeFails consecutive probe rounds and AutoPromote is set,
//     the router promotes that partition's best caught-up standby. One
//     partition losing its primary sheds 503s only for its own key
//     range; the rest of the fleet never notices.
//   - A node that answers 421 (it owns a different partition than the
//     topology says) is folded out of rotation immediately, like a 412
//     fence — cross-partition misconfiguration is a loud error and a
//     metric, never silent misrouting.
//   - During a resize (the topology file carries a `next` layout) the
//     router drains writes for users whose partition assignment moves
//     (503 + Retry-After) and dual-routes their reads (new owner first,
//     old owner as fallback) until the operator cuts the next layout
//     over to current.
//   - Requests carry propagated deadlines (X-RRC-Deadline-Ms), bounded
//     retries under a per-client retry budget (a fully down backend
//     can never amplify client traffic beyond the budget), and —
//     optionally — hedged reads for tail latency.
//
// Retry safety: reads are idempotent and retry freely. A write retries
// only when the router can prove the attempt never applied — the
// connection was refused before the request was sent, or the backend
// answered 429/503/412/421 (all "not durable" by contract). A write
// that failed after the request was sent is answered 502 without a
// retry: the outcome is unknown, and replaying it could double-apply
// the event. Idempotency of ambiguous writes belongs to the caller.
package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsppr/internal/obs"
)

// DeadlineHeader carries the remaining request deadline in integer
// milliseconds. The router stamps it on every proxied request;
// rrc-server bounds its per-request work by min(header, its own
// -request-timeout), so a deadline set at the edge actually bounds
// backend work instead of evaporating at the first hop.
const DeadlineHeader = "X-RRC-Deadline-Ms"

// Config tunes a Router. Zero fields pick the documented defaults.
type Config struct {
	// Nodes is the static flat topology: one partition's backend base
	// URLs. Ignored when Partitions or TopologyPath is set.
	Nodes []string
	// Partitions is the static partitioned topology: Partitions[i]
	// lists partition i's nodes. Ignored when TopologyPath is set.
	Partitions [][]string
	// TopologyPath names a topology file (flat or partitioned — see
	// package topology docs). The router re-reads it whenever its stamp
	// changes, so nodes are added, repartitioned, or resized without a
	// restart.
	TopologyPath string

	ProbeInterval time.Duration // health-probe period (jittered ±20%); 0 → 500ms
	ProbeTimeout  time.Duration // per-probe HTTP timeout; 0 → ProbeInterval
	ProbeFails    int           // probe rounds a partition lacks a write target before failover; 0 → 3

	// AutoPromote lets the router drive failover itself: after
	// ProbeFails rounds with no reachable unfenced primary in a
	// partition it POSTs /admin/promote to that partition's best
	// caught-up standby. Off, the router only follows promotions
	// performed elsewhere (operator or the standby's own -auto-promote).
	AutoPromote bool

	// MaxLagRecords bounds read staleness: a follower more than this
	// many records behind its primary stops taking reads until it
	// catches back up. 0 → 1024.
	MaxLagRecords uint64

	Deadline    time.Duration // default client deadline; 0 → 2s
	TryTimeout  time.Duration // per-attempt bound within the deadline; 0 → 1s
	MaxAttempts int           // upstream attempts per request, incl. the first; 0 → 3

	// RetryBudget is the per-client retry allowance: each incoming
	// request earns the client this many retry tokens (capped at
	// RetryBurst), and every retry or hedge spends one. Under a fully
	// down backend a client's upstream attempts are therefore bounded
	// by requests × (1 + RetryBudget) + RetryBurst — no retry storms.
	// 0 → 0.1.
	RetryBudget float64
	// RetryBurst caps banked retry tokens per client. 0 → 10.
	RetryBurst float64
	// RetryBackoff is the pause before re-attempting a write (the
	// write target rarely changes faster than a probe round). 0 → 25ms.
	RetryBackoff time.Duration

	// HedgeDelay, when positive, arms hedged reads: a read that has
	// not answered within this delay fires a second attempt at another
	// eligible node and the first response wins. Hedges spend retry
	// budget, so they cannot storm either. 0 disables hedging.
	HedgeDelay time.Duration

	// Metrics, when non-nil, receives the rrc_router_* families.
	Metrics *obs.Registry
	// Client, when nil, falls back to a default with sane timeouts.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.ProbeFails <= 0 {
		c.ProbeFails = 3
	}
	if c.MaxLagRecords == 0 {
		c.MaxLagRecords = 1024
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.TryTimeout <= 0 {
		c.TryTimeout = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 0.1
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 10
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	return c
}

// partition is one replicated pair (or larger replica set) owning a
// slice of the user-key space.
type partition struct {
	index int
	nodes []*node
	// key is the canonical sorted node-set identity, used to decide
	// whether a user's owning replica set actually changes during a
	// resize (a partition kept intact across a split never drains).
	key string
	// noTargetStreak counts consecutive probe rounds this partition
	// ended with no reachable unfenced primary — the failover trigger.
	noTargetStreak int
}

func partitionKey(nodes []*node) string {
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.url
	}
	sort.Strings(urls)
	return strings.Join(urls, ",")
}

// Router is the front end. It holds no session state — only the probed
// view of the topology — so any number of routers can run side by side.
type Router struct {
	cfg    Config
	client *http.Client

	mu sync.Mutex
	// parts is the current partition layout (len = P). nextParts is
	// the resize target layout, nil outside a resize window.
	parts     []*partition
	nextParts []*partition
	byURL     map[string]*node
	topoStamp FileStamp // stamp of the last loaded topology file

	budget *retryBudget
	rr     atomic.Uint64 // read candidate rotation

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool // Start ran: done will eventually close
	stop      chan struct{}
	done      chan struct{}

	reg        *obs.Registry
	failovers  *obs.Counter
	retries    *obs.Counter
	hedges     *obs.Counter
	shed       *obs.Counter
	misdirects *obs.Counter
}

// New builds a Router over cfg. Call Start to run the prober (and the
// topology watcher), Routes for the HTTP handler, Stop to shut down.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:    cfg,
		client: cfg.Client,
		byURL:  map[string]*node{},
		budget: newRetryBudget(cfg.RetryBudget, cfg.RetryBurst),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		reg:    cfg.Metrics,
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: 30 * time.Second}
	}
	rt.initMetrics()

	topo := Topology{Partitions: cfg.Partitions}
	switch {
	case cfg.TopologyPath != "":
		loaded, stamp, err := LoadTopologyFile(cfg.TopologyPath)
		if err != nil {
			return nil, err
		}
		topo, rt.topoStamp = loaded, stamp
	case len(cfg.Partitions) > 0:
		if err := topo.Validate(); err != nil {
			return nil, err
		}
	default:
		topo = Topology{Partitions: [][]string{cfg.Nodes}}
	}
	if len(topo.Partitions) == 0 || len(topo.Partitions[0]) == 0 {
		return nil, errors.New("router: no backend nodes configured")
	}
	rt.SetTopology(topo)
	return rt, nil
}

// Start probes every node once synchronously (so the router is usable
// the moment it returns) and launches the probe loop. Idempotent.
func (rt *Router) Start() {
	rt.startOnce.Do(func() {
		rt.started.Store(true)
		rt.probeRound()
		go rt.run()
	})
}

// Stop halts the probe loop. Safe to call from multiple goroutines and
// before Start (then it only marks the router stopped — there is no
// loop to wait out, and a later Start exits immediately).
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	if rt.started.Load() {
		<-rt.done
	}
}

// probeDelay is one probe round's sleep: ProbeInterval jittered
// uniformly over ±20%. A fleet of routers started together (or a
// router fleet probing a shared backend) must not synchronize its
// probe bursts; the jitter desynchronizes rounds without changing the
// average probe rate.
func probeDelay(interval time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(interval) * (0.8 + 0.4*rng.Float64()))
}

func (rt *Router) run() {
	defer close(rt.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	timer := time.NewTimer(probeDelay(rt.cfg.ProbeInterval, rng))
	defer timer.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-timer.C:
		}
		rt.reloadTopology()
		rt.probeRound()
		timer.Reset(probeDelay(rt.cfg.ProbeInterval, rng))
	}
}

// SetTopology replaces the partition layout. Known URLs keep their
// probed state; new ones start unprobed; removed ones stop being
// candidates. Per-partition failover streaks survive for partitions
// whose node set is unchanged.
func (rt *Router) SetTopology(t Topology) {
	rt.mu.Lock()
	prevStreak := map[string]int{}
	for _, p := range rt.parts {
		prevStreak[p.key] = p.noTargetStreak
	}
	nextBy := map[string]*node{}
	var added []string
	build := func(layout [][]string) []*partition {
		if layout == nil {
			return nil
		}
		parts := make([]*partition, 0, len(layout))
		for i, urls := range layout {
			p := &partition{index: i}
			for _, u := range urls {
				n, ok := nextBy[u]
				if !ok {
					if n, ok = rt.byURL[u]; !ok {
						n = &node{url: u}
						added = append(added, u)
					}
					nextBy[u] = n
				}
				if containsNode(p.nodes, n) {
					continue
				}
				p.nodes = append(p.nodes, n)
			}
			p.key = partitionKey(p.nodes)
			p.noTargetStreak = prevStreak[p.key]
			parts = append(parts, p)
		}
		return parts
	}
	rt.parts = build(t.Partitions)
	rt.nextParts = build(t.Next)
	rt.byURL = nextBy
	rt.mu.Unlock()

	// Gauge registration takes the registry lock, and the registered
	// closures take rt.mu under the registry lock at scrape time — so
	// registering under rt.mu would order the two locks both ways and
	// deadlock against a concurrent /metrics scrape. Register only
	// after releasing rt.mu; the nodes are already published above, so
	// a scrape racing this loop finds them.
	for _, u := range added {
		rt.registerNodeGauges(u)
	}
}

func containsNode(nodes []*node, n *node) bool {
	for _, have := range nodes {
		if have == n {
			return true
		}
	}
	return false
}

// SetNodes replaces the topology with a single flat partition — the
// pre-partitioning API, kept for flat deployments and tests.
func (rt *Router) SetNodes(urls []string) {
	rt.SetTopology(Topology{Partitions: [][]string{urls}})
}

// P reports the current partition count.
func (rt *Router) P() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.parts)
}

// Nodes returns the current topology order: every partition's nodes in
// partition order, then resize-target nodes not already listed.
func (rt *Router) Nodes() []string {
	var out []string
	for _, n := range rt.snapshotNodes() {
		out = append(out, n.url)
	}
	return out
}

// snapshotNodes returns every distinct node across the current and
// resize-target layouts, in topology order.
func (rt *Router) snapshotNodes() []*node {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.snapshotNodesLocked()
}

func (rt *Router) snapshotNodesLocked() []*node {
	var out []*node
	seen := map[*node]bool{}
	for _, layout := range [2][]*partition{rt.parts, rt.nextParts} {
		for _, p := range layout {
			for _, n := range p.nodes {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// partNodes snapshots one current partition's node list. The second
// return is false when the index is stale (a concurrent topology
// change shrank the layout).
func (rt *Router) partNodes(i int) ([]*node, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if i < 0 || i >= len(rt.parts) {
		return nil, false
	}
	return append([]*node(nil), rt.parts[i].nodes...), true
}

// maxEpoch is the highest replication epoch observed anywhere in the
// fleet — display only. Epochs are per-partition timelines; routing
// and fencing always use partition-scoped epochs.
func (rt *Router) maxEpoch() uint64 {
	var max uint64
	for _, n := range rt.snapshotNodes() {
		if e := n.view().Epoch; e > max {
			max = e
		}
	}
	return max
}

// epochIn is the highest epoch observed among nodes — the fencing
// stamp for requests routed within that partition.
func epochIn(nodes []*node) uint64 {
	var max uint64
	for _, n := range nodes {
		if e := n.view().Epoch; e > max {
			max = e
		}
	}
	return max
}

// epochForNode is the epoch stamp for a request sent to n: the epoch
// of the partition n belongs to (current layout first, then the resize
// target). Stamping another partition's epoch could wrongly fence a
// healthy primary, so an unknown node gets 0 (no stamp).
func (rt *Router) epochForNode(n *node) uint64 {
	rt.mu.Lock()
	var nodes []*node
	for _, layout := range [2][]*partition{rt.parts, rt.nextParts} {
		for _, p := range layout {
			if containsNode(p.nodes, n) {
				nodes = append([]*node(nil), p.nodes...)
				break
			}
		}
		if nodes != nil {
			break
		}
	}
	rt.mu.Unlock()
	return epochIn(nodes)
}

// writeTargetIn picks the one node writes may go to within a
// partition: reachable, role primary, unfenced, not misplaced, highest
// epoch. Nil when no such node exists — that partition's writes shed
// until the prober (or a promotion) restores one.
func writeTargetIn(nodes []*node) *node {
	var best *node
	var bestEpoch uint64
	for _, n := range nodes {
		v := n.view()
		if !v.Reachable || v.Fenced || v.Misplaced || v.Role != rolePrimary {
			continue
		}
		if best == nil || v.Epoch > bestEpoch {
			best, bestEpoch = n, v.Epoch
		}
	}
	return best
}

// readCandidatesIn lists nodes eligible for reads among nodes, rotated
// for load spread, minus exclude. Eligibility degrades gracefully:
// fully healthy in-bound nodes first; if none, any reachable unfenced
// node (probe state may be a round stale); if none, every node — a
// request is cheaper to fail on the wire than to shed on a guess.
// Fenced nodes are never offered: a deposed primary's unshipped tail
// makes its windows divergent, not merely stale. Misplaced nodes (they
// report owning a different partition) are never offered either:
// another partition's windows are the wrong data, not stale data.
func (rt *Router) readCandidatesIn(nodes []*node, exclude map[*node]bool) []*node {
	pick := func(ok func(nodeView) bool) []*node {
		var out []*node
		for _, n := range nodes {
			if exclude[n] {
				continue
			}
			v := n.view()
			if v.Fenced || v.Misplaced {
				continue
			}
			if ok(v) {
				out = append(out, n)
			}
		}
		return out
	}
	out := pick(func(v nodeView) bool {
		if !v.Reachable || !v.Ready {
			return false
		}
		return v.Role != roleFollower || v.LagRecords <= rt.cfg.MaxLagRecords
	})
	if len(out) == 0 {
		out = pick(func(v nodeView) bool { return v.Reachable })
	}
	if len(out) == 0 {
		out = pick(func(nodeView) bool { return true })
	}
	if len(out) > 1 {
		off := int(rt.rr.Add(1)) % len(out)
		out = append(out[off:], out[:off]...)
	}
	return out
}

// PartitionStatus is the per-partition block in the router's own
// /readyz body.
type PartitionStatus struct {
	Index       int      `json:"partition"`
	WriteTarget string   `json:"write_target,omitempty"`
	Epoch       uint64   `json:"epoch"`
	Nodes       []string `json:"nodes"`
}

// Status is the router's own /readyz and /stats body.
type Status struct {
	Status string `json:"status"`
	// WriteTarget is the single-partition convenience field (P=1 — the
	// pre-partitioning shape); per-partition targets live in
	// Partitions.
	WriteTarget string            `json:"write_target,omitempty"`
	Epoch       uint64            `json:"epoch"`
	Partitions  []PartitionStatus `json:"partitions,omitempty"`
	Resize      []PartitionStatus `json:"resize,omitempty"`
	Nodes       []NodeStatus      `json:"nodes"`
}

func partitionStatuses(parts []*partition) []PartitionStatus {
	out := make([]PartitionStatus, 0, len(parts))
	for _, p := range parts {
		ps := PartitionStatus{Index: p.index, Epoch: epochIn(p.nodes)}
		for _, n := range p.nodes {
			ps.Nodes = append(ps.Nodes, n.url)
		}
		if wt := writeTargetIn(p.nodes); wt != nil {
			ps.WriteTarget = wt.url
		}
		out = append(out, ps)
	}
	return out
}

// statusSnapshot assembles the current routed view. The router is 503
// only when it can serve nothing: no partition has a write target, or
// no read candidate exists anywhere. A single partition missing its
// primary degrades only that key range, and /readyz says so without
// failing the whole router.
func (rt *Router) statusSnapshot() (Status, int) {
	rt.mu.Lock()
	parts := append([]*partition(nil), rt.parts...)
	nextParts := append([]*partition(nil), rt.nextParts...)
	rt.mu.Unlock()

	st := Status{Status: "ready", Epoch: rt.maxEpoch()}
	code := http.StatusOK
	for _, n := range rt.snapshotNodes() {
		st.Nodes = append(st.Nodes, n.status())
	}
	st.Partitions = partitionStatuses(parts)
	if len(nextParts) > 0 {
		st.Resize = partitionStatuses(nextParts)
	}

	var missing []string
	for _, ps := range st.Partitions {
		if ps.WriteTarget == "" {
			missing = append(missing, strconv.Itoa(ps.Index))
		}
	}
	switch {
	case len(missing) == len(st.Partitions):
		st.Status, code = "no write target", http.StatusServiceUnavailable
	case len(missing) > 0:
		st.Status = "degraded: no write target for partition(s) " + strings.Join(missing, ",")
	}
	if len(st.Partitions) == 1 {
		st.WriteTarget = st.Partitions[0].WriteTarget
	}
	if len(rt.readCandidatesIn(rt.snapshotNodes(), nil)) == 0 {
		st.Status, code = "no backends", http.StatusServiceUnavailable
	}
	return st, code
}

// Routes returns the router's HTTP handler: the proxied API surface
// plus its own health and metrics endpoints.
func (rt *Router) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		st, code := rt.statusSnapshot()
		if code != http.StatusOK {
			w.Header().Set("Retry-After", rt.retryAfterHint())
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		st, _ := rt.statusSnapshot()
		writeJSON(w, http.StatusOK, st)
	})
	if rt.reg != nil {
		mux.Handle("GET /metrics", rt.reg.Handler())
	}
	mux.Handle("POST /consume", rt.proxy("/consume", true, true))
	mux.Handle("POST /recommend", rt.proxy("/recommend", false, false))
	mux.Handle("POST /recommend/batch", rt.proxy("/recommend/batch", false, false))
	mux.Handle("POST /recommend/user", rt.proxy("/recommend/user", false, true))
	return mux
}

// retryAfterHint derives the Retry-After the router sends with its own
// 503s: one probe round (rounded up to a whole second) is when its view
// of the fleet can next improve.
func (rt *Router) retryAfterHint() string {
	secs := int(math.Ceil(rt.cfg.ProbeInterval.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// userKey extracts the routing key from a user-keyed request body.
// Partitioned routing cannot proxy what it cannot place, so a missing
// or malformed user id is a 400 — but only partitioned fleets pay the
// parse (P=1 skips it entirely).
func userKey(body []byte) (int, error) {
	var k struct {
		User *int `json:"user"`
	}
	if err := json.Unmarshal(body, &k); err != nil {
		return 0, fmt.Errorf("partitioned routing: parse request body: %w", err)
	}
	if k.User == nil || *k.User < 0 {
		return 0, errors.New(`partitioned routing requires a non-negative "user" field`)
	}
	return *k.User, nil
}

// clientKey identifies the retry-budget principal: the X-RRC-Client
// header when the caller sets one (load-balancer fleets should), else
// the remote address without the ephemeral port.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-RRC-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// parseDeadlineMs parses a DeadlineHeader value; ok is false for a
// missing or malformed header (malformed is ignored, not an error — a
// bad hint must not reject a request the default deadline can serve).
func parseDeadlineMs(raw string) (time.Duration, bool) {
	if raw == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("rrc-router: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
