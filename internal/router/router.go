// Package router implements the stateless epoch-aware front end that
// sits between clients and an rrc-server primary/standby pair. The
// serving layer is stateful (each node owns per-user repeat-consumption
// windows), so which node answers matters: writes must reach the one
// node that can make them durable on the current timeline, and reads
// must come from a node whose window state is fresh enough to rank
// from. The router turns that placement problem into configuration:
//
//   - Topology comes from a static node list or a watched topology
//     file; nodes are added and removed without restarting the router.
//   - Every node is health-probed (GET /readyz + GET /replica/epoch) on
//     an interval. The probe carries the highest epoch the router has
//     seen (X-RRC-Epoch), so a deposed primary fences itself the moment
//     the router looks at it — the existing replication contract, no
//     new protocol.
//   - Writes (/consume) route to the highest-epoch unfenced primary.
//     Reads (/recommend, /recommend/user, /recommend/batch) route to
//     any healthy node whose replication lag is within a configured
//     staleness bound (the same quantity the nodes export as
//     rrc_replica_lag_records).
//   - When no write target survives ProbeFails consecutive probe
//     rounds and AutoPromote is set, the router promotes the best
//     caught-up standby itself (POST /admin/promote) — the same
//     consecutive-failure policy rrc-server's -auto-promote uses.
//   - Requests carry propagated deadlines (X-RRC-Deadline-Ms), bounded
//     retries under a per-client retry budget (a fully down backend
//     can never amplify client traffic beyond the budget), and —
//     optionally — hedged reads for tail latency.
//
// Retry safety: reads are idempotent and retry freely. A write retries
// only when the router can prove the attempt never applied — the
// connection was refused before the request was sent, or the backend
// answered 429/503/412 (all "not durable" by contract). A write that
// failed after the request was sent is answered 502 without a retry:
// the outcome is unknown, and replaying it could double-apply the
// event. Idempotency of ambiguous writes belongs to the caller.
package router

import (
	"encoding/json"
	"errors"
	"log"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tsppr/internal/obs"
)

// DeadlineHeader carries the remaining request deadline in integer
// milliseconds. The router stamps it on every proxied request;
// rrc-server bounds its per-request work by min(header, its own
// -request-timeout), so a deadline set at the edge actually bounds
// backend work instead of evaporating at the first hop.
const DeadlineHeader = "X-RRC-Deadline-Ms"

// Config tunes a Router. Zero fields pick the documented defaults.
type Config struct {
	// Nodes is the static topology: backend base URLs. Ignored when
	// TopologyPath is set.
	Nodes []string
	// TopologyPath names a topology file (one base URL per line, #
	// comments). The router re-reads it whenever its mtime changes, so
	// nodes can be added or replaced without a restart.
	TopologyPath string

	ProbeInterval time.Duration // health-probe period; 0 → 500ms
	ProbeTimeout  time.Duration // per-probe HTTP timeout; 0 → ProbeInterval
	ProbeFails    int           // probe rounds without a write target before failover; 0 → 3

	// AutoPromote lets the router drive failover itself: after
	// ProbeFails rounds with no reachable unfenced primary it POSTs
	// /admin/promote to the best caught-up standby. Off, the router
	// only follows promotions performed elsewhere (operator or the
	// standby's own -auto-promote).
	AutoPromote bool

	// MaxLagRecords bounds read staleness: a follower more than this
	// many records behind its primary stops taking reads until it
	// catches back up. 0 → 1024.
	MaxLagRecords uint64

	Deadline    time.Duration // default client deadline; 0 → 2s
	TryTimeout  time.Duration // per-attempt bound within the deadline; 0 → 1s
	MaxAttempts int           // upstream attempts per request, incl. the first; 0 → 3

	// RetryBudget is the per-client retry allowance: each incoming
	// request earns the client this many retry tokens (capped at
	// RetryBurst), and every retry or hedge spends one. Under a fully
	// down backend a client's upstream attempts are therefore bounded
	// by requests × (1 + RetryBudget) + RetryBurst — no retry storms.
	// 0 → 0.1.
	RetryBudget float64
	// RetryBurst caps banked retry tokens per client. 0 → 10.
	RetryBurst float64
	// RetryBackoff is the pause before re-attempting a write (the
	// write target rarely changes faster than a probe round). 0 → 25ms.
	RetryBackoff time.Duration

	// HedgeDelay, when positive, arms hedged reads: a read that has
	// not answered within this delay fires a second attempt at another
	// eligible node and the first response wins. Hedges spend retry
	// budget, so they cannot storm either. 0 disables hedging.
	HedgeDelay time.Duration

	// Metrics, when non-nil, receives the rrc_router_* families.
	Metrics *obs.Registry
	// Client, when nil, falls back to a default with sane timeouts.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.ProbeFails <= 0 {
		c.ProbeFails = 3
	}
	if c.MaxLagRecords == 0 {
		c.MaxLagRecords = 1024
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.TryTimeout <= 0 {
		c.TryTimeout = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 0.1
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 10
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	return c
}

// Router is the front end. It holds no session state — only the probed
// view of the topology — so any number of routers can run side by side.
type Router struct {
	cfg    Config
	client *http.Client

	mu    sync.Mutex
	nodes []*node // topology order
	byURL map[string]*node
	// noTargetStreak counts consecutive probe rounds that ended with
	// no reachable unfenced primary — the failover trigger.
	noTargetStreak int
	topoStamp      FileStamp // stamp of the last loaded topology file

	budget *retryBudget
	rr     atomic.Uint64 // read candidate rotation

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool // Start ran: done will eventually close
	stop      chan struct{}
	done      chan struct{}

	reg       *obs.Registry
	failovers *obs.Counter
	retries   *obs.Counter
	hedges    *obs.Counter
	shed      *obs.Counter
}

// New builds a Router over cfg. Call Start to run the prober (and the
// topology watcher), Routes for the HTTP handler, Stop to shut down.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:    cfg,
		client: cfg.Client,
		byURL:  map[string]*node{},
		budget: newRetryBudget(cfg.RetryBudget, cfg.RetryBurst),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		reg:    cfg.Metrics,
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: 30 * time.Second}
	}
	rt.initMetrics()

	urls := cfg.Nodes
	if cfg.TopologyPath != "" {
		loaded, stamp, err := LoadTopology(cfg.TopologyPath)
		if err != nil {
			return nil, err
		}
		urls, rt.topoStamp = loaded, stamp
	}
	if len(urls) == 0 {
		return nil, errors.New("router: no backend nodes configured")
	}
	rt.SetNodes(urls)
	return rt, nil
}

// Start probes every node once synchronously (so the router is usable
// the moment it returns) and launches the probe loop. Idempotent.
func (rt *Router) Start() {
	rt.startOnce.Do(func() {
		rt.started.Store(true)
		rt.probeRound()
		go rt.run()
	})
}

// Stop halts the probe loop. Safe to call from multiple goroutines and
// before Start (then it only marks the router stopped — there is no
// loop to wait out, and a later Start exits immediately).
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	if rt.started.Load() {
		<-rt.done
	}
}

func (rt *Router) run() {
	defer close(rt.done)
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
		rt.reloadTopology()
		rt.probeRound()
	}
}

// SetNodes replaces the topology. Known URLs keep their probed state;
// new ones start unprobed; removed ones stop being candidates.
func (rt *Router) SetNodes(urls []string) {
	rt.mu.Lock()
	next := make([]*node, 0, len(urls))
	nextBy := make(map[string]*node, len(urls))
	var added []string
	for _, u := range urls {
		if _, dup := nextBy[u]; dup {
			continue
		}
		n, ok := rt.byURL[u]
		if !ok {
			n = &node{url: u}
			added = append(added, u)
		}
		next = append(next, n)
		nextBy[u] = n
	}
	rt.nodes = next
	rt.byURL = nextBy
	rt.mu.Unlock()

	// Gauge registration takes the registry lock, and the registered
	// closures take rt.mu at scrape time (while the exporter holds the
	// registry lock) — so registering under rt.mu would order the two
	// locks both ways and deadlock against a concurrent /metrics scrape.
	// Register only after releasing rt.mu; the nodes are already
	// published above, so a scrape racing this loop finds them.
	for _, u := range added {
		rt.registerNodeGauges(u)
	}
}

// Nodes returns the current topology order.
func (rt *Router) Nodes() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, len(rt.nodes))
	for i, n := range rt.nodes {
		out[i] = n.url
	}
	return out
}

// snapshotNodes returns the node list under the lock.
func (rt *Router) snapshotNodes() []*node {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*node(nil), rt.nodes...)
}

// maxEpoch is the highest replication epoch the router has observed —
// what it stamps on every outbound request so stale nodes fence.
func (rt *Router) maxEpoch() uint64 {
	var max uint64
	for _, n := range rt.snapshotNodes() {
		if e := n.view().Epoch; e > max {
			max = e
		}
	}
	return max
}

// writeTarget picks the one node writes may go to: reachable, role
// primary, unfenced, highest epoch. Nil when no such node exists —
// writes shed until the prober (or a promotion) restores one.
func (rt *Router) writeTarget() *node {
	var best *node
	var bestEpoch uint64
	for _, n := range rt.snapshotNodes() {
		v := n.view()
		if !v.Reachable || v.Fenced || v.Role != rolePrimary {
			continue
		}
		if best == nil || v.Epoch > bestEpoch {
			best, bestEpoch = n, v.Epoch
		}
	}
	return best
}

// readCandidates lists nodes eligible for reads, rotated for load
// spread, minus exclude. Eligibility degrades gracefully: fully
// healthy in-bound nodes first; if none, any reachable unfenced node
// (probe state may be a round stale); if none, every node — a request
// is cheaper to fail on the wire than to shed on a guess. Fenced nodes
// are never offered: a deposed primary's unshipped tail makes its
// windows divergent, not merely stale.
func (rt *Router) readCandidates(exclude map[*node]bool) []*node {
	nodes := rt.snapshotNodes()
	pick := func(ok func(nodeView) bool) []*node {
		var out []*node
		for _, n := range nodes {
			if exclude[n] {
				continue
			}
			if ok(n.view()) {
				out = append(out, n)
			}
		}
		return out
	}
	out := pick(func(v nodeView) bool {
		if !v.Reachable || v.Fenced || !v.Ready {
			return false
		}
		return v.Role != roleFollower || v.LagRecords <= rt.cfg.MaxLagRecords
	})
	if len(out) == 0 {
		out = pick(func(v nodeView) bool { return v.Reachable && !v.Fenced })
	}
	if len(out) == 0 {
		out = pick(func(v nodeView) bool { return !v.Fenced })
	}
	if len(out) > 1 {
		off := int(rt.rr.Add(1)) % len(out)
		out = append(out[off:], out[:off]...)
	}
	return out
}

// Status is the router's own /readyz and /stats body.
type Status struct {
	Status      string       `json:"status"`
	WriteTarget string       `json:"write_target,omitempty"`
	Epoch       uint64       `json:"epoch"`
	Nodes       []NodeStatus `json:"nodes"`
}

// statusSnapshot assembles the current routed view.
func (rt *Router) statusSnapshot() (Status, int) {
	st := Status{Status: "ready", Epoch: rt.maxEpoch()}
	code := http.StatusOK
	for _, n := range rt.snapshotNodes() {
		st.Nodes = append(st.Nodes, n.status())
	}
	if wt := rt.writeTarget(); wt != nil {
		st.WriteTarget = wt.url
	} else {
		st.Status, code = "no write target", http.StatusServiceUnavailable
	}
	if len(rt.readCandidates(nil)) == 0 {
		st.Status, code = "no backends", http.StatusServiceUnavailable
	}
	return st, code
}

// Routes returns the router's HTTP handler: the proxied API surface
// plus its own health and metrics endpoints.
func (rt *Router) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		st, code := rt.statusSnapshot()
		if code != http.StatusOK {
			w.Header().Set("Retry-After", rt.retryAfterHint())
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		st, _ := rt.statusSnapshot()
		writeJSON(w, http.StatusOK, st)
	})
	if rt.reg != nil {
		mux.Handle("GET /metrics", rt.reg.Handler())
	}
	mux.Handle("POST /consume", rt.proxy("/consume", true))
	mux.Handle("POST /recommend", rt.proxy("/recommend", false))
	mux.Handle("POST /recommend/batch", rt.proxy("/recommend/batch", false))
	mux.Handle("POST /recommend/user", rt.proxy("/recommend/user", false))
	return mux
}

// retryAfterHint derives the Retry-After the router sends with its own
// 503s: one probe round (rounded up to a whole second) is when its view
// of the fleet can next improve.
func (rt *Router) retryAfterHint() string {
	secs := int(math.Ceil(rt.cfg.ProbeInterval.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// clientKey identifies the retry-budget principal: the X-RRC-Client
// header when the caller sets one (load-balancer fleets should), else
// the remote address without the ephemeral port.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-RRC-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// parseDeadlineMs parses a DeadlineHeader value; ok is false for a
// missing or malformed header (malformed is ignored, not an error — a
// bad hint must not reject a request the default deadline can serve).
func parseDeadlineMs(raw string) (time.Duration, bool) {
	if raw == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("rrc-router: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
