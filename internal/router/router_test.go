package router

// White-box suite for the routing core: epoch-based write targeting,
// staleness-bounded reads, the retry-budget amplification bound,
// ambiguous-write safety, deadline propagation, hedging, and
// router-driven promotion — all against scripted fake backends that
// speak just enough of the rrc-server surface (/readyz,
// /replica/epoch, traffic endpoints, /admin/promote).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsppr/internal/obs"
	"tsppr/internal/shard"
)

// fakeNode scripts one backend. Zero value: a ready primary at epoch 0
// answering every endpoint 200.
type fakeNode struct {
	mu       sync.Mutex
	role     string // "" → primary
	epoch    uint64
	fenced   bool
	notReady bool
	lag      uint64
	caughtUp bool

	// partCount >= 1 gives the node a partition identity: /readyz
	// reports it (unless hidePartition) and keyed traffic endpoints
	// refuse non-owned users with 421 + owning-partition hint — the
	// real rrc-server ownership gate.
	partIdx       int
	partCount     int
	hidePartition bool

	consumeStatus   int           // 0 → 200
	consumeMinEpoch uint64        // >0: /consume 412s (body = this epoch) below it
	recommendStatus int           // 0 → 200
	recommendDelay  time.Duration // per-request stall before answering

	consumes   atomic.Int64
	recommends atomic.Int64
	promotes   atomic.Int64

	lastDeadlineMs atomic.Int64 // last X-RRC-Deadline-Ms seen on /consume
	lastEpochHdr   atomic.Int64 // last X-RRC-Epoch seen on /consume (-1 = absent)

	ts *httptest.Server
}

func (f *fakeNode) set(mut func(*fakeNode)) {
	f.mu.Lock()
	mut(f)
	f.mu.Unlock()
}

// refuseForeignKey is the real server's ownership gate: a partitioned
// node 421s keys it does not own, hinting at the owning partition.
func (f *fakeNode) refuseForeignKey(w http.ResponseWriter, r *http.Request) bool {
	f.mu.Lock()
	idx, count := f.partIdx, f.partCount
	f.mu.Unlock()
	if count < 2 {
		return false
	}
	var k struct {
		User int `json:"user"`
	}
	if err := json.NewDecoder(r.Body).Decode(&k); err != nil {
		return false
	}
	owner := shard.UserShard(k.User, count)
	if owner == idx {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusMisdirectedRequest)
	fmt.Fprintf(w, `{"error":"user %d belongs to partition %d","partition":%d,"partitions":%d}`+"\n",
		k.User, owner, owner, count)
	return true
}

func (f *fakeNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		role := f.role
		if role == "" {
			role = rolePrimary
		}
		body := map[string]any{
			"status": "ready",
			"replication": map[string]any{
				"role": role, "epoch": f.epoch, "fenced": f.fenced,
				"lag_records": f.lag, "caught_up": f.caughtUp,
			},
		}
		if f.partCount >= 1 && !f.hidePartition {
			body["partition"] = map[string]any{
				"partition": f.partIdx, "partitions": f.partCount,
			}
		}
		code := http.StatusOK
		if f.notReady || f.fenced {
			body["status"] = "recovering"
			code = http.StatusServiceUnavailable
		}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("GET /replica/epoch", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		own := f.epoch
		code := http.StatusOK
		if raw := r.Header.Get("X-RRC-Epoch"); raw != "" {
			if theirs, err := strconv.ParseUint(raw, 10, 64); err == nil && theirs != own {
				code = http.StatusPreconditionFailed
				if theirs > own {
					f.fenced = true // the real server's SawHigherEpoch path
				}
			}
		}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]any{"epoch": own})
	})
	mux.HandleFunc("POST /consume", func(w http.ResponseWriter, r *http.Request) {
		f.consumes.Add(1)
		if f.refuseForeignKey(w, r) {
			return
		}
		if ms, err := strconv.ParseInt(r.Header.Get(DeadlineHeader), 10, 64); err == nil {
			f.lastDeadlineMs.Store(ms)
		}
		f.lastEpochHdr.Store(-1)
		if e, err := strconv.ParseInt(r.Header.Get("X-RRC-Epoch"), 10, 64); err == nil {
			f.lastEpochHdr.Store(e)
		}
		f.mu.Lock()
		status := f.consumeStatus
		minEpoch := f.consumeMinEpoch
		f.mu.Unlock()
		if minEpoch > 0 {
			theirs, _ := strconv.ParseUint(r.Header.Get("X-RRC-Epoch"), 10, 64)
			if theirs < minEpoch {
				// The real fenced-ingest 412: an ErrorBody carrying the
				// node's true epoch.
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusPreconditionFailed)
				fmt.Fprintf(w, `{"error":"fenced","epoch":%d}`+"\n", minEpoch)
				return
			}
		}
		if status != 0 {
			if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			http.Error(w, "scripted failure", status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"lsn":1,"window":1}`)
	})
	serveRead := func(w http.ResponseWriter, _ *http.Request) {
		f.recommends.Add(1)
		f.mu.Lock()
		status, delay := f.recommendStatus, f.recommendDelay
		f.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		if status != 0 {
			http.Error(w, "scripted failure", status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"items":[1],"scores":[0.5]}`)
	}
	mux.HandleFunc("POST /recommend", serveRead)
	mux.HandleFunc("POST /recommend/batch", serveRead)
	mux.HandleFunc("POST /recommend/user", func(w http.ResponseWriter, r *http.Request) {
		if f.refuseForeignKey(w, r) {
			return
		}
		serveRead(w, r)
	})
	mux.HandleFunc("POST /admin/promote", func(w http.ResponseWriter, _ *http.Request) {
		f.promotes.Add(1)
		f.mu.Lock()
		f.role = rolePrimary
		f.epoch++
		f.fenced = false
		e := f.epoch
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"epoch":%d,"role":"primary"}`+"\n", e)
	})
	return mux
}

// startFakes boots the fakes and a router over them with fast probe
// settings; mutate tweaks the config before New.
func startFakes(t *testing.T, fakes []*fakeNode, mutate func(*Config)) *Router {
	t.Helper()
	urls := make([]string, len(fakes))
	for i, f := range fakes {
		f.ts = httptest.NewServer(f.handler())
		t.Cleanup(f.ts.Close)
		urls[i] = f.ts.URL
	}
	cfg := Config{
		Nodes:         urls,
		ProbeInterval: 10 * time.Millisecond,
		ProbeFails:    2,
		RetryBackoff:  time.Millisecond,
		Metrics:       obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func post(h http.Handler, path, body string, headers map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestRouterWritesFollowHighestEpoch(t *testing.T) {
	old := &fakeNode{epoch: 1}
	neu := &fakeNode{epoch: 2}
	rt := startFakes(t, []*fakeNode{old, neu}, nil)
	h := rt.Routes()

	rr := post(h, "/consume", `{"user":0,"item":1}`, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("consume status %d: %s", rr.Code, rr.Body.String())
	}
	if neu.consumes.Load() == 0 || old.consumes.Load() != 0 {
		t.Fatalf("write went to epoch-1 node (old=%d new=%d)", old.consumes.Load(), neu.consumes.Load())
	}
	// The write carried the fleet max epoch — the fencing stamp.
	if got := neu.lastEpochHdr.Load(); got != 2 {
		t.Fatalf("X-RRC-Epoch on write = %d, want 2", got)
	}
	// And the probe loop fences the stale node via the same contract.
	waitFor(t, "old primary fenced by probe", func() bool {
		old.mu.Lock()
		defer old.mu.Unlock()
		return old.fenced
	})
}

func TestRouterReadsSkipLaggyFollower(t *testing.T) {
	primary := &fakeNode{caughtUp: true}
	laggy := &fakeNode{role: roleFollower, lag: 5000}
	rt := startFakes(t, []*fakeNode{primary, laggy}, func(c *Config) { c.MaxLagRecords = 100 })
	h := rt.Routes()

	for i := 0; i < 8; i++ {
		rr := post(h, "/recommend/user", `{"user":0,"n":3}`, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("read %d status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	if laggy.recommends.Load() != 0 {
		t.Fatalf("%d reads reached a follower lagging past the staleness bound", laggy.recommends.Load())
	}
	if primary.recommends.Load() != 8 {
		t.Fatalf("primary served %d of 8 reads", primary.recommends.Load())
	}
}

func TestRouterReadFailsOverAcrossNodes(t *testing.T) {
	bad := &fakeNode{recommendStatus: http.StatusInternalServerError}
	good := &fakeNode{role: roleFollower, caughtUp: true}
	rt := startFakes(t, []*fakeNode{bad, good}, func(c *Config) {
		c.RetryBudget = 1 // every request may fund its own failover retry
	})
	h := rt.Routes()

	ok := 0
	for i := 0; i < 8; i++ {
		if rr := post(h, "/recommend", `{"user":0,"history":[1],"n":1}`, nil); rr.Code == http.StatusOK {
			ok++
		}
	}
	if ok != 8 {
		t.Fatalf("only %d/8 reads succeeded with a healthy follower available", ok)
	}
	if good.recommends.Load() < 8 {
		t.Fatalf("healthy node served %d reads, want >= 8", good.recommends.Load())
	}
}

func TestRouterRetryBudgetBoundsAmplification(t *testing.T) {
	const requests, ratio, burst = 100, 0.1, 2.0
	down := &fakeNode{consumeStatus: http.StatusServiceUnavailable}
	rt := startFakes(t, []*fakeNode{down}, func(c *Config) {
		c.RetryBudget = ratio
		c.RetryBurst = burst
		c.MaxAttempts = 50 // far above the budget: the budget must bind
		c.Deadline = 5 * time.Second
	})
	h := rt.Routes()

	hdr := map[string]string{"X-RRC-Client": "loadgen"}
	for i := 0; i < requests; i++ {
		rr := post(h, "/consume", `{"user":0,"item":1}`, hdr)
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, rr.Code)
		}
		if rr.Result().Header.Get("Retry-After") == "" {
			t.Fatalf("request %d: 503 without Retry-After", i)
		}
	}
	attempts := down.consumes.Load()
	bound := int64(requests*(1+ratio) + burst)
	if attempts > bound {
		t.Fatalf("amplification: %d upstream attempts for %d requests (budget bound %d)", attempts, requests, bound)
	}
	if attempts < requests {
		t.Fatalf("only %d attempts for %d requests — requests not reaching the backend", attempts, requests)
	}
}

func TestRouterShedsWhenBackendDead(t *testing.T) {
	dead := &fakeNode{}
	rt := startFakes(t, []*fakeNode{dead}, func(c *Config) {
		c.Deadline = 300 * time.Millisecond
	})
	h := rt.Routes()
	dead.ts.Close() // SIGKILL-shaped: connections refused from here on

	rr := post(h, "/consume", `{"user":0,"item":1}`, nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed", rr.Code)
	}
	if rr.Result().Header.Get("Retry-After") == "" {
		t.Fatal("local shed without Retry-After")
	}
	if rt.shed.Value() == 0 {
		t.Fatal("rrc_router_shed_total not incremented")
	}
}

func TestRouterAmbiguousWriteNotRetried(t *testing.T) {
	// A backend that accepts the request and then kills the connection:
	// the canonical ambiguous outcome. The router must answer 502 after
	// exactly one attempt — a retry could double-apply the event.
	var hits atomic.Int64
	mux := http.NewServeMux()
	ambiguous := &fakeNode{}
	base := ambiguous.handler()
	mux.HandleFunc("POST /consume", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("recorder cannot hijack")
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	})
	mux.Handle("/", base)
	ambiguous.ts = httptest.NewServer(mux)
	t.Cleanup(ambiguous.ts.Close)

	rt, err := New(Config{
		Nodes:         []string{ambiguous.ts.URL},
		ProbeInterval: 10 * time.Millisecond,
		RetryBackoff:  time.Millisecond,
		Metrics:       obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)

	rr := post(rt.Routes(), "/consume", `{"user":0,"item":1}`, nil)
	if rr.Code != http.StatusBadGateway {
		t.Fatalf("ambiguous write answered %d, want 502: %s", rr.Code, rr.Body.String())
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("ambiguous write attempted %d times, want exactly 1", got)
	}
}

func TestRouterPropagatesDeadlineHeader(t *testing.T) {
	n := &fakeNode{}
	rt := startFakes(t, []*fakeNode{n}, func(c *Config) {
		c.Deadline = 2 * time.Second
		c.TryTimeout = 2 * time.Second
	})
	h := rt.Routes()

	// Client supplies 250ms: the upstream header must carry the (lower)
	// remaining budget, never the router default.
	rr := post(h, "/consume", `{"user":0,"item":1}`, map[string]string{DeadlineHeader: "250"})
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	ms := n.lastDeadlineMs.Load()
	if ms <= 0 || ms > 250 {
		t.Fatalf("propagated deadline %dms, want in (0,250]", ms)
	}
}

func TestRouterHedgesSlowReads(t *testing.T) {
	slow := &fakeNode{recommendDelay: 200 * time.Millisecond}
	fast := &fakeNode{role: roleFollower, caughtUp: true}
	rt := startFakes(t, []*fakeNode{slow, fast}, func(c *Config) {
		c.HedgeDelay = 20 * time.Millisecond
		c.Deadline = 2 * time.Second
		c.RetryBurst = 10 // plenty of hedge budget
		c.RetryBudget = 1
	})
	h := rt.Routes()

	// Warm the budget (hedges spend tokens).
	for i := 0; i < 10; i++ {
		post(h, "/recommend", `{"user":0,"history":[1],"n":1}`, nil)
	}
	slowServed := slow.recommends.Load()
	fastServed := fast.recommends.Load()
	if fastServed == 0 {
		t.Fatalf("hedging never engaged (slow=%d fast=%d)", slowServed, fastServed)
	}
	if rt.hedges.Value() == 0 {
		t.Fatal("rrc_router_hedges_total not incremented")
	}
}

func TestRouterAutoPromotesOnPrimaryLoss(t *testing.T) {
	primary := &fakeNode{caughtUp: true}
	standby := &fakeNode{role: roleFollower, caughtUp: true}
	rt := startFakes(t, []*fakeNode{primary, standby}, func(c *Config) {
		c.AutoPromote = true
	})
	h := rt.Routes()

	// Sanity: writes land on the primary first.
	if rr := post(h, "/consume", `{"user":0,"item":1}`, nil); rr.Code != http.StatusOK {
		t.Fatalf("pre-kill consume status %d", rr.Code)
	}

	primary.ts.Close()
	waitFor(t, "router-driven promotion", func() bool { return standby.promotes.Load() > 0 })
	waitFor(t, "writes landing on promoted node", func() bool {
		rr := post(h, "/consume", `{"user":0,"item":1}`, nil)
		return rr.Code == http.StatusOK && standby.consumes.Load() > 0
	})
	if rt.failovers.Value() == 0 {
		t.Fatal("rrc_router_failovers_total not incremented")
	}
}

func TestRouterWriteFoldsFenceEpoch(t *testing.T) {
	// The node's ingest path demands epoch 7 while its probed view says
	// 2: the first write 412s, and the router must fold the fence
	// body's epoch into its view so the retry stamps the fresher epoch
	// — not deterministically re-fail until the next probe round.
	n := &fakeNode{epoch: 2, caughtUp: true, consumeMinEpoch: 7}
	rt := startFakes(t, []*fakeNode{n}, func(c *Config) {
		c.ProbeInterval = time.Hour // only the fence fold can refresh the epoch
		c.RetryBudget = 1
	})

	rr := post(rt.Routes(), "/consume", `{"user":0,"item":1}`, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if got := n.consumes.Load(); got != 2 {
		t.Fatalf("%d consume attempts, want 2 (412 fence, then success)", got)
	}
	if got := n.lastEpochHdr.Load(); got != 7 {
		t.Fatalf("retry stamped epoch %d, want the fence body's 7", got)
	}
}

func TestRouterTopologyChangeDoesNotDeadlockScrape(t *testing.T) {
	// Regression: SetNodes used to register per-node gauges while
	// holding rt.mu, while a /metrics scrape holds the registry lock
	// and calls gauge closures that take rt.mu — an AB-BA deadlock when
	// a topology change that adds a node races a scrape. Hammer both
	// sides concurrently; a regression hangs the test.
	n := &fakeNode{caughtUp: true}
	rt := startFakes(t, []*fakeNode{n}, nil)
	h := rt.Routes()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			rt.SetNodes([]string{n.ts.URL, fmt.Sprintf("http://added-%d.invalid:1", i)})
		}
	}()
	for {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("/metrics status %d", rr.Code)
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestRouterStopIsSafeWhenMisused(t *testing.T) {
	n := &fakeNode{caughtUp: true}
	n.ts = httptest.NewServer(n.handler())
	t.Cleanup(n.ts.Close)

	// Stop before Start must return immediately, not wait on a probe
	// loop that never ran.
	never, err := New(Config{Nodes: []string{n.ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	never.Stop()

	// Concurrent Stops must not double-close (panic).
	rt, err := New(Config{Nodes: []string{n.ts.URL}, ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Stop()
		}()
	}
	wg.Wait()
}

func TestRouterOwnEndpoints(t *testing.T) {
	n := &fakeNode{caughtUp: true}
	rt := startFakes(t, []*fakeNode{n}, nil)
	h := rt.Routes()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/readyz status %d: %s", rr.Code, rr.Body.String())
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.WriteTarget != n.ts.URL || len(st.Nodes) != 1 {
		t.Fatalf("readyz body %+v", st)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	body := rr.Body.String()
	for _, family := range []string{"rrc_router_node_state", "rrc_router_node_epoch", "rrc_router_requests_total"} {
		if !strings.Contains(body, family) {
			t.Fatalf("/metrics missing %s family", family)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}

	// Kill the only backend: /readyz flips to 503 with Retry-After.
	n.ts.Close()
	waitFor(t, "router readyz 503", func() bool {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return rr.Code == http.StatusServiceUnavailable && rr.Result().Header.Get("Retry-After") != ""
	})
}
