package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"tsppr/internal/seq"
)

func sample() *Dataset {
	return New("sample", []seq.Sequence{
		{0, 1, 2, 0, 1},
		{5, 5, 5},
		{},
	})
}

func TestStats(t *testing.T) {
	st := sample().Stats()
	if st.Users != 3 {
		t.Errorf("Users = %d", st.Users)
	}
	if st.Items != 4 { // {0,1,2,5}
		t.Errorf("Items = %d", st.Items)
	}
	if st.Consumptions != 8 {
		t.Errorf("Consumptions = %d", st.Consumptions)
	}
	if st.MinSeqLen != 0 || st.MaxSeqLen != 5 {
		t.Errorf("seq len range = [%d,%d]", st.MinSeqLen, st.MaxSeqLen)
	}
	if st.MeanSeqLen != 8.0/3 {
		t.Errorf("MeanSeqLen = %v", st.MeanSeqLen)
	}
	if !strings.Contains(st.String(), "users=3") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestNumItems(t *testing.T) {
	if got := sample().NumItems(); got != 6 { // max id 5 → 6
		t.Errorf("NumItems = %d", got)
	}
	if got := New("empty", nil).NumItems(); got != 0 {
		t.Errorf("empty NumItems = %d", got)
	}
}

func TestFilterMinTrain(t *testing.T) {
	ds := New("f", []seq.Sequence{
		make(seq.Sequence, 200), // 200·0.7 = 140 ≥ 100 → kept
		make(seq.Sequence, 100), // 70 < 100 → dropped
		make(seq.Sequence, 143), // 100 ≥ 100 → kept (boundary)
		make(seq.Sequence, 142), // 99 < 100 → dropped
	})
	got := ds.FilterMinTrain(0.7, 100)
	if got.NumUsers() != 2 {
		t.Fatalf("kept %d users, want 2", got.NumUsers())
	}
	if len(got.Seqs[0]) != 200 || len(got.Seqs[1]) != 143 {
		t.Fatal("wrong users kept")
	}
}

func TestSplit(t *testing.T) {
	ds := New("s", []seq.Sequence{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}})
	train, test := ds.Split(0.7)
	if len(train[0]) != 7 || len(test[0]) != 3 {
		t.Fatalf("split = %d/%d", len(train[0]), len(test[0]))
	}
}

func TestCompact(t *testing.T) {
	ds := New("c", []seq.Sequence{{100, 7, 100}, {7, 42}})
	out, n := ds.Compact()
	if n != 3 {
		t.Fatalf("distinct = %d", n)
	}
	// First-appearance order: 100→0, 7→1, 42→2.
	want := []seq.Sequence{{0, 1, 0}, {1, 2}}
	for u := range want {
		for i := range want[u] {
			if out.Seqs[u][i] != want[u][i] {
				t.Fatalf("compact user %d = %v, want %v", u, out.Seqs[u], want[u])
			}
		}
	}
	// Original untouched.
	if ds.Seqs[0][0] != 100 {
		t.Fatal("Compact mutated the input")
	}
}

func TestRoundTrip(t *testing.T) {
	ds := New("round-trip", []seq.Sequence{{3, 1, 4, 1, 5}, {9, 2, 6}})
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "round-trip" {
		t.Errorf("name = %q", got.Name)
	}
	if got.NumUsers() != 2 {
		t.Fatalf("users = %d", got.NumUsers())
	}
	for u := range ds.Seqs {
		if len(got.Seqs[u]) != len(ds.Seqs[u]) {
			t.Fatalf("user %d length mismatch", u)
		}
		for i := range ds.Seqs[u] {
			if got.Seqs[u][i] != ds.Seqs[u][i] {
				t.Fatalf("user %d event %d mismatch", u, i)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1 2\n",            // no tab
		"x\t2\n",           // bad user
		"1\ty\n",           // bad item
		"-1\t2\n",          // negative user
		"1\t-2\n",          // negative item
		"1\t2\textra37c\n", // garbage third column fails item parse
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n0\t7\n# another\n0\t8\n"
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 1 || len(ds.Seqs[0]) != 2 {
		t.Fatalf("parsed %+v", ds)
	}
}

func TestReadNonContiguousUsers(t *testing.T) {
	// User IDs 5 and 2: order in Seqs must be sorted by original id.
	in := "5\t1\n2\t9\n5\t3\n"
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 2 {
		t.Fatalf("users = %d", ds.NumUsers())
	}
	if ds.Seqs[0][0] != 9 { // user 2 first
		t.Fatal("user order not sorted by id")
	}
	if len(ds.Seqs[1]) != 2 || ds.Seqs[1][1] != 3 {
		t.Fatal("user 5 events wrong")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.tsv")
	ds := New("file-test", []seq.Sequence{{1, 2, 3}})
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "file-test" || got.NumUsers() != 1 || len(got.Seqs[0]) != 3 {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.tsv")); err == nil {
		t.Fatal("loading missing file should fail")
	}
}

// TestReadNeverPanics feeds arbitrary text to the parser.
func TestReadNeverPanics(t *testing.T) {
	f := func(blob []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Read panicked: %v", r)
			}
		}()
		_, _ = Read(bytes.NewReader(blob))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripProperty: any dataset with small non-negative item ids
// survives Write→Read byte-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw [][]uint8) bool {
		seqs := make([]seq.Sequence, len(raw))
		for u, events := range raw {
			s := make(seq.Sequence, len(events))
			for i, e := range events {
				s[i] = seq.Item(e)
			}
			seqs[u] = s
		}
		ds := New("prop", seqs)
		var buf bytes.Buffer
		if err := ds.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		// Users with zero events vanish in the event-log format; compare
		// only non-empty sequences, in order.
		var nonEmpty []seq.Sequence
		for _, s := range seqs {
			if len(s) > 0 {
				nonEmpty = append(nonEmpty, s)
			}
		}
		if got.NumUsers() != len(nonEmpty) {
			return false
		}
		for u := range nonEmpty {
			if len(got.Seqs[u]) != len(nonEmpty[u]) {
				return false
			}
			for i := range nonEmpty[u] {
				if got.Seqs[u][i] != nonEmpty[u][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
