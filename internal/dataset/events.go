package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tsppr/internal/seq"
)

// Event is one timestamped consumption record as found in raw logs
// (Gowalla check-in dumps, Last.fm listening histories).
type Event struct {
	User int
	Time int64 // any monotone clock: unix seconds, millis, a counter
	Item int
}

// EventReaderOptions configures ReadEvents for the wild variety of raw
// log layouts.
type EventReaderOptions struct {
	// Comma is the field separator (default '\t').
	Comma rune
	// UserCol, TimeCol, ItemCol are 0-based column indices
	// (defaults 0, 1, 2 — e.g. the Gowalla dump is user, check-in time,
	// lat, lng, location: UserCol 0, TimeCol 1, ItemCol 4).
	UserCol, TimeCol, ItemCol int
	// ParseTime converts the raw time field to a sortable integer. The
	// default parses a plain integer. For RFC3339-style stamps supply a
	// custom parser.
	ParseTime func(string) (int64, error)
	// SkipHeader drops the first non-comment line.
	SkipHeader bool
	// OnBadLine, when non-nil, is called for each unparseable line instead
	// of aborting; return an error to abort anyway.
	OnBadLine func(line int, text string, err error) error
}

func (o EventReaderOptions) withDefaults() EventReaderOptions {
	if o.Comma == 0 {
		o.Comma = '\t'
	}
	if o.TimeCol == 0 && o.ItemCol == 0 && o.UserCol == 0 {
		o.TimeCol, o.ItemCol = 1, 2
	}
	if o.ParseTime == nil {
		o.ParseTime = func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
	}
	return o
}

// ReadEvents parses a raw (user, time, item) log — rows in any order —
// into a Dataset: events are grouped by user and sorted by time (stable,
// so equal stamps keep file order), then user and item IDs are remapped to
// dense non-negative integers in first-appearance order.
//
// It returns the dataset plus the original-ID mappings, so predictions can
// be translated back to the source universe.
func ReadEvents(r io.Reader, opt EventReaderOptions) (*Dataset, *IDMaps, error) {
	opt = opt.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var events []Event
	userIDs := newIDMap()
	itemIDs := newIDMap()
	line := 0
	skippedHeader := false
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if opt.SkipHeader && !skippedHeader {
			skippedHeader = true
			continue
		}
		fields := strings.Split(text, string(opt.Comma))
		ev, err := parseEvent(fields, opt)
		if err != nil {
			if opt.OnBadLine != nil {
				if cbErr := opt.OnBadLine(line, text, err); cbErr != nil {
					return nil, nil, cbErr
				}
				continue
			}
			return nil, nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		ev.User = userIDs.lookup(fields[opt.UserCol])
		ev.Item = itemIDs.lookup(fields[opt.ItemCol])
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dataset: scan: %w", err)
	}

	// Stable time sort per user: sort globally by (user, time) with the
	// original index as the final tiebreak to keep file order stable.
	type indexed struct {
		Event
		pos int
	}
	idx := make([]indexed, len(events))
	for i, ev := range events {
		idx[i] = indexed{ev, i}
	}
	sort.Slice(idx, func(i, j int) bool {
		if idx[i].User != idx[j].User {
			return idx[i].User < idx[j].User
		}
		if idx[i].Time != idx[j].Time {
			return idx[i].Time < idx[j].Time
		}
		return idx[i].pos < idx[j].pos
	})

	ds := &Dataset{Name: "events"}
	ds.Seqs = make([]seq.Sequence, userIDs.n)
	for _, ev := range idx {
		ds.Seqs[ev.User] = append(ds.Seqs[ev.User], seq.Item(ev.Item))
	}
	return ds, &IDMaps{Users: userIDs.names, Items: itemIDs.names}, nil
}

func parseEvent(fields []string, opt EventReaderOptions) (Event, error) {
	max := opt.UserCol
	if opt.TimeCol > max {
		max = opt.TimeCol
	}
	if opt.ItemCol > max {
		max = opt.ItemCol
	}
	if len(fields) <= max {
		return Event{}, fmt.Errorf("want ≥%d columns, got %d", max+1, len(fields))
	}
	t, err := opt.ParseTime(strings.TrimSpace(fields[opt.TimeCol]))
	if err != nil {
		return Event{}, fmt.Errorf("bad time %q: %w", fields[opt.TimeCol], err)
	}
	return Event{Time: t}, nil
}

// IDMaps records the original string IDs per dense index.
type IDMaps struct {
	Users []string // dense user id → original user field
	Items []string // dense item id → original item field
}

// idMap interns strings to dense indices in first-appearance order.
type idMap struct {
	byName map[string]int
	names  []string
	n      int
}

func newIDMap() *idMap { return &idMap{byName: make(map[string]int)} }

func (m *idMap) lookup(name string) int {
	name = strings.TrimSpace(name)
	if id, ok := m.byName[name]; ok {
		return id
	}
	id := m.n
	m.n++
	m.byName[name] = id
	m.names = append(m.names, name)
	return id
}
