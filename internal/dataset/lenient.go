package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"tsppr/internal/faultinject"
	"tsppr/internal/seq"
)

// ReadOptions selects how strictly ReadWith treats a TSV event log.
//
// The zero value is the strict mode Read uses: the first malformed line
// aborts the load. Lenient mode is for real-world dumps (check-in logs,
// listening histories) where a fraction of lines is garbage: bad lines
// are counted, optionally copied to a quarantine writer, and the load
// fails only when the error budget is exhausted.
type ReadOptions struct {
	// Lenient skips malformed lines instead of aborting on the first one.
	Lenient bool
	// MaxBadLines is the lenient-mode error budget: once more than this
	// many lines are malformed the load aborts, on the theory that the
	// file is the wrong format rather than merely dirty. 0 means
	// unlimited.
	MaxBadLines int
	// Quarantine, when non-nil, receives every malformed line (prefixed
	// by a "# line N: cause" comment) so the raw bytes can be inspected
	// or repaired. A quarantine write error aborts the load.
	Quarantine io.Writer
}

// LineError records one malformed input line.
type LineError struct {
	Line int    // 1-based physical line number
	Text string // raw line content
	Err  error  // what was wrong with it
}

func (e LineError) String() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }

// maxBadSamples bounds how many malformed lines ReadReport retains
// verbatim; the counts cover the rest.
const maxBadSamples = 8

// ReadReport is the line-level diagnostic summary of one load.
type ReadReport struct {
	Lines       int // physical lines scanned
	Events      int // events accepted into the dataset
	BadLines    int // malformed lines (skipped in lenient mode)
	Quarantined int // bad lines copied to the quarantine writer
	OutOfOrder  int // events that reopened an earlier user's block
	Duplicates  int // lines identical to their predecessor (legal repeats, but worth eyeballing)

	// FirstBad holds the first few malformed lines verbatim.
	FirstBad []LineError
}

// String renders the report as a one-line summary.
func (r *ReadReport) String() string {
	return fmt.Sprintf("lines=%d events=%d bad=%d quarantined=%d out-of-order=%d duplicates=%d",
		r.Lines, r.Events, r.BadLines, r.Quarantined, r.OutOfOrder, r.Duplicates)
}

// parseSeqLine parses one "user<TAB>item" line. Errors carry no position;
// callers add it.
func parseSeqLine(text string) (u, it int, err error) {
	col := strings.IndexByte(text, '\t')
	if col < 0 {
		return 0, 0, fmt.Errorf("missing tab separator")
	}
	u, err = strconv.Atoi(text[:col])
	if err != nil {
		return 0, 0, fmt.Errorf("bad user id: %w", err)
	}
	it, err = strconv.Atoi(text[col+1:])
	if err != nil {
		return 0, 0, fmt.Errorf("bad item id: %w", err)
	}
	if u < 0 || it < 0 {
		return 0, 0, fmt.Errorf("negative id")
	}
	return u, it, nil
}

// ReadWith parses a TSV event log under the given strictness. It always
// returns the diagnostic report, even alongside an error, so callers can
// say how far a failed load got. The per-line path passes through the
// "dataset.read.line" fault-injection point (an injected error is an I/O
// failure, not a bad line: it aborts regardless of leniency).
func ReadWith(r io.Reader, opt ReadOptions) (*Dataset, *ReadReport, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rep := &ReadReport{}
	name := "unnamed"
	byUser := make(map[int]seq.Sequence)
	lastUser := -1
	prevText := ""
	havePrev := false
	for sc.Scan() {
		rep.Lines++
		if err := faultinject.Do("dataset.read.line"); err != nil {
			return nil, rep, fmt.Errorf("dataset: line %d: read: %w", rep.Lines, err)
		}
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# dataset\t"); ok {
				name = rest
			}
			continue
		}
		if havePrev && text == prevText {
			rep.Duplicates++
		}
		prevText, havePrev = text, true
		u, it, err := parseSeqLine(text)
		if err != nil {
			rep.BadLines++
			if len(rep.FirstBad) < maxBadSamples {
				rep.FirstBad = append(rep.FirstBad, LineError{Line: rep.Lines, Text: text, Err: err})
			}
			if !opt.Lenient {
				return nil, rep, fmt.Errorf("dataset: line %d: %w", rep.Lines, err)
			}
			if opt.Quarantine != nil {
				if _, qerr := fmt.Fprintf(opt.Quarantine, "# line %d: %v\n%s\n", rep.Lines, err, text); qerr != nil {
					return nil, rep, fmt.Errorf("dataset: quarantine: %w", qerr)
				}
				rep.Quarantined++
			}
			if opt.MaxBadLines > 0 && rep.BadLines > opt.MaxBadLines {
				return nil, rep, fmt.Errorf("dataset: %d bad lines exceed the %d-line budget (first: %s)",
					rep.BadLines, opt.MaxBadLines, rep.FirstBad[0])
			}
			continue
		}
		if u != lastUser && len(byUser[u]) > 0 {
			rep.OutOfOrder++
		}
		lastUser = u
		byUser[u] = append(byUser[u], seq.Item(it))
		rep.Events++
	}
	if err := sc.Err(); err != nil {
		return nil, rep, fmt.Errorf("dataset: scan: %w", err)
	}
	users := make([]int, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Ints(users)
	seqs := make([]seq.Sequence, len(users))
	for i, u := range users {
		seqs[i] = byUser[u]
	}
	return &Dataset{Name: name, Seqs: seqs}, rep, nil
}

// QuarantinePath is where LoadFileWith writes the quarantine sidecar for
// a given dataset path.
func QuarantinePath(path string) string { return path + ".quarantine" }

// lazyFile creates its file on the first write, so clean loads leave no
// empty sidecar behind.
type lazyFile struct {
	path string
	f    *os.File
}

func (lf *lazyFile) Write(b []byte) (int, error) {
	if lf.f == nil {
		f, err := os.Create(lf.path)
		if err != nil {
			return 0, err
		}
		lf.f = f
	}
	return lf.f.Write(b)
}

func (lf *lazyFile) Close() error {
	if lf.f == nil {
		return nil
	}
	return lf.f.Close()
}

// LoadFileWith reads a dataset from path under the given options. In
// lenient mode with no explicit Quarantine writer, malformed lines go to
// the QuarantinePath sidecar next to the input (created only if needed; a
// stale sidecar from a previous load is removed first).
func LoadFileWith(path string, opt ReadOptions) (*Dataset, *ReadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	var sidecar *lazyFile
	if opt.Lenient && opt.Quarantine == nil {
		_ = os.Remove(QuarantinePath(path))
		sidecar = &lazyFile{path: QuarantinePath(path)}
		opt.Quarantine = sidecar
	}
	ds, rep, err := ReadWith(f, opt)
	if sidecar != nil {
		if cerr := sidecar.Close(); cerr != nil && err == nil {
			return nil, rep, fmt.Errorf("dataset: quarantine: %w", cerr)
		}
	}
	return ds, rep, err
}
