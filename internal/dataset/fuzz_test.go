package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the TSV parser with arbitrary input. Under plain
// `go test` only the seed corpus runs; `go test -fuzz=FuzzRead` explores.
func FuzzRead(f *testing.F) {
	f.Add([]byte("0\t1\n0\t2\n1\t1\n"))
	f.Add([]byte("# dataset\tname\n0\t1\n"))
	f.Add([]byte(""))
	f.Add([]byte("not a dataset"))
	f.Add([]byte("0\t-1\n"))
	f.Add([]byte("999999999999999999999999\t1\n"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		ds, err := Read(bytes.NewReader(blob))
		if err != nil {
			return
		}
		// Anything accepted must satisfy basic invariants.
		for u, s := range ds.Seqs {
			for i, v := range s {
				if v < 0 {
					t.Fatalf("negative item %d at user %d pos %d", v, u, i)
				}
			}
		}
		// And round-trip through Write.
		var buf bytes.Buffer
		if err := ds.Write(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
	})
}

// FuzzReadEvents exercises the raw event-log parser.
func FuzzReadEvents(f *testing.F) {
	f.Add([]byte("u\t1\tx\nu\t2\ty\n"))
	f.Add([]byte("a\tnot-a-time\tz\n"))
	f.Add([]byte("short\n"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		ds, ids, err := ReadEvents(bytes.NewReader(blob), EventReaderOptions{
			OnBadLine: func(int, string, error) error { return nil },
		})
		if err != nil {
			return
		}
		if ds.NumUsers() != len(ids.Users) {
			t.Fatalf("user count %d != id map %d", ds.NumUsers(), len(ids.Users))
		}
		total := 0
		for _, s := range ds.Seqs {
			total += len(s)
			for _, v := range s {
				if int(v) >= len(ids.Items) {
					t.Fatalf("item %d beyond id map %d", v, len(ids.Items))
				}
			}
		}
		// Event count can never exceed input line count.
		if total > strings.Count(string(blob), "\n")+1 {
			t.Fatalf("more events (%d) than lines", total)
		}
	})
}
