package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the TSV parser with arbitrary input. Under plain
// `go test` only the seed corpus runs; `go test -fuzz=FuzzRead` explores.
func FuzzRead(f *testing.F) {
	f.Add([]byte("0\t1\n0\t2\n1\t1\n"))
	f.Add([]byte("# dataset\tname\n0\t1\n"))
	f.Add([]byte(""))
	f.Add([]byte("not a dataset"))
	f.Add([]byte("0\t-1\n"))
	f.Add([]byte("999999999999999999999999\t1\n"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		ds, err := Read(bytes.NewReader(blob))
		if err != nil {
			return
		}
		// Anything accepted must satisfy basic invariants.
		for u, s := range ds.Seqs {
			for i, v := range s {
				if v < 0 {
					t.Fatalf("negative item %d at user %d pos %d", v, u, i)
				}
			}
		}
		// And round-trip through Write.
		var buf bytes.Buffer
		if err := ds.Write(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
	})
}

// FuzzReadWith exercises the lenient TSV reader: truncated lines, huge
// ids, non-UTF8 bytes and negative ids must never crash it, and with an
// unlimited budget it must accept anything the scanner can tokenize.
func FuzzReadWith(f *testing.F) {
	f.Add([]byte("0\t1\n0\t2\n1\t1\n"))
	f.Add([]byte("0\t"))                                     // truncated line
	f.Add([]byte("\t1\n0"))                                  // truncated both ways
	f.Add([]byte("99999999999999999999999999\t1\n"))         // huge id
	f.Add([]byte{0xff, 0xfe, '\t', 0x80, '\n', '0', '\t'})   // non-UTF8 bytes
	f.Add([]byte("-1\t2\n2\t-1\n"))                          // negative ids
	f.Add([]byte("# dataset\tname\n5\t5\n5\t5\n1\t1\n5\t6")) // dup + out-of-order
	f.Fuzz(func(t *testing.T, blob []byte) {
		var quarantine bytes.Buffer
		ds, rep, err := ReadWith(bytes.NewReader(blob), ReadOptions{Lenient: true, Quarantine: &quarantine})
		if err != nil {
			// Only tokenizer-level failures (e.g. over-long lines) may
			// surface in lenient mode with an unlimited budget.
			if !strings.Contains(err.Error(), "scan") {
				t.Fatalf("lenient read failed on a line-level error: %v", err)
			}
			return
		}
		if rep.Events+rep.BadLines > rep.Lines {
			t.Fatalf("report inconsistent: %s", rep)
		}
		if rep.Quarantined != rep.BadLines {
			t.Fatalf("quarantined %d of %d bad lines", rep.Quarantined, rep.BadLines)
		}
		total := 0
		for u, s := range ds.Seqs {
			total += len(s)
			for i, v := range s {
				if v < 0 {
					t.Fatalf("negative item %d at user %d pos %d", v, u, i)
				}
			}
		}
		if total != rep.Events {
			t.Fatalf("dataset has %d events, report says %d", total, rep.Events)
		}
		// Strict acceptance implies lenient acceptance with a clean report.
		if _, serr := Read(bytes.NewReader(blob)); serr == nil && rep.BadLines != 0 {
			t.Fatalf("strict accepted but lenient counted %d bad lines", rep.BadLines)
		}
		// Accepted data round-trips.
		var buf bytes.Buffer
		if err := ds.Write(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
	})
}

// FuzzValidateReader keeps the streaming validator consistent with the
// lenient reader on arbitrary input.
func FuzzValidateReader(f *testing.F) {
	f.Add([]byte("0\t1\n1\t2\n"))
	f.Add([]byte("3\t1\nbroken\n1\t0\n"))
	f.Add([]byte{0x00, 0x09, 0x30, 0x0a})
	f.Fuzz(func(t *testing.T, blob []byte) {
		vrep, verr := ValidateReader(bytes.NewReader(blob))
		_, lrep, lerr := ReadWith(bytes.NewReader(blob), ReadOptions{Lenient: true})
		if (verr == nil) != (lerr == nil) {
			t.Fatalf("validator err=%v, lenient err=%v", verr, lerr)
		}
		if verr != nil {
			return
		}
		// The validator flags implausible ids the reader would accept, so
		// its event count can only be lower.
		if vrep.Events > lrep.Events || vrep.BadLines < lrep.BadLines {
			t.Fatalf("validator events=%d bad=%d vs reader events=%d bad=%d",
				vrep.Events, vrep.BadLines, lrep.Events, lrep.BadLines)
		}
		if vrep.Users < 0 || vrep.MissingUsers < 0 || vrep.MissingItems < 0 {
			t.Fatalf("negative counts: %+v", vrep)
		}
	})
}

// FuzzReadEvents exercises the raw event-log parser.
func FuzzReadEvents(f *testing.F) {
	f.Add([]byte("u\t1\tx\nu\t2\ty\n"))
	f.Add([]byte("a\tnot-a-time\tz\n"))
	f.Add([]byte("short\n"))
	f.Add([]byte("u\t-5\tx\nu\t-4\ty\n"))            // negative timestamps
	f.Add([]byte{0xf0, 0x28, '\t', '1', '\t', 0xff}) // non-UTF8 bytes
	f.Fuzz(func(t *testing.T, blob []byte) {
		ds, ids, err := ReadEvents(bytes.NewReader(blob), EventReaderOptions{
			OnBadLine: func(int, string, error) error { return nil },
		})
		if err != nil {
			return
		}
		if ds.NumUsers() != len(ids.Users) {
			t.Fatalf("user count %d != id map %d", ds.NumUsers(), len(ids.Users))
		}
		total := 0
		for _, s := range ds.Seqs {
			total += len(s)
			for _, v := range s {
				if int(v) >= len(ids.Items) {
					t.Fatalf("item %d beyond id map %d", v, len(ids.Items))
				}
			}
		}
		// Event count can never exceed input line count.
		if total > strings.Count(string(blob), "\n")+1 {
			t.Fatalf("more events (%d) than lines", total)
		}
	})
}
