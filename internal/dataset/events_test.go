package dataset

import (
	"strings"
	"testing"
	"time"
)

func TestReadEventsBasic(t *testing.T) {
	// Out-of-order rows across two users.
	in := strings.Join([]string{
		"alice\t30\tcoffee",
		"bob\t10\ttea",
		"alice\t10\ttea",
		"alice\t20\tcoffee",
		"bob\t20\tcoffee",
	}, "\n")
	ds, ids, err := ReadEvents(strings.NewReader(in), EventReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 2 {
		t.Fatalf("users = %d", ds.NumUsers())
	}
	// alice appears first → dense user 0; tea seen first for... order of
	// item interning follows file order: coffee (line 1) then tea.
	if ids.Users[0] != "alice" || ids.Users[1] != "bob" {
		t.Fatalf("user map %v", ids.Users)
	}
	if ids.Items[0] != "coffee" || ids.Items[1] != "tea" {
		t.Fatalf("item map %v", ids.Items)
	}
	// alice sorted by time: tea(10), coffee(20), coffee(30) → 1,0,0.
	got := ds.Seqs[0]
	if len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("alice seq = %v", got)
	}
	// bob: tea(10), coffee(20) → 1,0.
	if len(ds.Seqs[1]) != 2 || ds.Seqs[1][0] != 1 || ds.Seqs[1][1] != 0 {
		t.Fatalf("bob seq = %v", ds.Seqs[1])
	}
}

func TestReadEventsStableTies(t *testing.T) {
	// Equal timestamps keep file order.
	in := "u\t5\ta\nu\t5\tb\nu\t5\tc\n"
	ds, ids, err := ReadEvents(strings.NewReader(in), EventReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i, item := range ds.Seqs[0] {
		if ids.Items[item] != want[i] {
			t.Fatalf("tie order broken at %d: %v", i, ds.Seqs[0])
		}
	}
}

func TestReadEventsCustomColumnsAndTime(t *testing.T) {
	// Gowalla-style: user, RFC3339 time, lat, lng, location.
	in := strings.Join([]string{
		"7\t2010-10-19T23:55:27Z\t30.2\t-97.7\t22847",
		"7\t2010-10-18T22:17:43Z\t30.3\t-97.8\t420315",
	}, "\n")
	opt := EventReaderOptions{
		UserCol: 0, TimeCol: 1, ItemCol: 4,
		ParseTime: func(s string) (int64, error) {
			ts, err := time.Parse(time.RFC3339, s)
			if err != nil {
				return 0, err
			}
			return ts.Unix(), nil
		},
	}
	ds, ids, err := ReadEvents(strings.NewReader(in), opt)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 1 || len(ds.Seqs[0]) != 2 {
		t.Fatalf("parsed %+v", ds)
	}
	// The earlier check-in (Oct 18, location 420315) must come first.
	if ids.Items[ds.Seqs[0][0]] != "420315" {
		t.Fatalf("time ordering broken: %v", ds.Seqs[0])
	}
}

func TestReadEventsCSVAndHeader(t *testing.T) {
	in := "user,ts,item\nu1,2,x\nu1,1,y\n"
	ds, ids, err := ReadEvents(strings.NewReader(in), EventReaderOptions{
		Comma:      ',',
		SkipHeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Seqs[0]) != 2 || ids.Items[ds.Seqs[0][0]] != "y" {
		t.Fatalf("CSV parse wrong: %v / %v", ds.Seqs[0], ids.Items)
	}
}

func TestReadEventsBadLines(t *testing.T) {
	in := "u\tnot-a-time\tx\nu\t2\ty\n"
	// Default: abort.
	if _, _, err := ReadEvents(strings.NewReader(in), EventReaderOptions{}); err == nil {
		t.Fatal("bad line accepted")
	}
	// With OnBadLine: skip and continue.
	skipped := 0
	ds, _, err := ReadEvents(strings.NewReader(in), EventReaderOptions{
		OnBadLine: func(line int, text string, err error) error {
			skipped++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(ds.Seqs[0]) != 1 {
		t.Fatalf("skipped=%d seq=%v", skipped, ds.Seqs)
	}
	// OnBadLine may abort.
	if _, _, err := ReadEvents(strings.NewReader(in), EventReaderOptions{
		OnBadLine: func(int, string, error) error { return err0 },
	}); err == nil {
		t.Fatal("OnBadLine abort ignored")
	}
	// Short rows are bad lines too.
	if _, _, err := ReadEvents(strings.NewReader("u\t1\n"), EventReaderOptions{}); err == nil {
		t.Fatal("short row accepted")
	}
}

var err0 = errForTest("stop")

type errForTest string

func (e errForTest) Error() string { return string(e) }

func TestReadEventsSkipsCommentsBlank(t *testing.T) {
	in := "# header comment\n\nu\t1\tx\n"
	ds, _, err := ReadEvents(strings.NewReader(in), EventReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 1 || len(ds.Seqs[0]) != 1 {
		t.Fatalf("parsed %+v", ds)
	}
}
