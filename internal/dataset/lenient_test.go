package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsppr/internal/faultinject"
)

// dirtyCorpus builds a TSV log of n events for a handful of users with
// badFrac of the lines replaced by garbage, returning the text and the
// number of corrupted lines.
func dirtyCorpus(n int, badFrac float64) (string, int) {
	rng := rand.New(rand.NewSource(11))
	garbage := []string{
		"not a line",
		"12\t",
		"\t7",
		"-3\t4",
		"3\t-9",
		"99999999999999999999999999\t1",
		"4\tx",
		string([]byte{0xff, 0xfe, '\t', 0x01}),
	}
	var sb strings.Builder
	sb.WriteString("# dataset\tdirty\n")
	bad := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < badFrac {
			sb.WriteString(garbage[rng.Intn(len(garbage))])
			sb.WriteByte('\n')
			bad++
			continue
		}
		fmt.Fprintf(&sb, "%d\t%d\n", i/50, rng.Intn(30))
	}
	return sb.String(), bad
}

// TestLenientFivePercentCorpus is the acceptance scenario: a corpus with
// ~5% malformed lines loads in lenient mode with an accurate quarantine
// report, while strict mode still rejects it.
func TestLenientFivePercentCorpus(t *testing.T) {
	text, bad := dirtyCorpus(2000, 0.05)
	if bad == 0 {
		t.Fatal("corpus generator produced no bad lines")
	}

	if _, err := Read(strings.NewReader(text)); err == nil {
		t.Fatal("strict Read accepted a corrupt corpus")
	}

	var quarantine bytes.Buffer
	ds, rep, err := ReadWith(strings.NewReader(text), ReadOptions{Lenient: true, Quarantine: &quarantine})
	if err != nil {
		t.Fatalf("lenient read failed: %v", err)
	}
	if rep.BadLines != bad {
		t.Fatalf("BadLines = %d, want %d", rep.BadLines, bad)
	}
	if rep.Quarantined != bad {
		t.Fatalf("Quarantined = %d, want %d", rep.Quarantined, bad)
	}
	if rep.Events != 2000-bad {
		t.Fatalf("Events = %d, want %d", rep.Events, 2000-bad)
	}
	total := 0
	for _, s := range ds.Seqs {
		total += len(s)
	}
	if total != rep.Events {
		t.Fatalf("dataset holds %d events, report says %d", total, rep.Events)
	}
	// Quarantine holds one comment plus the raw line per bad line.
	qLines := strings.Count(quarantine.String(), "\n")
	if qLines != 2*bad {
		t.Fatalf("quarantine has %d lines, want %d", qLines, 2*bad)
	}
	if len(rep.FirstBad) == 0 || rep.FirstBad[0].Line == 0 {
		t.Fatalf("FirstBad not populated: %+v", rep.FirstBad)
	}
}

func TestLenientErrorBudget(t *testing.T) {
	text, bad := dirtyCorpus(2000, 0.05)
	_, rep, err := ReadWith(strings.NewReader(text), ReadOptions{Lenient: true, MaxBadLines: 10})
	if err == nil {
		t.Fatalf("budget of 10 accepted %d bad lines", bad)
	}
	if rep.BadLines != 11 {
		t.Fatalf("load aborted after %d bad lines, want 11 (budget+1)", rep.BadLines)
	}
	// A budget at least as large as the damage passes.
	if _, _, err := ReadWith(strings.NewReader(text), ReadOptions{Lenient: true, MaxBadLines: bad}); err != nil {
		t.Fatalf("budget %d rejected %d bad lines: %v", bad, bad, err)
	}
}

func TestStrictMatchesLegacyErrors(t *testing.T) {
	for _, in := range []string{"nosep", "x\t1", "1\tx", "-1\t2", "2\t-2"} {
		_, rep, err := ReadWith(strings.NewReader(in), ReadOptions{})
		if err == nil {
			t.Errorf("strict ReadWith(%q) succeeded", in)
			continue
		}
		if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error %q lost its line position", err)
		}
		if rep.BadLines != 1 {
			t.Errorf("report BadLines = %d", rep.BadLines)
		}
	}
}

func TestReadWithDiagnostics(t *testing.T) {
	in := "0\t1\n0\t1\n1\t5\n0\t2\n"
	_, rep, err := ReadWith(strings.NewReader(in), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", rep.Duplicates)
	}
	if rep.OutOfOrder != 1 {
		t.Errorf("OutOfOrder = %d, want 1 (user 0 block reopened)", rep.OutOfOrder)
	}
}

func TestLoadFileWithSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.tsv")
	if err := os.WriteFile(path, []byte("0\t1\ngarbage\n0\t2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, rep, err := LoadFileWith(path, ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadLines != 1 || rep.Quarantined != 1 {
		t.Fatalf("report = %s", rep)
	}
	if len(ds.Seqs) != 1 || len(ds.Seqs[0]) != 2 {
		t.Fatalf("dataset = %+v", ds.Seqs)
	}
	side, err := os.ReadFile(QuarantinePath(path))
	if err != nil {
		t.Fatalf("sidecar missing: %v", err)
	}
	if !strings.Contains(string(side), "garbage") {
		t.Fatalf("sidecar content %q lacks the bad line", side)
	}

	// A clean reload removes the stale sidecar and leaves no new one.
	if err := os.WriteFile(path, []byte("0\t1\n0\t2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, rep, err = LoadFileWith(path, ReadOptions{Lenient: true}); err != nil || rep.BadLines != 0 {
		t.Fatalf("clean reload: rep=%v err=%v", rep, err)
	}
	if _, err := os.Stat(QuarantinePath(path)); !os.IsNotExist(err) {
		t.Fatalf("stale sidecar survived a clean load (err=%v)", err)
	}
}

func TestReadWithInjectedIOFault(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Arm("dataset.read.line", faultinject.Plan{Mode: faultinject.Error, After: 2})
	_, rep, err := ReadWith(strings.NewReader("0\t1\n0\t2\n0\t3\n0\t4\n"), ReadOptions{Lenient: true})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	// The fault is an I/O failure: it aborts even in lenient mode, and the
	// report shows how far the load got.
	if rep.Lines != 3 {
		t.Fatalf("aborted at line %d, want 3", rep.Lines)
	}
}

func TestValidateReader(t *testing.T) {
	in := "# dataset\tx\n0\t0\n0\t1\n1\t3\nbroken\n3\t1\n1\t0\n"
	rep, err := ValidateReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 5 || rep.BadLines != 1 {
		t.Fatalf("events=%d bad=%d", rep.Events, rep.BadLines)
	}
	if rep.MaxUser != 3 || rep.Users != 3 || rep.MissingUsers != 1 {
		t.Fatalf("users=%d max=%d missing=%d", rep.Users, rep.MaxUser, rep.MissingUsers)
	}
	if rep.MaxItem != 3 || rep.Items != 3 || rep.MissingItems != 1 {
		t.Fatalf("items=%d max=%d missing=%d", rep.Items, rep.MaxItem, rep.MissingItems)
	}
	if rep.OutOfOrder != 1 {
		t.Fatalf("OutOfOrder = %d, want 1 (user 1 reopened)", rep.OutOfOrder)
	}
	v := rep.Violations()
	if len(v) != 4 {
		t.Fatalf("violations = %q, want 4 entries", v)
	}
}

func TestValidateCleanFile(t *testing.T) {
	rep, err := ValidateReader(strings.NewReader("0\t0\n0\t1\n1\t1\n1\t0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Violations(); len(got) != 0 {
		t.Fatalf("clean file reported violations: %q", got)
	}
}
