// Package dataset holds collections of per-user consumption sequences and
// their persistence, filtering and summary statistics (paper Table 2).
//
// The on-disk format is a plain TSV event log — one "user<TAB>item" line
// per consumption, time-ascending within each user — chosen so that real
// check-in or listening logs (Gowalla, Last.fm) can be converted with a
// one-line awk script and fed to the same pipeline as the synthetic
// workloads.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"tsppr/internal/seq"
)

// Dataset is a named collection of user consumption sequences. Users are
// identified by their index into Seqs; items are dense non-negative IDs.
type Dataset struct {
	Name string
	Seqs []seq.Sequence
}

// New returns a dataset over the given sequences.
func New(name string, seqs []seq.Sequence) *Dataset {
	return &Dataset{Name: name, Seqs: seqs}
}

// NumUsers returns the number of users.
func (d *Dataset) NumUsers() int { return len(d.Seqs) }

// NumItems returns 1 + the maximum item ID present, i.e. the size of a
// dense item-indexed table. It returns 0 for an empty dataset.
func (d *Dataset) NumItems() int {
	max := seq.Item(-1)
	for _, s := range d.Seqs {
		for _, v := range s {
			if v > max {
				max = v
			}
		}
	}
	return int(max) + 1
}

// Stats summarizes a dataset the way paper Table 2 does.
type Stats struct {
	Users        int
	Items        int // distinct items actually consumed
	Consumptions int
	MinSeqLen    int
	MaxSeqLen    int
	MeanSeqLen   float64
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	st := Stats{Users: len(d.Seqs)}
	items := make(map[seq.Item]struct{})
	for i, s := range d.Seqs {
		st.Consumptions += len(s)
		if i == 0 || len(s) < st.MinSeqLen {
			st.MinSeqLen = len(s)
		}
		if len(s) > st.MaxSeqLen {
			st.MaxSeqLen = len(s)
		}
		for _, v := range s {
			items[v] = struct{}{}
		}
	}
	st.Items = len(items)
	if st.Users > 0 {
		st.MeanSeqLen = float64(st.Consumptions) / float64(st.Users)
	}
	return st
}

// String renders the statistics as a Table 2 style row.
func (s Stats) String() string {
	return fmt.Sprintf("users=%d items=%d consumptions=%d seqlen[min=%d mean=%.1f max=%d]",
		s.Users, s.Items, s.Consumptions, s.MinSeqLen, s.MeanSeqLen, s.MaxSeqLen)
}

// FilterMinTrain keeps only users whose training prefix would contain at
// least window events under the given split fraction — the paper's
// "|S_u|×70% ≥ |W|" filter (§5.1). It returns a new dataset sharing the
// surviving sequences.
func (d *Dataset) FilterMinTrain(trainFrac float64, window int) *Dataset {
	kept := make([]seq.Sequence, 0, len(d.Seqs))
	for _, s := range d.Seqs {
		if int(float64(len(s))*trainFrac) >= window {
			kept = append(kept, s)
		}
	}
	return &Dataset{Name: d.Name, Seqs: kept}
}

// Split partitions every user's sequence into a leading train prefix and
// the remaining test suffix.
func (d *Dataset) Split(trainFrac float64) (train, test []seq.Sequence) {
	train = make([]seq.Sequence, len(d.Seqs))
	test = make([]seq.Sequence, len(d.Seqs))
	for u, s := range d.Seqs {
		train[u], test[u] = s.Split(trainFrac)
	}
	return train, test
}

// Compact remaps item IDs to a dense [0, n) range ordered by first global
// appearance, returning the remapped dataset and the number of distinct
// items. Dense IDs let feature tables be flat slices instead of maps.
func (d *Dataset) Compact() (*Dataset, int) {
	remap := make(map[seq.Item]seq.Item)
	out := make([]seq.Sequence, len(d.Seqs))
	for u, s := range d.Seqs {
		ns := make(seq.Sequence, len(s))
		for i, v := range s {
			nv, ok := remap[v]
			if !ok {
				nv = seq.Item(len(remap))
				remap[v] = nv
			}
			ns[i] = nv
		}
		out[u] = ns
	}
	return &Dataset{Name: d.Name, Seqs: out}, len(remap)
}

// Write emits the dataset as a TSV event log. Events are written user by
// user in time order, which round-trips exactly through Read.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset\t%s\n", d.Name); err != nil {
		return err
	}
	for u, s := range d.Seqs {
		for _, v := range s {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a TSV event log produced by Write (or any user<TAB>item log
// whose events are time-ascending per user). Unknown comment lines are
// skipped; a "# dataset" header sets the name. Read is strict: the first
// malformed line aborts with its position. For dirty real-world logs see
// ReadWith, which can skip, count and quarantine bad lines under an error
// budget.
func Read(r io.Reader) (*Dataset, error) {
	ds, _, err := ReadWith(r, ReadOptions{})
	return ds, err
}

// SaveFile writes the dataset to path, creating or truncating it.
func (d *Dataset) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return d.Write(f)
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return Read(f)
}
