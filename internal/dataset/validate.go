package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// maxValidateID bounds the ids the validator will track densely; ids past
// it are reported as implausible rather than allocated for. At the cap
// the two bitsets cost 2 × 64 MiB, far below materializing the dataset.
const maxValidateID = 1 << 29

// FileReport summarizes a streaming validation pass over one event log:
// per-line syntax health plus the dataset invariants the pipeline relies
// on (dense user/item ids, no empty sequences), computed without building
// the in-memory Dataset.
type FileReport struct {
	Path string

	Lines    int // physical lines scanned
	Events   int // well-formed events
	BadLines int // malformed lines
	FirstBad []LineError

	Users        int // distinct user ids seen
	Items        int // distinct item ids seen
	MaxUser      int // largest user id (-1 when no events)
	MaxItem      int // largest item id (-1 when no events)
	MissingUsers int // gaps in [0, MaxUser]: users with empty sequences
	MissingItems int // gaps in [0, MaxItem]: non-dense item ids
	OutOfOrder   int // events that reopened an earlier user's block
	Duplicates   int // lines identical to their predecessor
}

// Violations lists the invariant breaches a loader or trainer would trip
// over, one human-readable line each. An empty slice means the file is
// clean and dense.
func (r *FileReport) Violations() []string {
	var v []string
	if r.BadLines > 0 {
		v = append(v, fmt.Sprintf("%d malformed lines (first: %s)", r.BadLines, r.FirstBad[0]))
	}
	if r.MissingUsers > 0 {
		v = append(v, fmt.Sprintf("non-dense user ids: %d of %d in [0,%d] have no events (empty sequences)",
			r.MissingUsers, r.MaxUser+1, r.MaxUser))
	}
	if r.MissingItems > 0 {
		v = append(v, fmt.Sprintf("non-dense item ids: %d of %d in [0,%d] never consumed",
			r.MissingItems, r.MaxItem+1, r.MaxItem))
	}
	if r.OutOfOrder > 0 {
		v = append(v, fmt.Sprintf("%d events reopen an earlier user's block (file not grouped by user)", r.OutOfOrder))
	}
	return v
}

// bitset is a growable dense-id presence set.
type bitset struct {
	words []uint64
	count int
}

func (b *bitset) set(i int) {
	w := i >> 6
	if w >= len(b.words) {
		grown := make([]uint64, w+1+w/2)
		copy(grown, b.words)
		b.words = grown
	}
	if b.words[w]&(1<<(i&63)) == 0 {
		b.words[w] |= 1 << (i & 63)
		b.count++
	}
}

func (b *bitset) get(i int) bool {
	w := i >> 6
	return w < len(b.words) && b.words[w]&(1<<(i&63)) != 0
}

// ValidateReader streams one "user<TAB>item" log and accumulates the
// report. It never materializes sequences: memory is two presence bitsets
// over the id ranges. The error return covers I/O only; syntax problems
// land in the report.
func ValidateReader(r io.Reader) (*FileReport, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rep := &FileReport{MaxUser: -1, MaxItem: -1}
	var users, items, opened bitset
	lastUser := -1
	prevText := ""
	havePrev := false
	record := func(err error) {
		rep.BadLines++
		if len(rep.FirstBad) < maxBadSamples {
			rep.FirstBad = append(rep.FirstBad, LineError{Line: rep.Lines, Err: err})
		}
	}
	for sc.Scan() {
		rep.Lines++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if havePrev && text == prevText {
			rep.Duplicates++
		}
		prevText, havePrev = text, true
		u, it, err := parseSeqLine(text)
		if err != nil {
			record(err)
			continue
		}
		if u >= maxValidateID || it >= maxValidateID {
			record(fmt.Errorf("implausible id (>= %d)", maxValidateID))
			continue
		}
		rep.Events++
		users.set(u)
		items.set(it)
		if u > rep.MaxUser {
			rep.MaxUser = u
		}
		if it > rep.MaxItem {
			rep.MaxItem = it
		}
		// A block opening for a user whose block was already opened means
		// the file is not grouped by user.
		if u != lastUser {
			if opened.get(u) {
				rep.OutOfOrder++
			}
			opened.set(u)
		}
		lastUser = u
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("dataset: scan: %w", err)
	}
	rep.Users = users.count
	rep.Items = items.count
	if rep.MaxUser >= 0 {
		rep.MissingUsers = rep.MaxUser + 1 - rep.Users
	}
	if rep.MaxItem >= 0 {
		rep.MissingItems = rep.MaxItem + 1 - rep.Items
	}
	return rep, nil
}

// ValidateFile streams a validation pass over the file at path.
func ValidateFile(path string) (*FileReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	rep, err := ValidateReader(f)
	if rep != nil {
		rep.Path = path
	}
	return rep, err
}
