//go:build !race

package engine_test

// raceEnabled reports whether the race detector is active. The
// zero-allocation pin is skipped under -race: instrumented sync.Pool
// deliberately drops values to widen race coverage, which re-allocates
// scratch and makes allocation counts meaningless.
const raceEnabled = false
