// Package engine owns the TS-PPR scoring hot path: candidate enumeration,
// per-item preference evaluation, and Top-N selection, shared by training
// diagnostics, offline evaluation, and every serving endpoint. Before this
// package existed the preference function r_uvt = uᵀv + uᵀA_u f_uvt (paper
// Eq. 5) was evaluated by four separate code paths with four separate
// scratch-allocation disciplines; now there is exactly one.
//
// Two structural optimizations make the engine both singular and fast:
//
//   - The per-user factor uᵀA_u is folded into an effective feature-weight
//     vector w_u once per model load/swap (core.Model.Precompute), so
//     scoring an item costs two dot products — uᵀv (K mults) + w_uᵀf_uvt
//     (F mults) — instead of a K×F matrix-vector product per call.
//   - All per-request scratch (feature vector, candidate buffer, Top-N
//     selector) lives in a sync.Pool of reusable blocks, so steady-state
//     Recommend performs zero heap allocations and the engine is safe for
//     concurrent use from batch fan-out without per-goroutine setup.
//
// Candidates are enumerated through seq.Window.CandidatesUnordered — the
// allocation-free walk of the window's last-seen index. Its unspecified
// order is sound here because the Top-N selector imposes a strict total
// order on (score, item): the returned ranking is identical to ranking
// the deterministically-ordered candidate list.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tsppr/internal/core"
	"tsppr/internal/linalg"
	"tsppr/internal/obs"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
	"tsppr/internal/topk"
)

// Engine evaluates TS-PPR preferences and produces scored Top-N
// recommendations over a shared read-only model. Unlike the per-goroutine
// scorers it replaced, one Engine serves any number of goroutines: scratch
// is pooled, the model is never written.
type Engine struct {
	m    *core.Model
	pool sync.Pool // *scratch

	// quant selects the mixed-precision scoring path: dot products
	// against the model's float32-quantized w_u and V tables (half the
	// cache traffic, |Δscore| bounded by the ~1e-7 relative storage
	// quantization). Runtime-switchable so a deployment can flip it
	// without a rebuild; loaded once per Recommend/Score call so a
	// concurrent flip never splits one ranking across precisions.
	quant atomic.Bool

	// Optional instrumentation, set by Instrument. Nil handles record
	// nothing; the only hot-path cost when instrumented is two
	// time.Now() calls and two atomic histogram observes.
	recSec *obs.Histogram // Recommend wall latency
	cands  *obs.Histogram // candidate-set size per Recommend
}

// maxPooledCands bounds the candidate-buffer capacity a scratch block may
// carry back into the pool. One pathological request (a huge window with a
// tiny Ω) would otherwise pin its oversized buffer in the pool for the
// life of the engine, charging every future caller for one bad input.
// Variable, not const, so the regression test can lower it.
var maxPooledCands = 1 << 15

// scratch is one goroutine's worth of reusable scoring state.
type scratch struct {
	f     linalg.Vector // F: behavioural feature vector f_uvt
	cands []seq.Item
	sel   *topk.Selector
}

// New returns an engine over m, folding the per-user effective feature
// weights if the model has not precomputed them yet. It panics on a nil
// model: an engine without a model is a programming error, not a runtime
// condition.
func New(m *core.Model) *Engine {
	if m == nil {
		panic("engine: New with nil model")
	}
	if m.Extractor == nil {
		panic("engine: New with model missing its feature extractor")
	}
	m.Precompute()
	e := &Engine{m: m}
	e.pool.New = func() any {
		return &scratch{f: linalg.NewVector(m.F)}
	}
	return e
}

// Model returns the engine's underlying model.
func (e *Engine) Model() *core.Model { return e.m }

// SetQuantized switches scoring between the float64 tables (default)
// and the float32-quantized tables. Safe to flip concurrently with
// scoring: each Recommend/Score call reads the switch once, so every
// individual ranking is evaluated entirely in one precision.
func (e *Engine) SetQuantized(on bool) { e.quant.Store(on) }

// Quantized reports whether the engine scores against the quantized
// tables.
func (e *Engine) Quantized() bool { return e.quant.Load() }

// Instrument registers the engine's hot-path metrics on reg and starts
// recording into them. A nil registry leaves the engine uninstrumented
// (recording stays a no-op). Metric names are stable across engine
// hot-swaps: a replacement engine instrumented on the same registry
// accumulates into the same series.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("rrc_engine_recommend_seconds", "Engine Recommend wall latency.")
	e.recSec = reg.Histogram("rrc_engine_recommend_seconds", obs.LatencyBuckets)
	reg.Help("rrc_engine_candidates", "Candidate-set size per Recommend call.")
	e.cands = reg.Histogram("rrc_engine_candidates", obs.SizeBuckets)
}

// putScratch returns a scratch block to the pool unless its candidate
// buffer has grown past maxPooledCands, in which case the block is
// dropped for the GC so one oversized request cannot pin its buffer in
// the pool forever. Reports whether the block was pooled.
func (e *Engine) putScratch(s *scratch) bool {
	if cap(s.cands) > maxPooledCands {
		return false
	}
	e.pool.Put(s)
	return true
}

// Score returns r_uvt for item v against the user's current window. It is
// safe for concurrent use. For ranking whole candidate sets use Recommend,
// which amortizes the scratch checkout across all items.
func (e *Engine) Score(u int, v seq.Item, w *seq.Window) float64 {
	if u < 0 || u >= e.m.U.Rows {
		panic(fmt.Sprintf("engine: Score user %d out of range [0,%d)", u, e.m.U.Rows))
	}
	s := e.pool.Get().(*scratch)
	var r float64
	if e.quant.Load() {
		r = e.scoreOne32(s.f, e.m.U.Row(u), e.m.EffectiveFeatureWeights32(u), v, w)
	} else {
		r = e.scoreOne(s.f, e.m.U.Row(u), e.m.EffectiveFeatureWeights(u), v, w)
	}
	e.putScratch(s)
	return r
}

// scoreOne evaluates one preference with caller-held operands: uvec is the
// user's latent row, wu the precomputed effective feature weights, f the
// F-length scratch the feature vector is extracted into.
func (e *Engine) scoreOne(f linalg.Vector, uvec, wu linalg.Vector, v seq.Item, w *seq.Window) float64 {
	static := 0.0
	if v >= 0 && int(v) < e.m.V.Rows {
		static = linalg.Dot(uvec, e.m.V.Row(int(v)))
	}
	e.m.Extractor.Extract(f, v, w)
	return static + linalg.Dot(wu, f)
}

// scoreOne32 is scoreOne against the float32-quantized tables: uᵀv and
// w_uᵀf become mixed-precision dot products (float64 accumulate over
// float32 storage), so the only deviation from scoreOne is the ~1e-7
// relative quantization of each stored element.
func (e *Engine) scoreOne32(f linalg.Vector, uvec linalg.Vector, wu32 []float32, v seq.Item, w *seq.Window) float64 {
	static := 0.0
	if v >= 0 && int(v) < e.m.V.Rows {
		static = linalg.DotF32(uvec, e.m.ItemFactors32(int(v)))
	}
	e.m.Extractor.Extract(f, v, w)
	return static + linalg.DotF32(f, wu32)
}

// Recommend appends the Top-N RRC recommendations to dst as (item, score)
// pairs, best first: the highest-scoring distinct window items not
// consumed in the last Ω steps. Steady-state calls allocate nothing
// beyond what dst needs to grow; passing dst[:0] of a reused slice makes
// the whole call allocation-free. It implements rec.Recommender and is
// safe for concurrent use.
func (e *Engine) Recommend(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	if n <= 0 {
		return dst
	}
	m := e.m
	u := ctx.User
	if u < 0 || u >= m.U.Rows {
		panic(fmt.Sprintf("engine: Recommend user %d out of range [0,%d)", u, m.U.Rows))
	}
	// Instrumentation guards are uniformly explicit nil checks. The obs
	// handles would no-op on a nil receiver anyway, but relying on that
	// for some handles and nil-checking others (as this function once
	// did) hides which style is load-bearing; the explicit check also
	// skips the float conversion and call entirely when uninstrumented.
	var start time.Time
	if e.recSec != nil {
		start = time.Now()
	}
	s := e.pool.Get().(*scratch)
	s.cands = ctx.Window.CandidatesUnordered(ctx.Omega, s.cands[:0])
	if e.cands != nil {
		e.cands.Observe(float64(len(s.cands)))
	}
	if len(s.cands) == 0 {
		e.putScratch(s)
		if e.recSec != nil {
			e.recSec.ObserveDuration(time.Since(start))
		}
		return dst
	}
	if s.sel == nil || s.sel.K() != n {
		s.sel = topk.New(n)
	} else {
		s.sel.Reset()
	}
	uvec := m.U.Row(u)
	if e.quant.Load() {
		wu32 := m.EffectiveFeatureWeights32(u)
		for _, v := range s.cands {
			s.sel.Push(v, e.scoreOne32(s.f, uvec, wu32, v, ctx.Window))
		}
	} else {
		wu := m.EffectiveFeatureWeights(u)
		for _, v := range s.cands {
			s.sel.Push(v, e.scoreOne(s.f, uvec, wu, v, ctx.Window))
		}
	}
	dst = s.sel.AppendSorted(dst)
	e.putScratch(s)
	if e.recSec != nil {
		e.recSec.ObserveDuration(time.Since(start))
	}
	return dst
}

// Factory returns a rec.Factory over the shared engine. Unlike baseline
// factories it hands out the engine itself rather than minting per-user
// instances: the engine is safe for concurrent use, and per-user copies
// would only fragment the scratch pool.
func (e *Engine) Factory() rec.Factory {
	return rec.Factory{
		Name: "TS-PPR",
		New:  func(uint64) rec.Recommender { return e },
	}
}
