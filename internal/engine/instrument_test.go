package engine_test

import (
	"testing"

	"tsppr/internal/obs"
	"tsppr/internal/rec"
)

// TestInstrumentRecords checks that an instrumented engine feeds the
// latency and candidate-size histograms once per Recommend — including
// the empty-candidate early return — and that Instrument(nil) leaves the
// engine safely uninstrumented.
func TestInstrumentRecords(t *testing.T) {
	_, seqs, eng := defaultFixture(t)
	eng.Instrument(nil) // must be a no-op, not a panic
	ctx := &rec.Context{User: 0, Window: windowFor(seqs[0]), Omega: fixtureOmega}
	eng.Recommend(ctx, 5, nil)

	reg := obs.NewRegistry()
	eng.Instrument(reg)
	eng.Recommend(ctx, 5, nil)
	eng.Recommend(ctx, 5, nil)
	lat := reg.Histogram("rrc_engine_recommend_seconds", obs.LatencyBuckets)
	cands := reg.Histogram("rrc_engine_candidates", obs.SizeBuckets)
	if lat.Count() != 2 {
		t.Fatalf("latency observations = %d, want 2", lat.Count())
	}
	if cands.Count() != 2 || cands.Sum() == 0 {
		t.Fatalf("candidate observations = %d (sum %v), want 2 with non-zero sum", cands.Count(), cands.Sum())
	}
}

// TestRecommendZeroAllocsInstrumented pins the acceptance criterion that
// instrumentation does not reintroduce allocations on the hot path.
func TestRecommendZeroAllocsInstrumented(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool drops values by design; allocation counts are meaningless")
	}
	_, seqs, eng := defaultFixture(t)
	eng.Instrument(obs.NewRegistry())
	ctx := &rec.Context{User: 2, Window: windowFor(seqs[2]), Omega: fixtureOmega}
	var dst []rec.Scored
	dst = eng.Recommend(ctx, 10, dst[:0]) // warm pool scratch and dst
	if len(dst) == 0 {
		t.Fatal("no recommendations to measure")
	}
	if avg := testing.AllocsPerRun(200, func() {
		dst = eng.Recommend(ctx, 10, dst[:0])
	}); avg != 0 {
		t.Fatalf("instrumented Recommend allocates %.1f/op, want 0", avg)
	}
}

// BenchmarkRecommendUninstrumented is the regression baseline for the
// uninstrumented hot path: with every instrumentation guard an explicit
// nil check (no time.Now, no Observe), it must match the pre-guard
// engine — and -benchmem must show 0 allocs/op.
func BenchmarkRecommendUninstrumented(b *testing.B) {
	_, seqs, eng := defaultFixture(b)
	ctx := &rec.Context{User: 2, Window: windowFor(seqs[2]), Omega: fixtureOmega}
	var dst []rec.Scored
	dst = eng.Recommend(ctx, 10, dst[:0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = eng.Recommend(ctx, 10, dst[:0])
	}
}

// BenchmarkRecommendInstrumented reports the instrumented hot path's
// cost; -benchmem must show 0 allocs/op.
func BenchmarkRecommendInstrumented(b *testing.B) {
	_, seqs, eng := defaultFixture(b)
	eng.Instrument(obs.NewRegistry())
	ctx := &rec.Context{User: 2, Window: windowFor(seqs[2]), Omega: fixtureOmega}
	var dst []rec.Scored
	dst = eng.Recommend(ctx, 10, dst[:0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = eng.Recommend(ctx, 10, dst[:0])
	}
}
