package engine_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tsppr/internal/core"
	"tsppr/internal/engine"
	"tsppr/internal/features"
	"tsppr/internal/linalg"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

const (
	fixtureUsers     = 8
	fixtureItems     = 30
	fixtureWindowCap = 20
	fixtureOmega     = 3
)

// fixture builds a model with random (but seeded, finite) parameters over
// a synthetic repeat-heavy corpus. Parameters are drawn directly rather
// than trained: scoring equivalence and the Recommend contract depend only
// on the model's shape, and skipping SGD keeps the full
// mask × recency × map-kind sweep fast.
func fixture(t testing.TB, rng *rand.Rand, mask features.Mask, rk features.RecencyKind, mt core.MapKind) (*core.Model, []seq.Sequence) {
	t.Helper()
	seqs := make([]seq.Sequence, fixtureUsers)
	for u := range seqs {
		s := make(seq.Sequence, 120)
		for i := range s {
			if i > 0 && rng.Float64() < 0.6 {
				s[i] = s[rng.Intn(i)] // repeat consumption
			} else {
				s[i] = seq.Item(rng.Intn(fixtureItems))
			}
		}
		seqs[u] = s
	}
	b := features.NewBuilder(fixtureItems, fixtureWindowCap, fixtureOmega)
	for _, s := range seqs {
		b.Add(s)
	}
	ex := b.Build(mask, rk)
	f := ex.Dim()
	k := 6
	if mt == core.IdentityMap {
		k = f // identity map requires K == F
	}
	m := &core.Model{
		K: k, F: f, MapType: mt,
		U: randMatrix(rng, fixtureUsers, k), V: randMatrix(rng, fixtureItems, k),
		Extractor: ex,
	}
	switch mt {
	case core.PerUserMap:
		for u := 0; u < fixtureUsers; u++ {
			m.A = append(m.A, randMatrix(rng, k, f))
		}
	case core.SharedMap:
		m.A = []*linalg.Matrix{randMatrix(rng, k, f)}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m, seqs
}

func randMatrix(rng *rand.Rand, rows, cols int) *linalg.Matrix {
	mat := linalg.NewMatrix(rows, cols)
	for i := range mat.Data {
		mat.Data[i] = rng.NormFloat64() * 0.3
	}
	return mat
}

func windowFor(s seq.Sequence) *seq.Window {
	w := seq.NewWindow(fixtureWindowCap)
	for _, v := range s {
		w.Push(v)
	}
	return w
}

// refScore is the pre-refactor per-call scoring path, kept verbatim as the
// golden reference: extract f_uvt, derive w_u = A_uᵀu on the spot with the
// same summation order the model's Precompute uses (f outer, k inner
// ascending), and sum the two terms. The engine must reproduce it bit for
// bit — any drift means the precomputed fold reassociated the arithmetic.
func refScore(m *core.Model, u int, v seq.Item, w *seq.Window, f linalg.Vector) float64 {
	uvec := m.U.Row(u)
	static := 0.0
	if v >= 0 && int(v) < m.V.Rows {
		static = linalg.Dot(uvec, m.V.Row(int(v)))
	}
	m.Extractor.Extract(f, v, w)
	dyn := 0.0
	switch m.MapType {
	case core.IdentityMap:
		dyn = linalg.Dot(uvec, f)
	default:
		a := m.A[0]
		if m.MapType == core.PerUserMap {
			a = m.A[u]
		}
		for fi := 0; fi < m.F; fi++ {
			s := 0.0
			for k := 0; k < m.K; k++ {
				s += uvec[k] * a.At(k, fi)
			}
			dyn += s * f[fi]
		}
	}
	return static + dyn
}

// refRecommend is the pre-refactor ranking path: deterministically ordered
// candidates, per-call scoring, full sort under the Top-N selector's strict
// total order (higher score first, ties to the smaller item id).
func refRecommend(m *core.Model, u int, w *seq.Window, omega, n int) []rec.Scored {
	f := linalg.NewVector(m.F)
	cands := w.Candidates(omega, nil)
	scored := make([]rec.Scored, 0, len(cands))
	for _, v := range cands {
		scored = append(scored, rec.Scored{Item: v, Score: refScore(m, u, v, w, f)})
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].Item < scored[j].Item
	})
	if len(scored) > n {
		scored = scored[:n]
	}
	return scored
}

// TestGoldenEquivalence sweeps every feature mask, both recency variants,
// and all three map kinds, and checks that the engine's scores and
// rankings are bit-identical to the pre-refactor per-call path for every
// user and candidate.
func TestGoldenEquivalence(t *testing.T) {
	kinds := []core.MapKind{core.PerUserMap, core.SharedMap, core.IdentityMap}
	recencies := []features.RecencyKind{features.Hyperbolic, features.Exponential}
	for mask := features.Mask(1); mask <= features.AllFeatures; mask++ {
		for _, rk := range recencies {
			for _, mt := range kinds {
				mask, rk, mt := mask, rk, mt
				t.Run(fmt.Sprintf("mask%02d/%s/%s", mask, rk, mt), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(mask)<<8 | int64(rk)<<4 | int64(mt)))
					m, seqs := fixture(t, rng, mask, rk, mt)
					eng := engine.New(m)
					f := linalg.NewVector(m.F)
					for u, s := range seqs {
						w := windowFor(s)
						// Per-item scores, including an out-of-universe item.
						cands := w.Candidates(fixtureOmega, nil)
						for _, v := range append(cands, seq.Item(fixtureItems+5)) {
							want := refScore(m, u, v, w, f)
							if got := eng.Score(u, v, w); got != want {
								t.Fatalf("user %d item %d: engine %.17g != reference %.17g", u, v, got, want)
							}
						}
						// Full rankings at several cutoffs, scores included.
						for _, n := range []int{1, 3, 10, len(cands) + 7} {
							want := refRecommend(m, u, w, fixtureOmega, n)
							got := eng.Recommend(&rec.Context{User: u, Window: w, Omega: fixtureOmega}, n, nil)
							if len(got) != len(want) {
								t.Fatalf("user %d n=%d: %d results, want %d", u, n, len(got), len(want))
							}
							for i := range got {
								if got[i] != want[i] {
									t.Fatalf("user %d n=%d rank %d: engine %v != reference %v", u, n, i, got[i], want[i])
								}
							}
						}
					}
				})
			}
		}
	}
}

func defaultFixture(t testing.TB) (*core.Model, []seq.Sequence, *engine.Engine) {
	rng := rand.New(rand.NewSource(42))
	m, seqs := fixture(t, rng, features.AllFeatures, features.Hyperbolic, core.PerUserMap)
	return m, seqs, engine.New(m)
}

func TestRecommendContract(t *testing.T) {
	_, seqs, eng := defaultFixture(t)
	ctx := &rec.Context{User: 0, Window: windowFor(seqs[0]), Omega: fixtureOmega}
	got := eng.Recommend(ctx, 10, nil)
	if len(got) == 0 {
		t.Fatal("no recommendations on a repeat-heavy window")
	}
	cands := ctx.Window.Candidates(fixtureOmega, nil)
	want := len(cands)
	if want > 10 {
		want = 10
	}
	if len(got) != want {
		t.Fatalf("returned %d, want %d", len(got), want)
	}
	inCands := map[seq.Item]bool{}
	for _, c := range cands {
		inCands[c] = true
	}
	seen := map[seq.Item]bool{}
	for i, s := range got {
		if !inCands[s.Item] {
			t.Fatalf("non-candidate %d recommended", s.Item)
		}
		if seen[s.Item] {
			t.Fatalf("duplicate %d", s.Item)
		}
		seen[s.Item] = true
		if i > 0 && s.Score > got[i-1].Score {
			t.Fatal("scores not descending")
		}
		// The pair's score is the engine's score for that item.
		if s.Score != eng.Score(0, s.Item, ctx.Window) {
			t.Fatalf("reported score %v != Score() for item %d", s.Score, s.Item)
		}
	}
}

func TestRecommendEmptyAndZeroN(t *testing.T) {
	_, seqs, eng := defaultFixture(t)
	// Fresh window: every item too recent or absent → no candidates.
	w := seq.NewWindow(fixtureWindowCap)
	w.Push(1)
	ctx := &rec.Context{User: 0, Window: w, Omega: fixtureOmega}
	if got := eng.Recommend(ctx, 5, nil); len(got) != 0 {
		t.Fatalf("empty window produced %v", got)
	}
	full := &rec.Context{User: 0, Window: windowFor(seqs[0]), Omega: fixtureOmega}
	if got := eng.Recommend(full, 0, nil); len(got) != 0 {
		t.Fatalf("n=0 produced %v", got)
	}
	// dst is appended to, not clobbered.
	dst := []rec.Scored{{Item: 77, Score: 9}}
	got := eng.Recommend(full, 2, dst)
	if len(got) < 1 || got[0] != dst[0] {
		t.Fatalf("dst prefix clobbered: %v", got)
	}
}

func TestScoreUnknownItem(t *testing.T) {
	m, seqs, eng := defaultFixture(t)
	w := windowFor(seqs[0])
	// An item outside the model's universe has no latent row: its score is
	// the dynamic term alone, and must be finite, not a panic.
	v := seq.Item(m.NumItems() + 3)
	got := eng.Score(0, v, w)
	f := linalg.NewVector(m.F)
	m.Extractor.Extract(f, v, w)
	if want := linalg.Dot(m.EffectiveFeatureWeights(0), f); got != want {
		t.Fatalf("unknown item score %v, want dynamic-only %v", got, want)
	}
}

func TestPanicsOnBadUser(t *testing.T) {
	_, seqs, eng := defaultFixture(t)
	w := windowFor(seqs[0])
	for name, fn := range map[string]func(){
		"Score":     func() { eng.Score(-1, 0, w) },
		"Recommend": func() { eng.Recommend(&rec.Context{User: fixtureUsers + 1, Window: w, Omega: fixtureOmega}, 3, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on bad user did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFactorySharesEngine(t *testing.T) {
	_, _, eng := defaultFixture(t)
	f := eng.Factory()
	if f.Name != "TS-PPR" {
		t.Fatalf("factory name %q", f.Name)
	}
	if r1, r2 := f.New(1), f.New(2); r1 != rec.Recommender(eng) || r1 != r2 {
		t.Fatal("factory minted distinct instances; the engine is shared")
	}
}

// TestRecommendZeroAllocs pins the tentpole property: once the pool is
// warm and dst has capacity, Recommend is allocation-free.
func TestRecommendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool drops values by design; allocation counts are meaningless")
	}
	_, seqs, eng := defaultFixture(t)
	ctx := &rec.Context{User: 2, Window: windowFor(seqs[2]), Omega: fixtureOmega}
	var dst []rec.Scored
	dst = eng.Recommend(ctx, 10, dst[:0]) // warm pool scratch and dst
	if len(dst) == 0 {
		t.Fatal("no recommendations to measure")
	}
	if avg := testing.AllocsPerRun(200, func() {
		dst = eng.Recommend(ctx, 10, dst[:0])
	}); avg != 0 {
		t.Fatalf("steady-state Recommend allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		eng.Score(2, dst[0].Item, ctx.Window)
	}); avg != 0 {
		t.Fatalf("steady-state Score allocates %.1f/op, want 0", avg)
	}
}

// TestConcurrentRecommend drives one shared engine from many goroutines —
// the batch-endpoint fan-out pattern — and checks every goroutine sees
// exactly the serial results. Run under -race (make check) this also
// proves the scratch pool isolates concurrent scorers.
func TestConcurrentRecommend(t *testing.T) {
	_, seqs, eng := defaultFixture(t)
	ctxs := make([]*rec.Context, fixtureUsers)
	serial := make([][]rec.Scored, fixtureUsers)
	for u := range ctxs {
		ctxs[u] = &rec.Context{User: u, Window: windowFor(seqs[u]), Omega: fixtureOmega}
		serial[u] = eng.Recommend(ctxs[u], 10, nil)
	}
	const workers = 8
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		g := g
		go func() {
			var dst []rec.Scored
			for i := 0; i < 200; i++ {
				u := (g + i) % fixtureUsers
				dst = eng.Recommend(ctxs[u], 10, dst[:0])
				if len(dst) != len(serial[u]) {
					errs <- errMismatch(u)
					return
				}
				for j := range dst {
					if dst[j] != serial[u][j] {
						errs <- errMismatch(u)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < workers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

type errMismatch int

func (e errMismatch) Error() string { return "concurrent result diverged from serial for user" }
