package engine_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tsppr/internal/core"
	"tsppr/internal/engine"
	"tsppr/internal/features"
	"tsppr/internal/linalg"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// quantTol is the acceptance bound on |quantized − float64| per score.
// The true error is far smaller — each float32-stored element carries
// ~6e-8 relative quantization, summed over K+F ≤ 44 terms of O(1)
// magnitude — so 1e-5 leaves two orders of headroom without ever
// excusing a real arithmetic divergence.
const quantTol = 1e-5

// wideFixture is the golden-parity model shape from the acceptance
// criteria: K=40 latent factors over the full F=4 feature set, per map
// kind (IdentityMap forces K=F).
func wideFixture(t testing.TB, rng *rand.Rand, mt core.MapKind) (*core.Model, []seq.Sequence) {
	t.Helper()
	seqs := make([]seq.Sequence, fixtureUsers)
	for u := range seqs {
		s := make(seq.Sequence, 120)
		for i := range s {
			if i > 0 && rng.Float64() < 0.6 {
				s[i] = s[rng.Intn(i)]
			} else {
				s[i] = seq.Item(rng.Intn(fixtureItems))
			}
		}
		seqs[u] = s
	}
	b := features.NewBuilder(fixtureItems, fixtureWindowCap, fixtureOmega)
	for _, s := range seqs {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	f := ex.Dim()
	k := 40
	if mt == core.IdentityMap {
		k = f
	}
	m := &core.Model{
		K: k, F: f, MapType: mt,
		U: randMatrix(rng, fixtureUsers, k), V: randMatrix(rng, fixtureItems, k),
		Extractor: ex,
	}
	switch mt {
	case core.PerUserMap:
		for u := 0; u < fixtureUsers; u++ {
			m.A = append(m.A, randMatrix(rng, k, f))
		}
	case core.SharedMap:
		m.A = []*linalg.Matrix{randMatrix(rng, k, f)}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m, seqs
}

// TestQuantizedParityGolden pins the float32 path against the float64
// path at the serving shape (K=40, F=4): every per-item score within
// quantTol, and the Top-N ranking — items AND order — byte-identical.
// Fixed seeds make the near-tie risk deterministic: if this passes
// once, it passes forever.
func TestQuantizedParityGolden(t *testing.T) {
	for _, mt := range []core.MapKind{core.PerUserMap, core.SharedMap, core.IdentityMap} {
		mt := mt
		t.Run(fmt.Sprint(mt), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(mt) + 101))
			m, seqs := wideFixture(t, rng, mt)
			eng := engine.New(m)
			qeng := engine.New(m)
			qeng.SetQuantized(true)
			maxDelta := 0.0
			for u, s := range seqs {
				w := windowFor(s)
				cands := w.Candidates(fixtureOmega, nil)
				for _, v := range append(cands, seq.Item(fixtureItems+5)) {
					want := eng.Score(u, v, w)
					got := qeng.Score(u, v, w)
					if d := math.Abs(got - want); d > maxDelta {
						maxDelta = d
					}
					if math.Abs(got-want) > quantTol {
						t.Fatalf("user %d item %d: quantized %.17g vs float64 %.17g (Δ=%g)",
							u, v, got, want, math.Abs(got-want))
					}
				}
				for _, n := range []int{1, 10, len(cands) + 7} {
					want := eng.Recommend(&rec.Context{User: u, Window: w, Omega: fixtureOmega}, n, nil)
					got := qeng.Recommend(&rec.Context{User: u, Window: w, Omega: fixtureOmega}, n, nil)
					if len(got) != len(want) {
						t.Fatalf("user %d n=%d: %d results, want %d", u, n, len(got), len(want))
					}
					for i := range got {
						if got[i].Item != want[i].Item {
							t.Fatalf("user %d n=%d rank %d: quantized ranked %d, float64 ranked %d",
								u, n, i, got[i].Item, want[i].Item)
						}
						if math.Abs(got[i].Score-want[i].Score) > quantTol {
							t.Fatalf("user %d n=%d rank %d: score Δ=%g",
								u, n, i, math.Abs(got[i].Score-want[i].Score))
						}
					}
				}
			}
			t.Logf("max |Δscore| = %g (bound %g)", maxDelta, quantTol)
		})
	}
}

// TestQuantizedParityProperty draws random models — every mask, both
// recency variants, all map kinds, fresh parameters per seed — and
// checks the score-level parity bound holds unconditionally. Ranking
// order is not asserted here: a random model may put two candidates
// within quantization distance, where either order is correct.
func TestQuantizedParityProperty(t *testing.T) {
	kinds := []core.MapKind{core.PerUserMap, core.SharedMap, core.IdentityMap}
	recencies := []features.RecencyKind{features.Hyperbolic, features.Exponential}
	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed*7919 + 17))
		mask := features.Mask(1 + rng.Intn(int(features.AllFeatures)))
		rk := recencies[rng.Intn(len(recencies))]
		mt := kinds[rng.Intn(len(kinds))]
		m, seqs := fixture(t, rng, mask, rk, mt)
		qeng := engine.New(m)
		qeng.SetQuantized(true)
		eng := engine.New(m)
		for u, s := range seqs {
			w := windowFor(s)
			for _, v := range w.Candidates(fixtureOmega, nil) {
				want := eng.Score(u, v, w)
				got := qeng.Score(u, v, w)
				if math.Abs(got-want) > quantTol {
					t.Fatalf("seed %d mask %d %s %s user %d item %d: Δ=%g",
						seed, mask, rk, mt, u, v, math.Abs(got-want))
				}
			}
		}
	}
}

// TestSetQuantizedToggle checks the switch is observable, reversible,
// and actually changes which tables scoring reads.
func TestSetQuantizedToggle(t *testing.T) {
	_, seqs, eng := defaultFixture(t)
	if eng.Quantized() {
		t.Fatal("engine must default to the float64 path")
	}
	w := windowFor(seqs[0])
	cands := w.Candidates(fixtureOmega, nil)
	if len(cands) == 0 {
		t.Fatal("fixture produced no candidates")
	}
	exact := eng.Score(0, cands[0], w)
	eng.SetQuantized(true)
	if !eng.Quantized() {
		t.Fatal("SetQuantized(true) not observable")
	}
	quant := eng.Score(0, cands[0], w)
	if math.Abs(quant-exact) > quantTol {
		t.Fatalf("quantized score diverged: %g vs %g", quant, exact)
	}
	eng.SetQuantized(false)
	if eng.Quantized() {
		t.Fatal("SetQuantized(false) not observable")
	}
	if got := eng.Score(0, cands[0], w); got != exact {
		t.Fatalf("float64 path not bit-stable across toggles: %.17g vs %.17g", got, exact)
	}
}

// TestQuantizedRecommendZeroAllocs pins the quantized hot path to the
// same allocation discipline as the float64 path — the quantized tables
// are precomputed, so flipping the switch must not buy speed with heap
// churn.
func TestQuantizedRecommendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool drops values by design; allocation counts are meaningless")
	}
	_, seqs, eng := defaultFixture(t)
	eng.SetQuantized(true)
	ctx := &rec.Context{User: 2, Window: windowFor(seqs[2]), Omega: fixtureOmega}
	var dst []rec.Scored
	dst = eng.Recommend(ctx, 10, dst[:0])
	if len(dst) == 0 {
		t.Fatal("no recommendations to measure")
	}
	if avg := testing.AllocsPerRun(200, func() {
		dst = eng.Recommend(ctx, 10, dst[:0])
	}); avg != 0 {
		t.Fatalf("quantized Recommend allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		eng.Score(2, dst[0].Item, ctx.Window)
	}); avg != 0 {
		t.Fatalf("quantized Score allocates %.1f/op, want 0", avg)
	}
}

func BenchmarkRecommendQuantized(b *testing.B) {
	_, seqs, eng := defaultFixture(b)
	eng.SetQuantized(true)
	ctx := &rec.Context{User: 2, Window: windowFor(seqs[2]), Omega: fixtureOmega}
	var dst []rec.Scored
	dst = eng.Recommend(ctx, 10, dst[:0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = eng.Recommend(ctx, 10, dst[:0])
	}
}
