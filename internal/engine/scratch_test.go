package engine

import (
	"testing"

	"tsppr/internal/core"
	"tsppr/internal/features"
	"tsppr/internal/linalg"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// smallModel builds the smallest valid model over items distinct items:
// zero-valued parameters (scores all tie at 0; ties break on item id),
// which is all the pool-retention tests need.
func smallModel(t *testing.T, items, windowCap, omega int) *core.Model {
	t.Helper()
	b := features.NewBuilder(items, windowCap, omega)
	s := make(seq.Sequence, items)
	for i := range s {
		s[i] = seq.Item(i)
	}
	b.Add(s)
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	k := 4
	m := &core.Model{
		K: k, F: ex.Dim(), MapType: core.SharedMap,
		U: linalg.NewMatrix(1, k), V: linalg.NewMatrix(items, k),
		A:         []*linalg.Matrix{linalg.NewMatrix(k, ex.Dim())},
		Extractor: ex,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPutScratchShedsOversized pins the helper's contract directly: a
// scratch whose candidate buffer is within maxPooledCands is pooled, one
// past the bound is dropped.
func TestPutScratchShedsOversized(t *testing.T) {
	e := New(smallModel(t, 4, 8, 1))
	small := &scratch{cands: make([]seq.Item, 0, maxPooledCands)}
	if !e.putScratch(small) {
		t.Fatal("scratch within the capacity bound was dropped")
	}
	big := &scratch{cands: make([]seq.Item, 0, maxPooledCands+1)}
	if e.putScratch(big) {
		t.Fatal("oversized scratch was returned to the pool")
	}
}

// TestRecommendShedsOversizedScratch is the end-to-end regression for the
// pool-retention bug: one request whose candidate set exceeds the pooling
// bound must not leave its oversized buffer in the pool. Pre-fix,
// Recommend unconditionally Put the scratch back and the same goroutine's
// next Get observed the pathological capacity forever after.
func TestRecommendShedsOversizedScratch(t *testing.T) {
	old := maxPooledCands
	maxPooledCands = 8
	defer func() { maxPooledCands = old }()

	const items, windowCap = 64, 64
	e := New(smallModel(t, items, windowCap, 1))
	w := seq.NewWindow(windowCap)
	for i := 0; i < items; i++ {
		w.Push(seq.Item(i))
	}
	dst := e.Recommend(&rec.Context{User: 0, Window: w, Omega: 1}, 5, nil)
	if len(dst) == 0 {
		t.Fatal("fixture produced no recommendations; candidate set is empty")
	}
	s := e.pool.Get().(*scratch)
	if cap(s.cands) > maxPooledCands {
		t.Fatalf("oversized scratch retained in pool: cap(cands) = %d > bound %d", cap(s.cands), maxPooledCands)
	}
}
