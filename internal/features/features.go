// Package features implements the paper's four domain-independent
// behavioural features (§4.4) that TS-PPR maps from observable space into
// latent preference space:
//
//   - IP, item quality/popularity: min-max normalized ln(1+n_v) (Eq. 16-17)
//   - IR, item reconsumption ratio: fraction of observations of v that are
//     repeats w.r.t. the time window (Eq. 18)
//   - RE, recency: hyperbolic 1/(t−l_ut(v)) or exponential e^{−(t−l_ut(v))}
//     (Eq. 19-20)
//   - DF, dynamic familiarity: in-window occurrence fraction (Eq. 21)
//
// IP and IR are static — estimated once from the training set; RE and DF
// are dynamic — computed against the live window at recommendation time.
//
// All four are normalized into [0,1] — and, going slightly beyond the
// paper's letter (which it explicitly permits: "the implementations of
// these features can be replaced"), RE and DF are min-max rescaled over
// their *achievable* range for eligible candidates. Raw 1/gap over the
// eligible gaps (Ω, |W|] only spans [1/|W|, 1/(Ω+1)] ≈ [0.01, 0.09], and
// raw count/|W| rarely exceeds 0.15; left unscaled, SGD has to grow their
// weights by an order of magnitude to let them compete with IP/IR, and in
// practice simply ignores them. The Mask type supports the feature
// ablation of paper Fig. 7.
package features

import (
	"fmt"
	"math"

	"tsppr/internal/linalg"
	"tsppr/internal/mathx"
	"tsppr/internal/seq"
)

// Kind enumerates the behavioural features in the paper's order.
type Kind int

const (
	Quality       Kind = iota // IP: item popularity
	Reconsumption             // IR: item reconsumption ratio
	Recency                   // RE: time-decayed recency
	Familiarity               // DF: dynamic familiarity

	NumKinds = 4
)

// String returns the paper's abbreviation for the feature.
func (k Kind) String() string {
	switch k {
	case Quality:
		return "IP"
	case Reconsumption:
		return "IR"
	case Recency:
		return "RE"
	case Familiarity:
		return "DF"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Mask selects a subset of features; bit i corresponds to Kind(i).
type Mask uint8

// AllFeatures selects every feature.
const AllFeatures Mask = 1<<NumKinds - 1

// Without returns the mask with feature k removed (for ablation).
func (m Mask) Without(k Kind) Mask { return m &^ (1 << uint(k)) }

// Has reports whether feature k is selected.
func (m Mask) Has(k Kind) bool { return m&(1<<uint(k)) != 0 }

// Dim returns the number of selected features.
func (m Mask) Dim() int {
	n := 0
	for k := Kind(0); k < NumKinds; k++ {
		if m.Has(k) {
			n++
		}
	}
	return n
}

// Kinds returns the selected kinds in ascending order.
func (m Mask) Kinds() []Kind {
	out := make([]Kind, 0, NumKinds)
	for k := Kind(0); k < NumKinds; k++ {
		if m.Has(k) {
			out = append(out, k)
		}
	}
	return out
}

// RecencyKind selects the decay law of the recency feature.
type RecencyKind int

const (
	// Hyperbolic is 1/(t−l), the paper's default (found superior in its
	// reference [14]).
	Hyperbolic RecencyKind = iota
	// Exponential is e^{−(t−l)} (paper Eq. 20).
	Exponential
)

func (r RecencyKind) String() string {
	if r == Exponential {
		return "exponential"
	}
	return "hyperbolic"
}

// Builder accumulates training sequences and produces an Extractor with
// the static feature tables estimated.
type Builder struct {
	windowCap int
	omega     int
	freq      []int // n_v
	repeatObs []int // observations of v that were repeats
	totalObs  []int // all observations of v at scanned positions
}

// NewBuilder returns a builder for item IDs below numItems (tables grow
// automatically if larger IDs appear). omega is the minimum gap Ω the
// extractor's recency feature will be normalized against.
func NewBuilder(numItems, windowCap, omega int) *Builder {
	if windowCap <= 0 {
		panic("features: NewBuilder windowCap <= 0")
	}
	if omega < 0 || omega >= windowCap {
		panic("features: NewBuilder omega out of [0, windowCap)")
	}
	if numItems < 0 {
		numItems = 0
	}
	b := &Builder{
		windowCap: windowCap,
		omega:     omega,
		freq:      make([]int, numItems),
		repeatObs: make([]int, numItems),
		totalObs:  make([]int, numItems),
	}
	return b
}

func (b *Builder) ensure(v seq.Item) {
	need := int(v) + 1
	if need <= len(b.freq) {
		return
	}
	nf := make([]int, need)
	copy(nf, b.freq)
	b.freq = nf
	nr := make([]int, need)
	copy(nr, b.repeatObs)
	b.repeatObs = nr
	nt := make([]int, need)
	copy(nt, b.totalObs)
	b.totalObs = nt
}

// Add accumulates one user's training sequence into the static tables.
// Every position contributes to item frequency; every position t ≥ 1
// contributes a (repeat | novel) observation against the window of the
// preceding min(t, |W|) events, per Eq. 18.
func (b *Builder) Add(s seq.Sequence) {
	w := seq.NewWindow(b.windowCap)
	for _, v := range s {
		b.ensure(v)
		b.freq[v]++
		if w.T() > 0 {
			b.totalObs[v]++
			if w.Contains(v) {
				b.repeatObs[v]++
			}
		}
		w.Push(v)
	}
}

// Build finalizes the static tables into an immutable Extractor.
func (b *Builder) Build(mask Mask, recency RecencyKind) *Extractor {
	if mask == 0 {
		panic("features: Build with empty feature mask")
	}
	n := len(b.freq)
	quality := make([]float64, n)
	lo, hi := math.Inf(1), math.Inf(-1)
	for v, f := range b.freq {
		if f == 0 {
			continue
		}
		q := math.Log1p(float64(f))
		quality[v] = q
		if q < lo {
			lo = q
		}
		if q > hi {
			hi = q
		}
	}
	if lo > hi { // no observed item at all
		lo, hi = 0, 0
	}
	for v, f := range b.freq {
		if f == 0 {
			quality[v] = 0
			continue
		}
		quality[v] = mathx.Scale01(quality[v], lo, hi)
	}
	reratio := make([]float64, n)
	for v := range reratio {
		if b.totalObs[v] > 0 {
			reratio[v] = float64(b.repeatObs[v]) / float64(b.totalObs[v])
		}
	}
	return &Extractor{
		mask:      mask,
		kinds:     mask.Kinds(),
		recency:   recency,
		windowCap: b.windowCap,
		omega:     b.omega,
		quality:   quality,
		reratio:   reratio,
	}
}

// Extractor computes behavioural feature vectors f_uvt for (item, window)
// pairs. It is immutable after Build and safe for concurrent use.
type Extractor struct {
	mask      Mask
	kinds     []Kind
	recency   RecencyKind
	windowCap int
	omega     int
	quality   []float64
	reratio   []float64
}

// Dim returns the feature dimension F (the number of selected features).
func (e *Extractor) Dim() int { return len(e.kinds) }

// Mask returns the active feature mask.
func (e *Extractor) Mask() Mask { return e.mask }

// RecencyKind returns the configured recency decay law.
func (e *Extractor) RecencyKind() RecencyKind { return e.recency }

// Quality returns the static IP feature of v (0 for unseen items).
func (e *Extractor) Quality(v seq.Item) float64 {
	if int(v) >= len(e.quality) || v < 0 {
		return 0
	}
	return e.quality[v]
}

// ReconsumptionRatio returns the static IR feature of v (0 for unseen
// items).
func (e *Extractor) ReconsumptionRatio(v seq.Item) float64 {
	if int(v) >= len(e.reratio) || v < 0 {
		return 0
	}
	return e.reratio[v]
}

// RecencyOf returns the RE feature of v against window w: the decayed gap
// min-max rescaled over the eligible gap range (Ω, |W|], or 0 when v is
// not in the window. Gaps at or below Ω clamp to 1, gaps at |W| to 0.
func (e *Extractor) RecencyOf(v seq.Item, w *seq.Window) float64 {
	gap, ok := w.Gap(v)
	if !ok {
		return 0
	}
	decay := func(g float64) float64 {
		if e.recency == Exponential {
			return math.Exp(-g)
		}
		return 1 / g
	}
	lo := decay(float64(e.windowCap))
	hi := decay(float64(e.omega + 1))
	return mathx.Scale01(decay(float64(gap)), lo, hi)
}

// FamiliarityOf returns the DF feature of v against window w: the item's
// occurrence count normalized by the window's maximum occurrence count, so
// the most familiar item always scores 1 (raw count/|W|, the paper's
// Eq. 21, rarely exceeds 0.15 and would be numerically inert).
func (e *Extractor) FamiliarityOf(v seq.Item, w *seq.Window) float64 {
	max := w.MaxCount()
	if max == 0 {
		return 0
	}
	return float64(w.Count(v)) / float64(max)
}

// Value returns the single feature k for item v against window w.
func (e *Extractor) Value(k Kind, v seq.Item, w *seq.Window) float64 {
	switch k {
	case Quality:
		return e.Quality(v)
	case Reconsumption:
		return e.ReconsumptionRatio(v)
	case Recency:
		return e.RecencyOf(v, w)
	case Familiarity:
		return e.FamiliarityOf(v, w)
	default:
		panic(fmt.Sprintf("features: unknown kind %d", int(k)))
	}
}

// Extract writes f_uvt for item v against window w into dst, which must
// have length Dim(). It returns dst.
func (e *Extractor) Extract(dst linalg.Vector, v seq.Item, w *seq.Window) linalg.Vector {
	if len(dst) != len(e.kinds) {
		panic(fmt.Sprintf("features: Extract dst length %d != dim %d", len(dst), len(e.kinds)))
	}
	for i, k := range e.kinds {
		dst[i] = e.Value(k, v, w)
	}
	return dst
}

// Tables exposes the static feature tables for serialization. The returned
// slices are the extractor's own storage; callers must treat them as
// read-only.
func (e *Extractor) Tables() (quality, reratio []float64) {
	return e.quality, e.reratio
}

// FromTables reconstructs an extractor from previously serialized static
// tables. quality and reratio must have equal length.
func FromTables(mask Mask, recency RecencyKind, windowCap, omega int, quality, reratio []float64) (*Extractor, error) {
	if mask == 0 {
		return nil, fmt.Errorf("features: FromTables with empty mask")
	}
	if len(quality) != len(reratio) {
		return nil, fmt.Errorf("features: table length mismatch %d vs %d", len(quality), len(reratio))
	}
	if windowCap <= 0 || omega < 0 || omega >= windowCap {
		return nil, fmt.Errorf("features: bad window/omega %d/%d", windowCap, omega)
	}
	return &Extractor{
		mask:      mask,
		kinds:     mask.Kinds(),
		recency:   recency,
		windowCap: windowCap,
		omega:     omega,
		quality:   quality,
		reratio:   reratio,
	}, nil
}

// WindowCap returns the window capacity the extractor normalizes against.
func (e *Extractor) WindowCap() int { return e.windowCap }

// Omega returns the minimum gap the extractor normalizes against.
func (e *Extractor) Omega() int { return e.omega }
