package features_test

import (
	"fmt"

	"tsppr/internal/features"
	"tsppr/internal/linalg"
	"tsppr/internal/seq"
)

// Example extracts the paper's four behavioural features for an item that
// has been consumed often and recently.
func Example() {
	b := features.NewBuilder(4, 6, 1)
	b.Add(seq.Sequence{0, 1, 0, 2, 0, 1, 0, 3})
	ex := b.Build(features.AllFeatures, features.Hyperbolic)

	w := seq.NewWindow(6)
	for _, v := range []seq.Item{0, 1, 0, 2, 0, 3} {
		w.Push(v)
	}
	f := ex.Extract(linalg.NewVector(4), 0, w)
	fmt.Printf("IP=%.2f IR=%.2f RE=%.2f DF=%.2f\n", f[0], f[1], f[2], f[3])

	// Ablation mask: drop recency, keep the other three.
	mask := features.AllFeatures.Without(features.Recency)
	fmt.Println("masked dims:", mask.Dim(), mask.Kinds())
	// Output:
	// IP=1.00 IR=1.00 RE=1.00 DF=1.00
	// masked dims: 3 [IP IR DF]
}
