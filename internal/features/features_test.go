package features

import (
	"math"
	"testing"
	"testing/quick"

	"tsppr/internal/linalg"
	"tsppr/internal/rngutil"
	"tsppr/internal/seq"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{Quality: "IP", Reconsumption: "IR", Recency: "RE", Familiarity: "DF"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}

func TestMask(t *testing.T) {
	if AllFeatures.Dim() != 4 {
		t.Fatalf("AllFeatures.Dim = %d", AllFeatures.Dim())
	}
	m := AllFeatures.Without(Recency)
	if m.Has(Recency) || !m.Has(Quality) || m.Dim() != 3 {
		t.Fatal("Without broken")
	}
	kinds := m.Kinds()
	if len(kinds) != 3 || kinds[0] != Quality || kinds[1] != Reconsumption || kinds[2] != Familiarity {
		t.Fatalf("Kinds = %v", kinds)
	}
}

func TestRecencyKindString(t *testing.T) {
	if Hyperbolic.String() != "hyperbolic" || Exponential.String() != "exponential" {
		t.Fatal("RecencyKind strings wrong")
	}
}

// buildTiny builds an extractor over two short sequences with window 4.
func buildTiny(t *testing.T, mask Mask, rk RecencyKind) *Extractor {
	t.Helper()
	b := NewBuilder(10, 4, 1)
	b.Add(seq.Sequence{0, 1, 0, 2, 0})
	b.Add(seq.Sequence{3, 3, 3})
	return b.Build(mask, rk)
}

func TestQualityNormalization(t *testing.T) {
	ex := buildTiny(t, AllFeatures, Hyperbolic)
	// Frequencies: item0=3, item1=1, item2=1, item3=3. Max q for items 0,3;
	// min for 1,2.
	if got := ex.Quality(0); got != 1 {
		t.Errorf("Quality(0) = %v, want 1", got)
	}
	if got := ex.Quality(1); got != 0 {
		t.Errorf("Quality(1) = %v, want 0", got)
	}
	if got := ex.Quality(9); got != 0 {
		t.Errorf("Quality(unseen) = %v", got)
	}
	if got := ex.Quality(-1); got != 0 {
		t.Errorf("Quality(-1) = %v", got)
	}
}

func TestReconsumptionRatio(t *testing.T) {
	ex := buildTiny(t, AllFeatures, Hyperbolic)
	// Sequence {0,1,0,2,0}: observations after t=0:
	//  t1: 1 novel; t2: 0 repeat; t3: 2 novel; t4: 0 repeat.
	// Item 0: 2 obs, 2 repeats → 1.0. Items 1,2: 1 obs, 0 repeats → 0.
	if got := ex.ReconsumptionRatio(0); got != 1 {
		t.Errorf("IR(0) = %v", got)
	}
	if got := ex.ReconsumptionRatio(1); got != 0 {
		t.Errorf("IR(1) = %v", got)
	}
	// Sequence {3,3,3}: t1 repeat, t2 repeat → 2/2 = 1.
	if got := ex.ReconsumptionRatio(3); got != 1 {
		t.Errorf("IR(3) = %v", got)
	}
	if got := ex.ReconsumptionRatio(7); got != 0 {
		t.Errorf("IR(unseen) = %v", got)
	}
}

func TestRecencyNormalization(t *testing.T) {
	b := NewBuilder(10, 10, 2) // W=10, Ω=2
	b.Add(seq.Sequence{0, 1, 2})
	ex := b.Build(AllFeatures, Hyperbolic)

	w := seq.NewWindow(10)
	for _, v := range []seq.Item{5, 1, 2, 3, 4, 6, 7, 8, 9, 0} {
		w.Push(v)
	}
	// Gap of item 0 is 1 (≤ Ω) → clamps to 1.
	if got := ex.RecencyOf(0, w); got != 1 {
		t.Errorf("RecencyOf gap-1 = %v, want 1 (clamped)", got)
	}
	// Gap of item 5 is 10 == |W| → 0.
	if got := ex.RecencyOf(5, w); got != 0 {
		t.Errorf("RecencyOf gap-|W| = %v, want 0", got)
	}
	// Absent item → 0.
	if got := ex.RecencyOf(42, w); got != 0 {
		t.Errorf("RecencyOf absent = %v", got)
	}
	// Monotone decreasing in gap within the eligible range.
	prev := 2.0
	for _, item := range []seq.Item{9, 8, 7, 6, 4, 3, 2, 1} {
		got := ex.RecencyOf(item, w)
		if got > prev {
			t.Fatalf("recency not decreasing: item %d = %v > %v", item, got, prev)
		}
		prev = got
	}
}

func TestRecencyExponentialOrdering(t *testing.T) {
	b := NewBuilder(10, 10, 2)
	b.Add(seq.Sequence{0})
	ex := b.Build(AllFeatures, Exponential)
	w := seq.NewWindow(10)
	for _, v := range []seq.Item{1, 2, 3, 4, 5, 6, 7, 8, 9, 0} {
		w.Push(v)
	}
	r0 := ex.RecencyOf(0, w) // gap 1 ≤ Ω → clamps to 1
	r6 := ex.RecencyOf(6, w) // gap 5, inside the eligible range
	if r0 != 1 {
		t.Errorf("exp recency gap1 = %v", r0)
	}
	if r6 >= r0 || r6 <= 0 {
		t.Errorf("exp recency at gap 5 = %v, want in (0, 1)", r6)
	}
	if got := ex.RecencyOf(1, w); got != 0 { // gap 10 = |W| → 0
		t.Errorf("exp recency at |W| = %v", got)
	}
}

func TestFamiliarityNormalization(t *testing.T) {
	ex := buildTiny(t, AllFeatures, Hyperbolic)
	w := seq.NewWindow(4)
	for _, v := range []seq.Item{0, 0, 0, 1} {
		w.Push(v)
	}
	if got := ex.FamiliarityOf(0, w); got != 1 {
		t.Errorf("DF of max-count item = %v, want 1", got)
	}
	if got := ex.FamiliarityOf(1, w); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("DF(1) = %v, want 1/3", got)
	}
	if got := ex.FamiliarityOf(9, w); got != 0 {
		t.Errorf("DF absent = %v", got)
	}
	empty := seq.NewWindow(4)
	if got := ex.FamiliarityOf(0, empty); got != 0 {
		t.Errorf("DF on empty window = %v", got)
	}
}

func TestExtractMaskedDims(t *testing.T) {
	ex := buildTiny(t, AllFeatures.Without(Quality), Hyperbolic)
	if ex.Dim() != 3 {
		t.Fatalf("Dim = %d", ex.Dim())
	}
	w := seq.NewWindow(4)
	w.Push(0)
	w.Push(0)
	dst := linalg.NewVector(3)
	ex.Extract(dst, 0, w)
	// Order: IR, RE, DF.
	if dst[0] != ex.ReconsumptionRatio(0) || dst[1] != ex.RecencyOf(0, w) || dst[2] != ex.FamiliarityOf(0, w) {
		t.Fatalf("Extract = %v", dst)
	}
}

func TestExtractPanicsOnWrongLen(t *testing.T) {
	ex := buildTiny(t, AllFeatures, Hyperbolic)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ex.Extract(linalg.NewVector(2), 0, seq.NewWindow(4))
}

func TestAllFeaturesInUnitInterval(t *testing.T) {
	// Property: every extracted feature lies in [0,1] for arbitrary data.
	f := func(raw []uint8, probe uint8) bool {
		if len(raw) < 6 {
			return true
		}
		s := make(seq.Sequence, len(raw))
		for i, r := range raw {
			s[i] = seq.Item(r % 12)
		}
		b := NewBuilder(12, 5, 1)
		b.Add(s)
		ex := b.Build(AllFeatures, Hyperbolic)
		w := seq.NewWindow(5)
		dst := linalg.NewVector(4)
		for _, v := range s {
			ex.Extract(dst, seq.Item(probe%12), w)
			for _, x := range dst {
				if x < 0 || x > 1 || math.IsNaN(x) {
					return false
				}
			}
			w.Push(v)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuilderGrowsTables(t *testing.T) {
	b := NewBuilder(2, 4, 1)
	b.Add(seq.Sequence{100, 100}) // far beyond initial table size
	ex := b.Build(AllFeatures, Hyperbolic)
	if got := ex.Quality(100); got != 0 { // single distinct item → min==max → 0
		t.Errorf("Quality(100) = %v", got)
	}
	if got := ex.ReconsumptionRatio(100); got != 1 {
		t.Errorf("IR(100) = %v", got)
	}
}

func TestBuildPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBuilder(1, 0, 0) },
		func() { NewBuilder(1, 4, 4) },
		func() { NewBuilder(1, 4, -1) },
		func() { NewBuilder(1, 4, 1).Build(0, Hyperbolic) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTablesRoundTrip(t *testing.T) {
	ex := buildTiny(t, AllFeatures, Exponential)
	q, r := ex.Tables()
	got, err := FromTables(ex.Mask(), ex.RecencyKind(), ex.WindowCap(), ex.Omega(), q, r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != ex.Dim() || got.RecencyKind() != ex.RecencyKind() ||
		got.WindowCap() != ex.WindowCap() || got.Omega() != ex.Omega() {
		t.Fatal("round-trip metadata mismatch")
	}
	for v := seq.Item(0); v < 10; v++ {
		if got.Quality(v) != ex.Quality(v) || got.ReconsumptionRatio(v) != ex.ReconsumptionRatio(v) {
			t.Fatalf("table mismatch at item %d", v)
		}
	}
}

func TestFromTablesErrors(t *testing.T) {
	if _, err := FromTables(0, Hyperbolic, 4, 1, nil, nil); err == nil {
		t.Error("empty mask accepted")
	}
	if _, err := FromTables(AllFeatures, Hyperbolic, 4, 1, []float64{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromTables(AllFeatures, Hyperbolic, 0, 0, nil, nil); err == nil {
		t.Error("bad window accepted")
	}
	if _, err := FromTables(AllFeatures, Hyperbolic, 4, 4, nil, nil); err == nil {
		t.Error("omega >= window accepted")
	}
}

func TestValuePanicsOnUnknownKind(t *testing.T) {
	ex := buildTiny(t, AllFeatures, Hyperbolic)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ex.Value(Kind(11), 0, seq.NewWindow(4))
}

func BenchmarkExtract(b *testing.B) {
	rng := rngutil.New(1)
	s := make(seq.Sequence, 4000)
	for i := range s {
		s[i] = seq.Item(rng.Intn(50))
	}
	bld := NewBuilder(50, 100, 10)
	bld.Add(s)
	ex := bld.Build(AllFeatures, Hyperbolic)
	w := seq.NewWindow(100)
	for _, v := range s[:100] {
		w.Push(v)
	}
	dst := linalg.NewVector(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Extract(dst, seq.Item(i%50), w)
	}
}
