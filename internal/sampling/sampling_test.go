package sampling

import (
	"testing"

	"tsppr/internal/features"
	"tsppr/internal/rngutil"
	"tsppr/internal/seq"
)

// fixture builds a small training corpus with guaranteed eligible repeats:
// window 6, Ω=1.
func fixture(t *testing.T) ([]seq.Sequence, *features.Extractor, Config) {
	t.Helper()
	train := []seq.Sequence{
		{0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5, 0, 1},
		{7, 8, 7, 8, 9, 7, 8, 9, 7, 8},
		{6, 6, 6, 6, 6, 6, 6}, // only gap-1 repeats → never eligible
	}
	b := features.NewBuilder(10, 6, 1)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	cfg := Config{WindowCap: 6, Omega: 1, S: 3, Seed: 11}
	return train, ex, cfg
}

func TestBuildBasics(t *testing.T) {
	train, ex, cfg := fixture(t)
	set, err := Build(train, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if set.Dim() != 4 {
		t.Fatalf("Dim = %d", set.Dim())
	}
	if set.NumPositives() == 0 || set.NumPairs() == 0 {
		t.Fatal("no training data extracted")
	}
	if set.NumPairs() > set.NumPositives()*cfg.S {
		t.Fatalf("pairs %d exceed positives×S %d", set.NumPairs(), set.NumPositives()*cfg.S)
	}
	// User 2 (pure gap-1 binger) must contribute nothing.
	if set.NumUsersWithData() != 2 {
		t.Fatalf("users with data = %d, want 2", set.NumUsersWithData())
	}
}

func TestBuildDeterminism(t *testing.T) {
	train, ex, cfg := fixture(t)
	a, _ := Build(train, ex, cfg)
	b, _ := Build(train, ex, cfg)
	if a.NumPairs() != b.NumPairs() || a.NumPositives() != b.NumPositives() {
		t.Fatal("same seed produced different sets")
	}
	pairsA := collect(a)
	pairsB := collect(b)
	for i := range pairsA {
		if pairsA[i].Pos != pairsB[i].Pos || pairsA[i].Neg != pairsB[i].Neg || pairsA[i].T != pairsB[i].T {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func collect(s *Set) []Pair {
	var out []Pair
	s.ForEachPair(func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

func TestPairInvariants(t *testing.T) {
	train, ex, cfg := fixture(t)
	set, _ := Build(train, ex, cfg)
	set.ForEachPair(func(p Pair) bool {
		if p.Pos == p.Neg {
			t.Fatalf("positive equals negative: %+v", p)
		}
		if p.User < 0 || p.User >= len(train) {
			t.Fatalf("bad user %d", p.User)
		}
		if len(p.PosFeat) != 4 || len(p.NegFeat) != 4 {
			t.Fatalf("bad feature dims")
		}
		for _, x := range append(append([]float64{}, p.PosFeat...), p.NegFeat...) {
			if x < 0 || x > 1 {
				t.Fatalf("feature %v out of [0,1]", x)
			}
		}
		// The positive at time T must really be an eligible repeat: replay
		// the window up to T and check.
		w := seq.NewWindow(cfg.WindowCap)
		for _, v := range train[p.User][:p.T] {
			w.Push(v)
		}
		gap, ok := w.Gap(p.Pos)
		if !ok || gap <= cfg.Omega {
			t.Fatalf("positive not an eligible repeat: gap=%d ok=%v", gap, ok)
		}
		nGap, nOK := w.Gap(p.Neg)
		if !nOK || nGap <= cfg.Omega {
			t.Fatalf("negative not an eligible candidate: gap=%d ok=%v", nGap, nOK)
		}
		if train[p.User][p.T] != p.Pos {
			t.Fatalf("positive %d is not the consumption at T=%d", p.Pos, p.T)
		}
		return true
	})
}

func TestNegativesDistinctPerPositive(t *testing.T) {
	train, ex, cfg := fixture(t)
	set, _ := Build(train, ex, cfg)
	// Group pairs by (user, T) and check negative uniqueness.
	type key struct{ u, t int }
	seen := map[key]map[seq.Item]bool{}
	set.ForEachPair(func(p Pair) bool {
		k := key{p.User, p.T}
		if seen[k] == nil {
			seen[k] = map[seq.Item]bool{}
		}
		if seen[k][p.Neg] {
			t.Fatalf("duplicate negative %d for positive at (u=%d,t=%d)", p.Neg, p.User, p.T)
		}
		seen[k][p.Neg] = true
		return true
	})
}

func TestSampleBothModes(t *testing.T) {
	train, ex, cfg := fixture(t)
	set, _ := Build(train, ex, cfg)
	rng := rngutil.New(3)
	userCounts := map[int]int{}
	for i := 0; i < 2000; i++ {
		p, ok := set.Sample(rng)
		if !ok {
			t.Fatal("Sample returned !ok on non-empty set")
		}
		userCounts[p.User]++
	}
	// User-first sampling: users 0 and 1 should be roughly balanced.
	if userCounts[2] != 0 {
		t.Fatal("user without data was sampled")
	}
	ratio := float64(userCounts[0]) / float64(userCounts[1]+1)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("user-first sampling imbalance: %v", userCounts)
	}

	for i := 0; i < 500; i++ {
		p, ok := set.SamplePairUniform(rng)
		if !ok {
			t.Fatal("SamplePairUniform !ok")
		}
		if p.User == 2 {
			t.Fatal("user without positives sampled")
		}
		if p.Pos == p.Neg {
			t.Fatal("pos == neg")
		}
	}
}

func TestSampleEmptySet(t *testing.T) {
	_, ex, cfg := fixture(t)
	set, err := Build([]seq.Sequence{{1, 2, 3}}, ex, cfg) // too short for any event
	if err != nil {
		t.Fatal(err)
	}
	rng := rngutil.New(1)
	if _, ok := set.Sample(rng); ok {
		t.Fatal("Sample on empty set returned ok")
	}
	if _, ok := set.SamplePairUniform(rng); ok {
		t.Fatal("SamplePairUniform on empty set returned ok")
	}
	if got := set.SmallBatch(0.1); len(got) != 0 {
		t.Fatalf("SmallBatch on empty set = %d pairs", len(got))
	}
}

func TestSmallBatch(t *testing.T) {
	train, ex, cfg := fixture(t)
	set, _ := Build(train, ex, cfg)
	batch := set.SmallBatch(0.1)
	if len(batch) == 0 {
		t.Fatal("empty small batch")
	}
	// Every contributing user appears at least once.
	users := map[int]bool{}
	for _, p := range batch {
		users[p.User] = true
	}
	if len(users) != set.NumUsersWithData() {
		t.Fatalf("small batch covers %d users, want %d", len(users), set.NumUsersWithData())
	}
	// Full fraction returns everything.
	if got := len(set.SmallBatch(1.0)); got != set.NumPairs() {
		t.Fatalf("SmallBatch(1.0) = %d pairs, want %d", got, set.NumPairs())
	}
}

func TestSmallBatchPanics(t *testing.T) {
	train, ex, cfg := fixture(t)
	set, _ := Build(train, ex, cfg)
	for _, frac := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SmallBatch(%v) should panic", frac)
				}
			}()
			set.SmallBatch(frac)
		}()
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{WindowCap: 0, Omega: 0, S: 1},
		{WindowCap: 5, Omega: 5, S: 1},
		{WindowCap: 5, Omega: -1, S: 1},
		{WindowCap: 5, Omega: 1, S: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := (Config{WindowCap: 5, Omega: 1, S: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestUserOf(t *testing.T) {
	train, ex, cfg := fixture(t)
	set, _ := Build(train, ex, cfg)
	set.ForEachPair(func(p Pair) bool {
		// Cross-check: the T-th event of that user's sequence is Pos.
		if train[p.User][p.T] != p.Pos {
			t.Fatalf("userOf mapping broken: user %d t %d", p.User, p.T)
		}
		return true
	})
}

func TestForEachPairEarlyStop(t *testing.T) {
	train, ex, cfg := fixture(t)
	set, _ := Build(train, ex, cfg)
	n := 0
	set.ForEachPair(func(Pair) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rngutil.New(9)
	train := make([]seq.Sequence, 20)
	for u := range train {
		s := make(seq.Sequence, 500)
		for i := range s {
			s[i] = seq.Item(rng.Intn(40))
		}
		train[u] = s
	}
	bld := features.NewBuilder(40, 100, 10)
	for _, s := range train {
		bld.Add(s)
	}
	ex := bld.Build(features.AllFeatures, features.Hyperbolic)
	cfg := Config{WindowCap: 100, Omega: 10, S: 10, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(train, ex, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
