package sampling

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"tsppr/internal/seq"
)

// Pre-sampled training sets are the expensive intermediate of the paper's
// pipeline (§4.2.2 calls out the pre-computation cost of the negatives'
// features). Persisting them lets a sweep over training hyper-parameters
// (λ, γ, K, learning rate — everything that doesn't change the sampling)
// reuse one sampled set instead of replaying every sequence per run.
//
// Format: little-endian binary with a versioned magic, the flat
// structure-of-arrays written directly.
const setMagic = "TSPPRsetv1\n"

// Write serializes the set to w.
func (s *Set) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, setMagic); err != nil {
		return fmt.Errorf("sampling: write magic: %w", err)
	}
	werr := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	ints := []int64{
		int64(s.dim),
		int64(len(s.posItem)),
		int64(len(s.negItem)),
		int64(len(s.userOff) - 1),
		int64(len(s.withPos)),
		int64(s.pairCount),
	}
	for _, v := range ints {
		if err := werr(v); err != nil {
			return fmt.Errorf("sampling: write header: %w", err)
		}
	}
	for _, blk := range []any{s.posItem, s.posT, s.posFeat, s.negItem, s.negFeat, s.negOff, s.userOff, s.withPos} {
		if err := werr(blk); err != nil {
			return fmt.Errorf("sampling: write body: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSet deserializes a set written by Write.
func ReadSet(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(setMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sampling: read magic: %w", err)
	}
	if string(magic) != setMagic {
		return nil, fmt.Errorf("sampling: bad set magic %q", magic)
	}
	var dim, nPos, nNeg, nUsers, nWith, pairs int64
	for _, p := range []*int64{&dim, &nPos, &nNeg, &nUsers, &nWith, &pairs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("sampling: read header: %w", err)
		}
	}
	const maxPlausible = 1 << 30
	if dim <= 0 || dim > 64 ||
		nPos < 0 || nPos > maxPlausible ||
		nNeg < 0 || nNeg > maxPlausible ||
		nUsers < 0 || nUsers > maxPlausible ||
		nWith < 0 || nWith > nUsers ||
		pairs < 0 || pairs > maxPlausible {
		return nil, fmt.Errorf("sampling: implausible header dim=%d pos=%d neg=%d users=%d", dim, nPos, nNeg, nUsers)
	}
	s := &Set{
		dim:       int(dim),
		posItem:   make([]seq.Item, nPos),
		posT:      make([]int32, nPos),
		posFeat:   make([]float64, nPos*dim),
		negItem:   make([]seq.Item, nNeg),
		negFeat:   make([]float64, nNeg*dim),
		negOff:    make([]int32, nPos+1),
		userOff:   make([]int32, nUsers+1),
		withPos:   make([]int32, nWith),
		pairCount: int(pairs),
	}
	for _, blk := range []any{s.posItem, s.posT, s.posFeat, s.negItem, s.negFeat, s.negOff, s.userOff, s.withPos} {
		if err := binary.Read(br, binary.LittleEndian, blk); err != nil {
			return nil, fmt.Errorf("sampling: read body: %w", err)
		}
	}
	if err := s.validateLoaded(); err != nil {
		return nil, err
	}
	return s, nil
}

// validateLoaded sanity-checks internal invariants of a deserialized set
// so later indexing cannot go out of bounds.
func (s *Set) validateLoaded() error {
	nPos := int32(len(s.posItem))
	nNeg := int32(len(s.negItem))
	if s.negOff[0] != 0 || s.negOff[len(s.negOff)-1] != nNeg {
		return fmt.Errorf("sampling: corrupt negative offsets")
	}
	for i := 1; i < len(s.negOff); i++ {
		if s.negOff[i] < s.negOff[i-1] {
			return fmt.Errorf("sampling: negative offsets not monotone at %d", i)
		}
	}
	if s.userOff[0] != 0 || s.userOff[len(s.userOff)-1] != nPos {
		return fmt.Errorf("sampling: corrupt user offsets")
	}
	for i := 1; i < len(s.userOff); i++ {
		if s.userOff[i] < s.userOff[i-1] {
			return fmt.Errorf("sampling: user offsets not monotone at %d", i)
		}
	}
	numUsers := int32(len(s.userOff) - 1)
	for _, u := range s.withPos {
		if u < 0 || u >= numUsers {
			return fmt.Errorf("sampling: withPos user %d out of range", u)
		}
	}
	for _, f := range s.posFeat {
		if math.IsNaN(f) {
			return fmt.Errorf("sampling: NaN positive feature")
		}
	}
	for _, f := range s.negFeat {
		if math.IsNaN(f) {
			return fmt.Errorf("sampling: NaN negative feature")
		}
	}
	return nil
}

// SaveFile writes the set to path, creating or truncating it.
func (s *Set) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sampling: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return s.Write(f)
}

// LoadFile reads a set from path.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sampling: %w", err)
	}
	defer f.Close()
	return ReadSet(f)
}
