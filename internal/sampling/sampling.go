// Package sampling builds the pre-sampled training set D of quadruples
// (u, v_i, v_j, t) described in paper §4.2.2 and Fig. 3.
//
// For every training position whose incoming consumption is an *eligible*
// repeat (present in the window, last consumed more than Ω steps ago) the
// incoming item is a positive sample; S negative samples are drawn without
// replacement from the remaining window candidates. The behavioural
// feature vectors of both sides are extracted immediately — against the
// exact window state at that position — and stored, so that training never
// needs to replay sequences. This is the paper's pre-sample strategy that
// trades a bounded information loss for tractable training cost.
//
// The stored layout is flat (structure-of-arrays) because a training set
// can hold millions of pairs: per-pair pointers would triple memory and
// defeat the cache.
package sampling

import (
	"fmt"

	"tsppr/internal/features"
	"tsppr/internal/linalg"
	"tsppr/internal/rngutil"
	"tsppr/internal/seq"
)

// Config parameterizes training-set construction.
type Config struct {
	WindowCap int    // |W|, the time-window capacity
	Omega     int    // Ω, the minimum gap; eligible repeats have gap > Ω
	S         int    // negative samples per positive
	Seed      uint64 // sampling seed
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.WindowCap <= 0:
		return fmt.Errorf("sampling: WindowCap %d <= 0", c.WindowCap)
	case c.Omega < 0 || c.Omega >= c.WindowCap:
		return fmt.Errorf("sampling: Omega %d out of [0, %d)", c.Omega, c.WindowCap)
	case c.S <= 0:
		return fmt.Errorf("sampling: S %d <= 0", c.S)
	}
	return nil
}

// Pair is one training quadruple (u, v_i, v_j, t) with its pre-extracted
// feature vectors. The vectors alias the set's internal storage and must
// not be mutated.
type Pair struct {
	User     int
	T        int
	Pos, Neg seq.Item
	PosFeat  linalg.Vector
	NegFeat  linalg.Vector
}

// Set is the immutable pre-sampled training set.
type Set struct {
	dim int // feature dimension F

	// Positives, grouped contiguously by user.
	posItem []seq.Item
	posT    []int32
	posFeat []float64 // len(posItem) * dim

	// Negatives, grouped contiguously by positive.
	negItem []seq.Item
	negFeat []float64 // len(negItem) * dim
	negOff  []int32   // len(posItem)+1; negatives of positive p are [negOff[p], negOff[p+1])

	userOff   []int32 // len(numUsers)+1; positives of user u are [userOff[u], userOff[u+1])
	withPos   []int32 // users that have at least one positive
	pairCount int
}

// Build scans every user's training sequence and constructs the training
// set. Deterministic in cfg.Seed.
func Build(train []seq.Sequence, ex *features.Extractor, cfg Config) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dim := ex.Dim()
	s := &Set{dim: dim, negOff: []int32{0}, userOff: make([]int32, 1, len(train)+1)}
	rng := rngutil.New(cfg.Seed)
	feat := linalg.NewVector(dim)
	var cands []seq.Item
	for u, su := range train {
		userRNG := rng.Split()
		before := len(s.posItem)
		seq.Scan(su, cfg.WindowCap, func(ev seq.Event, w *seq.Window) bool {
			if !ev.Eligible(cfg.Omega) {
				return true
			}
			cands = w.Candidates(cfg.Omega, cands[:0])
			// Drop the positive itself from the negative pool.
			n := 0
			for _, c := range cands {
				if c != ev.Next {
					cands[n] = c
					n++
				}
			}
			cands = cands[:n]
			if len(cands) == 0 {
				return true // nothing to contrast against
			}
			s.posItem = append(s.posItem, ev.Next)
			s.posT = append(s.posT, int32(ev.T))
			ex.Extract(feat, ev.Next, w)
			s.posFeat = append(s.posFeat, feat...)
			// Partial Fisher-Yates: the first min(S, n) slots become a
			// uniform sample without replacement.
			take := cfg.S
			if take > len(cands) {
				take = len(cands)
			}
			for i := 0; i < take; i++ {
				j := i + userRNG.Intn(len(cands)-i)
				cands[i], cands[j] = cands[j], cands[i]
				s.negItem = append(s.negItem, cands[i])
				ex.Extract(feat, cands[i], w)
				s.negFeat = append(s.negFeat, feat...)
			}
			s.negOff = append(s.negOff, int32(len(s.negItem)))
			s.pairCount += take
			return true
		})
		s.userOff = append(s.userOff, int32(len(s.posItem)))
		if len(s.posItem) > before {
			s.withPos = append(s.withPos, int32(u))
		}
	}
	return s, nil
}

// Dim returns the feature dimension F.
func (s *Set) Dim() int { return s.dim }

// NumPositives returns the number of positive samples (eligible repeat
// events with at least one negative).
func (s *Set) NumPositives() int { return len(s.posItem) }

// NumPairs returns |D|, the total number of training quadruples.
func (s *Set) NumPairs() int { return s.pairCount }

// NumUsersWithData returns the number of users contributing at least one
// positive.
func (s *Set) NumUsersWithData() int { return len(s.withPos) }

// posFeatAt returns the feature vector of positive p as a view.
func (s *Set) posFeatAt(p int) linalg.Vector {
	return linalg.Vector(s.posFeat[p*s.dim : (p+1)*s.dim])
}

// negFeatAt returns the feature vector of negative slot i as a view.
func (s *Set) negFeatAt(i int) linalg.Vector {
	return linalg.Vector(s.negFeat[i*s.dim : (i+1)*s.dim])
}

// Sample draws one training quadruple following Algorithm 1's hierarchy:
// a uniform user among those with data, then a uniform positive of that
// user, then a uniform pre-sampled negative of that positive. It returns
// false when the set is empty.
func (s *Set) Sample(rng *rngutil.RNG) (Pair, bool) {
	if len(s.withPos) == 0 {
		return Pair{}, false
	}
	u := int(s.withPos[rng.Intn(len(s.withPos))])
	lo, hi := int(s.userOff[u]), int(s.userOff[u+1])
	return s.pairAt(lo+rng.Intn(hi-lo), rng), true
}

// SamplePairUniform draws a training quadruple uniformly over all
// positives (so users contribute in proportion to their repeat activity,
// matching how MaAP weighs them at evaluation time), then a uniform
// pre-sampled negative. It returns false when the set is empty.
func (s *Set) SamplePairUniform(rng *rngutil.RNG) (Pair, bool) {
	if len(s.posItem) == 0 {
		return Pair{}, false
	}
	return s.pairAt(rng.Intn(len(s.posItem)), rng), true
}

// userOf locates the owner of positive p via binary search over the user
// offsets.
func (s *Set) userOf(p int) int {
	lo, hi := 0, len(s.userOff)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s.userOff[mid+1]) <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (s *Set) pairAt(p int, rng *rngutil.RNG) Pair {
	nlo, nhi := int(s.negOff[p]), int(s.negOff[p+1])
	ni := nlo + rng.Intn(nhi-nlo)
	return Pair{
		User:    s.userOf(p),
		T:       int(s.posT[p]),
		Pos:     s.posItem[p],
		Neg:     s.negItem[ni],
		PosFeat: s.posFeatAt(p),
		NegFeat: s.negFeatAt(ni),
	}
}

// SmallBatch returns the convergence-check batch: for every user, the
// first frac of their training pairs (at least one pair per contributing
// user), in deterministic order. This mirrors the paper's "each user's
// first 10% training quadruples" small-batch approximation of J.
func (s *Set) SmallBatch(frac float64) []Pair {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("sampling: SmallBatch frac %v out of (0,1]", frac))
	}
	var out []Pair
	for _, u32 := range s.withPos {
		u := int(u32)
		lo, hi := int(s.userOff[u]), int(s.userOff[u+1])
		// Count this user's pairs, then take the leading frac of them.
		pairs := int(s.negOff[hi] - s.negOff[lo])
		want := int(float64(pairs) * frac)
		if want < 1 {
			want = 1
		}
		taken := 0
		for p := lo; p < hi && taken < want; p++ {
			for ni := int(s.negOff[p]); ni < int(s.negOff[p+1]) && taken < want; ni++ {
				out = append(out, Pair{
					User:    u,
					T:       int(s.posT[p]),
					Pos:     s.posItem[p],
					Neg:     s.negItem[ni],
					PosFeat: s.posFeatAt(p),
					NegFeat: s.negFeatAt(ni),
				})
				taken++
			}
		}
	}
	return out
}

// ForEachPair invokes fn for every training quadruple in deterministic
// order. Used by tests and the resampling ablation.
func (s *Set) ForEachPair(fn func(Pair) bool) {
	for _, u32 := range s.withPos {
		u := int(u32)
		for p := int(s.userOff[u]); p < int(s.userOff[u+1]); p++ {
			for ni := int(s.negOff[p]); ni < int(s.negOff[p+1]); ni++ {
				pair := Pair{
					User:    u,
					T:       int(s.posT[p]),
					Pos:     s.posItem[p],
					Neg:     s.negItem[ni],
					PosFeat: s.posFeatAt(p),
					NegFeat: s.negFeatAt(ni),
				}
				if !fn(pair) {
					return
				}
			}
		}
	}
}
