package sampling

import (
	"bytes"
	"path/filepath"
	"testing"

	"tsppr/internal/rngutil"
)

func TestSetRoundTrip(t *testing.T) {
	train, ex, cfg := fixture(t)
	orig, err := Build(train, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != orig.Dim() || got.NumPositives() != orig.NumPositives() ||
		got.NumPairs() != orig.NumPairs() || got.NumUsersWithData() != orig.NumUsersWithData() {
		t.Fatal("summary stats differ after round trip")
	}
	// Pair-by-pair equality in deterministic order.
	a, b := collect(orig), collect(got)
	if len(a) != len(b) {
		t.Fatalf("pair counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].User != b[i].User || a[i].T != b[i].T || a[i].Pos != b[i].Pos || a[i].Neg != b[i].Neg {
			t.Fatalf("pair %d differs", i)
		}
		for k := range a[i].PosFeat {
			if a[i].PosFeat[k] != b[i].PosFeat[k] || a[i].NegFeat[k] != b[i].NegFeat[k] {
				t.Fatalf("pair %d features differ", i)
			}
		}
	}
	// Sampling from the loaded set must behave identically.
	r1, r2 := rngutil.New(5), rngutil.New(5)
	for i := 0; i < 200; i++ {
		p1, ok1 := orig.Sample(r1)
		p2, ok2 := got.Sample(r2)
		if ok1 != ok2 || p1.Pos != p2.Pos || p1.Neg != p2.Neg || p1.User != p2.User {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestSetFileRoundTrip(t *testing.T) {
	train, ex, cfg := fixture(t)
	orig, err := Build(train, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "set.bin")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != orig.NumPairs() {
		t.Fatal("file round trip lost pairs")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadSetRejectsGarbage(t *testing.T) {
	if _, err := ReadSet(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadSet(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
	// Valid magic, hostile header.
	blob := append([]byte(setMagic), make([]byte, 48)...)
	// dim = 0 → implausible.
	if _, err := ReadSet(bytes.NewReader(blob)); err == nil {
		t.Fatal("zero-dim header accepted")
	}
}

func TestReadSetCorruptionDetected(t *testing.T) {
	train, ex, cfg := fixture(t)
	orig, err := Build(train, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Truncations must fail cleanly, never panic.
	for _, cut := range []int{len(blob) / 4, len(blob) / 2, len(blob) - 3} {
		if _, err := ReadSet(bytes.NewReader(blob[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// corrupt returns a serialized set with the byte at off XORed.
func corrupt(t *testing.T, s *Set, off int, x byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	blob[off] ^= x
	return blob
}

func TestReadSetValidatesOffsets(t *testing.T) {
	train, ex, cfg := fixture(t)
	orig, err := Build(train, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip many single bytes across the body; every outcome must be either
	// a clean error or a set that satisfies the loaded invariants (the
	// feature floats tolerate bit flips — they stay valid floats unless
	// they become NaN, which validateLoaded rejects).
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	for off := len(setMagic); off < n; off += 7 {
		blob := corrupt(t, orig, off, 0xff)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at offset %d: %v", off, r)
				}
			}()
			if got, err := ReadSet(bytes.NewReader(blob)); err == nil {
				// Loaded despite corruption: invariants must still hold,
				// so sampling cannot crash.
				rng := rngutil.New(1)
				for i := 0; i < 50; i++ {
					got.Sample(rng)
					got.SamplePairUniform(rng)
				}
			}
		}()
	}
}
