package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSigmoidKnownValues(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, 0.5},
		{math.Inf(1), 1},
		{math.Inf(-1), 0},
		{1, 1 / (1 + math.Exp(-1))},
		{-1, 1 - 1/(1+math.Exp(-1))},
	}
	for _, c := range cases {
		if got := Sigmoid(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Sigmoid(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSigmoidNoOverflow(t *testing.T) {
	for _, x := range []float64{-1e308, -750, -40, 40, 750, 1e308} {
		got := Sigmoid(x)
		if !IsFinite(got) || got < 0 || got > 1 {
			t.Errorf("Sigmoid(%v) = %v out of [0,1]", x, got)
		}
	}
}

func TestSigmoidSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return math.Abs(Sigmoid(x)+Sigmoid(-x)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmoidMonotone(t *testing.T) {
	prev := -1.0
	for x := -30.0; x <= 30; x += 0.25 {
		got := Sigmoid(x)
		if got < prev {
			t.Fatalf("Sigmoid not monotone at %v: %v < %v", x, got, prev)
		}
		prev = got
	}
}

func TestLogSigmoid(t *testing.T) {
	for _, x := range []float64{-700, -30, -1, 0, 1, 30, 700} {
		got := LogSigmoid(x)
		if !IsFinite(got) {
			t.Errorf("LogSigmoid(%v) = %v not finite", x, got)
		}
		if got > 0 {
			t.Errorf("LogSigmoid(%v) = %v > 0", x, got)
		}
		if x >= -30 && x <= 30 {
			want := math.Log(Sigmoid(x))
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("LogSigmoid(%v) = %v, want %v", x, got, want)
			}
		}
	}
}

func TestLogSigmoidDeepNegativeTail(t *testing.T) {
	// For very negative x, ln σ(x) ≈ x.
	if got := LogSigmoid(-500); math.Abs(got-(-500)) > 1e-9 {
		t.Errorf("LogSigmoid(-500) = %v, want ≈ -500", got)
	}
}

func TestLog1pExp(t *testing.T) {
	for _, x := range []float64{-700, -5, 0, 5, 700} {
		got := Log1pExp(x)
		if !IsFinite(got) || got < 0 {
			t.Errorf("Log1pExp(%v) = %v", x, got)
		}
	}
	// Identity: LogSigmoid(x) = -Log1pExp(-x).
	for x := -20.0; x <= 20; x += 0.5 {
		if diff := math.Abs(LogSigmoid(x) + Log1pExp(-x)); diff > 1e-12 {
			t.Errorf("identity broken at %v: diff %v", x, diff)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Clamp(0, 1, -1)
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = (%v, %v)", lo, hi)
	}
	lo, hi = MinMax([]float64{4})
	if lo != 4 || hi != 4 {
		t.Errorf("MinMax single = (%v, %v)", lo, hi)
	}
}

func TestScale01(t *testing.T) {
	if got := Scale01(5, 0, 10); got != 0.5 {
		t.Errorf("Scale01(5,0,10) = %v", got)
	}
	if got := Scale01(42, 3, 3); got != 0 {
		t.Errorf("Scale01 degenerate = %v, want 0", got)
	}
	if got := Scale01(-1, 0, 10); got != 0 {
		t.Errorf("Scale01 below range = %v", got)
	}
	if got := Scale01(11, 0, 10); got != 1 {
		t.Errorf("Scale01 above range = %v", got)
	}
}

func TestScale01Range(t *testing.T) {
	f := func(x, lo, span float64) bool {
		if !IsFinite(x) || !IsFinite(lo) || !IsFinite(span) {
			return true
		}
		hi := lo + math.Abs(span)
		if !IsFinite(hi) {
			return true
		}
		got := Scale01(x, lo, hi)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/short-input conventions broken")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-12, 1e-9) {
		t.Error("tiny diff should be almost equal")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("1 and 2 are not almost equal")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN must not compare almost equal")
	}
	// Relative tolerance on large magnitudes.
	if !AlmostEqual(1e12, 1e12+1, 1e-9) {
		t.Error("relative tolerance should accept 1e12 vs 1e12+1")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(0) || !IsFinite(-1e300) {
		t.Error("finite values misclassified")
	}
	if IsFinite(math.NaN()) || IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) {
		t.Error("non-finite values misclassified")
	}
}
