// Package mathx provides small, numerically careful scalar helpers shared
// by the model, baselines and feature code.
//
// Everything here is pure and allocation-free; the functions are written to
// stay finite for any finite input (the naive formulas overflow for large
// magnitudes, which matters because pairwise-ranking margins can grow large
// late in training).
package mathx

import "math"

// Sigmoid returns 1/(1+exp(-x)) computed without overflow for any finite x.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	// For x < 0, exp(x) is < 1 and cannot overflow.
	e := math.Exp(x)
	return e / (1 + e)
}

// LogSigmoid returns ln(sigmoid(x)) = -ln(1+exp(-x)) without overflow.
// For very negative x the naive form produces -Inf via log(0); this form
// degrades gracefully to x.
func LogSigmoid(x float64) float64 {
	if x >= 0 {
		return -math.Log1p(math.Exp(-x))
	}
	return x - math.Log1p(math.Exp(x))
}

// Log1pExp returns ln(1+exp(x)), the softplus, without overflow.
func Log1pExp(x float64) float64 {
	if x > 0 {
		return x + math.Log1p(math.Exp(-x))
	}
	return math.Log1p(math.Exp(x))
}

// Clamp restricts x to the closed interval [lo, hi].
// It panics if lo > hi, which always indicates a programming error.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("mathx: Clamp called with lo > hi")
	}
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// MinMax returns the minimum and maximum of xs.
// It returns (0, 0) for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Scale01 min-max scales x from [lo, hi] into [0, 1], clamping the result.
// When lo == hi every input maps to 0 (the paper's normalization is
// undefined in that degenerate case; mapping to a constant keeps the
// feature uninformative rather than NaN).
func Scale01(x, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return Clamp((x-lo)/(hi-lo), 0, 1)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// AlmostEqual reports whether a and b agree to within tol absolutely or
// relatively (whichever is looser). NaNs are never almost equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// IsFinite reports whether x is neither NaN nor ±Inf.
func IsFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
