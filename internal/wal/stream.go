package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Stream framing for WAL shipping between a primary and its standby.
// Each committed record crosses the wire as
//
//	[4B LE payload len][4B LE CRC32-C over (LSN bytes ++ payload)][8B LE LSN][payload]
//
// The CRC covers the LSN so a frame delivered at the wrong position (a
// proxy replay, a miscounted resume) fails verification instead of
// being applied at a bogus LSN. The on-disk record CRC is recomputed by
// the follower's own Append, so corruption in transit is caught twice.

const frameHeaderSize = 16

// ErrFrameCorrupt reports a stream frame whose CRC did not match its
// contents — the connection is broken or a middlebox mangled the body;
// the tailer should drop the connection and resume from its last
// applied LSN.
var ErrFrameCorrupt = errors.New("replication frame CRC mismatch")

// WriteFrame emits one framed record to w.
func WriteFrame(w io.Writer, lsn uint64, payload []byte) error {
	hdr := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one framed record from r. io.EOF on a clean frame
// boundary means the stream ended; a partial header or body is
// io.ErrUnexpectedEOF. maxRecord ≤ 0 uses DefaultMaxRecordBytes.
func ReadFrame(r io.Reader, maxRecord int) (lsn uint64, payload []byte, err error) {
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	hdr := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, io.ErrUnexpectedEOF
	}
	ln := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if ln < 0 || ln > maxRecord {
		return 0, nil, fmt.Errorf("frame length %d exceeds max %d: %w", ln, maxRecord, ErrFrameCorrupt)
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	lsn = binary.LittleEndian.Uint64(hdr[8:16])
	payload = make([]byte, ln)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, io.ErrUnexpectedEOF
	}
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return 0, nil, fmt.Errorf("frame lsn %d: %w", lsn, ErrFrameCorrupt)
	}
	return lsn, payload, nil
}
