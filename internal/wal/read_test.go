package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// readAll drains ReadFrom in batches of batch until it stops advancing,
// returning the delivered records and the final resume LSN.
func readAll(t *testing.T, l *Log, from uint64, batch int) (map[uint64]string, uint64) {
	t.Helper()
	got := map[uint64]string{}
	next := from
	for {
		n, err := l.ReadFrom(next, batch, func(lsn uint64, payload []byte) error {
			if _, dup := got[lsn]; dup {
				t.Fatalf("lsn %d delivered twice", lsn)
			}
			got[lsn] = string(payload)
			return nil
		})
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", next, err)
		}
		if n == next {
			return got, n
		}
		next = n
	}
}

func TestReadFromPositions(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 50) // rec-0000..rec-0049 at LSNs 1..50

	segs := segFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments for boundary cases, got %d", len(segs))
	}
	ls, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	boundary := ls[1].first // exactly the first record of segment 2

	cases := []struct {
		name string
		from uint64
		want int
	}{
		{"start", 1, 50},
		{"segment boundary", boundary, 50 - int(boundary) + 1},
		{"mid segment", boundary + 1, 50 - int(boundary)},
		{"last record", 50, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, next := readAll(t, l, tc.from, 7)
			if len(got) != tc.want {
				t.Fatalf("from %d: %d records, want %d", tc.from, len(got), tc.want)
			}
			for lsn, payload := range got {
				if want := fmt.Sprintf("rec-%04d", lsn-1); payload != want {
					t.Fatalf("lsn %d = %q, want %q", lsn, payload, want)
				}
			}
			if next != 51 {
				t.Fatalf("resume LSN %d, want 51", next)
			}
		})
	}
}

func TestReadFromPastEndIsCleanEOF(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 5)

	for _, from := range []uint64{6, 7, 100} {
		next, err := l.ReadFrom(from, 10, func(lsn uint64, _ []byte) error {
			t.Fatalf("unexpected record %d", lsn)
			return nil
		})
		if err != nil {
			t.Fatalf("ReadFrom(%d) past end: %v", from, err)
		}
		if next != from {
			t.Fatalf("ReadFrom(%d) past end advanced to %d", from, next)
		}
	}
}

func TestReadFromBelowOldestIsPruned(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 50)
	if err := l.Prune(30); err != nil {
		t.Fatal(err)
	}
	oldest := l.OldestLSN()
	if oldest <= 1 {
		t.Fatalf("prune kept oldest=%d, nothing removed", oldest)
	}
	if _, err := l.ReadFrom(1, 10, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrPruned) {
		t.Fatalf("ReadFrom below oldest: %v, want ErrPruned", err)
	}
	// Reading from the oldest retained record still works.
	got, _ := readAll(t, l, oldest, 8)
	if len(got) != 50-int(oldest)+1 {
		t.Fatalf("from oldest %d: %d records", oldest, len(got))
	}
}

func TestReadFromBatchStopsEarly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 20)
	var n int
	next, err := l.ReadFrom(1, 3, func(uint64, []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || next != 4 {
		t.Fatalf("batch of 3: delivered %d, next %d", n, next)
	}
}

func TestReadFromConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 10)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 10; i < 200; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	// Tail the log while the writer runs; every delivered record must be
	// intact and in order regardless of interleaving.
	var next uint64 = 1
	for {
		n, err := l.ReadFrom(next, 16, func(lsn uint64, payload []byte) error {
			if want := fmt.Sprintf("rec-%04d", lsn-1); string(payload) != want {
				t.Fatalf("lsn %d = %q, want %q", lsn, payload, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", next, err)
		}
		next = n
		if next > 201 {
			t.Fatalf("read past the committed horizon: %d", next)
		}
		if next == 201 {
			break
		}
	}
	<-done
}

func TestTruncateFrom(t *testing.T) {
	build := func(t *testing.T) (*Log, string) {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 0, 50)
		return l, dir
	}

	t.Run("noop at and past nextLSN", func(t *testing.T) {
		l, _ := build(t)
		defer l.Close()
		for _, lsn := range []uint64{51, 52, 1000} {
			if err := l.TruncateFrom(lsn); err != nil {
				t.Fatalf("TruncateFrom(%d): %v", lsn, err)
			}
		}
		if got := l.NextLSN(); got != 51 {
			t.Fatalf("nextLSN %d after no-op truncations", got)
		}
	})

	t.Run("mid segment", func(t *testing.T) {
		l, _ := build(t)
		defer l.Close()
		ls := l.segments
		cut := ls[len(ls)-1].first + 1 // second record of the last segment
		if err := l.TruncateFrom(cut); err != nil {
			t.Fatal(err)
		}
		if got := l.NextLSN(); got != cut {
			t.Fatalf("nextLSN %d, want %d", got, cut)
		}
		// The next append lands exactly at the cut and replays intact.
		lsn, err := l.Append([]byte("rewritten"))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != cut {
			t.Fatalf("append after truncate: lsn %d, want %d", lsn, cut)
		}
		got := collect(t, l, 1)
		if len(got) != int(cut) {
			t.Fatalf("replay %d records, want %d", len(got), cut)
		}
		if got[cut] != "rewritten" {
			t.Fatalf("lsn %d = %q", cut, got[cut])
		}
	})

	t.Run("segment boundary", func(t *testing.T) {
		l, dir := build(t)
		defer l.Close()
		ls, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		cut := ls[1].first
		if err := l.TruncateFrom(cut); err != nil {
			t.Fatal(err)
		}
		if got := l.NextLSN(); got != cut {
			t.Fatalf("nextLSN %d, want %d", got, cut)
		}
		got := collect(t, l, 1)
		if len(got) != int(cut)-1 {
			t.Fatalf("replay %d records, want %d", len(got), cut-1)
		}
		appendN(t, l, int(cut)-1, 3)
	})

	t.Run("everything", func(t *testing.T) {
		l, _ := build(t)
		defer l.Close()
		if err := l.TruncateFrom(1); err != nil {
			t.Fatal(err)
		}
		if got := l.NextLSN(); got != 1 {
			t.Fatalf("nextLSN %d, want 1", got)
		}
		appendN(t, l, 0, 5)
	})

	t.Run("below oldest is pruned", func(t *testing.T) {
		l, _ := build(t)
		defer l.Close()
		if err := l.Prune(30); err != nil {
			t.Fatal(err)
		}
		if err := l.TruncateFrom(1); !errors.Is(err, ErrPruned) {
			t.Fatalf("TruncateFrom below oldest: %v, want ErrPruned", err)
		}
	})

	t.Run("survives reopen", func(t *testing.T) {
		l, dir := build(t)
		cut := uint64(23)
		if err := l.TruncateFrom(cut); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if got := l2.NextLSN(); got != cut {
			t.Fatalf("nextLSN after reopen %d, want %d", got, cut)
		}
		if got := collect(t, l2, 1); len(got) != int(cut)-1 {
			t.Fatalf("replay %d records, want %d", len(got), cut-1)
		}
	})
}

func TestInitialLSNSeedsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, InitialLSN: 41})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextLSN(); got != 41 {
		t.Fatalf("nextLSN %d, want 41", got)
	}
	lsn, err := l.Append([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 41 {
		t.Fatalf("first append lsn %d, want 41", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// InitialLSN is ignored once segments exist.
	l2, err := Open(dir, Options{Sync: SyncNever, InitialLSN: 999})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextLSN(); got != 42 {
		t.Fatalf("nextLSN after reopen %d, want 42", got)
	}
}

func TestScanDirMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 30)
	want := collect(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]string{}
	corrupt, err := ScanDir(dir, 0, func(lsn uint64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 0 {
		t.Fatalf("%d corrupt records in a clean log", corrupt)
	}
	if len(got) != len(want) {
		t.Fatalf("ScanDir %d records, Replay %d", len(got), len(want))
	}
	for lsn, p := range want {
		if got[lsn] != p {
			t.Fatalf("lsn %d: ScanDir %q, Replay %q", lsn, got[lsn], p)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, uint64(100+i), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		lsn, got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if lsn != uint64(100+i) {
			t.Fatalf("frame %d: lsn %d", i, lsn)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 7, []byte("payload-bytes")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("flipped payload bit", func(t *testing.T) {
		b := frame()
		b[len(b)-1] ^= 0x01
		if _, _, err := ReadFrame(bytes.NewReader(b), 0); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("got %v, want ErrFrameCorrupt", err)
		}
	})
	t.Run("flipped lsn bit", func(t *testing.T) {
		b := frame()
		b[8] ^= 0x01 // LSN is covered by the CRC: repositioned frames fail
		if _, _, err := ReadFrame(bytes.NewReader(b), 0); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("got %v, want ErrFrameCorrupt", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		b := frame()
		if _, _, err := ReadFrame(bytes.NewReader(b[:len(b)-3]), 0); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		b := frame()
		if _, _, err := ReadFrame(bytes.NewReader(b[:7]), 0); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		b := frame()
		b[0], b[1], b[2], b[3] = 0xFF, 0xFF, 0xFF, 0x7F
		if _, _, err := ReadFrame(bytes.NewReader(b), 1<<20); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("got %v, want ErrFrameCorrupt", err)
		}
	})
}

// FuzzReadFrame throws arbitrary bytes at the stream frame decoder: it
// must never panic or over-allocate, and anything it accepts must
// round-trip back to identical bytes.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, 1, []byte("seed"))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			lsn, payload, err := ReadFrame(r, 1<<16)
			if err != nil {
				break
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, lsn, payload); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if int64(buf.Len()) > int64(len(data)) {
				t.Fatalf("accepted frame longer than input: %d > %d", buf.Len(), len(data))
			}
		}
	})
}
