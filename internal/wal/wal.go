// Package wal implements the append-only, segmented write-ahead event
// log behind rrc-server's durable online sessions. Every consumption
// event is appended as a length-prefixed, CRC32-Castagnoli-checksummed
// record before it is applied to the in-memory per-user windows, so a
// crash at any point loses at most the records not yet fsynced (none,
// under the `always` policy) and never corrupts what was already
// durable.
//
// # Record and segment format
//
// A record is
//
//	[4 bytes LE payload length][4 bytes LE CRC32-C of payload][payload]
//
// written with a single Write call, so a torn write can only produce a
// partial record at the tail of a segment, never interleaved garbage.
// Records are numbered by a log sequence number (LSN) starting at 1.
// Segments are files named wal-<firstLSN as %016x>.log; the name pins
// the LSN of the segment's first record, so any record's LSN is its
// segment base plus its index within the segment.
//
// # Recovery semantics
//
// Open scans every segment. A partial record at the tail of the final
// segment is a torn append from a crash: it is truncated away and
// counted. A CRC-mismatched record anywhere, or a torn tail of a
// non-final segment, is corruption: under the default CorruptHalt
// policy Open refuses the log (wrapping ErrCorrupt) so damage is never
// silently served; under CorruptSkip the record is skipped, counted,
// and its LSN slot left unapplied. A record whose length field is
// implausible (zero or above MaxRecordBytes) means framing is lost;
// the rest of that segment is treated as a torn tail.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tsppr/internal/faultinject"
	"tsppr/internal/obs"
)

// ErrCorrupt marks a CRC failure or framing loss detected under the
// CorruptHalt policy.
var ErrCorrupt = errors.New("corrupt record")

// ErrPruned reports a positioned read or truncation below the log's
// oldest retained LSN — the records were pruned away behind a snapshot
// and the caller must re-sync from a snapshot instead of the log.
var ErrPruned = errors.New("lsn below oldest retained record")

const (
	headerSize = 8
	segPrefix  = "wal-"
	segSuffix  = ".log"

	// DefaultSegmentBytes is the rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 4 << 20
	// DefaultMaxRecordBytes is the per-record size sanity cap when
	// Options.MaxRecordBytes is zero.
	DefaultMaxRecordBytes = 1 << 20
	// DefaultSyncEvery is the SyncInterval batching period when
	// Options.SyncEvery is zero.
	DefaultSyncEvery = 100 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record acknowledged to the
	// caller survives any crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs lazily at most once per Options.SyncEvery: a
	// crash loses at most the records appended since the last sync.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache: fastest, loses the
	// whole unflushed suffix on a power failure.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// CorruptPolicy selects what Open and Replay do with a CRC-mismatched
// record.
type CorruptPolicy int

const (
	// CorruptHalt (default) refuses the log: corruption is an operator
	// problem, not something to paper over.
	CorruptHalt CorruptPolicy = iota
	// CorruptSkip quarantines the record behind the SkippedCorrupt
	// counter and keeps going.
	CorruptSkip
)

// Options configures Open. The zero value is a 4 MiB segment, 1 MiB
// record cap, fsync on every append, and halt on corruption.
type Options struct {
	SegmentBytes   int64 // rotation threshold; 0 → DefaultSegmentBytes
	MaxRecordBytes int   // per-record sanity cap; 0 → DefaultMaxRecordBytes
	Sync           SyncPolicy
	SyncEvery      time.Duration // SyncInterval batching period; 0 → DefaultSyncEvery
	Corrupt        CorruptPolicy

	// InitialLSN seeds the first record's LSN when the directory holds
	// no segments yet (0 → 1). A replica reseeded from a snapshot at
	// LSN S opens its fresh log with InitialLSN S+1 so local LSNs stay
	// identical to the primary's. Ignored when segments already exist.
	InitialLSN uint64

	// Metrics, when non-nil, receives append/fsync latency histograms
	// and a rotation counter (rrc_wal_*). Nil records nothing.
	Metrics *obs.Registry
}

// Stats are the log's durability counters, all cumulative since Open.
type Stats struct {
	Appends          int64 // records appended
	Fsyncs           int64 // fsync calls issued
	Rotations        int64 // segment rotations
	RecoveredRecords int64 // records delivered by Replay
	TruncatedTails   int64 // torn tails truncated at Open
	TruncatedBytes   int64 // bytes discarded by tail truncation
	SkippedCorrupt   int64 // corrupt records quarantined under CorruptSkip
	PrunedSegments   int64 // segments removed by Prune
}

type segment struct {
	name  string
	first uint64 // LSN of the segment's first record
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	f        *os.File // active (last) segment, positioned at its end
	segments []segment
	segSize  int64
	nextLSN  uint64
	lastSync time.Time
	failed   error // sticky: set when a torn append could not be healed
	stats    Stats

	// Optional instrumentation, wired by Open from Options.Metrics.
	// The handles are nil when uninstrumented; Counter methods are
	// nil-safe, and the time.Now calls are gated on the histograms.
	mAppend    *obs.Histogram
	mFsync     *obs.Histogram
	mRotations *obs.Counter
}

// Open opens (or creates) the log in dir, recovering it to a consistent
// state: the final segment's torn tail, if any, is truncated away, and
// corrupt records are refused or quarantined per Options.Corrupt.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, lastSync: time.Now()}
	if reg := opts.Metrics; reg != nil {
		reg.Help("rrc_wal_append_seconds", "WAL record append latency (including policy-driven fsync).")
		l.mAppend = reg.Histogram("rrc_wal_append_seconds", obs.LatencyBuckets)
		reg.Help("rrc_wal_fsync_seconds", "WAL fsync latency.")
		l.mFsync = reg.Histogram("rrc_wal_fsync_seconds", obs.LatencyBuckets)
		reg.Help("rrc_wal_rotations_total", "WAL segment rotations.")
		l.mRotations = reg.Counter("rrc_wal_rotations_total")
	}
	if len(segs) == 0 {
		l.nextLSN = 1
		if opts.InitialLSN > 1 {
			l.nextLSN = opts.InitialLSN
		}
		if err := l.createSegmentLocked(l.nextLSN); err != nil {
			return nil, err
		}
		return l, nil
	}
	for i, sg := range segs {
		last := i == len(segs)-1
		path := filepath.Join(dir, sg.name)
		res, err := scanSegment(path, opts.MaxRecordBytes, nil)
		if err != nil {
			return nil, fmt.Errorf("wal: scan %s: %w", sg.name, err)
		}
		if len(res.corrupt) > 0 {
			if opts.Corrupt == CorruptHalt {
				return nil, fmt.Errorf("wal: %s: %d CRC-failed record(s), first at index %d: %w",
					sg.name, len(res.corrupt), res.corrupt[0], ErrCorrupt)
			}
			l.stats.SkippedCorrupt += int64(len(res.corrupt))
		}
		if res.torn > 0 {
			if !last {
				// A non-final segment must end cleanly: rotation only
				// happens after a complete record. A torn interior is
				// media damage, and the records past it are unreadable.
				if opts.Corrupt == CorruptHalt {
					return nil, fmt.Errorf("wal: %s: torn tail of %d bytes in a non-final segment: %w",
						sg.name, res.torn, ErrCorrupt)
				}
				l.stats.SkippedCorrupt++
			} else {
				if err := truncateAt(path, res.end); err != nil {
					return nil, err
				}
				l.stats.TruncatedTails++
				l.stats.TruncatedBytes += res.torn
			}
		}
		if !last {
			// The next segment's name pins where this one must have
			// ended; a mismatch means records vanished wholesale.
			want := sg.first + uint64(res.records)
			if got := segs[i+1].first; got != want && opts.Corrupt == CorruptHalt {
				return nil, fmt.Errorf("wal: %s ends at LSN %d but %s starts at %d: %w",
					sg.name, want, segs[i+1].name, got, ErrCorrupt)
			}
		}
		l.segments = append(l.segments, sg)
		if last {
			l.nextLSN = sg.first + uint64(res.records)
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			if _, err := f.Seek(res.end, io.SeekStart); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.f = f
			l.segSize = res.end
		}
	}
	return l, nil
}

// Append writes payload as one record and returns its LSN. Under
// SyncAlways a nil error means the record is on stable storage. A write
// error leaves a torn tail which Append heals by truncating back to the
// pre-write offset; if the heal itself fails the log turns sticky-failed
// (further appends are refused), exactly as if the process had crashed.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.mAppend != nil {
		start := time.Now()
		defer func() { l.mAppend.ObserveDuration(time.Since(start)) }()
	}
	if l.failed != nil {
		return 0, l.failed
	}
	if len(payload) == 0 {
		return 0, errors.New("wal: empty payload")
	}
	if len(payload) > l.opts.MaxRecordBytes {
		return 0, fmt.Errorf("wal: payload %d bytes over the %d cap", len(payload), l.opts.MaxRecordBytes)
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	rec := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	copy(rec[headerSize:], payload)

	// One Write per record; the fault point simulates a disk-full or a
	// kill mid-append (short write → torn tail).
	w := faultinject.WrapWriter("wal.append", io.Writer(l.f))
	if _, err := w.Write(rec); err != nil {
		// The tail may now hold a partial record. Heal by truncating it
		// away; the "wal.heal" point lets chaos tests suppress the heal,
		// which is indistinguishable from dying mid-append.
		if herr := faultinject.Do("wal.heal"); herr != nil {
			l.failed = fmt.Errorf("wal: append failed (%v) and log left torn: %w", err, herr)
			return 0, l.failed
		}
		if terr := l.truncateActiveLocked(); terr != nil {
			l.failed = fmt.Errorf("wal: append failed (%v) and heal failed: %w", err, terr)
			return 0, l.failed
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += int64(len(rec))
	lsn := l.nextLSN
	l.nextLSN++
	l.stats.Appends++
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return lsn, nil
}

// truncateActiveLocked cuts the active segment back to the last durable
// record boundary and repositions the write offset there.
func (l *Log) truncateActiveLocked() error {
	if err := l.f.Truncate(l.segSize); err != nil {
		return err
	}
	_, err := l.f.Seek(l.segSize, io.SeekStart)
	return err
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	var start time.Time
	if l.mFsync != nil {
		start = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if l.mFsync != nil {
		l.mFsync.ObserveDuration(time.Since(start))
	}
	l.stats.Fsyncs++
	l.lastSync = time.Now()
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate fsync: %w", err)
	}
	l.stats.Fsyncs++
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	l.f = nil
	if err := l.createSegmentLocked(l.nextLSN); err != nil {
		return err
	}
	l.stats.Rotations++
	l.mRotations.Inc()
	return nil
}

func (l *Log) createSegmentLocked(first uint64) error {
	name := segmentName(first)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segSize = 0
	l.segments = append(l.segments, segment{name: name, first: first})
	syncDir(l.dir)
	return nil
}

// Replay streams every intact record with LSN ≥ from, oldest first, to
// fn. Corrupt records are skipped (their LSN slots are simply absent)
// under CorruptSkip and refused under CorruptHalt; Open has already
// enforced the same policy, so under CorruptHalt a successful Open
// guarantees a clean Replay unless the disk changed underneath.
func (l *Log) Replay(from uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, sg := range l.segments {
		if i+1 < len(l.segments) && l.segments[i+1].first <= from {
			continue // segment entirely below the replay horizon
		}
		path := filepath.Join(l.dir, sg.name)
		res, err := scanSegment(path, l.opts.MaxRecordBytes, func(idx int, payload []byte) error {
			lsn := sg.first + uint64(idx)
			if lsn < from {
				return nil
			}
			if err := fn(lsn, payload); err != nil {
				return err
			}
			l.stats.RecoveredRecords++
			return nil
		})
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", sg.name, err)
		}
		if (len(res.corrupt) > 0 || (res.torn > 0 && i+1 < len(l.segments))) && l.opts.Corrupt == CorruptHalt {
			return fmt.Errorf("wal: replay %s: corruption appeared after open: %w", sg.name, ErrCorrupt)
		}
	}
	return nil
}

// Prune removes whole segments whose every record has LSN ≤ upTo —
// i.e. segments fully covered by a snapshot. The active segment is
// never removed. upTo = 0 is a no-op.
func (l *Log) Prune(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upTo == 0 {
		return nil
	}
	kept := l.segments[:0]
	for i, sg := range l.segments {
		if i+1 < len(l.segments) && l.segments[i+1].first <= upTo+1 {
			if err := os.Remove(filepath.Join(l.dir, sg.name)); err != nil {
				return fmt.Errorf("wal: prune: %w", err)
			}
			l.stats.PrunedSegments++
			continue
		}
		kept = append(kept, sg)
	}
	l.segments = kept
	return nil
}

// NextLSN returns the LSN the next Append will be assigned.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// OldestLSN returns the LSN of the oldest record still retained (the
// first segment's base). Records below it were pruned behind snapshots.
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segments[0].first
}

// errReadDone is the internal sentinel a bounded ReadFrom uses to stop a
// segment scan once maxRecords have been delivered.
var errReadDone = errors.New("wal: read budget exhausted")

// DefaultReadBatch is ReadFrom's record budget when maxRecords ≤ 0.
const DefaultReadBatch = 1024

// ReadFrom delivers up to maxRecords committed records with LSN ≥ from,
// oldest first, and returns the LSN the next ReadFrom should resume at
// (from itself when nothing new is committed — a clean EOF, not an
// error). Unlike Replay it does not hold the log lock during file I/O:
// the segment list and commit horizon are snapshotted under the lock,
// then the files are read independently, so a replication stream never
// stalls appends. from below the oldest retained record returns
// ErrPruned — the reader must re-sync from a snapshot.
func (l *Log) ReadFrom(from uint64, maxRecords int, fn func(lsn uint64, payload []byte) error) (uint64, error) {
	if maxRecords <= 0 {
		maxRecords = DefaultReadBatch
	}
	if from == 0 {
		from = 1
	}
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	limit := l.nextLSN
	maxRecord := l.opts.MaxRecordBytes
	corrupt := l.opts.Corrupt
	dir := l.dir
	l.mu.Unlock()

	if len(segs) > 0 && from < segs[0].first {
		return from, fmt.Errorf("wal: read from %d, oldest retained %d: %w", from, segs[0].first, ErrPruned)
	}
	if from >= limit {
		return from, nil
	}
	next := from
	delivered := 0
	for i, sg := range segs {
		if i+1 < len(segs) && segs[i+1].first <= next {
			continue // segment entirely below the resume point
		}
		if sg.first >= limit || delivered >= maxRecords {
			break
		}
		res, err := scanSegment(filepath.Join(dir, sg.name), maxRecord, func(idx int, payload []byte) error {
			lsn := sg.first + uint64(idx)
			if lsn < next || lsn >= limit {
				return nil
			}
			if delivered >= maxRecords {
				return errReadDone
			}
			if err := fn(lsn, payload); err != nil {
				return err
			}
			delivered++
			next = lsn + 1
			return nil
		})
		if err != nil {
			if errors.Is(err, errReadDone) {
				return next, nil
			}
			return next, fmt.Errorf("wal: read %s: %w", sg.name, err)
		}
		// A CRC-failed record inside the read range is a hole a reader
		// cannot stream over: under CorruptHalt refuse; under CorruptSkip
		// it is already quarantined and the LSN slot is simply absent.
		if corrupt == CorruptHalt {
			for _, idx := range res.corrupt {
				if lsn := sg.first + uint64(idx); lsn >= from && lsn < limit {
					return next, fmt.Errorf("wal: read %s: record %d (lsn %d): %w", sg.name, idx, lsn, ErrCorrupt)
				}
			}
		}
	}
	return next, nil
}

// TruncateFrom discards every record with LSN ≥ lsn — the positioned
// write used when a demoted primary rejoins as a follower and must drop
// the unshipped tail that diverged from the new primary's timeline.
// Whole segments past the cut are removed; the segment containing the
// cut is truncated at the exact record boundary and becomes the active
// segment, so the next Append is assigned exactly lsn. lsn ≥ NextLSN is
// a no-op; lsn below the oldest retained record is ErrPruned (the
// caller must discard the whole log and re-sync from a snapshot).
func (l *Log) TruncateFrom(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if lsn >= l.nextLSN {
		return nil
	}
	if lsn < l.segments[0].first {
		return fmt.Errorf("wal: truncate from %d, oldest retained %d: %w", lsn, l.segments[0].first, ErrPruned)
	}
	// Release the active segment handle; the cut may land in any segment.
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: truncate fsync: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: truncate close: %w", err)
		}
		l.f = nil
	}
	cut := 0
	for i, sg := range l.segments {
		if sg.first <= lsn {
			cut = i
		}
	}
	for _, sg := range l.segments[cut+1:] {
		if err := os.Remove(filepath.Join(l.dir, sg.name)); err != nil {
			return fmt.Errorf("wal: truncate remove %s: %w", sg.name, err)
		}
	}
	l.segments = l.segments[:cut+1]
	sg := l.segments[cut]
	path := filepath.Join(l.dir, sg.name)
	if sg.first == lsn {
		// The cut lands on the segment's first record: the whole segment
		// goes, replaced by a fresh empty one with the same base.
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: truncate remove %s: %w", sg.name, err)
		}
		l.segments = l.segments[:cut]
		l.nextLSN = lsn
		if err := l.createSegmentLocked(lsn); err != nil {
			return err
		}
		syncDir(l.dir)
		return nil
	}
	off, err := offsetOfRecord(path, l.opts.MaxRecordBytes, int(lsn-sg.first))
	if err != nil {
		return fmt.Errorf("wal: truncate %s: %w", sg.name, err)
	}
	if err := truncateAt(path, off); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segSize = off
	l.nextLSN = lsn
	syncDir(l.dir)
	return nil
}

// offsetOfRecord returns the byte offset of the n-th (0-based) record in
// a segment file by walking the length-prefixed headers.
func offsetOfRecord(path string, maxRecord, n int) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	hdr := make([]byte, headerSize)
	var off int64
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, hdr); err != nil {
			return 0, fmt.Errorf("record %d: %w", i, err)
		}
		ln := int(binary.LittleEndian.Uint32(hdr[0:4]))
		if ln <= 0 || ln > maxRecord {
			return 0, fmt.Errorf("record %d: implausible length %d: %w", i, ln, ErrCorrupt)
		}
		if _, err := br.Discard(ln); err != nil {
			return 0, fmt.Errorf("record %d: %w", i, err)
		}
		off += int64(headerSize + ln)
	}
	return off, nil
}

// ScanDir streams every framed, CRC-intact record in dir with its LSN,
// oldest first, without opening (or mutating) the log — the read-only
// iterator behind rrc-inspect's divergence check between two replica
// roots. Corrupt records are reported, not delivered. maxRecord ≤ 0
// uses DefaultMaxRecordBytes.
func ScanDir(dir string, maxRecord int, fn func(lsn uint64, payload []byte) error) (corrupt int, err error) {
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	for _, sg := range segs {
		res, err := scanSegment(filepath.Join(dir, sg.name), maxRecord, func(idx int, payload []byte) error {
			return fn(sg.first+uint64(idx), payload)
		})
		if err != nil {
			return corrupt, fmt.Errorf("wal: scan %s: %w", sg.name, err)
		}
		corrupt += len(res.corrupt)
	}
	return corrupt, nil
}

// Stats returns a copy of the durability counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close fsyncs (best effort under sticky failure) and closes the active
// segment. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var errs []error
	if l.failed == nil {
		if err := l.syncLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := l.f.Close(); err != nil {
		errs = append(errs, fmt.Errorf("wal: close: %w", err))
	}
	l.f = nil
	return errors.Join(errs...)
}

// scanResult summarizes one pass over a segment's records.
type scanResult struct {
	records int   // framed records seen, intact or corrupt
	good    int   // records whose CRC verified
	corrupt []int // segment-relative indices of CRC-failed records
	end     int64 // offset just past the last framed record
	torn    int64 // trailing bytes after end that do not frame a record
}

// scanSegment walks one segment file, delivering each intact payload to
// deliver (which may be nil) with its segment-relative index. It stops
// at the first framing loss (partial header/payload or an implausible
// length) and reports the remainder as a torn tail.
func scanSegment(path string, maxRecord int, deliver func(idx int, payload []byte) error) (scanResult, error) {
	var res scanResult
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return res, err
	}
	size := st.Size()
	br := bufio.NewReader(f)
	hdr := make([]byte, headerSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return res, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				res.torn = size - res.end
				return res, nil
			}
			return res, err
		}
		n := int(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n <= 0 || n > maxRecord {
			res.torn = size - res.end // framing lost
			return res, nil
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.torn = size - res.end
				return res, nil
			}
			return res, err
		}
		idx := res.records
		res.records++
		res.end += int64(headerSize + n)
		if crc32.Checksum(payload, castagnoli) != want {
			res.corrupt = append(res.corrupt, idx)
			continue
		}
		res.good++
		if deliver != nil {
			if err := deliver(idx, payload); err != nil {
				return res, err
			}
		}
	}
}

func segmentName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) != len(segPrefix)+16+len(segSuffix) ||
			name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(name[len(segPrefix):len(segPrefix)+16], "%016x", &first); err != nil {
			continue
		}
		segs = append(segs, segment{name: name, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	for i := 1; i < len(segs); i++ {
		if segs[i].first <= segs[i-1].first {
			return nil, fmt.Errorf("wal: segments %s and %s overlap", segs[i-1].name, segs[i].name)
		}
	}
	return segs, nil
}

func truncateAt(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncDir best-effort fsyncs a directory so entry creation/removal is
// durable, mirroring internal/atomicio.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// SegmentReport is Verify's per-segment summary.
type SegmentReport struct {
	Name     string
	FirstLSN uint64
	Bytes    int64
	Records  int   // framed records, intact or corrupt
	Good     int   // records whose CRC verified
	Corrupt  []int // segment-relative indices of CRC failures
	TornTail int64 // trailing bytes that frame no record (0 = clean)
}

// Report is Verify's whole-log summary.
type Report struct {
	Dir            string
	Segments       []SegmentReport
	Records        int
	Good           int
	CorruptRecords int
	TornSegments   int
}

// Clean reports whether the log has no CRC failures and no torn tails.
func (r Report) Clean() bool { return r.CorruptRecords == 0 && r.TornSegments == 0 }

// Verify stream-checks every segment in dir without mutating anything —
// the read-only counterpart of Open for rrc-inspect. maxRecord ≤ 0 uses
// DefaultMaxRecordBytes.
func Verify(dir string, maxRecord int) (Report, error) {
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	rep := Report{Dir: dir}
	segs, err := listSegments(dir)
	if err != nil {
		return rep, err
	}
	for _, sg := range segs {
		path := filepath.Join(dir, sg.name)
		res, err := scanSegment(path, maxRecord, nil)
		if err != nil {
			return rep, fmt.Errorf("wal: verify %s: %w", sg.name, err)
		}
		st, err := os.Stat(path)
		if err != nil {
			return rep, fmt.Errorf("wal: %w", err)
		}
		rep.Segments = append(rep.Segments, SegmentReport{
			Name:     sg.name,
			FirstLSN: sg.first,
			Bytes:    st.Size(),
			Records:  res.records,
			Good:     res.good,
			Corrupt:  res.corrupt,
			TornTail: res.torn,
		})
		rep.Records += res.records
		rep.Good += res.good
		rep.CorruptRecords += len(res.corrupt)
		if res.torn > 0 {
			rep.TornSegments++
		}
	}
	return rep, nil
}
