package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tsppr/internal/faultinject"
)

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("rec-%04d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); lsn != want {
			t.Fatalf("append %d: lsn %d, want %d", i, lsn, want)
		}
	}
}

func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	err := l.Replay(from, func(lsn uint64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

// segFiles returns the wal segment names currently in dir.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(segs))
	for i, sg := range segs {
		names[i] = sg.name
	}
	return names
}

func TestAppendReplayAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 50)
	if len(segFiles(t, dir)) < 2 {
		t.Fatal("tiny SegmentBytes did not rotate")
	}
	got := collect(t, l, 1)
	if len(got) != 50 {
		t.Fatalf("replayed %d records, want 50", len(got))
	}
	for i := 0; i < 50; i++ {
		if got[uint64(i+1)] != fmt.Sprintf("rec-%04d", i) {
			t.Fatalf("lsn %d = %q", i+1, got[uint64(i+1)])
		}
	}
	// Replay from the middle skips whole early segments.
	if tail := collect(t, l, 40); len(tail) != 11 {
		t.Fatalf("tail replay %d records, want 11", len(tail))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen continues the LSN sequence.
	l2, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextLSN() != 51 {
		t.Fatalf("reopened NextLSN = %d, want 51", l2.NextLSN())
	}
	appendN(t, l2, 50, 5)
	if got := collect(t, l2, 1); len(got) != 55 {
		t.Fatalf("after reopen: %d records, want 55", len(got))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	l.Close()

	// A crash mid-append leaves a partial record at the tail.
	segs := segFiles(t, dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xAB}); err != nil { // header fragment
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.TruncatedTails != 1 || st.TruncatedBytes != 5 {
		t.Fatalf("stats = %+v, want 1 truncated tail of 5 bytes", st)
	}
	if got := collect(t, l2, 1); len(got) != 5 {
		t.Fatalf("recovered %d records, want 5", len(got))
	}
	if l2.NextLSN() != 6 {
		t.Fatalf("NextLSN = %d, want 6", l2.NextLSN())
	}
}

func TestCorruptRecordHaltAndSkip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	l.Close()

	// Flip one payload bit of the middle record (LSN 3). Records are
	// 8 header + 8 payload bytes; record i starts at 16*i.
	segs := segFiles(t, dir)
	path := filepath.Join(dir, segs[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[16*2+headerSize+3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Default policy: refuse the log, never serve the damage silently.
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open corrupt log: err = %v, want ErrCorrupt", err)
	}

	// Skip policy: quarantine the one record, keep the other four with
	// their original LSNs.
	l2, err := Open(dir, Options{Corrupt: CorruptSkip})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.SkippedCorrupt != 1 {
		t.Fatalf("SkippedCorrupt = %d, want 1", st.SkippedCorrupt)
	}
	got := collect(t, l2, 1)
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	if _, ok := got[3]; ok {
		t.Fatal("corrupt lsn 3 was delivered")
	}
	if got[4] != "rec-0003" || got[5] != "rec-0004" {
		t.Fatalf("post-corruption LSNs shifted: %v", got)
	}
}

func TestShortWriteHealsInProcess(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 3)

	faultinject.Arm("wal.append", faultinject.Plan{Mode: faultinject.ShortWrite, Count: 1})
	if _, err := l.Append([]byte("doomed-record")); err == nil {
		t.Fatal("short write did not surface")
	}
	// The torn tail was healed in place: the next append lands cleanly
	// on the same LSN slot the failed one would have taken.
	lsn, err := l.Append([]byte("rec-0003"))
	if err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if lsn != 4 {
		t.Fatalf("lsn after heal = %d, want 4", lsn)
	}
	if got := collect(t, l, 1); len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
}

func TestShortWriteCrashRecoversOnReopen(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)

	// The heal point erroring simulates dying mid-append: the torn tail
	// stays on disk and the log goes sticky-failed.
	faultinject.Arm("wal.append", faultinject.Plan{Mode: faultinject.ShortWrite, Count: 1})
	faultinject.Arm("wal.heal", faultinject.Plan{Mode: faultinject.Error})
	if _, err := l.Append([]byte("doomed-record")); err == nil {
		t.Fatal("crashed append did not surface")
	}
	if _, err := l.Append([]byte("after-crash")); err == nil {
		t.Fatal("sticky-failed log accepted an append")
	}
	faultinject.Reset()

	l2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.TruncatedTails != 1 {
		t.Fatalf("stats = %+v, want 1 truncated tail", st)
	}
	if got := collect(t, l2, 1); len(got) != 3 {
		t.Fatalf("recovered %d records, want all 3 acknowledged ones", len(got))
	}
}

func TestSyncPolicyCounters(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 4)
	if st := l.Stats(); st.Fsyncs != 4 {
		t.Fatalf("always: %d fsyncs after 4 appends", st.Fsyncs)
	}
	l.Close()

	l2, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 0, 4)
	if st := l2.Stats(); st.Fsyncs != 0 {
		t.Fatalf("never: %d fsyncs before close", st.Fsyncs)
	}
	l2.Close()

	// A generous interval batches: no fsync per append.
	l3, err := Open(t.TempDir(), Options{Sync: SyncInterval, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l3, 0, 4)
	if st := l3.Stats(); st.Fsyncs != 0 {
		t.Fatalf("interval(1h): %d fsyncs across 4 quick appends", st.Fsyncs)
	}
	if err := l3.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l3.Stats(); st.Fsyncs != 1 {
		t.Fatalf("explicit Sync not counted: %+v", l3.Stats())
	}
	l3.Close()
}

func TestPruneKeepsUncoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 40)
	before := len(segFiles(t, dir))
	if before < 3 {
		t.Fatalf("want ≥3 segments, got %d", before)
	}
	// Prune to LSN 20: every segment whose records all have LSN ≤ 20 goes.
	if err := l.Prune(20); err != nil {
		t.Fatal(err)
	}
	after := segFiles(t, dir)
	if len(after) >= before {
		t.Fatalf("prune removed nothing (%d → %d segments)", before, len(after))
	}
	got := collect(t, l, 21)
	for lsn := uint64(21); lsn <= 40; lsn++ {
		if got[lsn] != fmt.Sprintf("rec-%04d", lsn-1) {
			t.Fatalf("lsn %d lost after prune", lsn)
		}
	}
}

func TestVerifyReportsWithoutMutating(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 4)
	l.Close()

	rep, err := Verify(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 4 || rep.Good != 4 {
		t.Fatalf("clean log report = %+v", rep)
	}

	// Corrupt one record and tear the tail; Verify must report both and
	// leave the file byte-identical.
	path := filepath.Join(dir, segFiles(t, dir)[0])
	raw, _ := os.ReadFile(path)
	raw[headerSize+2] ^= 1                   // payload bit of record 0
	raw = append(raw, []byte{7, 0, 0, 0}...) // torn header fragment
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.CorruptRecords != 1 || rep.TornSegments != 1 {
		t.Fatalf("damaged log report = %+v", rep)
	}
	now, _ := os.ReadFile(path)
	if !bytes.Equal(raw, now) {
		t.Fatal("Verify mutated the segment")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() roundtrip %q → %q", s, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestAppendRejectsOversizeAndEmpty(t *testing.T) {
	l, err := Open(t.TempDir(), Options{MaxRecordBytes: 16, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := l.Append(make([]byte, 17)); err == nil {
		t.Fatal("oversize payload accepted")
	}
}
