package wal

import (
	"bytes"
	"testing"

	"tsppr/internal/obs"
)

// TestMetricsMatchStats checks the instrumented log's metric series agree
// with its Stats counters: one append observation per Append, fsync
// observations for policy-driven syncs, and the rotation counter tracking
// Stats.Rotations.
func TestMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	l, err := Open(t.TempDir(), Options{
		Sync:         SyncAlways,
		SegmentBytes: 64, // rotate every few records
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte("payload-0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	app := reg.Histogram("rrc_wal_append_seconds", obs.LatencyBuckets)
	if int64(app.Count()) != st.Appends {
		t.Fatalf("append observations %d != Stats.Appends %d", app.Count(), st.Appends)
	}
	fs := reg.Histogram("rrc_wal_fsync_seconds", obs.LatencyBuckets)
	if fs.Count() == 0 {
		t.Fatal("no fsync observations under SyncAlways")
	}
	if st.Rotations == 0 {
		t.Fatal("fixture never rotated; lower SegmentBytes")
	}
	if got := reg.Counter("rrc_wal_rotations_total").Value(); got != st.Rotations {
		t.Fatalf("rotation counter %d != Stats.Rotations %d", got, st.Rotations)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(&buf); err != nil {
		t.Fatalf("wal exposition invalid: %v", err)
	}
}

// TestUninstrumentedLogRecordsNothing pins nil-safety: a log opened
// without Options.Metrics appends normally and touches no registry.
func TestUninstrumentedLogRecordsNothing(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if l.mAppend != nil || l.mFsync != nil || l.mRotations != nil {
		t.Fatal("uninstrumented log holds metric handles")
	}
}
