package core_test

import (
	"fmt"

	"tsppr/internal/core"
	"tsppr/internal/engine"
	"tsppr/internal/features"
	"tsppr/internal/rec"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
)

// Example trains TS-PPR on a tiny deterministic corpus and recommends.
// The corpus has two users with opposite tastes over the same two items,
// so the personalized model must rank them differently.
func Example() {
	const (
		window = 8
		omega  = 1
	)
	// User 0 keeps returning to item 0, user 1 to item 1; both see both.
	train := []seq.Sequence{
		{0, 1, 0, 2, 0, 1, 0, 2, 0, 1, 0, 2, 0, 1, 0, 2, 0, 1, 0, 2},
		{1, 0, 1, 2, 1, 0, 1, 2, 1, 0, 1, 2, 1, 0, 1, 2, 1, 0, 1, 2},
	}
	b := features.NewBuilder(3, window, omega)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	set, err := sampling.Build(train, ex, sampling.Config{WindowCap: window, Omega: omega, S: 2, Seed: 7})
	if err != nil {
		fmt.Println("sampling:", err)
		return
	}
	model, _, err := core.Train(set, 2, 3, ex, core.Config{K: 6, MaxSteps: 30_000, Seed: 7})
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	eng := engine.New(model)
	for u := 0; u < 2; u++ {
		w := seq.NewWindow(window)
		for _, v := range train[u] {
			w.Push(v)
		}
		top := eng.Recommend(&rec.Context{User: u, Window: w, Omega: omega}, 1, nil)
		fmt.Printf("user %d would reconsume item %d\n", u, top[0].Item)
	}
	// Output:
	// user 0 would reconsume item 0
	// user 1 would reconsume item 1
}
