package core

import (
	"testing"

	"tsppr/internal/mathx"
	"tsppr/internal/seq"
)

func TestOnlineUpdaterValidation(t *testing.T) {
	if _, err := NewOnlineUpdater(nil, OnlineConfig{}); err == nil {
		t.Fatal("nil model accepted")
	}
	train, numItems, ex, set := corpus(t, 6)
	m, _, _ := Train(set, len(train), numItems, ex, smallConfig())
	if _, err := NewOnlineUpdater(m, OnlineConfig{LearningRate: -1}); err == nil {
		t.Fatal("negative learning rate accepted")
	}
	if _, err := NewOnlineUpdater(m, OnlineConfig{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestOnlineObserveEligibilityGates(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	m, _, _ := Train(set, len(train), numItems, ex, smallConfig())
	ou, err := NewOnlineUpdater(m, OnlineConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := seq.NewWindow(20)
	for _, v := range train[0][:20] {
		w.Push(v)
	}
	// Unknown user, out-of-universe item, novel item, and too-recent item
	// must all be no-ops.
	if got := ou.Observe(-1, w, train[0][0], 3); got != 0 {
		t.Fatalf("unknown user applied %d steps", got)
	}
	if got := ou.Observe(0, w, seq.Item(numItems+7), 3); got != 0 {
		t.Fatalf("out-of-universe item applied %d steps", got)
	}
	// An item certainly not in the window (fresh id within universe but
	// beyond what user 0 consumed recently): find one.
	var novel seq.Item = -1
	for v := seq.Item(0); int(v) < numItems; v++ {
		if !w.Contains(v) {
			novel = v
			break
		}
	}
	if novel >= 0 {
		if got := ou.Observe(0, w, novel, 3); got != 0 {
			t.Fatalf("novel item applied %d steps", got)
		}
	}
	// The most recent item has gap 1 ≤ Ω.
	last := train[0][19]
	if got := ou.Observe(0, w, last, 3); got != 0 {
		t.Fatalf("too-recent item applied %d steps", got)
	}
}

func TestOnlineObserveMovesScoreUp(t *testing.T) {
	train, numItems, ex, set := corpus(t, 8)
	m, _, _ := Train(set, len(train), numItems, ex, smallConfig())
	ou, err := NewOnlineUpdater(m, OnlineConfig{LearningRate: 0.05, Negatives: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := seq.NewWindow(20)
	for _, v := range train[0] {
		w.Push(v)
	}
	cands := w.Candidates(3, nil)
	if len(cands) < 2 {
		t.Skip("window too uniform for this corpus seed")
	}
	pos := cands[0]

	before := scoreRef(m, 0, pos, w)
	total := 0
	for i := 0; i < 10; i++ {
		total += ou.Observe(0, w, pos, 3)
	}
	if total == 0 {
		t.Fatal("no online steps applied")
	}
	// scoreRef reads the cached effective weights, so this also verifies
	// Observe re-folds the updated user's row.
	after := scoreRef(m, 0, pos, w)
	if after <= before {
		t.Fatalf("score did not increase after positive observations: %v → %v", before, after)
	}
	if !mathx.IsFinite(after) {
		t.Fatalf("score diverged: %v", after)
	}
}

func TestOnlineObserveStepsBounded(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	m, _, _ := Train(set, len(train), numItems, ex, smallConfig())
	ou, _ := NewOnlineUpdater(m, OnlineConfig{Negatives: 3, Seed: 3})
	w := seq.NewWindow(20)
	for _, v := range train[0] {
		w.Push(v)
	}
	cands := w.Candidates(3, nil)
	if len(cands) == 0 {
		t.Skip("no candidates for this seed")
	}
	got := ou.Observe(0, w, cands[0], 3)
	want := 3
	if len(cands)-1 < want {
		want = len(cands) - 1
	}
	if got != want {
		t.Fatalf("steps = %d, want %d", got, want)
	}
}
