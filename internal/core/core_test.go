package core

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"tsppr/internal/datagen"
	"tsppr/internal/features"
	"tsppr/internal/linalg"
	"tsppr/internal/rngutil"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
)

// corpus builds a small synthetic corpus and its pipeline pieces.
func corpus(t testing.TB, users int) ([]seq.Sequence, int, *features.Extractor, *sampling.Set) {
	t.Helper()
	cfg := datagen.GowallaLike(users, 5)
	cfg.MinLen, cfg.MaxLen = 80, 200
	cfg.WindowCap = 20
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numItems := ds.NumItems()
	train := make([]seq.Sequence, len(ds.Seqs))
	for u, s := range ds.Seqs {
		train[u], _ = s.Split(0.8)
	}
	b := features.NewBuilder(numItems, 20, 3)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	set, err := sampling.Build(train, ex, sampling.Config{WindowCap: 20, Omega: 3, S: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if set.NumPairs() == 0 {
		t.Fatal("corpus yielded no training pairs")
	}
	return train, numItems, ex, set
}

func smallConfig() Config {
	return Config{K: 8, MaxSteps: 20_000, CheckEvery: 5_000, Seed: 3}
}

// scoreRef evaluates r_uvt from the model's scoring operands, mirroring
// the engine's two-dot-product path (the engine itself cannot be imported
// here: it imports core).
func scoreRef(m *Model, u int, v seq.Item, w *seq.Window) float64 {
	static := 0.0
	if v >= 0 && int(v) < m.V.Rows {
		static = linalg.Dot(m.U.Row(u), m.V.Row(int(v)))
	}
	f := linalg.NewVector(m.F)
	m.Extractor.Extract(f, v, w)
	return static + linalg.Dot(m.EffectiveFeatureWeights(u), f)
}

func TestTrainShapes(t *testing.T) {
	train, numItems, ex, set := corpus(t, 10)
	m, stats, err := Train(set, len(train), numItems, ex, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 8 || m.F != 4 {
		t.Fatalf("shape K=%d F=%d", m.K, m.F)
	}
	if m.NumUsers() != len(train) || m.NumItems() != numItems {
		t.Fatalf("users/items = %d/%d", m.NumUsers(), m.NumItems())
	}
	if len(m.A) != len(train) {
		t.Fatalf("per-user maps = %d", len(m.A))
	}
	if stats.Steps == 0 || len(stats.Checkpoints) == 0 {
		t.Fatal("no training happened")
	}
	for _, cp := range stats.Checkpoints {
		if math.IsNaN(cp.RBar) || math.IsNaN(cp.Loss) {
			t.Fatal("NaN in checkpoints")
		}
	}
}

func TestTrainingImprovesObjective(t *testing.T) {
	train, numItems, ex, set := corpus(t, 10)
	cfg := smallConfig()
	pairs := set.SmallBatch(0.5)

	init := initModel(len(train), numItems, ex, cfg)
	before := Objective(init, pairs, 0.01, 0.05)

	m, _, err := Train(set, len(train), numItems, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := Objective(m, pairs, 0.01, 0.05)
	if after >= before {
		t.Fatalf("objective did not improve: %v → %v", before, after)
	}
}

func TestTrainingIncreasesMargin(t *testing.T) {
	train, numItems, ex, set := corpus(t, 10)
	m, stats, err := Train(set, len(train), numItems, ex, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	first := stats.Checkpoints[0].RBar
	last := stats.Checkpoints[len(stats.Checkpoints)-1].RBar
	if last <= first {
		t.Fatalf("r̃ did not increase: %v → %v", first, last)
	}
	if last <= 0 {
		t.Fatalf("final r̃ %v should be positive", last)
	}
}

func TestTrainDeterminism(t *testing.T) {
	train, numItems, ex, set := corpus(t, 8)
	cfg := smallConfig()
	m1, _, _ := Train(set, len(train), numItems, ex, cfg)
	m2, _, _ := Train(set, len(train), numItems, ex, cfg)
	if !linalg.Equal(m1.U, m2.U, 0) || !linalg.Equal(m1.V, m2.V, 0) {
		t.Fatal("same-seed training produced different parameters")
	}
	cfg.Seed++
	m3, _, _ := Train(set, len(train), numItems, ex, cfg)
	if linalg.Equal(m1.U, m3.U, 0) {
		t.Fatal("different seeds produced identical parameters")
	}
}

func TestTrainMapKinds(t *testing.T) {
	train, numItems, ex, set := corpus(t, 8)
	for _, mk := range []MapKind{PerUserMap, SharedMap, IdentityMap} {
		cfg := smallConfig()
		cfg.MapType = mk
		if mk == IdentityMap {
			cfg.K = ex.Dim()
		}
		m, _, err := Train(set, len(train), numItems, ex, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mk, err)
		}
		wantMaps := map[MapKind]int{PerUserMap: len(train), SharedMap: 1, IdentityMap: 0}[mk]
		if len(m.A) != wantMaps {
			t.Fatalf("%v: %d maps, want %d", mk, len(m.A), wantMaps)
		}
		// The scoring operands must be finite for every kind.
		for _, x := range m.EffectiveFeatureWeights(0) {
			if math.IsNaN(x) {
				t.Fatalf("%v: NaN effective weight", mk)
			}
		}
	}
}

func TestIdentityMapRequiresKEqualsF(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	cfg := smallConfig()
	cfg.MapType = IdentityMap
	cfg.K = 8 // != F=4
	if _, _, err := Train(set, len(train), numItems, ex, cfg); err == nil {
		t.Fatal("IdentityMap with K != F accepted")
	}
}

func TestTwoPhaseTraining(t *testing.T) {
	train, numItems, ex, set := corpus(t, 8)
	cfg := smallConfig()
	cfg.TwoPhase = true
	m, stats, err := Train(set, len(train), numItems, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.MapType != PerUserMap || len(m.A) != len(train) {
		t.Fatal("two-phase result is not per-user")
	}
	// Steps accumulate over both phases.
	if stats.Steps <= cfg.MaxSteps {
		t.Fatalf("steps %d should exceed single-phase max %d", stats.Steps, cfg.MaxSteps)
	}
}

func TestWarmStart(t *testing.T) {
	train, numItems, ex, set := corpus(t, 8)
	cfg := smallConfig()
	m1, _, err := Train(set, len(train), numItems, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig()
	cfg2.Warm = m1
	cfg2.MaxSteps = 1000
	m2, _, err := Train(set, len(train), numItems, ex, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Warm start must not mutate the donor.
	if &m1.U.Data[0] == &m2.U.Data[0] {
		t.Fatal("warm start shares storage with donor")
	}
	// Mismatched shapes must be rejected.
	cfg3 := smallConfig()
	cfg3.Warm = m1
	if _, _, err := Train(set, len(train)+1, numItems, ex, cfg3); err == nil {
		t.Fatal("warm-start shape mismatch accepted")
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	bad := []Config{
		{K: -1},
		{LearningRate: -1},
		{Lambda: -1},
		{Gamma: -1},
	}
	for i, cfg := range bad {
		if _, _, err := Train(set, len(train), numItems, ex, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, _, err := Train(set, 0, numItems, ex, smallConfig()); err == nil {
		t.Error("zero users accepted")
	}
}

func TestModelRoundTrip(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	for _, mk := range []MapKind{PerUserMap, SharedMap, IdentityMap} {
		cfg := smallConfig()
		cfg.MapType = mk
		if mk == IdentityMap {
			cfg.K = ex.Dim()
		}
		m, _, err := Train(set, len(train), numItems, ex, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadModel(&buf)
		if err != nil {
			t.Fatalf("%v: %v", mk, err)
		}
		if got.K != m.K || got.F != m.F || got.MapType != m.MapType {
			t.Fatalf("%v: header mismatch", mk)
		}
		if !linalg.Equal(got.U, m.U, 0) || !linalg.Equal(got.V, m.V, 0) {
			t.Fatalf("%v: parameter mismatch", mk)
		}
		for i := range m.A {
			if !linalg.Equal(got.A[i], m.A[i], 0) {
				t.Fatalf("%v: map %d mismatch", mk, i)
			}
		}
		// The deserialized model must score identically: the scoring
		// operands (precomputed effective weights included) are bit-equal.
		for u := 0; u < m.NumUsers(); u++ {
			w1, w2 := m.EffectiveFeatureWeights(u), got.EffectiveFeatureWeights(u)
			for f := range w1 {
				if w1[f] != w2[f] {
					t.Fatalf("%v: effective weights differ after round-trip (user %d)", mk, u)
				}
			}
		}
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	m, _, _ := Train(set, len(train), numItems, ex, smallConfig())
	path := filepath.Join(t.TempDir(), "m.tsppr")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.Equal(got.V, m.V, 0) {
		t.Fatal("file round-trip mismatch")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Valid magic, truncated body.
	if _, err := ReadModel(bytes.NewReader([]byte("TSPPRv1\n\x01\x00"))); err == nil {
		t.Fatal("truncated model accepted")
	}
}

func TestEmptyTrainingSet(t *testing.T) {
	b := features.NewBuilder(5, 4, 1)
	b.Add(seq.Sequence{1, 2})
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	set, err := sampling.Build([]seq.Sequence{{1, 2}}, ex, sampling.Config{WindowCap: 4, Omega: 1, S: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := Train(set, 1, 5, ex, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 0 {
		t.Fatalf("steps %d on empty set", stats.Steps)
	}
	if m == nil {
		t.Fatal("nil model on empty set")
	}
}

func TestMapKindString(t *testing.T) {
	if PerUserMap.String() != "per-user" || SharedMap.String() != "shared" || IdentityMap.String() != "identity" {
		t.Fatal("MapKind strings wrong")
	}
}

func BenchmarkSGDStep(b *testing.B) {
	train, numItems, ex, set := corpus(b, 10)
	cfg := smallConfig().withDefaults(set.NumPairs())
	m := initModel(len(train), numItems, ex, cfg)
	tr := trainer{m: m, cfg: cfg}
	tr.init()
	rng := rngutil.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := set.SamplePairUniform(rng)
		tr.step(p)
	}
}

func TestEffectiveFeatureWeights(t *testing.T) {
	train, numItems, ex, set := corpus(t, 8)
	m, _, err := Train(set, len(train), numItems, ex, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.EffectiveFeatureWeights(0)
	if len(w) != m.F {
		t.Fatalf("weights dim %d, want %d", len(w), m.F)
	}
	// Consistency: the precomputed fold w·f matches the direct derivation
	// uᵀ(A_u·f) for an actual extracted feature vector. The two fold in
	// different summation orders, hence a tolerance, not equality.
	win := seq.NewWindow(20)
	for _, v := range train[0][:20] {
		win.Push(v)
	}
	f := linalg.NewVector(m.F)
	ex.Extract(f, train[0][0], win)
	tmp := linalg.NewVector(m.K)
	m.mapFor(0).MulVec(tmp, f)
	dyn := linalg.Dot(m.U.Row(0), tmp)
	if diff := math.Abs(dyn - linalg.Dot(w, f)); diff > 1e-9 {
		t.Fatalf("w·f inconsistent with uᵀA_uf: diff %v", diff)
	}
	// refreshUser after an in-place parameter change re-folds the row.
	m.U.Row(0)[0] += 0.25
	m.refreshUser(0)
	m.mapFor(0).MulVec(tmp, f)
	dyn = linalg.Dot(m.U.Row(0), tmp)
	if diff := math.Abs(dyn - linalg.Dot(m.EffectiveFeatureWeights(0), f)); diff > 1e-9 {
		t.Fatalf("refreshUser left stale weights: diff %v", diff)
	}

	// Identity map: weights are u itself.
	cfg := smallConfig()
	cfg.MapType = IdentityMap
	cfg.K = ex.Dim()
	mi, _, err := Train(set, len(train), numItems, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wi := mi.EffectiveFeatureWeights(0)
	for k := range wi {
		if wi[k] != mi.U.Row(0)[k] {
			t.Fatal("identity-map weights != u")
		}
	}
}

func TestEffectiveFeatureWeightsPanics(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	m, _, _ := Train(set, len(train), numItems, ex, smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.EffectiveFeatureWeights(-1)
}

func TestOnCheckpointCallback(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	cfg := smallConfig()
	var calls []Checkpoint
	cfg.OnCheckpoint = func(cp Checkpoint) { calls = append(calls, cp) }
	_, stats, err := Train(set, len(train), numItems, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(stats.Checkpoints) {
		t.Fatalf("callback fired %d times, %d checkpoints recorded", len(calls), len(stats.Checkpoints))
	}
	for i := range calls {
		if calls[i].Model == nil {
			t.Fatalf("callback %d carried no model", i)
		}
		if stats.Checkpoints[i].Model != nil {
			t.Fatalf("recorded checkpoint %d retains the live model", i)
		}
		got, want := calls[i], stats.Checkpoints[i]
		got.Model = nil
		if got != want {
			t.Fatalf("callback %d mismatch: %+v != %+v", i, got, want)
		}
	}
}
