package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"tsppr/internal/atomicio"
	"tsppr/internal/features"
	"tsppr/internal/linalg"
)

// Model files are little-endian binary: a magic header, the shape and map
// kind, the parameter tables, then the feature extractor's static tables.
// The format is versioned via the magic. Version 2 appends a CRC32-C
// checksum of everything after the magic, so truncation and bit rot are
// detected at load time instead of silently corrupting scores; the reader
// still accepts v1 files (no checksum).
const (
	modelMagicV1 = "TSPPRv1\n"
	modelMagic   = "TSPPRv2\n" // current write format
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

type countingWriter struct {
	w   io.Writer
	err error
}

func (cw *countingWriter) write(v any) {
	if cw.err != nil {
		return
	}
	cw.err = binary.Write(cw.w, binary.LittleEndian, v)
}

func (cw *countingWriter) writeFloats(xs []float64) {
	if cw.err != nil {
		return
	}
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	_, cw.err = cw.w.Write(buf)
}

// Write serializes the model (including its extractor) to w in the v2
// format: magic, body, CRC32-C trailer over the body.
func (m *Model) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, modelMagic); err != nil {
		return fmt.Errorf("core: write magic: %w", err)
	}
	h := crc32.New(crcTable)
	cw := &countingWriter{w: io.MultiWriter(bw, h)}
	m.writeBody(cw)
	if cw.err != nil {
		return fmt.Errorf("core: write model: %w", cw.err)
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return fmt.Errorf("core: write checksum: %w", err)
	}
	return bw.Flush()
}

// writeBody emits everything between the magic and the checksum trailer.
// The layout is shared by v1 and v2.
func (m *Model) writeBody(cw *countingWriter) {
	cw.write(int64(m.K))
	cw.write(int64(m.F))
	cw.write(int64(m.MapType))
	cw.write(int64(m.U.Rows))
	cw.write(int64(m.V.Rows))
	cw.writeFloats(m.U.Data)
	cw.writeFloats(m.V.Data)
	cw.write(int64(len(m.A)))
	for _, a := range m.A {
		cw.writeFloats(a.Data)
	}
	quality, reratio := m.Extractor.Tables()
	cw.write(int64(m.Extractor.Mask()))
	cw.write(int64(m.Extractor.RecencyKind()))
	cw.write(int64(m.Extractor.WindowCap()))
	cw.write(int64(m.Extractor.Omega()))
	cw.write(int64(len(quality)))
	cw.writeFloats(quality)
	cw.writeFloats(reratio)
}

type countingReader struct {
	r   io.Reader
	err error
}

func (cr *countingReader) readInt() int64 {
	if cr.err != nil {
		return 0
	}
	var v int64
	cr.err = binary.Read(cr.r, binary.LittleEndian, &v)
	return v
}

func (cr *countingReader) readFloats(n int) []float64 {
	if cr.err != nil || n < 0 {
		return nil
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(cr.r, buf); err != nil {
		cr.err = err
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return xs
}

// hashingReader forwards reads while feeding every delivered byte into h,
// so the v2 reader can checksum exactly the bytes the parser consumed.
type hashingReader struct {
	r io.Reader
	h hash.Hash32
}

func (hr *hashingReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	if n > 0 {
		hr.h.Write(p[:n])
	}
	return n, err
}

// ReadModel deserializes a model written by Write. It accepts the current
// v2 format (checksummed) and the legacy v1 format.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: read magic: %w", err)
	}
	switch string(magic) {
	case modelMagicV1:
		return readBody(&countingReader{r: br})
	case modelMagic:
		hr := &hashingReader{r: br, h: crc32.New(crcTable)}
		m, err := readBody(&countingReader{r: hr})
		if err != nil {
			return nil, err
		}
		var want uint32
		if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
			return nil, fmt.Errorf("core: read checksum: %w", err)
		}
		if got := hr.h.Sum32(); got != want {
			return nil, fmt.Errorf("core: checksum mismatch (got %08x, want %08x): file is truncated or corrupt", got, want)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("core: bad model magic %q", magic)
	}
}

func readBody(cr *countingReader) (*Model, error) {
	k := int(cr.readInt())
	f := int(cr.readInt())
	mapType := MapKind(cr.readInt())
	numUsers := int(cr.readInt())
	numItems := int(cr.readInt())
	if cr.err != nil {
		return nil, fmt.Errorf("core: read header: %w", cr.err)
	}
	if k <= 0 || f <= 0 || numUsers <= 0 || numItems <= 0 ||
		k > 1<<20 || f > 1<<20 || numUsers > 1<<28 || numItems > 1<<28 {
		return nil, fmt.Errorf("core: implausible model shape K=%d F=%d users=%d items=%d", k, f, numUsers, numItems)
	}
	if mapType < PerUserMap || mapType > IdentityMap {
		return nil, fmt.Errorf("core: unknown map kind %d", mapType)
	}
	m := &Model{K: k, F: f, MapType: mapType}
	m.U = &linalg.Matrix{Rows: numUsers, Cols: k, Data: cr.readFloats(numUsers * k)}
	m.V = &linalg.Matrix{Rows: numItems, Cols: k, Data: cr.readFloats(numItems * k)}
	numMaps := int(cr.readInt())
	wantMaps := 0
	switch mapType {
	case PerUserMap:
		wantMaps = numUsers
	case SharedMap:
		wantMaps = 1
	}
	if cr.err == nil && numMaps != wantMaps {
		return nil, fmt.Errorf("core: map count %d, want %d for %v", numMaps, wantMaps, mapType)
	}
	m.A = make([]*linalg.Matrix, numMaps)
	for i := range m.A {
		m.A[i] = &linalg.Matrix{Rows: k, Cols: f, Data: cr.readFloats(k * f)}
	}
	mask := features.Mask(cr.readInt())
	recency := features.RecencyKind(cr.readInt())
	windowCap := int(cr.readInt())
	omega := int(cr.readInt())
	tableLen := int(cr.readInt())
	if cr.err != nil {
		return nil, fmt.Errorf("core: read tables header: %w", cr.err)
	}
	if tableLen < 0 || tableLen > 1<<28 {
		return nil, fmt.Errorf("core: implausible table length %d", tableLen)
	}
	quality := cr.readFloats(tableLen)
	reratio := cr.readFloats(tableLen)
	if cr.err != nil {
		return nil, fmt.Errorf("core: read model body: %w", cr.err)
	}
	ex, err := features.FromTables(mask, recency, windowCap, omega, quality, reratio)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild extractor: %w", err)
	}
	if ex.Dim() != f {
		return nil, fmt.Errorf("core: extractor dim %d != model F %d", ex.Dim(), f)
	}
	m.Extractor = ex
	// Loaded models go straight to scoring; fold the effective feature
	// weights here so load time, not first-request time, pays the cost.
	m.Precompute()
	return m, nil
}

// SaveFile writes the model to path atomically: the bytes go to a
// temporary file in the same directory which is fsynced and then renamed
// over path, so a crash (or an injected fault) mid-write never leaves a
// truncated model where a good one used to be.
func (m *Model) SaveFile(path string) error {
	return writeFileAtomic(path, m.Write)
}

// writeFileAtomic streams fn into a temp file next to path, fsyncs it,
// and renames it over path (see atomicio.WriteFile, which every durable
// artifact in the pipeline shares). The write stream passes through the
// "core.io.write" fault-injection point.
func writeFileAtomic(path string, fn func(io.Writer) error) error {
	return atomicio.WriteFile(path, "core.io.write", fn)
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return ReadModel(f)
}
