package core

import (
	"context"
	"fmt"
	"math"

	"tsppr/internal/features"
	"tsppr/internal/linalg"
	"tsppr/internal/mathx"
	"tsppr/internal/rngutil"
	"tsppr/internal/sampling"
)

// Config parameterizes TS-PPR training (paper Table 4 defaults are the
// zero-value fallbacks applied by withDefaults).
type Config struct {
	K            int     // latent dimension (default 40)
	Lambda       float64 // L2 penalty on the maps A (default 0.01)
	Gamma        float64 // L2 penalty on U and V (default 0.05)
	LearningRate float64 // SGD step size α (default 0.03)

	// MaxSteps caps the number of SGD steps (the paper's "epochs": one
	// quadruple per step). 0 means 5·|D| clamped to [50_000, 3_000_000] —
	// roughly where held-out precision peaks before the per-user maps
	// start to overfit the pre-sampled quadruples.
	MaxSteps int
	// CheckEvery is the number of steps between convergence checks;
	// 0 means |D|/10 (paper §4.2.2), clamped to at least 1000.
	CheckEvery int
	// SmallBatchFrac is the fraction of each user's leading quadruples in
	// the convergence batch; 0 means 0.10.
	SmallBatchFrac float64
	// ConvergenceTol is the Δr̃ threshold; 0 means 1e-3 (paper §5.6.1).
	ConvergenceTol float64

	// SampleUsersFirst selects Algorithm 1's user-first hierarchy (a
	// uniform user, then one of their quadruples), which equalizes users
	// regardless of activity. The default (false) samples quadruples
	// uniformly, weighting users by their repeat activity — the same
	// weighting MaAP applies at evaluation time.
	SampleUsersFirst bool

	MapType MapKind
	Seed    uint64

	// Warm continues training from an existing model instead of a fresh
	// Gaussian initialization. The model is copied, not mutated.
	Warm *Model

	// TwoPhase first fits a single shared map (whose gradients pool every
	// user's quadruples, so the global feature weighting is estimated from
	// the full training set), then forks per-user maps from it and
	// continues training. Short-history users end at the global solution
	// instead of an overfit one; data-rich users personalize away from it.
	// Applies only to PerUserMap.
	TwoPhase bool

	// OnCheckpoint, when non-nil, is invoked synchronously after every
	// convergence checkpoint (progress reporting for long trainings, or
	// durable checkpointing via Checkpoint.Model — training is paused for
	// the duration of the call, so the model may be serialized safely).
	OnCheckpoint func(Checkpoint)

	// MaxBackoffs caps how many times a diverged run (NaN/Inf in the
	// parameters or the convergence batch) is rolled back to the last
	// healthy checkpoint with a halved learning rate before training
	// gives up and returns the last healthy parameters. 0 means 8.
	MaxBackoffs int
}

func (c Config) withDefaults(numPairs int) Config {
	if c.K == 0 {
		c.K = 40
	}
	if c.Lambda == 0 {
		c.Lambda = 0.01
	}
	if c.Gamma == 0 {
		c.Gamma = 0.05
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.03
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 5 * numPairs
		if c.MaxSteps < 50_000 {
			c.MaxSteps = 50_000
		}
		if c.MaxSteps > 3_000_000 {
			c.MaxSteps = 3_000_000
		}
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = numPairs / 10
		if c.CheckEvery < 1000 {
			c.CheckEvery = 1000
		}
	}
	if c.SmallBatchFrac == 0 {
		c.SmallBatchFrac = 0.10
	}
	if c.ConvergenceTol == 0 {
		c.ConvergenceTol = 1e-3
	}
	if c.MaxBackoffs == 0 {
		c.MaxBackoffs = 8
	}
	return c
}

func (c Config) validate(featDim int) error {
	switch {
	case c.K <= 0:
		return fmt.Errorf("core: K %d <= 0", c.K)
	case c.Lambda < 0 || c.Gamma < 0:
		return fmt.Errorf("core: negative regularization (λ=%v, γ=%v)", c.Lambda, c.Gamma)
	case c.LearningRate <= 0:
		return fmt.Errorf("core: learning rate %v <= 0", c.LearningRate)
	case c.MapType == IdentityMap && c.K != featDim:
		return fmt.Errorf("core: IdentityMap requires K == F, got K=%d F=%d", c.K, featDim)
	}
	return nil
}

// Checkpoint records the convergence-batch state at one check point
// (paper Fig. 12 plots RBar against Step).
type Checkpoint struct {
	Step     int
	RBar     float64 // mean preference difference r̃ over the small batch
	Loss     float64 // mean −ln σ(margin) over the small batch
	LR       float64 // base learning rate in effect after this checkpoint
	Diverged bool    // this checkpoint detected NaN/Inf and rolled back

	// Model is the live training model at this checkpoint. Training is
	// paused while OnCheckpoint runs, so hooks may read or serialize it;
	// they must not retain it past the call or mutate it. After a
	// Diverged checkpoint it holds the restored last-healthy parameters.
	Model *Model
}

// TrainStats reports how training went.
type TrainStats struct {
	Steps       int
	Converged   bool
	Checkpoints []Checkpoint
	FinalRBar   float64
	Backoffs    int  // divergence rollbacks performed (learning-rate halvings)
	Diverged    bool // run hit MaxBackoffs and stopped at the last healthy parameters
	Interrupted bool // the context was cancelled; the model holds the parameters at the last boundary
}

// Train fits a TS-PPR model on the pre-sampled training set. numUsers and
// numItems size the latent tables; ex must be the extractor the set was
// built with. Deterministic in cfg.Seed.
func Train(set *sampling.Set, numUsers, numItems int, ex *features.Extractor, cfg Config) (*Model, *TrainStats, error) {
	return TrainContext(context.Background(), set, numUsers, numItems, ex, cfg)
}

// TrainContext is Train with cancellation: the context is polled at every
// convergence-check boundary, and on cancellation training stops cleanly —
// the returned model holds the parameters as of the last boundary and
// stats.Interrupted is set, so callers can flush a partial model instead
// of losing the run. A cancelled run returns a nil error: interruption is
// an outcome, not a failure.
func TrainContext(ctx context.Context, set *sampling.Set, numUsers, numItems int, ex *features.Extractor, cfg Config) (*Model, *TrainStats, error) {
	if cfg.TwoPhase && cfg.MapType == PerUserMap && cfg.Warm == nil {
		phase1 := cfg
		phase1.TwoPhase = false
		phase1.MapType = SharedMap
		phase1.MaxSteps = cfg.MaxSteps // resolved by withDefaults below if zero
		shared, stats1, err := TrainContext(ctx, set, numUsers, numItems, ex, phase1)
		if err != nil {
			return nil, nil, err
		}
		if stats1.Interrupted {
			// Phase 1 was cut short; forking per-user maps from a half-built
			// shared solution would bake the interruption into every user.
			// Return the shared model (a valid, loadable map kind) marked
			// interrupted instead.
			return shared, stats1, nil
		}
		// Fork per-user maps from the shared solution and continue.
		warm := &Model{K: shared.K, F: shared.F, MapType: PerUserMap, U: shared.U, V: shared.V, Extractor: ex}
		warm.A = make([]*linalg.Matrix, numUsers)
		for i := range warm.A {
			warm.A[i] = shared.A[0].Clone()
		}
		phase2 := cfg
		phase2.TwoPhase = false
		phase2.Warm = warm
		phase2.Seed = cfg.Seed + 0x2fa5e
		m, stats2, err := TrainContext(ctx, set, numUsers, numItems, ex, phase2)
		if err != nil {
			return nil, nil, err
		}
		stats2.Steps += stats1.Steps
		stats2.Checkpoints = append(stats1.Checkpoints, stats2.Checkpoints...)
		return m, stats2, nil
	}
	return train(ctx, set, numUsers, numItems, ex, cfg)
}

func train(ctx context.Context, set *sampling.Set, numUsers, numItems int, ex *features.Extractor, cfg Config) (*Model, *TrainStats, error) {
	cfg = cfg.withDefaults(set.NumPairs())
	if w := cfg.Warm; w != nil {
		if w.U.Rows != numUsers || w.V.Rows != numItems || w.F != ex.Dim() {
			return nil, nil, fmt.Errorf("core: warm-start shape mismatch (users %d/%d, items %d/%d, F %d/%d)",
				w.U.Rows, numUsers, w.V.Rows, numItems, w.F, ex.Dim())
		}
		cfg.K = w.K
		cfg.MapType = w.MapType
	}
	if err := cfg.validate(set.Dim()); err != nil {
		return nil, nil, err
	}
	if set.Dim() != ex.Dim() {
		return nil, nil, fmt.Errorf("core: set feature dim %d != extractor dim %d", set.Dim(), ex.Dim())
	}
	if numUsers <= 0 || numItems <= 0 {
		return nil, nil, fmt.Errorf("core: empty universe (users=%d items=%d)", numUsers, numItems)
	}

	m := initModel(numUsers, numItems, ex, cfg)
	// Every exit below hands m to scoring consumers; fold the effective
	// feature weights so it leaves train ready for the engine's
	// two-dot-product hot path.
	defer m.Precompute()
	stats := &TrainStats{}
	if set.NumPairs() == 0 {
		// Nothing to learn from; return the initialized model so callers
		// can still score (it degrades to noise, which tests rely on).
		return m, stats, nil
	}

	if ctx.Err() != nil {
		stats.Interrupted = true
		return m, stats, nil
	}

	rng := rngutil.New(cfg.Seed + 0x5eed)
	batch := set.SmallBatch(cfg.SmallBatchFrac)

	tr := trainer{m: m, cfg: cfg}
	tr.init()
	baseLR := cfg.LearningRate
	lastGood := snapshotParams(m)

	emit := func(cp Checkpoint) {
		// The stats copy drops the live model pointer: Checkpoints are
		// retained by callers long after training mutates (or frees) it.
		flat := cp
		flat.Model = nil
		stats.Checkpoints = append(stats.Checkpoints, flat)
		if cfg.OnCheckpoint != nil {
			cfg.OnCheckpoint(cp)
		}
	}

	// SGD makes r̃ noisy between checkpoints, so a single small Δr̃ is
	// often luck rather than convergence; require a few consecutive
	// under-tolerance checks before stopping.
	const convergeStreak = 3
	prevRBar := math.Inf(-1)
	streak := 0
	for step := 1; step <= cfg.MaxSteps; step++ {
		var pair sampling.Pair
		var ok bool
		if cfg.SampleUsersFirst {
			pair, ok = set.Sample(rng)
		} else {
			pair, ok = set.SamplePairUniform(rng)
		}
		if !ok {
			break
		}
		// Inverse decay of the step size: late-stage SGD noise otherwise
		// keeps the parameters jittering around the optimum, which
		// measurably hurts Top-1 ranking precision.
		tr.cfg.LearningRate = baseLR / (1 + 3*float64(step)/float64(cfg.MaxSteps))
		tr.step(pair)
		stats.Steps = step
		if step%cfg.CheckEvery == 0 || step == cfg.MaxSteps {
			// Cancellation is honored only at check boundaries: the model is
			// always in a consistent state here, and polling amortizes the
			// ctx read over CheckEvery SGD steps.
			if ctx.Err() != nil {
				stats.Interrupted = true
				stats.FinalRBar, _ = tr.evalBatch(batch)
				return m, stats, nil
			}
			rbar, loss := tr.evalBatch(batch)
			if !finite(rbar) || !finite(loss) || !paramsFinite(m) {
				// The run diverged. Roll back to the last healthy
				// checkpoint and halve the learning rate rather than
				// letting NaN/Inf spread through the parameter tables.
				stats.Backoffs++
				restoreParams(m, lastGood)
				baseLR /= 2
				emit(Checkpoint{Step: step, RBar: rbar, Loss: loss, LR: baseLR, Diverged: true, Model: m})
				if stats.Backoffs >= cfg.MaxBackoffs {
					stats.Diverged = true
					stats.FinalRBar, _ = tr.evalBatch(batch)
					return m, stats, nil
				}
				prevRBar = math.Inf(-1)
				streak = 0
				continue
			}
			copyParams(lastGood, m)
			emit(Checkpoint{Step: step, RBar: rbar, Loss: loss, LR: baseLR, Model: m})
			if math.Abs(rbar-prevRBar) <= cfg.ConvergenceTol {
				streak++
				if streak >= convergeStreak {
					stats.Converged = true
					stats.FinalRBar = rbar
					return m, stats, nil
				}
			} else {
				streak = 0
			}
			prevRBar = rbar
		}
	}
	stats.FinalRBar = prevRBar
	return m, stats, nil
}

// paramSnapshot is a deep copy of a model's mutable parameters, used to
// roll back a diverged run to its last healthy checkpoint.
type paramSnapshot struct {
	u, v []float64
	a    [][]float64
}

func snapshotParams(m *Model) *paramSnapshot {
	s := &paramSnapshot{
		u: append([]float64(nil), m.U.Data...),
		v: append([]float64(nil), m.V.Data...),
		a: make([][]float64, len(m.A)),
	}
	for i, a := range m.A {
		s.a[i] = append([]float64(nil), a.Data...)
	}
	return s
}

// copyParams refreshes an existing snapshot from the model in place.
func copyParams(dst *paramSnapshot, m *Model) {
	copy(dst.u, m.U.Data)
	copy(dst.v, m.V.Data)
	for i, a := range m.A {
		copy(dst.a[i], a.Data)
	}
}

// restoreParams writes a snapshot back into the model's tables.
func restoreParams(m *Model, s *paramSnapshot) {
	copy(m.U.Data, s.u)
	copy(m.V.Data, s.v)
	for i, a := range m.A {
		copy(a.Data, s.a[i])
	}
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// paramsFinite scans every parameter table for NaN/Inf. It runs only at
// checkpoint boundaries, so the O(params) cost is amortized over
// CheckEvery SGD steps.
func paramsFinite(m *Model) bool {
	if !finiteSlice(m.U.Data) || !finiteSlice(m.V.Data) {
		return false
	}
	for _, a := range m.A {
		if !finiteSlice(a.Data) {
			return false
		}
	}
	return true
}

// initModel builds the parameter tables, Gaussian-initialized per
// Algorithm 1 line 1 (A ~ N(0, λI), U,V ~ N(0, γI); we read λ and γ as the
// noise scale, i.e. the standard deviation — reading them as variances
// leaves ≈0.22-magnitude noise in uᵀv for items the sampler rarely
// touches, which measurably hurts Top-1 precision) or copied from the
// warm-start model.
func initModel(numUsers, numItems int, ex *features.Extractor, cfg Config) *Model {
	if w := cfg.Warm; w != nil {
		m := &Model{K: w.K, F: w.F, MapType: w.MapType, U: w.U.Clone(), V: w.V.Clone(), Extractor: ex}
		m.A = make([]*linalg.Matrix, len(w.A))
		for i, a := range w.A {
			m.A[i] = a.Clone()
		}
		return m
	}
	rng := rngutil.New(cfg.Seed)
	m := &Model{K: cfg.K, F: ex.Dim(), MapType: cfg.MapType, Extractor: ex}
	m.U = linalg.NewMatrix(numUsers, cfg.K)
	m.U.FillGaussian(rng, cfg.Gamma)
	m.V = linalg.NewMatrix(numItems, cfg.K)
	m.V.FillGaussian(rng, cfg.Gamma)
	switch cfg.MapType {
	case PerUserMap:
		m.A = make([]*linalg.Matrix, numUsers)
		for i := range m.A {
			m.A[i] = linalg.NewMatrix(cfg.K, m.F)
			m.A[i].FillGaussian(rng, cfg.Lambda)
		}
	case SharedMap:
		m.A = []*linalg.Matrix{linalg.NewMatrix(cfg.K, m.F)}
		m.A[0].FillGaussian(rng, cfg.Lambda)
	case IdentityMap:
		m.A = nil
	}
	return m
}

// trainer holds per-run scratch so the hot SGD loop is allocation-free.
type trainer struct {
	m   *Model
	cfg Config

	df   linalg.Vector // F: f_i − f_j
	yi   linalg.Vector // K: A_u f_i (or margin work space)
	diff linalg.Vector // K: v_i − v_j + A_u(f_i − f_j)
	uOld linalg.Vector // K: copy of u before the step
}

func (t *trainer) init() {
	t.df = linalg.NewVector(t.m.F)
	t.yi = linalg.NewVector(t.m.K)
	t.diff = linalg.NewVector(t.m.K)
	t.uOld = linalg.NewVector(t.m.K)
}

// margin computes r_uv_it − r_uv_jt for a pair, filling t.df and t.diff as
// side effects.
func (t *trainer) margin(p sampling.Pair) float64 {
	m := t.m
	uvec := m.U.Row(p.User)
	vi := m.V.Row(int(p.Pos))
	vj := m.V.Row(int(p.Neg))
	linalg.Sub(t.df, p.PosFeat, p.NegFeat)
	if a := m.mapFor(p.User); a != nil {
		a.MulVec(t.yi, t.df)
	} else {
		linalg.Copy(t.yi, t.df) // identity map (K == F)
	}
	for k := 0; k < m.K; k++ {
		t.diff[k] = vi[k] - vj[k] + t.yi[k]
	}
	return linalg.Dot(uvec, t.diff)
}

// step performs one SGD update (Algorithm 1 lines 6—10). All gradients use
// the pre-update parameter values, matching the pseudo-code's simultaneous
// assignment.
func (t *trainer) step(p sampling.Pair) {
	m, cfg := t.m, t.cfg
	g := cfg.LearningRate * (1 - mathx.Sigmoid(t.margin(p)))

	uvec := m.U.Row(p.User)
	linalg.Copy(t.uOld, uvec)

	// u ← (1−αγ)u + αg·(v_i − v_j + A_u(f_i − f_j))
	linalg.Scale(1-cfg.LearningRate*cfg.Gamma, uvec)
	linalg.Axpy(g, t.diff, uvec)

	// v_i ← (1−αγ)v_i + αg·u ; v_j ← (1−αγ)v_j − αg·u (old u).
	vi := m.V.Row(int(p.Pos))
	linalg.Scale(1-cfg.LearningRate*cfg.Gamma, vi)
	linalg.Axpy(g, t.uOld, vi)
	vj := m.V.Row(int(p.Neg))
	linalg.Scale(1-cfg.LearningRate*cfg.Gamma, vj)
	linalg.Axpy(-g, t.uOld, vj)

	// A_u ← (1−αλ)A_u + αg·u ⊗ (f_i − f_j) (old u).
	if a := m.mapFor(p.User); a != nil {
		a.ScaleInPlace(1 - cfg.LearningRate*cfg.Lambda)
		a.AddOuter(g, t.uOld, t.df)
	}
}

// evalBatch computes r̃ (mean margin) and the mean pairwise loss over the
// convergence batch.
func (t *trainer) evalBatch(batch []sampling.Pair) (rbar, loss float64) {
	if len(batch) == 0 {
		return 0, 0
	}
	for _, p := range batch {
		mg := t.margin(p)
		rbar += mg
		loss += -mathx.LogSigmoid(mg)
	}
	n := float64(len(batch))
	return rbar / n, loss / n
}

// Objective evaluates the full regularized objective J (paper Eq. 7) over
// the given pairs. Exposed for tests that assert SGD decreases J.
func Objective(m *Model, pairs []sampling.Pair, lambda, gamma float64) float64 {
	t := trainer{m: m, cfg: Config{}}
	t.init()
	j := 0.0
	for _, p := range pairs {
		j += -mathx.LogSigmoid(t.margin(p))
	}
	for _, a := range m.A {
		j += lambda / 2 * a.FrobeniusNormSq()
	}
	j += gamma / 2 * (frobSq(m.U) + frobSq(m.V))
	return j
}

func frobSq(m *linalg.Matrix) float64 { return m.FrobeniusNormSq() }
