// Package core implements TS-PPR, the paper's contribution: a
// Time-Sensitive Personalized Pairwise Ranking model for recommendation
// for repeat consumption (RRC).
//
// The preference of user u for item v at time t is (paper Eq. 5)
//
//	r_uvt = uᵀ v + uᵀ A_u f_uvt
//
// where u, v ∈ R^K are static latent features, f_uvt ∈ R^F is the
// observable time-sensitive behavioural feature vector, and A_u ∈ R^{K×F}
// is a per-user linear map from observable space into latent preference
// space. The pairwise ranking probability p(v_i >_ut v_j) is the sigmoid
// of the preference difference (Eq. 6); parameters are fit by SGD on
// pre-sampled quadruples minimizing the regularized negative log-likelihood
// (Eq. 7, Algorithm 1).
package core

import (
	"fmt"
	"math"

	"tsppr/internal/features"
	"tsppr/internal/linalg"
)

// MapKind selects how the observable→latent map A is parameterized. The
// paper's model is per-user maps; the alternatives exist for the §4.2.1
// discussion (identity when K=F) and the shared-map ablation.
type MapKind int

const (
	// PerUserMap is the paper's A_u: one K×F matrix per user.
	PerUserMap MapKind = iota
	// SharedMap uses a single global K×F matrix for all users.
	SharedMap
	// IdentityMap fixes A_u = I (requires K == F); the time-sensitive term
	// becomes uᵀ f_uvt directly (paper §4.2.1 case 2).
	IdentityMap
)

func (k MapKind) String() string {
	switch k {
	case SharedMap:
		return "shared"
	case IdentityMap:
		return "identity"
	default:
		return "per-user"
	}
}

// Model holds the learned TS-PPR parameters together with the feature
// extractor they were trained against. A Model is immutable after training
// and safe for concurrent scoring through the engine package, which owns
// the serving hot path.
type Model struct {
	K, F    int
	MapType MapKind

	U *linalg.Matrix // numUsers × K
	V *linalg.Matrix // numItems × K
	A []*linalg.Matrix
	// A layout: PerUserMap → len numUsers; SharedMap → len 1;
	// IdentityMap → nil.

	Extractor *features.Extractor

	// effW caches the per-user effective feature weights w_u = A_uᵀu
	// (numUsers × F), folded once by Precompute so per-item scoring is two
	// dot products instead of a K×F matrix-vector product per call. Nil
	// until Precompute runs; nil (not serialized) in model files.
	effW *linalg.Matrix

	// effW32/v32 are float32 quantizations of the serving tables (w_u
	// rows and V rows), built by Precompute for the engine's quantized
	// scoring path: half the cache traffic per dot product at ~1e-7
	// relative error per element. Under IdentityMap effW32 quantizes U
	// rows directly (w_u = u). Derived, never serialized; the float64
	// tables remain the master copy and online updates re-quantize the
	// touched rows.
	effW32 *linalg.Matrix32
	v32    *linalg.Matrix32
}

// Validate checks that the model is fit to serve: consistent shapes and
// finite parameters throughout. A file can parse (and even checksum)
// cleanly yet hold NaN/Inf parameters if a diverged training run saved
// it, so serving layers validate before swapping a model in.
func (m *Model) Validate() error {
	if m.U == nil || m.V == nil || m.Extractor == nil {
		return fmt.Errorf("core: model missing tables")
	}
	if m.U.Cols != m.K || m.V.Cols != m.K {
		return fmt.Errorf("core: latent table width %d/%d != K %d", m.U.Cols, m.V.Cols, m.K)
	}
	if m.Extractor.Dim() != m.F {
		return fmt.Errorf("core: extractor dim %d != F %d", m.Extractor.Dim(), m.F)
	}
	if !finiteSlice(m.U.Data) {
		return fmt.Errorf("core: non-finite value in U")
	}
	if !finiteSlice(m.V.Data) {
		return fmt.Errorf("core: non-finite value in V")
	}
	for i, a := range m.A {
		if !finiteSlice(a.Data) {
			return fmt.Errorf("core: non-finite value in A[%d]", i)
		}
	}
	// A model that validates is a model about to serve: fold the
	// effective feature weights now so the first request after a load or
	// a SIGHUP hot-swap is already on the two-dot-product path.
	m.Precompute()
	return nil
}

func finiteSlice(xs []float64) bool {
	for _, x := range xs {
		// NaN and ±Inf both fail this self-comparison / range test.
		if x != x || x > math.MaxFloat64 || x < -math.MaxFloat64 {
			return false
		}
	}
	return true
}

// NumUsers returns the number of users the model was trained over.
func (m *Model) NumUsers() int { return m.U.Rows }

// NumItems returns the number of items the model was trained over.
func (m *Model) NumItems() int { return m.V.Rows }

// Precompute folds the per-user effective feature weights w_u = A_uᵀu
// into a dense numUsers × F table, so per-item scoring needs two dot
// products (uᵀv + w_uᵀf) instead of re-deriving uᵀA_u per call. It runs
// at the end of Train, after ReadModel, and inside Validate (the
// load/hot-swap gate); calling it again rebuilds the table, which is how
// in-place mutators (warm starts, online updates applied wholesale)
// refresh it. Under IdentityMap no table is built: w_u is u itself.
//
// Precompute is not safe to call concurrently with readers; every
// production path runs it before the model is published for serving.
func (m *Model) Precompute() {
	if m.MapType == IdentityMap {
		m.effW = nil
		m.effW32 = linalg.Quantize(m.U)
		m.v32 = linalg.Quantize(m.V)
		return
	}
	eff := linalg.NewMatrix(m.U.Rows, m.F)
	for u := 0; u < m.U.Rows; u++ {
		m.foldUser(eff.Row(u), u)
	}
	m.effW = eff
	m.effW32 = linalg.Quantize(eff)
	m.v32 = linalg.Quantize(m.V)
}

// foldUser writes w_u = A_uᵀu into dst (length F). The summation order
// (k innermost, ascending) is part of the model's observable behaviour:
// scores are reproducible bit for bit across precomputed and per-call
// derivations only if both fold in this order.
func (m *Model) foldUser(dst linalg.Vector, u int) {
	uvec := m.U.Row(u)
	a := m.mapFor(u)
	for f := 0; f < m.F; f++ {
		s := 0.0
		for k := 0; k < m.K; k++ {
			s += uvec[k] * a.At(k, f)
		}
		dst[f] = s
	}
}

// refreshUser re-folds one user's effective weights after an in-place
// parameter update (the online updater's SGD steps). A no-op before
// Precompute has run or under IdentityMap.
func (m *Model) refreshUser(u int) {
	if u < 0 || u >= m.U.Rows {
		return
	}
	if m.effW != nil && u < m.effW.Rows {
		m.foldUser(m.effW.Row(u), u)
		if m.effW32 != nil && u < m.effW32.Rows {
			m.effW32.QuantizeRow(u, m.effW.Row(u))
		}
		return
	}
	// IdentityMap: w_u is the U row itself — only the quantized shadow
	// needs refreshing.
	if m.MapType == IdentityMap && m.effW32 != nil && u < m.effW32.Rows {
		m.effW32.QuantizeRow(u, m.U.Row(u))
	}
}

// refreshItem re-quantizes one item's factor row after an in-place
// parameter update (the online updater's V-row SGD steps). A no-op
// before Precompute has run.
func (m *Model) refreshItem(v int) {
	if m.v32 == nil || v < 0 || v >= m.v32.Rows {
		return
	}
	m.v32.QuantizeRow(v, m.V.Row(v))
}

// EffectiveFeatureWeights returns w_u = A_uᵀu, the model's personalized
// linear weighting of the behavioural features for user u: entry f is the
// marginal effect of feature f on user u's preference. Under IdentityMap
// it is u itself (K = F). The returned vector shares the model's storage
// and must be treated as read-only; it is served from the table built by
// Precompute (built on first use if needed), so steady-state calls
// allocate nothing.
//
// This is both the scoring hot path's dynamic-term operand and the
// model's main interpretability hook: comparing w_u across users shows
// *why* each user repeats (popularity-driven vs reconsumption-driven vs
// recency-driven), which is the behavioural heterogeneity the per-user
// maps exist to capture.
func (m *Model) EffectiveFeatureWeights(u int) linalg.Vector {
	if u < 0 || u >= m.U.Rows {
		panic(fmt.Sprintf("core: EffectiveFeatureWeights user %d out of range [0,%d)", u, m.U.Rows))
	}
	if m.MapType == IdentityMap {
		return m.U.Row(u)
	}
	if m.effW == nil {
		m.Precompute()
	}
	return m.effW.Row(u)
}

// EffectiveFeatureWeights32 returns the float32 quantization of w_u for
// the engine's mixed-precision scoring path. Same sharing and
// read-only contract as EffectiveFeatureWeights; built by Precompute
// (on first use if needed), so steady-state calls allocate nothing.
func (m *Model) EffectiveFeatureWeights32(u int) []float32 {
	if u < 0 || u >= m.U.Rows {
		panic(fmt.Sprintf("core: EffectiveFeatureWeights32 user %d out of range [0,%d)", u, m.U.Rows))
	}
	if m.effW32 == nil {
		m.Precompute()
	}
	return m.effW32.Row(u)
}

// ItemFactors32 returns the float32 quantization of item v's latent
// factor row. Same sharing and read-only contract as V.Row; built by
// Precompute (on first use if needed).
func (m *Model) ItemFactors32(v int) []float32 {
	if v < 0 || v >= m.V.Rows {
		panic(fmt.Sprintf("core: ItemFactors32 item %d out of range [0,%d)", v, m.V.Rows))
	}
	if m.v32 == nil {
		m.Precompute()
	}
	return m.v32.Row(v)
}

// mapFor returns the observable→latent map of user u, or nil under
// IdentityMap.
func (m *Model) mapFor(u int) *linalg.Matrix {
	switch m.MapType {
	case PerUserMap:
		return m.A[u]
	case SharedMap:
		return m.A[0]
	default:
		return nil
	}
}

// Scoring lives in the engine package: internal/engine owns candidate
// enumeration, pooled scratch, and Top-N selection over this model's
// tables. The model exposes exactly what the engine consumes — U/V rows,
// the extractor, and the precomputed EffectiveFeatureWeights.
