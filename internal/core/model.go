// Package core implements TS-PPR, the paper's contribution: a
// Time-Sensitive Personalized Pairwise Ranking model for recommendation
// for repeat consumption (RRC).
//
// The preference of user u for item v at time t is (paper Eq. 5)
//
//	r_uvt = uᵀ v + uᵀ A_u f_uvt
//
// where u, v ∈ R^K are static latent features, f_uvt ∈ R^F is the
// observable time-sensitive behavioural feature vector, and A_u ∈ R^{K×F}
// is a per-user linear map from observable space into latent preference
// space. The pairwise ranking probability p(v_i >_ut v_j) is the sigmoid
// of the preference difference (Eq. 6); parameters are fit by SGD on
// pre-sampled quadruples minimizing the regularized negative log-likelihood
// (Eq. 7, Algorithm 1).
package core

import (
	"fmt"
	"math"

	"tsppr/internal/features"
	"tsppr/internal/linalg"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
	"tsppr/internal/topk"
)

// MapKind selects how the observable→latent map A is parameterized. The
// paper's model is per-user maps; the alternatives exist for the §4.2.1
// discussion (identity when K=F) and the shared-map ablation.
type MapKind int

const (
	// PerUserMap is the paper's A_u: one K×F matrix per user.
	PerUserMap MapKind = iota
	// SharedMap uses a single global K×F matrix for all users.
	SharedMap
	// IdentityMap fixes A_u = I (requires K == F); the time-sensitive term
	// becomes uᵀ f_uvt directly (paper §4.2.1 case 2).
	IdentityMap
)

func (k MapKind) String() string {
	switch k {
	case SharedMap:
		return "shared"
	case IdentityMap:
		return "identity"
	default:
		return "per-user"
	}
}

// Model holds the learned TS-PPR parameters together with the feature
// extractor they were trained against. A Model is immutable after training
// and safe for concurrent scoring via independent Scorers.
type Model struct {
	K, F    int
	MapType MapKind

	U *linalg.Matrix // numUsers × K
	V *linalg.Matrix // numItems × K
	A []*linalg.Matrix
	// A layout: PerUserMap → len numUsers; SharedMap → len 1;
	// IdentityMap → nil.

	Extractor *features.Extractor
}

// Validate checks that the model is fit to serve: consistent shapes and
// finite parameters throughout. A file can parse (and even checksum)
// cleanly yet hold NaN/Inf parameters if a diverged training run saved
// it, so serving layers validate before swapping a model in.
func (m *Model) Validate() error {
	if m.U == nil || m.V == nil || m.Extractor == nil {
		return fmt.Errorf("core: model missing tables")
	}
	if m.U.Cols != m.K || m.V.Cols != m.K {
		return fmt.Errorf("core: latent table width %d/%d != K %d", m.U.Cols, m.V.Cols, m.K)
	}
	if m.Extractor.Dim() != m.F {
		return fmt.Errorf("core: extractor dim %d != F %d", m.Extractor.Dim(), m.F)
	}
	if !finiteSlice(m.U.Data) {
		return fmt.Errorf("core: non-finite value in U")
	}
	if !finiteSlice(m.V.Data) {
		return fmt.Errorf("core: non-finite value in V")
	}
	for i, a := range m.A {
		if !finiteSlice(a.Data) {
			return fmt.Errorf("core: non-finite value in A[%d]", i)
		}
	}
	return nil
}

func finiteSlice(xs []float64) bool {
	for _, x := range xs {
		// NaN and ±Inf both fail this self-comparison / range test.
		if x != x || x > math.MaxFloat64 || x < -math.MaxFloat64 {
			return false
		}
	}
	return true
}

// NumUsers returns the number of users the model was trained over.
func (m *Model) NumUsers() int { return m.U.Rows }

// NumItems returns the number of items the model was trained over.
func (m *Model) NumItems() int { return m.V.Rows }

// EffectiveFeatureWeights returns w_u = A_uᵀu, the model's personalized
// linear weighting of the behavioural features for user u: entry f is the
// marginal effect of feature f on user u's preference. Under IdentityMap
// it is u itself (K = F). The result is freshly allocated.
//
// This is the model's main interpretability hook: comparing w_u across
// users shows *why* each user repeats (popularity-driven vs
// reconsumption-driven vs recency-driven), which is the behavioural
// heterogeneity the per-user maps exist to capture.
func (m *Model) EffectiveFeatureWeights(u int) linalg.Vector {
	if u < 0 || u >= m.U.Rows {
		panic(fmt.Sprintf("core: EffectiveFeatureWeights user %d out of range [0,%d)", u, m.U.Rows))
	}
	uvec := m.U.Row(u)
	w := linalg.NewVector(m.F)
	a := m.mapFor(u)
	if a == nil { // IdentityMap: K == F
		copy(w, uvec)
		return w
	}
	for f := 0; f < m.F; f++ {
		s := 0.0
		for k := 0; k < m.K; k++ {
			s += uvec[k] * a.At(k, f)
		}
		w[f] = s
	}
	return w
}

// mapFor returns the observable→latent map of user u, or nil under
// IdentityMap.
func (m *Model) mapFor(u int) *linalg.Matrix {
	switch m.MapType {
	case PerUserMap:
		return m.A[u]
	case SharedMap:
		return m.A[0]
	default:
		return nil
	}
}

// Scorer evaluates preferences and produces Top-N recommendations. It owns
// scratch buffers, so each goroutine needs its own (obtain via NewScorer);
// the underlying model is shared read-only.
type Scorer struct {
	m     *Model
	f     linalg.Vector // F scratch: behavioural features
	y     linalg.Vector // K scratch: A_u f
	cands []seq.Item
	sel   *topk.Selector
}

// NewScorer returns a scorer bound to m.
func (m *Model) NewScorer() *Scorer {
	return &Scorer{
		m: m,
		f: linalg.NewVector(m.F),
		y: linalg.NewVector(m.K),
	}
}

// Factory returns a rec.Factory minting per-user scorers over the shared
// (read-only) model.
func (m *Model) Factory() rec.Factory {
	return rec.Factory{
		Name: "TS-PPR",
		New:  func(uint64) rec.Recommender { return m.NewScorer() },
	}
}

// Score returns r_uvt for item v against the user's current window.
func (s *Scorer) Score(u int, v seq.Item, w *seq.Window) float64 {
	m := s.m
	if u < 0 || u >= m.U.Rows {
		panic(fmt.Sprintf("core: Score user %d out of range [0,%d)", u, m.U.Rows))
	}
	uvec := m.U.Row(u)
	static := 0.0
	if int(v) < m.V.Rows && v >= 0 {
		static = linalg.Dot(uvec, m.V.Row(int(v)))
	}
	m.Extractor.Extract(s.f, v, w)
	var dynamic float64
	if a := m.mapFor(u); a != nil {
		a.MulVec(s.y, s.f)
		dynamic = linalg.Dot(uvec, s.y)
	} else {
		// IdentityMap: K == F, y = f.
		dynamic = linalg.Dot(uvec, linalg.Vector(s.f))
	}
	return static + dynamic
}

// Recommend appends the Top-N RRC recommendations to dst: the
// highest-scoring distinct window items not consumed in the last Ω steps.
// It implements rec.Recommender.
func (s *Scorer) Recommend(ctx *rec.Context, n int, dst []seq.Item) []seq.Item {
	if n <= 0 {
		return dst
	}
	s.cands = ctx.Window.Candidates(ctx.Omega, s.cands[:0])
	if len(s.cands) == 0 {
		return dst
	}
	if s.sel == nil || s.sel.K() != n {
		s.sel = topk.New(n)
	} else {
		s.sel.Reset()
	}
	for _, v := range s.cands {
		s.sel.Push(v, s.Score(ctx.User, v, ctx.Window))
	}
	return s.sel.Items(dst)
}
