package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"tsppr/internal/rngutil"
)

// TestReadModelNeverPanicsOnCorruption serializes a real model, then flips
// bytes, truncates and splices at random, asserting ReadModel either
// succeeds or returns an error — never panics, never allocates absurdly.
func TestReadModelNeverPanicsOnCorruption(t *testing.T) {
	train, numItems, ex, set := corpus(t, 5)
	m, _, err := Train(set, len(train), numItems, ex, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	rng := rngutil.New(31)

	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("ReadModel panicked: %v", r)
		}
	}()
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), blob...)
		switch trial % 3 {
		case 0: // flip a handful of bytes
			for i := 0; i < 1+rng.Intn(8); i++ {
				corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate
			corrupted = corrupted[:rng.Intn(len(corrupted))]
		case 2: // swap two random chunks
			a, b := rng.Intn(len(corrupted)), rng.Intn(len(corrupted))
			corrupted[a], corrupted[b] = corrupted[b], corrupted[a]
		}
		_, _ = ReadModel(bytes.NewReader(corrupted)) // must not panic
	}
}

// TestReadModelArbitraryBytes feeds fully random blobs.
func TestReadModelArbitraryBytes(t *testing.T) {
	f := func(blob []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %d bytes: %v", len(blob), r)
			}
		}()
		_, _ = ReadModel(bytes.NewReader(blob))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// FuzzReadModel drives ReadModel with arbitrary bytes seeded from a real
// v2 model, its v1 rendering, truncations, bit flips, and hostile shape
// headers. The invariant: ReadModel returns (model, nil) or (nil, error) —
// it never panics and never allocates from unvalidated shape claims.
// The seed corpus alone runs under plain `go test`; `go test -fuzz
// FuzzReadModel` explores further.
func FuzzReadModel(f *testing.F) {
	train, numItems, ex, set := corpus(f, 4)
	m, _, err := Train(set, len(train), numItems, ex, smallConfig())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		f.Fatal(err)
	}
	blob := buf.Bytes()
	f.Add(blob)
	f.Add(blob[:len(blob)/2])    // truncated mid-body
	f.Add(blob[:len(blob)-2])    // truncated in the checksum trailer
	f.Add([]byte(modelMagic))    // header only
	f.Add([]byte{})              // empty
	f.Add([]byte("TSPPRv9\nxx")) // unknown version
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	// Valid magic, absurd shape claim: must be rejected before allocating.
	hostile := append([]byte(modelMagic), bytes.Repeat([]byte{0xff}, 40)...)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadModel(bytes.NewReader(data))
		if (got == nil) == (err == nil) {
			t.Fatalf("got model=%v err=%v; want exactly one", got != nil, err)
		}
	})
}

// TestReadModelHostileHeader crafts a valid magic with absurd shape
// claims: the reader must reject them before allocating.
func TestReadModelHostileHeader(t *testing.T) {
	mk := func(k, f, mapType, users, items int64) []byte {
		var buf bytes.Buffer
		buf.WriteString(modelMagic)
		for _, v := range []int64{k, f, mapType, users, items} {
			for i := 0; i < 8; i++ {
				buf.WriteByte(byte(v >> (8 * i)))
			}
		}
		return buf.Bytes()
	}
	hostile := [][]byte{
		mk(1<<40, 4, 0, 10, 10), // absurd K
		mk(8, 1<<40, 0, 10, 10), // absurd F
		mk(8, 4, 0, 1<<40, 10),  // absurd users
		mk(8, 4, 0, 10, 1<<40),  // absurd items
		mk(8, 4, 9, 10, 10),     // unknown map kind
		mk(-1, 4, 0, 10, 10),    // negative K
		mk(8, 4, 0, -10, 10),    // negative users
	}
	for i, blob := range hostile {
		if _, err := ReadModel(bytes.NewReader(blob)); err == nil {
			t.Errorf("hostile header %d accepted", i)
		}
	}
}
