package core

import (
	"fmt"

	"tsppr/internal/linalg"
	"tsppr/internal/rngutil"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
)

// OnlineUpdater folds newly observed repeat consumptions into a trained
// model with a few SGD steps per event, instead of a full retrain — the
// serving-time counterpart of the paper's offline Algorithm 1. Each
// observed eligible repeat becomes a positive sample; negatives are drawn
// fresh from the live window's candidate set and features are extracted
// against the live window, exactly as the pre-sampler would have done.
//
// The updater mutates the model in place: do not call Observe concurrently
// with other Observe calls or with Scorers reading the same model. The
// usual serving pattern is a single updater goroutine owning the model and
// republishing an immutable snapshot after batches of updates.
type OnlineUpdater struct {
	m   *Model
	tr  trainer
	rng *rngutil.RNG

	// Negatives per observed positive (the paper's S, default 5 online).
	negatives int
	feat      linalg.Vector
	negFeat   linalg.Vector
	cands     []seq.Item
}

// OnlineConfig parameterizes an updater.
type OnlineConfig struct {
	// LearningRate for the online steps (default 0.01 — smaller than
	// offline training: the model is already near an optimum and single
	// events should nudge, not yank).
	LearningRate float64
	// Negatives per positive (default 5).
	Negatives int
	// Lambda/Gamma regularization applied during online steps
	// (defaults 0.01 / 0.05, the offline defaults).
	Lambda, Gamma float64
	Seed          uint64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.LearningRate == 0 {
		c.LearningRate = 0.01
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.Lambda == 0 {
		c.Lambda = 0.01
	}
	if c.Gamma == 0 {
		c.Gamma = 0.05
	}
	return c
}

// NewOnlineUpdater wraps a trained model. The model must have been
// produced by Train (or ReadModel) so its extractor is attached.
func NewOnlineUpdater(m *Model, cfg OnlineConfig) (*OnlineUpdater, error) {
	if m == nil || m.Extractor == nil {
		return nil, fmt.Errorf("core: OnlineUpdater requires a trained model with extractor")
	}
	cfg = cfg.withDefaults()
	if cfg.LearningRate <= 0 || cfg.Negatives <= 0 || cfg.Lambda < 0 || cfg.Gamma < 0 {
		return nil, fmt.Errorf("core: bad online config %+v", cfg)
	}
	ou := &OnlineUpdater{
		m: m,
		tr: trainer{m: m, cfg: Config{
			LearningRate: cfg.LearningRate,
			Lambda:       cfg.Lambda,
			Gamma:        cfg.Gamma,
		}},
		rng:       rngutil.New(cfg.Seed + 0x0411e),
		negatives: cfg.Negatives,
		feat:      linalg.NewVector(m.F),
		negFeat:   linalg.NewVector(m.F),
	}
	ou.tr.init()
	return ou, nil
}

// Observe folds one observed consumption into the model: if pos is an
// eligible repeat of the window (present, gap > omega) it performs one SGD
// step against each of up to Negatives freshly sampled window negatives.
// It returns the number of steps applied (0 when the event is not an
// eligible repeat, the user is unknown, or no negative exists).
//
// Call Observe *before* pushing pos into the window, mirroring the offline
// sampler's view.
func (ou *OnlineUpdater) Observe(user int, w *seq.Window, pos seq.Item, omega int) int {
	if user < 0 || user >= ou.m.NumUsers() {
		return 0
	}
	if int(pos) >= ou.m.NumItems() || pos < 0 {
		return 0
	}
	gap, ok := w.Gap(pos)
	if !ok || gap <= omega {
		return 0
	}
	ou.cands = w.Candidates(omega, ou.cands[:0])
	n := 0
	for _, c := range ou.cands {
		if c != pos && int(c) < ou.m.NumItems() {
			ou.cands[n] = c
			n++
		}
	}
	ou.cands = ou.cands[:n]
	if n == 0 {
		return 0
	}
	ou.m.Extractor.Extract(ou.feat, pos, w)

	steps := ou.negatives
	if steps > n {
		steps = n
	}
	// Partial Fisher-Yates for distinct negatives.
	for i := 0; i < steps; i++ {
		j := i + ou.rng.Intn(n-i)
		ou.cands[i], ou.cands[j] = ou.cands[j], ou.cands[i]
		neg := ou.cands[i]
		ou.m.Extractor.Extract(ou.negFeat, neg, w)
		ou.tr.step(sampling.Pair{
			User:    user,
			Pos:     pos,
			Neg:     neg,
			PosFeat: ou.feat,
			NegFeat: ou.negFeat,
		})
	}
	// The steps mutated u and A_u in place; re-fold this user's cached
	// effective feature weights so scoring stays consistent with the
	// updated parameters. The steps also nudged the positive's and the
	// selected negatives' V rows, so their quantized shadows must follow.
	ou.m.refreshUser(user)
	ou.m.refreshItem(int(pos))
	for _, neg := range ou.cands[:steps] {
		ou.m.refreshItem(int(neg))
	}
	return steps
}
