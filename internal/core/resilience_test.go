package core

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsppr/internal/faultinject"
)

// trainedModel returns a small trained model for I/O tests.
func trainedModel(t testing.TB) *Model {
	t.Helper()
	train, numItems, ex, set := corpus(t, 5)
	m, _, err := Train(set, len(train), numItems, ex, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// writeV1 serializes m in the legacy checksum-free v1 format.
func writeV1(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, err := bw.WriteString(modelMagicV1); err != nil {
		t.Fatal(err)
	}
	cw := &countingWriter{w: bw}
	m.writeBody(cw)
	if cw.err != nil {
		t.Fatal(cw.err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadModelV1Compat(t *testing.T) {
	m := trainedModel(t)
	got, err := ReadModel(bytes.NewReader(writeV1(t, m)))
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if got.K != m.K || got.F != m.F || got.NumUsers() != m.NumUsers() {
		t.Fatalf("v1 shape mismatch: K=%d F=%d users=%d", got.K, got.F, got.NumUsers())
	}
	for i := range m.U.Data {
		if got.U.Data[i] != m.U.Data[i] {
			t.Fatal("v1 roundtrip changed U")
		}
	}
}

func TestReadModelV2DetectsBitFlip(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Flip a bit deep inside the float tables: the value still parses as
	// a float64, so only the checksum can catch it.
	for _, off := range []int{len(blob) / 2, len(blob) - 100, 64} {
		corrupted := append([]byte(nil), blob...)
		corrupted[off] ^= 0x10
		_, err := ReadModel(bytes.NewReader(corrupted))
		if err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
	}
	// A flip in the float region specifically must surface as a checksum
	// mismatch (header flips may fail shape validation instead).
	corrupted := append([]byte(nil), blob...)
	corrupted[len(blob)-100] ^= 0x10
	_, err := ReadModel(bytes.NewReader(corrupted))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("err = %v, want checksum mismatch", err)
	}
}

func TestReadModelV2DetectsTruncation(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for _, cut := range []int{1, 2, 4, 100, len(blob) / 2} {
		if _, err := ReadModel(bytes.NewReader(blob[:len(blob)-cut])); err == nil {
			t.Fatalf("truncation by %d bytes accepted", cut)
		}
	}
}

func TestSaveFileAtomicRoundtrip(t *testing.T) {
	m := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.tsppr")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveFileShortWriteLeavesOldModel(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	m := trainedModel(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.tsppr")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// A save that dies mid-write must fail loudly and leave the previous
	// file — and no temp litter — behind.
	faultinject.Arm("core.io.write", faultinject.Plan{Mode: faultinject.ShortWrite})
	if err := m.SaveFile(path); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	faultinject.Reset()
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("previous model damaged: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestSaveFileCorruptionCaughtOnLoad(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	m := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.tsppr")
	// Corrupt the second buffered chunk (the first holds the magic and
	// header, whose damage may fail shape checks rather than the CRC).
	faultinject.Arm("core.io.write", faultinject.Plan{Mode: faultinject.Corrupt, After: 1, Count: 1, Seed: 9})
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	if _, err := LoadFile(path); err == nil {
		t.Fatal("silently corrupted file accepted")
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	m := trainedModel(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.U.Data[3] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Fatal("NaN in U accepted")
	}
	m.U.Data[3] = 0
	m.A[0].Data[0] = math.Inf(1)
	if err := m.Validate(); err == nil {
		t.Fatal("Inf in A accepted")
	}
}

func TestTrainDivergenceBackoff(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	cfg := Config{
		K: 8, Seed: 3,
		// A learning rate this large makes the (1−αγ) shrinkage factor
		// hugely negative, so the parameters explode to Inf within a few
		// steps of every checkpoint until backoff tames α.
		LearningRate: 500,
		MaxSteps:     30_000,
		CheckEvery:   1_000,
	}
	m, stats, err := Train(set, len(train), numItems, ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Backoffs == 0 {
		t.Fatal("no backoff despite exploding learning rate")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("returned model not finite after backoff: %v", err)
	}
	sawDiverged := false
	var prevLR float64
	for _, cp := range stats.Checkpoints {
		if cp.Diverged {
			sawDiverged = true
			if prevLR != 0 && cp.LR >= prevLR {
				t.Fatalf("LR did not shrink on divergence: %v -> %v", prevLR, cp.LR)
			}
		}
		prevLR = cp.LR
	}
	if !sawDiverged {
		t.Fatal("no diverged checkpoint recorded")
	}
}

func TestTrainHealthyRunHasNoBackoffs(t *testing.T) {
	train, numItems, ex, set := corpus(t, 6)
	_, stats, err := Train(set, len(train), numItems, ex, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Backoffs != 0 || stats.Diverged {
		t.Fatalf("healthy run reported backoffs=%d diverged=%v", stats.Backoffs, stats.Diverged)
	}
}
