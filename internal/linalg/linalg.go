// Package linalg implements the small dense vector/matrix kernels that the
// TS-PPR trainer needs: inner products, scaled accumulation (axpy),
// rank-one (outer product) updates and Frobenius norms.
//
// The dimensions involved are tiny (K ≈ 40 latent factors, F = 4 observable
// features), so the package favors simple, bounds-check-friendly loops over
// cleverness. Matrices are dense row-major slices to keep per-user
// transform matrices A_u cache-friendly and trivially serializable.
package linalg

import (
	"fmt"
	"math"

	"tsppr/internal/rngutil"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Dot returns the inner product xᵀy. It panics on dimension mismatch: a
// silent truncation would corrupt training invisibly.
//
// The body is 4-way unrolled but keeps a single accumulator added in
// ascending index order: the summation order is observable behaviour
// (model scores must reproduce bit for bit across the precomputed and
// per-call folds, see core.Model.Precompute), so the unroll may only
// shave loop and bounds-check overhead, never reassociate the adds.
func Dot(x, y Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4, y4 := x[i:i+4:i+4], y[i:i+4:i+4]
		s += x4[0] * y4[0]
		s += x4[1] * y4[1]
		s += x4[2] * y4[2]
		s += x4[3] * y4[3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// DotF32 returns the mixed-precision inner product xᵀy where y is a
// float32-quantized vector: each y element is widened to float64 before
// the multiply, so the only precision loss is y's storage quantization
// (~1e-7 relative per element). Same single-accumulator ascending-order
// contract as Dot. It panics on dimension mismatch.
func DotF32(x Vector, y []float32) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: DotF32 dimension mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4, y4 := x[i:i+4:i+4], y[i:i+4:i+4]
		s += x4[0] * float64(y4[0])
		s += x4[1] * float64(y4[1])
		s += x4[2] * float64(y4[2])
		s += x4[3] * float64(y4[3])
	}
	for ; i < len(x); i++ {
		s += x[i] * float64(y[i])
	}
	return s
}

// QuantizeVec stores the float32 quantization of src into dst. It
// panics on length mismatch.
func QuantizeVec(dst []float32, src Vector) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: QuantizeVec dimension mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// Axpy performs y += a*x in place.
func Axpy(a float64, x, y Vector) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy dimension mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale performs x *= a in place.
func Scale(a float64, x Vector) {
	for i := range x {
		x[i] *= a
	}
}

// Sub stores x-y into dst and returns dst. dst may alias x or y.
func Sub(dst, x, y Vector) Vector {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("linalg: Sub dimension mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
	return dst
}

// Copy copies src into dst. It panics on length mismatch.
func Copy(dst, src Vector) {
	if len(dst) != len(src) {
		panic("linalg: Copy dimension mismatch")
	}
	copy(dst, src)
}

// Norm2 returns the Euclidean norm ‖x‖₂.
func Norm2(x Vector) float64 {
	return math.Sqrt(Dot(x, x))
}

// Clone returns a deep copy of x.
func (x Vector) Clone() Vector {
	c := make(Vector, len(x))
	copy(c, x)
	return c
}

// Matrix is a dense row-major rows×cols matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: NewMatrix with negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing the matrix's storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = M·x where x has length Cols and dst length Rows.
// dst must not alias x. It returns dst for chaining.
func (m *Matrix) MulVec(dst, x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec input length %d != cols %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec output length %d != rows %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : i*m.Cols+m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// AddOuter performs M += a · u vᵀ in place (a rank-one update), where u has
// length Rows and v has length Cols. This is the gradient step for the
// per-user transform matrix A_u (paper Eq. 15).
func (m *Matrix) AddOuter(a float64, u, v Vector) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic("linalg: AddOuter dimension mismatch")
	}
	for i, ui := range u {
		row := m.Data[i*m.Cols : i*m.Cols+m.Cols]
		s := a * ui
		for j, vj := range v {
			row[j] += s * vj
		}
	}
}

// ScaleInPlace performs M *= a in place.
func (m *Matrix) ScaleInPlace(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// FrobeniusNorm returns ‖M‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// FrobeniusNormSq returns ‖M‖_F², which is what the regularizer needs —
// avoiding the sqrt keeps objective evaluation cheap.
func (m *Matrix) FrobeniusNormSq() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

// FillGaussian fills m with N(0, stddev²) variates from rng.
func (m *Matrix) FillGaussian(rng *rngutil.RNG, stddev float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * stddev
	}
}

// FillGaussianVec fills x with N(0, stddev²) variates from rng.
func FillGaussianVec(rng *rngutil.RNG, x Vector, stddev float64) {
	for i := range x {
		x[i] = rng.NormFloat64() * stddev
	}
}

// Matrix32 is a dense row-major rows×cols float32 matrix: the storage
// format for quantized serving tables (half the cache traffic of a
// Matrix at ~1e-7 relative quantization error per element). It is a
// derived, read-mostly structure — built by Quantize from a float64
// master — so it carries only the accessors scoring needs.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix32 returns a zero rows×cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic("linalg: NewMatrix32 with negative dimension")
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice sharing the matrix's storage.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// QuantizeRow stores the float32 quantization of src into row i.
func (m *Matrix32) QuantizeRow(i int, src Vector) { QuantizeVec(m.Row(i), src) }

// Quantize returns the float32 quantization of m.
func Quantize(m *Matrix) *Matrix32 {
	q := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		q.Data[i] = float32(v)
	}
	return q
}

// Equal reports whether a and b have the same shape and all elements agree
// to within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
