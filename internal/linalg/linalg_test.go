package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"tsppr/internal/rngutil"
)

func TestDot(t *testing.T) {
	x := Vector{1, 2, 3}
	y := Vector{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(Vector{}, Vector{}); got != 0 {
		t.Errorf("empty Dot = %v", got)
	}
}

func TestDotSymmetry(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x, y := Vector(a[:]), Vector(b[:])
		for _, v := range append(append([]float64{}, a[:]...), b[:]...) {
			// Skip inputs whose products overflow: Inf−Inf accumulation
			// yields NaN, and NaN ≠ NaN would be a false failure.
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true
			}
		}
		return Dot(x, y) == Dot(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestAxpy(t *testing.T) {
	y := Vector{1, 1, 1}
	Axpy(2, Vector{1, 2, 3}, y)
	want := Vector{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestScaleSub(t *testing.T) {
	x := Vector{2, 4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("Scale = %v", x)
	}
	dst := NewVector(2)
	Sub(dst, Vector{5, 6}, Vector{1, 2})
	if dst[0] != 4 || dst[1] != 4 {
		t.Errorf("Sub = %v", dst)
	}
	// Aliased destination.
	a := Vector{5, 6}
	Sub(a, a, Vector{1, 2})
	if a[0] != 4 || a[1] != 4 {
		t.Errorf("aliased Sub = %v", a)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2(Vector{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestVectorClone(t *testing.T) {
	x := Vector{1, 2}
	c := x.Clone()
	c[0] = 9
	if x[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Errorf("Row = %v", row)
	}
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Error("Row must alias the matrix storage")
	}
}

func TestIdentityMulVec(t *testing.T) {
	m := Identity(3)
	x := Vector{1, 2, 3}
	dst := NewVector(3)
	m.MulVec(dst, x)
	for i := range x {
		if dst[i] != x[i] {
			t.Fatalf("I·x = %v", dst)
		}
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := NewVector(2)
	m.MulVec(dst, Vector{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Errorf("MulVec = %v", dst)
	}
}

func TestMulVecPanics(t *testing.T) {
	m := NewMatrix(2, 3)
	for _, tc := range []struct{ in, out int }{{2, 2}, {3, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MulVec with in=%d out=%d should panic", tc.in, tc.out)
				}
			}()
			m.MulVec(NewVector(tc.out), NewVector(tc.in))
		}()
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, Vector{1, 2}, Vector{3, 4})
	want := []float64{6, 8, 12, 16}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

// AddOuter must agree with MulVec: (M + a·u vᵀ)·x == M·x + a·(vᵀx)·u.
func TestAddOuterMulVecConsistency(t *testing.T) {
	rng := rngutil.New(4)
	m := NewMatrix(5, 3)
	m.FillGaussian(rng, 1)
	u, v, x := NewVector(5), NewVector(3), NewVector(3)
	FillGaussianVec(rng, u, 1)
	FillGaussianVec(rng, v, 1)
	FillGaussianVec(rng, x, 1)

	before := NewVector(5)
	m.MulVec(before, x)
	m2 := m.Clone()
	m2.AddOuter(0.7, u, v)
	after := NewVector(5)
	m2.MulVec(after, x)

	scale := 0.7 * Dot(v, x)
	for i := range after {
		want := before[i] + scale*u[i]
		if math.Abs(after[i]-want) > 1e-12 {
			t.Fatalf("row %d: got %v want %v", i, after[i], want)
		}
	}
}

func TestFrobenius(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 2, 4})
	if got := m.FrobeniusNormSq(); got != 25 {
		t.Errorf("FrobeniusNormSq = %v", got)
	}
	if got := m.FrobeniusNorm(); got != 5 {
		t.Errorf("FrobeniusNorm = %v", got)
	}
}

func TestScaleInPlace(t *testing.T) {
	m := NewMatrix(1, 2)
	copy(m.Data, []float64{2, 4})
	m.ScaleInPlace(0.5)
	if m.Data[0] != 1 || m.Data[1] != 2 {
		t.Errorf("ScaleInPlace = %v", m.Data)
	}
}

func TestMatrixCloneAndEqual(t *testing.T) {
	rng := rngutil.New(1)
	m := NewMatrix(3, 4)
	m.FillGaussian(rng, 1)
	c := m.Clone()
	if !Equal(m, c, 0) {
		t.Fatal("clone differs")
	}
	c.Data[0] += 1
	if Equal(m, c, 0.5) {
		t.Fatal("Equal ignored a 1.0 difference at tol 0.5")
	}
	if Equal(m, NewMatrix(4, 3), 1e9) {
		t.Fatal("Equal ignored shape mismatch")
	}
}

func TestFillGaussianMoments(t *testing.T) {
	rng := rngutil.New(6)
	m := NewMatrix(200, 200)
	m.FillGaussian(rng, 0.5)
	var sum, sumSq float64
	for _, v := range m.Data {
		sum += v
		sumSq += v * v
	}
	n := float64(len(m.Data))
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean %v too far from 0", mean)
	}
	if math.Abs(sd-0.5) > 0.01 {
		t.Errorf("stddev %v too far from 0.5", sd)
	}
}

func BenchmarkDot40(b *testing.B) {
	x, y := NewVector(40), NewVector(40)
	rng := rngutil.New(1)
	FillGaussianVec(rng, x, 1)
	FillGaussianVec(rng, y, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkMulVec40x4(b *testing.B) {
	m := NewMatrix(40, 4)
	m.FillGaussian(rngutil.New(1), 1)
	x, dst := NewVector(4), NewVector(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkAddOuter40x4(b *testing.B) {
	m := NewMatrix(40, 4)
	u, v := NewVector(40), NewVector(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AddOuter(0.01, u, v)
	}
}

func TestCopy(t *testing.T) {
	dst := NewVector(3)
	Copy(dst, Vector{1, 2, 3})
	if dst[0] != 1 || dst[2] != 3 {
		t.Fatalf("Copy = %v", dst)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Copy(NewVector(2), Vector{1, 2, 3})
}

func TestAxpyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Axpy(1, Vector{1}, Vector{1, 2})
}

func TestSubPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sub(NewVector(2), Vector{1}, Vector{1, 2})
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 3)
}

func TestAddOuterPanics(t *testing.T) {
	m := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.AddOuter(1, Vector{1, 2, 3}, Vector{1, 2, 3})
}

// naiveDot is the unrolled Dot's reference: one accumulator, ascending
// index order, no unrolling. The unroll may only shave loop overhead —
// any reassociation of the adds would change observable model scores —
// so the two must agree bit for bit, not just within tolerance.
func naiveDot(x, y Vector) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func TestDotBitIdenticalToNaive(t *testing.T) {
	rng := rngutil.New(9)
	for n := 0; n <= 10; n++ {
		x, y := NewVector(n), NewVector(n)
		FillGaussianVec(rng, x, 1e3)
		FillGaussianVec(rng, y, 1e3)
		got, want := Dot(x, y), naiveDot(x, y)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("n=%d: Dot = %x, naive = %x", n, got, want)
		}
	}
	f := func(a, b [13]float64) bool {
		x, y := Vector(a[:]), Vector(b[:])
		got, want := Dot(x, y), naiveDot(x, y)
		return math.Float64bits(got) == math.Float64bits(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotF32(t *testing.T) {
	x := Vector{1, 2, 3, 4, 5}
	y := []float32{5, 4, 3, 2, 1}
	if got := DotF32(x, y); got != 35 {
		t.Errorf("DotF32 = %v, want 35", got)
	}
	if got := DotF32(Vector{}, []float32{}); got != 0 {
		t.Errorf("empty DotF32 = %v", got)
	}
}

// DotF32 against a float32-quantized copy must match the float64 Dot to
// within y's storage quantization: ~2⁻²⁴ relative per element, summed.
func TestDotF32QuantizationError(t *testing.T) {
	rng := rngutil.New(11)
	for n := 0; n <= 10; n++ {
		x, y := NewVector(n), NewVector(n)
		FillGaussianVec(rng, x, 1)
		FillGaussianVec(rng, y, 1)
		y32 := make([]float32, n)
		QuantizeVec(y32, y)
		got, want := DotF32(x, y32), Dot(x, y)
		if math.Abs(got-want) > 1e-6*float64(n+1) {
			t.Errorf("n=%d: DotF32 = %v, Dot = %v", n, got, want)
		}
	}
}

// With float32-representable inputs, DotF32 must be bit-identical to
// Dot: widening is exact and the summation order contract is shared.
func TestDotF32BitIdenticalOnExactInputs(t *testing.T) {
	rng := rngutil.New(13)
	for n := 0; n <= 10; n++ {
		x, y := NewVector(n), NewVector(n)
		FillGaussianVec(rng, x, 1)
		FillGaussianVec(rng, y, 1)
		y32 := make([]float32, n)
		QuantizeVec(y32, y)
		for i, v := range y32 {
			y[i] = float64(v) // make the float64 master exactly representable
		}
		got, want := DotF32(x, y32), Dot(x, y)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("n=%d: DotF32 = %x, Dot = %x", n, got, want)
		}
	}
}

func TestDotF32PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DotF32(Vector{1}, []float32{1, 2})
}

func TestQuantizeVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QuantizeVec(make([]float32, 2), Vector{1, 2, 3})
}

func TestQuantizeMatrix(t *testing.T) {
	rng := rngutil.New(17)
	m := NewMatrix(3, 4)
	m.FillGaussian(rng, 1)
	q := Quantize(m)
	if q.Rows != 3 || q.Cols != 4 || len(q.Data) != 12 {
		t.Fatalf("Quantize shape = %dx%d len %d", q.Rows, q.Cols, len(q.Data))
	}
	for i, v := range m.Data {
		if q.Data[i] != float32(v) {
			t.Fatalf("element %d: %v != float32(%v)", i, q.Data[i], v)
		}
	}
	row := q.Row(1)
	if len(row) != 4 || row[0] != float32(m.At(1, 0)) {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 9
	if q.Data[4] != 9 {
		t.Fatal("Matrix32.Row must alias storage")
	}
	q.QuantizeRow(1, m.Row(1))
	if q.Data[4] != float32(m.At(1, 0)) {
		t.Fatal("QuantizeRow did not restore the row")
	}
}

func TestNewMatrix32PanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix32(2, -1)
}

func BenchmarkDotF32x40(b *testing.B) {
	x := NewVector(40)
	y := make([]float32, 40)
	rng := rngutil.New(1)
	FillGaussianVec(rng, x, 1)
	tmp := NewVector(40)
	FillGaussianVec(rng, tmp, 1)
	QuantizeVec(y, tmp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DotF32(x, y)
	}
}
