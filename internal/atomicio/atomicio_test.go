package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsppr/internal/faultinject"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, "", func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, "", func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "second" {
		t.Fatalf("content = %q", b)
	}
}

func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, "", func(w io.Writer) error {
		_, err := io.WriteString(w, "good")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, "", func(w io.Writer) error {
		_, _ = io.WriteString(w, "partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "good" {
		t.Fatalf("content = %q after failed write", b)
	}
	// The temp file must have been cleaned up.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteFileInjectedShortWrite(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	path := filepath.Join(t.TempDir(), "out.txt")
	faultinject.Arm("atomicio.test", faultinject.Plan{Mode: faultinject.ShortWrite})
	err := WriteFile(path, "atomicio.test", func(w io.Writer) error {
		_, err := io.WriteString(w, "doomed payload")
		return err
	})
	if err == nil {
		t.Fatal("short write not surfaced")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("target exists after failed write (err=%v)", serr)
	}
}
