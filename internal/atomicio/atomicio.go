// Package atomicio provides crash-safe file replacement: bytes are
// streamed to a temporary file in the destination directory, fsynced, and
// renamed over the target, so readers never observe a torn or truncated
// file and an interrupted writer leaves the previous contents intact.
//
// It exists so every durable artifact in the pipeline — model files,
// training checkpoints, eval progress, tuning cells — shares one write
// path with one fault-injection story.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tsppr/internal/faultinject"
)

// WriteFile streams fn into a temp file next to path, fsyncs it, and
// renames it over path. On any error the temp file is removed and the
// existing file at path is left untouched. When point is non-empty the
// write stream passes through that fault-injection point, so tests can
// simulate full disks, kills mid-write, and silent corruption.
func WriteFile(path, point string, fn func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var w io.Writer = tmp
	if point != "" {
		w = faultinject.WrapWriter(point, tmp)
	}
	if err := fn(w); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmp = nil // renamed away; nothing to clean up
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
