// Package obs is the stdlib-only observability layer shared by every
// binary in the repo: a Registry of named counters, gauges, and
// fixed-bucket histograms with a Prometheus-text-format exporter
// (expfmt.go). It exists so the serving hot path (internal/engine), the
// write-ahead log (internal/wal), the evaluation replay (internal/eval),
// and the HTTP endpoints all report latency and throughput through one
// mechanism instead of the ad-hoc per-struct atomics that preceded it.
//
// # Hot-path discipline
//
// The record path (Counter.Add, Gauge.Set, Histogram.Observe) is
// lock-free — a handful of atomic operations, zero heap allocations —
// so instrumenting a zero-allocation code path keeps it zero-allocation
// (pinned by BenchmarkRecommendInstrumented in internal/engine). The
// read path is atomic loads; Histogram.Snapshot fills a caller-provided
// slice so steady-state reads allocate nothing.
//
// # Nil safety
//
// Every method is a no-op on a nil receiver: a nil *Registry hands out
// nil *Counter/*Gauge/*Histogram handles whose methods record nothing.
// Library packages therefore take the registry as an optional
// dependency — uninstrumented callers pass nil and pay only a nil check.
//
// # Naming
//
// A metric name is a Prometheus family name optionally followed by one
// label block, e.g.
//
//	rrc_http_requests_total{endpoint="/recommend"}
//
// All series of one family share a type (and, for histograms, bucket
// bounds). Registration is idempotent: asking for an existing name
// returns the existing handle, so a hot-swapped component re-registering
// its metrics keeps accumulating into the same series.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind discriminates the family types the registry understands.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// Registry holds metric families and exports them in Prometheus text
// format. The zero value is NOT ready to use; call NewRegistry. A nil
// *Registry is a valid "record nothing" sink.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// pendingHelp holds Help text registered before the family's first
	// series appears.
	pendingHelp map[string]string
}

// family groups every series sharing one metric name prefix and type.
type family struct {
	name   string
	kind   metricKind
	help   string
	bounds []float64          // histogram families only; shared by all series
	series map[string]*series // keyed by canonical label block ("" = unlabeled)
}

// series is one (family, label-set) time series.
type series struct {
	labels string // canonical label block without braces, "" if none
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Help sets the # HELP text for a family. Safe before or after the
// family's first series is registered; no-op on a nil registry.
func (r *Registry) Help(familyName, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[familyName]; ok {
		f.help = text
		return
	}
	if r.pendingHelp == nil {
		r.pendingHelp = map[string]string{}
	}
	r.pendingHelp[familyName] = text
}

// Counter returns the counter for name, registering it on first use.
// name may carry a label block: `requests_total{endpoint="/x"}`. Returns
// nil (a valid no-op handle) on a nil registry. Panics if the family is
// already registered as a different type — a programming error.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.seriesFor(name, counterKind, nil).c
}

// Gauge returns the gauge for name, registering it on first use. Returns
// nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.seriesFor(name, gaugeKind, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gf != nil {
		panic(fmt.Sprintf("obs: %s already registered as a gauge func", name))
	}
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at export
// time — for values another subsystem already tracks (session counts,
// applied LSNs) that would otherwise need double bookkeeping. fn must be
// safe to call from any goroutine. No-op on a nil registry; re-registering
// replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	s := r.seriesFor(name, gaugeKind, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g != nil {
		panic(fmt.Sprintf("obs: %s already registered as a plain gauge", name))
	}
	s.gf = fn
}

// Histogram returns the histogram for name, registering it with the
// given ascending bucket upper bounds on first use. Every series of one
// family shares the family's bounds (the first registration wins).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	s := r.seriesFor(name, histogramKind, bounds)
	return s.h
}

// seriesFor finds or creates the series for name, enforcing family/type
// coherence. Counter and histogram handles are minted under the lock so
// concurrent registrations of the same series (e.g. parallel shard
// recovery opening WALs over one registry) hand out one shared handle.
func (r *Registry) seriesFor(name string, kind metricKind, bounds []float64) *series {
	fam, labels := splitName(name)
	if err := checkFamilyName(fam); err != nil {
		panic("obs: " + err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[fam]
	if !ok {
		f = &family{name: fam, kind: kind, series: map[string]*series{}}
		if kind == histogramKind {
			f.bounds = checkBounds(fam, bounds)
		}
		if help, ok := r.pendingHelp[fam]; ok {
			f.help = help
			delete(r.pendingHelp, fam)
		}
		r.families[fam] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s already registered as a %s, asked for %s", fam, f.kind, kind))
	}
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels}
		if kind == histogramKind {
			s.h = newHistogram(f.bounds)
		}
		f.series[labels] = s
	}
	if kind == counterKind && s.c == nil {
		s.c = &Counter{}
	}
	return s
}

// SumCounters returns the sum of every series of a counter family — the
// thin aggregate view legacy endpoints (GET /stats) report. Returns 0
// for a nil registry, an unknown family, or a non-counter family.
func (r *Registry) SumCounters(familyName string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[familyName]
	if !ok || f.kind != counterKind {
		return 0
	}
	var total int64
	for _, s := range f.series {
		total += s.c.Value()
	}
	return total
}

// splitName separates `family{label="v"}` into the family name and the
// canonical label block (no braces, "" when unlabeled).
func splitName(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	fam = name[:i]
	rest := name[i:]
	if len(rest) < 2 || rest[0] != '{' || rest[len(rest)-1] != '}' {
		panic(fmt.Sprintf("obs: malformed label block in %q", name))
	}
	return fam, rest[1 : len(rest)-1]
}

// checkFamilyName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkFamilyName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// checkBounds validates histogram bounds: non-empty, finite, strictly
// ascending. Returns a private copy.
func checkBounds(fam string, bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %s with no buckets", fam))
	}
	out := append([]float64(nil), bounds...)
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %s bucket %d is not finite", fam, i))
		}
		if i > 0 && b <= out[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly ascending at %d", fam, i))
		}
	}
	return out
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are a caller bug but are not checked on
// the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus `le` (cumulative
// upper bound) semantics: an observation lands in the first bucket whose
// bound is >= the value; values above the last bound land in the
// implicit +Inf overflow bucket, values below the first bound in the
// first ("underflow") bucket. The record path is lock-free: one linear
// scan over the bounds (they are few and cache-resident), one atomic
// bucket increment, one CAS-loop float add for the sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. Safe for concurrent use; no-op on a nil
// receiver; zero heap allocations.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds — the Prometheus base unit for
// latency histograms.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot appends the per-bucket (non-cumulative) counts to dst —
// len(bounds)+1 entries, the last being the +Inf overflow bucket — and
// returns them with the current sum and total count. Passing a dst with
// sufficient capacity makes the read allocation-free; concurrent
// observers may land between bucket reads, so the snapshot is
// per-bucket-atomic, not globally atomic (the Prometheus exposition has
// the same property). On a nil receiver it returns (dst, 0, 0).
func (h *Histogram) Snapshot(dst []uint64) (buckets []uint64, sum float64, count uint64) {
	if h == nil {
		return dst, 0, 0
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		dst = append(dst, c)
		count += c
	}
	return dst, h.Sum(), count
}

// Bounds returns the histogram's bucket upper bounds (nil on nil). The
// returned slice must not be mutated.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor: start, start·factor, … Panics on
// non-positive start, factor <= 1, or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%v, %v, %d) out of range", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default latency histogram: 50µs to ~1.6s in
// ×2 steps, wide enough for an in-memory scorer on the low end and a
// stalled fsync on the high end.
var LatencyBuckets = ExpBuckets(50e-6, 2, 16)

// SizeBuckets is the default size histogram (candidate-set sizes, batch
// sizes): 1 to 4096 in ×2 steps.
var SizeBuckets = ExpBuckets(1, 2, 13)

// familiesSorted returns the registry's families sorted by name, for
// deterministic export (caller holds r.mu).
func (r *Registry) familiesSorted() []*family {
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// seriesSorted returns a family's series sorted by label block (caller
// holds r.mu).
func (f *family) seriesSorted() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}
