package obs

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one of everything, deterministic
// values, exercising labels, helps, and histogram expansion.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Help("rrc_http_requests_total", "Requests by endpoint.")
	r.Counter(`rrc_http_requests_total{endpoint="/recommend"}`).Add(3)
	r.Counter(`rrc_http_requests_total{endpoint="/recommend/batch"}`).Add(1)
	r.Help("rrc_degraded", "1 while the primary scorer is bypassed.")
	r.Gauge("rrc_degraded").Set(0)
	r.GaugeFunc("rrc_sessions", func() float64 { return 2 })
	r.Help("rrc_engine_recommend_seconds", "Engine Recommend latency.")
	h := r.Histogram("rrc_engine_recommend_seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	lab := r.Histogram(`rrc_http_request_seconds{endpoint="/recommend"}`, []float64{0.01, 0.1})
	lab.Observe(0.02)
	return r
}

// TestExpositionGolden compares the exporter's byte-exact output to the
// checked-in golden file, and requires it to pass the validator.
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("golden exposition fails validation: %v", err)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	rr := httptest.NewRecorder()
	goldenRegistry().Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "rrc_http_requests_total") {
		t.Fatalf("body missing counters:\n%s", rr.Body.String())
	}
	// A nil registry's handler serves an empty 200, not a panic.
	var nilReg *Registry
	rr = httptest.NewRecorder()
	nilReg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 || rr.Body.Len() != 0 {
		t.Fatalf("nil registry handler: code %d body %q", rr.Code, rr.Body.String())
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	good := `# HELP x_total help text
# TYPE x_total counter
x_total{a="b",c="d \"quoted\", comma"} 3
x_total 4 1700000000
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 0.3
lat_seconds_count 2
some_untyped NaN
`
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad value":          "x_total notafloat\n",
		"bad name":           "1bad_total 3\n",
		"no value":           "x_total\n",
		"unterminated block": `x_total{a="b" 3` + "\n",
		"unknown type":       "# TYPE x wat\n",
		"duplicate type":     "# TYPE x counter\n# TYPE x counter\n",
		"bad timestamp":      "x_total 3 12.5\n",
		"missing inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch":     "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"missing sum":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	}
	for name, in := range cases {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
