package obs

import (
	"io"
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the le (upper-bound-inclusive)
// semantics: a value equal to a bound lands in that bound's bucket,
// values below the first bound land in the first bucket (there is no
// separate underflow bucket, per Prometheus), and values above the last
// bound land in the +Inf overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("boundaries", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 5, 7} {
		h.Observe(v)
	}
	buckets, sum, count := h.Snapshot(nil)
	want := []uint64{2, 2, 1, 1} // (-inf,1], (1,2], (2,5], (5,+inf)
	if len(buckets) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(buckets), len(want))
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, buckets[i], want[i], buckets)
		}
	}
	if count != 6 {
		t.Fatalf("count %d, want 6", count)
	}
	if sum != 17 {
		t.Fatalf("sum %v, want 17", sum)
	}
	if h.Count() != 6 || h.Sum() != 17 {
		t.Fatalf("Count/Sum = %d/%v", h.Count(), h.Sum())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur_seconds", []float64{0.5, 1})
	h.ObserveDuration(250 * time.Millisecond)
	buckets, _, _ := h.Snapshot(nil)
	if buckets[0] != 1 {
		t.Fatalf("250ms not in the 0.5s bucket: %v", buckets)
	}
}

// TestConcurrentRecord hammers one counter, gauge, and histogram from
// many goroutines; run under -race (make check) this is the lock-free
// record-path safety proof, and the totals prove no update is lost.
func TestConcurrentRecord(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total")
	g := r.Gauge("conc_gauge")
	h := r.Histogram("conc_hist", []float64{0.5, 1, 2})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) / 2) // 0, .5, 1, 1.5
			}
		}(w)
	}
	// Concurrent readers while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var dst []uint64
		for i := 0; i < 100; i++ {
			dst, _, _ = h.Snapshot(dst[:0])
			_ = c.Value()
			_ = r.WritePrometheus(io.Discard)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Fatalf("counter %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count %d, want %d", h.Count(), workers*per)
	}
}

// TestNilRegistryIsNoOp pins the optional-dependency contract: every
// operation on a nil registry (and the nil handles it returns) must be
// a safe no-op, because library packages take *Registry as an optional
// dependency.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter(`nil_total{x="y"}`)
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("nil_gauge")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	r.GaugeFunc("nil_fn", func() float64 { return 42 })
	h := r.Histogram("nil_hist", []float64{1})
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil {
		t.Fatal("nil histogram holds state")
	}
	if buckets, sum, count := h.Snapshot(nil); buckets != nil || sum != 0 || count != 0 {
		t.Fatal("nil histogram snapshot non-empty")
	}
	r.Help("nil_total", "help text")
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil registry write: %v", err)
	}
	if r.SumCounters("nil_total") != 0 {
		t.Fatal("nil registry sums counters")
	}
	_ = r.Handler() // must not panic when later served; covered in expfmt test
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`dup_total{endpoint="/x"}`)
	b := r.Counter(`dup_total{endpoint="/x"}`)
	if a != b {
		t.Fatal("same name minted two counters")
	}
	a.Add(3)
	other := r.Counter(`dup_total{endpoint="/y"}`)
	other.Add(4)
	if got := r.SumCounters("dup_total"); got != 7 {
		t.Fatalf("SumCounters = %d, want 7", got)
	}
	h1 := r.Histogram("dup_hist", []float64{1, 2})
	h2 := r.Histogram("dup_hist", []float64{9, 99}) // bounds of the first registration win
	if h1 != h2 {
		t.Fatal("same name minted two histograms")
	}
	if b := h2.Bounds(); len(b) != 2 || b[0] != 1 {
		t.Fatalf("bounds %v, want the first registration's", b)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mismatch")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter family as a gauge did not panic")
		}
	}()
	r.Gauge("mismatch")
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("fn_gauge", func() float64 { return v })
	var sb stringWriter
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "# TYPE fn_gauge gauge\nfn_gauge 1.5\n" {
		t.Fatalf("exposition %q", got)
	}
}

// TestRecordPathAllocs pins the hot-path contract: recording allocates
// nothing, and a histogram snapshot into a pre-sized buffer allocates
// nothing.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total")
	g := r.Gauge("alloc_gauge")
	h := r.Histogram("alloc_hist", LatencyBuckets)
	if avg := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(2)
		h.Observe(0.001)
	}); avg != 0 {
		t.Fatalf("record path allocates %.1f/op, want 0", avg)
	}
	dst := make([]uint64, 0, len(LatencyBuckets)+1)
	if avg := testing.AllocsPerRun(200, func() {
		dst, _, _ = h.Snapshot(dst[:0])
	}); avg != 0 {
		t.Fatalf("snapshot allocates %.1f/op, want 0", avg)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i] <= LatencyBuckets[i-1] {
			t.Fatal("LatencyBuckets not ascending")
		}
	}
}

func TestGaugeAddCAS(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("cas_gauge")
	g.Set(1.5)
	g.Add(-0.5)
	if g.Value() != 1 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatal("gauge lost +Inf")
	}
}

// stringWriter is a minimal strings.Builder stand-in that keeps the
// test's io.Writer explicit.
type stringWriter struct{ b []byte }

func (w *stringWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *stringWriter) String() string              { return string(w.b) }
