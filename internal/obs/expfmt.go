// Prometheus text exposition: the writer (WritePrometheus, Handler) and
// a validating parser (ValidateExposition) used by the exporter's golden
// tests, `rrc-inspect -expfmt`, and the CI /metrics smoke check.
//
// The writer emits text format version 0.0.4: per family a # HELP line
// (when set), a # TYPE line, then one sample line per series, with
// histogram series expanded into cumulative `le` buckets plus _sum and
// _count. Families are sorted by name and series by label block, so the
// output is deterministic for golden comparisons.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered family to w in Prometheus
// text format. Registration is briefly blocked for the duration (metric
// recording is not — the record path never takes the registry lock).
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.familiesSorted() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.seriesSorted() {
			switch f.kind {
			case counterKind:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, braced(s.labels), s.c.Value())
			case gaugeKind:
				v := s.g.Value()
				if s.gf != nil {
					v = s.gf()
				}
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(s.labels), formatFloat(v))
			case histogramKind:
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram series into cumulative buckets,
// _sum, and _count.
func writeHistogram(w io.Writer, name string, s *series) {
	buckets, sum, count := s.h.Snapshot(make([]uint64, 0, len(s.h.bounds)+1))
	var cum uint64
	for i, b := range s.h.bounds {
		cum += buckets[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(withLE(s.labels, formatFloat(b))), cum)
	}
	cum += buckets[len(buckets)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(withLE(s.labels, "+Inf")), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(s.labels), formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(s.labels), count)
}

// braced wraps a non-empty label block in braces.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// withLE appends the le label to an existing label block.
func withLE(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteFile writes the exposition to path via a temp-file rename, so a
// scraper or a crashed writer never observes a half-written file. The
// CLI tools (-metrics-out) use this in place of an HTTP endpoint. A nil
// registry writes an empty (but valid) exposition.
func (r *Registry) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.WritePrometheus(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Handler returns an http.Handler serving the exposition — wire it at
// GET /metrics. Works (serving an empty body) on a nil registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := r.WritePrometheus(w); err != nil {
			// Headers are already out; nothing useful left to do.
			return
		}
	})
}

// ValidateExposition parses r as Prometheus text format version 0.0.4
// and returns the first violation found (nil when the input is
// well-formed). Checks: comment lines are # HELP/# TYPE with valid
// names and known types, at most one TYPE per family, sample lines have
// a valid metric name, a balanced label block, and a parseable float
// value (optionally followed by an integer timestamp), and every family
// declared as a histogram that emits samples has a +Inf bucket, a _sum,
// and a _count whose value equals the +Inf bucket's.
func ValidateExposition(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	types := map[string]string{}
	type histState struct {
		inf     map[string]uint64 // label block (sans le) → +Inf bucket value
		count   map[string]uint64
		hasSum  map[string]bool
		anySeen bool
	}
	hists := map[string]*histState{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		base, suffix := histBase(name, types)
		if base != "" {
			hs := hists[base]
			if hs == nil {
				hs = &histState{inf: map[string]uint64{}, count: map[string]uint64{}, hasSum: map[string]bool{}}
				hists[base] = hs
			}
			hs.anySeen = true
			key, le := stripLE(labels)
			switch suffix {
			case "_bucket":
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
				if le == "+Inf" {
					hs.inf[key] = uint64(value)
				}
			case "_sum":
				hs.hasSum[key] = true
			case "_count":
				hs.count[key] = uint64(value)
			default:
				return fmt.Errorf("line %d: %s conflicts with histogram family %s", lineNo, name, base)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for fam, hs := range hists {
		if !hs.anySeen {
			continue
		}
		for key, cnt := range hs.count {
			inf, ok := hs.inf[key]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: no +Inf bucket", fam, key)
			}
			if !hs.hasSum[key] {
				return fmt.Errorf("histogram %s{%s}: no _sum sample", fam, key)
			}
			if inf != cnt {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %d != _count %d", fam, key, inf, cnt)
			}
		}
		if len(hs.count) == 0 {
			return fmt.Errorf("histogram %s: no _count sample", fam)
		}
	}
	return nil
}

// validateComment checks a # line; only HELP and TYPE carry structure,
// other comments are ignored per the format.
func validateComment(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("HELP without a metric name")
		}
		return checkFamilyName(fields[2])
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE needs a metric name and a type")
		}
		name, typ := fields[2], fields[3]
		if err := checkFamilyName(name); err != nil {
			return err
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if prev, ok := types[name]; ok {
			return fmt.Errorf("duplicate TYPE for %s (already %s)", name, prev)
		}
		types[name] = typ
		return nil
	default:
		return nil // bare comment
	}
}

// parseSample splits `name{labels} value [timestamp]`.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j, err := scanLabelBlock(rest[i:])
		if err != nil {
			return "", "", 0, err
		}
		labels = rest[i+1 : i+j-1]
		rest = strings.TrimLeft(rest[i+j:], " ")
	} else {
		k := strings.IndexByte(rest, ' ')
		if k < 0 {
			return "", "", 0, fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:k]
		rest = strings.TrimLeft(rest[k:], " ")
	}
	if err := checkFamilyName(name); err != nil {
		return "", "", 0, err
	}
	parts := strings.Fields(rest)
	if len(parts) < 1 || len(parts) > 2 {
		return "", "", 0, fmt.Errorf("sample %q: want value [timestamp], got %q", name, rest)
	}
	value, err = strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("sample %s: bad value %q", name, parts[0])
	}
	if len(parts) == 2 {
		if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("sample %s: bad timestamp %q", name, parts[1])
		}
	}
	return name, labels, value, nil
}

// scanLabelBlock returns the length of the {...} block at the start of
// s, honoring escaped quotes inside label values.
func scanLabelBlock(s string) (int, error) {
	if len(s) == 0 || s[0] != '{' {
		return 0, fmt.Errorf("not a label block")
	}
	inString, escaped := false, false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case inString && c == '\\':
			escaped = true
		case c == '"':
			inString = !inString
		case !inString && c == '}':
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("unterminated label block in %q", s)
}

// histBase maps a sample name to its histogram family, if the TYPE
// table declares one: `x_bucket` → ("x", "_bucket") when x is a
// histogram. A plain sample of a histogram family returns suffix "".
func histBase(name string, types map[string]string) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok && types[b] == "histogram" {
			return b, suf
		}
	}
	if types[name] == "histogram" {
		return name, ""
	}
	return "", ""
}

// stripLE removes the le="..." pair from a label block, returning the
// remaining block (series key) and the le value ("" when absent).
func stripLE(labels string) (key, le string) {
	if labels == "" {
		return "", ""
	}
	var kept []string
	for _, pair := range splitLabelPairs(labels) {
		if v, ok := strings.CutPrefix(pair, `le="`); ok && strings.HasSuffix(v, `"`) {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, pair)
	}
	return strings.Join(kept, ","), le
}

// splitLabelPairs splits a label block on commas outside quoted values.
func splitLabelPairs(labels string) []string {
	var out []string
	start, inString, escaped := 0, false, false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case escaped:
			escaped = false
		case inString && c == '\\':
			escaped = true
		case c == '"':
			inString = !inString
		case !inString && c == ',':
			out = append(out, labels[start:i])
			start = i + 1
		}
	}
	return append(out, labels[start:])
}
