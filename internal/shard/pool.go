// The pool: N shards opened over one events root, request routing by
// user-id hash, pool-wide lifecycle (parallel recovery at open,
// parallel drain at close), and the per-shard metric families.
package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"sync"

	"tsppr/internal/obs"
	"tsppr/internal/seq"
	"tsppr/internal/sessions"
	"tsppr/internal/wal"
)

// MaxShards bounds -shards: beyond this an in-process pool stops
// making sense (use multiple processes).
const MaxShards = 256

// markerName is the shard-count marker file written into the events
// root. The count is part of the on-disk contract: reopening with a
// different N would silently remap users across WAL directories, so a
// mismatch is a loud error, never a reshard. The name deliberately does
// not match the shard-*/ directory pattern tools glob for.
const markerName = "shards"

// Config bounds a Pool and its shards. Zero fields pick the documented
// defaults.
type Config struct {
	Shards              int // failure domains; 0 → 1, max MaxShards
	WindowCap           int // |W| per user; required > 0
	MaxSessionsPerShard int // LRU session bound per shard; 0 → sessions.DefaultMaxUsers
	NumUsers            int // user-id validity bound; 0 → unbounded
	NumItems            int // item-id validity bound; 0 → unbounded

	Fsync         wal.SyncPolicy
	FsyncInterval time.Duration
	SnapshotEvery int   // snapshot a shard every N of its appends; 0 → only at drain
	SegmentBytes  int64 // per-shard WAL rotation threshold; 0 → wal default
	Corrupt       wal.CorruptPolicy

	// Partition is the slice of the user-key space this root owns when
	// several replicated pairs split the fleet. A zero Count leaves
	// partitioning unconfigured: an existing partition marker wins, and
	// a flat root stays partition 0 of 1 with nothing written. A
	// nonzero Count is reconciled against the marker by EnsurePartition
	// (mismatch = loud error unless the generation is bumped).
	Partition PartitionID

	// Metrics, when non-nil, receives the per-shard families
	// (rrc_shard_*) and the shared WAL instrumentation. Nil records
	// nothing.
	Metrics *obs.Registry

	// OnStoreReload, when non-nil, fires after a shard replaces its
	// in-memory session store wholesale — supervised restart,
	// divergent-tail truncation, snapshot reseed. Any of those can
	// REGRESS per-user LSNs (an unsynced WAL tail is lost, a divergent
	// tail is cut), so layers that version state by LSN (the response
	// cache) must treat the event as "all versions invalid", not rely on
	// LSN comparison. Called without shard locks held; must not block.
	OnStoreReload func(shard int)

	FailThreshold int           // consecutive append failures before the breaker trips; 0 → 3
	RestartBudget int           // failed recovery attempts per trip before Failed; 0 → 8
	BackoffBase   time.Duration // first restart delay; 0 → 50ms
	BackoffMax    time.Duration // backoff ceiling; 0 → 5s
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxSessionsPerShard <= 0 {
		c.MaxSessionsPerShard = sessions.DefaultMaxUsers
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RestartBudget <= 0 {
		c.RestartBudget = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	return c
}

// Pool is a fixed set of shards over one events root. Routing is pure
// (UserShard), so the pool itself holds no mutable state — each shard
// guards its own.
type Pool struct {
	root   string
	cfg    Config
	part   PartitionID
	shards []*Shard
}

var shardDirRe = regexp.MustCompile(`^shard-\d{3}$`)

// shardDir places shard i's files. A single-shard pool uses the root
// itself — byte-compatible with the pre-sharding layout, so existing
// event directories keep working with -shards=1.
func shardDir(root string, i, n int) string {
	if n == 1 {
		return root
	}
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// Open opens (or creates) an N-shard pool rooted at root, recovering
// every shard in parallel before returning. Layout and shard-count
// mismatches — an unsharded log opened with N>1, a sharded root opened
// with N=1, a marker disagreeing with N — are refused loudly: silently
// remapping users across WAL directories would orphan their windows.
func Open(root string, cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards > MaxShards {
		return nil, fmt.Errorf("shard: %d shards over the %d cap", cfg.Shards, MaxShards)
	}
	if cfg.WindowCap <= 0 {
		return nil, fmt.Errorf("shard: window capacity %d <= 0", cfg.WindowCap)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if err := checkLayout(root, cfg.Shards); err != nil {
		return nil, err
	}
	part, err := EnsurePartition(root, cfg.Partition)
	if err != nil {
		return nil, err
	}

	shards := make([]*Shard, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := range shards {
		sh := &Shard{
			index: i,
			dir:   shardDir(root, i, cfg.Shards),
			cfg:   cfg,
			point: IngestPoint(i),
			state: Recovering,
		}
		shards[i] = sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, store, rstats, err := openState(sh.dir, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				sh.state = Failed
				sh.lastErr = err
				return
			}
			sh.log, sh.store, sh.rstats = l, store, rstats
			sh.state = Serving
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, sh := range shards {
			if sh.log != nil {
				sh.log.Close()
			}
		}
		return nil, err
	}
	p := &Pool{root: root, cfg: cfg, part: part, shards: shards}
	p.register(cfg.Metrics)
	return p, nil
}

// checkLayout validates the on-disk layout and the shard-count marker
// against the requested N, writing the marker on first open.
func checkLayout(root string, n int) error {
	if raw, err := os.ReadFile(filepath.Join(root, markerName)); err == nil {
		prev, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil {
			return fmt.Errorf("shard: unreadable shard-count marker in %s: %q", root, raw)
		}
		if prev != n {
			return fmt.Errorf("shard: %s was created with %d shard(s), reopened with %d — the user→shard mapping is fixed per events dir (start with -shards=%d or use a fresh dir)",
				root, prev, n, prev)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("shard: %w", err)
	} else {
		// No marker: a legacy (pre-sharding) or fresh directory. Refuse
		// shapes the requested N cannot own.
		entries, err := os.ReadDir(root)
		if err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if n > 1 && !e.IsDir() && (strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "sessions-")) {
				return fmt.Errorf("shard: %s holds an unsharded event log (%s) but -shards=%d; keep -shards=1 for this dir or migrate it into %s",
					root, name, n, filepath.Join(root, "shard-000"))
			}
			if n == 1 && e.IsDir() && shardDirRe.MatchString(name) {
				return fmt.Errorf("shard: %s is a sharded events root (%s) but -shards=1; start with the original shard count",
					root, name)
			}
		}
		if err := os.WriteFile(filepath.Join(root, markerName), []byte(strconv.Itoa(n)+"\n"), 0o644); err != nil {
			return fmt.Errorf("shard: write marker: %w", err)
		}
	}
	return nil
}

// N returns the pool's shard count.
func (p *Pool) N() int { return len(p.shards) }

// Root returns the pool's events root — where cross-shard markers (the
// shard count, the replication epoch) live.
func (p *Pool) Root() string { return p.root }

// Shard returns shard i.
func (p *Pool) Shard(i int) *Shard { return p.shards[i] }

// ShardFor returns the shard index owning user.
func (p *Pool) ShardFor(user int) int { return UserShard(user, len(p.shards)) }

// Partition returns the pool's effective partition identity.
func (p *Pool) Partition() PartitionID { return p.part }

// OwnsUser reports whether this pool's partition owns user's keys.
// False means the request was misrouted (or the fleet is misconfigured)
// and must be refused with the owning-partition hint, never ingested.
func (p *Pool) OwnsUser(user int) bool { return p.part.Owns(user) }

// Ingest routes one consumption to its owning shard.
func (p *Pool) Ingest(user int, item seq.Item) (lsn uint64, winLen int, err error) {
	return p.shards[p.ShardFor(user)].Ingest(user, item)
}

// WindowClone routes a window read to its owning shard.
func (p *Pool) WindowClone(user int) (*seq.Window, bool, error) {
	return p.shards[p.ShardFor(user)].WindowClone(user)
}

// UserLSN routes a cache-version probe to its owning shard.
func (p *Pool) UserLSN(user int) (uint64, bool, error) {
	return p.shards[p.ShardFor(user)].UserLSN(user)
}

// WindowCloneLSN routes an atomic window+LSN read to its owning shard.
func (p *Pool) WindowCloneLSN(user int) (*seq.Window, uint64, bool, error) {
	return p.shards[p.ShardFor(user)].WindowCloneLSN(user)
}

// Drain gracefully stops shard i (final snapshot, fenced appends).
func (p *Pool) Drain(i int) error {
	if i < 0 || i >= len(p.shards) {
		return fmt.Errorf("shard: index %d out of [0,%d)", i, len(p.shards))
	}
	return p.shards[i].Drain()
}

// Close stops every shard in parallel: serving shards drain (final
// snapshot), tripped ones are force-stopped and their supervisors
// fenced. Returns the join of the per-shard errors.
func (p *Pool) Close() error {
	errs := make([]error, len(p.shards))
	var wg sync.WaitGroup
	for i, sh := range p.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = sh.Close()
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// SnapshotAll flushes every serving shard's sessions now.
func (p *Pool) SnapshotAll() {
	for _, sh := range p.shards {
		sh.Snapshot()
	}
}

// Ready reports whether every shard is serving — the aggregate /readyz
// signal. Per-shard detail comes from States.
func (p *Pool) Ready() bool {
	for _, sh := range p.shards {
		if sh.State() != Serving {
			return false
		}
	}
	return true
}

// States returns every shard's current lifecycle state, indexed by
// shard.
func (p *Pool) States() []State {
	out := make([]State, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.State()
	}
	return out
}

// Statuses returns every shard's status, indexed by shard.
func (p *Pool) Statuses() []Status {
	out := make([]Status, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.Status()
	}
	return out
}

// WALStats returns the sum of every shard's log counters.
func (p *Pool) WALStats() wal.Stats {
	var total wal.Stats
	for _, sh := range p.shards {
		ws := sh.WALStats()
		total.Appends += ws.Appends
		total.Fsyncs += ws.Fsyncs
		total.Rotations += ws.Rotations
		total.RecoveredRecords += ws.RecoveredRecords
		total.TruncatedTails += ws.TruncatedTails
		total.TruncatedBytes += ws.TruncatedBytes
		total.SkippedCorrupt += ws.SkippedCorrupt
		total.PrunedSegments += ws.PrunedSegments
	}
	return total
}

// Dump merges every shard's sessions into one ascending-user listing —
// the pool-wide state fingerprint the chaos suite compares across runs.
// Shard user sets are disjoint (routing is a function), so a merge of
// per-shard sorted dumps is itself sorted.
func (p *Pool) Dump() []sessions.UserWindow {
	var out []sessions.UserWindow
	for _, sh := range p.shards {
		out = append(out, sh.Dump()...)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].User > out[j].User; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// register mints the per-shard metric families on reg. All handles are
// nil-safe, so a pool without a registry records nothing.
func (p *Pool) register(reg *obs.Registry) {
	reg.Help("rrc_shard_state", "Per-shard lifecycle state: 0 cold, 1 recovering, 2 serving, 3 draining, 4 stopped, 5 restarting, 6 failed.")
	reg.Help("rrc_shard_restarts_total", "Supervised shard restarts that reached serving again.")
	reg.Help("rrc_shard_breaker_trips_total", "Shard circuit-breaker trips: panics and append-failure streaks.")
	reg.Help("rrc_shard_recovery_lag", "WAL records the shard's most recent recovery had to replay.")
	reg.Help("rrc_shard_sessions", "Per-user session windows held by the shard.")
	for _, sh := range p.shards {
		lbl := fmt.Sprintf(`{shard="%d"}`, sh.index)
		sh.mRestarts = reg.Counter("rrc_shard_restarts_total" + lbl)
		sh.mTrips = reg.Counter("rrc_shard_breaker_trips_total" + lbl)
		reg.GaugeFunc("rrc_shard_state"+lbl, func() float64 { return float64(sh.State()) })
		reg.GaugeFunc("rrc_shard_recovery_lag"+lbl, func() float64 { return float64(sh.RecoverStats().Replayed) })
		reg.GaugeFunc("rrc_shard_sessions"+lbl, func() float64 { return float64(sh.Status().Sessions) })
	}
}
