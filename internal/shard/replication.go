// Replication hooks: what a shard exposes to the WAL-shipping layer.
// A primary's shards serve positioned reads of their committed log and
// their newest snapshot; a follower's shards apply shipped records at
// the primary's exact LSNs, and — when a deposed primary rejoins a new
// timeline — truncate their divergent tail or reseed wholesale from the
// new primary's snapshot. All of it rides the same breaker/supervisor
// lifecycle as local ingest: a non-serving shard fast-fails, and a
// failing replicated append trips the breaker like any other.
package shard

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tsppr/internal/faultinject"
	"tsppr/internal/sessions"
	"tsppr/internal/wal"
)

// NextLSN returns the LSN the shard's next append will be assigned —
// the replication stream position a fully caught-up follower holds.
func (s *Shard) NextLSN() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return 0, s.unavailableLocked()
	}
	return s.log.NextLSN(), nil
}

// ReadWAL delivers up to max committed records with LSN ≥ from to fn
// and returns the resume position — the primary side of the shipping
// stream. The file I/O runs outside the shard lock, so streaming never
// blocks ingest; wal.ErrPruned means the follower must reseed from a
// snapshot instead.
func (s *Shard) ReadWAL(from uint64, max int, fn func(lsn uint64, payload []byte) error) (uint64, error) {
	s.mu.Lock()
	l := s.log
	if l == nil {
		err := s.unavailableLocked()
		s.mu.Unlock()
		return from, err
	}
	s.mu.Unlock()
	return l.ReadFrom(from, max, fn)
}

// SnapshotInfo returns the shard's newest on-disk snapshot, taking one
// first when none exists yet — the reseed source a follower too far
// behind the retained WAL downloads.
func (s *Shard) SnapshotInfo() (path string, lsn uint64, err error) {
	path, lsn, ok, err := sessions.NewestSnapshot(s.dir)
	if err != nil || ok {
		return path, lsn, err
	}
	s.Snapshot()
	path, lsn, ok, err = sessions.NewestSnapshot(s.dir)
	if err == nil && !ok {
		err = fmt.Errorf("shard %d: no snapshot available", s.index)
	}
	return path, lsn, err
}

// ApplyReplicated makes one shipped record durable at exactly the
// primary's LSN and applies it to the owning user's window. Re-delivery
// (lsn below the local log's next) is skipped — the stream resumes
// wherever the tailer last confirmed, and the LSN-idempotent store
// makes the overlap harmless. A gap (lsn above next) is an error: the
// tailer must re-resume rather than let the follower's log silently
// skip LSNs the primary committed.
func (s *Shard) ApplyReplicated(lsn uint64, payload []byte) (applied bool, err error) {
	user, item, err := sessions.DecodeEvent(payload)
	if err != nil {
		return false, fmt.Errorf("shard %d: replicated lsn %d: %w", s.index, lsn, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != Serving {
		return false, s.unavailableLocked()
	}
	defer func() {
		if p := recover(); p != nil {
			s.tripLocked(fmt.Errorf("shard %d: replicated apply panic: %v", s.index, p))
			applied, err = false, s.unavailableLocked()
		}
	}()
	next := s.log.NextLSN()
	if lsn < next {
		return false, nil // already durable here; idempotent re-delivery
	}
	if lsn > next {
		return false, fmt.Errorf("shard %d: replicated lsn %d leaves a gap (local next %d)", s.index, lsn, next)
	}
	if ferr := faultinject.Do(s.point); ferr != nil {
		return false, s.appendFailedLocked(ferr)
	}
	got, aerr := s.log.Append(payload)
	if aerr != nil {
		return false, s.appendFailedLocked(aerr)
	}
	if got != lsn {
		// The log assigned a different LSN than the check above promised —
		// unreachable unless the log was swapped mid-call, which the lock
		// forbids. Trip loudly rather than diverge silently.
		s.tripLocked(fmt.Errorf("shard %d: replicated lsn %d landed at %d", s.index, lsn, got))
		return false, s.unavailableLocked()
	}
	s.failStreak = 0
	s.store.Apply(lsn, user, item)
	if s.cfg.SnapshotEvery > 0 {
		s.sinceSnapshot++
		if s.sinceSnapshot >= s.cfg.SnapshotEvery {
			s.sinceSnapshot = 0
			s.snapshotLocked()
		}
	}
	return true, nil
}

// TruncateAndReload discards every local record with LSN ≥ lsn — the
// shard's divergent tail after its timeline lost a promotion race —
// along with any snapshot that baked those records in, then re-runs the
// snapshot+WAL recovery path so the in-memory store matches the
// truncated log. wal.ErrPruned (the shard cannot rebuild [1, lsn) from
// what it retains) means the caller must Reseed from the new primary's
// snapshot instead; the shard is left serving untouched in that case.
func (s *Shard) TruncateAndReload(lsn uint64) error {
	s.mu.Lock()
	if s.state != Serving || s.log == nil {
		err := s.unavailableLocked()
		s.mu.Unlock()
		return err
	}
	if s.log.NextLSN() <= lsn {
		s.mu.Unlock()
		return nil // nothing local at or past the divergence point
	}
	if lsn < s.log.OldestLSN() {
		s.mu.Unlock()
		return fmt.Errorf("shard %d: divergence at %d below retained wal: %w", s.index, lsn, wal.ErrPruned)
	}
	// The reload must rebuild [1, lsn) from what remains after the cut:
	// either a snapshot strictly below lsn, or a log reaching back to
	// its first record. Without one, recovery would silently replay an
	// incomplete prefix — reseed instead.
	snapLSNs, err := sessions.SnapshotLSNs(s.dir)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("shard %d: %w", s.index, err)
	}
	base := s.log.OldestLSN() == 1
	for _, sl := range snapLSNs {
		if sl < lsn {
			base = true
		}
	}
	if !base {
		s.mu.Unlock()
		return fmt.Errorf("shard %d: no recovery base below divergence %d: %w", s.index, lsn, wal.ErrPruned)
	}
	gen := s.gen + 1
	s.gen = gen
	s.state = Recovering
	l := s.log
	s.log = nil
	s.mu.Unlock()

	err = l.TruncateFrom(lsn)
	if cerr := l.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		_, err = sessions.DropSnapshotsFrom(s.dir, lsn)
	}
	var (
		l2     *wal.Log
		store  *sessions.Store
		rstats sessions.RecoverStats
	)
	if err == nil {
		l2, store, rstats, err = openState(s.dir, s.cfg)
	}

	s.mu.Lock()
	if s.gen != gen {
		s.mu.Unlock()
		if l2 != nil {
			l2.Close()
		}
		return fmt.Errorf("shard %d: truncate fenced by concurrent lifecycle change", s.index)
	}
	if err != nil {
		s.lastErr = err
		s.state = Failed
		s.mu.Unlock()
		return fmt.Errorf("shard %d: truncate+reload: %w", s.index, err)
	}
	s.log, s.store, s.rstats = l2, store, rstats
	s.sinceSnapshot = 0
	s.failStreak = 0
	s.state = Serving
	s.mu.Unlock()
	// After the unlock: the hook is a foreign callback (cache purge) and
	// must never run under s.mu. The truncation cut records, so per-user
	// LSNs may have regressed — LSN-versioned layers must drop everything.
	s.storeReloaded()
	log.Printf("shard %d: truncated divergent tail from lsn %d and reloaded", s.index, lsn)
	return nil
}

// quarantineDir holds the previous timeline's files after a reseed —
// forensics for the operator, invisible to recovery and inspect globs.
const quarantineDir = "divergent"

// Reseed replaces the shard's entire local state with a snapshot from
// the new primary: the old WAL segments and snapshots are quarantined
// (not deleted) under divergent/, populate writes the downloaded
// snapshot into the shard directory, and a fresh log opened at
// snapLSN+1 keeps local LSNs identical to the primary's. Works from
// any live state — including Failed, where it is the recovery path.
func (s *Shard) Reseed(snapLSN uint64, populate func(dir string) error) error {
	s.mu.Lock()
	switch s.state {
	case Serving, Recovering, Restarting, Failed:
	default:
		err := fmt.Errorf("shard %d: cannot reseed while %s", s.index, s.state)
		s.mu.Unlock()
		return err
	}
	gen := s.gen + 1
	s.gen = gen
	s.state = Recovering
	l := s.log
	s.log = nil
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}

	err := quarantineState(s.dir)
	if err == nil {
		err = populate(s.dir)
	}
	var (
		l2     *wal.Log
		store  *sessions.Store
		rstats sessions.RecoverStats
	)
	if err == nil {
		l2, store, rstats, err = openStateAt(s.dir, s.cfg, snapLSN+1)
	}

	s.mu.Lock()
	if s.gen != gen {
		s.mu.Unlock()
		if l2 != nil {
			l2.Close()
		}
		return fmt.Errorf("shard %d: reseed fenced by concurrent lifecycle change", s.index)
	}
	if err != nil {
		s.lastErr = err
		s.state = Failed
		s.mu.Unlock()
		return fmt.Errorf("shard %d: reseed: %w", s.index, err)
	}
	s.log, s.store, s.rstats = l2, store, rstats
	s.sinceSnapshot = 0
	s.failStreak = 0
	s.state = Serving
	s.mu.Unlock()
	// After the unlock, same contract as TruncateAndReload: a reseed
	// replaces state wholesale from a foreign snapshot, so every cached
	// LSN-versioned read is void.
	s.storeReloaded()
	log.Printf("shard %d: reseeded from snapshot lsn %d (old state quarantined)", s.index, snapLSN)
	return nil
}

// quarantineState moves the shard's WAL segments and snapshots into
// quarantineDir, replacing any previous quarantine (only the latest
// divergent timeline is kept for forensics).
func quarantineState(dir string) error {
	q := filepath.Join(dir, quarantineDir)
	if err := os.RemoveAll(q); err != nil {
		return fmt.Errorf("shard: clear quarantine: %w", err)
	}
	if err := os.MkdirAll(q, 0o755); err != nil {
		return fmt.Errorf("shard: quarantine: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("shard: quarantine: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || (!strings.HasPrefix(name, "wal-") && !strings.HasPrefix(name, "sessions-")) {
			continue
		}
		if err := os.Rename(filepath.Join(dir, name), filepath.Join(q, name)); err != nil {
			return fmt.Errorf("shard: quarantine %s: %w", name, err)
		}
	}
	return nil
}

// openStateAt is openState for a reseeded shard: an empty directory
// opens its fresh log at initialLSN so the first shipped record lands
// at the primary's exact LSN.
func openStateAt(dir string, cfg Config, initialLSN uint64) (*wal.Log, *sessions.Store, sessions.RecoverStats, error) {
	l, err := wal.Open(dir, wal.Options{
		Sync:         cfg.Fsync,
		SyncEvery:    cfg.FsyncInterval,
		SegmentBytes: cfg.SegmentBytes,
		Corrupt:      cfg.Corrupt,
		Metrics:      cfg.Metrics,
		InitialLSN:   initialLSN,
	})
	if err != nil {
		return nil, nil, sessions.RecoverStats{}, err
	}
	store, rstats, err := sessions.Recover(dir, l, sessions.Config{
		WindowCap: cfg.WindowCap,
		MaxUsers:  cfg.MaxSessionsPerShard,
		NumUsers:  cfg.NumUsers,
		NumItems:  cfg.NumItems,
	})
	if err != nil {
		l.Close()
		return nil, nil, rstats, err
	}
	return l, store, rstats, nil
}

// CloseTimeout is Close bounded by a deadline: every shard drains in
// parallel (final snapshot, fenced appends), but shards that cannot
// finish within d are abandoned to the process exit and reported in
// missed — their WAL stays authoritative, so nothing acknowledged is
// lost, only the recovery-accelerating snapshot. d ≤ 0 means no bound.
func (p *Pool) CloseTimeout(d time.Duration) (missed []int, err error) {
	if d <= 0 {
		return nil, p.Close()
	}
	type result struct {
		shard int
		err   error
	}
	done := make(chan result, len(p.shards))
	for i, sh := range p.shards {
		go func() {
			done <- result{i, sh.Close()}
		}()
	}
	finished := make([]bool, len(p.shards))
	var errs []error
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	for n := 0; n < len(p.shards); n++ {
		select {
		case r := <-done:
			finished[r.shard] = true
			if r.err != nil {
				errs = append(errs, r.err)
			}
		case <-deadline.C:
			for i := range p.shards {
				if !finished[i] {
					missed = append(missed, i)
				}
			}
			return missed, errors.Join(errs...)
		}
	}
	return nil, errors.Join(errs...)
}
