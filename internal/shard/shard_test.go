package shard

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tsppr/internal/faultinject"
	"tsppr/internal/seq"
	"tsppr/internal/sessions"
	"tsppr/internal/wal"
)

// TestUserShardGolden pins the user→shard mapping. These values are
// part of the on-disk contract: a shard's WAL directory is only
// replayable into the same shard, so if this test fails the change
// orphans every existing sharded events dir. Never update the
// expectations — revert the hash.
func TestUserShardGolden(t *testing.T) {
	golden := []struct{ user, shards, want int }{
		{0, 2, 1}, {1, 2, 1}, {2, 2, 0}, {3, 2, 1}, {7, 2, 1},
		{42, 2, 1}, {1000, 2, 0}, {65535, 2, 0}, {1048576, 2, 1},
		{0, 4, 3}, {1, 4, 1}, {2, 4, 2}, {3, 4, 1}, {7, 4, 3},
		{42, 4, 1}, {1000, 4, 0}, {65535, 4, 2}, {1048576, 4, 1},
		{0, 16, 15}, {1, 16, 1}, {2, 16, 14}, {3, 16, 13}, {7, 16, 7},
		{42, 16, 5}, {1000, 16, 8}, {65535, 16, 6}, {1048576, 16, 13},
		{0, 256, 175}, {1, 256, 193}, {2, 256, 206}, {3, 256, 237}, {7, 256, 215},
		{42, 256, 149}, {1000, 256, 72}, {65535, 256, 118}, {1048576, 256, 45},
	}
	for _, g := range golden {
		if got := UserShard(g.user, g.shards); got != g.want {
			t.Errorf("UserShard(%d, %d) = %d, want %d (HASH CHANGED: breaks existing event dirs)",
				g.user, g.shards, got, g.want)
		}
	}
	// Degenerate pools route everything to shard 0.
	for _, n := range []int{1, 0, -3} {
		if got := UserShard(12345, n); got != 0 {
			t.Errorf("UserShard(12345, %d) = %d, want 0", n, got)
		}
	}
}

// TestUserShardStable re-derives the mapping repeatedly: same id, same
// shard, every time.
func TestUserShardStable(t *testing.T) {
	for u := 0; u < 1000; u++ {
		first := UserShard(u, 16)
		for rep := 0; rep < 3; rep++ {
			if got := UserShard(u, 16); got != first {
				t.Fatalf("UserShard(%d, 16) unstable: %d then %d", u, first, got)
			}
		}
	}
}

// TestUserShardDistribution bounds the skew of the hash over 1M dense
// sequential ids — the realistic id shape, since user ids are matrix
// rows. Every one of 16 shards must hold within 2% of the fair share.
func TestUserShardDistribution(t *testing.T) {
	const (
		ids    = 1_000_000
		shards = 16
	)
	counts := make([]int, shards)
	for u := 0; u < ids; u++ {
		counts[UserShard(u, shards)]++
	}
	fair := float64(ids) / shards
	for i, c := range counts {
		if skew := (float64(c) - fair) / fair; skew > 0.02 || skew < -0.02 {
			t.Errorf("shard %d holds %d of %d ids (%.2f%% from fair share)", i, c, ids, skew*100)
		}
	}
}

// testConfig is a pool config tuned for fast tests: no fsync, tiny
// supervisor backoffs.
func testConfig(n int) Config {
	return Config{
		Shards:        n,
		WindowCap:     8,
		Fsync:         wal.SyncNever,
		FailThreshold: 2,
		BackoffBase:   time.Millisecond,
		BackoffMax:    4 * time.Millisecond,
	}
}

// seedEvents pushes a deterministic little stream for users 0..7 and
// returns the expected pool fingerprint.
func seedEvents(t *testing.T, p *Pool) string {
	t.Helper()
	for i := 0; i < 40; i++ {
		u := i % 8
		if _, _, err := p.Ingest(u, seq.Item(10+i%5)); err != nil {
			t.Fatalf("ingest u=%d: %v", u, err)
		}
	}
	return fingerprint(t, p)
}

func fingerprint(t *testing.T, p *Pool) string {
	t.Helper()
	b, err := json.Marshal(p.Dump())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// waitState polls until sh reaches want or the deadline passes.
func waitState(t *testing.T, sh *Shard, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sh.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("shard %d stuck in %s, want %s", sh.Index(), sh.State(), want)
}

// TestPoolLifecycleAndReopen is the happy path: ingest across four
// shards, close, reopen, and get byte-identical windows back — each
// shard recovered independently from its own directory.
func TestPoolLifecycleAndReopen(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(dir, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	want := seedEvents(t, p)
	if !p.Ready() {
		t.Fatalf("pool not ready: %v", p.States())
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Four shard dirs on disk, no flat WAL in the root.
	dirs, _ := filepath.Glob(filepath.Join(dir, "shard-*"))
	if len(dirs) != 4 {
		t.Fatalf("shard dirs = %v, want 4", dirs)
	}
	if flat, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); len(flat) != 0 {
		t.Fatalf("flat WAL files in sharded root: %v", flat)
	}

	p2, err := Open(dir, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := fingerprint(t, p2); got != want {
		t.Fatalf("reopen diverged\n got %s\nwant %s", got, want)
	}
	// Clean close snapshotted every shard: nothing to replay.
	for i := 0; i < p2.N(); i++ {
		if r := p2.Shard(i).RecoverStats().Replayed; r != 0 {
			t.Errorf("shard %d replayed %d records after clean close", i, r)
		}
	}
}

// TestDrainFencesOnlyThatShard drains one shard and verifies exactly
// its users bounce (with the long Retry-After) while every other
// shard's users keep ingesting.
func TestDrainFencesOnlyThatShard(t *testing.T) {
	p, err := Open(t.TempDir(), testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seedEvents(t, p)

	const victim = 2 // owns users 2, 4, 5 of 0..7
	if err := p.Drain(victim); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(victim); err != nil {
		t.Fatalf("drain not idempotent: %v", err)
	}
	if p.Shard(victim).State() != Stopped {
		t.Fatalf("drained shard state %s", p.Shard(victim).State())
	}
	if p.Ready() {
		t.Fatal("pool ready with a stopped shard")
	}
	for u := 0; u < 8; u++ {
		_, _, err := p.Ingest(u, 1)
		if p.ShardFor(u) == victim {
			var ue *UnavailableError
			if !errors.As(err, &ue) {
				t.Fatalf("user %d on drained shard: err = %v, want UnavailableError", u, err)
			}
			if ue.Shard != victim || ue.RetryAfter < 5*time.Second {
				t.Fatalf("user %d: %+v", u, ue)
			}
			if _, _, rerr := p.WindowClone(u); !errors.As(rerr, &ue) {
				t.Fatalf("user %d read on drained shard: %v", u, rerr)
			}
		} else if err != nil {
			t.Fatalf("user %d on healthy shard: %v", u, err)
		}
	}
}

// TestPanicTripsBreakerAndSupervisorRestarts injects a one-shot panic
// into one shard's ingest path: the panic is absorbed, the shard trips
// and restarts through recovery, its pre-fault windows survive, and the
// other shards never notice.
func TestPanicTripsBreakerAndSupervisorRestarts(t *testing.T) {
	defer faultinject.Reset()
	p, err := Open(t.TempDir(), testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want := seedEvents(t, p)

	const victim = 1 // owns users 1, 3
	faultinject.Arm(IngestPoint(victim), faultinject.Plan{Mode: faultinject.Panic, Count: 1})
	_, _, err = p.Ingest(1, 99)
	var ue *UnavailableError
	if !errors.As(err, &ue) || ue.Shard != victim {
		t.Fatalf("panic ingest: err = %v, want shard-%d UnavailableError", err, victim)
	}
	// Healthy shards are oblivious, even while the victim restarts.
	if _, _, err := p.Ingest(6, 50); err != nil {
		t.Fatalf("healthy shard during restart: %v", err)
	}

	waitState(t, p.Shard(victim), Serving)
	st := p.Shard(victim).Status()
	if st.BreakerTrips != 1 || st.Restarts != 1 {
		t.Fatalf("victim status %+v, want 1 trip / 1 restart", st)
	}
	// The panicked event was never acked; retry lands it. After catch-up
	// (plus user 6's extra event) the state must match the no-fault run
	// plus exactly those two events.
	if _, _, err := p.Ingest(1, 99); err != nil {
		t.Fatalf("retry after restart: %v", err)
	}
	got := p.Dump()
	var ref []sessions.UserWindow
	if err := json.Unmarshal([]byte(want), &ref); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("user count changed: %d vs %d", len(got), len(ref))
	}
	for i, uw := range got {
		wantPushed := ref[i].Pushed
		if uw.User == 1 || uw.User == 6 {
			wantPushed++ // the retried event and the during-restart event
		}
		if uw.Pushed != wantPushed {
			t.Fatalf("user %d pushed %d, want %d", uw.User, uw.Pushed, wantPushed)
		}
	}
}

// TestStickyAppendFailureTripsAfterThreshold drives FailThreshold
// consecutive append failures through one shard: below the threshold the
// raw storage error surfaces (event not durable, caller retries), at the
// threshold the breaker trips, and once the fault is lifted the
// supervisor brings the shard back.
func TestStickyAppendFailureTripsAfterThreshold(t *testing.T) {
	defer faultinject.Reset()
	p, err := Open(t.TempDir(), testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seedEvents(t, p)

	const victim = 3                                                                          // owns users 0, 7
	faultinject.Arm(IngestPoint(victim), faultinject.Plan{Mode: faultinject.Error, Count: 0}) // sticky
	_, _, err = p.Ingest(0, 1)
	var ue *UnavailableError
	if err == nil || errors.As(err, &ue) {
		t.Fatalf("first failure: err = %v, want raw storage error", err)
	}
	_, _, err = p.Ingest(7, 1) // second consecutive failure = FailThreshold
	if !errors.As(err, &ue) || ue.Shard != victim {
		t.Fatalf("threshold failure: err = %v, want UnavailableError", err)
	}
	faultinject.Disarm(IngestPoint(victim))
	waitState(t, p.Shard(victim), Serving)
	if _, _, err := p.Ingest(0, 1); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if st := p.Shard(victim).Status(); st.BreakerTrips != 1 || st.Restarts < 1 {
		t.Fatalf("victim status %+v", st)
	}
}

// TestRestartBudgetExhaustedFails makes recovery itself impossible (a
// bit-flipped committed record under CorruptHalt) and verifies the
// supervisor gives up after its budget and parks the shard in Failed
// instead of hot-looping forever.
func TestRestartBudgetExhaustedFails(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.RestartBudget = 2
	p, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 6; i++ {
		if _, _, err := p.Ingest(i, 1); err != nil {
			t.Fatal(err)
		}
	}

	// Corrupt a committed record on disk, then trip the shard: every
	// recovery attempt must now refuse the WAL (CorruptHalt).
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) == 0 {
		t.Fatal("no wal segment")
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[2*16+8] ^= 0x01 // payload bit of record 2 (16B per record)
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(IngestPoint(0), faultinject.Plan{Mode: faultinject.Panic, Count: 1})
	if _, _, err := p.Ingest(0, 1); err == nil {
		t.Fatal("panic ingest did not error")
	}

	waitState(t, p.Shard(0), Failed)
	st := p.Shard(0).Status()
	if st.Restarts != 0 || st.LastError == "" {
		t.Fatalf("failed-shard status %+v", st)
	}
	_, _, err = p.Ingest(0, 1)
	var ue *UnavailableError
	if !errors.As(err, &ue) || ue.State != Failed || ue.RetryAfter < 5*time.Second {
		t.Fatalf("ingest on failed shard: %v", err)
	}
}

// TestShardCountIsPinnedPerDir locks the layout guards: a root opened
// with one shard count can never silently reopen with another, in
// either direction, marker present or not.
func TestShardCountIsPinnedPerDir(t *testing.T) {
	// Marker mismatch, sharded → different N.
	dir := t.TempDir()
	p, err := Open(dir, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := Open(dir, testConfig(2)); err == nil || !strings.Contains(err.Error(), "created with 4") {
		t.Fatalf("N=4 dir reopened as N=2: %v", err)
	}

	// Marker mismatch, flat (N=1) → sharded.
	flat := t.TempDir()
	p, err = Open(flat, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Ingest(0, 1); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := Open(flat, testConfig(4)); err == nil {
		t.Fatal("flat dir reopened as N=4")
	}

	// Legacy flat dir (no marker, pre-sharding WAL files) → sharded.
	if err := os.Remove(filepath.Join(flat, markerName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(flat, testConfig(4)); err == nil || !strings.Contains(err.Error(), "unsharded event log") {
		t.Fatalf("legacy flat dir accepted as N=4: %v", err)
	}
	// ...but keeps working as N=1, which re-pins the marker.
	p, err = Open(flat, testConfig(1))
	if err != nil {
		t.Fatalf("legacy flat dir rejected as N=1: %v", err)
	}
	p.Close()
	if _, err := os.Stat(filepath.Join(flat, markerName)); err != nil {
		t.Fatalf("marker not re-pinned: %v", err)
	}

	// Sharded root without its marker → N=1.
	sharded := t.TempDir()
	p, err = Open(sharded, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := os.Remove(filepath.Join(sharded, markerName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(sharded, testConfig(1)); err == nil || !strings.Contains(err.Error(), "sharded events root") {
		t.Fatalf("sharded root accepted as N=1: %v", err)
	}

	// Garbage marker → refused outright.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, markerName), []byte("many\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, testConfig(2)); err == nil || !strings.Contains(err.Error(), "marker") {
		t.Fatalf("garbage marker accepted: %v", err)
	}
}
