package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUserShardPartitionDistribution pins the hash's balance at the
// partition counts the router splits fleets over. The counts are golden
// on purpose: partition routing (rrc-router) and in-process shard
// routing (the pool) derive ownership from the same function, and these
// exact values prove the two layers agree for every one of 1M dense
// ids. The skew bound is the operational contract: no partition may
// hold more than 1.05× the mean load.
func TestUserShardPartitionDistribution(t *testing.T) {
	const ids = 1_000_000
	golden := map[int][]int{
		2: {499467, 500533},
		3: {333551, 333048, 333401},
		5: {200481, 199720, 200231, 200038, 199530},
		8: {124715, 124976, 125538, 124553, 124803, 125163, 124411, 125841},
	}
	for _, p := range []int{2, 3, 5, 8} {
		counts := make([]int, p)
		for u := 0; u < ids; u++ {
			counts[UserShard(u, p)]++
		}
		mean := float64(ids) / float64(p)
		for i, c := range counts {
			if float64(c) > 1.05*mean {
				t.Errorf("partitions=%d: partition %d holds %d ids, over 1.05× the mean %.0f", p, i, c, mean)
			}
			if counts[i] != golden[p][i] {
				t.Errorf("partitions=%d: partition %d holds %d ids, golden %d (HASH CHANGED: breaks partitioned fleets)",
					p, i, c, golden[p][i])
			}
		}
	}
}

func TestPartitionIDParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		want PartitionID
	}{
		{"0/1", PartitionID{0, 1, 0}},
		{"2/3", PartitionID{2, 3, 0}},
		{"1/4@7", PartitionID{1, 4, 7}},
	}
	for _, c := range cases {
		got, err := ParsePartitionID(c.in)
		if err != nil {
			t.Fatalf("ParsePartitionID(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParsePartitionID(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "3", "3/2", "-1/2", "a/b", "1/2@-1"} {
		if _, err := ParsePartitionID(bad); err == nil {
			t.Errorf("ParsePartitionID(%q): want error", bad)
		}
	}
	p := PartitionID{Index: 1, Count: 3, Generation: 2}
	rt, err := ParsePartitionID(p.String())
	if err != nil || rt != p {
		t.Fatalf("round trip %s → %+v (%v)", p, rt, err)
	}
}

func TestPartitionOwns(t *testing.T) {
	p := PartitionID{Index: 1, Count: 3}
	for u := 0; u < 1000; u++ {
		want := UserShard(u, 3) == 1
		if got := p.Owns(u); got != want {
			t.Fatalf("Owns(%d) = %v, want %v", u, got, want)
		}
	}
	// The degenerate identity owns everything.
	flat := DefaultPartition()
	for _, u := range []int{0, 1, 17, 1 << 20} {
		if !flat.Owns(u) {
			t.Fatalf("default partition must own user %d", u)
		}
	}
}

// TestEnsurePartition covers the marker reconciliation table: flat
// roots stay markerless, explicit identities persist and re-match, a
// re-identity needs a strictly higher generation, and everything else
// fails loudly.
func TestEnsurePartition(t *testing.T) {
	root := t.TempDir()

	// Unconfigured over a fresh root: default identity, no marker file.
	got, err := EnsurePartition(root, PartitionID{})
	if err != nil || got != DefaultPartition() {
		t.Fatalf("unconfigured fresh root: %+v, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(root, PartitionMarker)); !os.IsNotExist(err) {
		t.Fatal("unconfigured open must not write a partition marker")
	}

	// Explicit first open persists the identity.
	want := PartitionID{Index: 1, Count: 3}
	if got, err = EnsurePartition(root, want); err != nil || got != want {
		t.Fatalf("explicit first open: %+v, %v", got, err)
	}
	if _, ok, _ := LoadPartition(root); !ok {
		t.Fatal("explicit open must persist the marker")
	}

	// Matching reopen is fine; unconfigured reopen adopts the marker.
	if got, err = EnsurePartition(root, want); err != nil || got != want {
		t.Fatalf("matching reopen: %+v, %v", got, err)
	}
	if got, err = EnsurePartition(root, PartitionID{}); err != nil || got != want {
		t.Fatalf("unconfigured reopen over marker: %+v, %v", got, err)
	}

	// A different identity at the same generation is a loud error.
	_, err = EnsurePartition(root, PartitionID{Index: 2, Count: 3})
	if err == nil || !strings.Contains(err.Error(), "fixed per events dir") {
		t.Fatalf("cross-partition reopen must fail loudly, got %v", err)
	}
	_, err = EnsurePartition(root, PartitionID{Index: 1, Count: 4})
	if err == nil {
		t.Fatal("changed partition count must fail without a generation bump")
	}

	// A strictly higher generation is the resize acknowledgement.
	resized := PartitionID{Index: 1, Count: 4, Generation: 1}
	if got, err = EnsurePartition(root, resized); err != nil || got != resized {
		t.Fatalf("generation-bumped resize: %+v, %v", got, err)
	}
	// ...and a stale (lower) generation afterwards is refused.
	if _, err = EnsurePartition(root, PartitionID{Index: 1, Count: 3}); err == nil {
		t.Fatal("stale generation must be refused after a resize")
	}
}

// TestPoolPartitionIdentity wires the marker through Pool.Open: the
// identity rides the same open path as the shard-count marker, and
// ownership checks answer from it.
func TestPoolPartitionIdentity(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	cfg.Partition = PartitionID{Index: 0, Count: 2}
	p, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Partition(); got != cfg.Partition {
		t.Fatalf("Partition() = %+v, want %+v", got, cfg.Partition)
	}
	for u := 0; u < 100; u++ {
		if p.OwnsUser(u) != (UserShard(u, 2) == 0) {
			t.Fatalf("OwnsUser(%d) disagrees with UserShard", u)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening as a different partition is refused loudly.
	bad := testConfig(2)
	bad.Partition = PartitionID{Index: 1, Count: 2}
	if _, err := Open(dir, bad); err == nil {
		t.Fatal("reopen under a different partition identity must fail")
	}

	// Reopening without -partition adopts the persisted identity.
	p2, err := Open(dir, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Partition(); got != cfg.Partition {
		t.Fatalf("adopted identity %+v, want %+v", got, cfg.Partition)
	}
}
