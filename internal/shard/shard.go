// Package shard partitions rrc-server's online layer — write-ahead
// event log, per-user session windows, snapshot generations — into N
// independent failure domains keyed by user id. Every online structure
// is already per-user (the paper's model evolves each user's state
// independently), so the partition is clean: shard i owns exactly the
// users with UserShard(u, N) == i, its own WAL directory, its own
// sessions LRU, and its own snapshot generations.
//
// Robustness is the point. A panic inside one shard's ingest or read
// path is absorbed, trips that shard's circuit breaker, and hands the
// shard to a supervisor that restarts it through the existing
// snapshot+WAL recovery path with exponential backoff and a bounded
// attempt budget — while every other shard keeps serving untouched.
// Requests routed to a tripped, draining, or failed shard fast-fail
// with a typed UnavailableError the server maps to 503 + Retry-After;
// requests to healthy shards never observe the failure.
//
// # Lifecycle
//
// A shard moves through the states
//
//	cold → recovering → serving → draining → stopped
//	                 ↘ restarting → recovering → serving (supervised restart)
//	                             ↘ failed (restart budget exhausted)
//
// Serving is the only state that accepts work. Draining (entered by
// Drain: shutdown or POST /admin/drain) fences new appends, flushes a
// final snapshot, and closes the log. Restarting is entered by a
// breaker trip — a panic anywhere in the shard's op path, or
// Config.FailThreshold consecutive append failures — and is owned by
// the supervisor goroutine until the shard is serving again or failed.
//
// # Fault injection
//
// Each shard's ingest path runs through the fault point IngestPoint(i)
// ("shard.<i>.ingest"): a Panic plan simulates a shard-local bug, an
// Error plan a sticky storage failure. The chaos suite uses both to
// prove failure containment under -race.
package shard

import (
	"fmt"
	"log"
	"sync"
	"time"

	"tsppr/internal/faultinject"
	"tsppr/internal/obs"
	"tsppr/internal/seq"
	"tsppr/internal/sessions"
	"tsppr/internal/wal"
)

// State is a shard's lifecycle state. The numeric values are exported
// on /metrics as rrc_shard_state and are therefore stable.
type State int32

const (
	Cold       State = iota // allocated, recovery not yet started
	Recovering              // snapshot load + WAL tail replay in progress
	Serving                 // healthy: accepting appends and reads
	Draining                // fenced: final snapshot being flushed
	Stopped                 // drained cleanly; terminal for this process
	Restarting              // breaker tripped; supervisor backing off before recovery
	Failed                  // restart budget exhausted; terminal
)

func (s State) String() string {
	switch s {
	case Cold:
		return "cold"
	case Recovering:
		return "recovering"
	case Serving:
		return "serving"
	case Draining:
		return "draining"
	case Stopped:
		return "stopped"
	case Restarting:
		return "restarting"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// IngestPoint is the faultinject point name on shard i's ingest path.
func IngestPoint(i int) string { return fmt.Sprintf("shard.%d.ingest", i) }

// UnavailableError reports that the shard owning a request's user is
// not serving. The server maps it to 503 with the Retry-After hint.
type UnavailableError struct {
	Shard      int
	State      State
	RetryAfter time.Duration
	Cause      error // last breaker-trip or recovery error, may be nil
}

func (e *UnavailableError) Error() string {
	msg := fmt.Sprintf("shard %d %s", e.Shard, e.State)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Shard is one failure domain: a WAL directory, a session store, and
// the breaker/supervisor state around them. All methods are safe for
// concurrent use; ops on a non-serving shard fail fast, they never
// block on recovery.
type Shard struct {
	index int
	dir   string
	cfg   Config
	point string // faultinject point name, precomputed

	mu            sync.Mutex
	state         State
	gen           int             // bumped on every trip/drain/close; fences stale supervisors
	log           *wal.Log        // nil while the shard is down
	store         *sessions.Store // stale but non-nil while down (fenced by state)
	rstats        sessions.RecoverStats
	sinceSnapshot int
	snapshots     int64
	snapshotErrs  int64
	failStreak    int       // consecutive append failures; breaker input
	retryAt       time.Time // when the supervisor's next restart attempt fires
	restarts      int64
	trips         int64
	lastErr       error

	// Metric handles, registered by the pool; nil-safe when the pool
	// runs without a registry.
	mRestarts *obs.Counter
	mTrips    *obs.Counter
}

// Index returns the shard's position in the pool.
func (s *Shard) Index() int { return s.index }

// Dir returns the shard's WAL/snapshot directory.
func (s *Shard) Dir() string { return s.dir }

// State returns the shard's current lifecycle state.
func (s *Shard) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Ingest makes one consumption durable in this shard's WAL and applies
// it to the user's window, returning the event's shard-local LSN and
// the window's new length. A panic anywhere inside — including an
// injected one — is absorbed, trips the breaker, and surfaces as an
// UnavailableError; an append failure returns the storage error and
// counts toward the breaker's failure streak.
func (s *Shard) Ingest(user int, item seq.Item) (lsn uint64, winLen int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != Serving {
		return 0, 0, s.unavailableLocked()
	}
	// Declared after the Lock/Unlock pair, so this recover runs with mu
	// still held: tripping and re-reading state under the lock is safe.
	defer func() {
		if p := recover(); p != nil {
			s.tripLocked(fmt.Errorf("shard %d: ingest panic: %v", s.index, p))
			lsn, winLen = 0, 0
			err = s.unavailableLocked()
		}
	}()
	// Chaos hook: Panic plans simulate a shard-local bug (absorbed
	// above), Error plans a sticky storage failure (breaker fodder).
	if ferr := faultinject.Do(s.point); ferr != nil {
		return 0, 0, s.appendFailedLocked(ferr)
	}
	lsn, aerr := s.log.Append(sessions.EncodeEvent(user, item))
	if aerr != nil {
		return 0, 0, s.appendFailedLocked(aerr)
	}
	s.failStreak = 0
	s.store.Apply(lsn, user, item)
	winLen = s.store.WindowLen(user)
	if s.cfg.SnapshotEvery > 0 {
		s.sinceSnapshot++
		if s.sinceSnapshot >= s.cfg.SnapshotEvery {
			s.sinceSnapshot = 0
			s.snapshotLocked()
		}
	}
	return lsn, winLen, nil
}

// WindowClone returns an independent copy of user's current window, or
// ok=false when the user has no session here. Reads are fenced exactly
// like appends: a non-serving shard fast-fails, and a panic in the read
// path trips the breaker instead of escaping.
func (s *Shard) WindowClone(user int) (win *seq.Window, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != Serving {
		return nil, false, s.unavailableLocked()
	}
	defer func() {
		if p := recover(); p != nil {
			s.tripLocked(fmt.Errorf("shard %d: read panic: %v", s.index, p))
			win, ok = nil, false
			err = s.unavailableLocked()
		}
	}()
	win, ok = s.store.WindowClone(user)
	return win, ok, nil
}

// UserLSN returns the LSN of the last event applied to user's window —
// the response cache's version probe. Fenced like every other op; read
// panics trip the breaker.
func (s *Shard) UserLSN(user int) (lsn uint64, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != Serving {
		return 0, false, s.unavailableLocked()
	}
	defer func() {
		if p := recover(); p != nil {
			s.tripLocked(fmt.Errorf("shard %d: read panic: %v", s.index, p))
			lsn, ok = 0, false
			err = s.unavailableLocked()
		}
	}()
	lsn, ok = s.store.UserLSN(user)
	return lsn, ok, nil
}

// WindowCloneLSN is WindowClone plus the window's applied LSN, captured
// atomically (see sessions.Store.WindowCloneLSN for why the pair must
// not be read in two steps). Fenced like every other op.
func (s *Shard) WindowCloneLSN(user int) (win *seq.Window, lsn uint64, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != Serving {
		return nil, 0, false, s.unavailableLocked()
	}
	defer func() {
		if p := recover(); p != nil {
			s.tripLocked(fmt.Errorf("shard %d: read panic: %v", s.index, p))
			win, lsn, ok = nil, 0, false
			err = s.unavailableLocked()
		}
	}()
	win, lsn, ok = s.store.WindowCloneLSN(user)
	return win, lsn, ok, nil
}

// storeReloaded fires the pool's OnStoreReload hook (if configured)
// after this shard's in-memory store was replaced wholesale. Callers
// must NOT hold s.mu: the hook is a foreign callback (cache purge).
func (s *Shard) storeReloaded() {
	if s.cfg.OnStoreReload != nil {
		s.cfg.OnStoreReload(s.index)
	}
}

// appendFailedLocked records one append failure and returns the error
// the caller should surface: the storage error itself while under the
// breaker threshold, or the shard's UnavailableError once the streak
// trips it.
func (s *Shard) appendFailedLocked(cause error) error {
	s.failStreak++
	if s.failStreak >= s.cfg.FailThreshold {
		s.tripLocked(fmt.Errorf("shard %d: %d consecutive append failures, last: %w",
			s.index, s.failStreak, cause))
		return s.unavailableLocked()
	}
	return cause
}

// tripLocked opens the breaker: the shard stops serving, releases its
// log to the supervisor, and a restart is scheduled. No-op unless the
// shard is currently serving (a trip can race another trip's recover).
func (s *Shard) tripLocked(cause error) {
	if s.state != Serving {
		return
	}
	log.Printf("shard %d: breaker tripped: %v", s.index, cause)
	s.lastErr = cause
	s.trips++
	s.mTrips.Inc()
	s.state = Restarting
	s.gen++
	old := s.log
	s.log = nil
	s.failStreak = 0
	s.retryAt = time.Now().Add(s.cfg.BackoffBase)
	go s.supervise(s.gen, old)
}

// supervise owns a tripped shard until it serves again or its restart
// budget is exhausted. Each attempt: back off, re-run the snapshot+WAL
// recovery path, swap the fresh state in. The gen check fences this
// goroutine against a concurrent Drain/Close — a stale supervisor
// discards its work and exits instead of resurrecting a stopped shard.
func (s *Shard) supervise(gen int, old *wal.Log) {
	if old != nil {
		// Release the dead log's handle; a sticky-failed log may refuse
		// its final sync, which is fine — recovery re-reads the files.
		old.Close()
	}
	backoff := s.cfg.BackoffBase
	for attempt := 1; ; attempt++ {
		if attempt > s.cfg.RestartBudget {
			s.mu.Lock()
			if s.gen == gen && s.state == Restarting {
				s.state = Failed
				log.Printf("shard %d: restart budget (%d) exhausted, shard failed: %v",
					s.index, s.cfg.RestartBudget, s.lastErr)
			}
			s.mu.Unlock()
			return
		}
		// Publish when this attempt will fire so fenced requests can
		// derive an honest Retry-After instead of a fixed guess.
		s.mu.Lock()
		if s.gen != gen || s.state != Restarting {
			s.mu.Unlock()
			return
		}
		s.retryAt = time.Now().Add(backoff)
		s.mu.Unlock()
		time.Sleep(backoff)
		backoff = min(2*backoff, s.cfg.BackoffMax)
		s.mu.Lock()
		if s.gen != gen || s.state != Restarting {
			s.mu.Unlock()
			return
		}
		s.state = Recovering
		s.mu.Unlock()

		// Recovery I/O runs outside the lock so fenced ops stay fast.
		l, store, rstats, err := openState(s.dir, s.cfg)

		s.mu.Lock()
		if s.gen != gen {
			s.mu.Unlock()
			if err == nil {
				l.Close()
			}
			return
		}
		if err != nil {
			s.lastErr = err
			s.state = Restarting
			s.mu.Unlock()
			log.Printf("shard %d: restart attempt %d/%d failed: %v",
				s.index, attempt, s.cfg.RestartBudget, err)
			continue
		}
		s.log, s.store, s.rstats = l, store, rstats
		s.sinceSnapshot = 0
		s.state = Serving
		s.restarts++
		s.mRestarts.Inc()
		s.mu.Unlock()
		s.storeReloaded()
		log.Printf("shard %d: restarted after %d attempt(s) (snapshot lsn=%d, %d record(s) replayed)",
			s.index, attempt, rstats.SnapshotLSN, rstats.Replayed)
		return
	}
}

// Drain gracefully stops a serving shard: fence new appends, flush a
// final snapshot, close the log. Idempotent on an already drained
// shard; an error on a tripped/failed one (there is nothing consistent
// to flush — Close force-stops those).
func (s *Shard) Drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case Draining, Stopped:
		return nil
	case Serving:
	default:
		return fmt.Errorf("shard %d: cannot drain while %s", s.index, s.state)
	}
	s.state = Draining
	s.gen++
	s.snapshotLocked()
	err := s.log.Close()
	s.log = nil
	s.state = Stopped
	return err
}

// Close stops the shard in any state: a serving shard is drained (final
// snapshot), anything else is force-stopped and its supervisor fenced.
func (s *Shard) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == Serving {
		s.state = Draining
		s.gen++
		// Chaos hook: a firing Delay plan here simulates a shard whose
		// final drain wedges (slow disk, giant flush) so shutdown-bound
		// tests can prove the deadline holds. Disarmed in production.
		_ = faultinject.Do("shard.drain")
		s.snapshotLocked()
		err := s.log.Close()
		s.log = nil
		s.state = Stopped
		return err
	}
	s.gen++ // fence any in-flight supervisor
	var err error
	if s.log != nil {
		err = s.log.Close()
		s.log = nil
	}
	s.state = Stopped
	return err
}

// Snapshot flushes the shard's sessions to disk now (serving shards
// only; others are a no-op — their state is either already flushed or
// not consistent).
func (s *Shard) Snapshot() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == Serving {
		s.snapshotLocked()
	}
}

// snapshotLocked flushes the store and prunes WAL segments covered by
// the oldest *kept* snapshot generation (the older fallback must stay
// replayable in case the newest snapshot is lost). Failure is counted,
// never fatal: the WAL alone still guarantees recovery.
func (s *Shard) snapshotLocked() {
	if _, _, err := s.store.Save(s.dir); err != nil {
		s.snapshotErrs++
		log.Printf("shard %d: snapshot failed (WAL still authoritative): %v", s.index, err)
		return
	}
	s.snapshots++
	horizon, err := sessions.PruneSnapshots(s.dir)
	if err != nil {
		log.Printf("shard %d: snapshot prune: %v", s.index, err)
		return
	}
	if s.log != nil {
		if err := s.log.Prune(horizon); err != nil {
			log.Printf("shard %d: wal prune: %v", s.index, err)
		}
	}
}

// unavailableLocked builds the fast-fail error for the current state.
// While a supervised restart is pending, the Retry-After hint is the
// supervisor's actual remaining backoff (floored at 1s so jittery
// clients don't re-arrive a few ms early) — a shard backing off for
// several seconds tells clients exactly that instead of inviting a
// hammering retry loop. States that will not come back (drained,
// failed) hint longer: the caller should re-resolve, not hot-loop.
func (s *Shard) unavailableLocked() error {
	retry := time.Second
	switch s.state {
	case Draining, Stopped, Failed:
		retry = 5 * time.Second
	case Restarting:
		if rem := time.Until(s.retryAt); rem > retry {
			retry = rem
		}
	}
	return &UnavailableError{Shard: s.index, State: s.state, RetryAfter: retry, Cause: s.lastErr}
}

// Status is a point-in-time snapshot of a shard's health, the unit of
// /stats and test assertions.
type Status struct {
	Shard        int    `json:"shard"`
	State        string `json:"state"`
	Sessions     int    `json:"sessions"`
	AppliedLSN   uint64 `json:"applied_lsn"`
	Evictions    int64  `json:"evictions"`
	Dropped      int64  `json:"dropped_events"`
	Restarts     int64  `json:"restarts"`
	BreakerTrips int64  `json:"breaker_trips"`
	Snapshots    int64  `json:"snapshots"`
	SnapshotErrs int64  `json:"snapshot_errors"`
	Replayed     int    `json:"replayed"`
	LastError    string `json:"last_error,omitempty"`
}

// Status returns the shard's current status.
func (s *Shard) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Shard:        s.index,
		State:        s.state.String(),
		Restarts:     s.restarts,
		BreakerTrips: s.trips,
		Snapshots:    s.snapshots,
		SnapshotErrs: s.snapshotErrs,
		Replayed:     s.rstats.Replayed,
	}
	if s.store != nil {
		st.Sessions = s.store.Len()
		st.AppliedLSN = s.store.AppliedLSN()
		st.Evictions = s.store.Evictions()
		st.Dropped = s.store.Dropped()
	}
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	return st
}

// WALStats returns the shard's current log counters (zero while the
// shard is down — the dead log's handle belongs to the supervisor).
func (s *Shard) WALStats() wal.Stats {
	s.mu.Lock()
	l := s.log
	s.mu.Unlock()
	if l == nil {
		return wal.Stats{}
	}
	return l.Stats()
}

// RecoverStats reports what the shard's most recent recovery rebuilt
// state from.
func (s *Shard) RecoverStats() sessions.RecoverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rstats
}

// Dump returns the shard's sessions in ascending user order — the
// shard's contribution to the pool-wide state fingerprint.
func (s *Shard) Dump() []sessions.UserWindow {
	s.mu.Lock()
	store := s.store
	s.mu.Unlock()
	if store == nil {
		return nil
	}
	return store.Dump()
}

// openState runs the snapshot+WAL recovery path for one shard
// directory: open (and heal) the log, load the newest usable snapshot,
// replay the tail.
func openState(dir string, cfg Config) (*wal.Log, *sessions.Store, sessions.RecoverStats, error) {
	l, err := wal.Open(dir, wal.Options{
		Sync:         cfg.Fsync,
		SyncEvery:    cfg.FsyncInterval,
		SegmentBytes: cfg.SegmentBytes,
		Corrupt:      cfg.Corrupt,
		Metrics:      cfg.Metrics,
	})
	if err != nil {
		return nil, nil, sessions.RecoverStats{}, err
	}
	store, rstats, err := sessions.Recover(dir, l, sessions.Config{
		WindowCap: cfg.WindowCap,
		MaxUsers:  cfg.MaxSessionsPerShard,
		NumUsers:  cfg.NumUsers,
		NumItems:  cfg.NumItems,
	})
	if err != nil {
		l.Close()
		return nil, nil, rstats, err
	}
	return l, store, rstats, nil
}
