// User → shard routing. The mapping must be a pure function of the
// user id and the shard count: every layer (handler routing, WAL
// placement, recovery, the chaos suite) derives it independently, and a
// shard's WAL directory is only replayable into the same shard, so the
// mapping is part of the on-disk contract. It is pinned by a golden
// test and must never change for a fixed (user, shards) pair.
package shard

// UserShard maps a user id to a shard index in [0, shards). It applies
// a SplitMix64 finalizer to the id before reducing mod shards, so
// dense, sequential user ids (the common case: ids are matrix rows)
// spread evenly instead of striping, and the mapping stays stable
// across processes, platforms, and releases.
func UserShard(user, shards int) int {
	if shards <= 1 {
		return 0
	}
	z := uint64(user) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}
