// Partition identity: which slice of the user-key space an events root
// owns when several replicated pairs split the fleet. The identity —
// partition index, partition count, and a resize generation — is
// persisted next to the `shards` marker, because it is the same kind of
// on-disk contract: a node serving keys routed by UserShard(user, Count)
// must refuse keys it does not own, and a root reopened under a
// different identity must fail loudly, never silently misroute. The
// generation is the operator's explicit acknowledgement of a resize: a
// re-identity (new index or count after a rebalance) is accepted only
// under a strictly higher generation.
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tsppr/internal/atomicio"
)

// PartitionMarker is the partition-identity marker's file name, living
// in the events root beside the `shards` and `epoch` markers.
const PartitionMarker = "partition"

// PartitionID identifies the slice of the user-key space an events root
// owns: this node serves exactly the users with
// UserShard(user, Count) == Index.
type PartitionID struct {
	// Index is the partition this root owns, in [0, Count).
	Index int `json:"partition"`
	// Count is the fleet-wide partition count the keys are split over.
	Count int `json:"partitions"`
	// Generation counts accepted re-identities (resizes). A marker is
	// only ever overwritten by a strictly higher generation.
	Generation int `json:"generation"`
}

// DefaultPartition is the degenerate single-partition identity every
// pre-partitioning deployment implicitly has.
func DefaultPartition() PartitionID { return PartitionID{Index: 0, Count: 1} }

// Validate checks the identity's internal consistency.
func (p PartitionID) Validate() error {
	if p.Count < 1 {
		return fmt.Errorf("shard: partition count %d < 1", p.Count)
	}
	if p.Index < 0 || p.Index >= p.Count {
		return fmt.Errorf("shard: partition index %d out of [0,%d)", p.Index, p.Count)
	}
	if p.Generation < 0 {
		return fmt.Errorf("shard: partition generation %d < 0", p.Generation)
	}
	return nil
}

// Owns reports whether this partition owns user's keys.
func (p PartitionID) Owns(user int) bool {
	return p.Count <= 1 || UserShard(user, p.Count) == p.Index
}

// String renders the identity in the i/c@g wire form used by the
// X-RRC-Partition header and the -partition flag.
func (p PartitionID) String() string {
	return fmt.Sprintf("%d/%d@%d", p.Index, p.Count, p.Generation)
}

// ParsePartitionID parses "i/c" or "i/c@g" (the String form).
func ParsePartitionID(s string) (PartitionID, error) {
	var p PartitionID
	if n, err := fmt.Sscanf(s, "%d/%d@%d", &p.Index, &p.Count, &p.Generation); err == nil && n == 3 {
		return p, p.Validate()
	}
	p.Generation = 0
	if n, err := fmt.Sscanf(s, "%d/%d", &p.Index, &p.Count); err != nil || n != 2 {
		return p, fmt.Errorf("shard: partition %q: want index/count or index/count@generation", s)
	}
	return p, p.Validate()
}

// LoadPartition reads the partition marker from root. ok is false when
// no marker exists — the state of every root created before
// partitioning (implicitly partition 0 of 1).
func LoadPartition(root string) (PartitionID, bool, error) {
	var p PartitionID
	b, err := os.ReadFile(filepath.Join(root, PartitionMarker))
	if err != nil {
		if os.IsNotExist(err) {
			return p, false, nil
		}
		return p, false, fmt.Errorf("shard: read partition marker: %w", err)
	}
	if err := json.Unmarshal(b, &p); err != nil {
		return p, false, fmt.Errorf("shard: partition marker %s: %w", filepath.Join(root, PartitionMarker), err)
	}
	if err := p.Validate(); err != nil {
		return p, false, fmt.Errorf("shard: partition marker %s: %w", filepath.Join(root, PartitionMarker), err)
	}
	return p, true, nil
}

// Store atomically persists the partition marker to root, routed
// through the "shard.partition" fault-injection point.
func (p PartitionID) Store(root string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	path := filepath.Join(root, PartitionMarker)
	err := atomicio.WriteFile(path, "shard.partition", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(p)
	})
	if err != nil {
		return fmt.Errorf("shard: write partition marker: %w", err)
	}
	return nil
}

// EnsurePartition reconciles a requested identity against the marker in
// root and returns the effective identity:
//
//   - want.Count == 0 (partitioning not configured): an existing marker
//     wins; with no marker the root is partition 0 of 1 and nothing is
//     written — flat deployments stay byte-identical on disk.
//   - want.Count >= 1 (explicit -partition): with no marker, want is
//     persisted and adopted. With a marker, the identities must match;
//     a different index or count is only accepted — and re-persisted —
//     under a strictly higher want.Generation, the operator's explicit
//     resize acknowledgement. Anything else is a loud error: silently
//     serving another partition's keys would misroute them for good.
func EnsurePartition(root string, want PartitionID) (PartitionID, error) {
	have, ok, err := LoadPartition(root)
	if err != nil {
		return PartitionID{}, err
	}
	if want.Count == 0 {
		if ok {
			return have, nil
		}
		return DefaultPartition(), nil
	}
	if err := want.Validate(); err != nil {
		return PartitionID{}, err
	}
	if !ok {
		if err := want.Store(root); err != nil {
			return PartitionID{}, err
		}
		return want, nil
	}
	if have == want {
		return have, nil
	}
	if want.Generation > have.Generation {
		// A resize re-identity: the higher generation is the operator
		// saying "yes, this root's slice of the key space changed".
		if err := want.Store(root); err != nil {
			return PartitionID{}, err
		}
		return want, nil
	}
	return PartitionID{}, fmt.Errorf(
		"shard: %s is partition %s but was started as %s — a node's slice of the key space is fixed per events dir; rerun with -partition %d/%d, or bump the generation (-partition %d/%d@%d) to acknowledge a resize",
		root, have, want, have.Index, have.Count, want.Index, want.Count, have.Generation+1)
}
