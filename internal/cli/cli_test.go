package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"testing"
	"time"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("boom"), 1},
		{fmt.Errorf("bad flag: %w", ErrUsage), 2},
		{flag.ErrHelp, 2},
		{fmt.Errorf("run: %w", context.DeadlineExceeded), 124},
		{fmt.Errorf("run: %w", context.Canceled), 130},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestContextTimeout(t *testing.T) {
	ctx, cancel := Context(time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("deadline never fired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}
}

func TestContextNoTimeout(t *testing.T) {
	ctx, cancel := Context(0)
	if ctx.Err() != nil {
		t.Fatalf("fresh context already done: %v", ctx.Err())
	}
	cancel()
}
