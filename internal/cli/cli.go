// Package cli holds the small shared plumbing of the rrc-* binaries:
// a signal-aware root context with an optional deadline, and the mapping
// from a run() error to a process exit code. Centralizing both keeps the
// binaries on a single "main calls run, run returns error" shape where
// deferred cleanup and partial-result flushes actually execute — os.Exit
// never fires while work is in flight.
package cli

import (
	"context"
	"errors"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ErrUsage marks command-line errors (bad flags, unknown subjects). Wrap
// it so ExitCode maps the failure to the conventional exit code 2.
var ErrUsage = errors.New("usage error")

// Context returns a root context that is cancelled by SIGINT/SIGTERM and,
// when timeout > 0, by a deadline. The cancel func releases the signal
// watcher and must be deferred.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() { cancel(); stop() }
}

// ExitCode maps a run() error to the process exit code:
//
//	0   nil (success)
//	2   usage errors (ErrUsage or flag parse failures)
//	124 deadline exceeded (-timeout elapsed; GNU timeout's convention)
//	130 interrupted (SIGINT/SIGTERM; 128+SIGINT convention)
//	1   everything else
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrUsage), errors.Is(err, flag.ErrHelp):
		return 2
	case errors.Is(err, context.DeadlineExceeded):
		return 124
	case errors.Is(err, context.Canceled):
		return 130
	default:
		return 1
	}
}
