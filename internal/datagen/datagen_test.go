package datagen

import (
	"testing"

	"tsppr/internal/seq"
)

func tinyConfig() *Config {
	c := GowallaLike(20, 7)
	c.MinLen = 60
	c.MaxLen = 300
	return c
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumUsers() != b.NumUsers() {
		t.Fatal("user counts differ")
	}
	for u := range a.Seqs {
		if len(a.Seqs[u]) != len(b.Seqs[u]) {
			t.Fatalf("user %d lengths differ", u)
		}
		for i := range a.Seqs[u] {
			if a.Seqs[u][i] != b.Seqs[u][i] {
				t.Fatalf("user %d diverges at %d", u, i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	c1, c2 := tinyConfig(), tinyConfig()
	c2.Seed = 8
	a, _ := Generate(c1)
	b, _ := Generate(c2)
	same := true
	for u := range a.Seqs {
		if len(a.Seqs[u]) != len(b.Seqs[u]) {
			same = false
			break
		}
		for i := range a.Seqs[u] {
			if a.Seqs[u][i] != b.Seqs[u][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateShape(t *testing.T) {
	c := tinyConfig()
	ds, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "gowalla-sim" {
		t.Errorf("name = %q", ds.Name)
	}
	if ds.NumUsers() != c.Users {
		t.Fatalf("users = %d", ds.NumUsers())
	}
	for u, s := range ds.Seqs {
		if len(s) < c.MinLen || len(s) > c.MaxLen {
			t.Errorf("user %d length %d outside [%d,%d]", u, len(s), c.MinLen, c.MaxLen)
		}
		for _, v := range s {
			if v < 0 || int(v) >= c.Items {
				t.Fatalf("item %d outside universe", v)
			}
		}
	}
}

func TestRepeatRatioMatchesPreset(t *testing.T) {
	// The observed full-window repeat ratio should be near the preset's
	// RepeatProb (repeats can also arise from "novel" draws that happen to
	// hit window items, so ≥ is expected; allow generous slack).
	for _, preset := range []*Config{GowallaLike(30, 3), LastfmLike(10, 3)} {
		preset.MinLen, preset.MaxLen = 150, 400
		ds, err := Generate(preset)
		if err != nil {
			t.Fatal(err)
		}
		events, repeats := 0, 0
		for _, s := range ds.Seqs {
			seq.Scan(s, preset.WindowCap, func(ev seq.Event, _ *seq.Window) bool {
				events++
				if ev.Repeat {
					repeats++
				}
				return true
			})
		}
		ratio := float64(repeats) / float64(events)
		if ratio < preset.RepeatProb-0.15 || ratio > preset.RepeatProb+0.25 {
			t.Errorf("%s: repeat ratio %.3f too far from preset %.2f", preset.Name, ratio, preset.RepeatProb)
		}
	}
}

func TestLastfmLongerThanGowalla(t *testing.T) {
	g, _ := Generate(GowallaLike(30, 5))
	l, _ := Generate(LastfmLike(30, 5))
	gm := g.Stats().MeanSeqLen
	lm := l.Stats().MeanSeqLen
	if lm <= gm {
		t.Errorf("lastfm mean length %v should exceed gowalla %v", lm, gm)
	}
}

func TestGenerateWithInfo(t *testing.T) {
	c := tinyConfig()
	ds, infos, err := GenerateWithInfo(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != ds.NumUsers() {
		t.Fatalf("infos = %d, users = %d", len(infos), ds.NumUsers())
	}
	domSeen := map[int]int{}
	for _, info := range infos {
		if info.PRepeat < 0.05 || info.PRepeat > 0.95 {
			t.Errorf("PRepeat %v out of clamp range", info.PRepeat)
		}
		for _, w := range info.Weights {
			if w < 0 {
				t.Errorf("negative weight %v", w)
			}
		}
		domSeen[info.Dominant]++
	}
	// TypeBoost > 1 in the gowalla preset → dominants are 1 or 3.
	if domSeen[-1] != 0 || domSeen[1] == 0 || domSeen[3] == 0 {
		t.Errorf("dominant distribution %v", domSeen)
	}
}

func TestTypeBoostOffMeansNoDominant(t *testing.T) {
	c := tinyConfig()
	c.TypeBoost = 0
	_, infos, err := GenerateWithInfo(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Dominant != -1 {
			t.Fatalf("Dominant = %d with TypeBoost off", info.Dominant)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Items = 0 },
		func(c *Config) { c.MinLen = 0 },
		func(c *Config) { c.MaxLen = c.MinLen - 1 },
		func(c *Config) { c.LenTail = 0 },
		func(c *Config) { c.RepeatProb = 1.5 },
		func(c *Config) { c.RepeatProb = -0.1 },
		func(c *Config) { c.ZipfExponent = 0 },
		func(c *Config) { c.WindowCap = 0 },
		func(c *Config) { c.PoolSize = -1 },
		func(c *Config) { c.PoolProb = 2 },
		func(c *Config) { c.RepeatabilitySkew = 0 },
		func(c *Config) { c.WeightJitter = -1 },
		func(c *Config) { c.AffinityWeight = -1 },
		func(c *Config) { c.TypeBoost = 0.5 },
	}
	for i, mutate := range bad {
		c := tinyConfig()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config", i)
		}
	}
	if err := tinyConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAffinityDeterministic(t *testing.T) {
	a := affinity01(1, 2, 3)
	b := affinity01(1, 2, 3)
	if a != b {
		t.Fatal("affinity01 not deterministic")
	}
	if a < 0 || a >= 1 {
		t.Fatalf("affinity01 = %v out of [0,1)", a)
	}
	if affinity01(1, 2, 3) == affinity01(1, 2, 4) && affinity01(1, 2, 4) == affinity01(1, 3, 3) {
		t.Fatal("affinity01 suspiciously constant")
	}
}

func BenchmarkGenerateGowalla50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(GowallaLike(50, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
