// Package datagen synthesizes consumption-event workloads that stand in
// for the paper's two real datasets (Gowalla check-ins and Last.fm
// listening logs), which are not redistributable here.
//
// The generator is an explicit repeat/novelty mixture process, mirroring
// the behavioral findings the paper builds on (Anderson et al., "The
// dynamics of repeat consumption"): at each step the user either repeats an
// item from the recent window — preferring recent, popular, familiar and
// intrinsically "repeatable" items — or seeks a novel item from a Zipf
// universe biased toward a personal taste pool.
//
// Two presets encode the dataset-specific properties that the paper's
// conclusions hinge on:
//
//   - GowallaLike: short, heavily imbalanced sequences; *steep* repeat
//     preference (strong recency/quality/repeatability discrimination), so
//     behavioural features are highly predictive — this is why TS-PPR's
//     improvement on Gowalla is large (paper Fig. 4/5/6 discussion).
//   - LastfmLike: long sequences, ~77% repeat ratio, *flat* repeat
//     preference, so features discriminate weakly and accuracy gains are
//     modest, matching the paper's Lastfm observations.
package datagen

import (
	"fmt"
	"math"

	"tsppr/internal/dataset"
	"tsppr/internal/rngutil"
	"tsppr/internal/seq"
)

// Config parameterizes the generative process. All weights are exponents
// on the corresponding repeat-choice factor; zero disables the factor and
// larger values sharpen the preference.
type Config struct {
	Name  string
	Users int
	Items int // size of the global item universe

	// Sequence length distribution: len = MinLen·(1-u)^(-1/LenTail) capped
	// at MaxLen. Small LenTail produces the heavy-tailed imbalance of
	// check-in data; large LenTail approaches constant length.
	MinLen  int
	MaxLen  int
	LenTail float64

	// RepeatProb is the per-step probability of attempting a repeat once
	// the window is non-empty; per-user jitter is ±RepeatProbJitter.
	RepeatProb       float64
	RepeatProbJitter float64

	// ZipfExponent shapes global item popularity for novelty seeking.
	ZipfExponent float64
	// PoolSize and PoolProb control the personal taste pool: each user
	// pre-draws PoolSize items and takes novel items from the pool with
	// probability PoolProb (otherwise from the global universe).
	PoolSize int
	PoolProb float64

	// WindowCap is the generator's repeat horizon (usually the same |W|
	// the experiments use).
	WindowCap int

	// Repeat-choice preference exponents.
	RecencyWeight       float64 // on 1/gap
	QualityWeight       float64 // on normalized item popularity
	FamiliarityWeight   float64 // on in-window count fraction
	RepeatabilityWeight float64 // on the item's intrinsic repeatability
	// RepeatabilitySkew shapes the per-item repeatability draw u^skew:
	// skew < 1 pushes items toward repeatable, > 1 toward one-off.
	RepeatabilitySkew float64

	// WeightJitter is the lognormal σ of per-user multipliers on the four
	// preference exponents above. This is what makes the workload
	// *personal*: with σ > 0 some users are recency-driven, others
	// quality-driven, and a personalized model (TS-PPR) can beat any
	// global weighting (Pop, DYRC) — the effect the paper observes
	// strongly on Gowalla.
	WeightJitter float64
	// TypeBoost, when > 1, assigns each user one dominant preference
	// dimension (recency, quality, familiarity or repeatability): the
	// dominant exponent is multiplied by TypeBoost and the others damped
	// by 1/TypeBoost. Discrete taste types are the strongest form of
	// heterogeneity: a global weighting fits the population average and
	// misses every type, while per-user maps recover them.
	TypeBoost float64
	// AffinityWeight is the exponent on a per-(user,item) intrinsic
	// affinity in the repeat choice. It injects static personal taste that
	// no behavioural feature exposes, which is exactly what the latent
	// uᵀv term of TS-PPR is there to learn.
	AffinityWeight float64

	Seed uint64
}

// Validate reports the first configuration error, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Users <= 0:
		return fmt.Errorf("datagen: Users %d <= 0", c.Users)
	case c.Items <= 0:
		return fmt.Errorf("datagen: Items %d <= 0", c.Items)
	case c.MinLen <= 0 || c.MaxLen < c.MinLen:
		return fmt.Errorf("datagen: bad length range [%d,%d]", c.MinLen, c.MaxLen)
	case c.LenTail <= 0:
		return fmt.Errorf("datagen: LenTail %v <= 0", c.LenTail)
	case c.RepeatProb < 0 || c.RepeatProb > 1:
		return fmt.Errorf("datagen: RepeatProb %v out of [0,1]", c.RepeatProb)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("datagen: ZipfExponent %v <= 0", c.ZipfExponent)
	case c.WindowCap <= 0:
		return fmt.Errorf("datagen: WindowCap %d <= 0", c.WindowCap)
	case c.PoolSize < 0 || c.PoolProb < 0 || c.PoolProb > 1:
		return fmt.Errorf("datagen: bad pool config size=%d prob=%v", c.PoolSize, c.PoolProb)
	case c.RepeatabilitySkew <= 0:
		return fmt.Errorf("datagen: RepeatabilitySkew %v <= 0", c.RepeatabilitySkew)
	case c.WeightJitter < 0:
		return fmt.Errorf("datagen: WeightJitter %v < 0", c.WeightJitter)
	case c.AffinityWeight < 0:
		return fmt.Errorf("datagen: AffinityWeight %v < 0", c.AffinityWeight)
	case c.TypeBoost < 0 || (c.TypeBoost > 0 && c.TypeBoost < 1):
		return fmt.Errorf("datagen: TypeBoost %v must be 0 (off) or >= 1", c.TypeBoost)
	}
	return nil
}

// GowallaLike returns the check-in style preset scaled to roughly `users`
// users. Scale down for unit tests, up for the experiment harness.
func GowallaLike(users int, seed uint64) *Config {
	return &Config{
		Name:  "gowalla-sim",
		Users: users,
		// The real Gowalla set has ~64 items per user and only ~4.3
		// consumptions per item; that sparsity is what starves purely
		// latent methods (FPMC) relative to feature-based ones.
		Items: users * 32,
		// Heavy-tailed lengths: most users near the filter threshold, a
		// few an order of magnitude longer (drives MaAP > MiAP gains).
		MinLen:  160,
		MaxLen:  2400,
		LenTail: 1.1,

		RepeatProb:       0.62,
		RepeatProbJitter: 0.12,
		// A flat popularity curve with pool-driven novelty keeps per-item
		// observation counts near the real Gowalla's ~4 per item: sparse
		// enough that per-item latent memorization (FPMC) starves while
		// scalar behavioural statistics (IR, IP) remain estimable.
		ZipfExponent: 1.0,
		PoolSize:     180,
		PoolProb:     0.85,
		WindowCap:    100,

		// Steep preferences: behavioural features strongly predictive,
		// with strong per-user heterogeneity and personal taste.
		RecencyWeight:       1.0,
		QualityWeight:       1.1,
		FamiliarityWeight:   0.5,
		RepeatabilityWeight: 2.8,
		RepeatabilitySkew:   2.0,
		WeightJitter:        0.4,
		TypeBoost:           3.0,
		AffinityWeight:      0.2,

		Seed: seed,
	}
}

// LastfmLike returns the music-listening preset scaled to roughly `users`
// users.
func LastfmLike(users int, seed uint64) *Config {
	return &Config{
		Name:  "lastfm-sim",
		Users: users,
		// Last.fm is even sparser per item in the paper (≈1000 items per
		// user, 17 consumptions per item).
		Items: users * 160,
		// Long, comparatively even sequences.
		MinLen:  700,
		MaxLen:  2600,
		LenTail: 4.0,

		RepeatProb:       0.77,
		RepeatProbJitter: 0.05,
		ZipfExponent:     0.85,
		PoolSize:         220,
		PoolProb:         0.85,
		WindowCap:        100,

		// Flat preferences: features only weakly discriminative, with
		// mild per-user heterogeneity.
		RecencyWeight:       0.45,
		QualityWeight:       0.30,
		FamiliarityWeight:   0.35,
		RepeatabilityWeight: 0.50,
		RepeatabilitySkew:   1.0,
		WeightJitter:        0.25,
		TypeBoost:           1.3,
		AffinityWeight:      0.8,

		Seed: seed,
	}
}

// UserInfo reports the hidden preference profile of one synthetic user,
// for diagnostics and generator tests (a real dataset has no such oracle).
type UserInfo struct {
	PRepeat float64
	// Weights are the effective exponents [recency, quality, familiarity,
	// repeatability] after jitter and type assignment.
	Weights [4]float64
	// Dominant is the boosted dimension index (1=quality, 2=familiarity,
	// 3=repeatability), or -1 when TypeBoost is off.
	Dominant int
}

// Generate synthesizes the dataset described by c. Generation is
// deterministic in c (including Seed).
func Generate(c *Config) (*dataset.Dataset, error) {
	ds, _, err := GenerateWithInfo(c)
	return ds, err
}

// GenerateWithInfo is Generate plus the hidden per-user profiles.
func GenerateWithInfo(c *Config) (*dataset.Dataset, []UserInfo, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	root := rngutil.New(c.Seed)

	// Per-item attributes. popNorm is popularity normalized to max 1;
	// repeatability is an intrinsic per-item reconsumption propensity,
	// mildly correlated with popularity so that IP and IR correlate as
	// they do in real logs.
	popNorm := make([]float64, c.Items)
	for i := range popNorm {
		popNorm[i] = 1 / math.Pow(float64(i+1), c.ZipfExponent)
	}
	attrRNG := root.Split()
	repeatability := make([]float64, c.Items)
	for i := range repeatability {
		u := math.Pow(attrRNG.Float64(), c.RepeatabilitySkew)
		repeatability[i] = 0.1 + 0.9*(0.9*u+0.1*popNorm[i])
	}

	seqs := make([]seq.Sequence, c.Users)
	infos := make([]UserInfo, c.Users)
	userRNG := root.Split()
	for u := 0; u < c.Users; u++ {
		seqs[u], infos[u] = generateUser(c, u, userRNG.Split(), popNorm, repeatability)
	}
	return dataset.New(c.Name, seqs), infos, nil
}

// affinity01 returns a deterministic per-(user,item) uniform value in
// [0,1), a stand-in for latent personal taste.
func affinity01(seed uint64, user int, item seq.Item) float64 {
	x := seed ^ uint64(user+1)*0x9e3779b97f4a7c15 ^ uint64(item+1)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) * (1.0 / (1 << 53))
}

func generateUser(c *Config, uid int, rng *rngutil.RNG, popNorm, repeatability []float64) (seq.Sequence, UserInfo) {
	// Sequence length: truncated Pareto.
	u := rng.Float64()
	length := int(float64(c.MinLen) * math.Pow(1-u, -1/c.LenTail))
	if length > c.MaxLen {
		length = c.MaxLen
	}

	pRepeat := c.RepeatProb + (2*rng.Float64()-1)*c.RepeatProbJitter
	if pRepeat < 0.05 {
		pRepeat = 0.05
	}
	if pRepeat > 0.95 {
		pRepeat = 0.95
	}

	// Per-user preference weights: lognormal jitter around the preset
	// exponents, so users differ in what drives their repeats.
	jitter := func(w float64) float64 {
		if c.WeightJitter == 0 {
			return w
		}
		return w * math.Exp(c.WeightJitter*rng.NormFloat64())
	}
	wRec := jitter(c.RecencyWeight)
	wQual := jitter(c.QualityWeight)
	wFam := jitter(c.FamiliarityWeight)
	wRep := jitter(c.RepeatabilityWeight)
	dominant := -1
	if c.TypeBoost > 1 {
		// Types are drawn over quality/familiarity/repeatability only:
		// recency-dominant behaviour mostly produces repeats *within* the
		// minimum gap Ω, which the RRC evaluation excludes, so a recency
		// type would merely starve the eligible-event stream.
		// The type axis is quality-vs-repeatability: both are cleanly
		// visible through behavioural features (IP and IR), so the
		// heterogeneity is learnable by a personalized feature model.
		// (Familiarity- or recency-dominant behaviour manifests mostly at
		// gaps below Ω, which the RRC evaluation excludes.)
		damp := 1 / c.TypeBoost
		if rng.Intn(2) == 0 {
			dominant = 1
			wQual *= c.TypeBoost
			wRep *= damp
		} else {
			dominant = 3
			wRep *= c.TypeBoost
			wQual *= damp
		}
		wFam *= damp
	}
	info := UserInfo{
		PRepeat:  pRepeat,
		Weights:  [4]float64{wRec, wQual, wFam, wRep},
		Dominant: dominant,
	}

	zipf := rngutil.NewZipf(rng, c.Items, c.ZipfExponent)
	pool := make([]seq.Item, 0, c.PoolSize)
	for len(pool) < c.PoolSize {
		pool = append(pool, seq.Item(zipf.Draw()))
	}

	w := seq.NewWindow(c.WindowCap)
	s := make(seq.Sequence, 0, length)
	var scratch []seq.Item
	var weights []float64
	for t := 0; t < length; t++ {
		var v seq.Item
		if w.Len() > 0 && rng.Float64() < pRepeat {
			scratch = w.DistinctItems(scratch[:0])
			weights = weights[:0]
			total := 0.0
			for _, cand := range scratch {
				gap, _ := w.Gap(cand)
				wt := math.Pow(1/float64(gap), wRec) *
					math.Pow(popNorm[cand], wQual) *
					math.Pow(float64(w.Count(cand))/float64(w.Cap()), wFam) *
					math.Pow(repeatability[cand], wRep)
				if c.AffinityWeight > 0 {
					wt *= math.Pow(0.1+0.9*affinity01(c.Seed, uid, cand), c.AffinityWeight)
				}
				weights = append(weights, wt)
				total += wt
			}
			if total > 0 {
				r := rng.Float64() * total
				idx := len(scratch) - 1
				for i, wt := range weights {
					if r < wt {
						idx = i
						break
					}
					r -= wt
				}
				v = scratch[idx]
			} else {
				v = scratch[rng.Intn(len(scratch))]
			}
		} else if len(pool) > 0 && rng.Float64() < c.PoolProb {
			v = pool[rng.Intn(len(pool))]
		} else {
			v = seq.Item(zipf.Draw())
		}
		s = append(s, v)
		w.Push(v)
	}
	return s, info
}
