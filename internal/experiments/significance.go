package experiments

import (
	"fmt"
	"io"

	"tsppr/internal/dataset"
	"tsppr/internal/engine"
	"tsppr/internal/eval"
	"tsppr/internal/features"
)

// RunSignificance goes beyond the paper: it re-evaluates TS-PPR and every
// baseline with per-user outcomes retained and reports a user-level paired
// bootstrap of the Top-1 and Top-10 MaAP deltas against TS-PPR, with 95%
// confidence intervals. The paper reports point estimates only; this
// driver answers "is the win real or sampling noise?".
func RunSignificance(w io.Writer, p Params) error {
	p = p.Defaults()
	gowalla, lastfm, err := Workloads(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Significance: paired user-level bootstrap of TS-PPR vs each baseline (MaAP deltas, 95% CI)")
	for _, ds := range []*dataset.Dataset{gowalla, lastfm} {
		pl, err := NewPipeline(ds, p, features.AllFeatures, features.Hyperbolic)
		if err != nil {
			return err
		}
		model, _, err := pl.TrainTSPPR(p)
		if err != nil {
			return err
		}
		fs, err := pl.BaselineFactories(p)
		if err != nil {
			return err
		}
		opt := evalOptions(p, false)
		opt.KeepPerUser = true
		ours, err := evaluate(p, pl.Train, pl.Test, engine.New(model).Factory(), opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s (bootstrap iters=2000)\n", ds.Name)
		t := NewTable("Baseline", "Δ@1", "CI@1", "p@1", "Δ@10", "CI@10", "p@10")
		for _, f := range fs {
			theirs, err := evaluate(p, pl.Train, pl.Test, f, opt)
			if err != nil {
				return err
			}
			c, err := eval.PairedBootstrap(ours, theirs, 2000, p.Seed)
			if err != nil {
				return err
			}
			i1, ok1 := indexOf(c.TopNs, 1)
			i10, ok10 := indexOf(c.TopNs, 10)
			if !ok1 || !ok10 {
				return fmt.Errorf("experiments: significance needs Top-1 and Top-10 in the evaluated TopNs, got %v", c.TopNs)
			}
			t.AddRow(f.Name,
				fmt.Sprintf("%+.4f%s", c.DeltaMaAP[i1], star(c.SignificantMaAP(i1))),
				fmt.Sprintf("[%+.3f,%+.3f]", c.CILowMaAP[i1], c.CIHighMaAP[i1]),
				fmt.Sprintf("%.3f", c.PValueMaAP[i1]),
				fmt.Sprintf("%+.4f%s", c.DeltaMaAP[i10], star(c.SignificantMaAP(i10))),
				fmt.Sprintf("[%+.3f,%+.3f]", c.CILowMaAP[i10], c.CIHighMaAP[i10]),
				fmt.Sprintf("%.3f", c.PValueMaAP[i10]))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\n* marks deltas whose 95% bootstrap CI excludes zero.")
	return nil
}

func indexOf(xs []int, v int) (int, bool) {
	for i, x := range xs {
		if x == v {
			return i, true
		}
	}
	return -1, false
}

func star(sig bool) string {
	if sig {
		return "*"
	}
	return ""
}

func init() {
	Registry["significance"] = RunSignificance
}
