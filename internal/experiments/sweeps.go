package experiments

import (
	"fmt"
	"io"

	"tsppr/internal/dataset"
	"tsppr/internal/engine"
	"tsppr/internal/eval"
	"tsppr/internal/features"
	"tsppr/internal/plot"
)

// trainEval trains TS-PPR with the given parameter overrides and returns
// its evaluation result on the dataset. The feature mask/recency let the
// ablation experiments reuse the same path.
func trainEval(ds *dataset.Dataset, p Params, mask features.Mask, rk features.RecencyKind) (eval.Result, error) {
	pl, err := NewPipeline(ds, p, mask, rk)
	if err != nil {
		return eval.Result{}, err
	}
	model, _, err := pl.TrainTSPPR(p)
	if err != nil {
		return eval.Result{}, err
	}
	return evaluate(p, pl.Train, pl.Test, engine.New(model).Factory(), evalOptions(p, false))
}

// RunFig7 reports the feature-importance ablation (paper Fig. 7): drop
// each feature in turn and compare MaAP@10 / MiAP@10 against all four.
func RunFig7(w io.Writer, p Params) error {
	p = p.Defaults()
	gowalla, lastfm, err := Workloads(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 7: feature importance (drop one feature, compare @10 precision)")
	for _, ds := range []*dataset.Dataset{gowalla, lastfm} {
		fmt.Fprintf(w, "\n%s\n", ds.Name)
		t := NewTable("Variant", "MaAP@10", "MiAP@10")
		all, err := trainEval(ds, p, features.AllFeatures, features.Hyperbolic)
		if err != nil {
			return err
		}
		ma, mi, _ := all.At(10)
		t.AddRow("All", f3(ma), f3(mi))
		for k := features.Kind(0); k < features.NumKinds; k++ {
			r, err := trainEval(ds, p, features.AllFeatures.Without(k), features.Hyperbolic)
			if err != nil {
				return err
			}
			ma, mi, _ := r.At(10)
			t.AddRow("-"+k.String(), f3(ma), f3(mi))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// sweep evaluates TS-PPR across variants of p produced by vary and renders
// one row per variant.
func sweep(w io.Writer, base Params, label string, values []string, vary func(Params, int) Params) error {
	gowalla, lastfm, err := Workloads(base)
	if err != nil {
		return err
	}
	for _, ds := range []*dataset.Dataset{gowalla, lastfm} {
		fmt.Fprintf(w, "\n%s\n", ds.Name)
		t := NewTable(label, "MaAP@10", "MiAP@10")
		series := make([]float64, 0, len(values))
		for i, val := range values {
			p := vary(base, i)
			r, err := trainEval(ds, p, features.AllFeatures, features.Hyperbolic)
			if err != nil {
				return err
			}
			ma, mi, _ := r.At(10)
			series = append(series, ma)
			t.AddRow(val, f3(ma), f3(mi))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "MaAP@10 trend: %s\n", plot.Sparkline(series))
	}
	return nil
}

// RunFig8 sweeps the regularization parameters λ and γ (paper Fig. 8).
func RunFig8(w io.Writer, p Params) error {
	p = p.Defaults()
	fmt.Fprintln(w, "Fig. 8: influence of regularization parameters λ and γ")
	lambdas := []float64{0.0001, 0.001, 0.01, 0.1, 1}
	gammas := []float64{0.001, 0.01, 0.05, 0.1, 1}
	if p.Quick {
		lambdas = []float64{0.001, 0.1}
		gammas = []float64{0.01, 0.1}
	}
	labels := make([]string, len(lambdas))
	for i, l := range lambdas {
		labels[i] = fmt.Sprintf("λ=%g", l)
	}
	if err := sweep(w, p, "lambda", labels, func(q Params, i int) Params {
		q.Lambda = lambdas[i]
		return q
	}); err != nil {
		return err
	}
	labels = make([]string, len(gammas))
	for i, g := range gammas {
		labels[i] = fmt.Sprintf("γ=%g", g)
	}
	return sweep(w, p, "gamma", labels, func(q Params, i int) Params {
		q.Gamma = gammas[i]
		return q
	})
}

// RunFig9 sweeps the latent dimension K (paper Fig. 9).
func RunFig9(w io.Writer, p Params) error {
	p = p.Defaults()
	fmt.Fprintln(w, "Fig. 9: sensitivity of latent feature space dimension K")
	ks := []int{10, 20, 40, 60, 80}
	if p.Quick {
		ks = []int{10, 40}
	}
	labels := make([]string, len(ks))
	for i, k := range ks {
		labels[i] = fmt.Sprintf("K=%d", k)
	}
	return sweep(w, p, "K", labels, func(q Params, i int) Params {
		q.K = ks[i]
		return q
	})
}

// RunFig10 sweeps the negative-sample count S at Ω ∈ {10, 20}
// (paper Fig. 10).
func RunFig10(w io.Writer, p Params) error {
	p = p.Defaults()
	fmt.Fprintln(w, "Fig. 10: sensitivity of negative sample number S")
	ss := []int{1, 5, 10, 15, 20}
	omegas := []int{10, 20}
	if p.Quick {
		ss = []int{5, 10}
		omegas = []int{10}
	}
	for _, omega := range omegas {
		fmt.Fprintf(w, "\nΩ = %d\n", omega)
		labels := make([]string, len(ss))
		for i, s := range ss {
			labels[i] = fmt.Sprintf("S=%d", s)
		}
		q := p
		q.Omega = omega
		if err := sweep(w, q, "S", labels, func(r Params, i int) Params {
			r.S = ss[i]
			return r
		}); err != nil {
			return err
		}
	}
	return nil
}

// RunFig11 sweeps the minimum gap Ω at S ∈ {10, 20} (paper Fig. 11).
func RunFig11(w io.Writer, p Params) error {
	p = p.Defaults()
	fmt.Fprintln(w, "Fig. 11: sensitivity of the minimum gap Ω")
	omegas := []int{5, 10, 20, 30, 40}
	ss := []int{10, 20}
	if p.Quick {
		omegas = []int{10, 30}
		ss = []int{10}
	}
	for _, s := range ss {
		fmt.Fprintf(w, "\nS = %d\n", s)
		labels := make([]string, len(omegas))
		for i, o := range omegas {
			labels[i] = fmt.Sprintf("Ω=%d", o)
		}
		q := p
		q.S = s
		if err := sweep(w, q, "omega", labels, func(r Params, i int) Params {
			r.Omega = omegas[i]
			return r
		}); err != nil {
			return err
		}
	}
	return nil
}
