// Package experiments contains one driver per table and figure of the
// paper's evaluation section (§5). Each driver regenerates the artifact's
// rows/series on the synthetic Gowalla-like and Lastfm-like workloads and
// renders them as aligned text tables; cmd/rrc-eval exposes them by id.
//
// The drivers are deliberately self-contained (dataset → split → features
// → training → evaluation) so a single experiment can be re-run in
// isolation; intermediate artifacts that several experiments share
// (datasets, trained models) are memoized in-process keyed by their full
// parameterization.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"tsppr/internal/baselines"
	"tsppr/internal/core"
	"tsppr/internal/datagen"
	"tsppr/internal/dataset"
	"tsppr/internal/eval"
	"tsppr/internal/features"
	"tsppr/internal/obs"
	"tsppr/internal/rec"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
)

// Params carries the suite-wide knobs. The zero value is completed by
// Defaults; experiments sweep individual fields away from these defaults
// exactly as the paper does (Table 4).
type Params struct {
	// GowallaUsers and LastfmUsers scale the synthetic workloads.
	GowallaUsers int
	LastfmUsers  int
	Seed         uint64

	TrainFrac float64
	WindowCap int // |W|
	Omega     int // Ω
	S         int // negatives per positive

	K      int // latent dimension
	Lambda float64
	Gamma  float64

	// MaxSteps caps TS-PPR SGD steps per training run.
	MaxSteps int
	// Quick shrinks sweeps (used by tests to keep runtimes sane).
	Quick bool

	// Context, when set, cancels long-running drivers between (and inside)
	// their training and evaluation stages; nil means Background. A
	// cancelled driver returns the context's error rather than printing a
	// partial table.
	Context context.Context

	// Metrics, when non-nil, is threaded into every evaluation this
	// suite runs (per-user replay latency by method). Nil records
	// nothing.
	Metrics *obs.Registry
}

// ctx resolves the driver context.
func (p Params) ctx() context.Context {
	if p.Context != nil {
		return p.Context
	}
	return context.Background()
}

// Defaults fills unset fields with the paper's Table 4 settings at a
// laptop-friendly workload scale.
func (p Params) Defaults() Params {
	if p.GowallaUsers == 0 {
		p.GowallaUsers = 300
	}
	if p.LastfmUsers == 0 {
		p.LastfmUsers = 120
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.TrainFrac == 0 {
		p.TrainFrac = 0.7
	}
	if p.WindowCap == 0 {
		p.WindowCap = 100
	}
	if p.Omega == 0 {
		p.Omega = 10
	}
	if p.S == 0 {
		p.S = 10
	}
	if p.K == 0 {
		p.K = 40
	}
	if p.Lambda == 0 {
		p.Lambda = 0.01
	}
	if p.Gamma == 0 {
		p.Gamma = 0.05
	}
	// MaxSteps 0 lets the trainer pick 5·|D| (see core.Config); Quick runs
	// cap it to keep test latency sane.
	if p.MaxSteps == 0 && p.Quick {
		p.MaxSteps = 150_000
	}
	return p
}

// Runner executes one experiment, writing its report to w.
type Runner func(w io.Writer, p Params) error

// Registry maps experiment ids (paper artifact names) to their drivers.
var Registry = map[string]Runner{
	"table2": RunTable2,
	"fig4":   RunFig4,
	"fig5":   RunFig5,
	"fig6":   RunFig6,
	"table3": RunTable3,
	"fig7":   RunFig7,
	"fig8":   RunFig8,
	"fig9":   RunFig9,
	"fig10":  RunFig10,
	"fig11":  RunFig11,
	"fig12":  RunFig12,
	"fig13":  RunFig13,
	"table5": RunTable5,
	// Design-choice ablations beyond the paper (DESIGN.md §5).
	"ablation": RunAblations,
}

// IDs returns the registered experiment ids in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ---------------------------------------------------------------------------
// Workload preparation (memoized).

type workloadKey struct {
	name  string
	users int
	seed  uint64
}

var (
	workloadMu    sync.Mutex
	workloadCache = map[workloadKey]*dataset.Dataset{}
)

// workload generates (or recalls) one synthetic dataset, filtered per the
// paper's protocol and compacted to dense item IDs.
func workload(name string, users int, seed uint64, trainFrac float64, windowCap int) (*dataset.Dataset, error) {
	key := workloadKey{name, users, seed}
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if ds, ok := workloadCache[key]; ok {
		return ds, nil
	}
	var cfg *datagen.Config
	switch name {
	case "gowalla-sim":
		cfg = datagen.GowallaLike(users, seed)
	case "lastfm-sim":
		cfg = datagen.LastfmLike(users, seed^0xfeed)
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	ds, err := datagen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	ds = ds.FilterMinTrain(trainFrac, windowCap)
	ds, _ = ds.Compact()
	workloadCache[key] = ds
	return ds, nil
}

// Workloads returns the two standard datasets for p.
func Workloads(p Params) (gowalla, lastfm *dataset.Dataset, err error) {
	gowalla, err = workload("gowalla-sim", p.GowallaUsers, p.Seed, p.TrainFrac, p.WindowCap)
	if err != nil {
		return nil, nil, err
	}
	lastfm, err = workload("lastfm-sim", p.LastfmUsers, p.Seed, p.TrainFrac, p.WindowCap)
	if err != nil {
		return nil, nil, err
	}
	return gowalla, lastfm, nil
}

// ---------------------------------------------------------------------------
// Pipeline: everything needed to train and evaluate on one dataset.

// Pipeline bundles one dataset's split, extractor and sampled training set.
type Pipeline struct {
	Dataset  *dataset.Dataset
	Train    []seq.Sequence
	Test     []seq.Sequence
	NumItems int
	Ex       *features.Extractor
	Set      *sampling.Set
}

// NewPipeline splits ds and builds the feature extractor and the
// pre-sampled training set for the given mask/recency variant.
func NewPipeline(ds *dataset.Dataset, p Params, mask features.Mask, rk features.RecencyKind) (*Pipeline, error) {
	train, test := ds.Split(p.TrainFrac)
	numItems := ds.NumItems()
	b := features.NewBuilder(numItems, p.WindowCap, p.Omega)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(mask, rk)
	set, err := sampling.Build(train, ex, sampling.Config{
		WindowCap: p.WindowCap,
		Omega:     p.Omega,
		S:         p.S,
		Seed:      p.Seed + 0xabcd,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{Dataset: ds, Train: train, Test: test, NumItems: numItems, Ex: ex, Set: set}, nil
}

// coreConfig assembles the TS-PPR training configuration for p.
func coreConfig(p Params, mapType core.MapKind) core.Config {
	return core.Config{
		K:        p.K,
		Lambda:   p.Lambda,
		Gamma:    p.Gamma,
		MaxSteps: p.MaxSteps,
		MapType:  mapType,
		TwoPhase: mapType == core.PerUserMap,
		Seed:     p.Seed + 0xc0de,
	}
}

// TrainTSPPR trains the model on the pipeline with the paper's defaults.
// A cancelled Params.Context surfaces as an error: experiment drivers
// print complete artifacts or nothing.
func (pl *Pipeline) TrainTSPPR(p Params) (*core.Model, *core.TrainStats, error) {
	m, stats, err := core.TrainContext(p.ctx(), pl.Set, len(pl.Train), pl.NumItems, pl.Ex, coreConfig(p, core.PerUserMap))
	if err != nil {
		return nil, nil, err
	}
	if stats.Interrupted {
		return nil, nil, interruptedErr(p, "training")
	}
	return m, stats, nil
}

// interruptedErr explains an interrupted stage, wrapping the context's
// cause when there is one (a fault-injected interruption has none).
func interruptedErr(p Params, stage string) error {
	if cause := context.Cause(p.ctx()); cause != nil {
		return fmt.Errorf("experiments: %s interrupted: %w", stage, cause)
	}
	return fmt.Errorf("experiments: %s interrupted", stage)
}

// evaluate runs eval.EvaluateContext under the driver context, converting
// interruption into an error for the same complete-or-nothing reason.
func evaluate(p Params, train, test []seq.Sequence, f rec.Factory, opt eval.Options) (eval.Result, error) {
	res, err := eval.EvaluateContext(p.ctx(), train, test, f, opt)
	if err != nil {
		return eval.Result{}, err
	}
	if res.Interrupted {
		return eval.Result{}, interruptedErr(p, "evaluation")
	}
	return res, nil
}

// evalOptions assembles the standard evaluation options for p.
func evalOptions(p Params, measureLatency bool) eval.Options {
	return eval.Options{
		WindowCap:      p.WindowCap,
		Omega:          p.Omega,
		TopNs:          []int{1, 5, 10},
		MeasureLatency: measureLatency,
		Seed:           p.Seed + 0xe7a1,
		Metrics:        p.Metrics,
	}
}

// BaselineFactories trains every baseline on the pipeline and returns
// their factories in the paper's presentation order.
func (pl *Pipeline) BaselineFactories(p Params) ([]rec.Factory, error) {
	pop := baselines.NewPop(pl.Train, pl.NumItems)
	dyrc, err := baselines.TrainDYRC(pl.Train, pl.NumItems, baselines.DYRCConfig{
		WindowCap: p.WindowCap,
		Omega:     p.Omega,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: DYRC: %w", err)
	}
	fpmc, err := baselines.TrainFPMC(pl.Train, pl.NumItems, baselines.FPMCConfig{
		WindowCap: p.WindowCap,
		Omega:     p.Omega,
		Seed:      p.Seed + 0x1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: FPMC: %w", err)
	}
	surv, err := baselines.TrainSurvival(pl.Train, pl.NumItems, baselines.SurvivalConfig{
		WindowCap: p.WindowCap,
		Omega:     p.Omega,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: Survival: %w", err)
	}
	return []rec.Factory{
		baselines.RandomFactory(),
		pop.Factory(),
		baselines.RecencyFactory(),
		fpmc.Factory(),
		surv.Factory(),
		dyrc.Factory(),
	}, nil
}

// ---------------------------------------------------------------------------
// Text-table rendering.

// Table renders aligned text tables for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// f3 formats a float at 4 decimals (precision values).
func f3(x float64) string { return fmt.Sprintf("%.4f", x) }
