package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"tsppr/internal/dataset"
	"tsppr/internal/engine"
	"tsppr/internal/eval"
	"tsppr/internal/features"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// RunTable2 reports the post-filtering statistics of both workloads
// (paper Table 2).
func RunTable2(w io.Writer, p Params) error {
	p = p.Defaults()
	gowalla, lastfm, err := Workloads(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 2: statistics of (synthetic) data sets after filtering")
	t := NewTable("Data Set", "Type", "Users", "Items", "Consumption", "Mean |S_u|")
	for _, d := range []struct {
		ds  *dataset.Dataset
		typ string
	}{{gowalla, "LBSN"}, {lastfm, "Music"}} {
		st := d.ds.Stats()
		t.AddRow(d.ds.Name, d.typ,
			fmt.Sprintf("%d", st.Users),
			fmt.Sprintf("%d", st.Items),
			fmt.Sprintf("%d", st.Consumptions),
			fmt.Sprintf("%.1f", st.MeanSeqLen))
	}
	return t.Render(w)
}

// accuracyKey memoizes the expensive shared fig5/fig6/table3 evaluation.
type accuracyKey struct {
	p Params
}

var (
	accMu    sync.Mutex
	accCache = map[accuracyKey]map[string][]eval.Result{}
)

// accuracyResults evaluates TS-PPR and every baseline on both workloads,
// returning results keyed by dataset name.
func accuracyResults(p Params) (map[string][]eval.Result, error) {
	key := accuracyKey{p}
	key.p.Context = nil // memoization must not depend on the caller's context
	accMu.Lock()
	if r, ok := accCache[key]; ok {
		accMu.Unlock()
		return r, nil
	}
	accMu.Unlock()

	gowalla, lastfm, err := Workloads(p)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]eval.Result, 2)
	for _, ds := range []*dataset.Dataset{gowalla, lastfm} {
		pl, err := NewPipeline(ds, p, features.AllFeatures, features.Hyperbolic)
		if err != nil {
			return nil, err
		}
		model, _, err := pl.TrainTSPPR(p)
		if err != nil {
			return nil, err
		}
		fs, err := pl.BaselineFactories(p)
		if err != nil {
			return nil, err
		}
		fs = append(fs, engine.New(model).Factory())
		rs, err := eval.EvaluateAllContext(p.ctx(), pl.Train, pl.Test, fs, evalOptions(p, false))
		if err != nil {
			return nil, err
		}
		out[ds.Name] = rs
	}
	accMu.Lock()
	accCache[key] = out
	accMu.Unlock()
	return out, nil
}

// renderAccuracy renders one precision aggregate (MaAP or MiAP) for all
// methods on both datasets, the content of paper Fig. 5 / Fig. 6.
func renderAccuracy(w io.Writer, p Params, micro bool) error {
	rs, err := accuracyResults(p)
	if err != nil {
		return err
	}
	names := sortedDatasetNames(rs)
	metric := "MaAP"
	if micro {
		metric = "MiAP"
	}
	for _, name := range names {
		fmt.Fprintf(w, "%s on %s (|W|=%d, Ω=%d, S=%d)\n", metric, name, p.WindowCap, p.Omega, p.S)
		t := NewTable("Method", metric+"@1", metric+"@5", metric+"@10", "Events")
		for _, r := range rs[name] {
			vals := r.MaAP
			if micro {
				vals = r.MiAP
			}
			t.AddRow(r.Method, f3(vals[0]), f3(vals[1]), f3(vals[2]), fmt.Sprintf("%d", r.Events))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func sortedDatasetNames(rs map[string][]eval.Result) []string {
	names := make([]string, 0, len(rs))
	for name := range rs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunFig5 reports macro average precision for all methods (paper Fig. 5).
func RunFig5(w io.Writer, p Params) error {
	p = p.Defaults()
	fmt.Fprintln(w, "Fig. 5: macro average precision of all methods")
	return renderAccuracy(w, p, false)
}

// RunFig6 reports micro average precision for all methods (paper Fig. 6).
func RunFig6(w io.Writer, p Params) error {
	p = p.Defaults()
	fmt.Fprintln(w, "Fig. 6: micro average precision of all methods")
	return renderAccuracy(w, p, true)
}

// RunTable3 reports TS-PPR's relative improvement over the best baseline
// (paper Table 3).
func RunTable3(w io.Writer, p Params) error {
	p = p.Defaults()
	rs, err := accuracyResults(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 3: relative precision improvement of TS-PPR over the best baseline")
	t := NewTable("Data set", "Metric", "Top-1", "Top-5", "Top-10")
	exclude := map[string]bool{"TS-PPR": true}
	for _, name := range sortedDatasetNames(rs) {
		var tsppr eval.Result
		found := false
		for _, r := range rs[name] {
			if r.Method == "TS-PPR" {
				tsppr, found = r, true
			}
		}
		if !found {
			return fmt.Errorf("experiments: TS-PPR result missing on %s", name)
		}
		for _, micro := range []bool{false, true} {
			metric := "MaAP"
			if micro {
				metric = "MiAP"
			}
			cells := []string{name, metric}
			for i, n := range []int{1, 5, 10} {
				// Best baseline *at this N and metric*, as the paper does.
				bestVal := -1.0
				for _, r := range rs[name] {
					if exclude[r.Method] {
						continue
					}
					v := r.MaAP[i]
					if micro {
						v = r.MiAP[i]
					}
					if v > bestVal {
						bestVal = v
					}
				}
				ours := tsppr.MaAP[i]
				if micro {
					ours = tsppr.MiAP[i]
				}
				if bestVal <= 0 {
					cells = append(cells, "n/a")
					continue
				}
				imp := (ours - bestVal) / bestVal * 100
				if imp < 0 {
					cells = append(cells, `\`) // the paper marks losses with a backslash
				} else {
					cells = append(cells, fmt.Sprintf("%+.0f%%", imp))
				}
				_ = n
			}
			t.AddRow(cells...)
		}
	}
	return t.Render(w)
}

// RunFig4 reports, for each feature, the distribution of repeat
// consumptions by the in-window rank of the reconsumed item on that
// feature (paper Fig. 4). A steep drop means the feature discriminates.
func RunFig4(w io.Writer, p Params) error {
	p = p.Defaults()
	gowalla, lastfm, err := Workloads(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 4: repeat-consumption count by in-window feature rank of the reconsumed item")
	buckets := []int{1, 2, 3, 5, 8, 13, 21, 34, 55, 90}
	for _, ds := range []*dataset.Dataset{gowalla, lastfm} {
		counts, err := FeatureRankCounts(ds, p, len(buckets), buckets)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s (rank buckets ≤ %v)\n", ds.Name, buckets)
		t := NewTable(append([]string{"Feature"}, bucketHeaders(buckets)...)...)
		for k := features.Kind(0); k < features.NumKinds; k++ {
			row := []string{k.String()}
			for bi := range buckets {
				row = append(row, fmt.Sprintf("%d", counts[k][bi]))
			}
			t.AddRow(row...)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func bucketHeaders(buckets []int) []string {
	hs := make([]string, len(buckets))
	for i, b := range buckets {
		hs[i] = fmt.Sprintf("≤%d", b)
	}
	return hs
}

// FeatureRankCounts scans the whole dataset and, at every eligible repeat
// event, ranks the reconsumed item among the window candidates on each
// feature separately, bucketing the resulting rank. Higher counts in lower
// buckets = steeper curve = more discriminative feature.
func FeatureRankCounts(ds *dataset.Dataset, p Params, nBuckets int, buckets []int) ([features.NumKinds][]int, error) {
	var counts [features.NumKinds][]int
	for k := range counts {
		counts[k] = make([]int, nBuckets)
	}
	train, _ := ds.Split(p.TrainFrac)
	b := features.NewBuilder(ds.NumItems(), p.WindowCap, p.Omega)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)

	var cands []seq.Item
	for _, s := range ds.Seqs {
		seq.Scan(s, p.WindowCap, func(ev seq.Event, win *seq.Window) bool {
			if !ev.Eligible(p.Omega) {
				return true
			}
			cands = win.Candidates(p.Omega, cands[:0])
			for k := features.Kind(0); k < features.NumKinds; k++ {
				truth := ex.Value(k, ev.Next, win)
				rank := 1
				for _, c := range cands {
					if c == ev.Next {
						continue
					}
					if ex.Value(k, c, win) > truth {
						rank++
					}
				}
				for bi, ub := range buckets {
					if rank <= ub {
						counts[k][bi]++
						break
					}
				}
			}
			return true
		})
	}
	return counts, nil
}

// methodNames lists the evaluation methods in presentation order; shared
// by tests.
func methodNames(fs []rec.Factory) []string {
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}
