package experiments

import (
	"fmt"
	"io"

	"tsppr/internal/dataset"
	"tsppr/internal/engine"
	"tsppr/internal/features"
	"tsppr/internal/plot"
	"tsppr/internal/strec"
)

// RunFig12 reports the convergence trajectory of the training objective —
// the small-batch mean preference difference r̃ per checkpoint
// (paper Fig. 12).
func RunFig12(w io.Writer, p Params) error {
	p = p.Defaults()
	gowalla, lastfm, err := Workloads(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 12: model convergence (S=%d, Ω=%d, tol Δr̃ ≤ 1e-3)\n", p.S, p.Omega)
	for _, ds := range []*dataset.Dataset{gowalla, lastfm} {
		pl, err := NewPipeline(ds, p, features.AllFeatures, features.Hyperbolic)
		if err != nil {
			return err
		}
		_, stats, err := pl.TrainTSPPR(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s: |D|=%d steps=%d converged=%v\n", ds.Name, pl.Set.NumPairs(), stats.Steps, stats.Converged)
		xs := make([]float64, len(stats.Checkpoints))
		rbars := make([]float64, len(stats.Checkpoints))
		losses := make([]float64, len(stats.Checkpoints))
		for i, cp := range stats.Checkpoints {
			xs[i] = float64(i) // checkpoint index: steps reset between the two phases
			rbars[i] = cp.RBar
			losses[i] = cp.Loss
		}
		chart := &plot.Chart{
			Title:  "r~ (mean preference difference) per checkpoint",
			XLabel: "checkpoint",
			X:      xs,
			Series: []plot.Series{{Name: "r~", Y: rbars}, {Name: "loss", Y: losses}},
		}
		if err := chart.Render(w); err != nil {
			return err
		}
		t := NewTable("Step", "r~", "Loss")
		for _, cp := range stats.Checkpoints {
			t.AddRow(fmt.Sprintf("%d", cp.Step), f3(cp.RBar), f3(cp.Loss))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RunFig13 reports the average online recommendation latency of a single
// instance for every method (paper Fig. 13). The paper's claim is about
// ordering (Random/Pop/DYRC cheap, Recency and FPMC medium, TS-PPR ~1ms,
// Survival orders of magnitude slower), which is hardware-independent.
func RunFig13(w io.Writer, p Params) error {
	p = p.Defaults()
	gowalla, lastfm, err := Workloads(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 13: average online recommendation time per instance")
	for _, ds := range []*dataset.Dataset{gowalla, lastfm} {
		pl, err := NewPipeline(ds, p, features.AllFeatures, features.Hyperbolic)
		if err != nil {
			return err
		}
		model, _, err := pl.TrainTSPPR(p)
		if err != nil {
			return err
		}
		fs, err := pl.BaselineFactories(p)
		if err != nil {
			return err
		}
		fs = append(fs, engine.New(model).Factory())
		opt := evalOptions(p, true)
		opt.Parallelism = 1 // serial replay for clean timing
		fmt.Fprintf(w, "\n%s\n", ds.Name)
		t := NewTable("Method", "Mean latency", "ns/rec", "Recs")
		for _, f := range fs {
			r, err := evaluate(p, pl.Train, pl.Test, f, opt)
			if err != nil {
				return err
			}
			t.AddRow(r.Method, r.MeanLatency.String(),
				fmt.Sprintf("%d", r.MeanLatency.Nanoseconds()),
				fmt.Sprintf("%d", r.Recs))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RunTable5 combines STREC (is the next consumption a repeat?) with
// TS-PPR (which item?) as the paper's §5.7 holistic pipeline.
func RunTable5(w io.Writer, p Params) error {
	p = p.Defaults()
	gowalla, lastfm, err := Workloads(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 5: evaluation combining STREC and TS-PPR")
	t := NewTable("Data Set", "STREC acc", "MaAP@1", "MaAP@5", "MaAP@10", "Joint@10")
	for _, ds := range []*dataset.Dataset{gowalla, lastfm} {
		pl, err := NewPipeline(ds, p, features.AllFeatures, features.Hyperbolic)
		if err != nil {
			return err
		}
		model, _, err := pl.TrainTSPPR(p)
		if err != nil {
			return err
		}
		sm, err := strec.Train(pl.Train, pl.NumItems, strec.Config{
			WindowCap: p.WindowCap,
			Seed:      p.Seed,
		})
		if err != nil {
			return err
		}
		cls := sm.Evaluate(pl.Train, pl.Test)
		// TS-PPR accuracy conditional on true repeats (the paper evaluates
		// it on the repeats STREC classifies correctly; conditioning on
		// all true eligible repeats is the same population up to STREC's
		// recall, which its accuracy already captures in the product).
		r, err := evaluate(p, pl.Train, pl.Test, engine.New(model).Factory(), evalOptions(p, false))
		if err != nil {
			return err
		}
		ma1, _, _ := r.At(1)
		ma5, _, _ := r.At(5)
		ma10, _, _ := r.At(10)
		t.AddRow(ds.Name,
			f3(cls.Accuracy), f3(ma1), f3(ma5), f3(ma10),
			f3(cls.Accuracy*ma10))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nJoint@10 multiplies STREC accuracy by TS-PPR MaAP@10, as the paper does.")
	return nil
}
