package experiments

import (
	"fmt"
	"io"

	"tsppr/internal/baselines"
	"tsppr/internal/core"
	"tsppr/internal/dataset"
	"tsppr/internal/engine"
	"tsppr/internal/eval"
	"tsppr/internal/features"
)

// RunAblations evaluates the design choices DESIGN.md §5 calls out, beyond
// the paper's own experiments:
//
//   - hyperbolic vs. exponential recency (paper Eq. 19 vs. Eq. 20)
//   - learned per-user map A_u vs. identity map (K = F, §4.2.1 case 2)
//   - per-user maps vs. one shared global map
//   - plain PPR (BPR-MF, §4.1) as the time-insensitive reference
func RunAblations(w io.Writer, p Params) error {
	p = p.Defaults()
	gowalla, lastfm, err := Workloads(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Design ablations (MaAP@10 / MiAP@10)")
	for _, ds := range []*dataset.Dataset{gowalla, lastfm} {
		fmt.Fprintf(w, "\n%s\n", ds.Name)
		t := NewTable("Variant", "MaAP@10", "MiAP@10")

		addRow := func(name string, r eval.Result, err error) error {
			if err != nil {
				return fmt.Errorf("experiments: ablation %s: %w", name, err)
			}
			ma, mi, _ := r.At(10)
			t.AddRow(name, f3(ma), f3(mi))
			return nil
		}

		// Paper default: per-user map, hyperbolic recency.
		r, err := trainEval(ds, p, features.AllFeatures, features.Hyperbolic)
		if err := addRow("per-user A_u, hyperbolic RE", r, err); err != nil {
			return err
		}

		// Exponential recency.
		r, err = trainEval(ds, p, features.AllFeatures, features.Exponential)
		if err := addRow("per-user A_u, exponential RE", r, err); err != nil {
			return err
		}

		// Shared global map.
		r, err = trainEvalMap(ds, p, core.SharedMap)
		if err := addRow("shared A, hyperbolic RE", r, err); err != nil {
			return err
		}

		// Identity map: K is forced to F.
		q := p
		q.K = features.AllFeatures.Dim()
		r, err = trainEvalMap(ds, q, core.IdentityMap)
		if err := addRow(fmt.Sprintf("identity A (K=F=%d)", q.K), r, err); err != nil {
			return err
		}

		// Per-user map at the same tiny K, to separate the effect of the
		// map from the effect of dimensionality.
		r, err = trainEvalMap(ds, q, core.PerUserMap)
		if err := addRow(fmt.Sprintf("per-user A_u (K=%d)", q.K), r, err); err != nil {
			return err
		}

		// Plain PPR: the time-insensitive model the paper argues cannot
		// address RRC (§4.1).
		r, err = evalPPR(ds, p)
		if err := addRow("plain PPR (no time term)", r, err); err != nil {
			return err
		}

		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// evalPPR trains and evaluates the plain BPR-MF reference.
func evalPPR(ds *dataset.Dataset, p Params) (eval.Result, error) {
	train, test := ds.Split(p.TrainFrac)
	m, err := baselines.TrainPPR(train, ds.NumItems(), baselines.PPRConfig{Seed: p.Seed})
	if err != nil {
		return eval.Result{}, err
	}
	return evaluate(p, train, test, m.Factory(), evalOptions(p, false))
}

// trainEvalMap is trainEval with an explicit map kind.
func trainEvalMap(ds *dataset.Dataset, p Params, mapType core.MapKind) (eval.Result, error) {
	pl, err := NewPipeline(ds, p, features.AllFeatures, features.Hyperbolic)
	if err != nil {
		return eval.Result{}, err
	}
	model, stats, err := core.TrainContext(p.ctx(), pl.Set, len(pl.Train), pl.NumItems, pl.Ex, coreConfig(p, mapType))
	if err != nil {
		return eval.Result{}, err
	}
	if stats.Interrupted {
		return eval.Result{}, interruptedErr(p, "training")
	}
	return evaluate(p, pl.Train, pl.Test, engine.New(model).Factory(), evalOptions(p, false))
}
