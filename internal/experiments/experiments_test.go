package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tsppr/internal/features"
)

// tinyParams keeps every experiment driver fast enough for unit tests.
func tinyParams() Params {
	return Params{
		GowallaUsers: 20,
		LastfmUsers:  8,
		Quick:        true,
		MaxSteps:     30_000,
	}
}

func TestIDsCoverRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() returned %d, registry has %d", len(ids), len(Registry))
	}
	for _, id := range ids {
		if Registry[id] == nil {
			t.Fatalf("id %q has nil runner", id)
		}
	}
	// Every paper artifact must be present.
	for _, want := range []string{"table2", "table3", "table5", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "ablation"} {
		if Registry[want] == nil {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestDefaults(t *testing.T) {
	p := Params{}.Defaults()
	if p.WindowCap != 100 || p.Omega != 10 || p.S != 10 || p.K != 40 {
		t.Fatalf("paper defaults wrong: %+v", p)
	}
	if p.Lambda != 0.01 || p.Gamma != 0.05 || p.TrainFrac != 0.7 {
		t.Fatalf("paper defaults wrong: %+v", p)
	}
	// Explicit values survive.
	q := Params{K: 7, Omega: 3}.Defaults()
	if q.K != 7 || q.Omega != 3 {
		t.Fatal("Defaults overwrote explicit values")
	}
}

func TestWorkloadsMemoized(t *testing.T) {
	p := tinyParams().Defaults()
	a1, b1, err := Workloads(p)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := Workloads(p)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || b1 != b2 {
		t.Fatal("workloads not memoized")
	}
	if a1.Name != "gowalla-sim" || b1.Name != "lastfm-sim" {
		t.Fatalf("names %q/%q", a1.Name, b1.Name)
	}
	if a1.NumUsers() == 0 || b1.NumUsers() == 0 {
		t.Fatal("empty workloads after filtering")
	}
}

func TestPipelineConstruction(t *testing.T) {
	p := tinyParams().Defaults()
	gow, _, err := Workloads(p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(gow, p, features.AllFeatures, features.Hyperbolic)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Train) != gow.NumUsers() || len(pl.Test) != gow.NumUsers() {
		t.Fatal("split user counts wrong")
	}
	if pl.Set.NumPairs() == 0 {
		t.Fatal("no training pairs")
	}
	if pl.Ex.Dim() != 4 {
		t.Fatalf("extractor dim %d", pl.Ex.Dim())
	}
}

func TestBaselineFactoriesOrder(t *testing.T) {
	p := tinyParams().Defaults()
	gow, _, err := Workloads(p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(gow, p, features.AllFeatures, features.Hyperbolic)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pl.BaselineFactories(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Random", "Pop", "Recency", "FPMC", "Survival", "DYRC"}
	got := methodNames(fs)
	if len(got) != len(want) {
		t.Fatalf("factories = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("factory order %v, want %v", got, want)
		}
	}
}

// TestRunnersSmoke executes every registered experiment at tiny scale and
// sanity-checks that each emits its table header.
func TestRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	p := tinyParams()
	markers := map[string]string{
		"table2":   "Table 2",
		"fig4":     "Fig. 4",
		"fig5":     "Fig. 5",
		"fig6":     "Fig. 6",
		"table3":   "Table 3",
		"fig7":     "Fig. 7",
		"fig8":     "Fig. 8",
		"fig9":     "Fig. 9",
		"fig10":    "Fig. 10",
		"fig11":    "Fig. 11",
		"fig12":    "Fig. 12",
		"fig13":    "Fig. 13",
		"table5":   "Table 5",
		"ablation": "ablation",
	}
	for id, run := range Registry {
		id, run := id, run
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, p); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := buf.String()
			if len(out) == 0 {
				t.Fatalf("%s produced no output", id)
			}
			if marker := markers[id]; marker != "" && !strings.Contains(strings.ToLower(out), strings.ToLower(marker)) {
				t.Errorf("%s output missing marker %q:\n%s", id, marker, out[:min(400, len(out))])
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("A", "Bee")
	tb.AddRow("1", "2")
	tb.AddRow("longer", "x", "dropped-extra")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "Bee") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "longer") {
		t.Fatalf("row %q", lines[3])
	}
	if strings.Contains(out, "dropped-extra") {
		t.Fatal("extra cell not dropped")
	}
}

func TestFeatureRankCountsShape(t *testing.T) {
	p := tinyParams().Defaults()
	gow, _, err := Workloads(p)
	if err != nil {
		t.Fatal(err)
	}
	buckets := []int{1, 2, 5, 100}
	counts, err := FeatureRankCounts(gow, p, len(buckets), buckets)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for k := range counts {
		if len(counts[k]) != len(buckets) {
			t.Fatalf("feature %d has %d buckets", k, len(counts[k]))
		}
		for _, c := range counts[k] {
			if c < 0 {
				t.Fatal("negative count")
			}
			total += c
		}
	}
	if total == 0 {
		t.Fatal("no repeat events bucketed")
	}
	// Each feature buckets the same set of events, so totals must match.
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	s0 := sum(counts[0])
	for k := 1; k < len(counts); k++ {
		if sum(counts[k]) != s0 {
			t.Fatalf("feature %d bucketed %d events, feature 0 bucketed %d", k, sum(counts[k]), s0)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
