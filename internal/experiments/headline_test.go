package experiments

import (
	"bytes"
	"testing"
)

// TestHeadlineResultRegression pins the repository's central claim — the
// paper's Fig. 5 shape — at the quick workload scale: TS-PPR must be the
// strictly best method at Top-1 MaAP on both datasets. Everything in the
// pipeline is deterministic, so any change that breaks this (a model
// regression, a feature-scaling slip, a generator drift) fails the test
// rather than silently eroding EXPERIMENTS.md.
func TestHeadlineResultRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the full quick-scale method suite")
	}
	p := Params{GowallaUsers: 60, LastfmUsers: 30, Quick: true}
	rs, err := accuracyResults(p.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for name, results := range rs {
		var tsppr, bestBaseline float64
		bestName := ""
		for _, r := range results {
			ma1, _, _ := r.At(1)
			if r.Method == "TS-PPR" {
				tsppr = ma1
				continue
			}
			if ma1 > bestBaseline {
				bestBaseline, bestName = ma1, r.Method
			}
		}
		if tsppr <= bestBaseline {
			t.Errorf("%s: TS-PPR MaAP@1 %.4f does not beat best baseline %s %.4f",
				name, tsppr, bestName, bestBaseline)
		}
		// And the floor sanity checks: everything beats Random,
		// Recency stays weak (both paper claims).
		var random, recency, pop float64
		for _, r := range results {
			ma1, _, _ := r.At(1)
			switch r.Method {
			case "Random":
				random = ma1
			case "Recency":
				recency = ma1
			case "Pop":
				pop = ma1
			}
		}
		if pop <= random || pop <= recency {
			t.Errorf("%s: Pop (%.4f) should beat Random (%.4f) and Recency (%.4f)",
				name, pop, random, recency)
		}
	}
}

// TestExperimentDeterminism: identical params must render byte-identical
// reports (the whole pipeline is seeded).
func TestExperimentDeterminism(t *testing.T) {
	p := Params{GowallaUsers: 15, LastfmUsers: 6, Quick: true, MaxSteps: 20_000}
	for _, id := range []string{"table2", "fig4"} {
		var a, b bytes.Buffer
		if err := Registry[id](&a, p); err != nil {
			t.Fatal(err)
		}
		if err := Registry[id](&b, p); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s output differs across identical runs", id)
		}
	}
}
