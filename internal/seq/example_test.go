package seq_test

import (
	"fmt"

	"tsppr/internal/seq"
)

// ExampleWindow walks the paper's Fig. 1 setup: a sliding window over a
// consumption stream, asking whether the next event is a repeat.
func ExampleWindow() {
	w := seq.NewWindow(5)
	for _, v := range []seq.Item{1, 2, 3, 2, 4} {
		w.Push(v)
	}
	gap, ok := w.Gap(2)
	fmt.Println("window full:", w.Full())
	fmt.Println("contains 2:", w.Contains(2), "count:", w.Count(2), "gap:", gap, ok)
	fmt.Println("candidates beyond Ω=1:", w.Candidates(1, nil))
	// Output:
	// window full: true
	// contains 2: true count: 2 gap: 2 true
	// candidates beyond Ω=1: [1 2 3]
}

// ExampleScan shows the repeat-event scanner that training and evaluation
// are built on.
func ExampleScan() {
	s := seq.Sequence{1, 2, 3, 1, 9}
	seq.Scan(s, 3, func(ev seq.Event, _ *seq.Window) bool {
		fmt.Printf("t=%d item=%d repeat=%v gap=%d\n", ev.T, ev.Next, ev.Repeat, ev.Gap)
		return true
	})
	// Output:
	// t=3 item=1 repeat=true gap=3
	// t=4 item=9 repeat=false gap=0
}
