// Package seq defines the consumption-sequence data model of the paper:
// per-user time-ordered item sequences, the sliding time window W_ut
// (Definition 1), and the repeat-consumption event scanner that both
// training-set construction and evaluation are built on.
//
// Time is the discrete consumption step, exactly as in the paper: step T is
// the 0-based position of an event in the user's sequence. The window
// ending "at time t" contains the last |W| events before the incoming
// consumption at position T; an incoming item is a repeat iff it occurs in
// that window (Definition 2), and it is an *eligible* repeat iff its last
// occurrence is more than Ω steps back (paper §5.1: recently consumed items
// need no recommendation).
package seq

import "fmt"

// Item identifies a consumable item (location, song, ...). Item IDs are
// dense non-negative integers assigned by the dataset layer.
type Item int32

// Sequence is one user's time-ascending consumption history. Repetition is
// allowed; order is meaningful.
type Sequence []Item

// Split partitions s into the leading train fraction and the remaining
// test suffix, per the paper's 70/30 per-user protocol.
func (s Sequence) Split(trainFrac float64) (train, test Sequence) {
	if trainFrac < 0 || trainFrac > 1 {
		panic(fmt.Sprintf("seq: Split fraction %v out of [0,1]", trainFrac))
	}
	n := int(float64(len(s)) * trainFrac)
	return s[:n], s[n:]
}

// Distinct returns the number of distinct items in s.
func (s Sequence) Distinct() int {
	seen := make(map[Item]struct{}, len(s))
	for _, v := range s {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// Window is the sliding time window W_ut: a fixed-capacity ring buffer over
// the most recent consumptions, with per-item occurrence counts and
// last-seen positions maintained incrementally.
//
// Window is not safe for concurrent use.
type Window struct {
	capacity int
	buf      []Item
	head     int // ring index of the oldest element
	size     int
	pushed   int // total events pushed == position of the next incoming event
	count    map[Item]int
	lastSeen map[Item]int // most recent position of the item, only while in window

	// countHist[c] is the number of distinct items occurring exactly c
	// times; maxCount is the largest occupied c. Together they make
	// MaxCount O(1), which the dynamic-familiarity normalization needs.
	countHist map[int]int
	maxCount  int
}

// NewWindow returns an empty window with the given capacity. It panics for
// non-positive capacities.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("seq: NewWindow capacity %d <= 0", capacity))
	}
	return &Window{
		capacity:  capacity,
		buf:       make([]Item, capacity),
		count:     make(map[Item]int),
		lastSeen:  make(map[Item]int),
		countHist: make(map[int]int),
	}
}

// Cap returns the window capacity |W|.
func (w *Window) Cap() int { return w.capacity }

// Len returns the number of events currently in the window.
func (w *Window) Len() int { return w.size }

// Full reports whether the window holds Cap() events.
func (w *Window) Full() bool { return w.size == w.capacity }

// T returns the position of the next incoming consumption, i.e. the total
// number of events pushed so far.
func (w *Window) T() int { return w.pushed }

// Push appends the consumption of v, evicting the oldest event when full.
func (w *Window) Push(v Item) {
	if w.size == w.capacity {
		old := w.buf[w.head]
		w.buf[w.head] = v
		w.head = (w.head + 1) % w.capacity
		c := w.count[old] - 1
		w.bumpHist(c+1, c)
		if c == 0 {
			delete(w.count, old)
			delete(w.lastSeen, old)
		} else {
			w.count[old] = c
		}
	} else {
		w.buf[(w.head+w.size)%w.capacity] = v
		w.size++
	}
	c := w.count[v] + 1
	w.count[v] = c
	w.bumpHist(c-1, c)
	w.lastSeen[v] = w.pushed
	w.pushed++
}

// bumpHist moves one item from count bucket `from` to bucket `to`
// (either may be 0, meaning absent) and maintains maxCount.
func (w *Window) bumpHist(from, to int) {
	if from > 0 {
		if n := w.countHist[from] - 1; n == 0 {
			delete(w.countHist, from)
		} else {
			w.countHist[from] = n
		}
	}
	if to > 0 {
		w.countHist[to]++
		if to > w.maxCount {
			w.maxCount = to
		}
	}
	for w.maxCount > 0 && w.countHist[w.maxCount] == 0 {
		w.maxCount--
	}
}

// MaxCount returns the highest occurrence count of any item in the window
// (0 when empty).
func (w *Window) MaxCount() int { return w.maxCount }

// Contains reports whether v occurs in the window.
func (w *Window) Contains(v Item) bool { return w.count[v] > 0 }

// Count returns the number of occurrences of v in the window (the
// numerator of the dynamic-familiarity feature, paper Eq. 21).
func (w *Window) Count(v Item) int { return w.count[v] }

// Gap returns T − l_ut(v), the number of steps since v's most recent
// occurrence in the window, and whether v is present. The smallest
// possible gap is 1 (v was the immediately preceding consumption).
func (w *Window) Gap(v Item) (int, bool) {
	last, ok := w.lastSeen[v]
	if !ok {
		return 0, false
	}
	return w.pushed - last, true
}

// At returns the i-th event in the window, oldest first. It panics when i
// is out of range.
func (w *Window) At(i int) Item {
	if i < 0 || i >= w.size {
		panic(fmt.Sprintf("seq: Window.At(%d) out of range [0,%d)", i, w.size))
	}
	return w.buf[(w.head+i)%w.capacity]
}

// DistinctItems appends the distinct items of the window to dst in
// first-occurrence (oldest-first) order and returns the extended slice.
// The deterministic order matters: samplers and the Random baseline index
// into this slice, and run-to-run reproducibility requires a stable order.
func (w *Window) DistinctItems(dst []Item) []Item {
	seen := make(map[Item]struct{}, len(w.count))
	for i := 0; i < w.size; i++ {
		v := w.buf[(w.head+i)%w.capacity]
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		dst = append(dst, v)
	}
	return dst
}

// Candidates appends the RRC candidate set to dst: the distinct items of
// the window whose gap exceeds omega (i.e. not consumed in the last omega
// steps), oldest-first. This is the recommendable set of Definition 2
// restricted by the minimum gap Ω.
func (w *Window) Candidates(omega int, dst []Item) []Item {
	seen := make(map[Item]struct{}, len(w.count))
	for i := 0; i < w.size; i++ {
		v := w.buf[(w.head+i)%w.capacity]
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		if w.pushed-w.lastSeen[v] > omega {
			dst = append(dst, v)
		}
	}
	return dst
}

// CandidatesUnordered appends the same candidate set as Candidates to dst
// in UNSPECIFIED order and returns the extended slice. Unlike Candidates
// it allocates nothing (it walks the per-item last-seen index instead of
// deduplicating the ring buffer), which makes it the enumeration of
// choice for rankers whose selection is order-independent — any ranker
// with a strict total order on (score, item), such as the topk selector.
// Order-sensitive consumers (the Random baseline, samplers) must keep
// using Candidates.
func (w *Window) CandidatesUnordered(omega int, dst []Item) []Item {
	for v, last := range w.lastSeen {
		if w.pushed-last > omega {
			dst = append(dst, v)
		}
	}
	return dst
}

// NumDistinct returns the number of distinct items in the window, an
// upper bound on the candidate-set size for any Ω.
func (w *Window) NumDistinct() int { return len(w.count) }

// Snapshot returns the window's contents oldest-first together with the
// total number of events ever pushed. It is the canonical serializable
// form of a window: RestoreWindow(w.Cap(), pushed, items) rebuilds a
// window observationally identical to w (same contents, counts, gaps,
// and T), which is what the session-store snapshots persist.
func (w *Window) Snapshot() (items []Item, pushed int) {
	items = make([]Item, w.size)
	for i := 0; i < w.size; i++ {
		items[i] = w.buf[(w.head+i)%w.capacity]
	}
	return items, w.pushed
}

// RestoreWindow rebuilds a window from a Snapshot dump. It errors
// (rather than panicking) on impossible dumps, because its inputs come
// from disk, not from code.
func RestoreWindow(capacity, pushed int, items []Item) (*Window, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("seq: RestoreWindow capacity %d <= 0", capacity)
	}
	if len(items) > capacity {
		return nil, fmt.Errorf("seq: RestoreWindow %d items over capacity %d", len(items), capacity)
	}
	if pushed < len(items) {
		return nil, fmt.Errorf("seq: RestoreWindow pushed %d < %d items", pushed, len(items))
	}
	w := NewWindow(capacity)
	// Rebase so each pushed item lands at its original absolute
	// position; Gap arithmetic then matches the pre-snapshot window.
	w.pushed = pushed - len(items)
	for _, v := range items {
		w.Push(v)
	}
	return w, nil
}

// Clone returns an independent deep copy of the window.
func (w *Window) Clone() *Window {
	c := &Window{
		capacity:  w.capacity,
		buf:       append([]Item(nil), w.buf...),
		head:      w.head,
		size:      w.size,
		pushed:    w.pushed,
		count:     make(map[Item]int, len(w.count)),
		lastSeen:  make(map[Item]int, len(w.lastSeen)),
		countHist: make(map[int]int, len(w.countHist)),
		maxCount:  w.maxCount,
	}
	for k, v := range w.count {
		c.count[k] = v
	}
	for k, v := range w.lastSeen {
		c.lastSeen[k] = v
	}
	for k, v := range w.countHist {
		c.countHist[k] = v
	}
	return c
}

// Event describes one scanner step: the incoming consumption at position T
// observed against the window of the preceding |W| events.
type Event struct {
	T      int  // position of the incoming consumption in the sequence
	Next   Item // the incoming item x_T
	Repeat bool // x_T occurs in the window
	Gap    int  // steps since x_T's last occurrence; 0 when not a repeat
}

// Eligible reports whether the event is an evaluable/trainable repeat:
// present in the window but not within the last omega steps.
func (e Event) Eligible(omega int) bool { return e.Repeat && e.Gap > omega }

// Scan walks s with a window of the given capacity, invoking fn for every
// position T at which the window is full — i.e. for every event that has a
// complete |W|-step history behind it. fn observes the window *before* the
// incoming item is pushed, which is exactly the recommendation-time view.
// If fn returns false the scan stops early.
func Scan(s Sequence, capacity int, fn func(ev Event, w *Window) bool) {
	w := NewWindow(capacity)
	for t, v := range s {
		if w.Full() {
			ev := Event{T: t, Next: v}
			if gap, ok := w.Gap(v); ok {
				ev.Repeat = true
				ev.Gap = gap
			}
			if !fn(ev, w) {
				return
			}
		}
		w.Push(v)
	}
}

// ScanFrom behaves like Scan but first pre-fills the window with the
// history slice (without emitting events), then scans s. This is how test
// sequences are evaluated: the window warm-starts from the tail of the
// user's training prefix, so positions are global over history+s.
func ScanFrom(history, s Sequence, capacity int, fn func(ev Event, w *Window) bool) {
	w := NewWindow(capacity)
	for _, v := range history {
		w.Push(v)
	}
	for _, v := range s {
		if w.Full() {
			ev := Event{T: w.T(), Next: v}
			if gap, ok := w.Gap(v); ok {
				ev.Repeat = true
				ev.Gap = gap
			}
			if !fn(ev, w) {
				return
			}
		}
		w.Push(v)
	}
}

// RepeatRatio returns the fraction of full-window events in s that are
// repeats (at any gap). It returns 0 when no full-window event exists.
func RepeatRatio(s Sequence, capacity int) float64 {
	events, repeats := 0, 0
	Scan(s, capacity, func(ev Event, _ *Window) bool {
		events++
		if ev.Repeat {
			repeats++
		}
		return true
	})
	if events == 0 {
		return 0
	}
	return float64(repeats) / float64(events)
}
