package seq

import (
	"testing"
	"testing/quick"

	"tsppr/internal/rngutil"
)

func TestSplit(t *testing.T) {
	s := Sequence{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	train, test := s.Split(0.7)
	if len(train) != 7 || len(test) != 3 {
		t.Fatalf("split lengths %d/%d", len(train), len(test))
	}
	if train[6] != 7 || test[0] != 8 {
		t.Fatal("split boundary wrong")
	}
	train, test = s.Split(0)
	if len(train) != 0 || len(test) != 10 {
		t.Fatal("zero split wrong")
	}
	train, test = s.Split(1)
	if len(train) != 10 || len(test) != 0 {
		t.Fatal("full split wrong")
	}
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sequence{1}.Split(1.5)
}

func TestDistinct(t *testing.T) {
	if got := (Sequence{1, 2, 1, 3, 2}).Distinct(); got != 3 {
		t.Errorf("Distinct = %d", got)
	}
	if got := (Sequence{}).Distinct(); got != 0 {
		t.Errorf("empty Distinct = %d", got)
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 || w.Full() || w.T() != 0 {
		t.Fatal("fresh window state wrong")
	}
	w.Push(1)
	w.Push(2)
	w.Push(1)
	if !w.Full() || w.T() != 3 {
		t.Fatal("window should be full after 3 pushes")
	}
	if w.Count(1) != 2 || w.Count(2) != 1 || w.Count(9) != 0 {
		t.Fatal("counts wrong")
	}
	if !w.Contains(1) || w.Contains(9) {
		t.Fatal("Contains wrong")
	}
	gap, ok := w.Gap(1)
	if !ok || gap != 1 {
		t.Fatalf("Gap(1) = %d,%v", gap, ok)
	}
	gap, ok = w.Gap(2)
	if !ok || gap != 2 {
		t.Fatalf("Gap(2) = %d,%v", gap, ok)
	}
	if _, ok := w.Gap(9); ok {
		t.Fatal("Gap of absent item should be !ok")
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(2)
	w.Push(1)
	w.Push(2)
	w.Push(3) // evicts 1
	if w.Contains(1) {
		t.Fatal("evicted item still present")
	}
	if w.Count(2) != 1 || w.Count(3) != 1 {
		t.Fatal("counts after eviction wrong")
	}
	if w.At(0) != 2 || w.At(1) != 3 {
		t.Fatalf("ring order wrong: %d %d", w.At(0), w.At(1))
	}
}

func TestWindowAtPanics(t *testing.T) {
	w := NewWindow(2)
	w.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.At(1)
}

func TestWindowDistinctItemsOrder(t *testing.T) {
	w := NewWindow(5)
	for _, v := range []Item{3, 1, 3, 2, 1} {
		w.Push(v)
	}
	got := w.DistinctItems(nil)
	want := []Item{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct order = %v, want %v", got, want)
		}
	}
}

func TestWindowCandidates(t *testing.T) {
	w := NewWindow(5)
	for _, v := range []Item{1, 2, 3, 2, 4} {
		w.Push(v)
	}
	// T=5. Gaps: 1→5, 2→2, 3→3, 4→1.
	got := w.Candidates(2, nil)
	want := []Item{1, 3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Candidates(2) = %v, want %v", got, want)
	}
	if got := w.Candidates(0, nil); len(got) != 4 {
		t.Fatalf("Candidates(0) = %v", got)
	}
	if got := w.Candidates(4, nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Candidates(4) = %v", got)
	}
}

func TestWindowMaxCount(t *testing.T) {
	w := NewWindow(4)
	if w.MaxCount() != 0 {
		t.Fatal("empty MaxCount != 0")
	}
	w.Push(1)
	w.Push(1)
	w.Push(2)
	if w.MaxCount() != 2 {
		t.Fatalf("MaxCount = %d, want 2", w.MaxCount())
	}
	w.Push(1) // counts: 1→3, 2→1
	if w.MaxCount() != 3 {
		t.Fatalf("MaxCount = %d, want 3", w.MaxCount())
	}
	w.Push(2) // evicts a 1: 1→2, 2→2
	if w.MaxCount() != 2 {
		t.Fatalf("MaxCount after eviction = %d, want 2", w.MaxCount())
	}
}

func TestWindowClone(t *testing.T) {
	w := NewWindow(3)
	w.Push(1)
	w.Push(2)
	c := w.Clone()
	c.Push(3)
	c.Push(4)
	if w.Len() != 2 || w.Contains(4) {
		t.Fatal("clone mutated original")
	}
	if !c.Contains(4) || c.MaxCount() != 1 {
		t.Fatal("clone state wrong")
	}
}

// windowRef is a brutally simple reference: a slice of the last cap items.
type windowRef struct {
	cap    int
	events []Item
}

func (r *windowRef) push(v Item) { r.events = append(r.events, v) }

func (r *windowRef) tail() []Item {
	if len(r.events) <= r.cap {
		return r.events
	}
	return r.events[len(r.events)-r.cap:]
}

func (r *windowRef) count(v Item) int {
	n := 0
	for _, x := range r.tail() {
		if x == v {
			n++
		}
	}
	return n
}

func (r *windowRef) maxCount() int {
	m := 0
	counts := map[Item]int{}
	for _, x := range r.tail() {
		counts[x]++
		if counts[x] > m {
			m = counts[x]
		}
	}
	return m
}

// TestWindowAgainstReference drives random pushes through both the ring
// window and the naive reference, checking every invariant at every step.
func TestWindowAgainstReference(t *testing.T) {
	rng := rngutil.New(77)
	for trial := 0; trial < 30; trial++ {
		cap := 1 + rng.Intn(12)
		w := NewWindow(cap)
		ref := &windowRef{cap: cap}
		universe := 1 + rng.Intn(8)
		for step := 0; step < 300; step++ {
			v := Item(rng.Intn(universe))
			w.Push(v)
			ref.push(v)
			if w.Len() != len(ref.tail()) {
				t.Fatalf("len mismatch: %d vs %d", w.Len(), len(ref.tail()))
			}
			if w.MaxCount() != ref.maxCount() {
				t.Fatalf("maxCount mismatch at step %d: %d vs %d", step, w.MaxCount(), ref.maxCount())
			}
			for u := 0; u < universe; u++ {
				item := Item(u)
				if w.Count(item) != ref.count(item) {
					t.Fatalf("count(%d) mismatch: %d vs %d", u, w.Count(item), ref.count(item))
				}
				gap, ok := w.Gap(item)
				wantGap, wantOK := refGap(ref, item)
				if ok != wantOK || gap != wantGap {
					t.Fatalf("gap(%d) mismatch: (%d,%v) vs (%d,%v)", u, gap, ok, wantGap, wantOK)
				}
			}
			// Ring order must equal the reference tail.
			tail := ref.tail()
			for i, want := range tail {
				if got := w.At(i); got != want {
					t.Fatalf("At(%d) = %d, want %d", i, got, want)
				}
			}
		}
	}
}

// refGap computes the gap from the full event log (clearer than the
// windowRef method above).
func refGap(r *windowRef, v Item) (int, bool) {
	tail := r.tail()
	offset := len(r.events) - len(tail)
	for i := len(tail) - 1; i >= 0; i-- {
		if tail[i] == v {
			return len(r.events) - (offset + i), true
		}
	}
	return 0, false
}

func TestScanEmitsOnlyFullWindows(t *testing.T) {
	s := Sequence{1, 2, 3, 1, 2}
	var events []Event
	Scan(s, 3, func(ev Event, w *Window) bool {
		if !w.Full() {
			t.Fatal("callback with non-full window")
		}
		events = append(events, ev)
		return true
	})
	// Positions 3 and 4 have full 3-windows behind them.
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].T != 3 || events[0].Next != 1 || !events[0].Repeat || events[0].Gap != 3 {
		t.Fatalf("event0 = %+v", events[0])
	}
	if events[1].T != 4 || events[1].Next != 2 || !events[1].Repeat || events[1].Gap != 3 {
		t.Fatalf("event1 = %+v", events[1])
	}
}

func TestScanNovelEvent(t *testing.T) {
	s := Sequence{1, 2, 3, 9}
	var got []Event
	Scan(s, 3, func(ev Event, _ *Window) bool {
		got = append(got, ev)
		return true
	})
	if len(got) != 1 || got[0].Repeat || got[0].Next != 9 || got[0].Gap != 0 {
		t.Fatalf("events = %+v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := Sequence{1, 2, 1, 2, 1, 2}
	n := 0
	Scan(s, 2, func(Event, *Window) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop failed: %d callbacks", n)
	}
}

func TestScanFromWarmStart(t *testing.T) {
	history := Sequence{1, 2, 3}
	test := Sequence{1, 9}
	var events []Event
	ScanFrom(history, test, 3, func(ev Event, w *Window) bool {
		events = append(events, ev)
		return true
	})
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	// First test event is at global position 3, a repeat of item 1 (gap 3).
	if events[0].T != 3 || !events[0].Repeat || events[0].Gap != 3 {
		t.Fatalf("event0 = %+v", events[0])
	}
	if events[1].Repeat {
		t.Fatalf("event1 should be novel: %+v", events[1])
	}
}

func TestEventEligible(t *testing.T) {
	ev := Event{Repeat: true, Gap: 11}
	if !ev.Eligible(10) {
		t.Error("gap 11 > Ω 10 should be eligible")
	}
	if ev.Eligible(11) {
		t.Error("gap 11 is not > Ω 11")
	}
	if (Event{Repeat: false, Gap: 50}).Eligible(10) {
		t.Error("novel events are never eligible")
	}
}

func TestRepeatRatio(t *testing.T) {
	// With cap 2: events at t=2 (3: novel), t=3 (1: not in {2,3} → novel).
	if got := RepeatRatio(Sequence{1, 2, 3, 1}, 2); got != 0 {
		t.Errorf("RepeatRatio = %v, want 0", got)
	}
	// With cap 3: events at t=3 (1 ∈ {1,2,3} repeat).
	if got := RepeatRatio(Sequence{1, 2, 3, 1}, 3); got != 1 {
		t.Errorf("RepeatRatio = %v, want 1", got)
	}
	if got := RepeatRatio(Sequence{1}, 3); got != 0 {
		t.Errorf("short sequence RepeatRatio = %v", got)
	}
}

func TestScanGapConsistency(t *testing.T) {
	// Property: for repeat events, ev.Gap equals the window's reported gap.
	f := func(raw []uint8) bool {
		if len(raw) < 5 {
			return true
		}
		s := make(Sequence, len(raw))
		for i, r := range raw {
			s[i] = Item(r % 6)
		}
		okAll := true
		Scan(s, 4, func(ev Event, w *Window) bool {
			gap, ok := w.Gap(ev.Next)
			if ev.Repeat != ok || (ok && gap != ev.Gap) {
				okAll = false
				return false
			}
			return true
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow(0)
}

func BenchmarkWindowPush(b *testing.B) {
	w := NewWindow(100)
	rng := rngutil.New(3)
	items := make([]Item, 4096)
	for i := range items {
		items[i] = Item(rng.Intn(200))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Push(items[i%len(items)])
	}
}

func BenchmarkWindowCandidates(b *testing.B) {
	w := NewWindow(100)
	rng := rngutil.New(3)
	for i := 0; i < 100; i++ {
		w.Push(Item(rng.Intn(40)))
	}
	var dst []Item
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = w.Candidates(10, dst[:0])
	}
}
