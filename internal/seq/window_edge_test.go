package seq

import (
	"reflect"
	"testing"
)

// The largest possible gap in a window of size |W| is |W| (the oldest
// element), so any omega >= |W| makes the candidate set empty: nothing
// is recommendable until the user falls idle longer than the window
// remembers.
func TestCandidatesEmptyWhenOmegaCoversWindow(t *testing.T) {
	w := NewWindow(4)
	for _, v := range []Item{1, 2, 3, 4} {
		w.Push(v)
	}
	if got := w.Candidates(w.Len(), nil); len(got) != 0 {
		t.Fatalf("Candidates(|W|) = %v, want empty", got)
	}
	if got := w.Candidates(100, nil); len(got) != 0 {
		t.Fatalf("Candidates(100) = %v, want empty", got)
	}
	// omega = |W|-1 readmits exactly the oldest item (gap |W|).
	if got := w.Candidates(w.Len()-1, nil); !reflect.DeepEqual(got, []Item{1}) {
		t.Fatalf("Candidates(|W|-1) = %v, want [1]", got)
	}
}

// A window saturated by one item has a single distinct candidate whose
// gap is always 1, so any omega >= 1 empties the candidate set while
// counts and MaxCount stay pinned at capacity.
func TestDuplicateSaturatedWindow(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 10; i++ {
		w.Push(7)
	}
	if w.Len() != 3 || w.Count(7) != 3 || w.MaxCount() != 3 {
		t.Fatalf("saturated window: len=%d count=%d max=%d", w.Len(), w.Count(7), w.MaxCount())
	}
	if got := w.DistinctItems(nil); !reflect.DeepEqual(got, []Item{7}) {
		t.Fatalf("distinct = %v", got)
	}
	if got := w.Candidates(0, nil); !reflect.DeepEqual(got, []Item{7}) {
		t.Fatalf("Candidates(0) = %v", got)
	}
	if got := w.Candidates(1, nil); len(got) != 0 {
		t.Fatalf("Candidates(1) = %v, want empty (item was just consumed)", got)
	}
	if gap, ok := w.Gap(7); !ok || gap != 1 {
		t.Fatalf("Gap(7) = (%d, %v)", gap, ok)
	}
}

// Capacity 1 is the degenerate ring: every push evicts, the window only
// remembers the latest event, and T still counts the full stream.
func TestWindowCapacityOne(t *testing.T) {
	w := NewWindow(1)
	for i, v := range []Item{4, 5, 4, 6} {
		w.Push(v)
		if w.Len() != 1 || w.At(0) != v {
			t.Fatalf("after push %d: len=%d at0=%v", i, w.Len(), w.At(0))
		}
	}
	if w.T() != 4 || w.MaxCount() != 1 {
		t.Fatalf("T=%d max=%d", w.T(), w.MaxCount())
	}
	if w.Contains(5) || w.Count(4) != 0 {
		t.Fatal("evicted items still counted")
	}
	if got := w.Candidates(0, nil); !reflect.DeepEqual(got, []Item{6}) {
		t.Fatalf("Candidates(0) = %v", got)
	}
	if got := w.Candidates(1, nil); len(got) != 0 {
		t.Fatalf("Candidates(1) = %v, want empty", got)
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	w := NewWindow(4)
	for _, v := range []Item{9, 1, 9, 2, 3, 1} {
		w.Push(v)
	}
	items, pushed := w.Snapshot()
	r, err := RestoreWindow(w.Cap(), pushed, items)
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != w.T() || r.Len() != w.Len() || r.MaxCount() != w.MaxCount() {
		t.Fatalf("restored T=%d len=%d max=%d, want T=%d len=%d max=%d",
			r.T(), r.Len(), r.MaxCount(), w.T(), w.T(), w.MaxCount())
	}
	for i := 0; i < w.Len(); i++ {
		if r.At(i) != w.At(i) {
			t.Fatalf("At(%d) = %v, want %v", i, r.At(i), w.At(i))
		}
	}
	for _, v := range []Item{9, 1, 2, 3} {
		wg, wok := w.Gap(v)
		rg, rok := r.Gap(v)
		if wg != rg || wok != rok {
			t.Fatalf("Gap(%v) = (%d,%v), want (%d,%v)", v, rg, rok, wg, wok)
		}
	}
	// Behaviour after restore matches too: same candidate sets.
	for omega := 0; omega <= 5; omega++ {
		if got, want := r.Candidates(omega, nil), w.Candidates(omega, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("Candidates(%d) = %v, want %v", omega, got, want)
		}
	}
}

func TestSnapshotOfEmptyAndPartialWindows(t *testing.T) {
	w := NewWindow(3)
	items, pushed := w.Snapshot()
	if len(items) != 0 || pushed != 0 {
		t.Fatalf("empty snapshot = (%v, %d)", items, pushed)
	}
	r, err := RestoreWindow(3, pushed, items)
	if err != nil || r.Len() != 0 || r.T() != 0 {
		t.Fatalf("empty restore: %v len=%d T=%d", err, r.Len(), r.T())
	}
	w.Push(8)
	items, pushed = w.Snapshot()
	r, err = RestoreWindow(3, pushed, items)
	if err != nil || r.Len() != 1 || r.At(0) != 8 || r.T() != 1 {
		t.Fatalf("partial restore: %v", err)
	}
}

func TestRestoreWindowRejectsImpossibleDumps(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		pushed   int
		items    []Item
	}{
		{"zero capacity", 0, 0, nil},
		{"negative capacity", -1, 0, nil},
		{"items over capacity", 2, 3, []Item{1, 2, 3}},
		{"pushed below item count", 3, 1, []Item{1, 2}},
	}
	for _, tc := range cases {
		if _, err := RestoreWindow(tc.capacity, tc.pushed, tc.items); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
