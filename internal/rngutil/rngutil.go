// Package rngutil provides a small deterministic pseudo-random number
// generator used throughout the repository.
//
// Reproducibility is a hard requirement: every experiment in the paper
// harness must yield identical numbers run-to-run so that EXPERIMENTS.md
// stays meaningful. We therefore implement our own generator
// (SplitMix64-seeded xoshiro256**) instead of relying on math/rand's
// global, lockable state, and plumb *RNG values explicitly.
package rngutil

import "math"

// RNG is a xoshiro256** generator. The zero value is invalid; construct
// with New. RNG is not safe for concurrent use — give each goroutine its
// own stream via Split.
type RNG struct {
	s        [4]uint64
	spare    float64
	hasSpare bool
}

// splitMix64 advances the given state and returns the next output. It is
// the recommended seeding procedure for xoshiro generators.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not be seeded with all zeros; splitMix64 of any seed
	// cannot produce four zero outputs, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent state; the parent advances once.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rngutil: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	un := uint64(n)
	hi, lo := mul64(r.Uint64(), un)
	if lo < un {
		// Threshold computed lazily — this branch is rare for small n.
		thresh := (-un) % un
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	return a1*b1 + t>>32 + w1>>32, a * b
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle performs an in-place Fisher–Yates shuffle of n elements using
// the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Zipf samples from a Zipf distribution over {0, ..., n-1} with exponent
// s > 0 using inverse-CDF on a precomputed table. Use NewZipf for repeated
// draws.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf precomputes the CDF for a Zipf distribution with the given
// support size n and exponent s. It panics if n <= 0 or s <= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rngutil: NewZipf called with n <= 0")
	}
	if s <= 0 {
		panic("rngutil: NewZipf called with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the support size of the distribution.
func (z *Zipf) N() int { return len(z.cdf) }
