package rngutil

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits produced identical first outputs")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(42)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			got := r.Intn(n)
			if got < 0 || got >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, got)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100_000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100_000
	for i := 0; i < draws; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", x)
		}
		sum += x
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const draws = 200_000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(8)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
}

func TestZipfDistribution(t *testing.T) {
	r := New(21)
	z := NewZipf(r, 100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	const draws = 200_000
	counts := make([]int, 100)
	for i := 0; i < draws; i++ {
		k := z.Draw()
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf draw %d out of range", k)
		}
		counts[k]++
	}
	// Rank 0 must dominate rank 9 roughly 10:1 under s=1.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Errorf("Zipf rank0/rank9 ratio %v, want ≈10", ratio)
	}
	// Monotone non-increasing head (allowing sampling noise further out).
	if counts[0] < counts[1] || counts[1] < counts[3] {
		t.Errorf("Zipf head not decreasing: %v", counts[:5])
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {10, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) should panic", tc.n, tc.s)
				}
			}()
			NewZipf(New(1), tc.n, tc.s)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
