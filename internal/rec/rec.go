// Package rec defines the recommender contract shared by TS-PPR and every
// baseline: given a user's time window (and full history, for methods that
// need it), produce a ranked Top-N list of reconsumable items together
// with their scores.
//
// It contains types only, so both the scoring engine and the baselines can
// implement the interface without an import cycle through the evaluation
// harness.
package rec

import "tsppr/internal/seq"

// Context is the recommendation-time view of one user. It is assembled by
// the evaluation harness (or a serving layer) immediately before the next
// consumption: Window holds the last |W| events, History everything
// consumed so far (training prefix plus the already-replayed test prefix).
//
// Most methods only need Window; History exists for methods like the
// Survival baseline whose online feature (time-weighted average return
// time) is defined over the entire consumption sequence — the very reason
// the paper measures it as the slowest method (Fig. 13).
type Context struct {
	User    int
	Window  *seq.Window
	History seq.Sequence
	Omega   int // minimum gap Ω: items consumed within the last Ω steps are not recommendable
}

// Candidates appends the context's candidate set — the distinct window
// items with gap > Ω, oldest-first — to dst and returns the extended
// slice. Every recommender enumerates candidates through this one method
// (or through the engine, which shares the same window enumeration), so
// the candidate-set definition cannot drift between methods.
func (ctx *Context) Candidates(dst []seq.Item) []seq.Item {
	return ctx.Window.Candidates(ctx.Omega, dst)
}

// Scored is one ranked recommendation: an item together with the score
// that ranked it. Recommenders return scored pairs so callers (serving
// handlers, the mixer, the evaluation harness) never re-score returned
// items. Methods whose ranking carries no meaningful magnitude (e.g. the
// Random baseline) report Score 0.
type Scored struct {
	Item  seq.Item
	Score float64
}

// Items appends just the item IDs of a scored list to dst, in order, and
// returns the extended slice.
func Items(scored []Scored, dst []seq.Item) []seq.Item {
	for _, s := range scored {
		dst = append(dst, s.Item)
	}
	return dst
}

// AppendItems appends bare items to a scored list with zero scores, in
// order. It is the adapter for rank-only methods.
func AppendItems(dst []Scored, items ...seq.Item) []Scored {
	for _, v := range items {
		dst = append(dst, Scored{Item: v})
	}
	return dst
}

// Recommender produces Top-N repeat-consumption recommendations.
// Implementations may keep internal scratch and are NOT required to be
// safe for concurrent use; the harness gives each user its own instance
// via a Factory. (The scoring engine is the exception: it is safe for
// concurrent use and its factory hands out the shared instance.)
type Recommender interface {
	// Recommend appends at most n scored items to dst, best first, drawn
	// from the context's candidate set (distinct window items with
	// gap > Ω), and returns the extended slice.
	Recommend(ctx *Context, n int, dst []Scored) []Scored
}

// Factory names a method and mints per-user Recommender instances. New
// must be safe to call concurrently; the seed makes stochastic methods
// (e.g. the Random baseline) deterministic per user regardless of
// evaluation parallelism.
type Factory struct {
	Name string
	New  func(seed uint64) Recommender
}

// Func adapts a plain function to the Recommender interface.
type Func func(ctx *Context, n int, dst []Scored) []Scored

// Recommend implements Recommender.
func (f Func) Recommend(ctx *Context, n int, dst []Scored) []Scored {
	return f(ctx, n, dst)
}
