// Package rec defines the recommender contract shared by TS-PPR and every
// baseline: given a user's time window (and full history, for methods that
// need it), produce a ranked Top-N list of reconsumable items.
//
// It contains types only, so both the core model and the baselines can
// implement the interface without an import cycle through the evaluation
// harness.
package rec

import "tsppr/internal/seq"

// Context is the recommendation-time view of one user. It is assembled by
// the evaluation harness (or a serving layer) immediately before the next
// consumption: Window holds the last |W| events, History everything
// consumed so far (training prefix plus the already-replayed test prefix).
//
// Most methods only need Window; History exists for methods like the
// Survival baseline whose online feature (time-weighted average return
// time) is defined over the entire consumption sequence — the very reason
// the paper measures it as the slowest method (Fig. 13).
type Context struct {
	User    int
	Window  *seq.Window
	History seq.Sequence
	Omega   int // minimum gap Ω: items consumed within the last Ω steps are not recommendable
}

// Recommender produces Top-N repeat-consumption recommendations.
// Implementations may keep internal scratch and are NOT required to be
// safe for concurrent use; the harness gives each user its own instance
// via a Factory.
type Recommender interface {
	// Recommend appends at most n items to dst, best first, drawn from the
	// context's candidate set (distinct window items with gap > Ω), and
	// returns the extended slice.
	Recommend(ctx *Context, n int, dst []seq.Item) []seq.Item
}

// Factory names a method and mints per-user Recommender instances. New
// must be safe to call concurrently; the seed makes stochastic methods
// (e.g. the Random baseline) deterministic per user regardless of
// evaluation parallelism.
type Factory struct {
	Name string
	New  func(seed uint64) Recommender
}

// Func adapts a plain function to the Recommender interface.
type Func func(ctx *Context, n int, dst []seq.Item) []seq.Item

// Recommend implements Recommender.
func (f Func) Recommend(ctx *Context, n int, dst []seq.Item) []seq.Item {
	return f(ctx, n, dst)
}
