package rec

import (
	"testing"

	"tsppr/internal/seq"
)

func TestFuncAdapter(t *testing.T) {
	called := false
	var f Recommender = Func(func(ctx *Context, n int, dst []seq.Item) []seq.Item {
		called = true
		if ctx.User != 3 || n != 2 {
			t.Errorf("ctx/n not forwarded: %d/%d", ctx.User, n)
		}
		return append(dst, 7)
	})
	got := f.Recommend(&Context{User: 3}, 2, nil)
	if !called || len(got) != 1 || got[0] != 7 {
		t.Fatalf("adapter broken: %v", got)
	}
}

func TestFactoryMintsIndependentInstances(t *testing.T) {
	n := 0
	f := Factory{Name: "counter", New: func(seed uint64) Recommender {
		n++
		return Func(func(*Context, int, []seq.Item) []seq.Item { return nil })
	}}
	f.New(1)
	f.New(2)
	if n != 2 {
		t.Fatalf("New called %d times", n)
	}
}
