package rec

import (
	"testing"

	"tsppr/internal/seq"
)

func TestFuncAdapter(t *testing.T) {
	called := false
	var f Recommender = Func(func(ctx *Context, n int, dst []Scored) []Scored {
		called = true
		if ctx.User != 3 || n != 2 {
			t.Errorf("ctx/n not forwarded: %d/%d", ctx.User, n)
		}
		return append(dst, Scored{Item: 7, Score: 0.5})
	})
	got := f.Recommend(&Context{User: 3}, 2, nil)
	if !called || len(got) != 1 || got[0].Item != 7 {
		t.Fatalf("adapter broken: %v", got)
	}
}

func TestFactoryMintsIndependentInstances(t *testing.T) {
	n := 0
	f := Factory{Name: "counter", New: func(seed uint64) Recommender {
		n++
		return Func(func(*Context, int, []Scored) []Scored { return nil })
	}}
	f.New(1)
	f.New(2)
	if n != 2 {
		t.Fatalf("New called %d times", n)
	}
}

func TestItemsAndAppendItems(t *testing.T) {
	scored := []Scored{{Item: 4, Score: 2}, {Item: 1, Score: 1}}
	items := Items(scored, nil)
	if len(items) != 2 || items[0] != 4 || items[1] != 1 {
		t.Fatalf("Items = %v", items)
	}
	// Reuses dst capacity.
	items = Items(scored, items[:0])
	if len(items) != 2 {
		t.Fatalf("Items reuse = %v", items)
	}
	got := AppendItems(nil, seq.Item(9), seq.Item(8))
	if len(got) != 2 || got[0].Item != 9 || got[0].Score != 0 || got[1].Item != 8 {
		t.Fatalf("AppendItems = %v", got)
	}
}
