// Package strec implements the linear STREC model of the paper's
// predecessor work (Chen et al., AAAI 2015): a binary classifier that
// predicts, at each consumption step, whether the *next* consumption will
// be a short-term reconsumption (an item from the current time window) or
// a novel consumption.
//
// In this repository STREC plays the role the paper gives it in §5.7: a
// switch in front of TS-PPR. We implement it as logistic regression with
// elastic-net regularization over four window-level behavioural
// aggregates, trained by SGD:
//
//	x1 — the user's running repeat ratio up to t
//	x2 — mean item reconsumption ratio over the window's distinct items
//	x3 — mean item quality over the window's distinct items
//	x4 — window concentration: 1 − |distinct(W)|/|W|
//
// All four are in [0,1]; a bias term is learned as well. The original
// STREC work also proposed a quadratic model; Config.Quadratic expands the
// input with all pairwise products x_i·x_j (i ≤ j), matching it.
package strec

import (
	"fmt"
	"math"

	"tsppr/internal/features"
	"tsppr/internal/mathx"
	"tsppr/internal/rngutil"
	"tsppr/internal/seq"
)

// Dim is the number of base input features.
const Dim = 4

// QuadDim is the expanded dimension with all pairwise products included:
// 4 linear terms + 10 products (i ≤ j).
const QuadDim = Dim + Dim*(Dim+1)/2

// Model is a trained STREC classifier.
type Model struct {
	W    []float64 // Dim (linear) or QuadDim (quadratic) weights
	Bias float64

	quadratic bool
	ex        *features.Extractor
	windowCap int
}

// Quadratic reports whether the model uses the quadratic expansion.
func (m *Model) Quadratic() bool { return m.quadratic }

// Config parameterizes training.
type Config struct {
	WindowCap    int
	Epochs       int     // default 4
	LearningRate float64 // default 0.1
	L1           float64 // lasso penalty (default 1e-4)
	L2           float64 // ridge penalty (default 1e-4)
	Quadratic    bool    // expand features with pairwise products
	Seed         uint64
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 4
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.L1 == 0 {
		c.L1 = 1e-4
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	return c
}

// Train fits the classifier on the training sequences.
func Train(train []seq.Sequence, numItems int, cfg Config) (*Model, error) {
	if cfg.WindowCap <= 0 {
		return nil, fmt.Errorf("strec: WindowCap %d <= 0", cfg.WindowCap)
	}
	cfg = cfg.withDefaults()

	b := features.NewBuilder(numItems, cfg.WindowCap, 0)
	for _, s := range train {
		b.Add(s)
	}
	m := &Model{
		quadratic: cfg.Quadratic,
		ex:        b.Build(features.AllFeatures, features.Hyperbolic),
		windowCap: cfg.WindowCap,
	}
	dim := Dim
	if cfg.Quadratic {
		dim = QuadDim
	}
	m.W = make([]float64, dim)

	rng := rngutil.New(cfg.Seed + 0x57ec)
	order := rng.Perm(len(train))
	x := make([]float64, dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + float64(epoch))
		for _, u := range order {
			su := train[u]
			repeats, events := 0, 0
			seq.Scan(su, cfg.WindowCap, func(ev seq.Event, w *seq.Window) bool {
				m.featurize(x, w, repeats, events)
				y := 0.0
				if ev.Repeat {
					y = 1
				}
				p := mathx.Sigmoid(m.Bias + dot(m.W, x))
				g := lr * (y - p)
				m.Bias += g
				for k := range m.W {
					m.W[k] += g*x[k] - lr*cfg.L2*m.W[k]
					// L1 subgradient with clipping at zero (lasso-style
					// shrinkage, the "linear Lasso method" of the original
					// STREC paper).
					if m.W[k] > 0 {
						m.W[k] = math.Max(0, m.W[k]-lr*cfg.L1)
					} else {
						m.W[k] = math.Min(0, m.W[k]+lr*cfg.L1)
					}
				}
				events++
				if ev.Repeat {
					repeats++
				}
				return true
			})
		}
	}
	return m, nil
}

// featurize fills x with the window-level aggregates (and, for quadratic
// models, their pairwise products). repeats/events carry the user's
// running repeat statistics up to this point.
func (m *Model) featurize(x []float64, w *seq.Window, repeats, events int) {
	if events > 0 {
		x[0] = float64(repeats) / float64(events)
	} else {
		x[0] = 0.5 // uninformative prior before the first observation
	}
	var sumIR, sumQ float64
	distinct := 0
	// Deterministic pass over the window's distinct items.
	seen := make(map[seq.Item]struct{}, 16)
	for i := 0; i < w.Len(); i++ {
		v := w.At(i)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		distinct++
		sumIR += m.ex.ReconsumptionRatio(v)
		sumQ += m.ex.Quality(v)
	}
	if distinct > 0 {
		x[1] = sumIR / float64(distinct)
		x[2] = sumQ / float64(distinct)
	} else {
		x[1], x[2] = 0, 0
	}
	if w.Len() > 0 {
		x[3] = 1 - float64(distinct)/float64(w.Len())
	} else {
		x[3] = 0
	}
	if m.quadratic {
		k := Dim
		for i := 0; i < Dim; i++ {
			for j := i; j < Dim; j++ {
				x[k] = x[i] * x[j]
				k++
			}
		}
	}
}

func dot(w, x []float64) float64 {
	s := 0.0
	for i := range w {
		s += w[i] * x[i]
	}
	return s
}

// Predict returns the probability that the next consumption is a repeat,
// given the current window and the user's running repeat statistics.
func (m *Model) Predict(w *seq.Window, repeats, events int) float64 {
	x := make([]float64, len(m.W))
	m.featurize(x, w, repeats, events)
	return mathx.Sigmoid(m.Bias + dot(m.W, x))
}

// EvalResult reports classification quality on held-out sequences.
type EvalResult struct {
	Accuracy  float64
	Precision float64 // of the positive (repeat) class
	Recall    float64
	Events    int
}

// Evaluate replays each user's test suffix (with the training prefix
// warming the window) and scores the classifier per event.
func (m *Model) Evaluate(train, test []seq.Sequence) EvalResult {
	var tp, fp, tn, fn int
	for u := range test {
		repeats, events := 0, 0
		// Recover the user's training repeat statistics first.
		seq.Scan(train[u], m.windowCap, func(ev seq.Event, _ *seq.Window) bool {
			events++
			if ev.Repeat {
				repeats++
			}
			return true
		})
		seq.ScanFrom(train[u], test[u], m.windowCap, func(ev seq.Event, w *seq.Window) bool {
			pred := m.Predict(w, repeats, events) >= 0.5
			switch {
			case pred && ev.Repeat:
				tp++
			case pred && !ev.Repeat:
				fp++
			case !pred && ev.Repeat:
				fn++
			default:
				tn++
			}
			events++
			if ev.Repeat {
				repeats++
			}
			return true
		})
	}
	res := EvalResult{Events: tp + fp + tn + fn}
	if res.Events > 0 {
		res.Accuracy = float64(tp+tn) / float64(res.Events)
	}
	if tp+fp > 0 {
		res.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		res.Recall = float64(tp) / float64(tp+fn)
	}
	return res
}
