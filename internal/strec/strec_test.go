package strec

import (
	"math"
	"testing"

	"tsppr/internal/datagen"
	"tsppr/internal/seq"
)

func corpus(t testing.TB) (train, test []seq.Sequence, numItems int) {
	t.Helper()
	cfg := datagen.GowallaLike(15, 13)
	cfg.MinLen, cfg.MaxLen = 100, 220
	cfg.WindowCap = 20
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numItems = ds.NumItems()
	train = make([]seq.Sequence, len(ds.Seqs))
	test = make([]seq.Sequence, len(ds.Seqs))
	for u, s := range ds.Seqs {
		train[u], test[u] = s.Split(0.7)
	}
	return train, test, numItems
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 0, Config{WindowCap: 0}); err == nil {
		t.Fatal("WindowCap 0 accepted")
	}
}

func TestTrainProducesFiniteWeights(t *testing.T) {
	train, _, numItems := corpus(t)
	m, err := Train(train, numItems, Config{WindowCap: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range m.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("W[%d] = %v", i, w)
		}
	}
	if math.IsNaN(m.Bias) {
		t.Fatal("NaN bias")
	}
}

func TestPredictRange(t *testing.T) {
	train, _, numItems := corpus(t)
	m, err := Train(train, numItems, Config{WindowCap: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := seq.NewWindow(20)
	for _, v := range train[0] {
		p := m.Predict(w, 0, 0)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Predict = %v", p)
		}
		w.Push(v)
	}
}

func TestEvaluateBeatsCoinFlip(t *testing.T) {
	// The gowalla-like corpus has a ~0.6+ repeat ratio and strongly
	// autocorrelated windows; a fitted linear model must beat both the
	// coin flip and the majority-class margin is not required, but 0.5 is.
	train, test, numItems := corpus(t)
	m, err := Train(train, numItems, Config{WindowCap: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Evaluate(train, test)
	if res.Events == 0 {
		t.Fatal("no evaluation events")
	}
	if res.Accuracy <= 0.5 {
		t.Fatalf("accuracy %v not better than coin flip", res.Accuracy)
	}
	if res.Precision < 0 || res.Precision > 1 || res.Recall < 0 || res.Recall > 1 {
		t.Fatalf("precision/recall out of range: %+v", res)
	}
}

func TestPerfectlySeparableCorpus(t *testing.T) {
	// User A always repeats (cycle), user B never repeats (fresh items).
	var repeat, novel seq.Sequence
	for i := 0; i < 300; i++ {
		repeat = append(repeat, seq.Item(i%5))
		novel = append(novel, seq.Item(10+i))
	}
	train := []seq.Sequence{repeat[:200], novel[:200]}
	test := []seq.Sequence{repeat[200:], novel[200:]}
	m, err := Train(train, 400, Config{WindowCap: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Evaluate(train, test)
	if res.Accuracy < 0.95 {
		t.Fatalf("accuracy %v on separable corpus", res.Accuracy)
	}
}

func TestEvaluateCountsEvents(t *testing.T) {
	train, test, numItems := corpus(t)
	m, err := Train(train, numItems, Config{WindowCap: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Evaluate(train, test)
	// Every test event with a full window counts exactly once (train
	// prefixes exceed the window, so all test events are counted).
	want := 0
	for _, s := range test {
		want += len(s)
	}
	if res.Events != want {
		t.Fatalf("events = %d, want %d", res.Events, want)
	}
}

func TestDeterminism(t *testing.T) {
	train, _, numItems := corpus(t)
	cfg := Config{WindowCap: 20, Seed: 5}
	a, _ := Train(train, numItems, cfg)
	b, _ := Train(train, numItems, cfg)
	if a.Bias != b.Bias {
		t.Fatal("training not deterministic")
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	train, _, numItems := corpus(b)
	m, err := Train(train, numItems, Config{WindowCap: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := seq.NewWindow(20)
	for _, v := range train[0][:20] {
		w.Push(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(w, 10, 20)
	}
}

func TestQuadraticModel(t *testing.T) {
	train, test, numItems := corpus(t)
	m, err := Train(train, numItems, Config{WindowCap: 20, Quadratic: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Quadratic() {
		t.Fatal("Quadratic() false")
	}
	if len(m.W) != QuadDim {
		t.Fatalf("weights = %d, want %d", len(m.W), QuadDim)
	}
	res := m.Evaluate(train, test)
	if res.Accuracy <= 0.5 {
		t.Fatalf("quadratic accuracy %v", res.Accuracy)
	}
	// Prediction stays a probability.
	w := seq.NewWindow(20)
	for _, v := range train[0][:20] {
		w.Push(v)
	}
	if p := m.Predict(w, 3, 10); p < 0 || p > 1 {
		t.Fatalf("Predict = %v", p)
	}
}

func TestQuadDimConstant(t *testing.T) {
	if QuadDim != 14 {
		t.Fatalf("QuadDim = %d, want 14 (4 linear + 10 products)", QuadDim)
	}
}
