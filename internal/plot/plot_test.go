package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestChartRenderBasic(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "step",
		X:      []float64{0, 1, 2, 3},
		Series: []Series{
			{Name: "up", Y: []float64{0, 1, 2, 3}},
			{Name: "down", Y: []float64{3, 2, 1, 0}},
		},
		Width:  20,
		Height: 6,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "(step)") {
		t.Error("x label missing")
	}
	// The increasing series must put a '*' in the top row at the right and
	// the bottom row at the left.
	lines := strings.Split(out, "\n")
	top, bottom := lines[1], lines[6]
	if !strings.Contains(top, "*") {
		t.Errorf("top row has no marker: %q", top)
	}
	if !strings.Contains(bottom, "*") {
		t.Errorf("bottom row has no marker: %q", bottom)
	}
	// Axis labels carry the y range.
	if !strings.Contains(top, "3") || !strings.Contains(bottom, "0") {
		t.Errorf("y labels missing: %q / %q", top, bottom)
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	var buf bytes.Buffer
	// Too few points.
	c := &Chart{X: []float64{1}, Series: []Series{{Name: "s", Y: []float64{1}}}}
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not enough data") {
		t.Error("degenerate chart not reported")
	}
	// All-NaN series.
	buf.Reset()
	c = &Chart{X: []float64{0, 1}, Series: []Series{{Name: "s", Y: []float64{math.NaN(), math.NaN()}}}}
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no finite points") {
		t.Error("all-NaN chart not reported")
	}
	// Flat line must not divide by zero.
	buf.Reset()
	c = &Chart{X: []float64{0, 1, 2}, Series: []Series{{Name: "flat", Y: []float64{5, 5, 5}}}}
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("flat line not drawn")
	}
}

func TestChartSkipsNaNPoints(t *testing.T) {
	c := &Chart{
		X:      []float64{0, 1, 2},
		Series: []Series{{Name: "gap", Y: []float64{1, math.NaN(), 2}}},
		Width:  10, Height: 4,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("len = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should be empty")
	}
	// Flat input: all same glyph, no panic.
	flat := []rune(Sparkline([]float64{2, 2, 2}))
	if flat[0] != flat[1] || flat[1] != flat[2] {
		t.Errorf("flat sparkline = %q", string(flat))
	}
	// NaN becomes a space.
	withNaN := []rune(Sparkline([]float64{1, math.NaN(), 2}))
	if withNaN[1] != ' ' {
		t.Errorf("NaN glyph = %q", string(withNaN))
	}
}
