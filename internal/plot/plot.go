// Package plot renders small ASCII line charts for the experiment
// reports: the paper's figures are line plots, and a sweep table plus a
// terminal sparkline communicates the trend far faster than the table
// alone. No dependencies, fixed-width output, deterministic.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	Y    []float64
}

// Chart is a multi-series line chart over a shared X axis.
type Chart struct {
	Title  string
	XLabel string
	X      []float64 // shared x positions (must be ascending)
	Series []Series

	// Width and Height are the plot-area dimensions in characters
	// (defaults 60×12).
	Width, Height int
}

// markers cycles through per-series point glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render writes the chart to w. Series shorter than X are drawn over their
// prefix; NaNs are skipped.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 12
	}
	if len(c.X) < 2 || len(c.Series) == 0 {
		_, err := fmt.Fprintln(w, "(not enough data to plot)")
		return err
	}

	// Data ranges.
	xLo, xHi := c.X[0], c.X[len(c.X)-1]
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			if y < yLo {
				yLo = y
			}
			if y > yHi {
				yHi = y
			}
		}
	}
	if math.IsInf(yLo, 1) {
		_, err := fmt.Fprintln(w, "(no finite points to plot)")
		return err
	}
	if yHi == yLo {
		yHi = yLo + 1 // flat line: give it a band to live in
	}
	if xHi == xLo {
		xHi = xLo + 1
	}

	// Rasterize.
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		cx := int(math.Round((x - xLo) / (xHi - xLo) * float64(width-1)))
		return clampInt(cx, 0, width-1)
	}
	row := func(y float64) int {
		ry := int(math.Round((yHi - y) / (yHi - yLo) * float64(height-1)))
		return clampInt(ry, 0, height-1)
	}
	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		prevSet := false
		var prevC, prevR int
		n := len(s.Y)
		if n > len(c.X) {
			n = len(c.X)
		}
		for i := 0; i < n; i++ {
			if math.IsNaN(s.Y[i]) {
				prevSet = false
				continue
			}
			cx, ry := col(c.X[i]), row(s.Y[i])
			if prevSet {
				drawLine(grid, prevC, prevR, cx, ry, '.')
			}
			grid[ry][cx] = mark
			prevC, prevR, prevSet = cx, ry, true
		}
	}

	// Emit.
	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.4g ", yHi)
		case height - 1:
			label = fmt.Sprintf("%9.4g ", yLo)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width)); err != nil {
		return err
	}
	xAxis := fmt.Sprintf("%-*.4g%*.4g", width/2, xLo, width-width/2, xHi)
	if _, err := fmt.Fprintf(w, "%s %s\n", strings.Repeat(" ", 10), xAxis); err != nil {
		return err
	}
	if c.XLabel != "" {
		if _, err := fmt.Fprintf(w, "%s (%s)\n", strings.Repeat(" ", 10), c.XLabel); err != nil {
			return err
		}
	}
	// Legend.
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s %s\n", strings.Repeat(" ", 10), strings.Join(legend, "   "))
	return err
}

// drawLine rasterizes a connecting segment with Bresenham, skipping the
// endpoints (they get series markers).
func drawLine(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	dx := absInt(x1 - x0)
	dy := -absInt(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	x, y := x0, y0
	for {
		if (x != x0 || y != y0) && (x != x1 || y != y1) {
			if grid[y][x] == ' ' {
				grid[y][x] = ch
			}
		}
		if x == x1 && y == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Sparkline renders ys as a one-line block-character trend, handy inside
// tables. Empty input yields an empty string.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		if math.IsNaN(y) {
			continue
		}
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(ys))
	}
	var sb strings.Builder
	for _, y := range ys {
		if math.IsNaN(y) {
			sb.WriteByte(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[clampInt(idx, 0, len(blocks)-1)])
	}
	return sb.String()
}
