package rescache

import (
	"testing"

	"tsppr/internal/obs"
)

// fill inserts a fresh response for user at lsn under the cache's
// current epoch, as a correctly-sequenced caller would.
func fill(c *Cache, user int, lsn uint64, omega, n int, items []int, scores []float64) {
	c.Put(c.Epoch(), user, lsn, omega, n, items, scores)
}

func TestGetMissThenHit(t *testing.T) {
	c := New(Config{})
	if _, _, hit := c.Get(1, 5, 3, 10, nil, nil); hit {
		t.Fatal("hit on empty cache")
	}
	fill(c, 1, 5, 3, 10, []int{7, 8}, []float64{0.9, 0.4})
	items, scores, hit := c.Get(1, 5, 3, 10, nil, nil)
	if !hit {
		t.Fatal("expected hit")
	}
	if len(items) != 2 || items[0] != 7 || items[1] != 8 {
		t.Fatalf("items = %v", items)
	}
	if len(scores) != 2 || scores[0] != 0.9 || scores[1] != 0.4 {
		t.Fatalf("scores = %v", scores)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// The LSN is an exact version match: a probe with any other LSN —
// higher (user consumed) or lower (should be impossible, but must not
// serve) — misses.
func TestGetLSNMismatchMisses(t *testing.T) {
	c := New(Config{})
	fill(c, 1, 5, 3, 10, []int{7}, []float64{1})
	for _, lsn := range []uint64{4, 6, 0} {
		if _, _, hit := c.Get(1, lsn, 3, 10, nil, nil); hit {
			t.Fatalf("hit at lsn %d, entry at 5", lsn)
		}
	}
	if _, _, hit := c.Get(1, 5, 3, 10, nil, nil); !hit {
		t.Fatal("exact-LSN probe should still hit")
	}
}

// (Ω, N) are part of the variant key: the same user at the same LSN
// with a different request shape is a different entry.
func TestVariantKeyIsolation(t *testing.T) {
	c := New(Config{})
	fill(c, 1, 5, 3, 10, []int{7}, []float64{1})
	if _, _, hit := c.Get(1, 5, 4, 10, nil, nil); hit {
		t.Fatal("Ω mismatch must miss")
	}
	if _, _, hit := c.Get(1, 5, 3, 20, nil, nil); hit {
		t.Fatal("N mismatch must miss")
	}
	fill(c, 1, 5, 3, 20, []int{9}, []float64{2})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 variants", c.Len())
	}
}

// Get appends into the caller's buffers and returns slices aliasing
// them; a miss returns the inputs untouched.
func TestGetAppendsIntoCallerBuffers(t *testing.T) {
	c := New(Config{})
	fill(c, 1, 5, 3, 10, []int{7, 8}, []float64{0.9, 0.4})
	items := make([]int, 0, 8)
	scores := make([]float64, 0, 8)
	gi, gs, hit := c.Get(1, 5, 3, 10, items, scores)
	if !hit {
		t.Fatal("expected hit")
	}
	if &gi[0] != &items[:1][0] || &gs[0] != &scores[:1][0] {
		t.Fatal("hit did not append into caller buffers")
	}
	gi2, gs2, hit := c.Get(2, 5, 3, 10, gi[:0], gs[:0])
	if hit || len(gi2) != 0 || len(gs2) != 0 {
		t.Fatal("miss must return the inputs untouched")
	}
}

// A Put for an existing variant updates in place: new LSN, new
// contents, no extra entry.
func TestPutUpdatesInPlace(t *testing.T) {
	c := New(Config{})
	fill(c, 1, 5, 3, 10, []int{7}, []float64{1})
	fill(c, 1, 9, 3, 10, []int{8, 9}, []float64{2, 3})
	if c.Len() != 1 {
		t.Fatalf("Len = %d after in-place update", c.Len())
	}
	if _, _, hit := c.Get(1, 5, 3, 10, nil, nil); hit {
		t.Fatal("old LSN must no longer hit")
	}
	items, _, hit := c.Get(1, 9, 3, 10, nil, nil)
	if !hit || len(items) != 2 || items[0] != 8 {
		t.Fatalf("updated entry: hit=%v items=%v", hit, items)
	}
}

func TestPutPanicsOnLengthMismatch(t *testing.T) {
	c := New(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fill(c, 1, 5, 3, 10, []int{7, 8}, []float64{1})
}

func TestLRUEvictionAtBound(t *testing.T) {
	c := New(Config{MaxEntries: 3})
	for u := 0; u < 3; u++ {
		fill(c, u, 1, 3, 10, []int{u}, []float64{1})
	}
	// Touch user 0 so user 1 is the LRU victim.
	if _, _, hit := c.Get(0, 1, 3, 10, nil, nil); !hit {
		t.Fatal("user 0 should hit")
	}
	fill(c, 3, 1, 3, 10, []int{3}, []float64{1})
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, _, hit := c.Get(1, 1, 3, 10, nil, nil); hit {
		t.Fatal("user 1 should have been evicted")
	}
	for _, u := range []int{0, 2, 3} {
		if _, _, hit := c.Get(u, 1, 3, 10, nil, nil); !hit {
			t.Fatalf("user %d should have survived", u)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestInvalidateUser(t *testing.T) {
	c := New(Config{})
	fill(c, 1, 5, 3, 10, []int{7}, []float64{1})
	fill(c, 1, 5, 3, 20, []int{7}, []float64{1})
	fill(c, 2, 5, 3, 10, []int{8}, []float64{1})
	if n := c.InvalidateUser(1); n != 2 {
		t.Fatalf("InvalidateUser(1) = %d, want 2", n)
	}
	if n := c.InvalidateUser(1); n != 0 {
		t.Fatalf("second InvalidateUser(1) = %d, want 0", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, _, hit := c.Get(2, 5, 3, 10, nil, nil); !hit {
		t.Fatal("user 2 must be untouched")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
}

func TestPurgeDropsAllAndBumpsEpoch(t *testing.T) {
	c := New(Config{})
	for u := 0; u < 4; u++ {
		fill(c, u, 1, 3, 10, []int{u}, []float64{1})
	}
	e0 := c.Epoch()
	if n := c.Purge(); n != 4 {
		t.Fatalf("Purge = %d, want 4", n)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after purge", c.Len())
	}
	if c.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d", c.Epoch(), e0+1)
	}
	if st := c.Stats(); st.Invalidations != 4 {
		t.Fatalf("invalidations = %d, want 4", st.Invalidations)
	}
}

// A fill that sampled its epoch before a purge must be dropped: its
// window may predate a store reload whose LSNs regressed.
func TestStaleEpochPutDropped(t *testing.T) {
	c := New(Config{})
	epoch := c.Epoch() // handler samples, then clones its window...
	c.Purge()          // ...a store reload purges in between...
	c.Put(epoch, 1, 5, 3, 10, []int{7}, []float64{1})
	if c.Len() != 0 {
		t.Fatal("stale-epoch Put must be dropped")
	}
	if _, _, hit := c.Get(1, 5, 3, 10, nil, nil); hit {
		t.Fatal("stale fill served")
	}
	// A correctly-sequenced fill after the purge lands.
	fill(c, 1, 5, 3, 10, []int{7}, []float64{1})
	if c.Len() != 1 {
		t.Fatal("fresh-epoch Put must land")
	}
}

// All methods are nil-receiver safe so call sites need no guards.
func TestNilCache(t *testing.T) {
	var c *Cache
	if c.Epoch() != 0 {
		t.Fatal("nil Epoch")
	}
	items, scores, hit := c.Get(1, 5, 3, 10, []int{9}, []float64{9})
	if hit || len(items) != 1 || len(scores) != 1 {
		t.Fatal("nil Get must miss and return inputs")
	}
	c.Put(0, 1, 5, 3, 10, []int{7}, []float64{1})
	if c.InvalidateUser(1) != 0 || c.Purge() != 0 || c.Len() != 0 {
		t.Fatal("nil mutation methods must no-op")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Metrics: reg})
	fill(c, 1, 5, 3, 10, []int{7}, []float64{1})
	c.Get(1, 5, 3, 10, nil, nil) // hit
	c.Get(1, 6, 3, 10, nil, nil) // miss
	c.InvalidateUser(1)
	if v := reg.Counter("rrc_rescache_hits_total").Value(); v != 1 {
		t.Fatalf("hits = %v", v)
	}
	if v := reg.Counter("rrc_rescache_misses_total").Value(); v != 1 {
		t.Fatalf("misses = %v", v)
	}
	if v := reg.Counter("rrc_rescache_invalidations_total").Value(); v != 1 {
		t.Fatalf("invalidations = %v", v)
	}
}

// The steady state allocates nothing: hits append into reused caller
// buffers, and re-fills of an existing variant reuse its slices.
func TestSteadyStateZeroAllocs(t *testing.T) {
	c := New(Config{})
	fill(c, 1, 5, 3, 10, []int{7, 8, 9}, []float64{1, 2, 3})
	items := make([]int, 0, 16)
	scores := make([]float64, 0, 16)
	if n := testing.AllocsPerRun(100, func() {
		var hit bool
		items, scores, hit = c.Get(1, 5, 3, 10, items[:0], scores[:0])
		if !hit {
			t.Fatal("miss in alloc loop")
		}
	}); n != 0 {
		t.Fatalf("Get hit allocates %v/op", n)
	}
	lsn := uint64(5)
	epoch := c.Epoch()
	if n := testing.AllocsPerRun(100, func() {
		lsn++
		c.Put(epoch, 1, lsn, 3, 10, items, scores)
	}); n != 0 {
		t.Fatalf("in-place Put allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, _, hit := c.Get(1, 0, 3, 10, items[:0], scores[:0]); hit {
			t.Fatal("stale LSN hit in alloc loop")
		}
	}); n != 0 {
		t.Fatalf("Get miss allocates %v/op", n)
	}
}

// Evicted and invalidated entries recycle through the freelist, so
// churn over a bounded cache settles into allocation-free inserts.
func TestFreelistRecycling(t *testing.T) {
	c := New(Config{MaxEntries: 4})
	items := []int{1, 2, 3}
	scores := []float64{1, 2, 3}
	epoch := c.Epoch()
	for u := 0; u < 8; u++ { // warm: mint entries, start evicting
		c.Put(epoch, u, 1, 3, 10, items, scores)
	}
	u := 8
	if n := testing.AllocsPerRun(200, func() {
		c.Put(epoch, u, 1, 3, 10, items, scores)
		u++
	}); n != 0 {
		t.Fatalf("churning inserts allocate %v/op", n)
	}
}
