// Package rescache is the per-user Top-N response cache behind
// /recommend/user. The paper's premise — repeat consumption means a
// user's candidate set and gap features change only when the user
// consumes — makes the cache exact, not approximate: between two
// /consume events for a user, every /recommend/user answer for the
// same (Ω, N) is identical, so it can be served from memory without
// touching the engine.
//
// # Versioning
//
// Entries are keyed by (user, Ω, N) and stamped with the user's
// applied WAL LSN — the version /consume already returns. A lookup
// presents the user's current LSN (read from the session store) and
// hits only on an exact match, so a consume invalidates by construction:
// the next read probes with a higher LSN and misses. The explicit
// InvalidateUser on the consume path is memory and metrics hygiene
// (drop the dead entry now, count it), not the coherence mechanism.
//
// LSN comparison assumes per-user LSNs never regress. Two events break
// that assumption — a shard restart that lost an unsynced WAL tail, and
// a replication truncate/reseed that cut a divergent tail — and one
// more changes scores under an unchanged LSN: a model hot-swap. All
// three must Purge. Purge also advances the cache epoch; Put carries
// the epoch its caller observed before reading the window, so a fill
// that raced a purge (cloned its window from the pre-reload store) is
// dropped instead of resurrecting stale state under a reused LSN.
//
// # Allocation discipline
//
// The steady state allocates nothing: lookups append into caller
// buffers, in-place updates reuse the entry's slices, and evicted or
// invalidated entries park on a freelist for the next insert.
package rescache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tsppr/internal/obs"
)

// DefaultMaxEntries bounds the cache when Config.MaxEntries is 0.
const DefaultMaxEntries = 1 << 16

// Config parameterizes a Cache.
type Config struct {
	// MaxEntries is the LRU bound; 0 → DefaultMaxEntries.
	MaxEntries int
	// Metrics, when non-nil, receives the rrc_rescache_* families. Nil
	// records nothing.
	Metrics *obs.Registry
}

// variantKey identifies one cacheable response shape: a user's Top-N
// under one (Ω, N). The user's LSN is the entry's version, not part of
// the key — a variant holds at most one generation, and a fill for a
// newer LSN overwrites in place.
type variantKey struct {
	user  int
	omega int
	n     int
}

// entry is one cached response. It lives on three intrusive structures
// at once: the variant map, the global LRU list (prev/next, sentinel
// head/tail), and its user's invalidation list (uprev/unext, headed in
// Cache.users) — so invalidating a user is O(variants of that user),
// never a scan.
type entry struct {
	key    variantKey
	lsn    uint64
	items  []int
	scores []float64

	prev, next   *entry // global LRU
	uprev, unext *entry // per-user invalidation list
}

// Cache is a bounded LRU of Top-N responses. All methods are safe for
// concurrent use and safe on a nil receiver (a nil *Cache never hits
// and drops every fill), so call sites need no "is caching on" guards.
type Cache struct {
	mu      sync.Mutex
	max     int
	epoch   atomic.Uint64 // bumped by Purge; read lock-free by Epoch
	entries map[variantKey]*entry
	users   map[int]*entry // head of each user's invalidation list
	head    *entry         // LRU sentinel: head.next is most recent
	tail    *entry         // LRU sentinel: tail.prev is eviction victim
	free    *entry         // recycled entries, linked through next

	hits          int64
	misses        int64
	invalidations int64
	evictions     int64

	mHits  *obs.Counter
	mMiss  *obs.Counter
	mInval *obs.Counter
	mEvict *obs.Counter
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	c := &Cache{
		max:     cfg.MaxEntries,
		entries: make(map[variantKey]*entry),
		users:   make(map[int]*entry),
		head:    &entry{},
		tail:    &entry{},
	}
	c.head.next = c.tail
	c.tail.prev = c.head
	c.instrument(cfg.Metrics)
	return c
}

// instrument registers the rrc_rescache_* families on reg. All handles
// are nil-safe, so a cache without a registry records nothing extra.
func (c *Cache) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("rrc_rescache_hits_total", "Response-cache lookups answered without scoring.")
	c.mHits = reg.Counter("rrc_rescache_hits_total")
	reg.Help("rrc_rescache_misses_total", "Response-cache lookups that fell through to the engine.")
	c.mMiss = reg.Counter("rrc_rescache_misses_total")
	reg.Help("rrc_rescache_invalidations_total", "Response-cache entries dropped by consume invalidation or purge.")
	c.mInval = reg.Counter("rrc_rescache_invalidations_total")
	reg.Help("rrc_rescache_evictions_total", "Response-cache entries evicted by the LRU bound.")
	c.mEvict = reg.Counter("rrc_rescache_evictions_total")
	reg.Help("rrc_rescache_entries", "Response-cache entries currently held.")
	reg.GaugeFunc("rrc_rescache_entries", func() float64 { return float64(c.Len()) })
}

// Epoch returns the cache's purge epoch. Sample it BEFORE reading the
// window a fill will be computed from, and hand it to Put: a purge in
// between (store reload, model swap) then voids the fill instead of
// letting it publish a response scored against vanished state.
func (c *Cache) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// Get looks up the Top-N for (user, Ω, N) at exactly the given LSN,
// appending items and scores to the caller's buffers on a hit. The
// returned slices alias the (possibly grown) buffers; on a miss they
// are the untouched inputs. A hit refreshes LRU recency.
func (c *Cache) Get(user int, lsn uint64, omega, n int, items []int, scores []float64) ([]int, []float64, bool) {
	if c == nil {
		return items, scores, false
	}
	c.mu.Lock()
	e, ok := c.entries[variantKey{user: user, omega: omega, n: n}]
	if !ok || e.lsn != lsn {
		c.misses++
		c.mu.Unlock()
		c.mMiss.Inc()
		return items, scores, false
	}
	c.moveToFront(e)
	items = append(items, e.items...)
	scores = append(scores, e.scores...)
	c.hits++
	c.mu.Unlock()
	c.mHits.Inc()
	return items, scores, true
}

// Put stores the Top-N for (user, Ω, N) computed against the window
// whose applied LSN is lsn, under the epoch the caller sampled before
// reading that window. A fill whose epoch is stale (a purge ran in
// between) is dropped: its window may predate a store reload whose LSNs
// regressed, and LSN equality alone could not tell. The entry copies
// items/scores; an existing variant is updated in place.
func (c *Cache) Put(epoch uint64, user int, lsn uint64, omega, n int, items []int, scores []float64) {
	if c == nil {
		return
	}
	if len(items) != len(scores) {
		panic(fmt.Sprintf("rescache: Put %d items, %d scores", len(items), len(scores)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch.Load() {
		return
	}
	k := variantKey{user: user, omega: omega, n: n}
	if e, ok := c.entries[k]; ok {
		e.lsn = lsn
		e.items = append(e.items[:0], items...)
		e.scores = append(e.scores[:0], scores...)
		c.moveToFront(e)
		return
	}
	e := c.alloc()
	e.key = k
	e.lsn = lsn
	e.items = append(e.items[:0], items...)
	e.scores = append(e.scores[:0], scores...)
	c.entries[k] = e
	c.pushFront(e)
	c.userLink(e)
	for len(c.entries) > c.max {
		victim := c.tail.prev
		c.removeLocked(victim)
		c.evictions++
		c.mEvict.Inc()
	}
}

// InvalidateUser drops every cached variant for user and returns how
// many were dropped. The consume path calls it after a durable ingest —
// hygiene, not coherence (see the package comment).
func (c *Cache) InvalidateUser(user int) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	n := 0
	for e := c.users[user]; e != nil; {
		next := e.unext
		c.removeLocked(e)
		n++
		e = next
	}
	c.invalidations += int64(n)
	c.mu.Unlock()
	c.mInval.Add(int64(n))
	return n
}

// Purge drops every entry and advances the epoch, returning how many
// entries were dropped. Required (not optional) on model hot-swap
// (scores changed under unchanged LSNs) and on any wholesale session-
// store replacement — shard restart, divergent-tail truncation, reseed
// — where per-user LSNs may have regressed and version comparison can
// no longer be trusted.
func (c *Cache) Purge() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	n := len(c.entries)
	for len(c.entries) > 0 {
		c.removeLocked(c.tail.prev)
	}
	c.epoch.Add(1)
	c.invalidations += int64(n)
	c.mu.Unlock()
	c.mInval.Add(int64(n))
	return n
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits          int64  `json:"hits"`
	Misses        int64  `json:"misses"`
	Invalidations int64  `json:"invalidations"`
	Evictions     int64  `json:"evictions"`
	Entries       int    `json:"entries"`
	Epoch         uint64 `json:"epoch"`
}

// Stats returns the cache's current counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Entries:       len(c.entries),
		Epoch:         c.epoch.Load(),
	}
}

// alloc takes an entry from the freelist, or mints one. Recycled
// entries keep their slice capacity, which is what makes steady-state
// inserts (at capacity, or over a stable variant set) allocation-free.
func (c *Cache) alloc() *entry {
	if e := c.free; e != nil {
		c.free = e.next
		e.next = nil
		return e
	}
	return &entry{}
}

// removeLocked unlinks e from all three structures and parks it on the
// freelist.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	e.prev.next = e.next
	e.next.prev = e.prev
	c.userUnlink(e)
	e.prev, e.next, e.lsn = nil, nil, 0
	e.items = e.items[:0]
	e.scores = e.scores[:0]
	e.next = c.free
	c.free = e
}

// pushFront inserts e as the most recently used entry.
func (c *Cache) pushFront(e *entry) {
	e.prev = c.head
	e.next = c.head.next
	c.head.next.prev = e
	c.head.next = e
}

// moveToFront refreshes e's LRU recency.
func (c *Cache) moveToFront(e *entry) {
	if c.head.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	c.pushFront(e)
}

// userLink prepends e to its user's invalidation list.
func (c *Cache) userLink(e *entry) {
	head := c.users[e.key.user]
	e.uprev, e.unext = nil, head
	if head != nil {
		head.uprev = e
	}
	c.users[e.key.user] = e
}

// userUnlink removes e from its user's invalidation list.
func (c *Cache) userUnlink(e *entry) {
	if e.uprev != nil {
		e.uprev.unext = e.unext
	} else if c.users[e.key.user] == e {
		if e.unext != nil {
			c.users[e.key.user] = e.unext
		} else {
			delete(c.users, e.key.user)
		}
	}
	if e.unext != nil {
		e.unext.uprev = e.uprev
	}
	e.uprev, e.unext = nil, nil
}
