// Package faultinject provides deterministic, seed-driven failure points
// for resilience testing. Production code marks potential failure sites
// with Do, Fire, or WrapWriter; by default every point is disarmed and the
// instrumentation costs a single atomic load. Tests arm points with plans
// that decide — as a pure function of the hit count and an optional seed —
// whether a given hit fires, so failure schedules replay identically
// across runs regardless of goroutine interleaving at the call site.
//
// Points are plain dotted strings owned by the instrumented package, e.g.
// "server.score" or "core.io.write". Arming a point another package never
// hits is not an error; it simply never fires.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed point does when a hit fires.
type Mode int

const (
	// Panic makes Do panic, simulating a bug in the instrumented path.
	Panic Mode = iota
	// Delay makes Do sleep for Plan.Sleep, simulating a stall.
	Delay
	// Error makes Do return Plan.Err (ErrInjected if nil).
	Error
	// ShortWrite makes a WrapWriter write only half its buffer and fail,
	// simulating a full disk or a kill mid-write.
	ShortWrite
	// Corrupt makes a WrapWriter flip one bit of the buffer and carry on,
	// simulating silent media corruption.
	Corrupt
)

func (m Mode) String() string {
	switch m {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case ShortWrite:
		return "short-write"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrInjected is the default error produced by Error and ShortWrite plans.
var ErrInjected = errors.New("faultinject: injected fault")

// Plan schedules when an armed point fires. The zero value fires on every
// hit with the zero Mode (Panic).
type Plan struct {
	Mode  Mode
	After int           // skip the first After hits
	Count int           // fire at most Count times (0 = unlimited)
	Prob  float64       // fire with probability Prob (0 = always); deterministic in Seed and hit index
	Seed  uint64        // seed for Prob draws
	Sleep time.Duration // Delay mode stall
	Err   error         // Error/ShortWrite mode error (nil = ErrInjected)
}

type point struct {
	plan  Plan
	hits  int // total hits since armed
	fired int // hits that fired
}

var (
	mu    sync.Mutex
	armed map[string]*point

	// enabled mirrors len(armed) > 0 and is the lock-free fast path: a
	// disarmed process pays one atomic load per hit.
	enabled atomic.Bool
)

// Arm schedules p at the named point, replacing any existing plan and
// resetting its hit count.
func Arm(name string, p Plan) {
	mu.Lock()
	defer mu.Unlock()
	if armed == nil {
		armed = make(map[string]*point)
	}
	armed[name] = &point{plan: p}
	enabled.Store(true)
}

// Disarm removes the plan at the named point, if any.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(armed, name)
	if len(armed) == 0 {
		enabled.Store(false)
	}
}

// Reset disarms every point. Tests should defer Reset after arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	enabled.Store(false)
}

// Fire records a hit at the named point and reports whether it fires,
// returning the armed plan. When nothing is armed it is a single atomic
// load.
func Fire(name string) (Plan, bool) {
	if !enabled.Load() {
		return Plan{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	pt := armed[name]
	if pt == nil {
		return Plan{}, false
	}
	idx := pt.hits
	pt.hits++
	if idx < pt.plan.After {
		return Plan{}, false
	}
	if pt.plan.Count > 0 && pt.fired >= pt.plan.Count {
		return Plan{}, false
	}
	if p := pt.plan.Prob; p > 0 && p < 1 {
		if u01(pt.plan.Seed, uint64(idx)) >= p {
			return Plan{}, false
		}
	}
	pt.fired++
	return pt.plan, true
}

// Hits returns how many times the named point was hit since it was armed
// and how many of those hits fired.
func Hits(name string) (hits, fired int) {
	mu.Lock()
	defer mu.Unlock()
	if pt := armed[name]; pt != nil {
		return pt.hits, pt.fired
	}
	return 0, 0
}

// Do is the general-purpose failure point for code paths: it panics under
// a Panic plan, sleeps under a Delay plan, and returns the plan's error
// under an Error plan. Disarmed (the production default) it does nothing.
func Do(name string) error {
	p, fire := Fire(name)
	if !fire {
		return nil
	}
	switch p.Mode {
	case Panic:
		panic(fmt.Sprintf("faultinject: %s", name))
	case Delay:
		time.Sleep(p.Sleep)
		return nil
	case Error:
		if p.Err != nil {
			return p.Err
		}
		return ErrInjected
	default:
		return nil
	}
}

// WrapWriter instruments w with the named point. Each Write hits the
// point once; a firing ShortWrite plan writes half the buffer then fails,
// a firing Corrupt plan flips one bit (chosen deterministically from the
// seed and hit index) and writes normally. Disarmed it forwards verbatim.
func WrapWriter(name string, w io.Writer) io.Writer {
	return &faultWriter{name: name, w: w}
}

type faultWriter struct {
	name string
	w    io.Writer
}

func (fw *faultWriter) Write(b []byte) (int, error) {
	p, fire := Fire(fw.name)
	if !fire {
		return fw.w.Write(b)
	}
	switch p.Mode {
	case ShortWrite:
		n, err := fw.w.Write(b[:len(b)/2])
		if err != nil {
			return n, err
		}
		if p.Err != nil {
			return n, p.Err
		}
		return n, ErrInjected
	case Corrupt:
		if len(b) > 0 {
			c := make([]byte, len(b))
			copy(c, b)
			off := u64(p.Seed, uint64(len(b)))
			c[off%uint64(len(b))] ^= 1 << (off % 8)
			b = c
		}
		return fw.w.Write(b)
	default:
		return fw.w.Write(b)
	}
}

// u64 is SplitMix64 over (seed, n): a pure deterministic hash used for
// Prob draws and corruption offsets.
func u64(seed, n uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func u01(seed, n uint64) float64 {
	return float64(u64(seed, n)>>11) / (1 << 53)
}
