package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if err := Do("nothing.armed"); err != nil {
		t.Fatalf("disarmed Do returned %v", err)
	}
	if _, fire := Fire("nothing.armed"); fire {
		t.Fatal("disarmed point fired")
	}
}

func TestPanicPlan(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Plan{Mode: Panic})
	defer func() {
		if recover() == nil {
			t.Fatal("armed Panic plan did not panic")
		}
	}()
	_ = Do("p")
}

func TestErrorPlan(t *testing.T) {
	Reset()
	defer Reset()
	Arm("e", Plan{Mode: Error})
	if err := Do("e"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	custom := errors.New("boom")
	Arm("e", Plan{Mode: Error, Err: custom})
	if err := Do("e"); !errors.Is(err, custom) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelayPlan(t *testing.T) {
	Reset()
	defer Reset()
	Arm("d", Plan{Mode: Delay, Sleep: 20 * time.Millisecond})
	start := time.Now()
	if err := Do("d"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("slept only %v", elapsed)
	}
}

func TestAfterAndCount(t *testing.T) {
	Reset()
	defer Reset()
	Arm("ac", Plan{Mode: Error, After: 2, Count: 3})
	var fired int
	for i := 0; i < 10; i++ {
		if _, f := Fire("ac"); f {
			fired++
			if i < 2 {
				t.Fatalf("fired at hit %d despite After=2", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if hits, f := Hits("ac"); hits != 10 || f != 3 {
		t.Fatalf("Hits = %d/%d", hits, f)
	}
}

func TestProbIsDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	run := func() []bool {
		Arm("pr", Plan{Mode: Error, Prob: 0.5, Seed: 7})
		out := make([]bool, 100)
		for i := range out {
			_, out[i] = Fire("pr")
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Prob schedule not reproducible")
		}
		if a[i] {
			fired++
		}
	}
	if fired < 20 || fired > 80 {
		t.Fatalf("Prob=0.5 fired %d/100", fired)
	}
}

func TestShortWriteWriter(t *testing.T) {
	Reset()
	defer Reset()
	Arm("w", Plan{Mode: ShortWrite})
	var buf bytes.Buffer
	w := WrapWriter("w", &buf)
	n, err := w.Write(make([]byte, 64))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if n != 32 || buf.Len() != 32 {
		t.Fatalf("wrote %d/%d bytes, want 32", n, buf.Len())
	}
}

func TestCorruptWriter(t *testing.T) {
	Reset()
	defer Reset()
	Arm("c", Plan{Mode: Corrupt, Seed: 3})
	orig := bytes.Repeat([]byte{0xAA}, 128)
	var buf bytes.Buffer
	w := WrapWriter("c", &buf)
	if _, err := w.Write(orig); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(orig) {
		t.Fatalf("length changed: %d", buf.Len())
	}
	if bytes.Equal(buf.Bytes(), orig) {
		t.Fatal("corrupt write left bytes untouched")
	}
	// The caller's buffer must not be mutated.
	for _, b := range orig {
		if b != 0xAA {
			t.Fatal("caller buffer mutated")
		}
	}
	diff := 0
	for i := range orig {
		if buf.Bytes()[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

func TestWrapWriterDisarmedForwards(t *testing.T) {
	Reset()
	var buf bytes.Buffer
	w := WrapWriter("none", &buf)
	if _, err := w.Write([]byte("hello")); err != nil || buf.String() != "hello" {
		t.Fatalf("forward failed: %v %q", err, buf.String())
	}
}
