// Package topk provides bounded top-K selection of scored items, used by
// every recommender to produce its Top-N list without sorting the whole
// candidate set.
//
// Ordering is deterministic: higher score wins, and exact score ties break
// toward the smaller item ID. Determinism matters because the evaluation
// harness must be reproducible run-to-run, and floating-point score ties do
// occur (e.g. the Pop baseline over items with equal frequency).
package topk

import (
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// Entry is a scored item. It aliases rec.Scored so selectors drain
// directly into recommendation result slices without a conversion copy.
type Entry = rec.Scored

// worse reports whether a ranks strictly below b in the final list.
func worse(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}

// Selector accumulates entries and retains the best K. The zero value is
// unusable; construct with New. Selector is not safe for concurrent use.
type Selector struct {
	k    int
	heap []Entry // min-heap on rank: root is the worst retained entry
}

// New returns a selector retaining the k best entries. It panics for
// k <= 0.
func New(k int) *Selector {
	if k <= 0 {
		panic("topk: New with k <= 0")
	}
	return &Selector{k: k, heap: make([]Entry, 0, k)}
}

// K returns the selector's capacity.
func (s *Selector) K() int { return s.k }

// Len returns the number of retained entries.
func (s *Selector) Len() int { return len(s.heap) }

// Reset discards all retained entries, keeping capacity.
func (s *Selector) Reset() { s.heap = s.heap[:0] }

// Push offers a scored item. Entries ranking below the current K-th best
// are dropped.
func (s *Selector) Push(item seq.Item, score float64) {
	e := Entry{Item: item, Score: score}
	if len(s.heap) < s.k {
		s.heap = append(s.heap, e)
		s.siftUp(len(s.heap) - 1)
		return
	}
	if worse(e, s.heap[0]) || e == s.heap[0] {
		return
	}
	s.heap[0] = e
	s.siftDown(0)
}

func (s *Selector) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Selector) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && worse(s.heap[l], s.heap[min]) {
			min = l
		}
		if r < n && worse(s.heap[r], s.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}

// AppendSorted appends the retained entries to dst in final ranking order
// (best first) and returns the extended slice. The selector is left empty.
func (s *Selector) AppendSorted(dst []Entry) []Entry {
	start := len(dst)
	for len(s.heap) > 0 {
		last := len(s.heap) - 1
		s.heap[0], s.heap[last] = s.heap[last], s.heap[0]
		dst = append(dst, s.heap[last])
		s.heap = s.heap[:last]
		s.siftDown(0)
	}
	// Entries popped worst-first; reverse the appended segment.
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// Items appends just the item IDs in ranking order and returns the
// extended slice. The selector is left empty.
func (s *Selector) Items(dst []seq.Item) []seq.Item {
	entries := s.AppendSorted(nil)
	for _, e := range entries {
		dst = append(dst, e.Item)
	}
	return dst
}
