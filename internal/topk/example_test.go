package topk_test

import (
	"fmt"

	"tsppr/internal/topk"
)

// Example keeps the best three of five scored items; the exact tie at
// score 0.9 breaks toward the smaller item ID.
func Example() {
	sel := topk.New(3)
	sel.Push(10, 0.5)
	sel.Push(11, 0.9)
	sel.Push(12, 0.1)
	sel.Push(13, 0.9)
	sel.Push(14, 0.7)
	fmt.Println(sel.Items(nil))
	// Output:
	// [11 13 14]
}
