package topk

import (
	"sort"
	"testing"
	"testing/quick"

	"tsppr/internal/rngutil"
	"tsppr/internal/seq"
)

// reference computes the expected ranking by full sort.
func reference(entries []Entry, k int) []Entry {
	sorted := append([]Entry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		return sorted[i].Item < sorted[j].Item
	})
	// Drop exact duplicates the way the selector does (same item+score
	// pushed twice is retained twice by both, so no dedup needed).
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

func TestSelectorMatchesSortSmall(t *testing.T) {
	entries := []Entry{
		{Item: 3, Score: 1.0},
		{Item: 1, Score: 3.0},
		{Item: 2, Score: 2.0},
		{Item: 4, Score: 0.5},
	}
	s := New(2)
	for _, e := range entries {
		s.Push(e.Item, e.Score)
	}
	got := s.AppendSorted(nil)
	want := reference(entries, 2)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSelectorTieBreaksByItemID(t *testing.T) {
	s := New(2)
	s.Push(9, 1.0)
	s.Push(2, 1.0)
	s.Push(5, 1.0)
	got := s.Items(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("tie-break wrong: %v", got)
	}
}

func TestSelectorFewerThanK(t *testing.T) {
	s := New(10)
	s.Push(1, 0.1)
	s.Push(2, 0.9)
	got := s.Items(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectorReset(t *testing.T) {
	s := New(3)
	s.Push(1, 1)
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	s.Push(2, 2)
	got := s.Items(nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectorPropertyMatchesSort(t *testing.T) {
	f := func(scores []float64, kSeed uint8) bool {
		if len(scores) == 0 {
			return true
		}
		k := int(kSeed)%10 + 1
		entries := make([]Entry, len(scores))
		for i, sc := range scores {
			entries[i] = Entry{Item: seq.Item(i), Score: sc}
		}
		s := New(k)
		for _, e := range entries {
			s.Push(e.Item, e.Score)
		}
		got := s.AppendSorted(nil)
		want := reference(entries, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSelectorLargeRandom(t *testing.T) {
	rng := rngutil.New(17)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(20)
		entries := make([]Entry, n)
		for i := range entries {
			// Coarse scores force plenty of ties.
			entries[i] = Entry{Item: seq.Item(i), Score: float64(rng.Intn(7))}
		}
		s := New(k)
		for _, e := range entries {
			s.Push(e.Item, e.Score)
		}
		got := s.AppendSorted(nil)
		want := reference(entries, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: got %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func BenchmarkPush100Top10(b *testing.B) {
	rng := rngutil.New(2)
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(10)
		for j, sc := range scores {
			s.Push(seq.Item(j), sc)
		}
		_ = s.Items(nil)
	}
}
