package eval

import (
	"math"
	"testing"
)

// mkResult fabricates a KeepPerUser result from per-user (events, hits@1).
func mkResult(name string, events []int, hits []int) Result {
	r := Result{Method: name, TopNs: []int{1}}
	for u := range events {
		out := UserOutcome{Events: events[u], Hits: []int{hits[u]}}
		r.PerUser = append(r.PerUser, out)
	}
	return r
}

func TestPairedBootstrapClearWinner(t *testing.T) {
	// 40 users, 10 events each; A hits 9, B hits 3 — decisive.
	n := 40
	events := make([]int, n)
	hitsA := make([]int, n)
	hitsB := make([]int, n)
	for u := range events {
		events[u] = 10
		hitsA[u] = 9
		hitsB[u] = 3
	}
	a, b := mkResult("A", events, hitsA), mkResult("B", events, hitsB)
	c, err := PairedBootstrap(a, b, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.DeltaMaAP[0]-0.6) > 1e-12 {
		t.Fatalf("DeltaMaAP = %v, want 0.6", c.DeltaMaAP[0])
	}
	if !c.SignificantMaAP(0) {
		t.Fatalf("decisive delta not significant: CI [%v, %v]", c.CILowMaAP[0], c.CIHighMaAP[0])
	}
	if c.PValueMaAP[0] > 0.05 {
		t.Fatalf("p = %v", c.PValueMaAP[0])
	}
	if c.DeltaMiAP[0] <= 0 {
		t.Fatalf("DeltaMiAP = %v", c.DeltaMiAP[0])
	}
}

func TestPairedBootstrapNoDifference(t *testing.T) {
	// Same hit pattern → delta exactly 0, p = 1, CI includes 0.
	n := 30
	events := make([]int, n)
	hits := make([]int, n)
	for u := range events {
		events[u] = 5
		hits[u] = u % 3
	}
	a, b := mkResult("A", events, hits), mkResult("B", events, hits)
	c, err := PairedBootstrap(a, b, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.DeltaMaAP[0] != 0 {
		t.Fatalf("delta = %v", c.DeltaMaAP[0])
	}
	if c.SignificantMaAP(0) {
		t.Fatal("zero delta flagged significant")
	}
	if c.PValueMaAP[0] != 1 {
		t.Fatalf("p = %v, want 1", c.PValueMaAP[0])
	}
}

func TestPairedBootstrapNoisyTie(t *testing.T) {
	// Alternating small wins either way: should not be significant.
	n := 20
	events := make([]int, n)
	hitsA := make([]int, n)
	hitsB := make([]int, n)
	for u := range events {
		events[u] = 10
		hitsA[u] = 5
		hitsB[u] = 5
		if u%2 == 0 {
			hitsA[u]++
		} else {
			hitsB[u]++
		}
	}
	a, b := mkResult("A", events, hitsA), mkResult("B", events, hitsB)
	c, err := PairedBootstrap(a, b, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.SignificantMaAP(0) {
		t.Fatalf("noisy tie flagged significant: CI [%v, %v]", c.CILowMaAP[0], c.CIHighMaAP[0])
	}
}

func TestPairedBootstrapValidation(t *testing.T) {
	good := mkResult("A", []int{3}, []int{1})
	if _, err := PairedBootstrap(Result{}, good, 100, 1); err == nil {
		t.Error("missing PerUser accepted")
	}
	other := mkResult("B", []int{3, 4}, []int{1, 1})
	if _, err := PairedBootstrap(good, other, 100, 1); err == nil {
		t.Error("mismatched user counts accepted")
	}
	unpaired := mkResult("B", []int{4}, []int{1})
	if _, err := PairedBootstrap(good, unpaired, 100, 1); err == nil {
		t.Error("unpaired event counts accepted")
	}
	diffTop := mkResult("B", []int{3}, []int{1})
	diffTop.TopNs = []int{5}
	if _, err := PairedBootstrap(good, diffTop, 100, 1); err == nil {
		t.Error("different TopNs accepted")
	}
	zero := mkResult("A", []int{0}, []int{0})
	zeroB := mkResult("B", []int{0}, []int{0})
	if _, err := PairedBootstrap(zero, zeroB, 100, 1); err == nil {
		t.Error("no active users accepted")
	}
}

func TestPairedBootstrapDeterminism(t *testing.T) {
	n := 15
	events := make([]int, n)
	hitsA := make([]int, n)
	hitsB := make([]int, n)
	for u := range events {
		events[u] = 8
		hitsA[u] = (u*3)%8 + 1
		hitsB[u] = (u*5)%8 + 1
	}
	a, b := mkResult("A", events, hitsA), mkResult("B", events, hitsB)
	c1, err := PairedBootstrap(a, b, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := PairedBootstrap(a, b, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c1.CILowMaAP[0] != c2.CILowMaAP[0] || c1.PValueMaAP[0] != c2.PValueMaAP[0] {
		t.Fatal("bootstrap not deterministic")
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	lo, hi := quantiles(xs, 0, 1)
	if lo != 1 || hi != 5 {
		t.Fatalf("quantiles = %v, %v", lo, hi)
	}
	// Input must not be reordered (we copy).
	if xs[0] != 5 {
		t.Fatal("quantiles mutated input")
	}
}

func TestSignFlipP(t *testing.T) {
	if p := signFlipP([]float64{1, 2, 3, 4}, 2); p != 1.0/4 {
		t.Fatalf("all-same-side p = %v", p)
	}
	if p := signFlipP([]float64{-1, 1, -1, 1}, 1); p != 1 {
		t.Fatalf("split p = %v", p)
	}
	if p := signFlipP([]float64{1}, 0); p != 1 {
		t.Fatalf("zero delta p = %v", p)
	}
}
