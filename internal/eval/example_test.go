package eval_test

import (
	"fmt"

	"tsppr/internal/eval"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// Example evaluates a trivial "oldest candidate first" policy on a cyclic
// user, where that policy happens to be a perfect oracle.
func Example() {
	oldest := rec.Factory{Name: "oldest", New: func(uint64) rec.Recommender {
		return rec.Func(func(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
			cands := ctx.Window.Candidates(ctx.Omega, nil)
			if n > len(cands) {
				n = len(cands)
			}
			return rec.AppendItems(dst, cands[:n]...)
		})
	}}

	train := make(seq.Sequence, 40)
	test := make(seq.Sequence, 20)
	for i := range train {
		train[i] = seq.Item(i % 5)
	}
	for i := range test {
		test[i] = seq.Item((len(train) + i) % 5)
	}

	res, err := eval.Evaluate(
		[]seq.Sequence{train}, []seq.Sequence{test},
		oldest,
		eval.Options{WindowCap: 10, Omega: 2, TopNs: []int{1, 3}},
	)
	if err != nil {
		fmt.Println("evaluate:", err)
		return
	}
	ma1, mi1, _ := res.At(1)
	fmt.Printf("events=%d MaAP@1=%.2f MiAP@1=%.2f MRR=%.2f\n", res.Events, ma1, mi1, res.MRR)
	// Output:
	// events=20 MaAP@1=1.00 MiAP@1=1.00 MRR=1.00
}
