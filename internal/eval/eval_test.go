package eval

import (
	"math"
	"testing"

	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// oracle recommends the true next item first (it peeks via closure state
// set up by the test); used to pin the metric math.
type fixed struct{ items []seq.Item }

func (f fixed) Recommend(_ *rec.Context, n int, dst []rec.Scored) []rec.Scored {
	if n > len(f.items) {
		n = len(f.items)
	}
	return rec.AppendItems(dst, f.items[:n]...)
}

func fixedFactory(items ...seq.Item) rec.Factory {
	return rec.Factory{Name: "fixed", New: func(uint64) rec.Recommender {
		return fixed{items}
	}}
}

// oldestCandidate recommends window candidates oldest-first — on a strict
// cycle this is a perfect Top-1 recommender.
func oldestCandidate() rec.Factory {
	return rec.Factory{Name: "oldest", New: func(uint64) rec.Recommender {
		return rec.Func(func(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
			cands := ctx.Window.Candidates(ctx.Omega, nil)
			if n > len(cands) {
				n = len(cands)
			}
			return rec.AppendItems(dst, cands[:n]...)
		})
	}}
}

// cycle builds a user sequence cycling over k items.
func cycle(k, length int) seq.Sequence {
	s := make(seq.Sequence, length)
	for i := range s {
		s[i] = seq.Item(i % k)
	}
	return s
}

func TestEvaluatePerfectRecommender(t *testing.T) {
	train := []seq.Sequence{cycle(5, 40)}
	test := []seq.Sequence{cycle(5, 40)[40%5:]} // continues the cycle? simpler: same cycle shape
	// Actually make test continue seamlessly: positions 40.. of the
	// infinite cycle.
	tst := make(seq.Sequence, 20)
	for i := range tst {
		tst[i] = seq.Item((40 + i) % 5)
	}
	test = []seq.Sequence{tst}

	opt := Options{WindowCap: 10, Omega: 2, TopNs: []int{1, 3}}
	r, err := Evaluate(train, test, oldestCandidate(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != 20 {
		t.Fatalf("events = %d, want 20", r.Events)
	}
	ma1, mi1, _ := r.At(1)
	if ma1 != 1 || mi1 != 1 {
		t.Fatalf("perfect recommender @1 = %v/%v", ma1, mi1)
	}
	ma3, _, _ := r.At(3)
	if ma3 != 1 {
		t.Fatalf("@3 = %v", ma3)
	}
}

func TestEvaluateUselessRecommender(t *testing.T) {
	train := []seq.Sequence{cycle(5, 40)}
	tst := make(seq.Sequence, 20)
	for i := range tst {
		tst[i] = seq.Item((40 + i) % 5)
	}
	// Recommends an item that is never the truth (item 99 not in windows).
	r, err := Evaluate(train, []seq.Sequence{tst}, fixedFactory(99), Options{WindowCap: 10, Omega: 2, TopNs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	ma, mi, _ := r.At(1)
	if ma != 0 || mi != 0 {
		t.Fatalf("useless recommender scored %v/%v", ma, mi)
	}
}

func TestMetricMathMaAPvsMiAP(t *testing.T) {
	// Two users: user A has 4 eligible events all hit; user B has 1
	// eligible event, missed. MaAP@1 = 4/5; MiAP@1 = (1 + 0)/2.
	// Construct with explicit control: user A cycles (oldest-first hits),
	// user B's one repeat is NOT the oldest candidate.
	trainA := cycle(4, 40)
	testA := make(seq.Sequence, 4)
	for i := range testA {
		testA[i] = seq.Item((40 + i) % 4)
	}
	// User B: window {0,1,2,3,...}; craft a test with exactly one eligible
	// repeat that is the NEWEST eligible candidate, so oldest-first misses.
	trainB := seq.Sequence{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	testB := seq.Sequence{6} // gap 4 > Ω=2; oldest candidate is 0 → miss @1
	opt := Options{WindowCap: 10, Omega: 2, TopNs: []int{1}}
	r, err := Evaluate([]seq.Sequence{trainA, trainB}, []seq.Sequence{testA, testB}, oldestCandidate(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != 5 {
		t.Fatalf("events = %d, want 5", r.Events)
	}
	if r.UsersEvaluated != 2 {
		t.Fatalf("users = %d", r.UsersEvaluated)
	}
	ma, mi, _ := r.At(1)
	if math.Abs(ma-0.8) > 1e-12 {
		t.Fatalf("MaAP@1 = %v, want 0.8", ma)
	}
	if math.Abs(mi-0.5) > 1e-12 {
		t.Fatalf("MiAP@1 = %v, want 0.5", mi)
	}
}

func TestEvaluateSkipsIneligibleEvents(t *testing.T) {
	// All repeats are at gap ≤ Ω → zero events.
	train := []seq.Sequence{cycle(2, 30)}
	tst := make(seq.Sequence, 10)
	for i := range tst {
		tst[i] = seq.Item((30 + i) % 2)
	}
	r, err := Evaluate(train, []seq.Sequence{tst}, fixedFactory(0), Options{WindowCap: 10, Omega: 5, TopNs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != 0 || r.UsersEvaluated != 0 {
		t.Fatalf("events=%d users=%d, want 0/0", r.Events, r.UsersEvaluated)
	}
	ma, mi, _ := r.At(1)
	if ma != 0 || mi != 0 {
		t.Fatal("metrics should be zero with no events")
	}
}

func TestEvaluateParallelDeterminism(t *testing.T) {
	// Stochastic recommender keyed by the per-user seed: results must be
	// identical at any parallelism.
	noisy := rec.Factory{Name: "noisy", New: func(seed uint64) rec.Recommender {
		state := seed
		return rec.Func(func(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
			cands := ctx.Window.Candidates(ctx.Omega, nil)
			if len(cands) == 0 {
				return dst
			}
			state = state*6364136223846793005 + 1
			return rec.AppendItems(dst, cands[int(state>>33)%len(cands)])
		})
	}}
	var train, test []seq.Sequence
	for u := 0; u < 8; u++ {
		train = append(train, cycle(4+u%3, 40))
		tst := make(seq.Sequence, 15)
		for i := range tst {
			tst[i] = seq.Item((40 + i) % (4 + u%3))
		}
		test = append(test, tst)
	}
	opt1 := Options{WindowCap: 10, Omega: 1, TopNs: []int{1}, Parallelism: 1, Seed: 9}
	opt8 := opt1
	opt8.Parallelism = 8
	r1, err := Evaluate(train, test, noisy, opt1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Evaluate(train, test, noisy, opt8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MaAP[0] != r8.MaAP[0] || r1.MiAP[0] != r8.MiAP[0] {
		t.Fatalf("parallelism changed results: %v vs %v", r1.MaAP, r8.MaAP)
	}
}

func TestEvaluateValidation(t *testing.T) {
	train := []seq.Sequence{cycle(3, 20)}
	test := []seq.Sequence{cycle(3, 5)}
	bad := []Options{
		{WindowCap: 10, Omega: 10},
		{WindowCap: 10, Omega: -1},
		{WindowCap: 10, TopNs: []int{0}},
		{WindowCap: -5},
	}
	for i, opt := range bad {
		if _, err := Evaluate(train, test, fixedFactory(0), opt); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	if _, err := Evaluate(train, nil, fixedFactory(0), Options{}); err == nil {
		t.Error("mismatched train/test accepted")
	}
}

func TestEvaluateLatencyMeasurement(t *testing.T) {
	train := []seq.Sequence{cycle(5, 40)}
	tst := make(seq.Sequence, 10)
	for i := range tst {
		tst[i] = seq.Item((40 + i) % 5)
	}
	opt := Options{WindowCap: 10, Omega: 2, MeasureLatency: true}
	r, err := Evaluate(train, []seq.Sequence{tst}, oldestCandidate(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recs == 0 {
		t.Fatal("no timed recommendations")
	}
	if r.MeanLatency <= 0 {
		t.Fatalf("MeanLatency = %v", r.MeanLatency)
	}
}

func TestResultAtUnknownN(t *testing.T) {
	r := Result{TopNs: []int{1}, MaAP: []float64{0.5}, MiAP: []float64{0.25}}
	if _, _, ok := r.At(7); ok {
		t.Fatal("At(7) reported ok for an unevaluated N")
	}
	ma, mi, ok := r.At(1)
	if !ok || ma != 0.5 || mi != 0.25 {
		t.Fatalf("At(1) = %v/%v ok=%v", ma, mi, ok)
	}
}

func TestEvaluateAllAndBest(t *testing.T) {
	train := []seq.Sequence{cycle(5, 40)}
	tst := make(seq.Sequence, 10)
	for i := range tst {
		tst[i] = seq.Item((40 + i) % 5)
	}
	test := []seq.Sequence{tst}
	opt := Options{WindowCap: 10, Omega: 2, TopNs: []int{1}}
	rs, err := EvaluateAll(train, test, []rec.Factory{fixedFactory(99), oldestCandidate()}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	best, ok := Best(rs, 1, nil)
	if !ok || best.Method != "oldest" {
		t.Fatalf("Best = %+v", best)
	}
	best, ok = Best(rs, 1, map[string]bool{"oldest": true})
	if !ok || best.Method != "fixed" {
		t.Fatalf("Best with exclusion = %+v", best)
	}
	if _, ok := Best(nil, 1, nil); ok {
		t.Fatal("Best on empty slice returned ok")
	}
	SortByMaAP(rs, 1)
	if rs[0].Method != "oldest" {
		t.Fatal("SortByMaAP order wrong")
	}
}

func TestUserSeedStability(t *testing.T) {
	if userSeed(1, 5) != userSeed(1, 5) {
		t.Fatal("userSeed not deterministic")
	}
	if userSeed(1, 5) == userSeed(1, 6) || userSeed(1, 5) == userSeed(2, 5) {
		t.Fatal("userSeed collisions on adjacent inputs")
	}
}

func TestMRRAndNDCG(t *testing.T) {
	// Perfect recommender: truth always at rank 1 → MRR = nDCG = 1.
	train := []seq.Sequence{cycle(5, 40)}
	tst := make(seq.Sequence, 20)
	for i := range tst {
		tst[i] = seq.Item((40 + i) % 5)
	}
	r, err := Evaluate(train, []seq.Sequence{tst}, oldestCandidate(), Options{WindowCap: 10, Omega: 2, TopNs: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if r.MRR != 1 || r.NDCG != 1 {
		t.Fatalf("perfect recommender MRR=%v NDCG=%v", r.MRR, r.NDCG)
	}
	// Useless recommender: never found → both zero.
	r, err = Evaluate(train, []seq.Sequence{tst}, fixedFactory(99), Options{WindowCap: 10, Omega: 2, TopNs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.MRR != 0 || r.NDCG != 0 {
		t.Fatalf("useless recommender MRR=%v NDCG=%v", r.MRR, r.NDCG)
	}
}

func TestMRRRankTwo(t *testing.T) {
	// The truth is always the second-oldest candidate: swap head of the
	// oldest-first list so truth lands at rank 2.
	rankTwo := rec.Factory{Name: "rank2", New: func(uint64) rec.Recommender {
		return rec.Func(func(ctx *rec.Context, n int, dst []rec.Scored) []rec.Scored {
			cands := ctx.Window.Candidates(ctx.Omega, nil)
			if len(cands) >= 2 {
				cands[0], cands[1] = cands[1], cands[0]
			}
			if n > len(cands) {
				n = len(cands)
			}
			return rec.AppendItems(dst, cands[:n]...)
		})
	}}
	train := []seq.Sequence{cycle(5, 40)}
	tst := make(seq.Sequence, 20)
	for i := range tst {
		tst[i] = seq.Item((40 + i) % 5)
	}
	r, err := Evaluate(train, []seq.Sequence{tst}, rankTwo, Options{WindowCap: 10, Omega: 2, TopNs: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MRR-0.5) > 1e-12 {
		t.Fatalf("MRR = %v, want 0.5", r.MRR)
	}
	want := 1 / math.Log2(3)
	if math.Abs(r.NDCG-want) > 1e-12 {
		t.Fatalf("NDCG = %v, want %v", r.NDCG, want)
	}
}
