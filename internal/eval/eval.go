// Package eval implements the paper's evaluation protocol (§5.1, §5.3):
// each user's test suffix is replayed with the time window warm-started
// from the training prefix; at every *eligible* repeat event (the incoming
// item is in the window but was last consumed more than Ω steps ago) every
// method produces a Top-N list from the window candidates, and a hit is a
// list containing the actually reconsumed item.
//
// Two precision aggregates are reported (Eq. 22-24): MaAP pools hits over
// all events (so users with long sequences weigh more), MiAP averages the
// per-user precision P(u) (so every user weighs the same).
package eval

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"tsppr/internal/faultinject"
	"tsppr/internal/obs"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// Options configures an evaluation run.
type Options struct {
	WindowCap int   // |W| (default 100)
	Omega     int   // Ω (default 10)
	TopNs     []int // list sizes to report (default 1, 5, 10)
	// Parallelism bounds the number of concurrent user replays
	// (default GOMAXPROCS). Results are deterministic regardless.
	Parallelism int
	// MeasureLatency times every Recommend call (Fig. 13). Off by default
	// because the clock reads perturb micro-benchmarks.
	MeasureLatency bool
	// Seed derives the per-user streams handed to stochastic recommenders.
	Seed uint64
	// KeepPerUser retains per-user outcomes on the Result, enabling the
	// paired bootstrap comparison in this package.
	KeepPerUser bool

	// CheckpointPath, when non-empty, makes the evaluation resumable:
	// per-user outcomes are flushed there atomically as users complete,
	// and a later run with the same options skips users already on disk.
	// The file is deleted when the evaluation completes uninterrupted.
	// Because each user's replay is deterministic in (Seed, user), a
	// resumed run reproduces the uninterrupted result bit for bit.
	CheckpointPath string
	// CheckpointEvery is how many newly completed users trigger a flush
	// (default 64). Lower values lose less work to a kill; higher values
	// write less often.
	CheckpointEvery int

	// Metrics, when non-nil, receives a per-user replay latency
	// histogram rrc_eval_user_seconds{method="<factory name>"}. Nil
	// records nothing.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.WindowCap == 0 {
		o.WindowCap = 100
	}
	if len(o.TopNs) == 0 {
		o.TopNs = []int{1, 5, 10}
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64
	}
	return o
}

func (o Options) validate() error {
	switch {
	case o.WindowCap <= 0:
		return fmt.Errorf("eval: WindowCap %d <= 0", o.WindowCap)
	case o.Omega < 0 || o.Omega >= o.WindowCap:
		return fmt.Errorf("eval: Omega %d out of [0,%d)", o.Omega, o.WindowCap)
	case o.Parallelism < 0:
		return fmt.Errorf("eval: Parallelism %d < 0", o.Parallelism)
	}
	for _, n := range o.TopNs {
		if n <= 0 {
			return fmt.Errorf("eval: TopN %d <= 0", n)
		}
	}
	return nil
}

// Result reports one method's accuracy (and optionally latency) on one
// dataset.
type Result struct {
	Method string
	TopNs  []int
	MaAP   []float64 // parallel to TopNs
	MiAP   []float64

	// MRR is the mean reciprocal rank of the reconsumed item in the
	// longest generated list (0 when absent); NDCG is the mean normalized
	// DCG at max(TopNs). Both go beyond the paper's MaAP/MiAP.
	MRR  float64
	NDCG float64

	Events         int // total eligible repeat events
	UsersEvaluated int // users contributing at least one event
	UsersDone      int // users actually replayed (== all users unless Interrupted)

	// Interrupted is set when the context was cancelled (or a fault
	// injected at "eval.user" fired) before every user was replayed: the
	// aggregates cover only the UsersDone completed users, and — when
	// checkpointing is on — the completed work is on disk for resumption.
	Interrupted bool

	// Latency of a single online recommendation (populated only when
	// Options.MeasureLatency is set).
	MeanLatency time.Duration
	Recs        int // number of timed Recommend calls

	// PerUser holds each user's outcome (populated only when
	// Options.KeepPerUser is set); index = user id.
	PerUser []UserOutcome
}

// UserOutcome is one user's replay outcome: eligible events and hit counts
// parallel to Result.TopNs.
type UserOutcome struct {
	Events int
	Hits   []int
}

// At returns (MaAP@n, MiAP@n) in comma-ok form: ok is false (with zero
// values) when n was not among the evaluated TopNs.
func (r Result) At(n int) (maap, miap float64, ok bool) {
	for i, tn := range r.TopNs {
		if tn == n {
			return r.MaAP[i], r.MiAP[i], true
		}
	}
	return 0, 0, false
}

// userStats accumulates one user's replay outcome.
type userStats struct {
	events  int
	hits    []int // parallel to TopNs
	rrSum   float64
	dcgSum  float64
	latency time.Duration
	recs    int
}

// Evaluate replays every user's test suffix against the factory's
// recommenders and aggregates precision.
func Evaluate(train, test []seq.Sequence, f rec.Factory, opt Options) (Result, error) {
	return EvaluateContext(context.Background(), train, test, f, opt)
}

// EvaluateContext is Evaluate with cancellation and (optionally, via
// Options.CheckpointPath) resumption. On cancellation the replay stops
// scheduling users, flushes completed work to the checkpoint, and returns
// a partial Result with Interrupted set and a nil error: per-user results
// are order-independent, so a resumed run finishes the remaining users
// and reproduces the uninterrupted aggregates exactly.
func EvaluateContext(ctx context.Context, train, test []seq.Sequence, f rec.Factory, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	if len(train) != len(test) {
		return Result{}, fmt.Errorf("eval: train/test user counts differ (%d vs %d)", len(train), len(test))
	}
	maxN := 0
	for _, n := range opt.TopNs {
		if n > maxN {
			maxN = n
		}
	}

	stats := make([]userStats, len(test))
	done := make([]bool, len(test))
	var ck *progress
	if opt.CheckpointPath != "" {
		var err error
		ck, err = openProgress(opt.CheckpointPath, progressKey(f.Name, len(test), opt))
		if err != nil {
			return Result{}, err
		}
		for u, st := range ck.loaded {
			stats[u] = st
			done[u] = true
		}
	}
	pending := make([]int, 0, len(test))
	for u := range test {
		if !done[u] {
			pending = append(pending, u)
		}
	}

	// evalCtx lets an injected fault at "eval.user" interrupt the replay
	// exactly like an external cancellation would.
	evalCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex // guards stats/done for checkpoint snapshots, and flush bookkeeping
		sinceSave int
		saveErr   error
	)
	jobs := make(chan int)
	workers := opt.Parallelism
	if workers > len(pending) {
		workers = len(pending)
	}
	var userSec *obs.Histogram
	if opt.Metrics != nil {
		opt.Metrics.Help("rrc_eval_user_seconds", "Per-user evaluation replay latency by method.")
		userSec = opt.Metrics.Histogram(
			fmt.Sprintf("rrc_eval_user_seconds{method=%q}", f.Name), obs.LatencyBuckets)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				if evalCtx.Err() != nil {
					continue // drain the queue without doing work
				}
				if err := faultinject.Do("eval.user"); err != nil {
					cancel()
					continue
				}
				var began time.Time
				if userSec != nil {
					began = time.Now()
				}
				st := replayUser(u, train[u], test[u], f, opt, maxN)
				if userSec != nil {
					userSec.ObserveDuration(time.Since(began))
				}
				mu.Lock()
				stats[u] = st
				done[u] = true
				sinceSave++
				if ck != nil && sinceSave >= opt.CheckpointEvery {
					if err := ck.save(stats, done); err != nil && saveErr == nil {
						saveErr = err
						cancel()
					}
					sinceSave = 0
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, u := range pending {
		select {
		case jobs <- u:
		case <-evalCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if saveErr != nil {
		return Result{}, fmt.Errorf("eval: checkpoint: %w", saveErr)
	}
	interrupted := evalCtx.Err() != nil

	if interrupted {
		if ck != nil && sinceSave > 0 {
			if err := ck.save(stats, done); err != nil {
				return Result{}, fmt.Errorf("eval: checkpoint: %w", err)
			}
		}
		res := aggregate(f.Name, stats, done, opt)
		res.Interrupted = true
		return res, nil
	}
	res := aggregate(f.Name, stats, done, opt)
	if ck != nil {
		// Complete: the checkpoint has served its purpose. Removing it
		// keeps a later, differently-parameterized run from tripping over
		// a stale file.
		_ = os.Remove(opt.CheckpointPath)
	}
	return res, nil
}

// aggregate folds completed per-user stats into the reported Result.
// Iteration is in user-index order, so the floating-point accumulation —
// and therefore the reported metrics — are independent of replay
// scheduling and of how work was split across interrupted runs.
func aggregate(method string, stats []userStats, done []bool, opt Options) Result {
	res := Result{
		Method: method,
		TopNs:  append([]int(nil), opt.TopNs...),
		MaAP:   make([]float64, len(opt.TopNs)),
		MiAP:   make([]float64, len(opt.TopNs)),
	}
	totalHits := make([]int, len(opt.TopNs))
	var totalLatency time.Duration
	for u, st := range stats {
		if !done[u] {
			continue
		}
		res.UsersDone++
		if st.events == 0 {
			continue
		}
		res.Events += st.events
		res.UsersEvaluated++
		res.Recs += st.recs
		res.MRR += st.rrSum
		res.NDCG += st.dcgSum
		totalLatency += st.latency
		for i, h := range st.hits {
			totalHits[i] += h
			res.MiAP[i] += float64(h) / float64(st.events)
		}
	}
	if res.Events > 0 {
		for i := range res.MaAP {
			res.MaAP[i] = float64(totalHits[i]) / float64(res.Events)
		}
		res.MRR /= float64(res.Events)
		res.NDCG /= float64(res.Events)
	}
	if res.UsersEvaluated > 0 {
		for i := range res.MiAP {
			res.MiAP[i] /= float64(res.UsersEvaluated)
		}
	}
	if res.Recs > 0 {
		res.MeanLatency = totalLatency / time.Duration(res.Recs)
	}
	if opt.KeepPerUser {
		res.PerUser = make([]UserOutcome, len(stats))
		for u, st := range stats {
			if done[u] {
				res.PerUser[u] = UserOutcome{Events: st.events, Hits: st.hits}
			}
		}
	}
	return res
}

// userSeed derives a deterministic per-user stream seed so results do not
// depend on evaluation parallelism or user scheduling order.
func userSeed(base uint64, u int) uint64 {
	x := base ^ (uint64(u)+1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func replayUser(u int, train, test seq.Sequence, f rec.Factory, opt Options, maxN int) userStats {
	st := userStats{hits: make([]int, len(opt.TopNs))}
	r := f.New(userSeed(opt.Seed, u))

	// History grows as the test suffix is consumed; pre-size it once.
	history := make(seq.Sequence, len(train), len(train)+len(test))
	copy(history, train)

	w := seq.NewWindow(opt.WindowCap)
	for _, v := range train {
		w.Push(v)
	}
	ctx := rec.Context{User: u, Window: w, Omega: opt.Omega}
	var list []rec.Scored
	for _, v := range test {
		if w.Full() {
			gap, ok := w.Gap(v)
			if ok && gap > opt.Omega {
				ctx.History = history
				st.events++
				var start time.Time
				if opt.MeasureLatency {
					start = time.Now()
				}
				list = r.Recommend(&ctx, maxN, list[:0])
				if opt.MeasureLatency {
					st.latency += time.Since(start)
					st.recs++
				} else {
					st.recs++
				}
				idx := -1
				for i, s := range list {
					if s.Item == v {
						idx = i
						break
					}
				}
				if idx >= 0 {
					for i, n := range opt.TopNs {
						if idx < n {
							st.hits[i]++
						}
					}
					st.rrSum += 1 / float64(idx+1)
					// Single relevant item: ideal DCG is 1, so nDCG at
					// this event is just the discounted gain at its rank.
					st.dcgSum += 1 / math.Log2(float64(idx+2))
				}
			}
		}
		w.Push(v)
		history = append(history, v)
	}
	return st
}

// EvaluateAll runs Evaluate for every factory, in order.
func EvaluateAll(train, test []seq.Sequence, fs []rec.Factory, opt Options) ([]Result, error) {
	return EvaluateAllContext(context.Background(), train, test, fs, opt)
}

// EvaluateAllContext runs EvaluateContext for every factory, in order,
// stopping at the first interrupted (or failed) evaluation so a cancelled
// sweep never reports methods evaluated on disjoint user subsets.
func EvaluateAllContext(ctx context.Context, train, test []seq.Sequence, fs []rec.Factory, opt Options) ([]Result, error) {
	out := make([]Result, 0, len(fs))
	for _, f := range fs {
		r, err := EvaluateContext(ctx, train, test, f, opt)
		if err != nil {
			return nil, fmt.Errorf("eval: method %s: %w", f.Name, err)
		}
		out = append(out, r)
		if r.Interrupted {
			if cause := context.Cause(ctx); cause != nil {
				return out, fmt.Errorf("eval: method %s interrupted: %w", f.Name, cause)
			}
			return out, fmt.Errorf("eval: method %s interrupted", f.Name)
		}
	}
	return out, nil
}

// Best returns the result with the highest MaAP at the given N among rs,
// excluding any method named in exclude. Used for the paper's Table 3
// ("best of all baselines").
func Best(rs []Result, n int, exclude map[string]bool) (Result, bool) {
	bestIdx, bestVal := -1, -1.0
	for i, r := range rs {
		if exclude[r.Method] {
			continue
		}
		ma, _, ok := r.At(n)
		if !ok {
			continue
		}
		if ma > bestVal {
			bestVal, bestIdx = ma, i
		}
	}
	if bestIdx < 0 {
		return Result{}, false
	}
	return rs[bestIdx], true
}

// SortByMaAP orders results descending by MaAP at the given N (stable).
func SortByMaAP(rs []Result, n int) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, _, _ := rs[i].At(n)
		b, _, _ := rs[j].At(n)
		return a > b
	})
}
