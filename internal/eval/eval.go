// Package eval implements the paper's evaluation protocol (§5.1, §5.3):
// each user's test suffix is replayed with the time window warm-started
// from the training prefix; at every *eligible* repeat event (the incoming
// item is in the window but was last consumed more than Ω steps ago) every
// method produces a Top-N list from the window candidates, and a hit is a
// list containing the actually reconsumed item.
//
// Two precision aggregates are reported (Eq. 22-24): MaAP pools hits over
// all events (so users with long sequences weigh more), MiAP averages the
// per-user precision P(u) (so every user weighs the same).
package eval

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// Options configures an evaluation run.
type Options struct {
	WindowCap int   // |W| (default 100)
	Omega     int   // Ω (default 10)
	TopNs     []int // list sizes to report (default 1, 5, 10)
	// Parallelism bounds the number of concurrent user replays
	// (default GOMAXPROCS). Results are deterministic regardless.
	Parallelism int
	// MeasureLatency times every Recommend call (Fig. 13). Off by default
	// because the clock reads perturb micro-benchmarks.
	MeasureLatency bool
	// Seed derives the per-user streams handed to stochastic recommenders.
	Seed uint64
	// KeepPerUser retains per-user outcomes on the Result, enabling the
	// paired bootstrap comparison in this package.
	KeepPerUser bool
}

func (o Options) withDefaults() Options {
	if o.WindowCap == 0 {
		o.WindowCap = 100
	}
	if len(o.TopNs) == 0 {
		o.TopNs = []int{1, 5, 10}
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	switch {
	case o.WindowCap <= 0:
		return fmt.Errorf("eval: WindowCap %d <= 0", o.WindowCap)
	case o.Omega < 0 || o.Omega >= o.WindowCap:
		return fmt.Errorf("eval: Omega %d out of [0,%d)", o.Omega, o.WindowCap)
	case o.Parallelism < 0:
		return fmt.Errorf("eval: Parallelism %d < 0", o.Parallelism)
	}
	for _, n := range o.TopNs {
		if n <= 0 {
			return fmt.Errorf("eval: TopN %d <= 0", n)
		}
	}
	return nil
}

// Result reports one method's accuracy (and optionally latency) on one
// dataset.
type Result struct {
	Method string
	TopNs  []int
	MaAP   []float64 // parallel to TopNs
	MiAP   []float64

	// MRR is the mean reciprocal rank of the reconsumed item in the
	// longest generated list (0 when absent); NDCG is the mean normalized
	// DCG at max(TopNs). Both go beyond the paper's MaAP/MiAP.
	MRR  float64
	NDCG float64

	Events         int // total eligible repeat events
	UsersEvaluated int // users contributing at least one event

	// Latency of a single online recommendation (populated only when
	// Options.MeasureLatency is set).
	MeanLatency time.Duration
	Recs        int // number of timed Recommend calls

	// PerUser holds each user's outcome (populated only when
	// Options.KeepPerUser is set); index = user id.
	PerUser []UserOutcome
}

// UserOutcome is one user's replay outcome: eligible events and hit counts
// parallel to Result.TopNs.
type UserOutcome struct {
	Events int
	Hits   []int
}

// At returns (MaAP@n, MiAP@n). It panics if n was not evaluated.
func (r Result) At(n int) (maap, miap float64) {
	for i, tn := range r.TopNs {
		if tn == n {
			return r.MaAP[i], r.MiAP[i]
		}
	}
	panic(fmt.Sprintf("eval: Top-%d was not evaluated", n))
}

// userStats accumulates one user's replay outcome.
type userStats struct {
	events  int
	hits    []int // parallel to TopNs
	rrSum   float64
	dcgSum  float64
	latency time.Duration
	recs    int
}

// Evaluate replays every user's test suffix against the factory's
// recommenders and aggregates precision.
func Evaluate(train, test []seq.Sequence, f rec.Factory, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	if len(train) != len(test) {
		return Result{}, fmt.Errorf("eval: train/test user counts differ (%d vs %d)", len(train), len(test))
	}
	maxN := 0
	for _, n := range opt.TopNs {
		if n > maxN {
			maxN = n
		}
	}

	stats := make([]userStats, len(test))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Parallelism)
	for u := range test {
		wg.Add(1)
		sem <- struct{}{}
		go func(u int) {
			defer wg.Done()
			defer func() { <-sem }()
			stats[u] = replayUser(u, train[u], test[u], f, opt, maxN)
		}(u)
	}
	wg.Wait()

	res := Result{
		Method: f.Name,
		TopNs:  append([]int(nil), opt.TopNs...),
		MaAP:   make([]float64, len(opt.TopNs)),
		MiAP:   make([]float64, len(opt.TopNs)),
	}
	totalHits := make([]int, len(opt.TopNs))
	var totalLatency time.Duration
	for _, st := range stats {
		if st.events == 0 {
			continue
		}
		res.Events += st.events
		res.UsersEvaluated++
		res.Recs += st.recs
		res.MRR += st.rrSum
		res.NDCG += st.dcgSum
		totalLatency += st.latency
		for i, h := range st.hits {
			totalHits[i] += h
			res.MiAP[i] += float64(h) / float64(st.events)
		}
	}
	if res.Events > 0 {
		for i := range res.MaAP {
			res.MaAP[i] = float64(totalHits[i]) / float64(res.Events)
		}
		res.MRR /= float64(res.Events)
		res.NDCG /= float64(res.Events)
	}
	if res.UsersEvaluated > 0 {
		for i := range res.MiAP {
			res.MiAP[i] /= float64(res.UsersEvaluated)
		}
	}
	if res.Recs > 0 {
		res.MeanLatency = totalLatency / time.Duration(res.Recs)
	}
	if opt.KeepPerUser {
		res.PerUser = make([]UserOutcome, len(stats))
		for u, st := range stats {
			res.PerUser[u] = UserOutcome{Events: st.events, Hits: st.hits}
		}
	}
	return res, nil
}

// userSeed derives a deterministic per-user stream seed so results do not
// depend on evaluation parallelism or user scheduling order.
func userSeed(base uint64, u int) uint64 {
	x := base ^ (uint64(u)+1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func replayUser(u int, train, test seq.Sequence, f rec.Factory, opt Options, maxN int) userStats {
	st := userStats{hits: make([]int, len(opt.TopNs))}
	r := f.New(userSeed(opt.Seed, u))

	// History grows as the test suffix is consumed; pre-size it once.
	history := make(seq.Sequence, len(train), len(train)+len(test))
	copy(history, train)

	w := seq.NewWindow(opt.WindowCap)
	for _, v := range train {
		w.Push(v)
	}
	ctx := rec.Context{User: u, Window: w, Omega: opt.Omega}
	var list []seq.Item
	for _, v := range test {
		if w.Full() {
			gap, ok := w.Gap(v)
			if ok && gap > opt.Omega {
				ctx.History = history
				st.events++
				var start time.Time
				if opt.MeasureLatency {
					start = time.Now()
				}
				list = r.Recommend(&ctx, maxN, list[:0])
				if opt.MeasureLatency {
					st.latency += time.Since(start)
					st.recs++
				} else {
					st.recs++
				}
				idx := -1
				for i, item := range list {
					if item == v {
						idx = i
						break
					}
				}
				if idx >= 0 {
					for i, n := range opt.TopNs {
						if idx < n {
							st.hits[i]++
						}
					}
					st.rrSum += 1 / float64(idx+1)
					// Single relevant item: ideal DCG is 1, so nDCG at
					// this event is just the discounted gain at its rank.
					st.dcgSum += 1 / math.Log2(float64(idx+2))
				}
			}
		}
		w.Push(v)
		history = append(history, v)
	}
	return st
}

// EvaluateAll runs Evaluate for every factory, in order.
func EvaluateAll(train, test []seq.Sequence, fs []rec.Factory, opt Options) ([]Result, error) {
	out := make([]Result, 0, len(fs))
	for _, f := range fs {
		r, err := Evaluate(train, test, f, opt)
		if err != nil {
			return nil, fmt.Errorf("eval: method %s: %w", f.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Best returns the result with the highest MaAP at the given N among rs,
// excluding any method named in exclude. Used for the paper's Table 3
// ("best of all baselines").
func Best(rs []Result, n int, exclude map[string]bool) (Result, bool) {
	bestIdx, bestVal := -1, -1.0
	for i, r := range rs {
		if exclude[r.Method] {
			continue
		}
		ma, _ := r.At(n)
		if ma > bestVal {
			bestVal, bestIdx = ma, i
		}
	}
	if bestIdx < 0 {
		return Result{}, false
	}
	return rs[bestIdx], true
}

// SortByMaAP orders results descending by MaAP at the given N (stable).
func SortByMaAP(rs []Result, n int) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, _ := rs[i].At(n)
		b, _ := rs[j].At(n)
		return a > b
	})
}
