package eval

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"time"

	"tsppr/internal/atomicio"
)

// The eval checkpoint is JSON lines: a key line binding the file to one
// exact evaluation (method, user universe, and every option that changes
// per-user outcomes), then one record per completed user. Writes replace
// the whole file atomically, so a kill at any moment leaves either the
// previous or the next consistent snapshot — never a torn one. Floats
// survive the JSON round trip exactly (Go marshals the shortest
// representation that parses back to the same float64), which is what
// makes resumed aggregates byte-identical to uninterrupted ones.

// progressFormat versions the checkpoint layout.
const progressFormat = "tsppr-evalckpt-v1"

// key binds a checkpoint to one evaluation configuration; any mismatch on
// resume is an error rather than a silent wrong-answer merge.
type key struct {
	Format         string `json:"format"`
	Method         string `json:"method"`
	NumUsers       int    `json:"numUsers"`
	Seed           uint64 `json:"seed"`
	WindowCap      int    `json:"windowCap"`
	Omega          int    `json:"omega"`
	TopNs          []int  `json:"topNs"`
	MeasureLatency bool   `json:"measureLatency"`
}

func progressKey(method string, numUsers int, opt Options) key {
	return key{
		Format:         progressFormat,
		Method:         method,
		NumUsers:       numUsers,
		Seed:           opt.Seed,
		WindowCap:      opt.WindowCap,
		Omega:          opt.Omega,
		TopNs:          opt.TopNs,
		MeasureLatency: opt.MeasureLatency,
	}
}

// userRecord is one completed user's replay outcome on disk.
type userRecord struct {
	User      int     `json:"u"`
	Events    int     `json:"e"`
	Recs      int     `json:"n"`
	Hits      []int   `json:"h"`
	RRSum     float64 `json:"rr"`
	DCGSum    float64 `json:"dcg"`
	LatencyNs int64   `json:"lat"`
}

// progress is the live handle on a checkpoint file.
type progress struct {
	path   string
	key    key
	loaded map[int]userStats // completed users found on disk at open
}

// openProgress loads the checkpoint at path if it exists, verifying that
// it belongs to the same evaluation. A missing file is a fresh start.
func openProgress(path string, k key) (*progress, error) {
	p := &progress{path: path, key: k, loaded: map[int]userStats{}}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return p, nil
	}
	if err != nil {
		return nil, fmt.Errorf("eval: checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("eval: checkpoint %s: empty or unreadable", path)
	}
	var have key
	if err := json.Unmarshal(sc.Bytes(), &have); err != nil {
		return nil, fmt.Errorf("eval: checkpoint %s: bad key line: %w", path, err)
	}
	wantJSON, _ := json.Marshal(k)
	haveJSON, _ := json.Marshal(have)
	if string(wantJSON) != string(haveJSON) {
		return nil, fmt.Errorf("eval: checkpoint %s belongs to a different run (have %s, want %s); delete it to start over",
			path, haveJSON, wantJSON)
	}
	line := 1
	for sc.Scan() {
		line++
		var rec userRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("eval: checkpoint %s: line %d: %w", path, line, err)
		}
		if rec.User < 0 || rec.User >= k.NumUsers || len(rec.Hits) != len(k.TopNs) {
			return nil, fmt.Errorf("eval: checkpoint %s: line %d: record out of shape", path, line)
		}
		p.loaded[rec.User] = userStats{
			events:  rec.Events,
			recs:    rec.Recs,
			hits:    rec.Hits,
			rrSum:   rec.RRSum,
			dcgSum:  rec.DCGSum,
			latency: time.Duration(rec.LatencyNs),
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eval: checkpoint %s: %w", path, err)
	}
	return p, nil
}

// save atomically replaces the checkpoint with every completed user. The
// write passes through the "eval.checkpoint.write" fault-injection point.
func (p *progress) save(stats []userStats, done []bool) error {
	return atomicio.WriteFile(p.path, "eval.checkpoint.write", func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		if err := enc.Encode(p.key); err != nil {
			return err
		}
		for u := range stats {
			if !done[u] {
				continue
			}
			st := &stats[u]
			rec := userRecord{
				User:      u,
				Events:    st.events,
				Recs:      st.recs,
				Hits:      st.hits,
				RRSum:     st.rrSum,
				DCGSum:    st.dcgSum,
				LatencyNs: int64(st.latency),
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
}
