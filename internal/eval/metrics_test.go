package eval

import (
	"testing"

	"tsppr/internal/obs"
	"tsppr/internal/seq"
)

// TestEvalRecordsPerUserLatency checks that an instrumented evaluation
// observes exactly one rrc_eval_user_seconds sample per evaluated user,
// labeled with the factory's method name.
func TestEvalRecordsPerUserLatency(t *testing.T) {
	const users = 5
	train := make([]seq.Sequence, users)
	test := make([]seq.Sequence, users)
	for u := range train {
		train[u] = cycle(5, 40)
		test[u] = cycle(5, 20)
	}
	reg := obs.NewRegistry()
	opt := Options{WindowCap: 10, Omega: 2, TopNs: []int{1}, Metrics: reg}
	if _, err := Evaluate(train, test, oldestCandidate(), opt); err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram(`rrc_eval_user_seconds{method="oldest"}`, obs.LatencyBuckets)
	if got := h.Count(); got != users {
		t.Fatalf("latency observations = %d, want %d", got, users)
	}
	// Uninstrumented runs must not require a registry.
	opt.Metrics = nil
	if _, err := Evaluate(train, test, oldestCandidate(), opt); err != nil {
		t.Fatal(err)
	}
}
