package eval

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tsppr/internal/faultinject"
	"tsppr/internal/rec"
	"tsppr/internal/seq"
)

// resumeWorkload builds a multi-user workload with eligible repeat events
// for every user.
func resumeWorkload(users int) (train, test []seq.Sequence) {
	for u := 0; u < users; u++ {
		period := 5 + u%3
		s := make(seq.Sequence, 60)
		for i := range s {
			s[i] = seq.Item(i % period)
		}
		train = append(train, s[:40])
		test = append(test, s[40:])
	}
	return train, test
}

// oldestFirst recommends the window's candidates oldest first — a
// deterministic, moderately accurate recommender.
func oldestFirst() rec.Factory {
	return rec.Factory{Name: "oldest", New: func(uint64) rec.Recommender {
		return rec.Func(func(ctx *rec.Context, n int, out []rec.Scored) []rec.Scored {
			cands := ctx.Window.Candidates(ctx.Omega, nil)
			if len(cands) > n {
				cands = cands[:n]
			}
			return rec.AppendItems(out, cands...)
		})
	}}
}

// metricsString flattens every reported aggregate for byte-identity
// comparison.
func metricsString(r Result) string {
	return fmt.Sprintf("%s %v %v %v %v %v %d %d %d",
		r.Method, r.TopNs, r.MaAP, r.MiAP, r.MRR, r.NDCG, r.Events, r.UsersEvaluated, r.Recs)
}

func TestEvaluateContextCancelledUpfront(t *testing.T) {
	train, test := resumeWorkload(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := EvaluateContext(ctx, train, test, oldestFirst(), Options{WindowCap: 10, Omega: 2, TopNs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Interrupted {
		t.Fatal("pre-cancelled context not reported as interrupted")
	}
	if r.UsersDone != 0 {
		t.Fatalf("UsersDone = %d on a pre-cancelled run", r.UsersDone)
	}
}

// TestEvaluateInterruptAndResume is the paper-pipeline acceptance path: an
// evaluation interrupted at roughly half the users and resumed from its
// checkpoint must reproduce the uninterrupted metrics byte for byte.
func TestEvaluateInterruptAndResume(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	const users = 24
	train, test := resumeWorkload(users)
	opt := Options{WindowCap: 10, Omega: 2, TopNs: []int{1, 5}, Seed: 99, Parallelism: 4}

	ref, err := Evaluate(train, test, oldestFirst(), opt)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "eval.ckpt")
	opt.CheckpointPath = ckpt
	opt.CheckpointEvery = 1 // flush every user so the kill loses nothing

	// Interrupt at ~50% of users via the eval.user fault point.
	faultinject.Arm("eval.user", faultinject.Plan{Mode: faultinject.Error, After: users / 2, Count: 1})
	partial, err := EvaluateContext(context.Background(), train, test, oldestFirst(), opt)
	faultinject.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("injected fault did not interrupt the evaluation")
	}
	if partial.UsersDone == 0 || partial.UsersDone >= users {
		t.Fatalf("UsersDone = %d, want a strict partial of %d", partial.UsersDone, users)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}

	resumed, err := EvaluateContext(context.Background(), train, test, oldestFirst(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Interrupted {
		t.Fatal("resumed run still interrupted")
	}
	if got, want := metricsString(resumed), metricsString(ref); got != want {
		t.Fatalf("resumed metrics differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived a completed run (err=%v)", err)
	}
}

func TestEvaluateCheckpointKeyMismatch(t *testing.T) {
	train, test := resumeWorkload(6)
	ckpt := filepath.Join(t.TempDir(), "eval.ckpt")
	opt := Options{WindowCap: 10, Omega: 2, TopNs: []int{1}, Seed: 1, CheckpointPath: ckpt, CheckpointEvery: 1}

	// Interrupt once so a checkpoint exists.
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Arm("eval.user", faultinject.Plan{Mode: faultinject.Error, After: 2, Count: 1})
	if _, err := EvaluateContext(context.Background(), train, test, oldestFirst(), opt); err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()

	// A different seed must refuse the stale file loudly.
	opt.Seed = 2
	if _, err := EvaluateContext(context.Background(), train, test, oldestFirst(), opt); err == nil {
		t.Fatal("checkpoint from a different run accepted")
	}
}

func TestEvaluateResumeKeepsPerUser(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	train, test := resumeWorkload(10)
	opt := Options{WindowCap: 10, Omega: 2, TopNs: []int{1}, Seed: 3, KeepPerUser: true}

	ref, err := Evaluate(train, test, oldestFirst(), opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.CheckpointPath = filepath.Join(t.TempDir(), "eval.ckpt")
	opt.CheckpointEvery = 1
	faultinject.Arm("eval.user", faultinject.Plan{Mode: faultinject.Error, After: 4, Count: 1})
	if _, err := EvaluateContext(context.Background(), train, test, oldestFirst(), opt); err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	resumed, err := EvaluateContext(context.Background(), train, test, oldestFirst(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.PerUser) != len(ref.PerUser) {
		t.Fatalf("PerUser length %d vs %d", len(resumed.PerUser), len(ref.PerUser))
	}
	for u := range ref.PerUser {
		if ref.PerUser[u].Events != resumed.PerUser[u].Events {
			t.Fatalf("user %d events %d vs %d", u, resumed.PerUser[u].Events, ref.PerUser[u].Events)
		}
		for i := range ref.PerUser[u].Hits {
			if ref.PerUser[u].Hits[i] != resumed.PerUser[u].Hits[i] {
				t.Fatalf("user %d hits differ", u)
			}
		}
	}
}
