package eval

import (
	"fmt"

	"tsppr/internal/rngutil"
)

// Comparison reports a user-level paired bootstrap between two methods
// evaluated on the same split with Options.KeepPerUser. All slices are
// parallel to TopNs. Delta is method A minus method B on the full sample;
// the confidence interval and p-value come from resampling users with
// replacement (a cluster bootstrap — events within a user are dependent,
// so resampling events would understate the variance).
type Comparison struct {
	TopNs []int

	DeltaMaAP  []float64 // observed MaAP(A) − MaAP(B)
	CILowMaAP  []float64 // 2.5% bootstrap quantile of the delta
	CIHighMaAP []float64 // 97.5% bootstrap quantile
	PValueMaAP []float64 // two-sided sign-flip p-value of the delta

	DeltaMiAP  []float64
	CILowMiAP  []float64
	CIHighMiAP []float64
	PValueMiAP []float64

	Iters int
}

// SignificantMaAP reports whether the MaAP delta at TopNs[i] excludes zero
// at the 95% level.
func (c Comparison) SignificantMaAP(i int) bool {
	return c.CILowMaAP[i] > 0 || c.CIHighMaAP[i] < 0
}

// PairedBootstrap compares two Results obtained from the *same* evaluation
// split with KeepPerUser enabled. iters is the number of bootstrap
// resamples (default 2000).
func PairedBootstrap(a, b Result, iters int, seed uint64) (Comparison, error) {
	if iters <= 0 {
		iters = 2000
	}
	if len(a.PerUser) == 0 || len(b.PerUser) == 0 {
		return Comparison{}, fmt.Errorf("eval: PairedBootstrap requires KeepPerUser results")
	}
	if len(a.PerUser) != len(b.PerUser) {
		return Comparison{}, fmt.Errorf("eval: user counts differ (%d vs %d)", len(a.PerUser), len(b.PerUser))
	}
	if len(a.TopNs) != len(b.TopNs) {
		return Comparison{}, fmt.Errorf("eval: TopNs differ")
	}
	for i := range a.TopNs {
		if a.TopNs[i] != b.TopNs[i] {
			return Comparison{}, fmt.Errorf("eval: TopNs differ at %d", i)
		}
	}
	// Paired evaluation must agree on the event population.
	for u := range a.PerUser {
		if a.PerUser[u].Events != b.PerUser[u].Events {
			return Comparison{}, fmt.Errorf("eval: user %d event counts differ (%d vs %d) — results not paired",
				u, a.PerUser[u].Events, b.PerUser[u].Events)
		}
	}

	nTop := len(a.TopNs)
	c := Comparison{
		TopNs:      append([]int(nil), a.TopNs...),
		DeltaMaAP:  make([]float64, nTop),
		CILowMaAP:  make([]float64, nTop),
		CIHighMaAP: make([]float64, nTop),
		PValueMaAP: make([]float64, nTop),
		DeltaMiAP:  make([]float64, nTop),
		CILowMiAP:  make([]float64, nTop),
		CIHighMiAP: make([]float64, nTop),
		PValueMiAP: make([]float64, nTop),
		Iters:      iters,
	}

	// Users with at least one event, the resampling population.
	var active []int
	for u := range a.PerUser {
		if a.PerUser[u].Events > 0 {
			active = append(active, u)
		}
	}
	if len(active) == 0 {
		return Comparison{}, fmt.Errorf("eval: no users with events")
	}

	// metric computes (MaAP, MiAP) deltas over a user multiset.
	metric := func(users []int, top int) (dMa, dMi float64) {
		eventsTot, hitsA, hitsB := 0, 0, 0
		miA, miB := 0.0, 0.0
		for _, u := range users {
			oa, ob := a.PerUser[u], b.PerUser[u]
			eventsTot += oa.Events
			hitsA += oa.Hits[top]
			hitsB += ob.Hits[top]
			miA += float64(oa.Hits[top]) / float64(oa.Events)
			miB += float64(ob.Hits[top]) / float64(ob.Events)
		}
		n := float64(len(users))
		return float64(hitsA-hitsB) / float64(eventsTot), (miA - miB) / n
	}

	for top := 0; top < nTop; top++ {
		c.DeltaMaAP[top], c.DeltaMiAP[top] = metric(active, top)
	}

	rng := rngutil.New(seed + 0xb007)
	sampleMa := make([][]float64, nTop)
	sampleMi := make([][]float64, nTop)
	for top := range sampleMa {
		sampleMa[top] = make([]float64, iters)
		sampleMi[top] = make([]float64, iters)
	}
	resample := make([]int, len(active))
	for it := 0; it < iters; it++ {
		for i := range resample {
			resample[i] = active[rng.Intn(len(active))]
		}
		for top := 0; top < nTop; top++ {
			sampleMa[top][it], sampleMi[top][it] = metric(resample, top)
		}
	}
	for top := 0; top < nTop; top++ {
		c.CILowMaAP[top], c.CIHighMaAP[top] = quantiles(sampleMa[top], 0.025, 0.975)
		c.CILowMiAP[top], c.CIHighMiAP[top] = quantiles(sampleMi[top], 0.025, 0.975)
		c.PValueMaAP[top] = signFlipP(sampleMa[top], c.DeltaMaAP[top])
		c.PValueMiAP[top] = signFlipP(sampleMi[top], c.DeltaMiAP[top])
	}
	return c, nil
}

// quantiles returns the lo and hi empirical quantiles of xs (xs is
// reordered in place).
func quantiles(xs []float64, lo, hi float64) (float64, float64) {
	sorted := append([]float64(nil), xs...)
	insertionSortF(sorted)
	at := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	return at(lo), at(hi)
}

// insertionSortF avoids pulling sort.Float64s' interface overhead into the
// bootstrap hot path for the modest iteration counts used here.
func insertionSortF(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// signFlipP estimates a two-sided p-value for "delta = 0" as the fraction
// of bootstrap samples on the opposite side of zero from the observed
// delta, doubled and clamped into (0, 1].
func signFlipP(samples []float64, delta float64) float64 {
	if delta == 0 {
		return 1
	}
	opposite := 0
	for _, s := range samples {
		if (delta > 0 && s <= 0) || (delta < 0 && s >= 0) {
			opposite++
		}
	}
	p := 2 * float64(opposite) / float64(len(samples))
	if p > 1 {
		p = 1
	}
	if p == 0 {
		p = 1 / float64(len(samples)) // resolution floor
	}
	return p
}
