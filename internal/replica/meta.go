// Package replica implements asynchronous WAL shipping between two
// rrc-server processes: a primary streams committed event-log records
// per shard over HTTP, a warm standby tails each shard with
// resume-from-LSN, applies them through the LSN-idempotent session
// store, and can be promoted to primary under a fenced, monotonic
// epoch. The epoch — persisted next to the `shards` marker — is the
// split-brain guard: a promoted standby bumps it, and every replication
// and ingest interaction carries it so a deposed primary is refused
// (and told exactly where its timeline diverged) rather than silently
// double-writing the same users.
package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tsppr/internal/atomicio"
)

// MetaFile is the epoch marker's file name, living in the events root
// beside the `shards` marker so the two on-disk contracts travel
// together.
const MetaFile = "epoch"

// Promotion records one epoch bump and, per shard, the first LSN minted
// under the new epoch (the shard's nextLSN at promotion). Everything
// below Bases[i] is shared history with the previous timeline;
// everything at or above it belongs to the new one. A rejoining node
// with an older epoch truncates from the minimum base across all
// promotions it missed.
type Promotion struct {
	Epoch uint64   `json:"epoch"`
	Bases []uint64 `json:"bases"`
}

// Meta is the persisted replication state of one events root.
type Meta struct {
	// Epoch is the node's current fencing token. 0 = never promoted,
	// never followed: a legacy root, treated as epoch 1's history.
	Epoch uint64 `json:"epoch"`
	// History holds every promotion this node has witnessed (its own or
	// adopted from a primary it follows), ascending by epoch.
	History []Promotion `json:"history,omitempty"`
}

// LoadMeta reads the epoch marker from root. A missing file is not an
// error: it returns a zero Meta, the state of every root created before
// replication existed.
func LoadMeta(root string) (Meta, error) {
	var m Meta
	b, err := os.ReadFile(filepath.Join(root, MetaFile))
	if err != nil {
		if os.IsNotExist(err) {
			return m, nil
		}
		return m, fmt.Errorf("replica: read epoch marker: %w", err)
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("replica: epoch marker %s: %w", filepath.Join(root, MetaFile), err)
	}
	for i, p := range m.History {
		if i > 0 && p.Epoch <= m.History[i-1].Epoch {
			return m, fmt.Errorf("replica: epoch marker: history not ascending at entry %d", i)
		}
		if p.Epoch > m.Epoch {
			return m, fmt.Errorf("replica: epoch marker: history entry %d epoch %d above current %d", i, p.Epoch, m.Epoch)
		}
	}
	return m, nil
}

// Store atomically persists the epoch marker to root, routed through
// the "replica.meta" fault-injection point.
func (m Meta) Store(root string) error {
	path := filepath.Join(root, MetaFile)
	err := atomicio.WriteFile(path, "replica.meta", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
	if err != nil {
		return fmt.Errorf("replica: write epoch marker: %w", err)
	}
	return nil
}

// Promote returns a copy of m advanced to epoch, recording bases (the
// per-shard nextLSN at the moment of promotion) in the history. epoch
// must be strictly above the current one.
func (m Meta) Promote(epoch uint64, bases []uint64) (Meta, error) {
	if epoch <= m.Epoch {
		return m, fmt.Errorf("replica: promote to epoch %d, already at %d", epoch, m.Epoch)
	}
	out := m
	out.Epoch = epoch
	out.History = append(append([]Promotion(nil), m.History...), Promotion{Epoch: epoch, Bases: append([]uint64(nil), bases...)})
	return out, nil
}

// Adopt merges a primary's meta into a follower's: the follower takes
// the primary's epoch and the history entries it was missing. The
// primary's history must contain everything the follower has (same
// timeline) — a follower that has seen a promotion the primary hasn't
// is on a divergent future and must not silently adopt.
func (m Meta) Adopt(primary Meta) (Meta, error) {
	if primary.Epoch < m.Epoch {
		return m, fmt.Errorf("replica: adopt epoch %d below own %d", primary.Epoch, m.Epoch)
	}
	byEpoch := map[uint64]bool{}
	for _, p := range primary.History {
		byEpoch[p.Epoch] = true
	}
	for _, p := range m.History {
		if !byEpoch[p.Epoch] {
			return m, fmt.Errorf("replica: primary history lacks our promotion epoch %d — divergent timelines", p.Epoch)
		}
	}
	out := m
	out.Epoch = primary.Epoch
	out.History = append([]Promotion(nil), primary.History...)
	return out, nil
}

// DivergenceLSN reports where shard's timeline split for a node last
// synced at sinceEpoch: the minimum base LSN across every promotion
// after sinceEpoch. ok is false when no promotion after sinceEpoch
// covers the shard — the histories agree and no truncation is needed.
func (m Meta) DivergenceLSN(shard int, sinceEpoch uint64) (uint64, bool) {
	var min uint64
	ok := false
	for _, p := range m.History {
		if p.Epoch <= sinceEpoch || shard >= len(p.Bases) {
			continue
		}
		if !ok || p.Bases[shard] < min {
			min = p.Bases[shard]
			ok = true
		}
	}
	return min, ok
}
