package replica_test

// Tailer resume semantics — the property rrc-router's failover dance
// leans on: a standby process restarted mid-stream (as happens when a
// router-driven promotion bounces the fleet) resumes each shard from
// its persisted LSN, applies every event exactly once across both
// incarnations, and converges byte-identically. Plus the Retry-After
// audit rows for the replication server's own 503s.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsppr/internal/obs"
	"tsppr/internal/replica"
	"tsppr/internal/shard"
)

const appliedFamily = "rrc_replica_applied_total"

func TestReplicaTailerResumesFromPersistedLSN(t *testing.T) {
	const shards, users = 2, 6
	primaryPool, err := shard.Open(t.TempDir(), poolCfg(shards, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer primaryPool.Close()
	ingest(t, primaryPool, users, 60)

	// A hand-rolled primary so the test can (a) force small stream
	// batches — a restart is then mid-stream, not between streams — and
	// (b) record the first `from` each shard tailer asks for after the
	// restart: the literal resume position.
	box := &metaBox{}
	srv := &replica.Server{
		Source:   replica.PoolSource{Pool: primaryPool},
		Meta:     box.get,
		Wait:     50 * time.Millisecond,
		MaxBatch: 7,
	}
	mux := http.NewServeMux()
	srv.Register(mux)
	var (
		recording atomic.Bool
		fromMu    sync.Mutex
		firstFrom = map[int]uint64{}
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if recording.Load() && r.URL.Path == "/replica/stream" {
			sh, _ := strconv.Atoi(r.URL.Query().Get("shard"))
			from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
			fromMu.Lock()
			if _, seen := firstFrom[sh]; !seen {
				firstFrom[sh] = from
			}
			fromMu.Unlock()
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()

	followRoot := t.TempDir()
	followPool, err := shard.Open(followRoot, poolCfg(shards, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer followPool.Close()

	// First incarnation: stop as soon as a prefix has applied. The
	// 7-record batches mean this lands between stream responses with
	// work still outstanding, and the later total-applies assertion is
	// correct wherever it lands.
	reg1 := obs.NewRegistry()
	f1 := newFollower(t, ts.URL, followPool, followRoot, reg1)
	deadline := time.Now().Add(10 * time.Second)
	for reg1.SumCounters(appliedFamily) < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("first tailer applied only %d records", reg1.SumCounters(appliedFamily))
		}
		time.Sleep(time.Millisecond)
	}
	f1.Stop()
	applied1 := reg1.SumCounters(appliedFamily)

	// The persisted resume points: each shard's local WAL horizon.
	resume, err := replica.NextLSNs(followPool)
	if err != nil {
		t.Fatal(err)
	}

	// More primary traffic while the standby is down.
	ingest(t, primaryPool, users, 60)

	// Second incarnation over the same pool and root.
	recording.Store(true)
	reg2 := obs.NewRegistry()
	f2 := newFollower(t, ts.URL, followPool, followRoot, reg2)
	waitCaughtUp(t, f2)
	f2.Stop()

	fromMu.Lock()
	for sh := 0; sh < shards; sh++ {
		got, seen := firstFrom[sh]
		if !seen {
			t.Fatalf("shard %d: restarted tailer never streamed", sh)
		}
		if got != resume[sh] {
			t.Fatalf("shard %d resumed from %d, persisted LSN says %d", sh, got, resume[sh])
		}
	}
	fromMu.Unlock()

	// Exactly-once across the restart: applied counts only records that
	// actually landed, so any duplicate apply would overshoot 120 and a
	// skipped-record bug would undershoot.
	applied2 := reg2.SumCounters(appliedFamily)
	if total := applied1 + applied2; total != 120 {
		t.Fatalf("applied %d + %d = %d records across restart, want exactly 120", applied1, applied2, total)
	}
	if got, want := fingerprint(t, followPool), fingerprint(t, primaryPool); got != want {
		t.Fatalf("windows diverged across tailer restart:\n got %s\nwant %s", got, want)
	}
}

// failingSource errors every Source method — the shape of a pool whose
// shards are mid-restart.
type failingSource struct{}

func (failingSource) Shards() int                 { return 1 }
func (failingSource) NextLSN(int) (uint64, error) { return 0, errors.New("shard restarting") }
func (failingSource) Snapshot(int) (string, uint64, error) {
	return "", 0, errors.New("shard restarting")
}
func (failingSource) Read(int, uint64, int, func(uint64, []byte) error) (uint64, error) {
	return 0, errors.New("shard restarting")
}

// TestReplicaServerUnavailableCarriesRetryAfter pins the Retry-After
// audit for the replication plane: its 503s must be schedulable.
func TestReplicaServerUnavailableCarriesRetryAfter(t *testing.T) {
	box := &metaBox{}
	srv := &replica.Server{Source: failingSource{}, Meta: box.get, Wait: 10 * time.Millisecond}
	mux := http.NewServeMux()
	srv.Register(mux)
	for _, path := range []string{"/replica/stream?shard=0&from=1", "/replica/snapshot?shard=0"} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503: %s", path, rr.Code, rr.Body.String())
		}
		if ra := rr.Result().Header.Get("Retry-After"); ra == "" {
			t.Fatalf("%s: 503 without Retry-After", path)
		}
	}
}
