package replica_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsppr/internal/obs"
	"tsppr/internal/replica"
	"tsppr/internal/seq"
	"tsppr/internal/shard"
	"tsppr/internal/wal"
)

func poolCfg(n, snapshotEvery int) shard.Config {
	return shard.Config{
		Shards:        n,
		WindowCap:     8,
		Fsync:         wal.SyncNever,
		SnapshotEvery: snapshotEvery,
		SegmentBytes:  128, // rotate constantly so pruning actually prunes
	}
}

// metaBox holds a node's mutable replication meta behind a lock — the
// test-side stand-in for the rrc-server process owning its epoch.
type metaBox struct {
	mu sync.Mutex
	m  replica.Meta
}

func (b *metaBox) get() replica.Meta {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m
}

func (b *metaBox) set(m replica.Meta) {
	b.mu.Lock()
	b.m = m
	b.mu.Unlock()
}

// newPrimary serves the replication endpoints of pool under box's meta.
func newPrimary(t *testing.T, pool *shard.Pool, box *metaBox) *httptest.Server {
	t.Helper()
	srv := &replica.Server{
		Source: replica.PoolSource{Pool: pool},
		Meta:   box.get,
		Wait:   50 * time.Millisecond,
	}
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func newFollower(t *testing.T, primary string, pool *shard.Pool, root string, reg *obs.Registry) *replica.Follower {
	t.Helper()
	f := &replica.Follower{
		Primary:     primary,
		Target:      replica.PoolTarget{Pool: pool},
		Metas:       replica.DirMetaStore{Root: root},
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Metrics:     reg,
	}
	if err := f.Start(); err != nil {
		t.Fatalf("follower start: %v", err)
	}
	t.Cleanup(f.Stop)
	return f
}

func waitCaughtUp(t *testing.T, f *replica.Follower) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f.CaughtUp() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("follower never caught up")
}

func fingerprint(t *testing.T, p *shard.Pool) string {
	t.Helper()
	b, err := json.Marshal(p.Dump())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func ingest(t *testing.T, p *shard.Pool, users, events int) {
	t.Helper()
	for e := 0; e < events; e++ {
		u := e % users
		if _, _, err := p.Ingest(u, seq.Item(e%13)); err != nil {
			t.Fatalf("ingest event %d: %v", e, err)
		}
	}
}

func TestMetaPromoteAdoptDivergence(t *testing.T) {
	var m replica.Meta
	m2, err := m.Promote(1, []uint64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Promote(1, nil); err == nil {
		t.Fatal("re-promoting to the same epoch must fail")
	}
	m3, err := m2.Promote(3, []uint64{15, 25})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Epoch != 3 || len(m3.History) != 2 {
		t.Fatalf("meta after two promotions: %+v", m3)
	}

	// A node synced through epoch 0 diverged at the min base across both
	// promotions; one synced through epoch 1 only at the second's.
	if div, ok := m3.DivergenceLSN(0, 0); !ok || div != 10 {
		t.Fatalf("divergence(shard 0, since 0) = %d,%v", div, ok)
	}
	if div, ok := m3.DivergenceLSN(1, 1); !ok || div != 25 {
		t.Fatalf("divergence(shard 1, since 1) = %d,%v", div, ok)
	}
	if _, ok := m3.DivergenceLSN(0, 3); ok {
		t.Fatal("no divergence expected for a fully synced node")
	}

	// Adopting a superset history is fine; adopting one missing our own
	// promotion is a divergent future and must be refused.
	var fresh replica.Meta
	if _, err := fresh.Adopt(m3); err != nil {
		t.Fatalf("fresh adopt: %v", err)
	}
	side, err := m2.Promote(2, []uint64{11, 21})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := side.Adopt(m3); err == nil {
		t.Fatal("adopting a history missing our epoch-2 promotion must fail")
	}
}

func TestMetaStoreLoad(t *testing.T) {
	dir := t.TempDir()
	m, err := replica.LoadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 0 || m.History != nil {
		t.Fatalf("missing marker should load zero meta, got %+v", m)
	}
	m, err = m.Promote(2, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store(dir); err != nil {
		t.Fatal(err)
	}
	got, err := replica.LoadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 || len(got.History) != 1 || got.History[0].Bases[0] != 7 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestReplicaStreamConverges(t *testing.T) {
	primaryPool, err := shard.Open(t.TempDir(), poolCfg(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer primaryPool.Close()
	ingest(t, primaryPool, 6, 80)

	box := &metaBox{}
	ts := newPrimary(t, primaryPool, box)

	followRoot := t.TempDir()
	followPool, err := shard.Open(followRoot, poolCfg(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer followPool.Close()
	reg := obs.NewRegistry()
	f := newFollower(t, ts.URL, followPool, followRoot, reg)
	waitCaughtUp(t, f)

	if got, want := fingerprint(t, followPool), fingerprint(t, primaryPool); got != want {
		t.Fatalf("follower state diverged:\n got %s\nwant %s", got, want)
	}
	for i := 0; i < 2; i++ {
		if rec, _ := f.Lag(i); rec != 0 {
			t.Fatalf("shard %d lag %d after catch-up", i, rec)
		}
	}

	// Live tail: new primary writes show up without restarting anything.
	ingest(t, primaryPool, 6, 40)
	deadline := time.Now().Add(10 * time.Second)
	for fingerprint(t, followPool) != fingerprint(t, primaryPool) {
		if time.Now().After(deadline) {
			t.Fatal("live tail never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReplicaEpochConflictTruncatesAndAdopts(t *testing.T) {
	// Node A: the original primary. Node B: its fully caught-up standby.
	rootA, rootB := t.TempDir(), t.TempDir()
	poolA, err := shard.Open(rootA, poolCfg(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer poolA.Close()
	poolB, err := shard.Open(rootB, poolCfg(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer poolB.Close()

	ingest(t, poolA, 6, 40)
	boxA := &metaBox{}
	tsA := newPrimary(t, poolA, boxA)
	fB := newFollower(t, tsA.URL, poolB, rootB, nil)
	waitCaughtUp(t, fB)
	fB.Stop()

	// B is promoted: epoch 2, bases = B's horizons. A, not knowing,
	// keeps acknowledging writes — a divergent tail B never saw.
	bases, err := replica.NextLSNs(poolB)
	if err != nil {
		t.Fatal(err)
	}
	metaB, err := fB.MetaSnapshot().Promote(2, bases)
	if err != nil {
		t.Fatal(err)
	}
	if err := metaB.Store(rootB); err != nil {
		t.Fatal(err)
	}
	ingest(t, poolA, 6, 24) // A's doomed tail
	ingest(t, poolB, 6, 16) // B's new-timeline writes

	// A rejoins as a follower of B: its stale epoch gets a 412 carrying
	// the divergence LSN, it truncates the tail, adopts epoch 2, and
	// converges to B's timeline byte-identically.
	boxB := &metaBox{m: metaB}
	tsB := newPrimary(t, poolB, boxB)
	fA := newFollower(t, tsB.URL, poolA, rootA, nil)
	waitCaughtUp(t, fA)

	if got, want := fingerprint(t, poolA), fingerprint(t, poolB); got != want {
		t.Fatalf("rejoined node diverged:\n got %s\nwant %s", got, want)
	}
	if fA.Epoch() != 2 {
		t.Fatalf("rejoined node epoch %d, want 2", fA.Epoch())
	}
	persisted, err := replica.LoadMeta(rootA)
	if err != nil {
		t.Fatal(err)
	}
	if persisted.Epoch != 2 {
		t.Fatalf("adopted epoch not persisted: %+v", persisted)
	}
}

func TestReplicaReseedWhenPruned(t *testing.T) {
	// Aggressive snapshotting prunes the primary's WAL well past LSN 1,
	// so a fresh follower cannot tail from the beginning and must
	// download a snapshot.
	root := t.TempDir()
	primaryPool, err := shard.Open(root, poolCfg(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer primaryPool.Close()
	ingest(t, primaryPool, 4, 60)
	if oldest := primaryPool.Shard(0).WALStats(); oldest.PrunedSegments == 0 {
		t.Fatal("wal never pruned; the test would not exercise the reseed path")
	}

	box := &metaBox{}
	ts := newPrimary(t, primaryPool, box)
	followRoot := t.TempDir()
	followPool, err := shard.Open(followRoot, poolCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer followPool.Close()
	reg := obs.NewRegistry()
	f := newFollower(t, ts.URL, followPool, followRoot, reg)
	waitCaughtUp(t, f)

	if got, want := fingerprint(t, followPool), fingerprint(t, primaryPool); got != want {
		t.Fatalf("reseeded state diverged:\n got %s\nwant %s", got, want)
	}
	if n := reg.SumCounters("rrc_replica_resyncs_total"); n == 0 {
		t.Fatal("expected at least one snapshot resync")
	}
}

func TestFollowerRefusesDeposedPrimary(t *testing.T) {
	// The follower has witnessed epoch 3; the primary is stuck at 1.
	// The primary must fence itself (SawHigherEpoch) and the follower
	// must not adopt the older timeline.
	root := t.TempDir()
	primaryPool, err := shard.Open(root, poolCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer primaryPool.Close()
	ingest(t, primaryPool, 2, 10)

	var fenced atomic.Uint64
	boxA := &metaBox{}
	srv := &replica.Server{
		Source:         replica.PoolSource{Pool: primaryPool},
		Meta:           boxA.get,
		SawHigherEpoch: func(e uint64) { fenced.Store(e) },
		Wait:           20 * time.Millisecond,
	}
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	followRoot := t.TempDir()
	followPool, err := shard.Open(followRoot, poolCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer followPool.Close()
	promoted, err := replica.Meta{}.Promote(3, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := promoted.Store(followRoot); err != nil {
		t.Fatal(err)
	}
	f := newFollower(t, ts.URL, followPool, followRoot, nil)

	deadline := time.Now().Add(5 * time.Second)
	for fenced.Load() != 3 {
		if time.Now().After(deadline) {
			t.Fatal("primary never saw the higher epoch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f.CaughtUp() {
		t.Fatal("follower must not sync from a deposed primary")
	}
	if f.Epoch() != 3 {
		t.Fatalf("follower regressed to epoch %d", f.Epoch())
	}
}

func TestTruncateAndReloadPrunedFallsToReseed(t *testing.T) {
	// A shard whose WAL no longer reaches below the divergence point
	// reports wal.ErrPruned so the tailer reseeds instead.
	root := t.TempDir()
	pool, err := shard.Open(root, poolCfg(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ingest(t, pool, 4, 60)
	sh := pool.Shard(0)
	oldest := uint64(1)
	if next, err := sh.NextLSN(); err != nil || next < 10 {
		t.Fatalf("next=%d err=%v", next, err)
	}
	err = sh.TruncateAndReload(oldest)
	if err == nil {
		t.Fatal("wal retained everything; the test would not exercise the pruned path")
	}
	if !errors.Is(err, wal.ErrPruned) {
		t.Fatalf("got %v, want wal.ErrPruned", err)
	}
	if sh.State() != shard.Serving {
		t.Fatalf("shard left %v after refused truncate", sh.State())
	}
}
