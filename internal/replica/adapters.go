package replica

import (
	"tsppr/internal/shard"
)

// PoolSource adapts a shard.Pool to the primary-side Source surface.
type PoolSource struct{ Pool *shard.Pool }

func (s PoolSource) Shards() int { return s.Pool.N() }

func (s PoolSource) NextLSN(i int) (uint64, error) { return s.Pool.Shard(i).NextLSN() }

func (s PoolSource) Read(i int, from uint64, max int, fn func(lsn uint64, payload []byte) error) (uint64, error) {
	return s.Pool.Shard(i).ReadWAL(from, max, fn)
}

func (s PoolSource) Snapshot(i int) (string, uint64, error) {
	return s.Pool.Shard(i).SnapshotInfo()
}

// PoolTarget adapts a shard.Pool to the follower-side Target surface.
type PoolTarget struct{ Pool *shard.Pool }

func (t PoolTarget) Shards() int { return t.Pool.N() }

func (t PoolTarget) NextLSN(i int) (uint64, error) { return t.Pool.Shard(i).NextLSN() }

func (t PoolTarget) Apply(i int, lsn uint64, payload []byte) (bool, error) {
	return t.Pool.Shard(i).ApplyReplicated(lsn, payload)
}

func (t PoolTarget) TruncateFrom(i int, lsn uint64) error {
	return t.Pool.Shard(i).TruncateAndReload(lsn)
}

func (t PoolTarget) Reseed(i int, snapLSN uint64, populate func(dir string) error) error {
	return t.Pool.Shard(i).Reseed(snapLSN, populate)
}

// NextLSNs collects every shard's commit horizon — the per-shard bases
// a promotion records in its history entry.
func NextLSNs(p *shard.Pool) ([]uint64, error) {
	out := make([]uint64, p.N())
	for i := range out {
		lsn, err := p.Shard(i).NextLSN()
		if err != nil {
			return nil, err
		}
		out[i] = lsn
	}
	return out, nil
}
