package replica_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tsppr/internal/obs"
	"tsppr/internal/replica"
	"tsppr/internal/shard"
)

// newPartitionedPrimary is newPrimary with a partition identity: the
// server stamps every response with X-RRC-Partition and refuses
// cross-partition replication with 421.
func newPartitionedPrimary(t *testing.T, pool *shard.Pool, box *metaBox, id shard.PartitionID) *httptest.Server {
	t.Helper()
	srv := &replica.Server{
		Source:    replica.PoolSource{Pool: pool},
		Meta:      box.get,
		Wait:      50 * time.Millisecond,
		Partition: func() shard.PartitionID { return id },
	}
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestServerPartitionCheck pins the replication-plane ownership
// contract: a primary that knows its partition identity refuses
// cross-partition requests with 421 and an owning-partition hint, while
// matching, unstamped, and generation-skewed requests pass. Silent
// cross-partition replication would copy another partition's keys into
// this pair for good, so the refusal must be loud and machine-readable.
func TestServerPartitionCheck(t *testing.T) {
	dir := t.TempDir()
	pool, err := shard.Open(dir, poolCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	box := &metaBox{}
	own := shard.PartitionID{Index: 0, Count: 2, Generation: 1}
	ts := newPartitionedPrimary(t, pool, box, own)

	get := func(stamp string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/replica/epoch", nil)
		if err != nil {
			t.Fatal(err)
		}
		if stamp != "" {
			req.Header.Set(replica.PartitionHeader, stamp)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Matching identity, unstamped (pre-partitioning follower), and a
	// generation skew (mid-resize re-identity) all pass.
	for _, stamp := range []string{own.String(), "", "0/2@7"} {
		if resp := get(stamp); resp.StatusCode != http.StatusOK {
			t.Fatalf("stamp %q: status %d, want 200", stamp, resp.StatusCode)
		} else if got := resp.Header.Get(replica.PartitionHeader); got != own.String() {
			t.Fatalf("stamp %q: response partition header %q, want %q", stamp, got, own)
		}
	}

	// A different partition is refused with the owning identity in both
	// the header and the body.
	resp := get("1/2@1")
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("cross-partition stamp: status %d, want 421", resp.StatusCode)
	}
	var body replica.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode 421 body: %v", err)
	}
	if body.Partition == nil || *body.Partition != own {
		t.Fatalf("421 body partition hint = %+v, want %+v", body.Partition, own)
	}

	// A garbled stamp is a 400, not a silent pass.
	if resp := get("nonsense"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbled stamp: status %d, want 400", resp.StatusCode)
	}

	// The stream endpoint runs the same gate.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/replica/stream?shard=0&from=0", nil)
	req.Header.Set(replica.PartitionHeader, "1/2")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("cross-partition stream: status %d, want 421", sresp.StatusCode)
	}
}

// TestFollowerPartitionMismatch points a partition-1 follower at a
// partition-0 primary and checks it never replicates a byte: every poll
// surfaces the MISCONFIGURED error instead of applying the stream.
func TestFollowerPartitionMismatch(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	ppool, err := shard.Open(pdir, poolCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer ppool.Close()
	ingest(t, ppool, 4, 32)
	box := &metaBox{}
	ts := newPartitionedPrimary(t, ppool, box, shard.PartitionID{Index: 0, Count: 2})

	fpool, err := shard.Open(fdir, poolCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer fpool.Close()
	reg := obs.NewRegistry()
	f := &replica.Follower{
		Primary:     ts.URL,
		Target:      replica.PoolTarget{Pool: fpool},
		Metas:       replica.DirMetaStore{Root: fdir},
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Metrics:     reg,
		Partition:   shard.PartitionID{Index: 1, Count: 2},
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for reg.SumCounters("rrc_replica_stream_errors_total") < 3 {
		if time.Now().After(deadline) {
			t.Fatal("follower never surfaced the partition mismatch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f.CaughtUp() {
		t.Fatal("misdirected follower must not report caught up")
	}
	if got := fingerprint(t, fpool); got != fingerprint(t, mustEmptyPool(t)) {
		t.Fatal("misdirected follower applied records across partitions")
	}
}

// mustEmptyPool opens a fresh empty pool for fingerprint comparison.
func mustEmptyPool(t *testing.T) *shard.Pool {
	t.Helper()
	p, err := shard.Open(t.TempDir(), poolCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}
