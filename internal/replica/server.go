package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"tsppr/internal/shard"
	"tsppr/internal/wal"
)

// Wire protocol headers. Every replication exchange carries the
// sender's epoch so neither side can act on a deposed timeline.
const (
	// EpochHeader carries the requester's epoch on stream/snapshot
	// requests and the responder's on every reply.
	EpochHeader = "X-RRC-Epoch"
	// NextLSNHeader carries the primary's commit horizon for the shard
	// on stream replies — the follower's lag is this minus its own next.
	NextLSNHeader = "X-RRC-Next-LSN"
	// SnapshotLSNHeader carries the applied LSN of a served snapshot.
	SnapshotLSNHeader = "X-RRC-Snapshot-LSN"
	// PartitionHeader carries a node's partition identity (i/c@g, the
	// shard.PartitionID wire form) on replication exchanges. Epochs only
	// fence within one partition's timeline, so a follower accidentally
	// pointed at another partition's primary must be refused before it
	// tails a single record — cross-partition replication would graft
	// one key range's WAL onto another's.
	PartitionHeader = "X-RRC-Partition"
)

// Source is the primary-side surface the stream server reads: the
// shard pool, narrowed to committed-log reads and snapshot serving.
type Source interface {
	// Shards returns the pool's shard count.
	Shards() int
	// NextLSN returns shard's commit horizon.
	NextLSN(shard int) (uint64, error)
	// Read delivers up to max committed records with LSN ≥ from and
	// returns the resume position. wal.ErrPruned → the follower must
	// reseed from a snapshot.
	Read(shard int, from uint64, max int, fn func(lsn uint64, payload []byte) error) (uint64, error)
	// Snapshot returns the path and applied LSN of shard's newest
	// snapshot, creating one if none exists.
	Snapshot(shard int) (path string, lsn uint64, err error)
}

// ErrorBody is the JSON body of a replication error response. On an
// epoch conflict (412) it tells the loser exactly how to converge: the
// winner's meta to adopt, and — for a deposed primary — the LSN its
// timeline diverged at, i.e. where to truncate.
type ErrorBody struct {
	Error         string `json:"error"`
	Epoch         uint64 `json:"epoch"`
	Meta          *Meta  `json:"meta,omitempty"`
	DivergenceLSN uint64 `json:"divergence_lsn,omitempty"`
	Truncate      bool   `json:"truncate,omitempty"`
	OldestLSN     uint64 `json:"oldest_lsn,omitempty"`
	// Partition carries the responder's partition identity on a 421
	// (cross-partition request) — the hint the misrouted side folds in.
	Partition *shard.PartitionID `json:"partition,omitempty"`
}

// Server is the primary-side replication handler set: the per-shard
// record stream, the snapshot download, and the epoch exchange. It
// holds no replication state of its own — epoch and meta live with the
// owner (the rrc-server process) behind the accessor funcs, so the
// same handlers keep working across a promotion or fencing transition.
type Server struct {
	Source Source
	// Meta returns the node's current replication meta (epoch+history).
	Meta func() Meta
	// SawHigherEpoch, when non-nil, is told about any request carrying
	// an epoch above our own — the signal a deposed primary uses to
	// fence its ingest path even before an operator notices.
	SawHigherEpoch func(epoch uint64)
	// Partition, when non-nil, returns this node's partition identity.
	// Every reply carries it in PartitionHeader, and a request stamped
	// with a different partition (index or count) is refused with 421 —
	// cross-partition misconfiguration must fail before any record moves.
	Partition func() shard.PartitionID

	// MaxBatch bounds records per stream response; 0 → wal batch default.
	MaxBatch int
	// Wait bounds the long-poll when the follower is caught up: the
	// handler holds the request open until a new record lands or Wait
	// elapses, then returns an empty 200. 0 → 2s.
	Wait time.Duration

	mu sync.Mutex // serializes SawHigherEpoch dispatch
}

// Register wires the replication endpoints onto mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /replica/stream", s.handleStream)
	mux.HandleFunc("GET /replica/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /replica/epoch", s.handleEpoch)
}

func (s *Server) wait() time.Duration {
	if s.Wait > 0 {
		return s.Wait
	}
	return 2 * time.Second
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// writeUnavailable is writeJSON(503) with the Retry-After every 503
// from this server carries: the source errors behind it (a shard mid
// restart, a snapshot mid flush) clear on the order of a second, and a
// follower that backs off longer than that just accumulates lag.
func writeUnavailable(w http.ResponseWriter, body any) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, body)
}

// checkPartition enforces partition identity on a replication request:
// a requester stamping a different partition index or count is answered
// 421 (Misdirected Request) with our identity as the hint, and nothing
// streams. Requests without the header — ops tooling, pre-partitioning
// followers — are let through, as are servers with no identity
// configured. Generations may differ: a mid-resize pair re-identifies
// one node at a time.
func (s *Server) checkPartition(w http.ResponseWriter, r *http.Request) bool {
	if s.Partition == nil {
		return true
	}
	own := s.Partition()
	w.Header().Set(PartitionHeader, own.String())
	raw := r.Header.Get(PartitionHeader)
	if raw == "" {
		return true
	}
	theirs, err := shard.ParsePartitionID(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: fmt.Sprintf("bad %s: %v", PartitionHeader, err), Partition: &own})
		return false
	}
	if theirs.Index != own.Index || theirs.Count != own.Count {
		writeJSON(w, http.StatusMisdirectedRequest, ErrorBody{
			Error:     fmt.Sprintf("request is for partition %s but this node owns %s: cross-partition replication refused", theirs, own),
			Partition: &own,
		})
		return false
	}
	return true
}

// checkEpoch compares the requester's epoch header against ours and
// resolves conflicts; it reports whether the request may proceed.
// Requests without the header (ops tooling, curl) are let through — the
// fencing contract binds replicas, which always send it.
func (s *Server) checkEpoch(w http.ResponseWriter, r *http.Request, shard int) (Meta, bool) {
	m := s.Meta()
	raw := r.Header.Get(EpochHeader)
	if raw == "" {
		return m, true
	}
	theirs, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: fmt.Sprintf("bad %s: %v", EpochHeader, err), Epoch: m.Epoch})
		return m, false
	}
	switch {
	case theirs > m.Epoch:
		// The requester lives on a newer timeline: we are the deposed
		// node. Refuse and fence ourselves — never serve records minted
		// after the promotion we missed.
		if s.SawHigherEpoch != nil {
			s.mu.Lock()
			s.SawHigherEpoch(theirs)
			s.mu.Unlock()
		}
		writeJSON(w, http.StatusPreconditionFailed, ErrorBody{
			Error: fmt.Sprintf("request epoch %d above ours %d: this node is deposed", theirs, m.Epoch),
			Epoch: m.Epoch,
		})
		return m, false
	case theirs < m.Epoch:
		// The requester is behind: tell it where its timeline split so
		// it can truncate its divergent tail and adopt our history.
		body := ErrorBody{
			Error: fmt.Sprintf("request epoch %d below ours %d: truncate and adopt", theirs, m.Epoch),
			Epoch: m.Epoch,
			Meta:  &m,
		}
		if shard >= 0 {
			if div, ok := m.DivergenceLSN(shard, theirs); ok {
				body.DivergenceLSN = div
				body.Truncate = true
			}
		}
		writeJSON(w, http.StatusPreconditionFailed, body)
		return m, false
	}
	return m, true
}

func (s *Server) shardParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || shard < 0 || shard >= s.Source.Shards() {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: fmt.Sprintf("shard must be in [0,%d)", s.Source.Shards())})
		return 0, false
	}
	return shard, true
}

// handleStream serves GET /replica/stream?shard=i&from=<lsn>: committed
// records from LSN `from` as CRC-framed chunks. A caught-up follower is
// long-polled briefly before an empty 200, so steady-state lag is one
// round trip, not one poll interval.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if !s.checkPartition(w, r) {
		return
	}
	shard, ok := s.shardParam(w, r)
	if !ok {
		return
	}
	m, ok := s.checkEpoch(w, r, shard)
	if !ok {
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "from must be a positive LSN", Epoch: m.Epoch})
		return
	}

	// Long-poll: wait for the commit horizon to pass `from`.
	deadline := time.Now().Add(s.wait())
	var next uint64
	for {
		next, err = s.Source.NextLSN(shard)
		if err != nil {
			writeUnavailable(w, ErrorBody{Error: err.Error(), Epoch: m.Epoch})
			return
		}
		if next > from || time.Now().After(deadline) || r.Context().Err() != nil {
			break
		}
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Millisecond):
		}
	}

	w.Header().Set(EpochHeader, strconv.FormatUint(m.Epoch, 10))
	w.Header().Set(NextLSNHeader, strconv.FormatUint(next, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	if next <= from {
		return // caught up; empty 200, headers carry the horizon
	}
	resume, err := s.Source.Read(shard, from, s.MaxBatch, func(lsn uint64, payload []byte) error {
		return wal.WriteFrame(w, lsn, payload)
	})
	if errors.Is(err, wal.ErrPruned) && resume == from {
		// Nothing written yet: the follower is behind the retained log.
		// Point it at the snapshot instead.
		_, snapLSN, serr := s.Source.Snapshot(shard)
		body := ErrorBody{Error: "requested lsn pruned: reseed from snapshot", Epoch: m.Epoch}
		if serr == nil {
			body.OldestLSN = snapLSN + 1
		}
		w.Header().Del("Content-Type")
		writeJSON(w, http.StatusGone, body)
		return
	}
	// Mid-stream errors cannot change the status line; the truncated
	// frame fails its CRC on the follower, which resumes from its last
	// applied LSN. Nothing to do here.
}

// handleSnapshot serves the shard's newest snapshot file for reseeding,
// its applied LSN in SnapshotLSNHeader.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.checkPartition(w, r) {
		return
	}
	shard, ok := s.shardParam(w, r)
	if !ok {
		return
	}
	m, ok := s.checkEpoch(w, r, shard)
	if !ok {
		return
	}
	path, lsn, err := s.Source.Snapshot(shard)
	if err != nil {
		writeUnavailable(w, ErrorBody{Error: err.Error(), Epoch: m.Epoch})
		return
	}
	f, err := os.Open(path)
	if err != nil {
		writeUnavailable(w, ErrorBody{Error: err.Error(), Epoch: m.Epoch})
		return
	}
	defer f.Close()
	w.Header().Set(EpochHeader, strconv.FormatUint(m.Epoch, 10))
	w.Header().Set(SnapshotLSNHeader, strconv.FormatUint(lsn, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}

// handleEpoch serves the node's replication meta — the handshake a
// joining follower (or a peer startup check) uses to learn the current
// epoch and promotion history.
func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	if !s.checkPartition(w, r) {
		return
	}
	if _, ok := s.checkEpoch(w, r, -1); !ok {
		return
	}
	m := s.Meta()
	w.Header().Set(EpochHeader, strconv.FormatUint(m.Epoch, 10))
	writeJSON(w, http.StatusOK, m)
}
