package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tsppr/internal/atomicio"
	"tsppr/internal/obs"
	"tsppr/internal/sessions"
	"tsppr/internal/shard"
	"tsppr/internal/wal"
)

// Target is the follower-side surface the tailer applies into: the
// shard pool, narrowed to replicated writes and timeline repair.
type Target interface {
	// Shards returns the pool's shard count.
	Shards() int
	// NextLSN returns shard's local commit horizon — the stream resume
	// position.
	NextLSN(shard int) (uint64, error)
	// Apply makes one shipped record durable at exactly lsn; applied is
	// false for an idempotent re-delivery.
	Apply(shard int, lsn uint64, payload []byte) (applied bool, err error)
	// TruncateFrom discards the shard's divergent tail from lsn and
	// reloads. wal.ErrPruned → fall back to Reseed.
	TruncateFrom(shard int, lsn uint64) error
	// Reseed replaces the shard's state with a snapshot at snapLSN,
	// written into the shard directory by populate.
	Reseed(shard int, snapLSN uint64, populate func(dir string) error) error
}

// MetaStore persists the follower's adopted replication meta.
type MetaStore interface {
	Load() (Meta, error)
	Store(Meta) error
}

// DirMetaStore keeps the meta in root's epoch marker file.
type DirMetaStore struct{ Root string }

func (d DirMetaStore) Load() (Meta, error) { return LoadMeta(d.Root) }
func (d DirMetaStore) Store(m Meta) error  { return m.Store(d.Root) }

// Follower tails every shard of a primary, applying shipped records
// through Target and converging its epoch/history with the primary's.
// Start launches one tailer goroutine per shard; Stop joins them.
type Follower struct {
	Primary string // primary base URL, e.g. http://10.0.0.1:8080
	Target  Target
	Metas   MetaStore

	// Partition, when nonzero (Count >= 1), is stamped on every stream
	// and snapshot request so a primary owning a different slice of the
	// key space refuses us with 421 instead of shipping records whose
	// users this node will never serve.
	Partition shard.PartitionID

	// Client, when nil, falls back to a default with sane timeouts.
	Client *http.Client
	// Batch bounds records requested per poll; 0 → server default.
	Batch int
	// BackoffBase/BackoffMax shape the retry schedule on stream errors.
	// Defaults: 100ms / 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Metrics, when non-nil, receives the rrc_replica_* families.
	Metrics *obs.Registry

	mu         sync.Mutex
	meta       Meta
	convergeMu sync.Mutex // serializes whole-node epoch convergence
	cancel     context.CancelFunc
	done       sync.WaitGroup
	applied    *obs.Counter // set per shard in start; see shardTailer
	epochG     *obs.Gauge

	shards []*shardTailer
}

// shardTailer is one shard's replication loop state.
type shardTailer struct {
	shard       int
	primaryNext atomic.Uint64 // last seen primary horizon
	localNext   atomic.Uint64 // local commit horizon after the last apply
	lagSince    atomic.Int64  // unix nanos when lag last became nonzero; 0 = caught up

	applied   *obs.Counter
	streamErr *obs.Counter
	resyncs   *obs.Counter
}

// Epoch returns the follower's current adopted epoch.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.meta.Epoch
}

// MetaSnapshot returns the follower's current adopted meta.
func (f *Follower) MetaSnapshot() Meta {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.meta
}

// Lag returns shard's current replication lag in records (primary
// horizon minus local) and how long the shard has been behind.
func (f *Follower) Lag(shard int) (records uint64, behind time.Duration) {
	st := f.shards[shard]
	p, l := st.primaryNext.Load(), st.localNext.Load()
	if p > l {
		records = p - l
	}
	if since := st.lagSince.Load(); since != 0 {
		behind = time.Since(time.Unix(0, since))
	}
	return records, behind
}

func (f *Follower) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (f *Follower) backoffBase() time.Duration {
	if f.BackoffBase > 0 {
		return f.BackoffBase
	}
	return 100 * time.Millisecond
}

func (f *Follower) backoffMax() time.Duration {
	if f.BackoffMax > 0 {
		return f.BackoffMax
	}
	return 5 * time.Second
}

// Start loads the persisted meta and launches one tailer per shard.
func (f *Follower) Start() error {
	m, err := f.Metas.Load()
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.meta = m
	f.mu.Unlock()

	n := f.Target.Shards()
	f.shards = make([]*shardTailer, n)
	reg := f.Metrics
	reg.Help("rrc_replica_lag_records", "Per-shard replication lag: primary commit horizon minus local, in records.")
	reg.Help("rrc_replica_lag_seconds", "How long the shard has been behind the primary; 0 when caught up.")
	reg.Help("rrc_replica_applied_total", "Shipped records applied by the follower.")
	reg.Help("rrc_replica_stream_errors_total", "Stream poll failures (network, decode, apply) that triggered a retry.")
	reg.Help("rrc_replica_resyncs_total", "Shard reseeds from a primary snapshot after falling behind the retained WAL.")
	reg.Help("rrc_replica_epoch", "The node's current replication epoch.")
	f.epochG = reg.Gauge("rrc_replica_epoch")
	f.epochG.Set(float64(m.Epoch))

	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	for i := 0; i < n; i++ {
		st := &shardTailer{shard: i}
		lbl := fmt.Sprintf(`{shard="%d"}`, i)
		st.applied = reg.Counter("rrc_replica_applied_total" + lbl)
		st.streamErr = reg.Counter("rrc_replica_stream_errors_total" + lbl)
		st.resyncs = reg.Counter("rrc_replica_resyncs_total" + lbl)
		reg.GaugeFunc("rrc_replica_lag_records"+lbl, func() float64 {
			rec, _ := f.Lag(st.shard)
			return float64(rec)
		})
		reg.GaugeFunc("rrc_replica_lag_seconds"+lbl, func() float64 {
			_, behind := f.Lag(st.shard)
			return behind.Seconds()
		})
		f.shards[i] = st
		f.done.Add(1)
		go func() {
			defer f.done.Done()
			f.tail(ctx, st)
		}()
	}
	return nil
}

// Stop cancels every tailer and waits for them to exit.
func (f *Follower) Stop() {
	if f.cancel != nil {
		f.cancel()
		f.done.Wait()
	}
}

// CaughtUp reports whether every shard's local horizon has reached the
// primary's as of the latest poll.
func (f *Follower) CaughtUp() bool {
	for _, st := range f.shards {
		p := st.primaryNext.Load()
		if p == 0 || st.localNext.Load() < p {
			return false
		}
	}
	return true
}

// tail is one shard's replication loop: poll, apply, converge epochs,
// repair the timeline when deposed, reseed when pruned past.
func (f *Follower) tail(ctx context.Context, st *shardTailer) {
	backoff := f.backoffBase()
	for ctx.Err() == nil {
		madeProgress, err := f.pollOnce(ctx, st)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			st.streamErr.Inc()
			log.Printf("replica: shard %d: %v (retrying in %s)", st.shard, err, backoff)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			backoff = min(2*backoff, f.backoffMax())
			continue
		}
		backoff = f.backoffBase()
		if !madeProgress {
			// Caught up; the server long-polls for us, so loop straight
			// back around without a local sleep.
			continue
		}
	}
}

// pollOnce issues one stream request and applies its records. It
// returns whether any record was applied.
func (f *Follower) pollOnce(ctx context.Context, st *shardTailer) (bool, error) {
	from, err := f.Target.NextLSN(st.shard)
	if err != nil {
		return false, fmt.Errorf("local horizon: %w", err)
	}
	st.localNext.Store(from)

	q := url.Values{}
	q.Set("shard", strconv.Itoa(st.shard))
	q.Set("from", strconv.FormatUint(from, 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.Primary+"/replica/stream?"+q.Encode(), nil)
	if err != nil {
		return false, err
	}
	req.Header.Set(EpochHeader, strconv.FormatUint(f.Epoch(), 10))
	f.stampPartition(req)
	resp, err := f.client().Do(req)
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	switch resp.StatusCode {
	case http.StatusOK:
		return f.applyStream(st, resp)
	case http.StatusPreconditionFailed:
		return false, f.handleEpochConflict(st, resp)
	case http.StatusGone:
		return false, f.reseed(ctx, st, resp)
	case http.StatusMisdirectedRequest:
		return false, f.partitionMismatch(resp)
	default:
		return false, fmt.Errorf("stream: primary returned %s", resp.Status)
	}
}

// stampPartition adds the follower's partition identity to an outbound
// replication request, when one is configured.
func (f *Follower) stampPartition(req *http.Request) {
	if f.Partition.Count >= 1 {
		req.Header.Set(PartitionHeader, f.Partition.String())
	}
}

// partitionMismatch turns a 421 into the loudest error the tailer can
// produce: this node is pointed at another partition's primary, and no
// amount of retrying fixes a misconfiguration — only the operator can.
func (f *Follower) partitionMismatch(resp *http.Response) error {
	var body ErrorBody
	hint := resp.Header.Get(PartitionHeader)
	if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Partition != nil {
		hint = body.Partition.String()
	}
	return fmt.Errorf("MISCONFIGURED: primary %s owns partition %s but this node is %s — repoint -follow at our own partition's primary",
		f.Primary, hint, f.Partition)
}

// applyStream decodes and applies every frame in a 200 stream response.
func (f *Follower) applyStream(st *shardTailer, resp *http.Response) (bool, error) {
	if h := resp.Header.Get(NextLSNHeader); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			st.primaryNext.Store(v)
		}
	}
	applied := false
	for {
		lsn, payload, err := wal.ReadFrame(resp.Body, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn or corrupt frame: drop the response and re-resume
			// from the local horizon. Anything applied so far is durable.
			f.updateLagClock(st)
			return applied, fmt.Errorf("stream frame: %w", err)
		}
		ok, err := f.Target.Apply(st.shard, lsn, payload)
		if err != nil {
			f.updateLagClock(st)
			return applied, fmt.Errorf("apply lsn %d: %w", lsn, err)
		}
		if ok {
			applied = true
			st.applied.Inc()
		}
		st.localNext.Store(lsn + 1)
	}
	f.updateLagClock(st)
	return applied, nil
}

// updateLagClock starts or clears the shard's time-behind clock from
// the current horizons.
func (f *Follower) updateLagClock(st *shardTailer) {
	if st.localNext.Load() >= st.primaryNext.Load() {
		st.lagSince.Store(0)
	} else if st.lagSince.Load() == 0 {
		st.lagSince.Store(time.Now().UnixNano())
	}
}

// handleEpochConflict converges with a primary on a newer epoch. The
// epoch flip is node-wide, so the divergent-tail truncation must be
// too: every shard is cut at its own divergence LSN (from the adopted
// history) *before* the epoch is adopted and persisted — otherwise the
// first tailer to adopt would let the others stream cleanly over tails
// the new timeline never had. A primary *behind* us is not followed —
// it may be the deposed node we were promoted over; keep erroring
// until the operator repoints us.
func (f *Follower) handleEpochConflict(st *shardTailer, resp *http.Response) error {
	var body ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("epoch conflict: unreadable body: %w", err)
	}
	own := f.Epoch()
	if body.Epoch <= own {
		return fmt.Errorf("primary epoch %d not above ours %d: refusing to follow a deposed primary", body.Epoch, own)
	}
	if body.Meta == nil {
		return fmt.Errorf("epoch conflict with %d: no meta to adopt", body.Epoch)
	}
	f.convergeMu.Lock()
	defer f.convergeMu.Unlock()
	if f.Epoch() >= body.Epoch {
		return nil // another shard's tailer already converged the node
	}
	for i := 0; i < f.Target.Shards(); i++ {
		div, ok := body.Meta.DivergenceLSN(i, own)
		if !ok {
			continue
		}
		if err := f.Target.TruncateFrom(i, div); err != nil {
			if errors.Is(err, wal.ErrPruned) {
				// Cannot rebuild below the divergence point locally; the
				// shard reseeds once its stream 410s. Converge anyway so
				// the next polls run on the right epoch.
				log.Printf("replica: shard %d: divergence %d below retained state, will reseed: %v",
					i, div, err)
				continue
			}
			return fmt.Errorf("truncate shard %d to %d: %w", i, div, err)
		}
	}
	f.mu.Lock()
	adopted, err := f.meta.Adopt(*body.Meta)
	if err == nil {
		err = f.Metas.Store(adopted)
	}
	if err == nil {
		f.meta = adopted
	}
	f.mu.Unlock()
	if err != nil {
		return fmt.Errorf("adopt epoch %d: %w", body.Meta.Epoch, err)
	}
	f.epochG.Set(float64(adopted.Epoch))
	log.Printf("replica: shard %d: adopted epoch %d from primary (all shards truncated to the shared timeline)", st.shard, adopted.Epoch)
	return nil
}

// reseed replaces the shard's local state with the primary's newest
// snapshot after a 410: the records between our horizon and the
// primary's retained WAL are gone, so tailing cannot resume from here.
func (f *Follower) reseed(ctx context.Context, st *shardTailer, gone *http.Response) error {
	st.resyncs.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.Primary+"/replica/snapshot?shard="+strconv.Itoa(st.shard), nil)
	if err != nil {
		return err
	}
	req.Header.Set(EpochHeader, strconv.FormatUint(f.Epoch(), 10))
	f.stampPartition(req)
	resp, err := f.client().Do(req)
	if err != nil {
		return fmt.Errorf("snapshot download: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot download: primary returned %s", resp.Status)
	}
	snapLSN, err := strconv.ParseUint(resp.Header.Get(SnapshotLSNHeader), 10, 64)
	if err != nil {
		return fmt.Errorf("snapshot download: bad %s: %w", SnapshotLSNHeader, err)
	}
	// Buffer before touching local state: a half-downloaded snapshot
	// must not cost us the quarantined previous timeline.
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("snapshot download: %w", err)
	}
	err = f.Target.Reseed(st.shard, snapLSN, func(dir string) error {
		return writeSnapshotFile(dir, snapLSN, bytes.NewReader(body))
	})
	if err != nil {
		return err
	}
	st.localNext.Store(snapLSN + 1)
	log.Printf("replica: shard %d: reseeded from primary snapshot at lsn %d", st.shard, snapLSN)
	return nil
}

// writeSnapshotFile lands a downloaded snapshot in dir under its
// canonical name, atomically, via the "replica.reseed" fault point.
func writeSnapshotFile(dir string, lsn uint64, body io.Reader) error {
	return atomicio.WriteFile(sessions.SnapshotPath(dir, lsn), "replica.reseed", func(w io.Writer) error {
		_, err := io.Copy(w, body)
		return err
	})
}
