// Mixed: the paper's stated future work — a single slate blending repeat
// recommendations (TS-PPR over the window) with novel recommendations
// (TS-PPR over unseen items), routed by STREC's live repeat-probability
// estimate. Replays one user's held-out stream through the full pipeline
// and reports hit rates of the mixed slate against both event kinds.
//
//	go run ./examples/mixed
package main

import (
	"fmt"
	"log"

	"tsppr/internal/core"
	"tsppr/internal/datagen"
	"tsppr/internal/features"
	"tsppr/internal/mixer"
	"tsppr/internal/rec"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
	"tsppr/internal/strec"
)

const (
	window    = 100
	omega     = 10
	trainFrac = 0.7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds, err := datagen.Generate(datagen.GowallaLike(60, 11))
	if err != nil {
		return err
	}
	ds = ds.FilterMinTrain(trainFrac, window)
	ds, numItems := ds.Compact()
	train, test := ds.Split(trainFrac)
	fmt.Printf("workload: %s\n", ds.Stats())

	// Components: features → TS-PPR, STREC, novel-item recommender.
	b := features.NewBuilder(numItems, window, omega)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	set, err := sampling.Build(train, ex, sampling.Config{WindowCap: window, Omega: omega, S: 10, Seed: 11})
	if err != nil {
		return err
	}
	model, _, err := core.Train(set, ds.NumUsers(), numItems, ex, core.Config{TwoPhase: true, Seed: 11})
	if err != nil {
		return err
	}
	classifier, err := strec.Train(train, numItems, strec.Config{WindowCap: window, Quadratic: true, Seed: 11})
	if err != nil {
		return err
	}
	novel, err := mixer.NewNovelRecommender(model, train, 400)
	if err != nil {
		return err
	}
	pipe, err := mixer.NewPipeline(classifier, model, novel, train, window)
	if err != nil {
		return err
	}

	// Replay every user's test stream through the mixed pipeline.
	const topN = 10
	var (
		repeatEvents, repeatHits int
		novelEvents, novelHits   int
	)
	for u := range test {
		w := seq.NewWindow(window)
		history := append(seq.Sequence{}, train[u]...)
		for _, v := range train[u] {
			w.Push(v)
		}
		for _, v := range test[u] {
			ctx := &rec.Context{User: u, Window: w, History: history, Omega: omega}
			d := pipe.Recommend(ctx, topN)
			gap, isRepeat := w.Gap(v)
			if isRepeat && gap > omega {
				repeatEvents++
				if contains(d.Mixed, v) {
					repeatHits++
				}
			} else if !isRepeat {
				novelEvents++
				if contains(d.Mixed, v) {
					novelHits++
				}
			}
			pipe.Observe(u, w, v)
			w.Push(v)
			history = append(history, v)
		}
	}
	fmt.Printf("\nmixed slate (top-%d) over %d users' held-out streams:\n", topN, len(test))
	fmt.Printf("  eligible repeat events: %6d  hit rate %.3f\n",
		repeatEvents, rate(repeatHits, repeatEvents))
	fmt.Printf("  novel events:           %6d  hit rate %.3f\n",
		novelEvents, rate(novelHits, novelEvents))
	fmt.Println("\nA pure RRC recommender scores zero on every novel event; the mixed")
	fmt.Println("slate trades a little repeat precision for nonzero novel coverage.")
	return nil
}

func contains(xs []seq.Item, v seq.Item) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func rate(hits, events int) float64 {
	if events == 0 {
		return 0
	}
	return float64(hits) / float64(events)
}
