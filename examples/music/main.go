// Music: the paper's §5.7 pipeline on a Last.fm-like listening workload.
// A STREC classifier first decides, at each listening step, whether the
// next play will be a repeat; when it says yes, TS-PPR recommends which
// previously played track it will be.
//
//	go run ./examples/music
package main

import (
	"fmt"
	"log"

	"tsppr/internal/core"
	"tsppr/internal/datagen"
	"tsppr/internal/dataset"
	"tsppr/internal/engine"
	"tsppr/internal/eval"
	"tsppr/internal/features"
	"tsppr/internal/rec"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
	"tsppr/internal/strec"
)

const (
	window    = 100
	omega     = 10
	trainFrac = 0.7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Last.fm-like: long sequences, ~77% repeat ratio, flat preferences.
	ds, err := datagen.Generate(datagen.LastfmLike(40, 2))
	if err != nil {
		return err
	}
	ds = ds.FilterMinTrain(trainFrac, window)
	ds, numItems := ds.Compact()
	fmt.Printf("listening log: %s\n", ds.Stats())
	train, test := ds.Split(trainFrac)

	// STREC: will the next play be a repeat?
	classifier, err := strec.Train(train, numItems, strec.Config{WindowCap: window, Seed: 2})
	if err != nil {
		return err
	}
	cls := classifier.Evaluate(train, test)
	fmt.Printf("STREC: accuracy=%.3f precision=%.3f recall=%.3f over %d events\n",
		cls.Accuracy, cls.Precision, cls.Recall, cls.Events)

	// TS-PPR: which track will be replayed?
	model, err := trainTSPPR(ds, train, numItems)
	if err != nil {
		return err
	}
	res, err := eval.Evaluate(train, test, engine.New(model).Factory(), eval.Options{
		WindowCap: window, Omega: omega, Seed: 2,
	})
	if err != nil {
		return err
	}
	ma1, _, _ := res.At(1)
	ma10, _, _ := res.At(10)
	fmt.Printf("TS-PPR: MaAP@1=%.3f MaAP@10=%.3f over %d eligible repeats\n", ma1, ma10, res.Events)
	fmt.Printf("joint pipeline accuracy (STREC × TS-PPR@10): %.3f\n", cls.Accuracy*ma10)

	// Demo the live pipeline on one user's last few plays.
	demoUser(classifier, model, train[0], test[0])
	return nil
}

func trainTSPPR(ds *dataset.Dataset, train []seq.Sequence, numItems int) (*core.Model, error) {
	b := features.NewBuilder(numItems, window, omega)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	set, err := sampling.Build(train, ex, sampling.Config{WindowCap: window, Omega: omega, S: 10, Seed: 2})
	if err != nil {
		return nil, err
	}
	model, _, err := core.Train(set, ds.NumUsers(), numItems, ex, core.Config{TwoPhase: true, Seed: 2})
	return model, err
}

// demoUser replays one user's test stream through the live classify-then-
// recommend pipeline, printing the first few decisions.
func demoUser(classifier *strec.Model, model *core.Model, train, test seq.Sequence) {
	fmt.Println("\nlive pipeline for user 0 (first 5 decisions):")
	w := seq.NewWindow(window)
	repeats, events := 0, 0
	seq.Scan(train, window, func(ev seq.Event, _ *seq.Window) bool {
		events++
		if ev.Repeat {
			repeats++
		}
		return true
	})
	history := append(seq.Sequence{}, train...)
	for _, v := range train {
		w.Push(v)
	}
	eng := engine.New(model)
	shown := 0
	var items []seq.Item
	for _, v := range test {
		if shown >= 5 {
			break
		}
		p := classifier.Predict(w, repeats, events)
		if p >= 0.5 {
			ctx := &rec.Context{User: 0, Window: w, History: history, Omega: omega}
			top := eng.Recommend(ctx, 3, nil)
			items = rec.Items(top, items[:0])
			hit := " miss"
			for _, item := range items {
				if item == v {
					hit = " HIT"
				}
			}
			fmt.Printf("  P(repeat)=%.2f → recommend %v; actually played %d%s\n", p, items, v, hit)
			shown++
		}
		events++
		if gap, ok := w.Gap(v); ok && gap > 0 {
			repeats++
		}
		w.Push(v)
		history = append(history, v)
	}
}
