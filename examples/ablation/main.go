// Ablation: which behavioural feature earns its keep? Retrains TS-PPR
// with each of IP/IR/RE/DF removed in turn (the paper's Fig. 7 study) on a
// small check-in workload and reports the accuracy drop.
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"
	"os"

	"tsppr/internal/core"
	"tsppr/internal/datagen"
	"tsppr/internal/engine"
	"tsppr/internal/eval"
	"tsppr/internal/experiments"
	"tsppr/internal/features"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
)

const (
	window    = 100
	omega     = 10
	trainFrac = 0.7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds, err := datagen.Generate(datagen.GowallaLike(60, 6))
	if err != nil {
		return err
	}
	ds = ds.FilterMinTrain(trainFrac, window)
	ds, numItems := ds.Compact()
	train, test := ds.Split(trainFrac)
	fmt.Printf("workload: %s\n\n", ds.Stats())

	type variant struct {
		name string
		mask features.Mask
	}
	variants := []variant{{"All", features.AllFeatures}}
	for k := features.Kind(0); k < features.NumKinds; k++ {
		variants = append(variants, variant{"-" + k.String(), features.AllFeatures.Without(k)})
	}

	t := experiments.NewTable("Variant", "MaAP@10", "MiAP@10", "Δ vs All")
	var base float64
	for i, v := range variants {
		ma10, mi10, err := trainAndScore(train, test, numItems, v.mask)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		if i == 0 {
			base = ma10
			t.AddRow(v.name, fmt.Sprintf("%.4f", ma10), fmt.Sprintf("%.4f", mi10), "—")
			continue
		}
		t.AddRow(v.name, fmt.Sprintf("%.4f", ma10), fmt.Sprintf("%.4f", mi10),
			fmt.Sprintf("%+.4f", ma10-base))
	}
	return t.Render(os.Stdout)
}

func trainAndScore(train, test []seq.Sequence, numItems int, mask features.Mask) (ma10, mi10 float64, err error) {
	b := features.NewBuilder(numItems, window, omega)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(mask, features.Hyperbolic)
	set, err := sampling.Build(train, ex, sampling.Config{WindowCap: window, Omega: omega, S: 10, Seed: 6})
	if err != nil {
		return 0, 0, err
	}
	model, _, err := core.Train(set, len(train), numItems, ex, core.Config{TwoPhase: true, Seed: 6})
	if err != nil {
		return 0, 0, err
	}
	res, err := eval.Evaluate(train, test, engine.New(model).Factory(), eval.Options{
		WindowCap: window, Omega: omega, Seed: 6,
	})
	if err != nil {
		return 0, 0, err
	}
	ma10, mi10, _ = res.At(10)
	return ma10, mi10, nil
}
