// Quickstart: generate a synthetic check-in workload, train TS-PPR, and
// ask it what user 0 is most likely to reconsume next.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tsppr/internal/core"
	"tsppr/internal/datagen"
	"tsppr/internal/engine"
	"tsppr/internal/features"
	"tsppr/internal/rec"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
)

func main() {
	const (
		window = 50 // |W|: how far back "reconsumable" reaches
		omega  = 5  // Ω: items consumed in the last Ω steps are not recommended
	)

	// 1. A workload: 30 users of location check-ins (stand-in for Gowalla).
	cfg := datagen.GowallaLike(30, 1)
	cfg.WindowCap = window
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s\n", ds.Stats())

	// 2. Behavioural features (IP, IR, RE, DF) estimated on the data.
	numItems := ds.NumItems()
	b := features.NewBuilder(numItems, window, omega)
	for _, s := range ds.Seqs {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)

	// 3. Pre-sample training quadruples and fit the model.
	set, err := sampling.Build(ds.Seqs, ex, sampling.Config{
		WindowCap: window, Omega: omega, S: 10, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, stats, err := core.Train(set, ds.NumUsers(), numItems, ex, core.Config{
		TwoPhase: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d quadruples in %d SGD steps (converged=%v)\n",
		set.NumPairs(), stats.Steps, stats.Converged)

	// 4. Recommend: replay user 0's history into a window and rank the
	// reconsumable candidates.
	user := 0
	w := seq.NewWindow(window)
	for _, v := range ds.Seqs[user] {
		w.Push(v)
	}
	ctx := &rec.Context{User: user, Window: w, History: ds.Seqs[user], Omega: omega}
	top := engine.New(model).Recommend(ctx, 5, nil)

	fmt.Printf("user %d should reconsume next (best first):\n", user)
	for rank, sc := range top {
		fmt.Printf("  %d. item %-5d score=%.3f  IR=%.2f IP=%.2f\n",
			rank+1, sc.Item, sc.Score,
			ex.ReconsumptionRatio(sc.Item), ex.Quality(sc.Item))
	}
}
