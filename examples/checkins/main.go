// Checkins: a Gowalla-like location scenario comparing TS-PPR against all
// six baselines of the paper on held-out check-ins — a miniature of the
// paper's Fig. 5, runnable in a few seconds.
//
//	go run ./examples/checkins
package main

import (
	"fmt"
	"log"
	"os"

	"tsppr/internal/core"
	"tsppr/internal/datagen"
	"tsppr/internal/engine"
	"tsppr/internal/eval"
	"tsppr/internal/experiments"
	"tsppr/internal/features"
	"tsppr/internal/rec"
	"tsppr/internal/sampling"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		window    = 100
		omega     = 10
		trainFrac = 0.7
	)
	ds, err := datagen.Generate(datagen.GowallaLike(80, 4))
	if err != nil {
		return err
	}
	ds = ds.FilterMinTrain(trainFrac, window)
	ds, numItems := ds.Compact()
	fmt.Printf("check-in log: %s\n\n", ds.Stats())
	train, test := ds.Split(trainFrac)

	// Features + pre-sampled training set.
	b := features.NewBuilder(numItems, window, omega)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	set, err := sampling.Build(train, ex, sampling.Config{WindowCap: window, Omega: omega, S: 10, Seed: 4})
	if err != nil {
		return err
	}
	model, _, err := core.Train(set, ds.NumUsers(), numItems, ex, core.Config{TwoPhase: true, Seed: 4})
	if err != nil {
		return err
	}

	// Baselines via the experiment pipeline's trainer.
	pl := &experiments.Pipeline{Dataset: ds, Train: train, Test: test, NumItems: numItems, Ex: ex, Set: set}
	p := experiments.Params{WindowCap: window, Omega: omega, Seed: 4}.Defaults()
	factories, err := pl.BaselineFactories(p)
	if err != nil {
		return err
	}
	factories = append(factories, engine.New(model).Factory())

	results, err := eval.EvaluateAll(train, test, factories, eval.Options{
		WindowCap: window, Omega: omega, Seed: 4,
	})
	if err != nil {
		return err
	}

	eval.SortByMaAP(results, 1)
	t := experiments.NewTable("Method", "MaAP@1", "MaAP@5", "MaAP@10", "MiAP@10")
	for _, r := range results {
		ma1, _, _ := r.At(1)
		ma5, _, _ := r.At(5)
		ma10, mi10, _ := r.At(10)
		t.AddRow(r.Method,
			fmt.Sprintf("%.4f", ma1),
			fmt.Sprintf("%.4f", ma5),
			fmt.Sprintf("%.4f", ma10),
			fmt.Sprintf("%.4f", mi10))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	best, _ := eval.Best(results, 1, map[string]bool{"TS-PPR": true})
	var tsppr eval.Result
	for _, r := range results {
		if r.Method == "TS-PPR" {
			tsppr = r
		}
	}
	ours, _, _ := tsppr.At(1)
	theirs, _, _ := best.At(1)
	fmt.Printf("\nTS-PPR vs best baseline (%s) at Top-1: %+.1f%%\n",
		best.Method, (ours-theirs)/theirs*100)
	_ = rec.Context{}
	return nil
}
