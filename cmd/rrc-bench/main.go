// Command rrc-bench measures the scoring engine's serving throughput
// against the pre-refactor per-call scoring path on a fixed-seed workload,
// and writes the results as JSON (BENCH_PR10.json by default).
//
// The benchmarks run over the same trained model and the same pool of
// full-window recommendation contexts:
//
//   - single/engine       one Top-10 engine.Recommend per op
//   - single/quantized    the same through the float32-quantized tables
//   - single/prerefactor  one request through the old serving path: mint a
//     scorer, rank with a K×F matrix-vector product per candidate, then
//     re-score every returned item (the old /recommend double-scoring)
//   - cached/hit          one /recommend/user-shaped read answered by the
//     LSN-keyed response cache (probe + copy, no scoring)
//   - cached/miss         the same read falling through the cache: stale-LSN
//     probe, engine.Recommend, in-place refill
//   - batch/engine        a 64-request batch through the engine with the
//     server's bounded parallel fan-out
//   - batch/prerefactor   the same 64 requests through the old sequential
//     batch loop
//
// "items/sec" is candidate-scoring throughput: the number of candidate
// items whose preference was (or, for a cache hit, did not have to be)
// evaluated per wall-clock second. Seeds are fixed; runs are reproducible
// up to scheduler noise.
//
//	rrc-bench -out BENCH_PR10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"tsppr/internal/core"
	"tsppr/internal/datagen"
	"tsppr/internal/engine"
	"tsppr/internal/features"
	"tsppr/internal/linalg"
	"tsppr/internal/rec"
	"tsppr/internal/rescache"
	"tsppr/internal/sampling"
	"tsppr/internal/seq"
	"tsppr/internal/topk"
)

const (
	benchSeed      = 7
	benchUsers     = 48
	benchWindowCap = 20
	benchOmega     = 3
	benchTopN      = 10
	benchBatch     = 64
)

func main() {
	out := flag.String("out", "BENCH_PR10.json", "path to write the JSON report to")
	label := flag.String("label", "", "benchmark label recorded in the report; default derived from -out")
	flag.Parse()
	if *label == "" {
		// Derived, not hard-coded: an earlier revision pinned the label to
		// the PR that introduced it, so BENCH_PR6.json self-described as
		// PR4 output.
		*label = deriveLabel(*out)
	}
	if err := run(*out, *label); err != nil {
		fmt.Fprintln(os.Stderr, "rrc-bench:", err)
		os.Exit(1)
	}
}

// deriveLabel names a report after its output file: the basename without
// the extension, e.g. BENCH_PR10.json → "BENCH_PR10 scoring benchmarks".
func deriveLabel(outPath string) string {
	base := filepath.Base(outPath)
	return strings.TrimSuffix(base, filepath.Ext(base)) + " scoring benchmarks"
}

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ItemsPerSec float64 `json:"items_per_sec"`
}

type report struct {
	Benchmark  string `json:"benchmark"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Seed       int    `json:"seed"`
	Workload   struct {
		Users             int `json:"users"`
		Items             int `json:"items"`
		Contexts          int `json:"contexts"`
		TopN              int `json:"top_n"`
		BatchSize         int `json:"batch_size"`
		CandidatesPerOp   int `json:"candidates_per_single_op"`
		CandidatesPerBand int `json:"candidates_per_batch_op"`
	} `json:"workload"`
	Results map[string]result `json:"results"`
	Speedup struct {
		SingleItemsPerSec float64 `json:"single_items_per_sec"`
		BatchItemsPerSec  float64 `json:"batch_items_per_sec"`
		QuantizedVsEngine float64 `json:"quantized_vs_engine"`
		CachedHitVsEngine float64 `json:"cached_hit_vs_engine"`
	} `json:"speedup"`
}

func run(outPath, label string) error {
	model, contexts, err := buildWorkload()
	if err != nil {
		return err
	}
	eng := engine.New(model)
	qeng := engine.New(model)
	qeng.SetQuantized(true)

	// Candidate counts are a property of the contexts, not the scorer:
	// both paths evaluate the same candidate sets.
	perCtx := make([]int, len(contexts))
	totalCands := 0
	for i, ctx := range contexts {
		perCtx[i] = len(ctx.Window.Candidates(ctx.Omega, nil))
		totalCands += perCtx[i]
	}
	batchCands := 0
	for i := 0; i < benchBatch; i++ {
		batchCands += perCtx[i%len(contexts)]
	}
	meanCands := totalCands / len(contexts)

	rep := report{
		Benchmark:  label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       benchSeed,
		Results:    map[string]result{},
	}
	rep.Workload.Users = model.NumUsers()
	rep.Workload.Items = model.NumItems()
	rep.Workload.Contexts = len(contexts)
	rep.Workload.TopN = benchTopN
	rep.Workload.BatchSize = benchBatch
	rep.Workload.CandidatesPerOp = meanCands
	rep.Workload.CandidatesPerBand = batchCands

	measure := func(name string, candsPerOp int, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		res := result{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			ItemsPerSec: float64(candsPerOp) * 1e9 / float64(r.NsPerOp()),
		}
		rep.Results[name] = res
		fmt.Printf("%-20s %12.0f ns/op %6d allocs/op %12.0f items/sec\n",
			name, res.NsPerOp, res.AllocsPerOp, res.ItemsPerSec)
	}

	measure("single/engine", meanCands, func(b *testing.B) {
		var dst []rec.Scored
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = eng.Recommend(contexts[i%len(contexts)], benchTopN, dst[:0])
		}
	})
	measure("single/quantized", meanCands, func(b *testing.B) {
		var dst []rec.Scored
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = qeng.Recommend(contexts[i%len(contexts)], benchTopN, dst[:0])
		}
	})
	measure("single/prerefactor", meanCands, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyServe(model, contexts[i%len(contexts)], benchTopN)
		}
	})

	// Cache cases model the /recommend/user hot path: the hit is a probe
	// at the user's current LSN plus a copy-out, the miss is a stale-LSN
	// probe, a full engine ranking, and an in-place refill. Context i's
	// entry is versioned as LSN i+1; misses probe ever-fresh LSNs so
	// every op refills. Items/sec credits a hit with the candidates it
	// did NOT have to score — the apples-to-apples serving throughput.
	cache := rescache.New(rescache.Config{MaxEntries: 1 << 12})
	fillEpoch := cache.Epoch()
	for i, ctx := range contexts {
		scored := eng.Recommend(ctx, benchTopN, nil)
		items := make([]int, len(scored))
		scores := make([]float64, len(scored))
		for j, sc := range scored {
			items[j] = int(sc.Item)
			scores[j] = sc.Score
		}
		cache.Put(fillEpoch, ctx.User, uint64(i+1), benchOmega, benchTopN, items, scores)
	}
	measure("cached/hit", meanCands, func(b *testing.B) {
		items := make([]int, 0, benchTopN)
		scores := make([]float64, 0, benchTopN)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i % len(contexts)
			var ok bool
			items, scores, ok = cache.Get(contexts[j].User, uint64(j+1), benchOmega, benchTopN, items[:0], scores[:0])
			if !ok {
				b.Fatal("expected cache hit")
			}
		}
	})
	// missLSN outlives the benchmark closure: testing.Benchmark re-invokes
	// it with growing b.N, and the cache keeps the previous round's fills,
	// so "fresh" versions must be monotonic across rounds, not per-round.
	missLSN := uint64(len(contexts))
	measure("cached/miss", meanCands, func(b *testing.B) {
		var dst []rec.Scored
		items := make([]int, 0, benchTopN)
		scores := make([]float64, 0, benchTopN)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i % len(contexts)
			ctx := contexts[j]
			// Always ahead of the stored version → guaranteed miss, and
			// the Put refreshes the same variant in place.
			missLSN++
			lsn := missLSN
			var ok bool
			items, scores, ok = cache.Get(ctx.User, lsn, benchOmega, benchTopN, items[:0], scores[:0])
			if ok {
				b.Fatal("unexpected cache hit")
			}
			dst = eng.Recommend(ctx, benchTopN, dst[:0])
			items, scores = items[:0], scores[:0]
			for _, sc := range dst {
				items = append(items, int(sc.Item))
				scores = append(scores, sc.Score)
			}
			cache.Put(fillEpoch, ctx.User, lsn, benchOmega, benchTopN, items, scores)
		}
	})
	measure("batch/engine", batchCands, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engineBatch(eng, contexts, benchBatch, benchTopN)
		}
	})
	measure("batch/prerefactor", batchCands, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < benchBatch; j++ {
				legacyServe(model, contexts[j%len(contexts)], benchTopN)
			}
		}
	})

	rep.Speedup.SingleItemsPerSec = rep.Results["single/engine"].ItemsPerSec / rep.Results["single/prerefactor"].ItemsPerSec
	rep.Speedup.BatchItemsPerSec = rep.Results["batch/engine"].ItemsPerSec / rep.Results["batch/prerefactor"].ItemsPerSec
	rep.Speedup.QuantizedVsEngine = rep.Results["single/quantized"].ItemsPerSec / rep.Results["single/engine"].ItemsPerSec
	rep.Speedup.CachedHitVsEngine = rep.Results["cached/hit"].ItemsPerSec / rep.Results["single/engine"].ItemsPerSec
	fmt.Printf("speedup: single %.2fx, batch %.2fx, quantized %.2fx, cached-hit %.2fx\n",
		rep.Speedup.SingleItemsPerSec, rep.Speedup.BatchItemsPerSec,
		rep.Speedup.QuantizedVsEngine, rep.Speedup.CachedHitVsEngine)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(buf, '\n'), 0o644)
}

// buildWorkload trains a small TS-PPR model on a fixed-seed synthetic
// corpus and assembles one full-window recommendation context per user.
func buildWorkload() (*core.Model, []*rec.Context, error) {
	cfg := datagen.GowallaLike(benchUsers, benchSeed)
	cfg.MinLen, cfg.MaxLen = 120, 240
	cfg.WindowCap = benchWindowCap
	ds, err := datagen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	train := ds.Seqs
	numItems := ds.NumItems()
	b := features.NewBuilder(numItems, benchWindowCap, benchOmega)
	for _, s := range train {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	set, err := sampling.Build(train, ex, sampling.Config{WindowCap: benchWindowCap, Omega: benchOmega, S: 5, Seed: benchSeed})
	if err != nil {
		return nil, nil, err
	}
	model, _, err := core.Train(set, len(train), numItems, ex, core.Config{K: 12, MaxSteps: 60_000, Seed: benchSeed})
	if err != nil {
		return nil, nil, err
	}
	var contexts []*rec.Context
	for u, s := range train {
		w := seq.NewWindow(benchWindowCap)
		for _, v := range s {
			w.Push(v)
		}
		if !w.Full() || len(w.Candidates(benchOmega, nil)) == 0 {
			continue
		}
		contexts = append(contexts, &rec.Context{User: u, Window: w, History: s, Omega: benchOmega})
	}
	if len(contexts) == 0 {
		return nil, nil, fmt.Errorf("no benchmark contexts survived")
	}
	return model, contexts, nil
}

// engineBatch scores batchN requests through the shared engine with the
// server's bounded fan-out (cmd/rrc-server handleBatch).
func engineBatch(eng *engine.Engine, contexts []*rec.Context, batchN, topN int) {
	parallelism := runtime.GOMAXPROCS(0)
	if parallelism > 8 {
		parallelism = 8
	}
	out := make([][]rec.Scored, batchN)
	if parallelism <= 1 {
		// One core: the server scores batch entries inline.
		for i := 0; i < batchN; i++ {
			out[i] = eng.Recommend(contexts[i%len(contexts)], topN, nil)
		}
		return
	}
	slots := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := 0; i < batchN; i++ {
		i := i
		wg.Add(1)
		slots <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-slots }()
			out[i] = eng.Recommend(contexts[i%len(contexts)], topN, nil)
		}()
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// The pre-refactor scoring path, reproduced verbatim from the core.Scorer
// this PR deleted (see git history of internal/core/model.go): a per-call
// scorer whose dynamic term is a K×F matrix-vector product per candidate,
// plus the old /recommend handler's re-scoring of every returned item.

type legacyScorer struct {
	m     *core.Model
	f     linalg.Vector // F scratch: behavioural features
	y     linalg.Vector // K scratch: A_u f
	cands []seq.Item
	sel   *topk.Selector
}

func newLegacyScorer(m *core.Model) *legacyScorer {
	return &legacyScorer{m: m, f: linalg.NewVector(m.F), y: linalg.NewVector(m.K)}
}

func (s *legacyScorer) mapFor(u int) *linalg.Matrix {
	switch s.m.MapType {
	case core.PerUserMap:
		return s.m.A[u]
	case core.SharedMap:
		return s.m.A[0]
	default:
		return nil
	}
}

func (s *legacyScorer) score(u int, v seq.Item, w *seq.Window) float64 {
	m := s.m
	uvec := m.U.Row(u)
	static := 0.0
	if int(v) < m.V.Rows && v >= 0 {
		static = linalg.Dot(uvec, m.V.Row(int(v)))
	}
	m.Extractor.Extract(s.f, v, w)
	var dynamic float64
	if a := s.mapFor(u); a != nil {
		a.MulVec(s.y, s.f)
		dynamic = linalg.Dot(uvec, s.y)
	} else {
		dynamic = linalg.Dot(uvec, s.f)
	}
	return static + dynamic
}

func (s *legacyScorer) recommend(ctx *rec.Context, n int) []seq.Item {
	s.cands = ctx.Window.Candidates(ctx.Omega, s.cands[:0])
	if len(s.cands) == 0 {
		return nil
	}
	if s.sel == nil || s.sel.K() != n {
		s.sel = topk.New(n)
	} else {
		s.sel.Reset()
	}
	for _, v := range s.cands {
		s.sel.Push(v, s.score(ctx.User, v, ctx.Window))
	}
	return s.sel.Items(nil)
}

// legacyServe is one request through the old serving path: fresh scorer,
// ranking pass, then a second scoring pass over the winners to fill the
// response's Scores field.
func legacyServe(m *core.Model, ctx *rec.Context, n int) ([]seq.Item, []float64) {
	sc := newLegacyScorer(m)
	items := sc.recommend(ctx, n)
	scores := make([]float64, len(items))
	for i, it := range items {
		scores[i] = sc.score(ctx.User, it, ctx.Window)
	}
	return items, scores
}
