// Command rrc-analyze profiles a consumption event log the way the
// paper's §5.1 profiles Gowalla and Last.fm: sequence-length distribution,
// repeat ratio, reconsumption-gap histogram, candidate-set sizes and
// feature-rank steepness (Fig. 4). Useful before training to judge
// whether a dataset has enough repeat structure for RRC to matter.
//
// Usage:
//
//	rrc-analyze -data events.tsv -window 100 -omega 10
//	rrc-analyze -data checkins.tsv -format events -time-col 1 -item-col 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tsppr/internal/dataset"
	"tsppr/internal/features"
	"tsppr/internal/seq"
)

func main() {
	var (
		data    = flag.String("data", "", "input log (required)")
		format  = flag.String("format", "seq", "input format: seq (user<TAB>item, time-ordered) or events (user, time, item columns)")
		comma   = flag.String("comma", "\t", "field separator for -format events")
		userCol = flag.Int("user-col", 0, "user column for -format events")
		timeCol = flag.Int("time-col", 1, "time column for -format events")
		itemCol = flag.Int("item-col", 2, "item column for -format events")
		window  = flag.Int("window", 100, "time window capacity |W|")
		omega   = flag.Int("omega", 10, "minimum gap Ω")
	)
	flag.Parse()
	if err := run(*data, *format, *comma, *userCol, *timeCol, *itemCol, *window, *omega); err != nil {
		fmt.Fprintln(os.Stderr, "rrc-analyze:", err)
		os.Exit(1)
	}
}

func run(data, format, comma string, userCol, timeCol, itemCol, window, omega int) error {
	if data == "" {
		return fmt.Errorf("-data is required")
	}
	if omega < 0 || omega >= window {
		return fmt.Errorf("omega %d out of [0, window %d)", omega, window)
	}
	var ds *dataset.Dataset
	switch format {
	case "seq":
		var err error
		ds, err = dataset.LoadFile(data)
		if err != nil {
			return err
		}
	case "events":
		f, err := os.Open(data)
		if err != nil {
			return err
		}
		defer f.Close()
		sep := '\t'
		if len(comma) > 0 {
			sep = rune(comma[0])
		}
		bad := 0
		ds, _, err = dataset.ReadEvents(f, dataset.EventReaderOptions{
			Comma:   sep,
			UserCol: userCol, TimeCol: timeCol, ItemCol: itemCol,
			OnBadLine: func(int, string, error) error { bad++; return nil },
		})
		if err != nil {
			return err
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "skipped %d unparseable lines\n", bad)
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	ds, numItems := ds.Compact()

	st := ds.Stats()
	fmt.Printf("dataset: %s\n", st)

	// Sequence-length distribution.
	lengths := make([]int, 0, ds.NumUsers())
	for _, s := range ds.Seqs {
		lengths = append(lengths, len(s))
	}
	sort.Ints(lengths)
	fmt.Printf("sequence length quartiles: p25=%d p50=%d p75=%d p95=%d\n",
		quantileInt(lengths, 0.25), quantileInt(lengths, 0.5),
		quantileInt(lengths, 0.75), quantileInt(lengths, 0.95))

	// Repeat structure over the chosen window.
	var (
		events, repeats, eligible int
		gapHist                   = map[int]int{} // bucketed by decade
		candSum, candEvents       int
	)
	var cands []seq.Item
	for _, s := range ds.Seqs {
		seq.Scan(s, window, func(ev seq.Event, w *seq.Window) bool {
			events++
			if ev.Repeat {
				repeats++
				gapHist[ev.Gap/10]++
				if ev.Eligible(omega) {
					eligible++
					cands = w.Candidates(omega, cands[:0])
					candSum += len(cands)
					candEvents++
				}
			}
			return true
		})
	}
	if events == 0 {
		return fmt.Errorf("no full-window events: every sequence shorter than |W|=%d", window)
	}
	fmt.Printf("\nfull-window events: %d\n", events)
	fmt.Printf("repeat ratio:       %.3f (paper: Lastfm ≈ 0.77)\n", float64(repeats)/float64(events))
	fmt.Printf("eligible (gap>%d):  %d (%.1f%% of repeats)\n",
		omega, eligible, 100*float64(eligible)/float64(maxInt(repeats, 1)))
	if candEvents > 0 {
		fmt.Printf("mean candidate set: %.1f items\n", float64(candSum)/float64(candEvents))
	}

	fmt.Println("\nreconsumption gap histogram (gap decade → share of repeats):")
	decades := make([]int, 0, len(gapHist))
	for d := range gapHist {
		decades = append(decades, d)
	}
	sort.Ints(decades)
	for _, d := range decades {
		share := float64(gapHist[d]) / float64(repeats)
		fmt.Printf("  %3d-%3d  %5.1f%%  %s\n", d*10, d*10+9, 100*share, strings.Repeat("#", int(60*share)))
	}

	// Fig. 4-style feature steepness: share of eligible repeats whose item
	// ranks first in its window on each feature.
	b := features.NewBuilder(numItems, window, omega)
	for _, s := range ds.Seqs {
		b.Add(s)
	}
	ex := b.Build(features.AllFeatures, features.Hyperbolic)
	var top1 [features.NumKinds]int
	total := 0
	for _, s := range ds.Seqs {
		seq.Scan(s, window, func(ev seq.Event, w *seq.Window) bool {
			if !ev.Eligible(omega) {
				return true
			}
			total++
			cands = w.Candidates(omega, cands[:0])
			for k := features.Kind(0); k < features.NumKinds; k++ {
				truth := ex.Value(k, ev.Next, w)
				best := true
				for _, c := range cands {
					if c != ev.Next && ex.Value(k, c, w) > truth {
						best = false
						break
					}
				}
				if best {
					top1[k]++
				}
			}
			return true
		})
	}
	if total > 0 {
		fmt.Println("\nfeature steepness (share of eligible repeats where the reconsumed item ranks #1):")
		for k := features.Kind(0); k < features.NumKinds; k++ {
			fmt.Printf("  %s  %5.1f%%\n", k, 100*float64(top1[k])/float64(total))
		}
		fmt.Println("steeper features → behavioural models (TS-PPR) have more to work with.")
	}
	return nil
}

func quantileInt(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
