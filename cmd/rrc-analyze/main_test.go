package main

import (
	"os"
	"path/filepath"
	"testing"

	"tsppr/internal/datagen"
)

func writeSeqDataset(t *testing.T) string {
	t.Helper()
	cfg := datagen.GowallaLike(6, 5)
	cfg.MinLen, cfg.MaxLen = 80, 150
	cfg.WindowCap = 20
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.tsv")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeSeqFormat(t *testing.T) {
	path := writeSeqDataset(t)
	if err := run(path, "seq", "\t", 0, 1, 2, 20, 3); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeEventsFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.tsv")
	content := "u1\t3\ta\nu1\t1\tb\nu1\t2\ta\nu2\t1\tb\nbadline\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	// Window 2 so the 3-event user produces a full-window event.
	if err := run(path, "events", "\t", 0, 1, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	path := writeSeqDataset(t)
	if err := run("", "seq", "\t", 0, 1, 2, 20, 3); err == nil {
		t.Error("missing -data accepted")
	}
	if err := run(path, "xml", "\t", 0, 1, 2, 20, 3); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(path, "seq", "\t", 0, 1, 2, 20, 25); err == nil {
		t.Error("omega > window accepted")
	}
	if err := run(path, "seq", "\t", 0, 1, 2, 100000, 3); err == nil {
		t.Error("window larger than all sequences accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "nope.tsv"), "seq", "\t", 0, 1, 2, 20, 3); err == nil {
		t.Error("missing file accepted")
	}
}
